//! Quickstart: build the modelled CMP, run a short Trade2-like workload
//! under the baseline and WBHT policies, and compare execution time.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use cmp_hierarchies::adaptive::{run, PolicyConfig, RunSpec, SystemConfig, WbhtConfig};
use cmp_hierarchies::trace::Workload;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A capacity-scaled hierarchy (1/8 the paper's sizes) keeps this
    // example fast; use `SystemConfig::paper()` for the full geometry.
    let mut cfg = SystemConfig::scaled(8);
    cfg.max_outstanding = 6; // the paper's highest memory pressure

    println!(
        "simulating {} threads, {} L2 caches, policy = baseline",
        cfg.num_threads(),
        cfg.num_l2
    );
    let base = run(RunSpec::for_workload(cfg.clone(), Workload::Trade2, 10_000))?;
    println!(
        "baseline : {:>9} cycles | L2 hit {:>5.1}% | L3 load hit {:>5.1}% | {} clean write-backs ({:.0}% redundant)",
        base.stats.cycles,
        base.stats.l2_hit_rate() * 100.0,
        l3_hit(&base) * 100.0,
        base.stats.wb.clean_requests,
        base.stats.wb.clean_redundant_rate() * 100.0,
    );

    // Add the paper's Write-Back History Table (32K entries at full
    // scale; scaled here to keep the table:cache ratio).
    cfg.policy = PolicyConfig::wbht(WbhtConfig {
        entries: 4096,
        ..Default::default()
    });
    let wbht = run(RunSpec::for_workload(cfg, Workload::Trade2, 10_000))?;
    println!(
        "wbht     : {:>9} cycles | {} clean write-backs aborted | oracle-correct {:>5.1}%",
        wbht.stats.cycles,
        wbht.stats.wb.clean_aborted,
        wbht.wbht.correct_rate() * 100.0,
    );
    println!(
        "improvement over baseline: {:+.1}% (paper reports up to 13% for Trade2)",
        wbht.improvement_over(&base)
    );
    Ok(())
}

fn l3_hit(r: &cmp_hierarchies::adaptive::RunReport) -> f64 {
    let t = r.l3.read_hits + r.l3.read_misses;
    if t == 0 {
        0.0
    } else {
        r.l3.read_hits as f64 / t as f64
    }
}
