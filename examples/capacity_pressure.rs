//! Capacity pressure and the WBHT: sweep the history-table size on a
//! Trade2-like workload (the paper's most size-sensitive application,
//! Figure 4).
//!
//! Trade2's working set bounces between the L2s and the L3: most of its
//! clean write-backs are already valid in the L3. A larger WBHT
//! remembers more of those lines and aborts more useless write-backs —
//! until the table gets so large its contents go stale.
//!
//! ```sh
//! cargo run --release --example capacity_pressure
//! ```

use cmp_hierarchies::adaptive::{run, PolicyConfig, RunSpec, SystemConfig, WbhtConfig};
use cmp_hierarchies::trace::Workload;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let refs = 10_000;
    println!("Trade2: WBHT size sweep at 6 outstanding loads/thread\n");
    let mut norm = None;
    println!(
        "{:>10} {:>12} {:>12} {:>10} {:>18}",
        "entries", "cycles", "normalized", "aborted", "oracle-correct"
    );
    for entries in [512u64, 1024, 2048, 4096, 8192] {
        let mut cfg = SystemConfig::scaled(8);
        cfg.max_outstanding = 6;
        cfg.policy = PolicyConfig::wbht(WbhtConfig {
            entries,
            ..Default::default()
        });
        let r = run(RunSpec::for_workload(cfg, Workload::Trade2, refs))?;
        let base = *norm.get_or_insert(r.stats.cycles as f64);
        println!(
            "{:>10} {:>12} {:>12.3} {:>10} {:>17.1}%",
            entries,
            r.stats.cycles,
            r.stats.cycles as f64 / base,
            r.stats.wb.clean_aborted,
            r.wbht.correct_rate() * 100.0,
        );
    }
    println!("\nNormalized runtimes below 1.0 mean the larger table wins,");
    println!("mirroring Figure 4 of the paper (normalized to 512 entries).");
    Ok(())
}
