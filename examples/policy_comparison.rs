//! Side-by-side comparison of all four write-back policies on all four
//! commercial workloads — a one-screen summary of the paper.
//!
//! ```sh
//! cargo run --release --example policy_comparison
//! ```

use cmp_hierarchies::adaptive::{
    run, PolicyConfig, RunReport, RunSpec, SnarfConfig, SystemConfig, WbhtConfig,
};
use cmp_hierarchies::trace::Workload;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let refs = 8_000;
    let policies: [(&str, PolicyConfig); 4] = [
        ("baseline", PolicyConfig::baseline()),
        (
            "wbht",
            PolicyConfig::wbht(WbhtConfig {
                entries: 4096,
                ..Default::default()
            }),
        ),
        (
            "snarf",
            PolicyConfig::snarf(SnarfConfig {
                entries: 4096,
                ..Default::default()
            }),
        ),
        // §5.3: both tables halved to keep total area constant.
        (
            "combined",
            PolicyConfig::combined(
                WbhtConfig {
                    entries: 2048,
                    ..Default::default()
                },
                SnarfConfig {
                    entries: 2048,
                    ..Default::default()
                },
            ),
        ),
    ];

    println!(
        "{:<12} {:>12} {:>9} {:>9} {:>9}",
        "workload", "baseline cy", "wbht", "snarf", "combined"
    );
    for wl in Workload::all() {
        let mut reports: Vec<RunReport> = Vec::new();
        for (_, p) in &policies {
            let mut cfg = SystemConfig::scaled(8);
            cfg.max_outstanding = 6;
            cfg.policy = p.clone();
            reports.push(run(RunSpec::for_workload(cfg, wl, refs))?);
        }
        let base = &reports[0];
        println!(
            "{:<12} {:>12} {:>8.1}% {:>8.1}% {:>8.1}%",
            wl.name(),
            base.stats.cycles,
            reports[1].improvement_over(base),
            reports[2].improvement_over(base),
            reports[3].improvement_over(base),
        );
    }
    println!("\nPositive numbers are runtime improvements over the baseline.");
    println!("Note the paper's §5.3 observation: the combined gains are not");
    println!("additive — the two mechanisms divert the same write-backs.");
    Ok(())
}
