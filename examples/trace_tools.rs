//! Trace tooling: generate a synthetic commercial-workload trace, write
//! it to the compact binary format, read it back, and print summary
//! statistics — the offline half of the trace-driven methodology.
//!
//! ```sh
//! cargo run --release --example trace_tools
//! ```

use std::collections::HashSet;

use cmp_hierarchies::trace::{file, CacheScale, SyntheticWorkload, Workload};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = CacheScale::scaled(8);
    for wl in Workload::all() {
        let params = wl.params(16, scale);
        let mut gen = SyntheticWorkload::new(params, 2026)?;
        let records = gen.generate(100_000);

        // Round-trip through the binary trace format.
        let mut buf = Vec::new();
        file::write_trace(&mut buf, &records)?;
        let back = file::read_trace(&buf[..])?;
        assert_eq!(back.len(), records.len());

        let stores = records.iter().filter(|r| r.op.is_store()).count();
        let lines: HashSet<u64> = records.iter().map(|r| r.addr.line(128).raw()).collect();
        println!(
            "{:<11} {:>7} records, {:>5.1}% stores, {:>6} distinct lines, {:>8} bytes on disk",
            wl.name(),
            records.len(),
            100.0 * stores as f64 / records.len() as f64,
            lines.len(),
            buf.len(),
        );
    }
    println!("\nTraces are deterministic: the same (workload, seed) pair always");
    println!("produces the same stream, so simulations are bit-reproducible.");
    Ok(())
}
