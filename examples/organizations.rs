//! Architecture-organization playground: the paper's shared L3 victim
//! cache versus the §7 future-work organizations — POWER5-style private
//! L3s — and the per-link wormhole ring model.
//!
//! ```sh
//! cargo run --release --example organizations
//! ```

use cmp_hierarchies::adaptive::{run, L3Organization, RunSpec, SystemConfig};
use cmp_hierarchies::ring::RingDetail;
use cmp_hierarchies::trace::Workload;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let refs = 8_000;
    println!(
        "{:<12} {:>14} {:>14} {:>14}",
        "workload", "shared L3", "private L3s", "per-link ring"
    );
    for wl in Workload::all() {
        let mut shared = SystemConfig::scaled(8);
        shared.max_outstanding = 6;

        let mut private = shared.clone();
        private.l3_organization = L3Organization::PrivatePerL2;

        let mut per_link = shared.clone();
        per_link.ring.detail = RingDetail::PerLink;

        let a = run(RunSpec::for_workload(shared, wl, refs))?;
        let b = run(RunSpec::for_workload(private, wl, refs))?;
        let c = run(RunSpec::for_workload(per_link, wl, refs))?;
        println!(
            "{:<12} {:>11} cy {:>8} ({:+.1}%) {:>8} ({:+.1}%)",
            wl.name(),
            a.stats.cycles,
            b.stats.cycles,
            b.improvement_over(&a),
            c.stats.cycles,
            c.improvement_over(&a),
        );
    }
    println!("\nPrivate L3s trade capacity sharing for a castout path that");
    println!("never touches the snooped ring; the per-link ring model");
    println!("exposes segment-level contention the aggregate model averages.");
    Ok(())
}
