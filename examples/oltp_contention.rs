//! OLTP under memory pressure: reproduce the paper's headline TP result.
//!
//! The TP workload (TPC-C-like transaction processing) floods the L3's
//! incoming queues with dirty write-backs; the L3 answers with retries.
//! Allowing peer L2 caches to absorb ("snarf") write-backs keeps hot
//! lines on-chip, squashes redundant write-backs, and collapses the
//! retry rate — the paper's largest single result (+13.1% for TP).
//!
//! ```sh
//! cargo run --release --example oltp_contention
//! ```

use cmp_hierarchies::adaptive::{run, PolicyConfig, RunSpec, SnarfConfig, SystemConfig};
use cmp_hierarchies::trace::Workload;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("TP (OLTP) with and without L2-to-L2 snarfing, by memory pressure\n");
    println!(
        "{:>12} {:>14} {:>14} {:>12} {:>10} {:>10}",
        "outstanding", "base cycles", "snarf cycles", "improvement", "snarfed", "retries-"
    );
    for pressure in [2u32, 4, 6] {
        let mut cfg = SystemConfig::scaled(8);
        cfg.max_outstanding = pressure;
        let base = run(RunSpec::for_workload(cfg.clone(), Workload::Tp, 10_000))?;

        cfg.policy = PolicyConfig::snarf(SnarfConfig {
            entries: 4096,
            ..Default::default()
        });
        let snarf = run(RunSpec::for_workload(cfg, Workload::Tp, 10_000))?;

        let retry_drop = if base.stats.retries_l3 > 0 {
            100.0 * (1.0 - snarf.stats.retries_l3 as f64 / base.stats.retries_l3 as f64)
        } else {
            0.0
        };
        println!(
            "{:>12} {:>14} {:>14} {:>11.1}% {:>10} {:>9.0}%",
            pressure,
            base.stats.cycles,
            snarf.stats.cycles,
            snarf.improvement_over(&base),
            snarf.stats.snarf.snarfed,
            retry_drop,
        );
    }
    println!("\nThe gain grows with pressure: snarfed + squashed write-backs");
    println!("relieve the L3's incoming queues exactly when they saturate.");
    Ok(())
}
