//! End-to-end host-observability tests: the telemetry stream is
//! well-formed and deterministic (modulo wall-clock fields), the
//! profiler and stream leave simulated behaviour byte-identical, and
//! contiguous stride-1 attribution accounts for the whole run wall.

use std::io::BufReader;

use cmp_hierarchies::adaptive::{run, PolicyConfig, RunSpec, SystemConfig};
use cmp_hierarchies::engine::profiler::HostProfiler;
use cmp_hierarchies::engine::spans::SpanTracer;
use cmp_hierarchies::engine::stream::{
    frame_str, frame_u64, read_frame, SharedBuf, TelemetryStream, STREAM_SCHEMA,
};
use cmp_hierarchies::trace::Workload;

fn base_spec(refs: u64) -> RunSpec {
    let mut cfg = SystemConfig::scaled(16);
    cfg.policy = PolicyConfig::baseline();
    RunSpec::for_workload(cfg, Workload::Trade2, refs)
}

fn collect_frames(buf: &SharedBuf) -> Vec<String> {
    let bytes = buf.contents();
    let mut r = BufReader::new(&bytes[..]);
    let mut out = Vec::new();
    while let Some(f) = read_frame(&mut r).expect("well-formed frame") {
        out.push(f);
    }
    out
}

/// Wall-clock-dependent keys; everything else in a frame is a function
/// of the simulation and must be byte-stable across runs.
const VOLATILE_KEYS: &[&str] = &[
    "wall_ns",
    "cycles_per_sec",
    "events_per_sec",
    "rss_kb",
    "frontend_ns",
    "bus_issue_ns",
    "snoop_ns",
    "castout_ns",
    "fill_ns",
    "observe_ns",
    "event_queue_ns",
];

fn mask_volatile(frame: &str) -> String {
    let mut out = frame.to_string();
    for key in VOLATILE_KEYS {
        let needle = format!("\"{key}\":");
        if let Some(at) = out.find(&needle) {
            let start = at + needle.len();
            let end = out[start..]
                .find(|c: char| !c.is_ascii_digit())
                .map_or(out.len(), |n| start + n);
            out.replace_range(start..end, "0");
        }
    }
    out
}

fn streamed_run(refs: u64) -> (Vec<String>, String) {
    let buf = SharedBuf::new();
    let mut spec = base_spec(refs);
    spec.host_profiler = HostProfiler::with_stride(4);
    spec.stream = TelemetryStream::to_writer(buf.clone());
    let report = run(spec).unwrap();
    (collect_frames(&buf), report.to_json())
}

#[test]
fn stream_is_well_formed_and_deterministic() {
    let (frames, json_a) = streamed_run(2_000);
    let (frames_b, json_b) = streamed_run(2_000);

    // Schema hello leads the stream.
    let hello = &frames[0];
    assert_eq!(frame_str(hello, "type"), Some("hello"));
    assert_eq!(frame_str(hello, "schema"), Some(STREAM_SCHEMA));
    assert_eq!(frame_u64(hello, "seq"), Some(0));

    // Sequence numbers are strictly monotone and every type is known.
    let mut prev_seq = None;
    let mut saw = (false, false, false, false);
    for f in &frames {
        let seq = frame_u64(f, "seq").expect("every frame carries seq");
        if let Some(p) = prev_seq {
            assert!(seq > p, "seq went {p} -> {seq}");
        }
        prev_seq = Some(seq);
        match frame_str(f, "type").expect("every frame carries type") {
            "hello" => saw.0 = true,
            "run_start" => saw.1 = true,
            "interval" => {}
            "host_sample" => saw.2 = true,
            "run_end" => saw.3 = true,
            other => panic!("unknown frame type {other}"),
        }
    }
    assert_eq!(
        saw,
        (true, true, true, true),
        "stream is missing a lifecycle frame kind"
    );
    assert_eq!(
        frame_str(frames.last().unwrap(), "type"),
        Some("run_end"),
        "stream must end with run_end"
    );

    // Byte-stable modulo wall-clock fields, and the simulation metrics
    // agree exactly.
    assert_eq!(frames.len(), frames_b.len());
    for (a, b) in frames.iter().zip(&frames_b) {
        assert_eq!(mask_volatile(a), mask_volatile(b));
    }
    assert_eq!(json_a, json_b);
}

#[test]
fn profiler_and_stream_leave_simulation_untouched() {
    let mut plain = base_spec(2_000);
    plain.span_tracer = SpanTracer::sampled(1);
    let plain_report = run(plain).unwrap();

    let mut observed = base_spec(2_000);
    observed.span_tracer = SpanTracer::sampled(1);
    observed.host_profiler = HostProfiler::with_stride(3);
    observed.stream = TelemetryStream::to_writer(std::io::sink());
    let observed_report = run(observed).unwrap();

    // Identical metrics JSON and identical span records: observation
    // has zero effect on what the simulated machine does.
    assert_eq!(plain_report.to_json(), observed_report.to_json());
    assert_eq!(plain_report.spans, observed_report.spans);
    assert!(plain_report.host.is_none());
    assert!(observed_report.host.is_some());
}

#[test]
fn contiguous_stride_one_attribution_tiles_the_wall() {
    let mut spec = base_spec(4_000);
    spec.host_profiler = HostProfiler::with_stride(1);
    let report = run(spec).unwrap();
    let host = report.host.expect("profiler was enabled");
    assert!(host.run_wall_ns > 0);
    // At stride 1 the timed windows share boundaries, so the estimate
    // has no sampling error — only the loop prologue/epilogue escapes.
    let coverage = host.coverage();
    assert!(
        coverage > 0.90,
        "stride-1 coverage should tile the wall, got {coverage:.3}"
    );
    // Every timed stage that claims events also claims time.
    for (i, &ns) in host.stage_ns.iter().enumerate().take(7) {
        if host.stage_events[i] > 0 {
            assert!(ns > 0, "stage {i} has events but no time");
        }
    }
}
