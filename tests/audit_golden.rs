//! Regression gate for the policy-trait refactor: the audit metrics of a
//! pinned combined-policy run must stay byte-identical to the golden
//! captured from the hard-wired (pre-trait) build.
//!
//! Regenerate intentionally with `UPDATE_GOLDEN=1 cargo test --test
//! audit_golden` and inspect the diff — drift here means the policy
//! dispatch layer changed a decision, an outcome resolution, or the
//! audit hook ordering.

use cmp_hierarchies::adaptive::{
    run, PolicyConfig, RunSpec, SnarfConfig, SystemConfig, UpdateScope, WbhtConfig,
};
use cmp_hierarchies::trace::Workload;

const GOLDEN: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/golden/audit_metrics.txt"
);

/// The exact configuration the golden was pinned with (matches
/// `cmpsim --policy combined --scale 16 --refs 2000 --audit`).
fn audited_spec() -> RunSpec {
    let mut cfg = SystemConfig::scaled(16);
    cfg.max_outstanding = 6;
    cfg.policy = PolicyConfig::combined(
        WbhtConfig {
            entries: 1024,
            assoc: 16,
            scope: UpdateScope::Local,
            granularity: 1,
        },
        SnarfConfig {
            entries: 1024,
            ..Default::default()
        },
    );
    let mut spec = RunSpec::for_workload(cfg, Workload::Trade2, 2_000);
    spec.audit = true;
    spec
}

fn audit_rows() -> String {
    let report = run(audited_spec()).unwrap();
    report
        .metrics()
        .flat_rows()
        .into_iter()
        .filter(|(name, _)| name.starts_with("audit_"))
        .map(|(name, value)| format!("{name}={value:?}\n"))
        .collect()
}

#[test]
fn audit_metrics_match_pinned_hardwired_golden() {
    let rows = audit_rows();
    assert!(
        rows.lines().count() > 30,
        "audit section unexpectedly small:\n{rows}"
    );
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::write(GOLDEN, &rows).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(GOLDEN)
        .expect("tests/golden/audit_metrics.txt (regenerate with UPDATE_GOLDEN=1)");
    assert_eq!(
        rows, golden,
        "audit metrics drifted from the hard-wired-build golden"
    );
}
