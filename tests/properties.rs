//! Property-based tests over whole simulations: for randomized workload
//! parameters and policies, the system must terminate, conserve
//! references, respect coherence invariants, and stay deterministic.

use cmp_hierarchies::adaptive::{PolicyConfig, SnarfConfig, System, SystemConfig, WbhtConfig};
use cmp_hierarchies::trace::{SegmentMix, WorkloadParams};
use proptest::prelude::*;

fn arb_mix() -> impl Strategy<Value = SegmentMix> {
    // Random non-negative weights, normalized.
    proptest::collection::vec(0.0f64..1.0, 6).prop_map(|w| {
        let sum: f64 = w.iter().sum::<f64>().max(1e-9);
        SegmentMix {
            private: w[0] / sum,
            bounce: w[1] / sum,
            rotor: w[2] / sum,
            shared: w[3] / sum,
            migratory: w[4] / sum,
            streaming: w[5] / sum,
        }
    })
}

fn arb_params() -> impl Strategy<Value = WorkloadParams> {
    (arb_mix(), 16u64..2048, 1.0f64..4.0, 0.0f64..0.5, 1u64..4).prop_map(
        |(mix, region, theta, store, interval)| WorkloadParams {
            name: "prop".into(),
            line_bytes: 128,
            threads: 16,
            issue_interval: interval,
            mix,
            private_lines: region,
            private_theta: theta,
            private_store_frac: store,
            bounce_lines: region * 2,
            bounce_group_threads: 4,
            bounce_cross_frac: 0.2,
            bounce_theta: theta,
            bounce_store_frac: store / 2.0,
            rotor_lines: region,
            rotor_store_frac: store,
            shared_lines: region,
            shared_theta: theta,
            shared_store_frac: store / 4.0,
            migratory_lines: (region / 4).max(16),
            migratory_rmw_frac: 0.5,
        },
    )
}

fn arb_policy() -> impl Strategy<Value = PolicyConfig> {
    prop_oneof![
        Just(PolicyConfig::baseline()),
        (256u64..2048u64).prop_map(|e| {
            PolicyConfig::wbht(WbhtConfig {
                entries: e.next_power_of_two(),
                ..Default::default()
            })
        }),
        (256u64..2048u64).prop_map(|e| {
            PolicyConfig::snarf(SnarfConfig {
                entries: e.next_power_of_two(),
                ..Default::default()
            })
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any valid workload/policy combination terminates, processes every
    /// reference, and ends with coherent caches.
    #[test]
    fn simulations_terminate_and_stay_coherent(
        params in arb_params(),
        policy in arb_policy(),
        pressure in 1u32..7,
    ) {
        let mut cfg = SystemConfig::scaled(16);
        cfg.policy = policy;
        cfg.max_outstanding = pressure;
        let mut sys = System::new(cfg, params).unwrap();
        let refs = 800u64;
        let stats = sys.run(refs);
        prop_assert_eq!(stats.refs, refs * 16);
        prop_assert!(stats.cycles > 0);
        prop_assert_eq!(stats.loads + stats.stores, stats.refs);
        sys.assert_invariants();
        // Castout outcome accounting can never exceed issued requests.
        let outcomes = stats.wb.clean_squashed_l3
            + stats.wb.squashed_peer
            + stats.wb.snarfed
            + stats.wb.accepted_l3;
        prop_assert!(outcomes <= stats.wb.requests());
    }

    /// Bit-identical reruns: the simulator is a pure function of
    /// (config, workload, seed).
    #[test]
    fn reruns_are_bit_identical(params in arb_params(), seed in any::<u64>()) {
        let mut cfg = SystemConfig::scaled(16);
        cfg.seed = seed;
        cfg.max_outstanding = 4;
        let mut a = System::new(cfg.clone(), params.clone()).unwrap();
        let mut b = System::new(cfg, params).unwrap();
        let sa = a.run(500);
        let sb = b.run(500);
        prop_assert_eq!(sa.cycles, sb.cycles);
        prop_assert_eq!(sa.retries_total, sb.retries_total);
        prop_assert_eq!(sa.wb.requests(), sb.wb.requests());
        prop_assert_eq!(sa.fills_from_memory, sb.fills_from_memory);
    }
}
