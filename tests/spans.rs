//! End-to-end span-tracer tests: phase telescoping through a full
//! simulation, fill-source latency tiers against the paper's numbers,
//! sampling, timing invariance, Chrome-trace export validity, and a
//! golden-file determinism check of the exported format.
//!
//! Regenerate the golden file after an intentional format change with:
//!
//! ```sh
//! UPDATE_GOLDEN=1 cargo test --test spans golden
//! ```

use cmp_hierarchies::adaptive::{run, PolicyConfig, RetrySwitchConfig, RunSpec, SystemConfig};
use cmp_hierarchies::engine::spans::{write_chrome_trace, SpanRecord, SpanTracer};
use cmp_hierarchies::engine::telemetry::FillSource;
use cmp_hierarchies::trace::Workload;

fn traced_spec(refs: u64, sample: u64) -> RunSpec {
    let mut cfg = SystemConfig::scaled(16);
    cfg.policy = PolicyConfig::baseline();
    let mut spec = RunSpec::for_workload(cfg, Workload::Trade2, refs);
    spec.retry_switch = Some(RetrySwitchConfig::scaled(16));
    spec.span_tracer = SpanTracer::sampled(sample);
    spec
}

fn mean_total(spans: &[SpanRecord], src: FillSource) -> f64 {
    let of_src: Vec<&SpanRecord> = spans
        .iter()
        .filter(|s| s.outcome.and_then(|o| o.fill_source()) == Some(src))
        .collect();
    assert!(!of_src.is_empty(), "no fills from {src:?}");
    of_src.iter().map(|s| s.total()).sum::<u64>() as f64 / of_src.len() as f64
}

#[test]
fn every_span_telescopes_and_finishes() {
    let report = run(traced_spec(2_000, 1)).unwrap();
    assert!(!report.spans.is_empty());
    let summary = report.span_summary.as_ref().unwrap();
    assert_eq!(summary.recorded, report.spans.len() as u64);
    assert_eq!(summary.sampled_out, 0);
    let mut ids = std::collections::HashSet::new();
    for s in &report.spans {
        // The telescoping invariant: phase segments tile [start, end]
        // exactly, so queue wait and service always add up.
        assert_eq!(
            s.queue_wait() + s.service(),
            s.total(),
            "span {} does not telescope",
            s.id
        );
        assert!(s.outcome.is_some(), "span {} left unfinished", s.id);
        assert!(ids.insert(s.id), "duplicate span id {}", s.id);
        let mut prev = s.start;
        for (_, seg_start, len) in s.segments() {
            assert_eq!(seg_start, prev, "gap in span {}", s.id);
            prev = seg_start + len;
        }
        assert_eq!(prev, s.end(), "segments do not reach span end");
    }
    // Spans cross-check the aggregate fill counters exactly (no
    // sampling, so every granted read is one recorded miss span).
    assert_eq!(summary.l2_peer.total.count(), report.stats.fills_from_l2);
    assert_eq!(summary.l3.total.count(), report.stats.fills_from_l3);
    assert_eq!(summary.memory.total.count(), report.stats.fills_from_memory);
}

#[test]
fn latency_tiers_follow_the_paper_hierarchy() {
    // Paper §4: contention-free latencies of ~77 (L2-to-L2 intervention),
    // ~167 (L3 hit), ~431 (memory). Observed means carry queueing on
    // top, so assert the ordering strictly and the levels loosely.
    let report = run(traced_spec(4_000, 1)).unwrap();
    let l2 = mean_total(&report.spans, FillSource::L2Peer);
    let l3 = mean_total(&report.spans, FillSource::L3);
    let mem = mean_total(&report.spans, FillSource::Memory);
    assert!(l2 < l3 && l3 < mem, "tier ordering broken: {l2} {l3} {mem}");
    assert!((60.0..300.0).contains(&l2), "intervention tier at {l2}");
    assert!((120.0..400.0).contains(&l3), "L3 tier at {l3}");
    assert!((380.0..700.0).contains(&mem), "memory tier at {mem}");
}

#[test]
fn sampling_keeps_a_deterministic_subset() {
    let full = run(traced_spec(1_000, 1)).unwrap();
    let sampled = run(traced_spec(1_000, 8)).unwrap();
    let summary = sampled.span_summary.as_ref().unwrap();
    assert!(summary.sampled_out > 0);
    assert!(sampled.spans.len() < full.spans.len());
    assert_eq!(
        summary.started,
        summary.recorded + summary.sampled_out,
        "every started span must be recorded or sampled out"
    );
    for s in &sampled.spans {
        assert_eq!(s.id % 8, 0, "span {} escaped the 1/8 sampler", s.id);
    }
}

#[test]
fn tracing_does_not_perturb_the_simulation() {
    // The tracer only observes (it never reserves resources), so a
    // traced run and an untraced run of the same spec are cycle-exact
    // replicas of each other.
    let traced = run(traced_spec(1_500, 1)).unwrap();
    let mut untraced_spec = traced_spec(1_500, 1);
    untraced_spec.span_tracer = SpanTracer::disabled();
    let untraced = run(untraced_spec).unwrap();
    assert_eq!(traced.cycles(), untraced.cycles());
    assert_eq!(traced.stats.refs, untraced.stats.refs);
    assert_eq!(
        traced.stats.fills_from_memory,
        untraced.stats.fills_from_memory
    );
    assert_eq!(traced.stats.retries_total, untraced.stats.retries_total);
    assert!(untraced.spans.is_empty());
    assert!(untraced.span_summary.is_none());
}

#[test]
fn chrome_trace_export_is_well_formed() {
    let report = run(traced_spec(800, 4)).unwrap();
    let mut buf = Vec::new();
    write_chrome_trace(&report.spans, &mut buf).unwrap();
    let text = String::from_utf8(buf).unwrap();
    assert!(text.starts_with("[\n"));
    assert!(text.ends_with("]\n"));
    let events: Vec<&str> = text
        .lines()
        .filter(|l| l.starts_with('{') || l.starts_with(" {"))
        .collect();
    let enclosing = events
        .iter()
        .filter(|l| {
            l.contains("\"name\":\"miss\"")
                || l.contains("\"name\":\"castout\"")
                || l.contains("\"name\":\"upgrade\"")
        })
        .count();
    assert_eq!(enclosing, report.spans.len());
    for line in &events {
        let body = line.trim_start().trim_end_matches(',');
        assert!(body.starts_with('{') && body.ends_with('}'), "{body}");
        assert_eq!(body.matches('{').count(), body.matches('}').count());
        assert_eq!(body.matches('"').count() % 2, 0);
        assert!(
            body.contains("\"ph\":\"X\"") || body.contains("\"ph\":\"M\""),
            "{body}"
        );
    }
}

#[test]
fn golden_span_trace_is_stable() {
    let golden_path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/spans_small.json");
    let report = run(traced_spec(300, 4)).unwrap();
    // Keep the golden file small and focused: the first 30 spans.
    let head: Vec<SpanRecord> = report.spans.iter().take(30).cloned().collect();
    let mut buf = Vec::new();
    write_chrome_trace(&head, &mut buf).unwrap();
    let produced = String::from_utf8(buf).unwrap();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(golden_path, &produced).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(golden_path)
        .expect("golden file missing; regenerate with UPDATE_GOLDEN=1");
    assert_eq!(
        produced, expected,
        "span trace drifted from tests/golden/spans_small.json; \
         if intentional, regenerate with UPDATE_GOLDEN=1"
    );
}
