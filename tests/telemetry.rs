//! End-to-end telemetry tests: event tracing through a full simulation,
//! interval-sampler boundary behaviour, JSON/CSV export agreement, and
//! a golden-file determinism check of the JSONL trace format.
//!
//! Regenerate the golden file after an intentional format change with:
//!
//! ```sh
//! UPDATE_GOLDEN=1 cargo test --test telemetry golden
//! ```

use cmp_hierarchies::adaptive::{
    run, PolicyConfig, RetrySwitchConfig, RunSpec, SnarfConfig, SystemConfig, UpdateScope,
    WbhtConfig,
};
use cmp_hierarchies::engine::telemetry::{JsonlSink, SimEvent, Telemetry, VecSink};
use cmp_hierarchies::trace::Workload;

fn combined_cfg() -> SystemConfig {
    let mut cfg = SystemConfig::scaled(16);
    cfg.policy = PolicyConfig::combined(
        WbhtConfig {
            entries: 1024,
            assoc: 16,
            scope: UpdateScope::Local,
            granularity: 1,
        },
        SnarfConfig {
            entries: 1024,
            ..Default::default()
        },
    );
    cfg
}

fn traced_spec(refs: u64) -> (RunSpec, std::sync::Arc<std::sync::Mutex<VecSink>>) {
    let (tel, sink) = Telemetry::with_vec_sink();
    let mut spec = RunSpec::for_workload(combined_cfg(), Workload::Trade2, refs);
    // Scaled retry window so the switch actually gets exercised.
    spec.retry_switch = Some(RetrySwitchConfig {
        window: 2_000,
        threshold: 50,
    });
    spec.telemetry = tel;
    spec.interval_stats = Some(10_000);
    (spec, sink)
}

#[test]
fn combined_run_emits_the_advertised_event_kinds() {
    let (spec, sink) = traced_spec(2_000);
    let report = run(spec).unwrap();
    let sink = sink.lock().unwrap();
    let events = sink.events();
    assert!(!events.is_empty());

    let has = |pred: &dyn Fn(&SimEvent) -> bool| events.iter().any(|(_, e)| pred(e));
    assert!(has(&|e| matches!(e, SimEvent::L2Miss { .. })));
    assert!(has(&|e| matches!(e, SimEvent::L2Fill { .. })));
    assert!(has(&|e| matches!(e, SimEvent::CastoutIssued { .. })));
    assert!(has(&|e| matches!(e, SimEvent::WbhtPredict { .. })));
    assert!(has(&|e| matches!(e, SimEvent::RetrySwitchFlip { .. })));
    assert!(has(&|e| matches!(e, SimEvent::Interval { .. })));

    // The trace is internally consistent with the aggregate stats.
    let aborts = events
        .iter()
        .filter(|(_, e)| matches!(e, SimEvent::CastoutAborted { .. }))
        .count() as u64;
    assert_eq!(aborts, report.stats.wb.clean_aborted);
    let misses: u64 = report.stats.l2.iter().map(|l| l.misses).sum();
    let miss_events = events
        .iter()
        .filter(|(_, e)| matches!(e, SimEvent::L2Miss { .. }))
        .count() as u64;
    assert_eq!(miss_events, misses);
}

#[test]
fn interval_records_tile_the_run_without_gaps() {
    let (spec, _sink) = traced_spec(2_000);
    let report = run(spec).unwrap();
    assert!(report.intervals.len() >= 2, "run too short for 2 intervals");
    let mut expected_start = 0;
    for rec in &report.intervals {
        assert_eq!(rec.start, expected_start, "gap or overlap at {rec:?}");
        assert!(rec.end > rec.start);
        expected_start = rec.end;
    }
    assert_eq!(report.intervals.last().unwrap().end, report.cycles());
    // Interval deltas sum back to the cumulative totals.
    let refs: u64 = report
        .intervals
        .iter()
        .flat_map(|r| r.counters.iter())
        .filter(|(n, _)| *n == "refs")
        .map(|(_, v)| v)
        .sum();
    assert_eq!(refs, report.stats.refs);
}

#[test]
fn json_and_csv_agree_field_for_field() {
    let (spec, _sink) = traced_spec(1_000);
    let report = run(spec).unwrap();
    let json = report.to_json();
    let (header, row) = report.to_csv();
    let names: Vec<&str> = header.split(',').collect();
    let values: Vec<&str> = row.split(',').collect();
    assert_eq!(names.len(), values.len());
    for (name, value) in names.iter().zip(&values) {
        let quoted = format!("\"{name}\":\"{value}\"");
        let bare = format!("\"{name}\":{value}");
        assert!(
            json.contains(&quoted) || json.contains(&bare),
            "CSV {name}={value} not in JSON"
        );
    }
    // The one snarfed counter both formats must source identically
    // (CSV once reported the snarf-protocol counter instead).
    let snarfed = format!("\"wb_snarfed\":{}", report.stats.wb.snarfed);
    assert!(json.contains(&snarfed));
    let idx = names.iter().position(|n| *n == "wb_snarfed").unwrap();
    assert_eq!(values[idx], report.stats.wb.snarfed.to_string());
}

#[test]
fn identical_seeds_produce_identical_traces() {
    let trace_of = || {
        let (spec, sink) = traced_spec(800);
        run(spec).unwrap();
        let sink = sink.lock().unwrap();
        sink.events()
            .iter()
            .map(|(t, e)| e.to_json(*t))
            .collect::<Vec<String>>()
    };
    assert_eq!(trace_of(), trace_of());
}

#[test]
fn golden_jsonl_trace_is_stable() {
    let golden_path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/telemetry_small.jsonl"
    );
    let (spec, sink) = traced_spec(300);
    run(spec).unwrap();
    let sink = sink.lock().unwrap();
    let mut produced = String::new();
    // Keep the golden file small and focused: only the first 200 events.
    for (t, e) in sink.events().iter().take(200) {
        produced.push_str(&e.to_json(*t));
        produced.push('\n');
    }
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(golden_path, &produced).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(golden_path)
        .expect("golden file missing; regenerate with UPDATE_GOLDEN=1");
    assert_eq!(
        produced, expected,
        "JSONL trace drifted from tests/golden/telemetry_small.jsonl; \
         if intentional, regenerate with UPDATE_GOLDEN=1"
    );
}

#[test]
fn jsonl_sink_output_parses_line_by_line() {
    let (spec, sink) = traced_spec(500);
    run(spec).unwrap();
    let sink = sink.lock().unwrap();
    // Render through the same to_json path JsonlSink uses and sanity-check
    // JSON shape: balanced braces, quoted type, numeric timestamp.
    for (t, e) in sink.events().iter().take(500) {
        let line = e.to_json(*t);
        assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        assert!(line.contains("\"type\":\""), "{line}");
        assert!(line.contains(&format!("\"t\":{t}")), "{line}");
        assert_eq!(line.matches('{').count(), line.matches('}').count());
        assert_eq!(line.matches('"').count() % 2, 0);
    }
    // And JsonlSink itself writes one line per event.
    let mut buf = Vec::new();
    {
        use cmp_hierarchies::engine::telemetry::EventSink;
        let mut s = JsonlSink::new(&mut buf);
        s.emit(
            7,
            &SimEvent::L2Miss {
                l2: 1,
                line: 42,
                store: true,
            },
        );
        s.flush();
        assert!(s.error().is_none());
    }
    let text = String::from_utf8(buf).unwrap();
    assert_eq!(
        text,
        "{\"t\":7,\"type\":\"l2_miss\",\"l2\":1,\"line\":42,\"store\":true}\n"
    );
}

/// Overhead spot-check (run explicitly with `--ignored --nocapture` in
/// release mode): a NullSink-attached run must stay within noise of a
/// telemetry-disabled run, because emission sites only pay one branch
/// plus a virtual call into a sink that discards the event.
#[test]
#[ignore = "timing check; run manually in release mode"]
fn null_sink_overhead_is_negligible() {
    use cmp_hierarchies::engine::telemetry::NullSink;
    use std::time::Instant;

    let timed = |telemetry: Telemetry| {
        let mut spec = RunSpec::for_workload(combined_cfg(), Workload::Trade2, 20_000);
        spec.retry_switch = Some(RetrySwitchConfig::scaled(16));
        spec.telemetry = telemetry;
        let t0 = Instant::now();
        let report = run(spec).unwrap();
        (t0.elapsed(), report.cycles())
    };
    // Warm up, then interleave measurements.
    timed(Telemetry::disabled());
    let (mut off, mut null) = (std::time::Duration::ZERO, std::time::Duration::ZERO);
    for _ in 0..3 {
        off += timed(Telemetry::disabled()).0;
        null += timed(Telemetry::new(NullSink)).0;
    }
    println!("disabled: {off:?}  null-sink: {null:?}");
    assert!(
        null < off * 3 / 2,
        "null sink cost more than 1.5x disabled: {null:?} vs {off:?}"
    );
}
