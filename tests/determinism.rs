//! Reproducibility guarantees: identical specs must replay
//! byte-identical reports, with every stochastic knob (workload seed,
//! retry-jitter salt) explicit in the spec.

use cmp_hierarchies::adaptive::{
    run, HybridConfig, PolicyConfig, RdcbConfig, RunSpec, SnarfConfig, SystemConfig,
};
use cmp_hierarchies::trace::Workload;

fn spec_with_seeds(workload_seed: u64, jitter_seed: u64) -> RunSpec {
    let mut cfg = SystemConfig::scaled(16);
    cfg.policy = PolicyConfig::snarf(SnarfConfig {
        entries: 512,
        ..Default::default()
    });
    cfg.max_outstanding = 6;
    cfg.seed = workload_seed;
    cfg.retry_jitter_seed = jitter_seed;
    RunSpec::for_workload(cfg, Workload::Trade2, 1_500)
}

// Specs must be shippable to worker threads (the parallel grid driver
// relies on it).
const _: fn() = || {
    fn assert_send<T: Send>() {}
    assert_send::<RunSpec>();
};

#[test]
fn identical_specs_replay_byte_identical_reports() {
    let a = run(spec_with_seeds(0xBEEF, 0)).unwrap();
    let b = run(spec_with_seeds(0xBEEF, 0)).unwrap();
    assert_eq!(a.to_json(), b.to_json());
    assert_eq!(a.to_csv(), b.to_csv());
}

#[test]
fn workload_seed_is_a_real_knob() {
    let a = run(spec_with_seeds(1, 0)).unwrap();
    let b = run(spec_with_seeds(2, 0)).unwrap();
    assert_ne!(
        a.to_json(),
        b.to_json(),
        "different workload seeds must explore different streams"
    );
}

fn spec_with_policy(policy: PolicyConfig) -> RunSpec {
    let mut cfg = SystemConfig::scaled(16);
    cfg.policy = policy;
    cfg.max_outstanding = 6;
    cfg.seed = 0xBEEF;
    RunSpec::for_workload(cfg, Workload::Trade2, 1_500)
}

#[test]
fn rdcb_policy_replays_byte_identical_reports() {
    let policy = || {
        PolicyConfig::rdcb(RdcbConfig {
            entries: 512,
            ..Default::default()
        })
    };
    let a = run(spec_with_policy(policy())).unwrap();
    let b = run(spec_with_policy(policy())).unwrap();
    assert_eq!(a.to_json(), b.to_json());
    assert_eq!(a.to_csv(), b.to_csv());
    assert!(a.rdcb.is_some(), "rdcb section must be populated");
}

#[test]
fn hybrid_policy_replays_byte_identical_reports() {
    let policy = || {
        PolicyConfig::hybrid(HybridConfig {
            entries: 512,
            ..Default::default()
        })
    };
    let a = run(spec_with_policy(policy())).unwrap();
    let b = run(spec_with_policy(policy())).unwrap();
    assert_eq!(a.to_json(), b.to_json());
    assert_eq!(a.to_csv(), b.to_csv());
    assert!(a.hybrid.is_some(), "hybrid section must be populated");
}

#[test]
fn jitter_seed_reproduces_and_perturbs() {
    // Same jitter seed: byte-identical.
    let a = run(spec_with_seeds(7, 42)).unwrap();
    let b = run(spec_with_seeds(7, 42)).unwrap();
    assert_eq!(a.to_json(), b.to_json());
    // The salt only shifts retry back-off timing, so end-to-end work is
    // conserved regardless of the seed.
    let c = run(spec_with_seeds(7, 0)).unwrap();
    assert_eq!(a.stats.refs, c.stats.refs);
    assert_eq!(a.stats.loads, c.stats.loads);
    assert_eq!(a.stats.stores, c.stats.stores);
}
