//! Latency calibration against the paper's Table 3.
//!
//! The simulator is cycle-approximate: these tests pin the
//! contention-free end-to-end latencies of the three data sources to the
//! paper's values (77 cycles L2-to-L2, 167 cycles L3, 431 cycles
//! memory) within tolerances, using purpose-built micro-workloads that
//! exercise exactly one path.

use cmp_hierarchies::adaptive::{System, SystemConfig};
use cmp_hierarchies::trace::{SegmentMix, WorkloadParams};

fn micro(mix: SegmentMix, region_lines: u64, store_frac: f64) -> WorkloadParams {
    WorkloadParams {
        name: "micro".into(),
        line_bytes: 128,
        threads: 16,
        issue_interval: 1,
        mix,
        private_lines: region_lines.max(16),
        private_theta: 1.0,
        private_store_frac: store_frac,
        bounce_lines: region_lines.max(16),
        bounce_group_threads: 4,
        bounce_cross_frac: 0.0,
        bounce_theta: 1.0,
        bounce_store_frac: store_frac,
        rotor_lines: region_lines.max(16),
        rotor_store_frac: store_frac,
        shared_lines: region_lines.max(16),
        shared_theta: 1.0,
        shared_store_frac: store_frac,
        migratory_lines: region_lines.max(16),
        migratory_rmw_frac: 0.5,
    }
}

fn only(segment: &str) -> SegmentMix {
    let mut m = SegmentMix {
        private: 0.0,
        bounce: 0.0,
        rotor: 0.0,
        shared: 0.0,
        migratory: 0.0,
        streaming: 0.0,
    };
    match segment {
        "streaming" => m.streaming = 1.0,
        "bounce" => m.bounce = 1.0,
        "migratory" => m.migratory = 1.0,
        other => panic!("unknown segment {other}"),
    }
    m
}

/// Pure streaming at 1 outstanding load: every miss goes to memory,
/// contention-free. Mean miss latency must sit near the paper's
/// 431-cycle memory latency.
#[test]
fn memory_path_latency_near_431() {
    let mut cfg = SystemConfig::scaled(8);
    cfg.max_outstanding = 1;
    let mut sys = System::new(cfg, micro(only("streaming"), 16, 0.0)).unwrap();
    let stats = sys.run(2_000);
    assert!(stats.fills_from_memory > 1_000, "streaming must hit memory");
    let mean = stats.miss_latency.mean();
    assert!(
        (390.0..480.0).contains(&mean),
        "memory path mean {mean:.0} outside [390, 480]"
    );
}

/// A bounce set larger than the L2s but inside the L3, revisited
/// repeatedly at 1 outstanding load: after warm-up, misses are L3 hits.
/// Mean steady-state miss latency must sit near the 167-cycle L3 hit
/// latency.
#[test]
fn l3_path_latency_near_167() {
    let mut cfg = SystemConfig::scaled(8);
    cfg.max_outstanding = 1;
    // Aggregate bounce = 4 groups x (L3/4) = the L3 capacity; each
    // group's region (4096 lines) is twice one L2's capacity, so lines
    // keep cycling L2 -> L3 -> L2 after the cold pass.
    let region = cfg.l3_lines_total() / 4;
    let mut sys = System::new(cfg, micro(only("bounce"), region, 0.0)).unwrap();
    let stats = sys.run(30_000);
    assert!(
        stats.fills_from_l3 > stats.fills_from_memory,
        "L3 fills ({}) must dominate memory fills ({})",
        stats.fills_from_l3,
        stats.fills_from_memory
    );
    let mean = stats.miss_latency.mean();
    assert!(
        (140.0..300.0).contains(&mean),
        "L3 path mean {mean:.0} outside [140, 300]"
    );
}

/// Migratory read-modify-write data at 1 outstanding load: lines hop
/// between L2s as dirty interventions. Mean miss latency must approach
/// the 77-cycle L2-to-L2 transfer (plus upgrade traffic).
#[test]
fn l2_intervention_latency_near_77() {
    let mut cfg = SystemConfig::scaled(8);
    cfg.max_outstanding = 1;
    let mut sys = System::new(cfg, micro(only("migratory"), 64, 0.0)).unwrap();
    let stats = sys.run(10_000);
    assert!(
        stats.fills_from_l2 > stats.fills_from_l3 + stats.fills_from_memory,
        "interventions ({}) must dominate off-chip fills ({})",
        stats.fills_from_l2,
        stats.fills_from_l3 + stats.fills_from_memory
    );
    let mean = stats.miss_latency.mean();
    assert!(
        (60.0..140.0).contains(&mean),
        "L2-to-L2 path mean {mean:.0} outside [60, 140]"
    );
}

/// The three paths must be strictly ordered: L2-to-L2 < L3 < memory —
/// the premise of both of the paper's mechanisms.
#[test]
fn latency_ordering_matches_table3() {
    let run_mean = |segment: &str, region: u64, refs: u64| {
        let mut cfg = SystemConfig::scaled(8);
        cfg.max_outstanding = 1;
        let mut sys = System::new(cfg, micro(only(segment), region, 0.0)).unwrap();
        sys.run(refs).miss_latency.mean()
    };
    let l2l2 = run_mean("migratory", 64, 8_000);
    let mem = run_mean("streaming", 16, 2_000);
    let mut cfg = SystemConfig::scaled(8);
    cfg.max_outstanding = 1;
    let region = cfg.l3_lines_total() / 4;
    let mut sys = System::new(cfg, micro(only("bounce"), region, 0.0)).unwrap();
    let l3 = sys.run(30_000).miss_latency.mean();
    assert!(
        l2l2 < l3 && l3 < mem,
        "expected L2-L2 ({l2l2:.0}) < L3 ({l3:.0}) < memory ({mem:.0})"
    );
    // "providing data via an L2-to-L2 transfer is more than twice as
    // fast when compared to retrieving the line from the L3 cache" (§1).
    assert!(l3 / l2l2 > 1.6, "L3/L2 ratio {:.2} too small", l3 / l2l2);
}
