//! Cross-crate integration tests: whole-system behaviour, determinism,
//! protocol invariants, and policy effects.

use cmp_hierarchies::adaptive::{
    run, PolicyConfig, RetrySwitchConfig, RunSpec, SnarfConfig, System, SystemConfig, UpdateScope,
    WbhtConfig,
};
use cmp_hierarchies::trace::Workload;

fn cfg_with(policy: PolicyConfig, pressure: u32) -> SystemConfig {
    let mut c = SystemConfig::scaled(16);
    c.policy = policy;
    c.max_outstanding = pressure;
    c
}

/// A run spec whose retry-switch window is scaled with the hierarchy
/// (runs at 1/16 capacity are far shorter than a paper-scale 1M-cycle
/// observation window).
fn spec_for(cfg: SystemConfig, wl: Workload, refs: u64) -> RunSpec {
    let mut s = RunSpec::for_workload(cfg, wl, refs);
    s.retry_switch = Some(RetrySwitchConfig::scaled(16));
    s
}

fn wbht(entries: u64) -> PolicyConfig {
    PolicyConfig::wbht(WbhtConfig {
        entries,
        ..Default::default()
    })
}

fn snarf(entries: u64) -> PolicyConfig {
    PolicyConfig::snarf(SnarfConfig {
        entries,
        ..Default::default()
    })
}

#[test]
fn simulation_is_deterministic() {
    for policy in [PolicyConfig::baseline(), wbht(1024), snarf(1024)] {
        let spec = spec_for(cfg_with(policy, 6), Workload::Trade2, 3_000);
        let a = run(spec.clone()).unwrap();
        let b = run(spec).unwrap();
        assert_eq!(a.stats.cycles, b.stats.cycles, "policy {}", a.policy);
        assert_eq!(a.stats.refs, b.stats.refs);
        assert_eq!(a.stats.wb.requests(), b.stats.wb.requests());
        assert_eq!(a.stats.retries_total, b.stats.retries_total);
    }
}

#[test]
fn all_references_are_processed() {
    let refs = 2_500u64;
    for wl in Workload::all() {
        let r = run(spec_for(cfg_with(PolicyConfig::baseline(), 4), wl, refs)).unwrap();
        assert_eq!(r.stats.refs, refs * 16, "{wl}: refs processed");
        assert_eq!(
            r.stats.loads + r.stats.stores,
            r.stats.refs,
            "{wl}: load/store split"
        );
        assert!(r.stats.cycles > 0);
    }
}

#[test]
fn coherence_invariants_hold_for_every_policy() {
    for policy in [
        PolicyConfig::baseline(),
        wbht(1024),
        snarf(1024),
        PolicyConfig::combined(
            WbhtConfig {
                entries: 512,
                ..Default::default()
            },
            SnarfConfig {
                entries: 512,
                ..Default::default()
            },
        ),
    ] {
        for wl in [Workload::Tp, Workload::Trade2] {
            let cfg = cfg_with(policy.clone(), 6);
            let params = wl.params(cfg.num_threads(), cfg.cache_scale());
            let mut sys = System::new(cfg, params).unwrap();
            sys.run(3_000);
            sys.assert_invariants(); // panics with a description on violation
        }
    }
}

#[test]
fn wbht_reduces_writeback_requests_under_pressure() {
    let base = run(spec_for(
        cfg_with(PolicyConfig::baseline(), 6),
        Workload::Trade2,
        6_000,
    ))
    .unwrap();
    let with = run(spec_for(cfg_with(wbht(2048), 6), Workload::Trade2, 6_000)).unwrap();
    assert!(
        with.stats.wb.clean_aborted > 0,
        "WBHT must abort some clean write-backs"
    );
    assert!(
        with.stats.wb.requests() < base.stats.wb.requests(),
        "WBHT must reduce bus write-back requests ({} vs {})",
        with.stats.wb.requests(),
        base.stats.wb.requests()
    );
    // Decisions are scored by the L3-peek oracle.
    assert!(with.wbht.decisions > 0);
    assert!(with.wbht.correct_rate() > 0.3, "oracle-correct rate sanity");
}

#[test]
fn retry_switch_disengages_at_low_pressure() {
    // At one outstanding load per thread the bus is quiet: the switch
    // must keep the WBHT from making decisions (Figure 2's flat left
    // edge).
    let low = run(spec_for(
        cfg_with(wbht(2048), 1),
        Workload::NotesBench,
        4_000,
    ))
    .unwrap();
    assert_eq!(
        low.stats.wb.clean_aborted, 0,
        "no aborts expected at 1 outstanding load"
    );
}

#[test]
fn snarf_absorbs_and_squashes() {
    let r = run(spec_for(cfg_with(snarf(2048), 6), Workload::Tp, 6_000)).unwrap();
    assert!(r.stats.snarf.snarfed > 0, "some castouts must be snarfed");
    assert!(
        r.stats.wb.squashed_peer > 0,
        "peer copies must squash some castouts"
    );
    // Reuse bookkeeping is consistent.
    assert!(r.stats.snarf.used_locally <= r.stats.snarf.snarfed);
    assert!(r.stats.snarf.used_for_intervention <= r.stats.snarf.snarfed);
}

#[test]
fn castout_outcomes_are_conserved() {
    for wl in Workload::all() {
        let r = run(spec_for(cfg_with(snarf(2048), 6), wl, 4_000)).unwrap();
        let outcomes = r.stats.wb.clean_squashed_l3
            + r.stats.wb.squashed_peer
            + r.stats.wb.snarfed
            + r.stats.wb.accepted_l3;
        // Every issued castout resolves exactly once; a handful may be
        // claimed by RFOs or still in flight at the end of the run.
        assert!(
            outcomes <= r.stats.wb.requests(),
            "{wl}: outcomes {outcomes} exceed requests {}",
            r.stats.wb.requests()
        );
        let unresolved = r.stats.wb.requests() - outcomes;
        assert!(
            (unresolved as f64) < 0.05 * r.stats.wb.requests().max(1) as f64 + 64.0,
            "{wl}: too many unresolved castouts: {unresolved} of {}",
            r.stats.wb.requests()
        );
    }
}

#[test]
fn global_scope_allocates_more_wbht_entries() {
    let local_cfg = cfg_with(
        PolicyConfig::wbht(WbhtConfig {
            entries: 2048,
            assoc: 16,
            scope: UpdateScope::Local,
            granularity: 1,
        }),
        6,
    );
    let global_cfg = cfg_with(
        PolicyConfig::wbht(WbhtConfig {
            entries: 2048,
            assoc: 16,
            scope: UpdateScope::Global,
            granularity: 1,
        }),
        6,
    );
    let local = run(spec_for(local_cfg, Workload::Trade2, 5_000)).unwrap();
    let global = run(spec_for(global_cfg, Workload::Trade2, 5_000)).unwrap();
    // Global updates allocate in all four tables per redundant WB.
    assert!(
        global.wbht.allocated > local.wbht.allocated,
        "global allocations ({}) must exceed local ({})",
        global.wbht.allocated,
        local.wbht.allocated
    );
}

#[test]
fn per_link_ring_detail_runs() {
    // The per-link wormhole data-ring model is a drop-in fidelity
    // upgrade: simulations complete, conserve references, and stay
    // coherent.
    let mut cfg = cfg_with(PolicyConfig::baseline(), 6);
    cfg.ring.detail = cmp_hierarchies::ring::RingDetail::PerLink;
    let params = Workload::Trade2.params(cfg.num_threads(), cfg.cache_scale());
    let mut sys = System::new(cfg, params).unwrap();
    let stats = sys.run(2_000);
    assert_eq!(stats.refs, 2_000 * 16);
    sys.assert_invariants();
}

#[test]
fn history_aware_replacement_runs_and_differs() {
    let mut plain = cfg_with(wbht(2048), 6);
    plain.history_aware_replacement = false;
    let mut aware = plain.clone();
    aware.history_aware_replacement = true;
    let a = run(spec_for(plain, Workload::Trade2, 4_000)).unwrap();
    let b = run(spec_for(aware, Workload::Trade2, 4_000)).unwrap();
    assert!(a.stats.cycles > 0 && b.stats.cycles > 0);
    // The two victim policies must actually diverge on this workload.
    assert_ne!(a.stats.cycles, b.stats.cycles);
}

#[test]
fn wbht_granularity_trades_coverage_for_errors() {
    let mk = |granularity| {
        let mut c = cfg_with(
            PolicyConfig::wbht(WbhtConfig {
                entries: 512,
                assoc: 16,
                scope: UpdateScope::Local,
                granularity,
            }),
            6,
        );
        c.seed = 7;
        c
    };
    let fine = run(spec_for(mk(1), Workload::Trade2, 5_000)).unwrap();
    let coarse = run(spec_for(mk(8), Workload::Trade2, 5_000)).unwrap();
    // Coarse entries cover 8x the lines: with a tiny table they must
    // abort at least as many write-backs...
    assert!(
        coarse.stats.wb.clean_aborted > fine.stats.wb.clean_aborted,
        "coarse {} vs fine {}",
        coarse.stats.wb.clean_aborted,
        fine.stats.wb.clean_aborted
    );
    // Accuracy stays in a sane band. (The paper predicted coarse
    // entries would raise the error rate; on spatially dense working
    // sets the opposite holds — see exp_ext_granularity — so the test
    // pins only the mechanism, not the sign.)
    assert!((0.2..=1.0).contains(&coarse.wbht.correct_rate()));
}

#[test]
fn private_l3_organization_is_coherent() {
    let mut cfg = cfg_with(PolicyConfig::baseline(), 6);
    cfg.l3_organization = cmp_hierarchies::adaptive::L3Organization::PrivatePerL2;
    let params = Workload::Tp.params(cfg.num_threads(), cfg.cache_scale());
    let mut sys = System::new(cfg, params).unwrap();
    let stats = sys.run(3_000);
    assert_eq!(stats.refs, 3_000 * 16);
    // Castouts resolve against the private L3s.
    assert!(stats.wb.accepted_l3 + stats.wb.clean_squashed_l3 > 0);
    assert_eq!(stats.wb.snarfed, 0, "no snarfing without the shared ring");
    let l3 = sys.l3_stats();
    assert!(l3.castouts_accepted > 0);
    sys.assert_invariants();
}

#[test]
fn l1_can_be_disabled() {
    let mut cfg = cfg_with(PolicyConfig::baseline(), 4);
    cfg.l1 = None;
    let r = run(spec_for(cfg, Workload::Cpw2, 2_000)).unwrap();
    assert_eq!(r.stats.l1_hits, 0);
    assert!(r.stats.cycles > 0);
}

#[test]
fn pressure_increases_runtime_density() {
    // More outstanding misses per thread = more memory-level parallelism
    // = fewer cycles for the same reference stream.
    let refs = 4_000;
    let r1 = run(spec_for(
        cfg_with(PolicyConfig::baseline(), 1),
        Workload::Cpw2,
        refs,
    ))
    .unwrap();
    let r6 = run(spec_for(
        cfg_with(PolicyConfig::baseline(), 6),
        Workload::Cpw2,
        refs,
    ))
    .unwrap();
    assert!(
        r6.stats.cycles < r1.stats.cycles,
        "6 outstanding ({}) should beat 1 outstanding ({})",
        r6.stats.cycles,
        r1.stats.cycles
    );
}

#[test]
fn table1_band_clean_redundancy() {
    // Table 1: the fraction of clean write-backs already valid in the
    // L3 is substantial for every workload ("can be greater than 50%").
    for wl in Workload::all() {
        let r = run(spec_for(cfg_with(PolicyConfig::baseline(), 6), wl, 8_000)).unwrap();
        let rate = r.stats.wb.clean_redundant_rate();
        assert!(
            (0.15..0.95).contains(&rate),
            "{wl}: clean redundancy {rate:.2} implausible"
        );
    }
}

#[test]
fn combined_policy_exercises_both_tables() {
    let r = run(spec_for(
        cfg_with(PolicyConfig::combined_paper(), 6),
        Workload::Tp,
        6_000,
    ))
    .unwrap();
    assert!(r.stats.wb.clean_aborted > 0, "WBHT side active");
    assert!(
        r.stats.wb.snarfed + r.stats.wb.squashed_peer > 0,
        "snarf side active"
    );
    assert!(r.snarf_table.is_some());
}
