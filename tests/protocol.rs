//! Directed coherence-protocol scenarios.
//!
//! Each test choreographs exact per-thread reference sequences through a
//! [`TracePlayback`] source and asserts the resulting coherence states —
//! the MESI+SL/T transitions of DESIGN.md, exercised end-to-end through
//! the bus, the Snoop Collector, and the L3.
//!
//! Thread → L2 mapping: threads 0–3 → L2#0, 4–7 → L2#1, 8–11 → L2#2,
//! 12–15 → L2#3.

use cmp_hierarchies::adaptive::{PolicyConfig, System, SystemConfig};
use cmp_hierarchies::cache::Addr;
use cmp_hierarchies::coherence::L2State;
use cmp_hierarchies::trace::{MemOp, ThreadId, TracePlayback, TraceRecord};

/// A per-thread scenario builder: scripted references per thread, padded
/// with idle spins on private lines so threads stay busy without
/// touching shared state.
struct Scenario {
    records: Vec<TraceRecord>,
    refs_per_thread: u64,
}

impl Scenario {
    fn new(refs_per_thread: u64) -> Self {
        Scenario {
            records: Vec::new(),
            refs_per_thread,
        }
    }

    /// Appends `n` idle references for `thread` (to its private line,
    /// which stays L1/L2-resident and generates no bus traffic after
    /// the first touch).
    fn idle(&mut self, thread: u16, n: u64) -> &mut Self {
        // Unique private line per thread, far from scenario lines.
        let line = 0x4000_0000 + thread as u64;
        for _ in 0..n {
            self.records.push(TraceRecord::new(
                ThreadId::new(thread),
                MemOp::Load,
                Addr::new(line * 128),
            ));
        }
        self
    }

    fn load(&mut self, thread: u16, line: u64) -> &mut Self {
        self.records.push(TraceRecord::new(
            ThreadId::new(thread),
            MemOp::Load,
            Addr::new(line * 128),
        ));
        self
    }

    fn store(&mut self, thread: u16, line: u64) -> &mut Self {
        self.records.push(TraceRecord::new(
            ThreadId::new(thread),
            MemOp::Store,
            Addr::new(line * 128),
        ));
        self
    }

    /// Builds the system and runs the scenario to completion.
    fn run(&mut self, policy: PolicyConfig) -> System {
        // Pad every thread to exactly `refs_per_thread` records.
        let mut counts = [0u64; 16];
        for r in &self.records {
            counts[r.thread.index()] += 1;
        }
        for t in 0..16u16 {
            let missing = self.refs_per_thread.saturating_sub(counts[t as usize]);
            self.idle(t, missing);
        }
        let mut cfg = SystemConfig::scaled(16);
        cfg.policy = policy;
        cfg.max_outstanding = 1; // strictly ordered per-thread execution
        let playback = TracePlayback::new("scenario", self.records.clone(), 16, 1);
        let mut sys = System::with_source(cfg, Box::new(playback)).unwrap();
        sys.run(self.refs_per_thread);
        sys.assert_invariants();
        sys
    }
}

fn line_addr(line: u64) -> cmp_hierarchies::cache::LineAddr {
    Addr::new(line * 128).line(128)
}

const X: u64 = 0x1000; // scenario line

#[test]
fn cold_load_installs_exclusive() {
    let mut s = Scenario::new(50);
    s.load(0, X);
    let sys = s.run(PolicyConfig::baseline());
    assert_eq!(sys.l2_state(0, line_addr(X)), Some(L2State::Exclusive));
    for l2 in 1..4 {
        assert_eq!(sys.l2_state(l2, line_addr(X)), None);
    }
}

#[test]
fn store_after_load_upgrades_silently_from_e() {
    let mut s = Scenario::new(50);
    s.load(0, X).store(0, X);
    let sys = s.run(PolicyConfig::baseline());
    // E -> M on store hit, no bus transaction needed.
    assert_eq!(sys.l2_state(0, line_addr(X)), Some(L2State::Modified));
    assert_eq!(sys.stats().upgrades, 0);
}

#[test]
fn cold_store_installs_modified() {
    let mut s = Scenario::new(50);
    s.store(4, X);
    let sys = s.run(PolicyConfig::baseline());
    assert_eq!(sys.l2_state(1, line_addr(X)), Some(L2State::Modified));
}

#[test]
fn read_of_modified_line_creates_tagged_owner() {
    let mut s = Scenario::new(400);
    // Thread 0 (L2#0) dirties X early; thread 4 (L2#1) reads it much
    // later (idle padding orders the accesses on the virtual clock).
    s.store(0, X);
    s.idle(4, 300).load(4, X);
    let sys = s.run(PolicyConfig::baseline());
    // Dirty intervention: provider keeps ownership as T, reader gets S.
    assert_eq!(sys.l2_state(0, line_addr(X)), Some(L2State::Tagged));
    assert_eq!(sys.l2_state(1, line_addr(X)), Some(L2State::Shared));
    assert!(sys.stats().fills_from_l2 >= 1);
}

#[test]
fn clean_intervention_hands_over_shared_last() {
    let mut s = Scenario::new(400);
    s.load(0, X); // E at L2#0
    s.idle(4, 300).load(4, X); // clean intervention
    let sys = s.run(PolicyConfig::baseline());
    // Provider E -> S; requester receives SL (the intervention token).
    assert_eq!(sys.l2_state(0, line_addr(X)), Some(L2State::Shared));
    assert_eq!(sys.l2_state(1, line_addr(X)), Some(L2State::SharedLast));
}

#[test]
fn rfo_invalidates_every_peer_copy() {
    let mut s = Scenario::new(700);
    s.load(0, X);
    s.idle(4, 200).load(4, X);
    s.idle(8, 400).store(8, X); // RFO from L2#2
    let sys = s.run(PolicyConfig::baseline());
    assert_eq!(sys.l2_state(2, line_addr(X)), Some(L2State::Modified));
    assert_eq!(sys.l2_state(0, line_addr(X)), None);
    assert_eq!(sys.l2_state(1, line_addr(X)), None);
}

#[test]
fn store_on_shared_copy_issues_upgrade() {
    let mut s = Scenario::new(700);
    s.load(0, X);
    s.idle(4, 200).load(4, X); // now S at L2#0, SL at L2#1
    s.idle(0, 450).store(0, X); // store on the S copy -> upgrade
    let sys = s.run(PolicyConfig::baseline());
    assert_eq!(sys.l2_state(0, line_addr(X)), Some(L2State::Modified));
    assert_eq!(sys.l2_state(1, line_addr(X)), None);
    assert!(sys.stats().upgrades >= 1, "expected an upgrade transaction");
}

#[test]
fn capacity_eviction_casts_out_and_l3_serves_refetch() {
    // Fill one L2 set past associativity: set stride at scale 16 is
    // 4 slices x 32 sets = 128 lines.
    let stride = 128u64;
    let mut s = Scenario::new(600);
    s.store(0, X);
    for k in 1..=8 {
        s.load(0, X + k * stride); // 8 conflicting fills evict X (dirty)
    }
    s.idle(0, 400);
    s.load(0, X); // refetch after the castout resolved
    let sys = s.run(PolicyConfig::baseline());
    let stats = sys.stats();
    assert!(
        stats.wb.dirty_requests >= 1,
        "dirty castout must reach the bus"
    );
    assert!(
        sys.l3().peek(line_addr(X)) || sys.l2_state(0, line_addr(X)).is_some(),
        "the dirty line must survive somewhere"
    );
    // The refetch found it (L3 hit or write-back-queue recovery).
    assert!(sys.l2_state(0, line_addr(X)).is_some());
}

#[test]
fn second_clean_castout_is_squashed_as_redundant() {
    let stride = 128u64;
    let mut s = Scenario::new(2000);
    // Two rounds: fetch X, evict it clean, refetch (hits L3), evict
    // again -> the second clean castout finds the line already in L3.
    s.load(0, X);
    for k in 1..=8 {
        s.load(0, X + k * stride);
    }
    s.idle(0, 500);
    s.load(0, X);
    for k in 9..=16 {
        s.load(0, X + k * stride);
    }
    let sys = s.run(PolicyConfig::baseline());
    assert!(
        sys.stats().wb.clean_squashed_l3 >= 1,
        "second castout of a clean L3-resident line must be squashed (got {:?})",
        sys.stats().wb
    );
}

#[test]
fn private_l3_keeps_castouts_out_of_the_ring() {
    let stride = 128u64;
    let mut s = Scenario::new(600);
    s.store(0, X);
    for k in 1..=8 {
        s.load(0, X + k * stride);
    }
    let mut cfg = SystemConfig::scaled(16);
    cfg.policy = PolicyConfig::baseline();
    cfg.l3_organization = cmp_hierarchies::adaptive::L3Organization::PrivatePerL2;
    cfg.max_outstanding = 1;
    // Pad threads.
    let mut counts = [0u64; 16];
    for r in &s.records {
        counts[r.thread.index()] += 1;
    }
    for t in 0..16u16 {
        let missing = 600u64.saturating_sub(counts[t as usize]);
        s.idle(t, missing);
    }
    let playback = TracePlayback::new("scenario", s.records.clone(), 16, 1);
    let mut sys = System::with_source(cfg, Box::new(playback)).unwrap();
    sys.run(600);
    let stats = sys.stats();
    assert!(stats.wb.dirty_requests >= 1);
    assert!(
        stats.wb.accepted_l3 >= 1,
        "private L3 must absorb the castout"
    );
    sys.assert_invariants();
}
