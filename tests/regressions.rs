//! Named, always-run regression tests promoted from
//! `tests/properties.proptest-regressions`.
//!
//! Proptest replays persisted seeds only when the owning property runs,
//! and shrunk cases in that file are easy to lose on a refactor. Each
//! seed is therefore promoted to a plain `#[test]` here with the exact
//! shrunk inputs inlined, so the case runs unconditionally — in every
//! `cargo test`, under any filter — and the comment records what it
//! once broke. The seeds file stays checked in so proptest also
//! re-explores the neighbourhood of each failure.

use cmp_hierarchies::adaptive::{System, SystemConfig};
use cmp_hierarchies::trace::{SegmentMix, WorkloadParams};

/// Seed `2d4b878a…` (checked in with the repository seed): proptest's
/// shrink of a `simulations_terminate_and_stay_coherent` failure. The
/// workload degenerates to a two-segment rotor+shared mix — no private
/// or streaming traffic at all — at issue interval 1 and pressure 4,
/// which maximizes same-line contention: every thread hammers the same
/// rotor/shared lines back-to-back with four misses in flight each.
/// That corner once tripped the post-run coherence invariants
/// (`assert_invariants`) during policy-stack development; it is the
/// densest intervention/upgrade interleaving the generator can produce,
/// so it stays pinned here verbatim.
fn rotor_shared_contention_params() -> WorkloadParams {
    WorkloadParams {
        name: "prop".into(),
        line_bytes: 128,
        threads: 16,
        issue_interval: 1,
        mix: SegmentMix {
            private: 0.0,
            bounce: 0.0,
            rotor: 0.42946185354047944,
            shared: 0.5705381464595206,
            migratory: 0.0,
            streaming: 0.0,
        },
        private_lines: 880,
        private_theta: 1.0,
        private_store_frac: 0.0,
        bounce_lines: 1760,
        bounce_group_threads: 4,
        // The shrunk case predates this knob; 0.2 is the fixed value
        // the property's generator has always used.
        bounce_cross_frac: 0.2,
        bounce_theta: 1.0,
        bounce_store_frac: 0.0,
        rotor_lines: 880,
        rotor_store_frac: 0.0,
        shared_lines: 880,
        shared_theta: 1.0,
        shared_store_frac: 0.0,
        migratory_lines: 220,
        migratory_rmw_frac: 0.5,
    }
}

#[test]
fn seed_2d4b878a_rotor_shared_contention_stays_coherent() {
    // policy = Baseline, pressure = 4 — exactly the shrunk tuple.
    let mut cfg = SystemConfig::scaled(16);
    cfg.max_outstanding = 4;
    let mut sys = System::new(cfg, rotor_shared_contention_params()).unwrap();
    let refs = 800u64;
    let stats = sys.run(refs);
    assert_eq!(stats.refs, refs * 16);
    assert!(stats.cycles > 0);
    assert_eq!(stats.loads + stats.stores, stats.refs);
    sys.assert_invariants();
    let outcomes = stats.wb.clean_squashed_l3
        + stats.wb.squashed_peer
        + stats.wb.snarfed
        + stats.wb.accepted_l3;
    assert!(outcomes <= stats.wb.requests());
}

#[test]
fn seed_2d4b878a_survives_the_shard_oracle() {
    // The same pathological interleaving, through the sharded frontend:
    // maximal same-line contention is exactly where an out-of-order
    // record handoff would first diverge from the serial oracle.
    use cmp_hierarchies::adaptive::{run, RunSpec};

    let mut cfg = SystemConfig::scaled(16);
    cfg.max_outstanding = 4;
    let mut base = RunSpec::for_workload(cfg, cmp_hierarchies::trace::Workload::Tp, 800);
    base.workload = rotor_shared_contention_params();
    let serial = run(base.clone()).unwrap();
    for shards in [2, 8] {
        let mut spec = base.clone();
        spec.shards = shards;
        let sharded = run(spec).unwrap();
        assert_eq!(serial.to_json(), sharded.to_json(), "shards={shards}");
    }
}
