//! Differential conformance harness for sharded execution.
//!
//! The serial calendar-queue build is the oracle: for every randomized
//! RunSpec (workload × pressure × policy × seed) and every shard count
//! in {1, 2, 4, 8}, the sharded build must reproduce the serial run's
//! metrics JSON, CSV, golden span stream (the Chrome-trace bytes the
//! golden tests pin), and decision-audit section byte for byte. Any
//! divergence — a reordered record, a dropped message, a window-boundary
//! leak — shows up as a diff here before it can corrupt a result.

use cmp_hierarchies::adaptive::{
    run, HybridConfig, PolicyConfig, RdcbConfig, RunSpec, SnarfConfig, SystemConfig, WbhtConfig,
};
use cmp_hierarchies::engine::spans::{write_chrome_trace, SpanTracer};
use cmp_hierarchies::engine::SplitMix64;
use cmp_hierarchies::trace::Workload;

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Draws one randomized spec. Everything stochastic comes from `rng`,
/// which is itself seeded deterministically — failures reproduce by
/// case index.
fn random_spec(rng: &mut SplitMix64) -> RunSpec {
    let workload = match rng.gen_range(4) {
        0 => Workload::Tp,
        1 => Workload::Cpw2,
        2 => Workload::NotesBench,
        _ => Workload::Trade2,
    };
    let entries = 256 << rng.gen_range(3); // 256 / 512 / 1024
    let policy = match rng.gen_range(6) {
        0 => PolicyConfig::baseline(),
        1 => PolicyConfig::wbht(WbhtConfig {
            entries,
            assoc: 16,
            ..Default::default()
        }),
        2 => PolicyConfig::snarf(SnarfConfig {
            entries,
            ..Default::default()
        }),
        3 => PolicyConfig::combined(
            WbhtConfig {
                entries: (entries / 2).max(256),
                assoc: 16,
                ..Default::default()
            },
            SnarfConfig {
                entries: (entries / 2).max(256),
                ..Default::default()
            },
        ),
        4 => PolicyConfig::rdcb(RdcbConfig {
            entries,
            ..Default::default()
        }),
        _ => PolicyConfig::hybrid(HybridConfig {
            entries,
            ..Default::default()
        }),
    };
    let mut cfg = SystemConfig::scaled(16);
    cfg.policy = policy;
    cfg.max_outstanding = 1 + rng.gen_range(6) as u32; // pressure 1..=6
    cfg.seed = rng.next_u64();
    cfg.retry_jitter_seed = rng.next_u64();
    RunSpec::for_workload(cfg, workload, 700 + rng.gen_range(800))
}

/// Chrome-trace bytes for a report's spans — the representation the
/// golden span tests pin, so byte-equality here is golden-equality.
fn chrome_bytes(spans: &[cmp_hierarchies::engine::spans::SpanRecord]) -> Vec<u8> {
    let mut buf = Vec::new();
    write_chrome_trace(spans, &mut buf).expect("in-memory write");
    buf
}

#[test]
fn randomized_specs_are_byte_identical_at_every_shard_count() {
    let mut rng = SplitMix64::new(0x0DDE_50AE_5EED_0009);
    for case in 0..6 {
        let base = random_spec(&mut rng);
        let serial = run(base.clone()).expect("serial oracle");
        let oracle_json = serial.to_json();
        let oracle_csv = serial.to_csv();
        for shards in SHARD_COUNTS {
            let mut spec = base.clone();
            spec.shards = shards;
            let sharded = run(spec).expect("sharded run");
            assert_eq!(
                oracle_json,
                sharded.to_json(),
                "case {case} ({} / {} / pressure {}): JSON diverged at shards={shards}",
                base.workload.name,
                base.config.policy.label(),
                base.config.max_outstanding,
            );
            assert_eq!(
                oracle_csv,
                sharded.to_csv(),
                "case {case}: CSV diverged at shards={shards}"
            );
        }
    }
}

#[test]
fn golden_spans_and_audit_are_byte_identical_when_sharded() {
    // Spans and the decision audit observe transaction interiors — the
    // most order-sensitive outputs the simulator has. One policy-rich
    // spec, fully observed, across the whole shard matrix.
    let mut cfg = SystemConfig::scaled(16);
    cfg.policy = PolicyConfig::combined(
        WbhtConfig {
            entries: 512,
            assoc: 16,
            ..Default::default()
        },
        SnarfConfig {
            entries: 512,
            ..Default::default()
        },
    );
    cfg.max_outstanding = 6;
    cfg.seed = 0xBEEF;
    let mut base = RunSpec::for_workload(cfg, Workload::Trade2, 1_200);
    base.audit = true;

    let mut oracle: Option<(Vec<u8>, String)> = None;
    for shards in SHARD_COUNTS {
        let mut spec = base.clone();
        spec.span_tracer = SpanTracer::sampled(1);
        spec.shards = shards;
        let report = run(spec).expect("audited sharded run");
        let bytes = chrome_bytes(&report.spans);
        let json = report.to_json();
        assert!(
            json.contains("\"audit_abort_precision\":"),
            "audit section missing at shards={shards}"
        );
        match &oracle {
            None => oracle = Some((bytes, json)),
            Some((golden_bytes, golden_json)) => {
                assert_eq!(
                    golden_bytes, &bytes,
                    "golden span trace diverged at shards={shards}"
                );
                assert_eq!(
                    golden_json, &json,
                    "audited JSON diverged at shards={shards}"
                );
            }
        }
    }
}

#[test]
fn sharding_composes_with_scaled_out_topology() {
    // 16 cores → 32 threads, 8 L2 ring agents: the topology axis the
    // sharded frontend exists to serve must itself pass the oracle.
    let mut cfg = SystemConfig::with_cores(16);
    cfg.l2_slice_bytes = 32 * 1024;
    cfg.l3 = cmp_hierarchies::mem::L3Config::scaled(16);
    if let Some(l1) = &mut cfg.l1 {
        l1.size_bytes = 4 * 1024;
    }
    let base = RunSpec::for_workload(cfg, Workload::Tp, 400);
    let serial = run(base.clone()).expect("serial oracle");
    for shards in SHARD_COUNTS {
        let mut spec = base.clone();
        spec.shards = shards;
        let sharded = run(spec).expect("sharded run");
        assert_eq!(
            serial.to_json(),
            sharded.to_json(),
            "32-thread topology diverged at shards={shards}"
        );
    }
}
