//! Trace-driven methodology: record a synthetic workload to the binary
//! trace format, replay it through the simulator, and verify the replay
//! behaves like the paper's trace-fed Mambo runs.

use cmp_hierarchies::adaptive::{System, SystemConfig};
use cmp_hierarchies::trace::{
    file, ReferenceSource, SyntheticWorkload, ThreadId, TracePlayback, Workload,
};

#[test]
fn recorded_trace_replays_deterministically() {
    let cfg = SystemConfig::scaled(16);
    let params = Workload::Cpw2.params(cfg.num_threads(), cfg.cache_scale());
    let mut gen = SyntheticWorkload::new(params, 99).unwrap();
    let records = gen.generate(32_000); // 2000 per thread

    // Round-trip through the on-disk format.
    let mut buf = Vec::new();
    file::write_trace(&mut buf, &records).unwrap();
    let loaded = file::read_trace(&buf[..]).unwrap();
    assert_eq!(loaded, records);

    let run = |records: Vec<_>| {
        let playback = TracePlayback::new("cpw2-trace", records, 16, 1);
        let mut sys = System::with_source(cfg.clone(), Box::new(playback)).unwrap();
        sys.run(1_500)
    };
    let a = run(loaded.clone());
    let b = run(loaded);
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.refs, 1_500 * 16);
    assert!(a.cycles > 0);
}

#[test]
fn playback_wraps_short_traces() {
    let cfg = SystemConfig::scaled(16);
    let params = Workload::NotesBench.params(cfg.num_threads(), cfg.cache_scale());
    let mut gen = SyntheticWorkload::new(params, 7).unwrap();
    // Only 100 records per thread, but the run wants 500: wraps.
    let records = gen.generate(1_600);
    let playback = TracePlayback::new("short", records, 16, 1);
    let mut sys = System::with_source(cfg, Box::new(playback)).unwrap();
    let stats = sys.run(500);
    assert_eq!(stats.refs, 500 * 16);
}

#[test]
fn playback_and_synthetic_agree_on_reference_stream() {
    // Replaying a recorded synthetic stream must present the simulator
    // with the same per-thread references the live generator would.
    let cfg = SystemConfig::scaled(16);
    let params = Workload::Tp.params(cfg.num_threads(), cfg.cache_scale());
    let mut live = SyntheticWorkload::new(params.clone(), 5).unwrap();
    let mut recorder = SyntheticWorkload::new(params, 5).unwrap();
    let records = recorder.generate(160);
    let mut playback = TracePlayback::new("tp", records, 16, 1);
    for i in 0..160 {
        let t = ThreadId::new((i % 16) as u16);
        assert_eq!(playback.next_record(t), live.next_record(t));
    }
}
