//! `cmpsim` — command-line driver for the CMP cache-hierarchy simulator.
//!
//! Runs one simulation and prints a report, optionally as CSV.
//!
//! ```text
//! cmpsim [--workload tp|cpw2|notesbench|trade2] [--policy baseline|wbht|snarf|combined]
//!        [--entries N] [--outstanding 1..6] [--refs N] [--scale N] [--seed N]
//!        [--trace FILE] [--granularity N] [--global-wbht] [--csv]
//! ```

use std::process::ExitCode;

use cmp_hierarchies::adaptive::{
    PolicyConfig, SnarfConfig, System, SystemConfig, UpdateScope, WbhtConfig,
};
use cmp_hierarchies::trace::{file as trace_file, TracePlayback, Workload};

#[derive(Debug)]
struct Args {
    workload: Workload,
    policy: String,
    entries: u64,
    outstanding: u32,
    refs: u64,
    scale: u64,
    seed: u64,
    trace: Option<String>,
    granularity: u64,
    global_wbht: bool,
    csv: bool,
    json: bool,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            workload: Workload::Trade2,
            policy: "baseline".into(),
            entries: 0, // 0 = scaled paper default
            outstanding: 6,
            refs: 20_000,
            scale: 8,
            seed: 0x1BAD_B002,
            trace: None,
            granularity: 1,
            global_wbht: false,
            csv: false,
            json: false,
        }
    }
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .ok_or_else(|| format!("missing value for {name}"))
        };
        match flag.as_str() {
            "--workload" | "-w" => {
                args.workload = match value("--workload")?.to_lowercase().as_str() {
                    "tp" => Workload::Tp,
                    "cpw2" => Workload::Cpw2,
                    "notesbench" | "nb" => Workload::NotesBench,
                    "trade2" => Workload::Trade2,
                    other => return Err(format!("unknown workload {other}")),
                }
            }
            "--policy" | "-p" => args.policy = value("--policy")?.to_lowercase(),
            "--entries" => args.entries = parse_num(&value("--entries")?)?,
            "--outstanding" | "-o" => args.outstanding = parse_num(&value("--outstanding")?)? as u32,
            "--refs" | "-n" => args.refs = parse_num(&value("--refs")?)?,
            "--scale" => args.scale = parse_num(&value("--scale")?)?,
            "--seed" => args.seed = parse_num(&value("--seed")?)?,
            "--trace" => args.trace = Some(value("--trace")?),
            "--granularity" => args.granularity = parse_num(&value("--granularity")?)?,
            "--global-wbht" => args.global_wbht = true,
            "--csv" => args.csv = true,
            "--json" => args.json = true,
            "--help" | "-h" => {
                println!("{}", HELP);
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other} (try --help)")),
        }
    }
    Ok(args)
}

fn parse_num(s: &str) -> Result<u64, String> {
    let s = s.replace('_', "");
    if let Some(hex) = s.strip_prefix("0x") {
        u64::from_str_radix(hex, 16).map_err(|e| format!("bad number {s}: {e}"))
    } else {
        s.parse().map_err(|e| format!("bad number {s}: {e}"))
    }
}

const HELP: &str = "cmpsim - CMP cache-hierarchy simulator (ISCA 2005 reproduction)

USAGE:
    cmpsim [OPTIONS]

OPTIONS:
    -w, --workload NAME    tp | cpw2 | notesbench | trade2   [trade2]
    -p, --policy NAME      baseline | wbht | snarf | combined [baseline]
        --entries N        history-table entries (0 = scaled 32K) [0]
    -o, --outstanding N    max outstanding misses/thread (1-6) [6]
    -n, --refs N           references per thread [20000]
        --scale N          capacity divisor vs the paper system [8]
        --seed N           workload RNG seed
        --trace FILE       replay a CMPTRC01 trace instead of a synthetic workload
        --granularity N    lines per WBHT entry (power of two) [1]
        --global-wbht      allocate WBHT entries in all L2s (Figure 3 mode)
        --csv              machine-readable one-line CSV output
        --json             machine-readable JSON summary";

fn main() -> ExitCode {
    match real_main() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("cmpsim: {e}");
            ExitCode::FAILURE
        }
    }
}

fn real_main() -> Result<(), String> {
    let args = parse_args()?;
    let mut cfg = if args.scale <= 1 {
        SystemConfig::paper()
    } else {
        SystemConfig::scaled(args.scale)
    };
    cfg.max_outstanding = args.outstanding.clamp(1, 64);
    cfg.seed = args.seed;
    let entries = if args.entries == 0 {
        (32 * 1024 / args.scale.max(1)).max(256)
    } else {
        args.entries
    };
    let scope = if args.global_wbht {
        UpdateScope::Global
    } else {
        UpdateScope::Local
    };
    cfg.policy = match args.policy.as_str() {
        "baseline" => PolicyConfig::Baseline,
        "wbht" => PolicyConfig::Wbht(WbhtConfig {
            entries,
            assoc: 16,
            scope,
            granularity: args.granularity,
        }),
        "snarf" => PolicyConfig::Snarf(SnarfConfig {
            entries,
            ..Default::default()
        }),
        "combined" => PolicyConfig::Combined(
            WbhtConfig {
                entries: (entries / 2).max(256),
                assoc: 16,
                scope,
                granularity: args.granularity,
            },
            SnarfConfig {
                entries: (entries / 2).max(256),
                ..Default::default()
            },
        ),
        other => return Err(format!("unknown policy {other}")),
    };

    let mut sys = match &args.trace {
        Some(path) => {
            let data = std::fs::read(path).map_err(|e| format!("{path}: {e}"))?;
            let records =
                trace_file::read_trace(&data[..]).map_err(|e| format!("{path}: {e}"))?;
            let playback = TracePlayback::new(
                path.clone(),
                records,
                cfg.num_threads(),
                1,
            );
            System::with_source(cfg.clone(), Box::new(playback)).map_err(|e| e.to_string())?
        }
        None => {
            let params = args.workload.params(cfg.num_threads(), cfg.cache_scale());
            System::new(cfg.clone(), params).map_err(|e| e.to_string())?
        }
    };
    let stats = sys.run(args.refs);

    let l3 = sys.l3().stats();
    let l3_hit = if l3.read_hits + l3.read_misses > 0 {
        l3.read_hits as f64 / (l3.read_hits + l3.read_misses) as f64
    } else {
        0.0
    };
    if args.json {
        println!(
            concat!(
                "{{\"workload\":\"{}\",\"policy\":\"{}\",\"outstanding\":{},",
                "\"cycles\":{},\"refs\":{},\"l2_hit_rate\":{:.6},\"l3_load_hit_rate\":{:.6},",
                "\"wb_requests\":{},\"wb_clean_aborted\":{},\"wb_clean_redundant_rate\":{:.6},",
                "\"wb_snarfed\":{},\"retries_l3\":{},\"off_chip\":{},",
                "\"mean_miss_latency\":{:.2}}}"
            ),
            args.workload.name(),
            args.policy,
            args.outstanding,
            stats.cycles,
            stats.refs,
            stats.l2_hit_rate(),
            l3_hit,
            stats.wb.requests(),
            stats.wb.clean_aborted,
            stats.wb.clean_redundant_rate(),
            stats.wb.snarfed,
            stats.retries_l3,
            stats.off_chip_accesses(),
            stats.miss_latency.mean(),
        );
    } else if args.csv {
        println!(
            "workload,policy,outstanding,cycles,refs,l2_hit,l3_hit,wb_requests,clean_aborted,\
             clean_redundant,snarfed,retries_l3,offchip"
        );
        println!(
            "{},{},{},{},{},{:.4},{:.4},{},{},{:.4},{},{},{}",
            args.workload.name(),
            args.policy,
            args.outstanding,
            stats.cycles,
            stats.refs,
            stats.l2_hit_rate(),
            l3_hit,
            stats.wb.requests(),
            stats.wb.clean_aborted,
            stats.wb.clean_redundant_rate(),
            stats.snarf.snarfed,
            stats.retries_l3,
            stats.off_chip_accesses(),
        );
    } else {
        println!("workload      : {}", args.workload.name());
        println!("policy        : {}", args.policy);
        println!("outstanding   : {}", args.outstanding);
        println!("cycles        : {}", stats.cycles);
        println!("references    : {}", stats.refs);
        println!("L2 hit rate   : {:.1}%", stats.l2_hit_rate() * 100.0);
        println!("L3 load hits  : {:.1}%", l3_hit * 100.0);
        println!("WB requests   : {}", stats.wb.requests());
        println!("  redundant   : {:.1}%", stats.wb.clean_redundant_rate() * 100.0);
        println!("  WBHT aborts : {}", stats.wb.clean_aborted);
        println!("  snarfed     : {}", stats.wb.snarfed);
        println!("L3 retries    : {}", stats.retries_l3);
        println!("off-chip      : {}", stats.off_chip_accesses());
        println!("mean miss lat : {:.0} cycles", stats.miss_latency.mean());
    }
    Ok(())
}
