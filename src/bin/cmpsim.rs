//! `cmpsim` — command-line driver for the CMP cache-hierarchy simulator.
//!
//! Runs one simulation and prints a report, optionally as CSV or JSON
//! (both rendered from one shared metrics registry, so the two formats
//! always agree). `--trace-events` streams typed simulator events to a
//! JSONL file, `--interval-stats` samples counters periodically, and
//! `--trace-spans` writes per-transaction phase timelines as a Chrome
//! trace-event JSON file loadable in Perfetto.
//!
//! ```text
//! cmpsim [--workload tp|cpw2|notesbench|trade2] [--policy baseline|wbht|snarf|combined]
//!        [--entries N] [--outstanding 1..6] [--refs N] [--scale N] [--seed N]
//!        [--shards N] [--cores N]
//!        [--trace FILE] [--granularity N] [--global-wbht] [--csv] [--json]
//!        [--audit] [--metrics-out FILE]
//!        [--trace-events FILE] [--interval-stats N]
//!        [--trace-spans FILE] [--span-sample N]
//!        [--profile-host] [--profile-stride N] [--stream-telemetry[=PATH]]
//!        [--progress[=SECS]] [--quiet] [--verbose]
//! ```

use std::process::ExitCode;

use cmp_hierarchies::adaptive::{
    chrome_decision_events, HybridConfig, PolicyConfig, RdcbConfig, RunReport, SnarfConfig, System,
    SystemConfig, UpdateScope, WbhtConfig,
};
use cmp_hierarchies::engine::profiler::{chrome_host_events, HostProfiler, DEFAULT_STRIDE};
use cmp_hierarchies::engine::progress::ProgressMeter;
use cmp_hierarchies::engine::spans::{write_chrome_trace_with, SpanTracer};
use cmp_hierarchies::engine::stream::TelemetryStream;
use cmp_hierarchies::engine::telemetry::{TelemetryConfig, DEFAULT_INTERVAL};
use cmp_hierarchies::engine::Cycle;
use cmp_hierarchies::trace::{file as trace_file, TracePlayback, Workload};

#[derive(Debug)]
struct Args {
    workload: Workload,
    policy: String,
    entries: u64,
    outstanding: u32,
    refs: u64,
    scale: u64,
    seed: u64,
    shards: usize,
    cores: Option<u8>,
    trace: Option<String>,
    granularity: u64,
    global_wbht: bool,
    csv: bool,
    json: bool,
    audit: bool,
    metrics_out: Option<String>,
    trace_events: Option<String>,
    interval_stats: Option<Cycle>,
    trace_spans: Option<String>,
    span_sample: u64,
    profile_host: bool,
    profile_stride: u32,
    /// `Some(None)` = stream to stdout, `Some(Some(path))` = Unix socket.
    stream_telemetry: Option<Option<String>>,
    progress_secs: Option<f64>,
    quiet: bool,
    verbose: bool,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            workload: Workload::Trade2,
            policy: "baseline".into(),
            entries: 0, // 0 = scaled paper default
            outstanding: 6,
            refs: 20_000,
            scale: 8,
            seed: 0x1BAD_B002,
            shards: 1,
            cores: None,
            trace: None,
            granularity: 1,
            global_wbht: false,
            csv: false,
            json: false,
            audit: false,
            metrics_out: None,
            trace_events: None,
            interval_stats: None,
            trace_spans: None,
            span_sample: 1,
            profile_host: false,
            profile_stride: DEFAULT_STRIDE,
            stream_telemetry: None,
            progress_secs: None,
            quiet: false,
            verbose: false,
        }
    }
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("missing value for {name}"));
        match flag.as_str() {
            "--workload" | "-w" => {
                args.workload = match value("--workload")?.to_lowercase().as_str() {
                    "tp" => Workload::Tp,
                    "cpw2" => Workload::Cpw2,
                    "notesbench" | "nb" => Workload::NotesBench,
                    "trade2" => Workload::Trade2,
                    other => return Err(format!("unknown workload {other}")),
                }
            }
            "--policy" | "-p" => args.policy = value("--policy")?.to_lowercase(),
            "--entries" => args.entries = parse_num(&value("--entries")?)?,
            "--outstanding" | "-o" => {
                args.outstanding = parse_num(&value("--outstanding")?)? as u32
            }
            "--refs" | "-n" => args.refs = parse_num(&value("--refs")?)?,
            "--scale" => args.scale = parse_num(&value("--scale")?)?,
            "--seed" => args.seed = parse_num(&value("--seed")?)?,
            "--shards" => args.shards = parse_num(&value("--shards")?)?.max(1) as usize,
            "--cores" => args.cores = Some(parse_num(&value("--cores")?)? as u8),
            "--trace" => args.trace = Some(value("--trace")?),
            "--granularity" => args.granularity = parse_num(&value("--granularity")?)?,
            "--global-wbht" => args.global_wbht = true,
            "--csv" => args.csv = true,
            "--json" => args.json = true,
            "--audit" => args.audit = true,
            "--metrics-out" => args.metrics_out = Some(value("--metrics-out")?),
            "--trace-events" => args.trace_events = Some(value("--trace-events")?),
            "--interval-stats" => {
                args.interval_stats = Some(parse_num(&value("--interval-stats")?)?.max(1));
            }
            "--trace-spans" => args.trace_spans = Some(value("--trace-spans")?),
            "--span-sample" => {
                args.span_sample = parse_num(&value("--span-sample")?)?.max(1);
            }
            "--profile-host" => args.profile_host = true,
            "--profile-stride" => {
                args.profile_stride = parse_num(&value("--profile-stride")?)?.max(1) as u32;
            }
            "--stream-telemetry" => args.stream_telemetry = Some(None),
            "--progress" => args.progress_secs = Some(5.0),
            "--quiet" | "-q" => args.quiet = true,
            "--verbose" | "-v" => args.verbose = true,
            "--help" | "-h" => {
                println!("{}", HELP);
                std::process::exit(0);
            }
            other => {
                if let Some(path) = other.strip_prefix("--stream-telemetry=") {
                    args.stream_telemetry = Some(Some(path.to_string()));
                } else if let Some(secs) = other.strip_prefix("--progress=") {
                    args.progress_secs = Some(
                        secs.parse::<f64>()
                            .map_err(|e| format!("bad --progress period {secs}: {e}"))?,
                    );
                } else {
                    return Err(format!("unknown flag {other} (try --help)"));
                }
            }
        }
    }
    Ok(args)
}

/// Parses a `--policy` spec: one mechanism name or several joined with
/// `+` (e.g. `wbht+hybrid`). `combined` is shorthand for the paper's
/// wbht+snarf corner with the table budget split between the two.
fn parse_policy(
    spec: &str,
    entries: u64,
    scope: UpdateScope,
    granularity: u64,
) -> Result<PolicyConfig, String> {
    let mut p = PolicyConfig::default();
    for part in spec.split('+') {
        match part.trim() {
            "base" | "baseline" => {}
            "wbht" => {
                p.wbht = Some(WbhtConfig {
                    entries,
                    assoc: 16,
                    scope,
                    granularity,
                })
            }
            "snarf" => {
                p.snarf = Some(SnarfConfig {
                    entries,
                    ..Default::default()
                })
            }
            "combined" => {
                p.wbht = Some(WbhtConfig {
                    entries: (entries / 2).max(256),
                    assoc: 16,
                    scope,
                    granularity,
                });
                p.snarf = Some(SnarfConfig {
                    entries: (entries / 2).max(256),
                    ..Default::default()
                });
            }
            "rdcb" => {
                p.rdcb = Some(RdcbConfig {
                    entries,
                    ..Default::default()
                })
            }
            "hybrid" => {
                p.hybrid = Some(HybridConfig {
                    entries,
                    ..Default::default()
                })
            }
            other => {
                return Err(format!(
                    "unknown policy {other} (expected base|wbht|snarf|combined|rdcb|hybrid, \
                     joinable with '+')"
                ))
            }
        }
    }
    Ok(p)
}

fn parse_num(s: &str) -> Result<u64, String> {
    let s = s.replace('_', "");
    if let Some(hex) = s.strip_prefix("0x") {
        u64::from_str_radix(hex, 16).map_err(|e| format!("bad number {s}: {e}"))
    } else {
        s.parse().map_err(|e| format!("bad number {s}: {e}"))
    }
}

const HELP: &str = "cmpsim - CMP cache-hierarchy simulator (ISCA 2005 reproduction)

USAGE:
    cmpsim [OPTIONS]

OPTIONS:
    -w, --workload NAME    tp | cpw2 | notesbench | trade2   [trade2]
    -p, --policy NAME      baseline | wbht | snarf | combined | rdcb |
                           hybrid, joinable with '+' (e.g. wbht+hybrid)
                           [baseline]
        --entries N        history-table entries (0 = scaled 32K) [0]
    -o, --outstanding N    max outstanding misses/thread (1-6) [6]
    -n, --refs N           references per thread [20000]
        --scale N          capacity divisor vs the paper system [8]
        --seed N           workload RNG seed
        --shards N         generate the workload on N producer threads
                           feeding the event loop through lock-free
                           rings; output is byte-identical to serial [1]
        --cores N          cores on the chip (multiple of 2; scales the
                           L2 agent count on the ring with it) [8]
        --trace FILE       replay a CMPTRC01 trace instead of a synthetic workload
        --granularity N    lines per WBHT entry (power of two) [1]
        --global-wbht      allocate WBHT entries in all L2s (Figure 3 mode)
        --csv              machine-readable one-line CSV output
        --json             machine-readable JSON summary
        --audit            record adaptive-decision outcomes (WBHT
                           abort precision, snarf usefulness, net
                           cycles) as audit_* metrics, decision frames
                           on --stream-telemetry, and a counter track
                           in --trace-spans
        --metrics-out F    also write the metrics registry to F (JSON,
                           or CSV with --csv); composes with
                           --stream-telemetry on stdout
        --trace-events F   stream typed simulator events to F as JSON lines
        --interval-stats N snapshot counters every N cycles (see --verbose)
        --trace-spans F    write per-transaction phase spans to F as a
                           Chrome trace-event JSON (open in Perfetto)
        --span-sample N    trace every Nth transaction span only [1]
        --profile-host     attribute host wall-clock time per pipeline
                           stage (summary on stderr; merged into
                           --trace-spans as a separate Perfetto track)
        --profile-stride N time 1 of every N event-loop iterations [32]
        --stream-telemetry[=PATH]
                           stream interval counters + host samples as
                           length-prefixed NDJSON to stdout, or serve
                           them on a Unix socket at PATH (attach with
                           telemetry_tail; combine stdout mode with -q)
        --progress[=SECS]  heartbeat to stderr every SECS wall-seconds
                           (cycles, cycles/sec EMA, ETA) [5]
    -q, --quiet            suppress the human-readable report (also
                           silences --progress and the host summary)
    -v, --verbose          additionally print per-interval counter deltas

OBSERVABILITY:
    --trace-events, --interval-stats, --trace-spans, --profile-host, and
    --stream-telemetry are zero-cost when off. The JSONL event trace can
    be summarized with the telemetry_report tool; span traces feed
    Perfetto and span_report:
        cmpsim -p combined --trace-events out.jsonl --interval-stats 100000
        telemetry_report out.jsonl
        cmpsim -p combined --trace-spans spans.json --span-sample 16
        cmpsim -p combined --profile-host --trace-spans spans.json
        cmpsim -q --stream-telemetry | telemetry_tail -";

fn main() -> ExitCode {
    match real_main() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("cmpsim: {e}");
            ExitCode::FAILURE
        }
    }
}

fn real_main() -> Result<(), String> {
    let args = parse_args()?;
    let mut cfg = if args.scale <= 1 {
        SystemConfig::paper()
    } else {
        SystemConfig::scaled(args.scale)
    };
    cfg.max_outstanding = args.outstanding.clamp(1, 64);
    cfg.seed = args.seed;
    if let Some(cores) = args.cores {
        // The >8-core topology axis: more core pairs, more L2 agents on
        // the ring, same per-L2 capacity at the chosen scale.
        if cores < 2 || !cores.is_multiple_of(2) {
            return Err(format!(
                "--cores expects a positive multiple of 2 (one L2 per core pair), got {cores}"
            ));
        }
        cfg.cores = cores;
        cfg.num_l2 = cores / 2;
    }
    let entries = if args.entries == 0 {
        (32 * 1024 / args.scale.max(1)).max(256)
    } else {
        args.entries
    };
    let scope = if args.global_wbht {
        UpdateScope::Global
    } else {
        UpdateScope::Local
    };
    cfg.policy = parse_policy(&args.policy, entries, scope, args.granularity)?;

    let mut sys = match &args.trace {
        Some(path) => {
            if args.shards > 1 {
                return Err("--shards applies to synthetic workloads, not --trace playback".into());
            }
            let data = std::fs::read(path).map_err(|e| format!("{path}: {e}"))?;
            let records = trace_file::read_trace(&data[..]).map_err(|e| format!("{path}: {e}"))?;
            let playback = TracePlayback::new(path.clone(), records, cfg.num_threads(), 1);
            System::with_source(cfg.clone(), Box::new(playback)).map_err(|e| e.to_string())?
        }
        None if args.shards > 1 => {
            // Sharded frontend: generation moves to worker threads with
            // ring-hop-bounded run-ahead; output stays byte-identical.
            use cmp_hierarchies::engine::shard::Lookahead;
            use cmp_hierarchies::trace::{ShardedWorkload, SyntheticWorkload};
            let params = args.workload.params(cfg.num_threads(), cfg.cache_scale());
            let generator = SyntheticWorkload::new(params, cfg.seed).map_err(|e| e.to_string())?;
            let source = ShardedWorkload::spawn_with_lookahead(
                generator,
                args.shards,
                Lookahead::from_ring_hop(cfg.ring.hop_cycles),
            );
            System::with_source(cfg.clone(), Box::new(source)).map_err(|e| e.to_string())?
        }
        None => {
            let params = args.workload.params(cfg.num_threads(), cfg.cache_scale());
            System::new(cfg.clone(), params).map_err(|e| e.to_string())?
        }
    };

    let tel_cfg = TelemetryConfig {
        trace_path: args.trace_events.clone().map(Into::into),
        interval: args.interval_stats,
    };
    let telemetry = tel_cfg
        .build()
        .map_err(|e| format!("--trace-events: {e}"))?;
    if telemetry.is_enabled() {
        sys.set_telemetry(telemetry.clone());
    }
    if let Some(period) = args.interval_stats {
        sys.enable_interval_sampling(period);
    }
    let span_tracer = if args.trace_spans.is_some() {
        SpanTracer::sampled(args.span_sample)
    } else {
        SpanTracer::disabled()
    };
    if span_tracer.is_enabled() {
        sys.set_span_tracer(span_tracer.clone());
    }
    // Streaming implies the profiler: HostSample frames (gauges, rates,
    // per-stage attribution) are the payload a tail attaches for.
    let host = if args.profile_host || args.stream_telemetry.is_some() {
        HostProfiler::with_stride(args.profile_stride)
    } else {
        HostProfiler::disabled()
    };
    if host.is_enabled() {
        sys.set_host_profiler(host.clone());
    }
    let stream = match &args.stream_telemetry {
        None => TelemetryStream::disabled(),
        Some(None) => TelemetryStream::stdout(),
        Some(Some(path)) => TelemetryStream::listen_unix(std::path::Path::new(path))
            .map_err(|e| format!("--stream-telemetry {path}: {e}"))?,
    };
    if stream.is_enabled() {
        sys.set_stream(stream.clone(), 0);
    }
    // Host observation samples on the interval cadence; give it one when
    // the user didn't pick a period (observation only — metrics and
    // simulated behaviour are untouched).
    if (host.is_enabled() || stream.is_enabled()) && args.interval_stats.is_none() {
        sys.enable_interval_sampling(DEFAULT_INTERVAL);
    }
    if let Some(secs) = args.progress_secs {
        if !args.quiet {
            sys.set_progress(ProgressMeter::new(secs));
        }
    }
    if args.audit {
        sys.enable_decision_audit();
    }

    let stats = sys.run(args.refs);
    telemetry.flush();

    if let Some(path) = &args.trace_spans {
        let file = std::fs::File::create(path).map_err(|e| format!("--trace-spans {path}: {e}"))?;
        let mut w = std::io::BufWriter::new(file);
        let mut extras = chrome_host_events(&host.samples());
        if let Some(a) = sys.decision_audit() {
            extras.extend(chrome_decision_events(a.history()));
        }
        write_chrome_trace_with(&span_tracer.finished_spans(), &extras, &mut w)
            .map_err(|e| format!("--trace-spans {path}: {e}"))?;
    }
    if host.is_enabled() && !args.quiet {
        eprint!("{}", host.report().render());
    }

    let tracing_spans = span_tracer.is_enabled();
    let report = RunReport {
        workload: args
            .trace
            .clone()
            .unwrap_or_else(|| args.workload.name().to_string()),
        policy: cfg.policy.label(),
        max_outstanding: cfg.max_outstanding,
        stats,
        l3: sys.l3_stats(),
        mem: sys.memory().stats(),
        ring: sys.ring_stats(),
        wbht: sys.wbht_stats(),
        snarf_table: sys.snarf_table_stats(),
        rdcb: sys.rdcb_stats(),
        hybrid: sys.hybrid_stats(),
        intervals: sys.interval_records().to_vec(),
        spans: if tracing_spans {
            span_tracer.finished_spans()
        } else {
            Vec::new()
        },
        span_summary: tracing_spans.then(|| span_tracer.summary()),
        host: host.is_enabled().then(|| host.report()),
        audit: sys.decision_audit_summary(),
    };
    // One registry feeds every machine-readable format, so JSON and CSV
    // cannot drift apart (they once disagreed on which snarf counter the
    // "snarfed" column reported).
    let metrics = report.metrics();

    if let Some(path) = &args.metrics_out {
        let body = if args.csv {
            let (header, row) = metrics.to_csv();
            format!("{header}\n{row}\n")
        } else {
            format!("{}\n", metrics.to_json())
        };
        std::fs::write(path, body).map_err(|e| format!("--metrics-out {path}: {e}"))?;
    }

    if args.json {
        println!("{}", metrics.to_json());
    } else if args.csv {
        let (header, row) = metrics.to_csv();
        println!("{header}");
        println!("{row}");
    } else if !args.quiet {
        let s = &report.stats;
        let l3_hit = match metrics.get("l3_load_hit_rate") {
            Some(cmp_hierarchies::engine::metrics::Metric::Gauge(v)) => *v,
            _ => 0.0,
        };
        println!("workload      : {}", report.workload);
        println!("policy        : {}", report.policy);
        println!("outstanding   : {}", report.max_outstanding);
        println!("cycles        : {}", s.cycles);
        println!("references    : {}", s.refs);
        println!("L2 hit rate   : {:.1}%", s.l2_hit_rate() * 100.0);
        println!("L3 load hits  : {:.1}%", l3_hit * 100.0);
        println!("WB requests   : {}", s.wb.requests());
        println!(
            "  redundant   : {:.1}%",
            s.wb.clean_redundant_rate() * 100.0
        );
        println!("  WBHT aborts : {}", s.wb.clean_aborted);
        println!("  snarfed     : {}", s.wb.snarfed);
        println!("L3 retries    : {}", s.retries_l3);
        println!("off-chip      : {}", s.off_chip_accesses());
        println!("mean miss lat : {:.0} cycles", s.miss_latency.mean());
    }

    if args.verbose && !report.intervals.is_empty() {
        let period = args.interval_stats.unwrap_or_default();
        println!(
            "intervals     : {} (period {period})",
            report.intervals.len()
        );
        for rec in &report.intervals {
            let deltas: Vec<String> = rec
                .counters
                .iter()
                .filter(|(_, v)| *v > 0)
                .map(|(n, v)| format!("{n}={v}"))
                .collect();
            println!("  [{}, {}) {}", rec.start, rec.end, deltas.join(" "));
        }
    }
    Ok(())
}
