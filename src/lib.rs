//! # cmp-hierarchies
//!
//! A reproduction of *"Adaptive Mechanisms and Policies for Managing
//! Cache Hierarchies in Chip Multiprocessors"* (Speight, Shafi, Zhang,
//! Rajamony — ISCA 2005).
//!
//! This umbrella crate re-exports the whole simulator stack:
//!
//! * [`engine`] — discrete-event simulation substrate,
//! * [`cache`] — tag arrays, MSHRs, write-back queues, history tables,
//! * [`coherence`] — the snoop-based coherence protocol,
//! * [`ring`] — the bidirectional intrachip ring,
//! * [`mem`] — the L3 victim cache and memory controller,
//! * [`trace`] — trace records and synthetic commercial workloads,
//! * [`adaptive`] — the paper's contribution: write-back policies (WBHT,
//!   L2 snarfing) and the full CMP system model.
//!
//! See `README.md` for a quickstart and `DESIGN.md` for the architecture.

pub use cmp_adaptive_wb as adaptive;
pub use cmpsim_cache as cache;
pub use cmpsim_coherence as coherence;
pub use cmpsim_engine as engine;
pub use cmpsim_mem as mem;
pub use cmpsim_ring as ring;
pub use cmpsim_trace as trace;
