#!/usr/bin/env bash
# Full verification: build, tests, formatting, and lints.
# Tier-1 (ROADMAP.md) is the build + test pair; fmt and clippy extend it.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "==> cargo doc --no-deps (warnings denied)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --quiet

echo "==> golden traces regenerate cleanly"
UPDATE_GOLDEN=1 cargo test -q --test telemetry --test spans golden >/dev/null
if ! git diff --exit-code -- tests/golden >/dev/null; then
    git --no-pager diff --stat -- tests/golden
    echo "verify: FAILED — golden traces drifted from committed files" >&2
    echo "        (inspect with: git diff tests/golden; commit if intentional)" >&2
    exit 1
fi

echo "verify: OK"
