#!/usr/bin/env bash
# Full verification: build, tests, formatting, and lints.
# Tier-1 (ROADMAP.md) is the build + test pair; fmt and clippy extend it.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "verify: OK"
