#!/usr/bin/env bash
# Full verification: build, tests, formatting, and lints.
# Tier-1 (ROADMAP.md) is the build + test pair; fmt and clippy extend it.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "==> cargo doc --no-deps (warnings denied)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --quiet

echo "==> golden traces regenerate cleanly"
UPDATE_GOLDEN=1 cargo test -q --test telemetry --test spans golden >/dev/null
if ! git diff --exit-code -- tests/golden >/dev/null; then
    git --no-pager diff --stat -- tests/golden
    echo "verify: FAILED — golden traces drifted from committed files" >&2
    echo "        (inspect with: git diff tests/golden; commit if intentional)" >&2
    exit 1
fi

echo "==> source files stay under 900 lines"
# Monolith guard: the System decomposition must not silently regrow.
# Exempt files list a reason; everything else in src/ trees is capped.
max_lines=900
exempt=""  # e.g. "crates/foo/src/big_table.rs" (space-separated)
oversized=0
while IFS= read -r f; do
    case " $exempt " in *" $f "*) continue ;; esac
    lines=$(wc -l < "$f")
    if [ "$lines" -gt "$max_lines" ]; then
        echo "verify: $f has $lines lines (cap $max_lines)" >&2
        oversized=1
    fi
done < <(find src crates -path '*/src/*' -name '*.rs' | sort)
if [ "$oversized" -ne 0 ]; then
    echo "verify: FAILED — split oversized modules (or add to the exemption list with a reason)" >&2
    exit 1
fi

echo "==> criterion benches compile"
cargo bench -p cmpsim-bench --features bench --no-run --quiet

echo "==> throughput regression gate (scripts/bench.sh --check)"
# Fails when any pinned suite entry falls >20% below the cycles/sec
# committed in BENCH_PR10.json, or when a full-scale entry's recorded
# pre->post speedup is under 1.10x. CMPSIM_BENCH_NO_GATE=1 demotes to a
# warning on machines the committed numbers don't represent.
./scripts/bench.sh --check

echo "==> profiler overhead gate (bench_throughput --overhead-check)"
# The host profiler + telemetry stream at default settings must cost at
# most 3% cycles/sec. CMPSIM_BENCH_NO_GATE=1 demotes to a warning.
./target/release/bench_throughput --overhead-check

echo "==> decision-audit overhead gate (scripts/bench.sh --audit-overhead)"
# The --audit decision-outcome lineage must also cost at most 3%
# cycles/sec when on (and exactly nothing when off — see the next gate).
./scripts/bench.sh --audit-overhead

echo "==> decision-audit consistency gate (policy_audit --check)"
# Audit-on metrics minus the audit_* section must be byte-identical to
# audit-off, and (nearly) every recorded decision must resolve.
CMPSIM_PROFILE=smoke ./target/release/policy_audit --check >/dev/null

echo "==> policy matrix smoke (cmpsim --policy, every variant + a composition)"
# Every selectable policy — including the post-paper rdcb and hybrid
# ones and a '+' composition — must run and emit well-formed JSON.
for pol in baseline wbht snarf combined rdcb hybrid wbht+hybrid; do
    if ! ./target/release/cmpsim --policy "$pol" --refs 2000 --seed 42 --json \
        | grep -q "\"policy\""; then
        echo "verify: FAILED — cmpsim --policy $pol did not produce a JSON report" >&2
        exit 1
    fi
done

echo "==> shard matrix smoke (cmpsim --shards 1,2,4 vs serial, 2 policies)"
# The sharded frontend must be a pure wall-clock optimization: for a
# representative pair of policies, every shard count must emit JSON
# byte-identical to the plain serial run (which omits --shards).
for pol in baseline combined; do
    shard_ref=$(mktemp)
    ./target/release/cmpsim --policy "$pol" --refs 2000 --seed 42 --json > "$shard_ref"
    for shards in 1 2 4; do
        if ! ./target/release/cmpsim --policy "$pol" --refs 2000 --seed 42 \
            --shards "$shards" --json | diff -q - "$shard_ref" >/dev/null; then
            rm -f "$shard_ref"
            echo "verify: FAILED — cmpsim --shards $shards diverged from serial (--policy $pol)" >&2
            exit 1
        fi
    done
    rm -f "$shard_ref"
done

echo "==> single-run sharding throughput gate (scripts/bench.sh --shard-check)"
# 20% no-regression floor on the serial and --shards 4 pinned entries in
# BENCH_PR9.json, plus a 1.5x single-run speedup floor on >=8-core
# hosts. CMPSIM_BENCH_NO_GATE=1 demotes to a warning.
./scripts/bench.sh --shard-check

echo "==> packed tag-array static layout assertions"
# The packed word must stay exactly 8 bytes (the whole point of the
# backend); the randomized mirror suite cross-checks packed vs generic
# behavior in the same binary.
cargo test -q -p cmpsim-cache --test mirror >/dev/null

echo "==> legacy-tags differential oracle smoke (generic vs packed build)"
# A whole-build diff: the simulator compiled on the generic tag-array
# backend must emit byte-identical JSON to the default packed build.
# Separate target-dir so the feature flip doesn't thrash the main cache.
cargo build --release --features legacy-tags --bin cmpsim \
    --target-dir target/legacy-tags --quiet
legacy_ref=$(mktemp)
./target/release/cmpsim --policy combined --refs 2000 --seed 42 --json > "$legacy_ref"
if ! ./target/legacy-tags/release/cmpsim --policy combined --refs 2000 --seed 42 --json \
    | diff -q - "$legacy_ref" >/dev/null; then
    rm -f "$legacy_ref"
    echo "verify: FAILED — legacy-tags (generic) build diverged from the packed build" >&2
    exit 1
fi
rm -f "$legacy_ref"

echo "==> policy face-off harness gate (exp_policy_faceoff --check)"
# Every contender must complete, the new policies must populate their
# report sections, and the span attribution must record fills.
CMPSIM_PROFILE=smoke ./target/release/exp_policy_faceoff --check

echo "==> live telemetry stream smoke (profile_report + telemetry_tail)"
# End to end: a --jobs 2 grid serves frames on a Unix socket while a
# tail attaches, consumes at least one host sample, and exits 0.
tel_sock="./target/verify-telemetry.sock"
rm -f "$tel_sock"
CMPSIM_PROFILE=smoke ./target/release/profile_report --jobs 2 \
    --stream-telemetry="$tel_sock" --wait-client 15 --check >/dev/null &
tel_pid=$!
if ! ./target/release/telemetry_tail --once --wait 15 "$tel_sock" >/dev/null; then
    kill "$tel_pid" 2>/dev/null || true
    rm -f "$tel_sock"
    echo "verify: FAILED — telemetry_tail could not consume a live host sample" >&2
    exit 1
fi
if ! wait "$tel_pid"; then
    rm -f "$tel_sock"
    echo "verify: FAILED — profile_report failed under a live stream (coverage < 95%?)" >&2
    exit 1
fi
rm -f "$tel_sock"

echo "==> parallel experiment driver is a pure wall-clock optimization"
# Smoke-profile exp_all serial vs parallel: identical numbers, and the
# parallel run must actually be parallel (faster on multi-core hosts).
smoke_serial=$(mktemp)
smoke_par=$(mktemp)
trap 'rm -f "$smoke_serial" "$smoke_par"' EXIT
t0=$(date +%s.%N)
CMPSIM_PROFILE=smoke ./target/release/exp_all --jobs 1 > "$smoke_serial"
t1=$(date +%s.%N)
CMPSIM_PROFILE=smoke ./target/release/exp_all --jobs "$(nproc)" > "$smoke_par"
t2=$(date +%s.%N)
# Per-experiment wall-clock lines differ by construction; strip them.
if ! diff <(grep -v '^(.*s)$' "$smoke_serial") <(grep -v '^(.*s)$' "$smoke_par") >/dev/null; then
    diff <(grep -v '^(.*s)$' "$smoke_serial") <(grep -v '^(.*s)$' "$smoke_par") | head -20 >&2
    echo "verify: FAILED — exp_all --jobs $(nproc) diverged from --jobs 1" >&2
    exit 1
fi
serial_s=$(echo "$t1 $t0" | awk '{printf "%.1f", $1 - $2}')
par_s=$(echo "$t2 $t1" | awk '{printf "%.1f", $1 - $2}')
echo "    serial ${serial_s}s, parallel ${par_s}s ($(nproc) jobs)"

echo "verify: OK"
