#!/usr/bin/env bash
# Pinned-workload throughput harness around the bench_throughput binary.
#
#   scripts/bench.sh             measure and print the suite as JSON
#   scripts/bench.sh --check     regression gate: fail when any entry is
#                                >20% below the post_cycles_per_sec
#                                committed in BENCH_PR10.json, or when a
#                                full-scale entry's recorded pre->post
#                                speedup is below 1.10x (entries with a
#                                recorded pre of 0 skip that floor with
#                                a note — unmeasured baselines)
#   scripts/bench.sh --update    re-measure and rewrite BENCH_PR10.json,
#                                keeping the recorded pre-PR baselines
#   scripts/bench.sh --audit-overhead
#                                decision-audit overhead gate: fail when
#                                --audit costs more than 3% cycles/sec
#   scripts/bench.sh --shard-check
#                                single-run sharding gate vs
#                                BENCH_PR9.json: 20% no-regression floor
#                                on the serial and --shards 4 entries,
#                                plus a 1.5x speedup floor on >=8-core
#                                hosts
#   scripts/bench.sh --shard-update
#                                re-measure and rewrite BENCH_PR9.json
#
# The gate compares wall-clock throughput, so it is machine- and
# load-sensitive: run it on an otherwise idle machine. Set
# CMPSIM_BENCH_NO_GATE=1 to demote a --check failure to a warning
# (e.g. on slower CI hosts where the committed numbers don't apply).
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -p cmpsim-bench --bin bench_throughput --quiet
BIN=./target/release/bench_throughput

case "${1:-}" in
    --check)
        exec "$BIN" --check BENCH_PR10.json
        ;;
    --audit-overhead)
        exec "$BIN" --audit-overhead-check
        ;;
    --update)
        tmp=$(mktemp)
        trap 'rm -f "$tmp"' EXIT
        "$BIN" --emit BENCH_PR10.json > "$tmp"
        mv "$tmp" BENCH_PR10.json
        trap - EXIT
        echo "bench: BENCH_PR10.json updated (pre_* baselines carried over)" >&2
        ;;
    --shard-check)
        exec "$BIN" --shard-bench --check BENCH_PR9.json
        ;;
    --shard-update)
        tmp=$(mktemp)
        trap 'rm -f "$tmp"' EXIT
        "$BIN" --shard-bench --emit BENCH_PR9.json > "$tmp"
        mv "$tmp" BENCH_PR9.json
        trap - EXIT
        echo "bench: BENCH_PR9.json updated" >&2
        ;;
    "")
        exec "$BIN" --emit
        ;;
    *)
        echo "usage: scripts/bench.sh [--check|--update|--audit-overhead|--shard-check|--shard-update]" >&2
        exit 2
        ;;
esac
