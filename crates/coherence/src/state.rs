//! Per-line coherence states.

use std::fmt;

use cmpsim_cache::PackedState;

/// Coherence state of a line resident in an L2 cache.
///
/// Only *valid* lines carry a state — invalidity is represented by the
/// line's absence from the tag array. The protocol is MESI extended with
/// POWER4's `SL` (shared-last, clean intervention source) and `T`
/// (tagged: shared dirty owner) states.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum L2State {
    /// Shared, read-only; cannot source interventions.
    #[default]
    Shared,
    /// Shared, read-only, designated intervention source ("shared last").
    /// At most one cache holds a line in `SL` at a time.
    SharedLast,
    /// Sole clean copy on chip; memory is up to date.
    Exclusive,
    /// Sole copy, dirty; memory is stale.
    Modified,
    /// Shared dirty owner (POWER4 "T"): other caches may hold `Shared`
    /// copies, this cache owns the dirty data and must cast it out.
    Tagged,
}

impl L2State {
    /// Does this copy hold dirt that must not be dropped?
    pub fn is_dirty(self) -> bool {
        matches!(self, L2State::Modified | L2State::Tagged)
    }

    /// May this copy source a cache-to-cache transfer? (All dirty lines
    /// and the `SL`/`E` subset of clean lines — paper §1.)
    pub fn can_intervene(self) -> bool {
        !matches!(self, L2State::Shared)
    }

    /// Is this the only copy allowed to exist on chip?
    pub fn is_exclusive(self) -> bool {
        matches!(self, L2State::Exclusive | L2State::Modified)
    }

    /// Is the line writable without a bus upgrade?
    pub fn is_writable(self) -> bool {
        self.is_exclusive()
    }

    /// State a *provider* transitions to after sourcing a read-shared
    /// intervention. Dirty owners keep ownership as `Tagged`; clean
    /// intervention sources hand `SL` status to the requester and keep a
    /// plain `Shared` copy (POWER4 behaviour).
    pub fn after_providing_shared(self) -> L2State {
        match self {
            L2State::Modified | L2State::Tagged => L2State::Tagged,
            L2State::Exclusive | L2State::SharedLast => L2State::Shared,
            L2State::Shared => L2State::Shared,
        }
    }

    /// State the *requester* installs after a read-shared fill from the
    /// given source, where `provider_was_dirty` says whether the data
    /// came from a dirty owner.
    pub fn requester_after_read(provider_was_dirty: bool) -> L2State {
        if provider_was_dirty {
            // Dirty owner retains ownership (T); we get a clean S copy.
            L2State::Shared
        } else {
            // Clean provider hands over shared-last status.
            L2State::SharedLast
        }
    }
}

/// Packed encoding for the L2 tag word: 3 bits, discriminant order
/// (`S`=0, `SL`=1, `E`=2, `M`=3, `T`=4). Encodings 5–7 are unused and
/// never produced; `from_bits` only ever sees values from `to_bits`.
impl PackedState for L2State {
    const BITS: u32 = 3;

    #[inline]
    fn to_bits(self) -> u64 {
        self as u64
    }

    #[inline]
    fn from_bits(bits: u64) -> Self {
        match bits {
            0 => L2State::Shared,
            1 => L2State::SharedLast,
            2 => L2State::Exclusive,
            3 => L2State::Modified,
            _ => L2State::Tagged,
        }
    }
}

impl fmt::Display for L2State {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            L2State::Shared => "S",
            L2State::SharedLast => "SL",
            L2State::Exclusive => "E",
            L2State::Modified => "M",
            L2State::Tagged => "T",
        };
        f.write_str(s)
    }
}

/// Coherence state of a line resident in the L3 victim cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum L3State {
    /// Clean copy; memory is up to date.
    #[default]
    Clean,
    /// Dirty copy; memory is stale, L3 must write back on eviction.
    Dirty,
}

impl L3State {
    /// Does eviction of this line require a memory write-back?
    pub fn is_dirty(self) -> bool {
        matches!(self, L3State::Dirty)
    }
}

/// Packed encoding for the L3 tag word: 1 bit (`Clean`=0, `Dirty`=1).
impl PackedState for L3State {
    const BITS: u32 = 1;

    #[inline]
    fn to_bits(self) -> u64 {
        self as u64
    }

    #[inline]
    fn from_bits(bits: u64) -> Self {
        if bits == 0 {
            L3State::Clean
        } else {
            L3State::Dirty
        }
    }
}

impl fmt::Display for L3State {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            L3State::Clean => "C",
            L3State::Dirty => "D",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dirty_states() {
        assert!(L2State::Modified.is_dirty());
        assert!(L2State::Tagged.is_dirty());
        assert!(!L2State::Shared.is_dirty());
        assert!(!L2State::SharedLast.is_dirty());
        assert!(!L2State::Exclusive.is_dirty());
    }

    #[test]
    fn intervention_subset() {
        // "cache-to-cache transfers for all dirty lines and a subset of
        // lines in the shared state"
        assert!(L2State::Modified.can_intervene());
        assert!(L2State::Tagged.can_intervene());
        assert!(L2State::SharedLast.can_intervene());
        assert!(L2State::Exclusive.can_intervene());
        assert!(!L2State::Shared.can_intervene());
    }

    #[test]
    fn exclusivity() {
        assert!(L2State::Exclusive.is_exclusive());
        assert!(L2State::Modified.is_exclusive());
        assert!(!L2State::Tagged.is_exclusive());
        assert!(!L2State::SharedLast.is_exclusive());
    }

    #[test]
    fn provider_transitions() {
        assert_eq!(L2State::Modified.after_providing_shared(), L2State::Tagged);
        assert_eq!(L2State::Tagged.after_providing_shared(), L2State::Tagged);
        assert_eq!(L2State::Exclusive.after_providing_shared(), L2State::Shared);
        assert_eq!(
            L2State::SharedLast.after_providing_shared(),
            L2State::Shared
        );
    }

    #[test]
    fn requester_transitions() {
        assert_eq!(L2State::requester_after_read(true), L2State::Shared);
        assert_eq!(L2State::requester_after_read(false), L2State::SharedLast);
    }

    #[test]
    fn l3_dirty() {
        assert!(L3State::Dirty.is_dirty());
        assert!(!L3State::Clean.is_dirty());
    }

    #[test]
    fn packed_roundtrip() {
        // Every state must survive the packed tag word's bit encoding,
        // within its declared width.
        for s in [
            L2State::Shared,
            L2State::SharedLast,
            L2State::Exclusive,
            L2State::Modified,
            L2State::Tagged,
        ] {
            let bits = s.to_bits();
            assert!(bits < 1 << L2State::BITS, "{s} encoding too wide");
            assert_eq!(L2State::from_bits(bits), s);
        }
        for s in [L3State::Clean, L3State::Dirty] {
            let bits = s.to_bits();
            assert!(bits < 1 << L3State::BITS);
            assert_eq!(L3State::from_bits(bits), s);
        }
    }

    #[test]
    fn display() {
        assert_eq!(L2State::SharedLast.to_string(), "SL");
        assert_eq!(L2State::Tagged.to_string(), "T");
        assert_eq!(L3State::Dirty.to_string(), "D");
    }
}
