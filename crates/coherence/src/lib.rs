//! Snoop-based cache-coherence protocol for the CMP simulator.
//!
//! The modelled protocol is "an extension of that found in IBM's POWER4
//! systems, which supports cache-to-cache transfers (interventions) for
//! all dirty lines and a subset of lines in the shared state" (paper §1).
//! We implement a MESI variant with two extra states:
//!
//! * [`L2State::SharedLast`] (POWER4 "SL") — the one shared copy allowed
//!   to source clean interventions, and
//! * [`L2State::Tagged`] (POWER4 "T") — a shared *dirty* owner created
//!   when a modified line is read by a peer: it keeps responsibility for
//!   the dirty data while other caches hold `Shared` copies.
//!
//! The crate provides:
//!
//! * [`L2State`] / [`L3State`] — per-line coherence states,
//! * [`TxnKind`] / [`BusTxn`] — address-ring transaction types,
//! * [`SnoopResponse`] — per-agent snoop replies,
//! * [`SnoopCollector`] — the central entity that combines snoop replies
//!   into a [`CombinedResponse`], including fair round-robin selection of
//!   a snarf winner (paper §3), and
//! * pure state-transition helpers used by the L2 model.
//!
//! All functions here are *pure protocol logic*: resource availability
//! (queue space, ring bandwidth) is judged by the callers, which then
//! feed `Retry`-style responses into the collector.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod collector;
mod ids;
mod state;
mod txn;

pub use collector::{CombinedResponse, DataSource, SnoopCollector, WbOutcome};
pub use ids::{AgentId, L2Id, TxnId};
pub use state::{L2State, L3State};
pub use txn::{BusTxn, SnoopResponse, TxnKind, TxnPath, TxnState};
