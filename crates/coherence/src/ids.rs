//! Identifiers for coherence agents and bus transactions.

use std::fmt;

/// Identifier of one of the L2 caches (each shared by a core pair).
///
/// # Example
///
/// ```
/// use cmpsim_coherence::L2Id;
///
/// let ids: Vec<L2Id> = L2Id::all(4).collect();
/// assert_eq!(ids.len(), 4);
/// assert_eq!(ids[2].index(), 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct L2Id(u8);

impl L2Id {
    /// Creates an L2 id from an index.
    pub const fn new(index: u8) -> Self {
        L2Id(index)
    }

    /// Index of this L2 (0-based).
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Iterates over all L2 ids in a system with `count` L2 caches.
    pub fn all(count: u8) -> impl Iterator<Item = L2Id> {
        (0..count).map(L2Id)
    }
}

impl fmt::Display for L2Id {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L2#{}", self.0)
    }
}

/// A coherence agent on the intrachip ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AgentId {
    /// An L2 cache (point of coherence).
    L2(L2Id),
    /// The L3 victim-cache controller.
    L3,
    /// The memory controller.
    Memory,
}

impl fmt::Display for AgentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AgentId::L2(id) => write!(f, "{id}"),
            AgentId::L3 => f.write_str("L3"),
            AgentId::Memory => f.write_str("MEM"),
        }
    }
}

/// A bus-transaction identifier (unique per simulation run).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TxnId(u64);

impl TxnId {
    /// First id.
    pub const ZERO: TxnId = TxnId(0);

    /// Returns this id and internally advances to the next one.
    pub fn bump(&mut self) -> TxnId {
        let r = *self;
        self.0 += 1;
        r
    }

    /// Raw value.
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "txn{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn l2_ids_enumerate() {
        let ids: Vec<_> = L2Id::all(3).collect();
        assert_eq!(ids, vec![L2Id::new(0), L2Id::new(1), L2Id::new(2)]);
    }

    #[test]
    fn txn_id_bumps() {
        let mut t = TxnId::ZERO;
        assert_eq!(t.bump().raw(), 0);
        assert_eq!(t.bump().raw(), 1);
        assert_eq!(t.raw(), 2);
    }

    #[test]
    fn display_forms() {
        assert_eq!(L2Id::new(1).to_string(), "L2#1");
        assert_eq!(AgentId::L3.to_string(), "L3");
        assert_eq!(AgentId::Memory.to_string(), "MEM");
        assert_eq!(AgentId::L2(L2Id::new(0)).to_string(), "L2#0");
        assert_eq!(TxnId::ZERO.to_string(), "txn0");
    }
}
