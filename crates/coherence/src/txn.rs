//! Bus transactions and snoop responses.

use std::fmt;

use cmpsim_cache::LineAddr;
use cmpsim_engine::spans::{SpanId, SpanKind};

use crate::{L2Id, L3State, TxnId};

/// The kind of an address-ring transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TxnKind {
    /// Load miss: read with intent to share.
    ReadShared,
    /// Store miss: read with intent to modify (all other copies die).
    ReadExclusive,
    /// Store hit on a shared copy: invalidate other copies, no data.
    Upgrade,
    /// Castout of a dirty victim (must be absorbed somewhere).
    CastoutDirty,
    /// Castout of a clean victim (performance hint only; paper §2).
    CastoutClean,
}

impl TxnKind {
    /// Is this a write-back style transaction?
    pub fn is_castout(self) -> bool {
        matches!(self, TxnKind::CastoutDirty | TxnKind::CastoutClean)
    }

    /// Does this transaction move a data line on the data ring (when not
    /// squashed)?
    pub fn moves_data(self) -> bool {
        !matches!(self, TxnKind::Upgrade)
    }
}

impl fmt::Display for TxnKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TxnKind::ReadShared => "read",
            TxnKind::ReadExclusive => "rwitm",
            TxnKind::Upgrade => "upgrade",
            TxnKind::CastoutDirty => "castout-dirty",
            TxnKind::CastoutClean => "castout-clean",
        };
        f.write_str(s)
    }
}

/// One address-ring transaction, as snooped by every agent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BusTxn {
    /// Unique id for correlating snoop responses.
    pub id: TxnId,
    /// Transaction type.
    pub kind: TxnKind,
    /// The line concerned.
    pub line: LineAddr,
    /// The requesting L2.
    pub src: L2Id,
    /// Snarf-eligible bit: set by the source when its reuse table says
    /// this castout line has high reuse potential ("a special bus
    /// transaction bit is set to trigger the snarf algorithm at snooping
    /// L2 caches", §3).
    pub snarf_eligible: bool,
}

impl BusTxn {
    /// Convenience constructor for a non-snarf transaction.
    pub fn new(id: TxnId, kind: TxnKind, line: LineAddr, src: L2Id) -> Self {
        BusTxn {
            id,
            kind,
            line,
            src,
            snarf_eligible: false,
        }
    }

    /// Returns a copy with the snarf-eligible bit set.
    pub fn with_snarf(mut self) -> Self {
        self.snarf_eligible = true;
        self
    }

    /// The transaction's span id for latency tracing. Transaction ids are
    /// unique for the life of a run and stable across retries (the same
    /// `BusTxn` is re-issued), so the id doubles as the span identity.
    pub fn span_id(&self) -> SpanId {
        self.id.raw()
    }

    /// The span kind this transaction maps to.
    pub fn span_kind(&self) -> SpanKind {
        match self.kind {
            TxnKind::ReadShared | TxnKind::ReadExclusive => SpanKind::Miss,
            TxnKind::Upgrade => SpanKind::Upgrade,
            TxnKind::CastoutDirty | TxnKind::CastoutClean => SpanKind::Castout,
        }
    }
}

impl fmt::Display for BusTxn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} {} from {}",
            self.id, self.kind, self.line, self.src
        )?;
        if self.snarf_eligible {
            f.write_str(" [snarf]")?;
        }
        Ok(())
    }
}

/// Which protocol path a transaction travels: the demand-miss path
/// (read/RWITM/upgrade through the snoop window to a fill) or the
/// write-back path (castout through WBHT filtering, squash/snarf
/// arbitration, or L3 acceptance).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxnPath {
    /// Demand miss or upgrade from an L2.
    Miss,
    /// Castout of an evicted victim.
    Castout {
        /// Whether the victim carries dirty data (dirty castouts must be
        /// absorbed somewhere; clean ones are performance hints).
        dirty: bool,
    },
}

/// Per-transaction pipeline state, threaded explicitly between the
/// protocol phases (bus issue → snoop collection → completion) instead
/// of living in ad-hoc event payloads. The same `TxnState` is re-issued
/// on retries with only `attempt` bumped, so span identity and the
/// retry back-off jitter stay stable across attempts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TxnState {
    /// The address-ring transaction as every agent snoops it.
    pub txn: BusTxn,
    /// Which protocol path the transaction is on.
    pub path: TxnPath,
    /// Bus attempts so far (0 on first issue; each retry increments).
    pub attempt: u32,
}

impl TxnState {
    /// A first-attempt transaction on the demand-miss path.
    pub fn miss(txn: BusTxn) -> Self {
        TxnState {
            txn,
            path: TxnPath::Miss,
            attempt: 0,
        }
    }

    /// A first-attempt transaction on the write-back path.
    pub fn castout(txn: BusTxn, dirty: bool) -> Self {
        TxnState {
            txn,
            path: TxnPath::Castout { dirty },
            attempt: 0,
        }
    }

    /// The state to re-issue after a retry-class combined response:
    /// the same transaction, one more attempt.
    pub fn retried(mut self) -> Self {
        self.attempt += 1;
        self
    }

    /// Is this the first bus attempt?
    pub fn first_attempt(&self) -> bool {
        self.attempt == 0
    }
}

/// One agent's snoop reply to a [`BusTxn`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnoopResponse {
    /// No involvement (line absent, or nothing to contribute).
    Null,
    /// An L2 holds the line in a non-intervention shared state.
    SharedNoIntervene(L2Id),
    /// An L2 holds the line clean and can source an intervention
    /// (`SL` or `E`).
    CleanIntervene(L2Id),
    /// An L2 holds the line dirty (`M`/`T`) and will source the data.
    DirtyIntervene(L2Id),
    /// An L2 cannot process the snoop right now (resource conflict);
    /// the transaction must be retried.
    L2Retry(L2Id),
    /// The L3 has the line in the given state.
    L3Hit(L3State),
    /// The L3 does not have the line but can absorb a castout.
    L3Accept,
    /// The L3 does not have the line and has no castout to handle.
    L3Miss,
    /// The L3 has insufficient resources (incoming queue full):
    /// retry the transaction (§2: "Lines may be rejected by the L3 if
    /// there are not enough hardware resources").
    L3Retry,
    /// A peer L2 is willing to absorb (snarf) this castout (§3).
    SnarfAccept(L2Id),
    /// A peer L2 already holds a valid copy of the castout line, so the
    /// write-back is useless: squash it (§5.2).
    PeerHasCopy(L2Id),
    /// Memory can always sink/source the line (on its dedicated path).
    MemoryAck,
}

impl SnoopResponse {
    /// Is this a retry-class response?
    pub fn is_retry(self) -> bool {
        matches!(self, SnoopResponse::L2Retry(_) | SnoopResponse::L3Retry)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn castout_classification() {
        assert!(TxnKind::CastoutClean.is_castout());
        assert!(TxnKind::CastoutDirty.is_castout());
        assert!(!TxnKind::ReadShared.is_castout());
        assert!(!TxnKind::Upgrade.is_castout());
    }

    #[test]
    fn data_movement() {
        assert!(TxnKind::ReadShared.moves_data());
        assert!(TxnKind::CastoutClean.moves_data());
        assert!(!TxnKind::Upgrade.moves_data());
    }

    #[test]
    fn snarf_bit() {
        let t = BusTxn::new(
            TxnId::ZERO,
            TxnKind::CastoutClean,
            LineAddr::new(4),
            L2Id::new(1),
        );
        assert!(!t.snarf_eligible);
        let t2 = t.with_snarf();
        assert!(t2.snarf_eligible);
        assert!(t2.to_string().contains("[snarf]"));
    }

    #[test]
    fn retry_classification() {
        assert!(SnoopResponse::L3Retry.is_retry());
        assert!(SnoopResponse::L2Retry(L2Id::new(0)).is_retry());
        assert!(!SnoopResponse::Null.is_retry());
        assert!(!SnoopResponse::L3Hit(L3State::Clean).is_retry());
    }

    #[test]
    fn txn_state_paths_and_retries() {
        let t = BusTxn::new(
            TxnId::ZERO,
            TxnKind::ReadShared,
            LineAddr::new(4),
            L2Id::new(1),
        );
        let m = TxnState::miss(t);
        assert_eq!(m.path, TxnPath::Miss);
        assert!(m.first_attempt());
        let c = TxnState::castout(t, true);
        assert_eq!(c.path, TxnPath::Castout { dirty: true });
        let r = c.retried().retried();
        assert_eq!(r.attempt, 2);
        assert!(!r.first_attempt());
        // The transaction itself (and so span identity) is unchanged.
        assert_eq!(r.txn, c.txn);
    }

    #[test]
    fn txn_display() {
        let t = BusTxn::new(
            TxnId::ZERO,
            TxnKind::ReadShared,
            LineAddr::new(4),
            L2Id::new(1),
        );
        let s = t.to_string();
        assert!(s.contains("read"));
        assert!(s.contains("L2#1"));
    }
}
