//! The Snoop Collector: combines per-agent snoop responses.
//!
//! "In our system, a central entity, referred to as the 'Snoop
//! Collector', monitors snoop responses from all bus agents in order to
//! determine the final snoop response" (paper §3). The combined response
//! is broadcast back to all agents; for snarf-eligible castouts the
//! collector additionally "choose[s] a winner in a fair round-robin
//! fashion from the set of L2 caches that are able to accept the cache
//! line".

use cmpsim_engine::telemetry::FillSource;

use crate::{BusTxn, L2Id, L3State, SnoopResponse, TxnKind};

/// Where the data for a read-class transaction comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DataSource {
    /// Cache-to-cache transfer from a peer L2 (faster than L3: 77 vs 167
    /// cycles). `dirty` records whether the provider held a dirty copy.
    L2 {
        /// The providing cache.
        provider: L2Id,
        /// Provider held `M`/`T`.
        dirty: bool,
    },
    /// The off-chip L3 victim cache.
    L3 {
        /// The line was dirty in the L3.
        dirty: bool,
    },
    /// Main memory (full 431-cycle penalty).
    Memory,
}

impl DataSource {
    /// Is this an on-chip L2-to-L2 intervention?
    pub fn is_intervention(self) -> bool {
        matches!(self, DataSource::L2 { .. })
    }

    /// Is this an off-chip access (L3 or memory)?
    pub fn is_off_chip(self) -> bool {
        !self.is_intervention()
    }

    /// The telemetry/span fill-source tag for this data source.
    pub fn fill_source(self) -> FillSource {
        match self {
            DataSource::L2 { .. } => FillSource::L2Peer,
            DataSource::L3 { .. } => FillSource::L3,
            DataSource::Memory => FillSource::Memory,
        }
    }
}

/// Final outcome of a castout (write-back) transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WbOutcome {
    /// The L3 already holds a valid copy of a *clean* castout: the data
    /// transfer is squashed (the baseline protocol's filter, §2).
    SquashedAlreadyInL3,
    /// A peer L2 already holds a valid copy: squashed (§5.2). For a
    /// dirty castout this transfers dirty ownership to that peer.
    SquashedPeerHasCopy(L2Id),
    /// A peer L2 absorbs ("snarfs") the castout (§3).
    SnarfedBy(L2Id),
    /// The L3 victim cache accepts the line. `was_present` is true when
    /// a *dirty* castout overwrote an existing (stale) L3 copy.
    AcceptedByL3 {
        /// A previous copy existed in the L3.
        was_present: bool,
    },
}

/// The combined snoop response broadcast to all agents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CombinedResponse {
    /// Read-class transaction: data will be provided by `source`;
    /// `sharers` records whether any other L2 keeps a copy afterwards
    /// (determines S vs SL/E/M install state at the requester).
    Read {
        /// The chosen data provider.
        source: DataSource,
        /// Other L2 copies remain after this transaction.
        sharers: bool,
    },
    /// Upgrade granted: all other copies are invalidated, no data moves.
    UpgradeOk,
    /// The transaction must be retried after a back-off
    /// ("may generate a retry bus response from the L3", §2).
    Retry {
        /// The retry was issued by the L3 (tracked separately: the paper
        /// reports "L3-issued Retries").
        l3_issued: bool,
    },
    /// Castout outcome.
    Wb(WbOutcome),
}

impl CombinedResponse {
    /// Is this a retry?
    pub fn is_retry(self) -> bool {
        matches!(self, CombinedResponse::Retry { .. })
    }
}

/// Combines snoop responses and arbitrates snarf winners.
#[derive(Debug, Clone, Default)]
pub struct SnoopCollector {
    /// Round-robin pointer for fair snarf-winner selection.
    rr_next: usize,
    combined: u64,
    retries: u64,
    l3_retries: u64,
}

impl SnoopCollector {
    /// Creates a collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Combines the snoop responses for `txn` into the final response.
    ///
    /// `responses` must contain every agent's reply (order is
    /// irrelevant). The protocol invariant that at most one cache can
    /// intervene per line is checked in debug builds.
    ///
    /// # Panics
    ///
    /// Panics (debug only) if two agents claim dirty ownership.
    pub fn combine(&mut self, txn: &BusTxn, responses: &[SnoopResponse]) -> CombinedResponse {
        self.combined += 1;
        let r = match txn.kind {
            TxnKind::ReadShared | TxnKind::ReadExclusive => self.combine_read(txn, responses),
            TxnKind::Upgrade => self.combine_upgrade(responses),
            TxnKind::CastoutClean | TxnKind::CastoutDirty => self.combine_castout(txn, responses),
        };
        if let CombinedResponse::Retry { l3_issued } = r {
            self.retries += 1;
            if l3_issued {
                self.l3_retries += 1;
            }
        }
        r
    }

    fn combine_read(&mut self, txn: &BusTxn, responses: &[SnoopResponse]) -> CombinedResponse {
        let mut dirty_provider: Option<L2Id> = None;
        let mut clean_provider: Option<L2Id> = None;
        let mut shared_holders = 0usize;
        let mut l3_hit: Option<L3State> = None;
        let mut l3_retry = false;
        let mut l2_retry = false;
        for &r in responses {
            match r {
                SnoopResponse::DirtyIntervene(id) => {
                    debug_assert!(dirty_provider.is_none(), "two dirty owners for {txn}");
                    dirty_provider = Some(id);
                }
                SnoopResponse::CleanIntervene(id) => {
                    // Prefer the lowest id deterministically; at most one
                    // SL/E holder should exist, checked by system tests.
                    clean_provider = Some(match clean_provider {
                        Some(prev) if prev <= id => prev,
                        _ => id,
                    });
                }
                SnoopResponse::SharedNoIntervene(_) => shared_holders += 1,
                SnoopResponse::L3Hit(s) => l3_hit = Some(s),
                SnoopResponse::L3Retry => l3_retry = true,
                SnoopResponse::L2Retry(_) => l2_retry = true,
                SnoopResponse::L3Miss
                | SnoopResponse::L3Accept
                | SnoopResponse::MemoryAck
                | SnoopResponse::Null => {}
                SnoopResponse::SnarfAccept(_) | SnoopResponse::PeerHasCopy(_) => {
                    debug_assert!(false, "castout response to read txn {txn}");
                }
            }
        }
        if l2_retry {
            return CombinedResponse::Retry { l3_issued: false };
        }
        // Interventions win over the L3, which wins over memory.
        let source = if let Some(p) = dirty_provider {
            DataSource::L2 {
                provider: p,
                dirty: true,
            }
        } else if let Some(p) = clean_provider {
            DataSource::L2 {
                provider: p,
                dirty: false,
            }
        } else if l3_retry {
            // The L3 would have been the source but lacks resources.
            return CombinedResponse::Retry { l3_issued: true };
        } else if let Some(s) = l3_hit {
            DataSource::L3 {
                dirty: s.is_dirty(),
            }
        } else {
            DataSource::Memory
        };
        // For ReadExclusive every other copy is invalidated, so no
        // sharers remain regardless of who held what.
        let sharers = txn.kind == TxnKind::ReadShared
            && (dirty_provider.is_some() || clean_provider.is_some() || shared_holders > 0);
        CombinedResponse::Read { source, sharers }
    }

    fn combine_upgrade(&mut self, responses: &[SnoopResponse]) -> CombinedResponse {
        for &r in responses {
            if r.is_retry() {
                return CombinedResponse::Retry {
                    l3_issued: matches!(r, SnoopResponse::L3Retry),
                };
            }
        }
        CombinedResponse::UpgradeOk
    }

    fn combine_castout(&mut self, txn: &BusTxn, responses: &[SnoopResponse]) -> CombinedResponse {
        let mut peer_copy: Option<L2Id> = None;
        // Willing snarfers as a 256-bit set over L2 index: castouts are
        // hot enough that a per-call `Vec` (plus the sorted copy the old
        // round-robin made) showed up in profiles.
        let mut snarfers = [0u64; 4];
        let mut l3_hit = false;
        let mut l3_accept = false;
        let mut l3_retry = false;
        for &r in responses {
            match r {
                SnoopResponse::PeerHasCopy(id) => {
                    peer_copy = Some(match peer_copy {
                        Some(prev) if prev <= id => prev,
                        _ => id,
                    });
                }
                SnoopResponse::SnarfAccept(id) => {
                    let i = id.index();
                    snarfers[i >> 6] |= 1u64 << (i & 63);
                }
                SnoopResponse::L3Hit(_) => l3_hit = true,
                SnoopResponse::L3Accept => l3_accept = true,
                SnoopResponse::L3Retry => l3_retry = true,
                SnoopResponse::L2Retry(_) => {
                    return CombinedResponse::Retry { l3_issued: false };
                }
                _ => {}
            }
        }
        // A valid copy elsewhere always squashes the castout: for clean
        // castouts the data is redundant; for dirty castouts the peer
        // takes over dirty ownership (S -> T) without a data transfer
        // (it already holds the data).
        if let Some(id) = peer_copy {
            return CombinedResponse::Wb(WbOutcome::SquashedPeerHasCopy(id));
        }
        match txn.kind {
            TxnKind::CastoutClean => {
                if l3_hit {
                    // Baseline filter: the L3 cancels the data transfer.
                    return CombinedResponse::Wb(WbOutcome::SquashedAlreadyInL3);
                }
                if txn.snarf_eligible {
                    if let Some(winner) = self.pick_snarfer(&snarfers) {
                        return CombinedResponse::Wb(WbOutcome::SnarfedBy(winner));
                    }
                }
                if l3_accept {
                    CombinedResponse::Wb(WbOutcome::AcceptedByL3 { was_present: false })
                } else {
                    debug_assert!(l3_retry, "L3 must answer castouts");
                    CombinedResponse::Retry { l3_issued: true }
                }
            }
            TxnKind::CastoutDirty => {
                // Dirty data must land somewhere: a snarfer keeps it
                // on-chip, otherwise the L3 absorbs (overwriting any
                // stale copy it may hold).
                if txn.snarf_eligible {
                    if let Some(winner) = self.pick_snarfer(&snarfers) {
                        return CombinedResponse::Wb(WbOutcome::SnarfedBy(winner));
                    }
                }
                if l3_hit || l3_accept {
                    CombinedResponse::Wb(WbOutcome::AcceptedByL3 {
                        was_present: l3_hit,
                    })
                } else {
                    debug_assert!(l3_retry, "L3 must answer castouts");
                    CombinedResponse::Retry { l3_issued: true }
                }
            }
            _ => unreachable!("combine_castout called for non-castout"),
        }
    }

    /// Fair round-robin choice among willing snarfers. "The snoop
    /// response generation has to use a fair policy for selecting the
    /// cache to receive the line in order to distribute the snarfed
    /// write back load" (§3).
    ///
    /// `snarfers` is a 256-bit set over L2 index; the winner is the
    /// lowest member at or past the round-robin pointer, wrapping to the
    /// lowest member overall — the same choice the old sorted-`Vec` scan
    /// made, without the per-call allocations.
    fn pick_snarfer(&mut self, snarfers: &[u64; 4]) -> Option<L2Id> {
        let first_at_or_after = |from: usize| -> Option<usize> {
            if from >= 256 {
                return None;
            }
            let mut w = from >> 6;
            let mut bits = snarfers[w] & (!0u64 << (from & 63));
            loop {
                if bits != 0 {
                    return Some((w << 6) + bits.trailing_zeros() as usize);
                }
                w += 1;
                if w >= snarfers.len() {
                    return None;
                }
                bits = snarfers[w];
            }
        };
        let winner = first_at_or_after(self.rr_next).or_else(|| first_at_or_after(0))?;
        self.rr_next = winner + 1;
        Some(L2Id::new(winner as u8))
    }

    /// Total transactions combined.
    pub fn combined_count(&self) -> u64 {
        self.combined
    }

    /// Total retry responses issued (any agent).
    pub fn retry_count(&self) -> u64 {
        self.retries
    }

    /// Retries issued by the L3 specifically.
    pub fn l3_retry_count(&self) -> u64 {
        self.l3_retries
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{TxnId, TxnKind};
    use cmpsim_cache::LineAddr;

    fn txn(kind: TxnKind) -> BusTxn {
        BusTxn::new(TxnId::ZERO, kind, LineAddr::new(100), L2Id::new(0))
    }

    #[test]
    fn dirty_intervention_beats_l3() {
        let mut c = SnoopCollector::new();
        let r = c.combine(
            &txn(TxnKind::ReadShared),
            &[
                SnoopResponse::L3Hit(L3State::Clean),
                SnoopResponse::DirtyIntervene(L2Id::new(2)),
                SnoopResponse::Null,
            ],
        );
        assert_eq!(
            r,
            CombinedResponse::Read {
                source: DataSource::L2 {
                    provider: L2Id::new(2),
                    dirty: true
                },
                sharers: true,
            }
        );
    }

    #[test]
    fn clean_intervention_beats_l3() {
        let mut c = SnoopCollector::new();
        let r = c.combine(
            &txn(TxnKind::ReadShared),
            &[
                SnoopResponse::CleanIntervene(L2Id::new(1)),
                SnoopResponse::L3Hit(L3State::Clean),
            ],
        );
        match r {
            CombinedResponse::Read { source, sharers } => {
                assert_eq!(
                    source,
                    DataSource::L2 {
                        provider: L2Id::new(1),
                        dirty: false
                    }
                );
                assert!(sharers);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn l3_hit_beats_memory() {
        let mut c = SnoopCollector::new();
        let r = c.combine(
            &txn(TxnKind::ReadShared),
            &[SnoopResponse::L3Hit(L3State::Dirty), SnoopResponse::Null],
        );
        assert_eq!(
            r,
            CombinedResponse::Read {
                source: DataSource::L3 { dirty: true },
                sharers: false,
            }
        );
    }

    #[test]
    fn miss_everywhere_goes_to_memory() {
        let mut c = SnoopCollector::new();
        let r = c.combine(
            &txn(TxnKind::ReadShared),
            &[SnoopResponse::L3Miss, SnoopResponse::MemoryAck],
        );
        assert_eq!(
            r,
            CombinedResponse::Read {
                source: DataSource::Memory,
                sharers: false,
            }
        );
    }

    #[test]
    fn l3_retry_only_matters_without_intervener() {
        let mut c = SnoopCollector::new();
        // With an intervener the L3 retry is ignored.
        let r = c.combine(
            &txn(TxnKind::ReadShared),
            &[
                SnoopResponse::CleanIntervene(L2Id::new(3)),
                SnoopResponse::L3Retry,
            ],
        );
        assert!(matches!(r, CombinedResponse::Read { .. }));
        // Without one it forces a retry, attributed to the L3.
        let r = c.combine(&txn(TxnKind::ReadShared), &[SnoopResponse::L3Retry]);
        assert_eq!(r, CombinedResponse::Retry { l3_issued: true });
        assert_eq!(c.l3_retry_count(), 1);
        assert_eq!(c.retry_count(), 1);
    }

    #[test]
    fn read_exclusive_reports_no_sharers() {
        let mut c = SnoopCollector::new();
        let r = c.combine(
            &txn(TxnKind::ReadExclusive),
            &[
                SnoopResponse::SharedNoIntervene(L2Id::new(1)),
                SnoopResponse::L3Hit(L3State::Clean),
            ],
        );
        assert_eq!(
            r,
            CombinedResponse::Read {
                source: DataSource::L3 { dirty: false },
                sharers: false,
            }
        );
    }

    #[test]
    fn upgrade_ok_and_retry() {
        let mut c = SnoopCollector::new();
        assert_eq!(
            c.combine(
                &txn(TxnKind::Upgrade),
                &[SnoopResponse::SharedNoIntervene(L2Id::new(1))]
            ),
            CombinedResponse::UpgradeOk
        );
        assert_eq!(
            c.combine(
                &txn(TxnKind::Upgrade),
                &[SnoopResponse::L2Retry(L2Id::new(1))]
            ),
            CombinedResponse::Retry { l3_issued: false }
        );
    }

    #[test]
    fn clean_castout_squashed_by_l3_presence() {
        let mut c = SnoopCollector::new();
        let r = c.combine(
            &txn(TxnKind::CastoutClean),
            &[SnoopResponse::L3Hit(L3State::Clean)],
        );
        assert_eq!(r, CombinedResponse::Wb(WbOutcome::SquashedAlreadyInL3));
    }

    #[test]
    fn clean_castout_accepted_by_l3() {
        let mut c = SnoopCollector::new();
        let r = c.combine(&txn(TxnKind::CastoutClean), &[SnoopResponse::L3Accept]);
        assert_eq!(
            r,
            CombinedResponse::Wb(WbOutcome::AcceptedByL3 { was_present: false })
        );
    }

    #[test]
    fn clean_castout_l3_full_retries() {
        let mut c = SnoopCollector::new();
        let r = c.combine(&txn(TxnKind::CastoutClean), &[SnoopResponse::L3Retry]);
        assert_eq!(r, CombinedResponse::Retry { l3_issued: true });
        assert_eq!(c.l3_retry_count(), 1);
    }

    #[test]
    fn peer_copy_squashes_castout() {
        let mut c = SnoopCollector::new();
        let r = c.combine(
            &txn(TxnKind::CastoutClean).with_snarf(),
            &[
                SnoopResponse::PeerHasCopy(L2Id::new(2)),
                SnoopResponse::SnarfAccept(L2Id::new(3)),
                SnoopResponse::L3Accept,
            ],
        );
        assert_eq!(
            r,
            CombinedResponse::Wb(WbOutcome::SquashedPeerHasCopy(L2Id::new(2)))
        );
    }

    #[test]
    fn snarf_beats_l3_accept_when_eligible() {
        let mut c = SnoopCollector::new();
        let r = c.combine(
            &txn(TxnKind::CastoutClean).with_snarf(),
            &[
                SnoopResponse::SnarfAccept(L2Id::new(1)),
                SnoopResponse::L3Accept,
            ],
        );
        assert_eq!(r, CombinedResponse::Wb(WbOutcome::SnarfedBy(L2Id::new(1))));
    }

    #[test]
    fn snarf_ignored_when_not_eligible() {
        let mut c = SnoopCollector::new();
        let r = c.combine(
            &txn(TxnKind::CastoutClean),
            &[
                SnoopResponse::SnarfAccept(L2Id::new(1)),
                SnoopResponse::L3Accept,
            ],
        );
        assert_eq!(
            r,
            CombinedResponse::Wb(WbOutcome::AcceptedByL3 { was_present: false })
        );
    }

    #[test]
    fn snarf_round_robin_is_fair() {
        let mut c = SnoopCollector::new();
        let all = [
            SnoopResponse::SnarfAccept(L2Id::new(1)),
            SnoopResponse::SnarfAccept(L2Id::new(2)),
            SnoopResponse::SnarfAccept(L2Id::new(3)),
        ];
        let t = txn(TxnKind::CastoutClean).with_snarf();
        let mut winners = Vec::new();
        for _ in 0..6 {
            match c.combine(&t, &all) {
                CombinedResponse::Wb(WbOutcome::SnarfedBy(id)) => winners.push(id.index()),
                other => panic!("unexpected {other:?}"),
            }
        }
        // Rotates through 1, 2, 3 and wraps.
        assert_eq!(winners, vec![1, 2, 3, 1, 2, 3]);
    }

    #[test]
    fn dirty_castout_overwrites_stale_l3_copy() {
        let mut c = SnoopCollector::new();
        let r = c.combine(
            &txn(TxnKind::CastoutDirty),
            &[SnoopResponse::L3Hit(L3State::Clean)],
        );
        assert_eq!(
            r,
            CombinedResponse::Wb(WbOutcome::AcceptedByL3 { was_present: true })
        );
    }

    #[test]
    fn dirty_castout_peer_takes_ownership() {
        let mut c = SnoopCollector::new();
        let r = c.combine(
            &txn(TxnKind::CastoutDirty).with_snarf(),
            &[
                SnoopResponse::PeerHasCopy(L2Id::new(1)),
                SnoopResponse::L3Accept,
            ],
        );
        assert_eq!(
            r,
            CombinedResponse::Wb(WbOutcome::SquashedPeerHasCopy(L2Id::new(1)))
        );
    }

    #[test]
    fn data_source_classification() {
        assert!(DataSource::L2 {
            provider: L2Id::new(0),
            dirty: false
        }
        .is_intervention());
        assert!(DataSource::L3 { dirty: false }.is_off_chip());
        assert!(DataSource::Memory.is_off_chip());
    }

    #[test]
    fn data_source_maps_to_fill_source() {
        let l2 = DataSource::L2 {
            provider: L2Id::new(3),
            dirty: true,
        };
        assert_eq!(l2.fill_source(), FillSource::L2Peer);
        assert_eq!(
            DataSource::L3 { dirty: false }.fill_source(),
            FillSource::L3
        );
        assert_eq!(DataSource::Memory.fill_source(), FillSource::Memory);
    }

    #[test]
    fn counters_accumulate() {
        let mut c = SnoopCollector::new();
        c.combine(&txn(TxnKind::ReadShared), &[SnoopResponse::L3Miss]);
        c.combine(&txn(TxnKind::ReadShared), &[SnoopResponse::L3Retry]);
        assert_eq!(c.combined_count(), 2);
        assert_eq!(c.retry_count(), 1);
    }
}
