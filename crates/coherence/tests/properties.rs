//! Property-based tests for the Snoop Collector's combining rules.

use cmpsim_cache::LineAddr;
use cmpsim_coherence::{
    BusTxn, CombinedResponse, DataSource, L2Id, L3State, SnoopCollector, SnoopResponse, TxnId,
    TxnKind, WbOutcome,
};
use proptest::prelude::*;

fn arb_read_response() -> impl Strategy<Value = SnoopResponse> {
    prop_oneof![
        Just(SnoopResponse::Null),
        (0u8..4).prop_map(|i| SnoopResponse::SharedNoIntervene(L2Id::new(i))),
        (0u8..4).prop_map(|i| SnoopResponse::CleanIntervene(L2Id::new(i))),
        Just(SnoopResponse::L3Hit(L3State::Clean)),
        Just(SnoopResponse::L3Hit(L3State::Dirty)),
        Just(SnoopResponse::L3Miss),
        Just(SnoopResponse::L3Retry),
        Just(SnoopResponse::MemoryAck),
    ]
}

fn arb_castout_response() -> impl Strategy<Value = SnoopResponse> {
    prop_oneof![
        Just(SnoopResponse::Null),
        (0u8..4).prop_map(|i| SnoopResponse::PeerHasCopy(L2Id::new(i))),
        (0u8..4).prop_map(|i| SnoopResponse::SnarfAccept(L2Id::new(i))),
        Just(SnoopResponse::L3Hit(L3State::Clean)),
        Just(SnoopResponse::L3Accept),
        Just(SnoopResponse::L3Retry),
    ]
}

fn txn(kind: TxnKind, snarf: bool) -> BusTxn {
    let t = BusTxn::new(TxnId::ZERO, kind, LineAddr::new(64), L2Id::new(0));
    if snarf {
        t.with_snarf()
    } else {
        t
    }
}

proptest! {
    /// Read combining never panics (release rules) and respects source
    /// priority: a clean/dirty intervener always beats the L3 and
    /// memory; an L2 retry always forces a retry.
    #[test]
    fn read_priority(responses in proptest::collection::vec(arb_read_response(), 0..8)) {
        let mut c = SnoopCollector::new();
        let t = txn(TxnKind::ReadShared, false);
        let combined = c.combine(&t, &responses);
        let has_l2_retry = responses.iter().any(|r| matches!(r, SnoopResponse::L2Retry(_)));
        let has_intervener = responses.iter().any(|r| matches!(
            r,
            SnoopResponse::CleanIntervene(_) | SnoopResponse::DirtyIntervene(_)
        ));
        let has_l3_hit = responses.iter().any(|r| matches!(r, SnoopResponse::L3Hit(_)));
        let has_l3_retry = responses.iter().any(|r| matches!(r, SnoopResponse::L3Retry));
        match combined {
            CombinedResponse::Retry { l3_issued } => {
                prop_assert!(has_l2_retry || (has_l3_retry && !has_intervener));
                if l3_issued {
                    prop_assert!(has_l3_retry);
                }
            }
            CombinedResponse::Read { source, .. } => {
                match source {
                    DataSource::L2 { .. } => prop_assert!(has_intervener),
                    DataSource::L3 { .. } => {
                        prop_assert!(has_l3_hit && !has_intervener);
                    }
                    DataSource::Memory => {
                        prop_assert!(!has_intervener && !has_l3_hit);
                    }
                }
            }
            other => prop_assert!(false, "unexpected {other:?}"),
        }
    }

    /// Castout combining: a peer copy always squashes; otherwise for a
    /// clean castout an L3 hit squashes; a snarf winner is only chosen
    /// from actual responders and only when the transaction is eligible.
    #[test]
    fn castout_priority(
        responses in proptest::collection::vec(arb_castout_response(), 1..8),
        snarf_eligible in any::<bool>(),
        dirty in any::<bool>(),
    ) {
        let mut c = SnoopCollector::new();
        let kind = if dirty { TxnKind::CastoutDirty } else { TxnKind::CastoutClean };
        // Ensure the L3 always answers, as the protocol requires.
        let mut rs = responses.clone();
        if !rs.iter().any(|r| matches!(r, SnoopResponse::L3Hit(_) | SnoopResponse::L3Accept | SnoopResponse::L3Retry)) {
            rs.push(SnoopResponse::L3Accept);
        }
        let combined = c.combine(&txn(kind, snarf_eligible), &rs);
        let peer = rs.iter().any(|r| matches!(r, SnoopResponse::PeerHasCopy(_)));
        let snarfers: Vec<L2Id> = rs.iter().filter_map(|r| match r {
            SnoopResponse::SnarfAccept(i) => Some(*i),
            _ => None,
        }).collect();
        match combined {
            CombinedResponse::Wb(WbOutcome::SquashedPeerHasCopy(_)) => prop_assert!(peer),
            CombinedResponse::Wb(WbOutcome::SnarfedBy(w)) => {
                prop_assert!(snarf_eligible, "snarf without eligibility");
                prop_assert!(!peer, "snarf despite peer copy");
                prop_assert!(snarfers.contains(&w), "winner {w} did not volunteer");
            }
            CombinedResponse::Wb(WbOutcome::SquashedAlreadyInL3) => {
                prop_assert!(!dirty, "dirty castout squashed as redundant");
                prop_assert!(!peer);
            }
            CombinedResponse::Wb(WbOutcome::AcceptedByL3 { .. }) => prop_assert!(!peer),
            CombinedResponse::Retry { l3_issued } => {
                prop_assert!(l3_issued || rs.iter().any(|r| r.is_retry()));
            }
            other => prop_assert!(false, "unexpected {other:?}"),
        }
    }

    /// Snarf-winner selection is fair: over many rounds with the same
    /// volunteers, every volunteer wins a proportional share.
    #[test]
    fn snarf_round_robin_fairness(ids in proptest::collection::btree_set(0u8..4, 1..4)) {
        let mut c = SnoopCollector::new();
        let volunteers: Vec<SnoopResponse> = ids
            .iter()
            .map(|&i| SnoopResponse::SnarfAccept(L2Id::new(i)))
            .collect();
        let mut wins = std::collections::HashMap::new();
        let rounds = ids.len() * 12;
        for _ in 0..rounds {
            match c.combine(&txn(TxnKind::CastoutClean, true), &volunteers) {
                CombinedResponse::Wb(WbOutcome::SnarfedBy(w)) => {
                    *wins.entry(w.index()).or_insert(0usize) += 1;
                }
                other => prop_assert!(false, "unexpected {other:?}"),
            }
        }
        for &id in &ids {
            let w = wins.get(&(id as usize)).copied().unwrap_or(0);
            prop_assert_eq!(w, rounds / ids.len(), "unfair share for {}", id);
        }
    }
}
