//! Property-based tests for ring topology and timing invariants.

use cmpsim_coherence::{AgentId, L2Id};
use cmpsim_ring::{Ring, RingConfig, RingTopology};
use proptest::prelude::*;

fn agents(n: u8) -> Vec<AgentId> {
    let t = RingTopology::standard_cmp(n, 2);
    t.agents().to_vec()
}

proptest! {
    /// Hop distances are symmetric, bounded by half the ring, and zero
    /// only on the diagonal.
    #[test]
    fn hops_metric(n in 1u8..8, ai in 0usize..16, bi in 0usize..16) {
        let ags = agents(n);
        let a = ags[ai % ags.len()];
        let b = ags[bi % ags.len()];
        let topo = RingTopology::standard_cmp(n, 2);
        prop_assert_eq!(topo.hops(a, b), topo.hops(b, a));
        prop_assert!(topo.hops(a, b) <= (ags.len() / 2) as u64);
        prop_assert_eq!(topo.hops(a, b) == 0, a == b);
    }

    /// Address-ring issue times are strictly increasing for back-to-back
    /// requests and never precede the request.
    #[test]
    fn address_issue_monotone(times in proptest::collection::vec(0u64..10_000, 1..50)) {
        let mut sorted = times.clone();
        sorted.sort_unstable();
        let mut ring = Ring::new(RingTopology::standard_cmp(4, 2), RingConfig::default());
        let src = AgentId::L2(L2Id::new(0));
        let mut prev = 0;
        for &t in &sorted {
            let issued = ring.issue_address(t, src);
            prop_assert!(issued >= t);
            prop_assert!(issued > prev || prev == 0);
            prev = issued;
        }
        prop_assert_eq!(ring.stats().addr_issued, sorted.len() as u64);
    }

    /// Data transfers are never faster than occupancy + propagation and
    /// the channel never reorders a single source-destination pair's
    /// completions.
    #[test]
    fn data_transfer_floor(times in proptest::collection::vec(0u64..5_000, 1..40)) {
        let mut sorted = times.clone();
        sorted.sort_unstable();
        let cfg = RingConfig::default();
        let topo = RingTopology::standard_cmp(4, 2);
        let src = AgentId::L3;
        let dst = AgentId::L2(L2Id::new(0));
        let prop_delay = topo.prop(src, dst);
        let mut ring = Ring::new(topo, cfg);
        let mut prev = 0;
        for &t in &sorted {
            let done = ring.transfer_data(t, src, dst);
            prop_assert!(done >= t + cfg.data_occupancy + prop_delay);
            prop_assert!(done >= prev);
            prev = done;
        }
    }

    /// The contention-free address-phase floor is consistent with the
    /// individual pieces for every source agent.
    #[test]
    fn address_phase_floor_consistent(n in 2u8..8) {
        let topo = RingTopology::standard_cmp(n, 2);
        let ring = Ring::new(topo, RingConfig::default());
        for &a in ring.topology().agents() {
            let floor = ring.address_phase_floor(a);
            // At minimum: combine delay + return trip from the collector.
            let back = ring.topology().prop(ring.topology().collector(), a);
            prop_assert!(floor >= RingConfig::default().combine_delay + back);
        }
    }
}
