//! The bidirectional intrachip ring interconnect.
//!
//! The modelled CMP connects its L2 caches, the L3 controller and the
//! memory controller "through a point-to-point, bi-directional intrachip
//! ring network" running at half core speed with 32-byte links (paper
//! Table 3). Two logical rings are modelled:
//!
//! * the **address ring** — broadcast medium for coherence transactions:
//!   a transaction arbitrates for an issue slot, propagates to every
//!   agent (shortest direction), each agent snoops, responses flow to
//!   the Snoop Collector, and the combined response is broadcast back;
//! * the **data ring** — point-to-point line transfers with finite
//!   aggregate bandwidth (modelled as `k` concurrent transfer lanes) and
//!   hop-proportional propagation.
//!
//! Contention on either ring is the feedback loop that the paper's
//! Write-Back History Table exploits: eliminating useless clean
//! write-backs frees address slots, data lanes, and L3 queue slots.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod ring;
mod topology;

pub use ring::{Ring, RingConfig, RingDetail, RingStats};
pub use topology::RingTopology;
