//! Ring topology: agent placement and hop distances.

use cmpsim_coherence::AgentId;
use cmpsim_engine::Cycle;

/// Placement of coherence agents around the bidirectional ring.
///
/// Messages travel the shortest direction, so the effective distance
/// between two agents is `min(clockwise, counterclockwise)` hops.
///
/// # Example
///
/// ```
/// use cmpsim_ring::RingTopology;
/// use cmpsim_coherence::{AgentId, L2Id};
///
/// let topo = RingTopology::standard_cmp(4, 2);
/// let a = AgentId::L2(L2Id::new(0));
/// let b = AgentId::L2(L2Id::new(3));
/// assert!(topo.hops(a, b) <= topo.num_agents() as u64 / 2);
/// assert_eq!(topo.hops(a, a), 0);
/// ```
#[derive(Debug, Clone)]
pub struct RingTopology {
    agents: Vec<AgentId>,
    hop_cycles: Cycle,
    collector: AgentId,
    /// Ring position by dense agent id (see [`Self::dense`]),
    /// `u32::MAX` for agents not on the ring. Precomputed so the
    /// per-message [`hops`](Self::hops) lookup is O(1) instead of a
    /// linear scan of `agents`.
    positions: Vec<u32>,
}

impl RingTopology {
    /// Creates a topology from an explicit agent ordering.
    ///
    /// `collector` is the agent co-located with the Snoop Collector.
    ///
    /// # Panics
    ///
    /// Panics if `agents` is empty, contains duplicates, or does not
    /// contain `collector`.
    pub fn new(agents: Vec<AgentId>, hop_cycles: Cycle, collector: AgentId) -> Self {
        assert!(!agents.is_empty(), "ring needs at least one agent");
        for (i, a) in agents.iter().enumerate() {
            assert!(!agents[..i].contains(a), "duplicate agent {a} on the ring");
        }
        assert!(
            agents.contains(&collector),
            "collector {collector} not on the ring"
        );
        let mut positions = vec![u32::MAX; Self::DENSE_IDS];
        for (i, &a) in agents.iter().enumerate() {
            positions[Self::dense(a)] = i as u32;
        }
        RingTopology {
            agents,
            hop_cycles,
            collector,
            positions,
        }
    }

    /// Dense index space for [`AgentId`]: the 256 possible L2s, then L3,
    /// then Memory.
    const DENSE_IDS: usize = 258;

    #[inline]
    fn dense(a: AgentId) -> usize {
        match a {
            AgentId::L2(id) => id.index(),
            AgentId::L3 => 256,
            AgentId::Memory => 257,
        }
    }

    /// The standard modelled CMP: `num_l2` L2 caches interleaved with the
    /// L3 controller and the memory controller, Snoop Collector at the
    /// L3 controller (the chip's centre in Figure 1 of the paper).
    pub fn standard_cmp(num_l2: u8, hop_cycles: Cycle) -> Self {
        use cmpsim_coherence::L2Id;
        let mut agents = Vec::new();
        let half = num_l2.div_ceil(2);
        for i in 0..half {
            agents.push(AgentId::L2(L2Id::new(i)));
        }
        agents.push(AgentId::L3);
        for i in half..num_l2 {
            agents.push(AgentId::L2(L2Id::new(i)));
        }
        agents.push(AgentId::Memory);
        RingTopology::new(agents, hop_cycles, AgentId::L3)
    }

    /// All agents, in ring order.
    pub fn agents(&self) -> &[AgentId] {
        &self.agents
    }

    /// Number of agents on the ring.
    pub fn num_agents(&self) -> usize {
        self.agents.len()
    }

    /// The agent hosting the Snoop Collector.
    pub fn collector(&self) -> AgentId {
        self.collector
    }

    /// Ring position of an agent.
    ///
    /// # Panics
    ///
    /// Panics if the agent is not on the ring.
    #[inline]
    pub fn position(&self, a: AgentId) -> usize {
        let p = self.positions[Self::dense(a)];
        if p == u32::MAX {
            panic!("agent {a} not on ring");
        }
        p as usize
    }

    /// Shortest-direction hop count between two agents.
    #[inline]
    pub fn hops(&self, a: AgentId, b: AgentId) -> u64 {
        let n = self.agents.len();
        let pa = self.position(a);
        let pb = self.position(b);
        let d = pa.abs_diff(pb);
        d.min(n - d) as u64
    }

    /// Propagation latency (in core cycles) between two agents.
    #[inline]
    pub fn prop(&self, a: AgentId, b: AgentId) -> Cycle {
        self.hops(a, b) * self.hop_cycles
    }

    /// Worst-case propagation from `src` to any agent (broadcast reach).
    pub fn max_prop_from(&self, src: AgentId) -> Cycle {
        self.agents
            .iter()
            .map(|&a| self.prop(src, a))
            .max()
            .unwrap_or(0)
    }

    /// Core cycles per hop (the ring runs at 1:2 core speed, so a hop
    /// costs two core cycles in the paper configuration).
    pub fn hop_cycles(&self) -> Cycle {
        self.hop_cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmpsim_coherence::L2Id;

    #[test]
    fn standard_cmp_layout() {
        let t = RingTopology::standard_cmp(4, 2);
        assert_eq!(t.num_agents(), 6);
        assert_eq!(t.collector(), AgentId::L3);
        // L3 sits between the two L2 pairs.
        assert_eq!(t.position(AgentId::L3), 2);
    }

    #[test]
    fn hops_symmetric_and_shortest() {
        let t = RingTopology::standard_cmp(4, 2);
        let a = AgentId::L2(L2Id::new(0));
        let m = AgentId::Memory;
        assert_eq!(t.hops(a, m), t.hops(m, a));
        // Position 0 to position 5 wraps: 1 hop, not 5.
        assert_eq!(t.hops(a, m), 1);
    }

    #[test]
    fn prop_scales_with_hop_cycles() {
        let t = RingTopology::standard_cmp(4, 3);
        let a = AgentId::L2(L2Id::new(0));
        let b = AgentId::L3;
        assert_eq!(t.prop(a, b), t.hops(a, b) * 3);
        assert_eq!(t.prop(a, a), 0);
    }

    #[test]
    fn max_prop_covers_ring() {
        let t = RingTopology::standard_cmp(4, 2);
        // 6 agents -> farthest is 3 hops -> 6 cycles.
        assert_eq!(t.max_prop_from(AgentId::L3), 6);
    }

    #[test]
    fn odd_l2_count_supported() {
        let t = RingTopology::standard_cmp(3, 2);
        assert_eq!(t.num_agents(), 5);
        for i in 0..3 {
            t.position(AgentId::L2(L2Id::new(i))); // must not panic
        }
    }

    #[test]
    #[should_panic(expected = "duplicate agent")]
    fn duplicate_agents_panic() {
        let _ = RingTopology::new(vec![AgentId::L3, AgentId::L3], 2, AgentId::L3);
    }

    #[test]
    #[should_panic(expected = "not on the ring")]
    fn collector_must_be_on_ring() {
        let _ = RingTopology::new(vec![AgentId::L3], 2, AgentId::Memory);
    }

    #[test]
    #[should_panic(expected = "not on ring")]
    fn position_of_foreign_agent_panics() {
        let t = RingTopology::new(vec![AgentId::L3], 2, AgentId::L3);
        t.position(AgentId::Memory);
    }
}
