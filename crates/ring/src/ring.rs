//! Address- and data-ring timing with contention.

use cmpsim_coherence::AgentId;
use cmpsim_engine::{Channel, Cycle, FifoServer};

use crate::RingTopology;

/// How precisely the data ring's bandwidth is modelled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RingDetail {
    /// Aggregate bandwidth: `data_lanes` concurrent transfers anywhere
    /// on the ring. Fast and adequate for the paper's experiments.
    #[default]
    Aggregate,
    /// Per-link wormhole model: a transfer reserves every segment along
    /// its (shortest-direction) path; transfers on disjoint segments
    /// proceed concurrently, transfers sharing a segment serialize.
    PerLink,
}

/// Ring timing parameters.
///
/// Defaults model the paper's Table 3: a 32-byte-wide bidirectional ring
/// at 1:2 core speed moving 128-byte lines (4 beats × 2 core cycles = 8
/// cycles of link occupancy per transfer).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RingConfig {
    /// Core cycles per ring hop.
    pub hop_cycles: Cycle,
    /// Minimum spacing between address-ring issues (arbitration beat).
    pub addr_beat: Cycle,
    /// Link occupancy of one full-line data transfer.
    pub data_occupancy: Cycle,
    /// Concurrent data transfers the ring sustains (segment parallelism
    /// of the two directions) — aggregate mode only.
    pub data_lanes: usize,
    /// Snoop-response combining delay at the Snoop Collector.
    pub combine_delay: Cycle,
    /// Bandwidth-model fidelity for the data ring.
    pub detail: RingDetail,
}

impl Default for RingConfig {
    fn default() -> Self {
        RingConfig {
            hop_cycles: 2,
            addr_beat: 2,
            data_occupancy: 8,
            data_lanes: 4,
            combine_delay: 4,
            detail: RingDetail::Aggregate,
        }
    }
}

/// Utilization statistics for both rings.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RingStats {
    /// Address transactions issued.
    pub addr_issued: u64,
    /// Total address-ring occupancy (cycles).
    pub addr_busy_cycles: Cycle,
    /// Data transfers carried.
    pub data_transfers: u64,
    /// Total data-ring occupancy (cycles).
    pub data_busy_cycles: Cycle,
}

/// The bidirectional intrachip ring: address broadcast plus data
/// transfers, with contention.
///
/// # Example
///
/// ```
/// use cmpsim_ring::{Ring, RingConfig, RingTopology};
/// use cmpsim_coherence::{AgentId, L2Id};
///
/// let topo = RingTopology::standard_cmp(4, 2);
/// let mut ring = Ring::new(topo, RingConfig::default());
/// let src = AgentId::L2(L2Id::new(0));
/// let issued = ring.issue_address(100, src);
/// let snoop_at_l3 = ring.snoop_arrival(issued, src, AgentId::L3);
/// assert!(snoop_at_l3 >= issued);
/// ```
#[derive(Debug, Clone)]
pub struct Ring {
    topo: RingTopology,
    cfg: RingConfig,
    addr_arb: FifoServer,
    data: Channel,
    /// Clockwise links: `links_cw[i]` connects position `i` to `i+1`.
    links_cw: Vec<FifoServer>,
    /// Counterclockwise links: `links_ccw[i]` connects `i+1` to `i`.
    links_ccw: Vec<FifoServer>,
}

impl Ring {
    /// Creates a ring over the given topology.
    pub fn new(topo: RingTopology, cfg: RingConfig) -> Self {
        let n = topo.num_agents();
        Ring {
            addr_arb: FifoServer::new(cfg.addr_beat),
            data: Channel::new(cfg.data_lanes, cfg.data_occupancy),
            links_cw: vec![FifoServer::new(cfg.data_occupancy); n],
            links_ccw: vec![FifoServer::new(cfg.data_occupancy); n],
            topo,
            cfg,
        }
    }

    /// The topology.
    pub fn topology(&self) -> &RingTopology {
        &self.topo
    }

    /// The configuration.
    pub fn config(&self) -> RingConfig {
        self.cfg
    }

    /// Arbitrates for an address-ring slot at `now`. Returns the time the
    /// transaction is actually on the ring (visible for snooping).
    pub fn issue_address(&mut self, now: Cycle, src: AgentId) -> Cycle {
        self.issue_address_timed(now, src).1
    }

    /// Like [`Ring::issue_address`], but also returns the arbitration
    /// queueing delay: `(wait, on_ring)` where the address beat began at
    /// `now + wait`. The span tracer uses the split to attribute ring
    /// arbitration separately from the beat itself.
    pub fn issue_address_timed(&mut self, now: Cycle, _src: AgentId) -> (Cycle, Cycle) {
        self.addr_arb.reserve_timed(now)
    }

    /// When agent `dst` snoops a transaction issued by `src` at `issued`.
    pub fn snoop_arrival(&self, issued: Cycle, src: AgentId, dst: AgentId) -> Cycle {
        issued + self.topo.prop(src, dst)
    }

    /// When a snoop response produced by `agent` at `resp_ready` reaches
    /// the Snoop Collector.
    pub fn response_at_collector(&self, resp_ready: Cycle, agent: AgentId) -> Cycle {
        resp_ready + self.topo.prop(agent, self.topo.collector())
    }

    /// When the combined response, generated once the last snoop response
    /// has arrived at the collector (`last_resp_at_collector`), is seen by
    /// `dst`.
    pub fn combined_arrival(&self, last_resp_at_collector: Cycle, dst: AgentId) -> Cycle {
        last_resp_at_collector + self.cfg.combine_delay + self.topo.prop(self.topo.collector(), dst)
    }

    /// Reserves the data ring for one line transfer from `src` to `dst`
    /// requested at `now`. Returns the time the full line has arrived.
    pub fn transfer_data(&mut self, now: Cycle, src: AgentId, dst: AgentId) -> Cycle {
        match self.cfg.detail {
            RingDetail::Aggregate => {
                let link_done = self.data.reserve(now);
                link_done + self.topo.prop(src, dst)
            }
            RingDetail::PerLink => self.transfer_per_link(now, src, dst),
        }
    }

    /// Wormhole per-link transfer: the head flit advances one hop per
    /// `hop_cycles`, each traversed link staying busy for the line's
    /// occupancy; contention on any segment delays the whole worm.
    fn transfer_per_link(&mut self, now: Cycle, src: AgentId, dst: AgentId) -> Cycle {
        if src == dst {
            // Local turn-around still pays one occupancy.
            return now + self.cfg.data_occupancy;
        }
        let n = self.topo.num_agents();
        let a = self.topo.position(src);
        let b = self.topo.position(dst);
        let cw_dist = (b + n - a) % n;
        let ccw_dist = (a + n - b) % n;
        let clockwise = cw_dist <= ccw_dist;
        let mut head = now;
        let mut pos = a;
        let hops = cw_dist.min(ccw_dist);
        for _ in 0..hops {
            let (link, next) = if clockwise {
                (&mut self.links_cw[pos], (pos + 1) % n)
            } else {
                let prev = (pos + n - 1) % n;
                (&mut self.links_ccw[prev], prev)
            };
            // Reserve the segment; the head leaves it hop_cycles after
            // acquisition, the tail after the full occupancy.
            let done = link.reserve(head);
            head = done - self.cfg.data_occupancy + self.cfg.hop_cycles;
            pos = next;
        }
        // Arrival when the tail has drained onto the destination port.
        head + self.cfg.data_occupancy
    }

    /// Would a data transfer requested at `now` start without queueing?
    pub fn data_uncontended(&self, now: Cycle) -> bool {
        self.data.idle_lane_at(now)
    }

    /// Contention-free latency of a full address phase (issue → snoop at
    /// the farthest agent → response back to collector → combine →
    /// combined response at `src`), excluding per-agent snoop processing.
    pub fn address_phase_floor(&self, src: AgentId) -> Cycle {
        let worst = self
            .topo
            .agents()
            .iter()
            .map(|&a| self.topo.prop(src, a) + self.topo.prop(a, self.topo.collector()))
            .max()
            .unwrap_or(0);
        worst + self.cfg.combine_delay + self.topo.prop(self.topo.collector(), src)
    }

    /// Utilization statistics.
    pub fn stats(&self) -> RingStats {
        let link_busy: Cycle = self
            .links_cw
            .iter()
            .chain(self.links_ccw.iter())
            .map(|l| l.busy_cycles())
            .sum();
        let link_served: u64 = self
            .links_cw
            .iter()
            .chain(self.links_ccw.iter())
            .map(|l| l.served())
            .sum();
        RingStats {
            addr_issued: self.addr_arb.served(),
            addr_busy_cycles: self.addr_arb.busy_cycles(),
            data_transfers: self.data.served() + link_served,
            data_busy_cycles: self.data.busy_cycles() + link_busy,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmpsim_coherence::L2Id;

    fn ring() -> Ring {
        Ring::new(RingTopology::standard_cmp(4, 2), RingConfig::default())
    }

    fn l2(i: u8) -> AgentId {
        AgentId::L2(L2Id::new(i))
    }

    #[test]
    fn address_issue_serializes() {
        let mut r = ring();
        let a = r.issue_address(0, l2(0));
        let b = r.issue_address(0, l2(1));
        let c = r.issue_address(0, l2(2));
        assert_eq!(a, 2);
        assert_eq!(b, 4);
        assert_eq!(c, 6);
    }

    #[test]
    fn snoop_arrival_adds_propagation() {
        let r = ring();
        let t = r.snoop_arrival(10, l2(0), AgentId::L3);
        // L2#0 at position 0, L3 at position 2 -> 2 hops * 2 cycles.
        assert_eq!(t, 14);
        assert_eq!(r.snoop_arrival(10, l2(0), l2(0)), 10);
    }

    #[test]
    fn combined_response_includes_combine_delay() {
        let r = ring();
        let seen = r.combined_arrival(100, l2(0));
        // collector = L3 (pos 2), dst pos 0 -> 2 hops * 2 + combine 4.
        assert_eq!(seen, 108);
    }

    #[test]
    fn data_transfers_respect_bandwidth() {
        let mut r = ring();
        let cfg = RingConfig::default();
        let mut completions = Vec::new();
        for _ in 0..cfg.data_lanes + 1 {
            completions.push(r.transfer_data(0, AgentId::L3, l2(0)));
        }
        // First `lanes` transfers finish together; the next queues.
        let first = completions[0];
        assert!(completions[..cfg.data_lanes].iter().all(|&c| c == first));
        assert!(completions[cfg.data_lanes] > first);
        assert_eq!(r.stats().data_transfers, cfg.data_lanes as u64 + 1);
    }

    #[test]
    fn data_transfer_latency_floor() {
        let mut r = ring();
        let t = r.transfer_data(0, AgentId::L3, l2(0));
        // occupancy 8 + 2 hops * 2 cycles = 12.
        assert_eq!(t, 12);
    }

    #[test]
    fn address_phase_floor_sane() {
        let r = ring();
        let floor = r.address_phase_floor(l2(0));
        // Must cover at least one full traversal plus combine delay.
        assert!(floor >= r.config().combine_delay);
        assert!(floor < 100, "floor unreasonably large: {floor}");
    }

    #[test]
    fn per_link_floor_matches_aggregate_floor() {
        let cfg = RingConfig {
            detail: RingDetail::PerLink,
            ..Default::default()
        };
        let mut r = Ring::new(RingTopology::standard_cmp(4, 2), cfg);
        // Contention-free: prop + occupancy, same as aggregate mode.
        let t = r.transfer_data(0, AgentId::L3, l2(0));
        assert_eq!(t, 2 * 2 + 8);
    }

    #[test]
    fn per_link_disjoint_segments_concurrent() {
        let cfg = RingConfig {
            detail: RingDetail::PerLink,
            ..Default::default()
        };
        let mut r = Ring::new(RingTopology::standard_cmp(4, 2), cfg);
        // Positions: L2#0=0, L2#1=1, L3=2, L2#2=3, L2#3=4, Mem=5.
        // 0->1 and 3->4 share no segment: both finish contention-free.
        let a = r.transfer_data(0, l2(0), l2(1));
        let b = r.transfer_data(0, l2(2), l2(3));
        assert_eq!(a, 2 + 8);
        assert_eq!(b, 2 + 8);
        // A third transfer over the 0->1 segment serializes behind a.
        let c = r.transfer_data(0, l2(0), l2(1));
        assert!(c > a);
    }

    #[test]
    fn per_link_takes_shortest_direction() {
        let cfg = RingConfig {
            detail: RingDetail::PerLink,
            ..Default::default()
        };
        let mut r = Ring::new(RingTopology::standard_cmp(4, 2), cfg);
        // Position 0 to position 5 is one counterclockwise hop.
        let t = r.transfer_data(0, l2(0), AgentId::Memory);
        assert_eq!(t, 2 + 8);
    }

    #[test]
    fn per_link_stats_counted() {
        let cfg = RingConfig {
            detail: RingDetail::PerLink,
            ..Default::default()
        };
        let mut r = Ring::new(RingTopology::standard_cmp(4, 2), cfg);
        r.transfer_data(0, AgentId::L3, l2(0)); // 2 hops = 2 link grants
        let s = r.stats();
        assert_eq!(s.data_transfers, 2);
        assert_eq!(s.data_busy_cycles, 16);
    }

    #[test]
    fn stats_accumulate() {
        let mut r = ring();
        r.issue_address(0, l2(0));
        r.transfer_data(0, l2(0), l2(1));
        let s = r.stats();
        assert_eq!(s.addr_issued, 1);
        assert_eq!(s.data_transfers, 1);
        assert_eq!(s.addr_busy_cycles, 2);
        assert_eq!(s.data_busy_cycles, 8);
    }

    #[test]
    fn uncontended_probe() {
        let mut r = ring();
        assert!(r.data_uncontended(0));
        for _ in 0..RingConfig::default().data_lanes {
            r.transfer_data(0, AgentId::L3, l2(0));
        }
        assert!(!r.data_uncontended(0));
        assert!(r.data_uncontended(8));
    }
}
