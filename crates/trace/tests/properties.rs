//! Property-based tests for trace generation and the binary format.

use cmpsim_cache::Addr;
use cmpsim_trace::{
    file, MemOp, SegmentMix, SyntheticWorkload, ThreadId, TraceRecord, WorkloadParams,
};
use proptest::prelude::*;

fn arb_records() -> impl Strategy<Value = Vec<TraceRecord>> {
    proptest::collection::vec(
        (0u16..64, any::<bool>(), 0u64..1 << 40).prop_map(|(t, st, a)| {
            TraceRecord::new(
                ThreadId::new(t),
                if st { MemOp::Store } else { MemOp::Load },
                Addr::new(a * 128),
            )
        }),
        0..500,
    )
}

fn params_with_mix(mix: SegmentMix) -> WorkloadParams {
    WorkloadParams {
        name: "prop".into(),
        line_bytes: 128,
        threads: 8,
        issue_interval: 1,
        mix,
        private_lines: 256,
        private_theta: 2.0,
        private_store_frac: 0.25,
        bounce_lines: 512,
        bounce_group_threads: 4,
        bounce_cross_frac: 0.1,
        bounce_theta: 1.5,
        bounce_store_frac: 0.1,
        rotor_lines: 128,
        rotor_store_frac: 0.1,
        shared_lines: 128,
        shared_theta: 1.5,
        shared_store_frac: 0.05,
        migratory_lines: 64,
        migratory_rmw_frac: 0.5,
    }
}

proptest! {
    /// The binary trace format round-trips arbitrary record sequences.
    #[test]
    fn file_roundtrip(records in arb_records()) {
        let mut buf = Vec::new();
        file::write_trace(&mut buf, &records).unwrap();
        let back = file::read_trace(&buf[..]).unwrap();
        prop_assert_eq!(back, records);
    }

    /// Truncating an encoded trace anywhere inside the record area is
    /// always detected.
    #[test]
    fn truncation_always_detected(records in arb_records(), cut in 1usize..50) {
        prop_assume!(!records.is_empty());
        let mut buf = Vec::new();
        file::write_trace(&mut buf, &records).unwrap();
        let cut = cut.min(buf.len() - 17); // keep header intact
        buf.truncate(buf.len() - cut);
        prop_assert!(file::read_trace(&buf[..]).is_err());
    }

    /// Generated records stay within their declared populations: every
    /// address is line-aligned, and a single-segment mix emits only that
    /// segment's addresses (disjoint region tags).
    #[test]
    fn single_segment_addresses_disjoint(seed in any::<u64>()) {
        let seg = |private: f64, bounce: f64, shared: f64| SegmentMix {
            private,
            bounce,
            rotor: 0.0,
            shared,
            migratory: 0.0,
            streaming: 1.0 - private - bounce - shared,
        };
        let mut a = SyntheticWorkload::new(params_with_mix(seg(1.0, 0.0, 0.0)), seed).unwrap();
        let mut b = SyntheticWorkload::new(params_with_mix(seg(0.0, 1.0, 0.0)), seed).unwrap();
        let sa: std::collections::HashSet<u64> =
            (0..300).map(|_| a.next_record(ThreadId::new(0)).addr.raw()).collect();
        let sb: std::collections::HashSet<u64> =
            (0..300).map(|_| b.next_record(ThreadId::new(0)).addr.raw()).collect();
        prop_assert!(sa.is_disjoint(&sb));
        for &addr in sa.iter().chain(sb.iter()) {
            prop_assert_eq!(addr % 128, 0);
        }
    }

    /// Store fractions are honored within statistical tolerance.
    #[test]
    fn store_fraction_tracks(frac in 0.0f64..0.9) {
        let mut p = params_with_mix(SegmentMix {
            private: 1.0,
            bounce: 0.0,
            rotor: 0.0,
            shared: 0.0,
            migratory: 0.0,
            streaming: 0.0,
        });
        p.private_store_frac = frac;
        let mut w = SyntheticWorkload::new(p, 3).unwrap();
        let n = 8_000;
        let stores = (0..n)
            .filter(|_| w.next_record(ThreadId::new(1)).op.is_store())
            .count();
        let measured = stores as f64 / n as f64;
        prop_assert!((measured - frac).abs() < 0.05, "measured {measured} want {frac}");
    }
}
