//! Sharded (parallel-in-one-run) frontend: trace generation pipelined
//! onto worker threads.
//!
//! Every [`SyntheticWorkload`] thread stream is a pure function of
//! `(params, seed, thread)` — thread states never interact — so the
//! reference streams can be generated *ahead of* the event loop by a
//! pool of shard producer threads without changing a single record.
//! [`ShardedWorkload`] partitions the thread streams into contiguous
//! shards (matching the per-L2-slice agent partition: threads of one L2
//! stay in one shard), gives each shard a producer thread, and hands
//! records to the event loop through one lock-free SPSC ring per thread
//! stream.
//!
//! The producers' run-ahead is bounded by the conservative lookahead
//! window derived from the ring's minimum hop latency
//! ([`cmpsim_engine::shard::Lookahead::ring_capacity`]): each handoff
//! ring holds a fixed number of windows' worth of references, so the
//! pipeline's buffering is proportional to the machine's real lookahead
//! rather than unbounded.
//!
//! Byte-identity with the serial build holds by construction: the
//! consumer pops records in exactly the order the event loop asks for
//! them, and each per-thread stream is identical to what the serial
//! build would have generated inline (`tests` below assert both; the
//! system-level differential harness in `tests/shard_oracle.rs` asserts
//! it end to end).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use cmpsim_engine::shard::{Lookahead, ShardPlan};
use cmpsim_engine::spsc;

use crate::{ReferenceSource, SyntheticWorkload, ThreadId, TraceRecord};

/// How many lookahead windows of references each handoff ring buffers.
/// Large enough to amortize the cross-thread handoff, small enough that
/// 16 rings stay well inside the L2 of the host machine.
const WINDOWS_AHEAD: u64 = 2048;

/// Spin iterations before a starving consumer yields the CPU to the
/// producers (essential on hosts with fewer cores than shards).
const SPINS_BEFORE_YIELD: u32 = 64;

/// A [`ReferenceSource`] that generates the synthetic streams on shard
/// producer threads, ahead of the simulation.
///
/// # Example
///
/// ```
/// use cmpsim_trace::{ShardedWorkload, SyntheticWorkload, Workload, CacheScale};
/// use cmpsim_trace::{ReferenceSource, ThreadId};
///
/// let params = Workload::Trade2.params(16, CacheScale::scaled(8));
/// let serial = SyntheticWorkload::new(params.clone(), 42)?;
/// let mut sharded = ShardedWorkload::spawn(SyntheticWorkload::new(params, 42)?, 4);
/// // Identical stream, produced on a worker thread:
/// let mut inline = serial.clone();
/// for _ in 0..100 {
///     assert_eq!(
///         sharded.next_record(ThreadId::new(3)),
///         inline.next_record(ThreadId::new(3)),
///     );
/// }
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct ShardedWorkload {
    name: String,
    issue_interval: u64,
    /// One handoff ring consumer per thread stream.
    rings: Vec<spsc::Consumer<TraceRecord>>,
    /// The producer thread generating each thread stream (for targeted
    /// unparks when a ring drains).
    producer_of: Vec<usize>,
    producers: Vec<JoinHandle<()>>,
    stop: Arc<AtomicBool>,
    shards: usize,
}

impl ShardedWorkload {
    /// Splits `workload` into `shards` producer threads (clamped to the
    /// thread-stream count) with the default lookahead bound (one ring
    /// hop, [`Lookahead::from_ring_hop`] of 2 — the modelled machine's
    /// minimum).
    pub fn spawn(workload: SyntheticWorkload, shards: usize) -> Self {
        Self::spawn_with_lookahead(workload, shards, Lookahead::from_ring_hop(2))
    }

    /// Splits `workload` into `shards` producer threads whose run-ahead
    /// is bounded by `lookahead` (converted to references via the
    /// workload's issue interval).
    pub fn spawn_with_lookahead(
        workload: SyntheticWorkload,
        shards: usize,
        lookahead: Lookahead,
    ) -> Self {
        let params = workload.params();
        let name = params.name.clone();
        let issue_interval = params.issue_interval;
        let num_threads = params.threads as usize;
        let capacity = lookahead.ring_capacity(issue_interval, WINDOWS_AHEAD);
        let plan = ShardPlan::new(num_threads, shards.max(1));
        let stop = Arc::new(AtomicBool::new(false));

        let mut rings = Vec::with_capacity(num_threads);
        let mut producer_of = Vec::with_capacity(num_threads);
        let mut senders: Vec<Vec<(ThreadId, spsc::Producer<TraceRecord>)>> =
            (0..plan.shards()).map(|_| Vec::new()).collect();
        for t in 0..num_threads {
            let (tx, rx) = spsc::ring(capacity);
            let shard = plan.shard_of(t);
            producer_of.push(shard);
            senders[shard].push((ThreadId::new(t as u16), tx));
            rings.push(rx);
        }

        let producers = senders
            .into_iter()
            .map(|owned| {
                let mut generator = workload.clone();
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || produce(&mut generator, owned, &stop))
            })
            .collect();

        ShardedWorkload {
            name,
            issue_interval,
            rings,
            producer_of,
            producers,
            stop,
            shards: plan.shards(),
        }
    }

    /// Number of producer shards actually running (after clamping to
    /// the thread-stream count).
    pub fn shards(&self) -> usize {
        self.shards
    }
}

/// A shard producer's loop: keep every owned ring topped up; park when
/// all are full (the consumer unparks us when one drains).
fn produce(
    generator: &mut SyntheticWorkload,
    mut owned: Vec<(ThreadId, spsc::Producer<TraceRecord>)>,
    stop: &AtomicBool,
) {
    // One generated-but-unpushed record per owned stream, so a full
    // ring never forces regeneration (which would desync the RNG).
    let mut pending: Vec<Option<TraceRecord>> = vec![None; owned.len()];
    while !stop.load(Ordering::Relaxed) {
        let mut pushed = false;
        for (i, (t, tx)) in owned.iter_mut().enumerate() {
            if tx.is_closed() {
                continue;
            }
            // Top this ring up completely before moving on: bulk refills
            // amortize the shared-index traffic.
            loop {
                let rec = match pending[i].take() {
                    Some(r) => r,
                    None => generator.next_record(*t),
                };
                match tx.push(rec) {
                    Ok(()) => pushed = true,
                    Err(back) => {
                        pending[i] = Some(back);
                        break;
                    }
                }
            }
        }
        if !pushed {
            // Every ring is full (or closed): sleep until the consumer
            // unparks us. The timeout bounds the race where the consumer
            // unparks between our check and the park.
            std::thread::park_timeout(std::time::Duration::from_millis(1));
        }
    }
}

impl ReferenceSource for ShardedWorkload {
    fn next_record(&mut self, thread: ThreadId) -> TraceRecord {
        let t = thread.index();
        let mut spins = 0u32;
        loop {
            if let Some(rec) = self.rings[t].pop() {
                return rec;
            }
            // Starving: the producer is behind (or parked on other full
            // rings). Wake it, then spin briefly before yielding so we
            // don't burn the producer's CPU on a shared core.
            self.producers[self.producer_of[t]].thread().unpark();
            spins += 1;
            if spins >= SPINS_BEFORE_YIELD {
                spins = 0;
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        }
    }

    fn issue_interval(&self) -> u64 {
        self.issue_interval
    }

    fn name(&self) -> &str {
        &self.name
    }
}

impl Drop for ShardedWorkload {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        // Dropping the consumers marks every ring closed, so producers
        // blocked on full rings see the stop quickly too.
        self.rings.clear();
        for h in self.producers.drain(..) {
            h.thread().unpark();
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CacheScale, Workload};

    fn workload(seed: u64) -> SyntheticWorkload {
        let params = Workload::Cpw2.params(16, CacheScale::scaled(16));
        SyntheticWorkload::new(params, seed).unwrap()
    }

    #[test]
    fn sharded_streams_match_serial_exactly() {
        for shards in [1, 2, 4, 8, 16] {
            let mut serial = workload(7);
            let mut sharded = ShardedWorkload::spawn(workload(7), shards);
            assert_eq!(sharded.shards(), shards.min(16));
            // Interleave threads the way the event loop does (unevenly).
            for i in 0..4_000usize {
                let t = ThreadId::new(((i * 7) % 16) as u16);
                assert_eq!(
                    ReferenceSource::next_record(&mut sharded, t),
                    serial.next_record(t),
                    "shards={shards} step={i}"
                );
            }
        }
    }

    #[test]
    fn excess_shards_clamp_to_thread_count() {
        let sharded = ShardedWorkload::spawn(workload(1), 64);
        assert_eq!(sharded.shards(), 16);
    }

    #[test]
    fn reports_name_and_interval() {
        let w = workload(3);
        let interval = w.params().issue_interval;
        let sharded = ShardedWorkload::spawn(w, 2);
        assert_eq!(sharded.name(), "CPW2");
        assert_eq!(sharded.issue_interval(), interval);
    }

    #[test]
    fn drop_joins_producers_quickly() {
        // Even with producers parked on full rings (tiny consumption),
        // drop must stop and join them rather than leak or hang.
        let sharded = ShardedWorkload::spawn(workload(9), 4);
        std::thread::sleep(std::time::Duration::from_millis(5));
        drop(sharded); // must not hang
    }

    #[test]
    fn deep_single_thread_drain_outruns_ring_capacity() {
        // Pull far more than one ring capacity from a single stream so
        // the consumer repeatedly catches up with the producer.
        let mut serial = workload(11);
        let mut sharded = ShardedWorkload::spawn(workload(11), 4);
        let t = ThreadId::new(5);
        for i in 0..50_000 {
            assert_eq!(
                ReferenceSource::next_record(&mut sharded, t),
                serial.next_record(t),
                "step {i}"
            );
        }
    }
}
