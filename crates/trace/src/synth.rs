//! Synthetic workload generation.

use std::error::Error;
use std::fmt;

use cmpsim_cache::Addr;
use cmpsim_engine::SplitMix64;

use crate::{MemOp, ThreadId, TraceRecord};

/// Probability mix over the five access populations.
///
/// Probabilities must be non-negative and sum to 1 (±1e-6).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SegmentMix {
    /// Per-thread private data with strong temporal locality (L2 hits).
    pub private: f64,
    /// Chip-wide "bounce" set sized relative to the L3: the population of
    /// lines that live in the L2↔L3 eviction/re-reference loop.
    pub bounce: f64,
    /// Chip-wide cyclically-scanned "rotor" set sized between the L2 and
    /// L3 capacities: every pass evicts and re-references each line on a
    /// regular period — the population the snarf (reuse) table learns.
    pub rotor: f64,
    /// Chip-wide read-mostly shared data (clean interventions, `Shared`
    /// lines for the snarf victim policy).
    pub shared: f64,
    /// Migratory read-modify-write data (dirty interventions, upgrades).
    pub migratory: f64,
    /// Streaming data, never reused (cold misses to memory).
    pub streaming: f64,
}

impl SegmentMix {
    /// Checks that the mix is a probability distribution.
    pub fn is_valid(&self) -> bool {
        let parts = [
            self.private,
            self.bounce,
            self.rotor,
            self.shared,
            self.migratory,
            self.streaming,
        ];
        parts.iter().all(|&p| (0.0..=1.0).contains(&p))
            && (parts.iter().sum::<f64>() - 1.0).abs() < 1e-6
    }
}

/// Errors from invalid workload parameters.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkloadError {
    /// The segment mix is not a probability distribution.
    BadMix(SegmentMix),
    /// A region that has nonzero access probability is empty.
    EmptyRegion(&'static str),
    /// No threads.
    NoThreads,
}

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadError::BadMix(m) => write!(f, "segment mix does not sum to 1: {m:?}"),
            WorkloadError::EmptyRegion(r) => write!(f, "region {r} is empty but has probability"),
            WorkloadError::NoThreads => f.write_str("workload needs at least one thread"),
        }
    }
}

impl Error for WorkloadError {}

/// Full parameterization of a synthetic workload.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadParams {
    /// Human-readable workload name.
    pub name: String,
    /// Cache line size in bytes (addresses are line-aligned multiples).
    pub line_bytes: u64,
    /// Hardware threads issuing references.
    pub threads: u16,
    /// Cycles between successive references of one thread (1 = a fully
    /// busy core; larger values model lower CPU utilization — the paper
    /// notes TP runs at >92 % utilization, CPW2 at ~70 %, and NotesBench
    /// places "very low demands" on the memory subsystem).
    pub issue_interval: u64,
    /// Access population mix.
    pub mix: SegmentMix,
    /// Private region size per thread, in lines.
    pub private_lines: u64,
    /// Locality exponent for private accesses (larger = hotter head).
    pub private_theta: f64,
    /// Fraction of private accesses that are stores.
    pub private_store_frac: f64,
    /// Bounce region size per *group* (see
    /// [`bounce_group_threads`](Self::bounce_group_threads)), in lines.
    /// Sized relative to the L3: aggregate `< L3` gives high L3 hit
    /// rates and highly redundant clean write-backs (Trade2-like);
    /// `> L3` thrashes the L3 (TP-like).
    pub bounce_lines: u64,
    /// Threads per bounce group: threads in a group share one bounce
    /// sub-region. `4` partitions the set per core pair (per L2) — the
    /// common commercial pattern of software threads working a database
    /// partition; equal to the thread count it becomes chip-wide shared.
    pub bounce_group_threads: u16,
    /// Fraction of bounce accesses that go to a *random other* group's
    /// sub-region (cross-partition traffic: lock tables, hot indexes).
    /// This is what lets one L2's write-back history help another
    /// (Figure 3's global WBHT updates) and puts copies of bounce lines
    /// in peer L2s.
    pub bounce_cross_frac: f64,
    /// Locality exponent for bounce accesses (1.0 = uniform).
    pub bounce_theta: f64,
    /// Fraction of bounce accesses that are stores.
    pub bounce_store_frac: f64,
    /// Rotor region size (chip-wide), in lines. Sized a few times the
    /// per-L2 capacity so every pass evicts: the regular
    /// evict→write-back→re-reference period is what makes these lines
    /// snarf-eligible and keeps copies alive in peer L2s.
    pub rotor_lines: u64,
    /// Fraction of rotor accesses that are stores.
    pub rotor_store_frac: f64,
    /// Read-mostly shared region size, in lines.
    pub shared_lines: u64,
    /// Locality exponent for shared accesses.
    pub shared_theta: f64,
    /// Fraction of shared accesses that are stores.
    pub shared_store_frac: f64,
    /// Migratory region size, in lines.
    pub migratory_lines: u64,
    /// Probability a migratory load is followed by a store to the same
    /// line by the same thread (read-modify-write behaviour).
    pub migratory_rmw_frac: f64,
}

impl WorkloadParams {
    /// Validates the parameters.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError`] for invalid mixes, empty-but-used
    /// regions, or zero threads.
    pub fn validate(&self) -> Result<(), WorkloadError> {
        if self.threads == 0 {
            return Err(WorkloadError::NoThreads);
        }
        if self.issue_interval == 0 {
            return Err(WorkloadError::EmptyRegion("issue_interval"));
        }
        if self.mix.bounce > 0.0 && self.bounce_group_threads == 0 {
            return Err(WorkloadError::EmptyRegion("bounce_group_threads"));
        }
        if !self.mix.is_valid() {
            return Err(WorkloadError::BadMix(self.mix));
        }
        let checks: [(&'static str, f64, u64); 5] = [
            ("private", self.mix.private, self.private_lines),
            ("bounce", self.mix.bounce, self.bounce_lines),
            ("rotor", self.mix.rotor, self.rotor_lines),
            ("shared", self.mix.shared, self.shared_lines),
            ("migratory", self.mix.migratory, self.migratory_lines),
        ];
        for (name, p, lines) in checks {
            if p > 0.0 && lines == 0 {
                return Err(WorkloadError::EmptyRegion(name));
            }
        }
        Ok(())
    }
}

// Address-space layout: disjoint regions tagged in high line-address
// bits. Threads get disjoint private/streaming sub-regions.
const REGION_SHIFT: u32 = 36;
const THREAD_SHIFT: u32 = 26;
const REGION_PRIVATE: u64 = 1;
const REGION_BOUNCE: u64 = 2;
const REGION_SHARED: u64 = 3;
const REGION_MIGRATORY: u64 = 4;
const REGION_STREAM: u64 = 5;
const REGION_ROTOR: u64 = 6;

#[derive(Debug, Clone)]
struct ThreadState {
    rng: SplitMix64,
    stream_pos: u64,
    rotor_pos: u64,
    migratory_pending: Option<u64>,
}

/// A deterministic, on-demand synthetic reference stream.
///
/// Each thread's stream is independent and reproducible: the same
/// (parameters, seed) pair always yields the same references, which makes
/// whole-simulation runs bit-identical.
///
/// # Example
///
/// ```
/// use cmpsim_trace::{SyntheticWorkload, Workload, CacheScale, ThreadId};
///
/// let params = Workload::Trade2.params(16, CacheScale::scaled(8));
/// let mut w = SyntheticWorkload::new(params, 42)?;
/// let r = w.next_record(ThreadId::new(0));
/// assert_eq!(r.thread.index(), 0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct SyntheticWorkload {
    params: WorkloadParams,
    threads: Vec<ThreadState>,
}

impl SyntheticWorkload {
    /// Creates a workload stream.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError`] when the parameters are invalid.
    pub fn new(params: WorkloadParams, seed: u64) -> Result<Self, WorkloadError> {
        params.validate()?;
        let mut root = SplitMix64::new(seed ^ 0x5EED_CAFE_0000);
        let rotor_lines = params.rotor_lines;
        let threads = (0..params.threads)
            .map(|_| {
                let mut rng = root.fork();
                // Spread rotor scan phases so copies of each rotor line
                // live in several L2s at once.
                let rotor_pos = if rotor_lines > 0 {
                    rng.gen_range(rotor_lines)
                } else {
                    0
                };
                ThreadState {
                    rng,
                    stream_pos: 0,
                    rotor_pos,
                    migratory_pending: None,
                }
            })
            .collect();
        Ok(SyntheticWorkload { params, threads })
    }

    /// The parameters.
    pub fn params(&self) -> &WorkloadParams {
        &self.params
    }

    /// Produces the next reference for `thread`.
    ///
    /// # Panics
    ///
    /// Panics if `thread` is out of range.
    pub fn next_record(&mut self, thread: ThreadId) -> TraceRecord {
        let p = &self.params;
        let ts = &mut self.threads[thread.index()];
        let tid = thread.raw() as u64;

        // Pending migratory store takes priority: RMW pairs stay adjacent.
        if let Some(line) = ts.migratory_pending.take() {
            return TraceRecord::new(thread, MemOp::Store, line_to_addr(line, p.line_bytes));
        }

        let u = ts.rng.gen_f64();
        let mix = p.mix;
        let (line, op) = if u < mix.private {
            let d = ts.rng.gen_stack_distance(p.private_lines, p.private_theta);
            let line = (REGION_PRIVATE << REGION_SHIFT) | (tid << THREAD_SHIFT) | d;
            let op = store_if(&mut ts.rng, p.private_store_frac);
            (line, op)
        } else if u < mix.private + mix.bounce {
            let d = ts.rng.gen_stack_distance(p.bounce_lines, p.bounce_theta);
            let groups = (p.threads / p.bounce_group_threads).max(1) as u64;
            let own = tid / p.bounce_group_threads as u64;
            let group = if groups > 1 && ts.rng.gen_bool(p.bounce_cross_frac) {
                // Cross-partition access: any group but our own.
                let g = ts.rng.gen_range(groups - 1);
                if g >= own {
                    g + 1
                } else {
                    g
                }
            } else {
                own
            };
            let line = (REGION_BOUNCE << REGION_SHIFT) | (group << THREAD_SHIFT) | d;
            let op = store_if(&mut ts.rng, p.bounce_store_frac);
            (line, op)
        } else if u < mix.private + mix.bounce + mix.rotor {
            let d = ts.rotor_pos;
            ts.rotor_pos = (ts.rotor_pos + 1) % p.rotor_lines;
            let line = (REGION_ROTOR << REGION_SHIFT) | d;
            let op = store_if(&mut ts.rng, p.rotor_store_frac);
            (line, op)
        } else if u < mix.private + mix.bounce + mix.rotor + mix.shared {
            let d = ts.rng.gen_stack_distance(p.shared_lines, p.shared_theta);
            let line = (REGION_SHARED << REGION_SHIFT) | d;
            let op = store_if(&mut ts.rng, p.shared_store_frac);
            (line, op)
        } else if u < mix.private + mix.bounce + mix.rotor + mix.shared + mix.migratory {
            let d = ts.rng.gen_stack_distance(p.migratory_lines, 2.0);
            let line = (REGION_MIGRATORY << REGION_SHIFT) | d;
            if ts.rng.gen_bool(p.migratory_rmw_frac) {
                ts.migratory_pending = Some(line);
            }
            (line, MemOp::Load)
        } else {
            // Streaming: monotone, never reused.
            let line = (REGION_STREAM << REGION_SHIFT) | (tid << THREAD_SHIFT) | ts.stream_pos;
            ts.stream_pos = (ts.stream_pos + 1) & ((1 << THREAD_SHIFT) - 1);
            (line, MemOp::Load)
        };
        TraceRecord::new(thread, op, line_to_addr(line, p.line_bytes))
    }

    /// Materializes `n` records, round-robin across threads (useful for
    /// writing trace files; the simulator itself pulls per-thread).
    pub fn generate(&mut self, n: usize) -> Vec<TraceRecord> {
        let threads = self.params.threads;
        (0..n)
            .map(|i| self.next_record(ThreadId::new((i % threads as usize) as u16)))
            .collect()
    }
}

fn store_if(rng: &mut SplitMix64, frac: f64) -> MemOp {
    if rng.gen_bool(frac) {
        MemOp::Store
    } else {
        MemOp::Load
    }
}

fn line_to_addr(line: u64, line_bytes: u64) -> Addr {
    Addr::new(line * line_bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_params() -> WorkloadParams {
        WorkloadParams {
            name: "tiny".into(),
            line_bytes: 128,
            threads: 4,
            issue_interval: 1,
            mix: SegmentMix {
                private: 0.4,
                bounce: 0.2,
                rotor: 0.1,
                shared: 0.15,
                migratory: 0.1,
                streaming: 0.05,
            },
            private_lines: 64,
            private_theta: 3.0,
            private_store_frac: 0.25,
            bounce_lines: 256,
            bounce_group_threads: 4,
            bounce_cross_frac: 0.1,
            bounce_theta: 1.0,
            bounce_store_frac: 0.05,
            rotor_lines: 128,
            rotor_store_frac: 0.1,
            shared_lines: 64,
            shared_theta: 2.0,
            shared_store_frac: 0.02,
            migratory_lines: 32,
            migratory_rmw_frac: 0.5,
        }
    }

    #[test]
    fn deterministic_streams() {
        let mut a = SyntheticWorkload::new(tiny_params(), 7).unwrap();
        let mut b = SyntheticWorkload::new(tiny_params(), 7).unwrap();
        for i in 0..1000 {
            let t = ThreadId::new((i % 4) as u16);
            assert_eq!(a.next_record(t), b.next_record(t));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SyntheticWorkload::new(tiny_params(), 1).unwrap();
        let mut b = SyntheticWorkload::new(tiny_params(), 2).unwrap();
        let va: Vec<_> = (0..50).map(|_| a.next_record(ThreadId::new(0))).collect();
        let vb: Vec<_> = (0..50).map(|_| b.next_record(ThreadId::new(0))).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn addresses_line_aligned() {
        let mut w = SyntheticWorkload::new(tiny_params(), 3).unwrap();
        for _ in 0..500 {
            let r = w.next_record(ThreadId::new(1));
            assert_eq!(r.addr.raw() % 128, 0);
        }
    }

    #[test]
    fn private_regions_disjoint_across_threads() {
        let mut p = tiny_params();
        p.mix = SegmentMix {
            private: 1.0,
            bounce: 0.0,
            rotor: 0.0,
            shared: 0.0,
            migratory: 0.0,
            streaming: 0.0,
        };
        let mut w = SyntheticWorkload::new(p, 5).unwrap();
        let a: std::collections::HashSet<u64> = (0..200)
            .map(|_| w.next_record(ThreadId::new(0)).addr.raw())
            .collect();
        let b: std::collections::HashSet<u64> = (0..200)
            .map(|_| w.next_record(ThreadId::new(1)).addr.raw())
            .collect();
        assert!(a.is_disjoint(&b));
    }

    #[test]
    fn migratory_rmw_pairs_adjacent() {
        let mut p = tiny_params();
        p.mix = SegmentMix {
            private: 0.0,
            bounce: 0.0,
            rotor: 0.0,
            shared: 0.0,
            migratory: 1.0,
            streaming: 0.0,
        };
        p.migratory_rmw_frac = 1.0;
        let mut w = SyntheticWorkload::new(p, 9).unwrap();
        for _ in 0..100 {
            let load = w.next_record(ThreadId::new(0));
            let store = w.next_record(ThreadId::new(0));
            assert_eq!(load.op, MemOp::Load);
            assert_eq!(store.op, MemOp::Store);
            assert_eq!(load.addr, store.addr);
        }
    }

    #[test]
    fn streaming_never_repeats_within_window() {
        let mut p = tiny_params();
        p.mix = SegmentMix {
            private: 0.0,
            bounce: 0.0,
            rotor: 0.0,
            shared: 0.0,
            migratory: 0.0,
            streaming: 1.0,
        };
        let mut w = SyntheticWorkload::new(p, 11).unwrap();
        let addrs: Vec<u64> = (0..1000)
            .map(|_| w.next_record(ThreadId::new(0)).addr.raw())
            .collect();
        let set: std::collections::HashSet<_> = addrs.iter().collect();
        assert_eq!(set.len(), addrs.len());
    }

    #[test]
    fn store_fraction_respected() {
        let mut p = tiny_params();
        p.mix = SegmentMix {
            private: 1.0,
            bounce: 0.0,
            rotor: 0.0,
            shared: 0.0,
            migratory: 0.0,
            streaming: 0.0,
        };
        p.private_store_frac = 0.3;
        let mut w = SyntheticWorkload::new(p, 13).unwrap();
        let stores = (0..20_000)
            .filter(|_| w.next_record(ThreadId::new(0)).op.is_store())
            .count();
        assert!((5_000..7_000).contains(&stores), "stores = {stores}");
    }

    #[test]
    fn validation_catches_bad_mix() {
        let mut p = tiny_params();
        p.mix.private = 0.9;
        assert!(matches!(
            SyntheticWorkload::new(p, 0),
            Err(WorkloadError::BadMix(_))
        ));
    }

    #[test]
    fn validation_catches_empty_region() {
        let mut p = tiny_params();
        p.bounce_lines = 0;
        assert!(matches!(
            SyntheticWorkload::new(p, 0),
            Err(WorkloadError::EmptyRegion("bounce"))
        ));
    }

    #[test]
    fn validation_catches_zero_threads() {
        let mut p = tiny_params();
        p.threads = 0;
        assert!(matches!(
            SyntheticWorkload::new(p, 0),
            Err(WorkloadError::NoThreads)
        ));
    }

    #[test]
    fn generate_round_robins() {
        let mut w = SyntheticWorkload::new(tiny_params(), 21).unwrap();
        let recs = w.generate(8);
        for (i, r) in recs.iter().enumerate() {
            assert_eq!(r.thread.index(), i % 4);
        }
    }
}
