//! Compact binary trace file format.
//!
//! Layout (little-endian):
//!
//! ```text
//! magic   [u8; 8]  = b"CMPTRC01"
//! count   u64      number of records
//! records count × { thread: u16, op: u8 (0=load, 1=store), addr: u64 }
//! ```
//!
//! The format is deliberately simple: traces are large, sequential, and
//! only read by this simulator.

use std::error::Error;
use std::fmt;
use std::io::{self, Read, Write};

use cmpsim_cache::Addr;

use crate::{MemOp, ThreadId, TraceRecord};

const MAGIC: [u8; 8] = *b"CMPTRC01";

/// Errors from reading a trace file.
#[derive(Debug)]
pub enum TraceFileError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The stream does not start with the trace magic.
    BadMagic,
    /// A record contained an invalid operation byte.
    BadOp(u8),
    /// The stream ended before `count` records were read.
    Truncated {
        /// Records expected per the header.
        expected: u64,
        /// Records actually decoded.
        got: u64,
    },
}

impl fmt::Display for TraceFileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceFileError::Io(e) => write!(f, "i/o error: {e}"),
            TraceFileError::BadMagic => f.write_str("not a CMPTRC01 trace file"),
            TraceFileError::BadOp(b) => write!(f, "invalid op byte {b:#x}"),
            TraceFileError::Truncated { expected, got } => {
                write!(f, "trace truncated: expected {expected} records, got {got}")
            }
        }
    }
}

impl Error for TraceFileError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TraceFileError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for TraceFileError {
    fn from(e: io::Error) -> Self {
        TraceFileError::Io(e)
    }
}

/// Writes a trace to `w`.
///
/// A `&mut` writer can be passed as well, since `Write` is implemented
/// for mutable references.
///
/// # Errors
///
/// Propagates underlying I/O errors.
///
/// # Example
///
/// ```
/// use cmpsim_trace::{file, TraceRecord, ThreadId, MemOp};
/// use cmpsim_cache::Addr;
///
/// let recs = vec![TraceRecord::new(ThreadId::new(0), MemOp::Load, Addr::new(64))];
/// let mut buf = Vec::new();
/// file::write_trace(&mut buf, &recs)?;
/// let back = file::read_trace(&buf[..])?;
/// assert_eq!(back, recs);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn write_trace<W: Write>(mut w: W, records: &[TraceRecord]) -> io::Result<()> {
    w.write_all(&MAGIC)?;
    w.write_all(&(records.len() as u64).to_le_bytes())?;
    let mut buf = Vec::with_capacity(records.len().min(1 << 16) * 11);
    for r in records {
        buf.extend_from_slice(&r.thread.raw().to_le_bytes());
        buf.push(if r.op.is_store() { 1 } else { 0 });
        buf.extend_from_slice(&r.addr.raw().to_le_bytes());
        if buf.len() >= (1 << 20) {
            w.write_all(&buf)?;
            buf.clear();
        }
    }
    w.write_all(&buf)?;
    Ok(())
}

/// Reads a full trace from `r`.
///
/// # Errors
///
/// Returns [`TraceFileError`] on I/O failure, bad magic, invalid op
/// bytes, or truncation.
pub fn read_trace<R: Read>(mut r: R) -> Result<Vec<TraceRecord>, TraceFileError> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if magic != MAGIC {
        return Err(TraceFileError::BadMagic);
    }
    let mut count_bytes = [0u8; 8];
    r.read_exact(&mut count_bytes)?;
    let count = u64::from_le_bytes(count_bytes);
    let mut records = Vec::with_capacity(count.min(1 << 24) as usize);
    let mut rec = [0u8; 11];
    for i in 0..count {
        if let Err(e) = r.read_exact(&mut rec) {
            if e.kind() == io::ErrorKind::UnexpectedEof {
                return Err(TraceFileError::Truncated {
                    expected: count,
                    got: i,
                });
            }
            return Err(e.into());
        }
        let thread = u16::from_le_bytes([rec[0], rec[1]]);
        let op = match rec[2] {
            0 => MemOp::Load,
            1 => MemOp::Store,
            b => return Err(TraceFileError::BadOp(b)),
        };
        let addr = u64::from_le_bytes(rec[3..11].try_into().expect("8 bytes"));
        records.push(TraceRecord::new(ThreadId::new(thread), op, Addr::new(addr)));
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<TraceRecord> {
        (0..100)
            .map(|i| {
                TraceRecord::new(
                    ThreadId::new((i % 16) as u16),
                    if i % 3 == 0 {
                        MemOp::Store
                    } else {
                        MemOp::Load
                    },
                    Addr::new(i * 128),
                )
            })
            .collect()
    }

    #[test]
    fn roundtrip() {
        let recs = sample();
        let mut buf = Vec::new();
        write_trace(&mut buf, &recs).unwrap();
        let back = read_trace(&buf[..]).unwrap();
        assert_eq!(back, recs);
    }

    #[test]
    fn empty_trace_roundtrips() {
        let mut buf = Vec::new();
        write_trace(&mut buf, &[]).unwrap();
        assert_eq!(read_trace(&buf[..]).unwrap(), vec![]);
    }

    #[test]
    fn bad_magic_rejected() {
        let err = read_trace(&b"NOTATRACE-------"[..]).unwrap_err();
        assert!(matches!(err, TraceFileError::BadMagic));
    }

    #[test]
    fn truncation_detected() {
        let recs = sample();
        let mut buf = Vec::new();
        write_trace(&mut buf, &recs).unwrap();
        buf.truncate(buf.len() - 5);
        let err = read_trace(&buf[..]).unwrap_err();
        match err {
            TraceFileError::Truncated { expected, got } => {
                assert_eq!(expected, 100);
                assert_eq!(got, 99);
            }
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn bad_op_detected() {
        let recs = vec![TraceRecord::new(
            ThreadId::new(0),
            MemOp::Load,
            Addr::new(0),
        )];
        let mut buf = Vec::new();
        write_trace(&mut buf, &recs).unwrap();
        buf[18] = 7; // corrupt the op byte (8 magic + 8 count + 2 thread)
        let err = read_trace(&buf[..]).unwrap_err();
        assert!(matches!(err, TraceFileError::BadOp(7)));
    }

    #[test]
    fn error_messages_nonempty() {
        assert!(!TraceFileError::BadMagic.to_string().is_empty());
        assert!(!TraceFileError::BadOp(9).to_string().is_empty());
    }
}
