//! Per-workload parameter presets.
//!
//! Each preset dials the synthetic populations so the workload lands in
//! the paper's qualitative band (Tables 1, 2, 4):
//!
//! | Workload   | Key characteristics from the paper |
//! |------------|------------------------------------|
//! | TP         | 92 % CPU utilization, *low* L3 hit rate (32 %), very high L3 retry volume, highest local reuse of snarfed lines |
//! | CPW2       | ~70 % CPU utilization, ~50 % L3 hit rate, 60 % of clean WBs redundant, modest improvements |
//! | NotesBench | Very low memory pressure, 70 % L3 hit rate, WBHT almost never triggered |
//! | Trade2     | Heaviest WB traffic, 79 % of clean WBs redundant, lines re-referenced 300+ times, most WBHT-size-sensitive |

use crate::{SegmentMix, WorkloadParams};

/// Threads per bounce group: one group per core pair (4 threads in the
/// modelled 16-thread CMP), degrading gracefully for small test systems.
fn threads_per_group(threads: u16) -> u16 {
    (threads / 4).max(1)
}

/// Cache capacity scale used to size workload regions.
///
/// The synthetic populations are meaningful only *relative to* the cache
/// hierarchy (a "bounce set 3× the L3" thrashes any L3), so presets take
/// the capacities as input and the same workload definitions work for
/// the paper-sized hierarchy and for scaled-down test hierarchies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheScale {
    /// Total L2 lines across all L2 caches.
    pub l2_lines_total: u64,
    /// Total L3 lines.
    pub l3_lines_total: u64,
}

impl CacheScale {
    /// The paper's hierarchy: 4 L2 caches × 2 MB (4 × 512 KB slices) and
    /// a 16 MB L3, 128-byte lines.
    pub fn paper() -> Self {
        CacheScale {
            l2_lines_total: 4 * 2 * 1024 * 1024 / 128,
            l3_lines_total: 16 * 1024 * 1024 / 128,
        }
    }

    /// The paper hierarchy scaled down by `factor` (capacities divided,
    /// structure preserved).
    pub fn scaled(factor: u64) -> Self {
        let p = Self::paper();
        CacheScale {
            l2_lines_total: (p.l2_lines_total / factor).max(64),
            l3_lines_total: (p.l3_lines_total / factor).max(128),
        }
    }
}

/// The four commercial workloads of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Workload {
    /// Online transaction processing (TPC-C-like mix).
    Tp,
    /// Commercial Processing Workload 2 (OLTP database server at ~70 %
    /// CPU utilization).
    Cpw2,
    /// Lotus Domino mail-server benchmark.
    NotesBench,
    /// J2EE online-brokerage web application.
    Trade2,
}

impl Workload {
    /// All four workloads in the paper's table order.
    pub fn all() -> [Workload; 4] {
        [
            Workload::Cpw2,
            Workload::NotesBench,
            Workload::Tp,
            Workload::Trade2,
        ]
    }

    /// Canonical display name.
    pub fn name(self) -> &'static str {
        match self {
            Workload::Tp => "TP",
            Workload::Cpw2 => "CPW2",
            Workload::NotesBench => "NotesBench",
            Workload::Trade2 => "Trade2",
        }
    }

    /// Builds the workload's parameters for a given thread count and
    /// cache scale.
    pub fn params(self, threads: u16, scale: CacheScale) -> WorkloadParams {
        let l2_per_cache = scale.l2_lines_total / 4;
        let l3 = scale.l3_lines_total;
        match self {
            // TP: hot private set (high CPU utilization), bounce set 3x
            // the L3 (thrashes it -> ~32% hit rate), significant
            // migratory and shared traffic (dirty castouts pressure the
            // L3 queues -> huge retry volume; snarfed lines get reused).
            Workload::Tp => WorkloadParams {
                name: "TP".into(),
                line_bytes: 128,
                threads,
                issue_interval: 1,
                mix: SegmentMix {
                    private: 0.40,
                    bounce: 0.12,
                    rotor: 0.20,
                    shared: 0.12,
                    migratory: 0.12,
                    streaming: 0.04,
                },
                private_lines: (l2_per_cache / 8).max(16),
                private_theta: 3.2,
                private_store_frac: 0.22,
                bounce_lines: (l3 * 3 / 4).max(64),
                bounce_group_threads: threads_per_group(threads),
                bounce_cross_frac: 0.15,
                bounce_theta: 1.5,
                bounce_store_frac: 0.35,
                rotor_lines: l2_per_cache.max(32),
                rotor_store_frac: 0.50,
                shared_lines: (l2_per_cache / 2).max(16),
                shared_theta: 2.0,
                shared_store_frac: 0.04,
                migratory_lines: (l2_per_cache / 8).max(16),
                migratory_rmw_frac: 0.6,
            },
            // CPW2: moderate everything; bounce set comparable to the L3
            // (-> ~50% hit rate, 60% redundant clean write-backs).
            Workload::Cpw2 => WorkloadParams {
                name: "CPW2".into(),
                line_bytes: 128,
                threads,
                issue_interval: 3,
                mix: SegmentMix {
                    private: 0.64,
                    bounce: 0.15,
                    rotor: 0.04,
                    shared: 0.08,
                    migratory: 0.04,
                    streaming: 0.05,
                },
                private_lines: (l2_per_cache / 8).max(16),
                private_theta: 3.0,
                private_store_frac: 0.15,
                bounce_lines: (l3 * 30 / 100).max(64),
                bounce_group_threads: threads_per_group(threads),
                bounce_cross_frac: 0.20,
                bounce_theta: 2.0,
                bounce_store_frac: 0.04,
                rotor_lines: l2_per_cache.max(32),
                rotor_store_frac: 0.06,
                shared_lines: (l2_per_cache / 2).max(16),
                shared_theta: 2.0,
                shared_store_frac: 0.03,
                migratory_lines: (l2_per_cache / 8).max(16),
                migratory_rmw_frac: 0.5,
            },
            // NotesBench: dominated by the private working set (very low
            // memory pressure); small bounce set well inside the L3
            // (70% hit rate); little store traffic.
            Workload::NotesBench => WorkloadParams {
                name: "NotesBench".into(),
                line_bytes: 128,
                threads,
                issue_interval: 24,
                mix: SegmentMix {
                    private: 0.905,
                    bounce: 0.055,
                    rotor: 0.01,
                    shared: 0.015,
                    migratory: 0.005,
                    streaming: 0.01,
                },
                private_lines: (l2_per_cache / 16).max(16),
                private_theta: 3.5,
                private_store_frac: 0.10,
                bounce_lines: (l3 / 8).max(64),
                bounce_group_threads: threads_per_group(threads),
                bounce_cross_frac: 0.20,
                bounce_theta: 1.5,
                bounce_store_frac: 0.03,
                rotor_lines: l2_per_cache.max(32),
                rotor_store_frac: 0.04,
                shared_lines: (l2_per_cache / 4).max(16),
                shared_theta: 2.2,
                shared_store_frac: 0.02,
                migratory_lines: (l2_per_cache / 8).max(16),
                migratory_rmw_frac: 0.5,
            },
            // Trade2: the heaviest write-back traffic; bounce set ~60% of
            // the L3 with a skew that re-references hot lines hundreds of
            // times (79% redundant clean write-backs, 79% L3 hit rate,
            // strongest WBHT-size sensitivity).
            Workload::Trade2 => WorkloadParams {
                name: "Trade2".into(),
                line_bytes: 128,
                threads,
                issue_interval: 1,
                mix: SegmentMix {
                    private: 0.36,
                    bounce: 0.34,
                    rotor: 0.12,
                    shared: 0.08,
                    migratory: 0.04,
                    streaming: 0.06,
                },
                private_lines: (l2_per_cache / 8).max(16),
                private_theta: 2.8,
                private_store_frac: 0.20,
                bounce_lines: (l3 / 8).max(64),
                bounce_group_threads: threads_per_group(threads),
                bounce_cross_frac: 0.25,
                bounce_theta: 1.9,
                bounce_store_frac: 0.05,
                rotor_lines: l2_per_cache.max(32),
                rotor_store_frac: 0.06,
                shared_lines: (l2_per_cache / 2).max(16),
                shared_theta: 2.0,
                shared_store_frac: 0.03,
                migratory_lines: (l2_per_cache / 8).max(16),
                migratory_rmw_frac: 0.5,
            },
        }
    }
}

impl std::fmt::Display for Workload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SyntheticWorkload;

    #[test]
    fn all_presets_validate() {
        for w in Workload::all() {
            for factor in [1, 8, 64] {
                let p = w.params(16, CacheScale::scaled(factor));
                assert!(
                    SyntheticWorkload::new(p, 0).is_ok(),
                    "{w} at scale {factor} invalid"
                );
            }
        }
    }

    #[test]
    fn paper_scale_sizes() {
        let s = CacheScale::paper();
        assert_eq!(s.l2_lines_total, 65536); // 8 MB of 128 B lines
        assert_eq!(s.l3_lines_total, 131072); // 16 MB
    }

    #[test]
    fn scaled_preserves_ratio() {
        let s = CacheScale::scaled(8);
        assert_eq!(s.l2_lines_total, 8192);
        assert_eq!(s.l3_lines_total, 16384);
    }

    #[test]
    fn tp_thrashes_l3_trade2_fits() {
        let s = CacheScale::paper();
        let tp = Workload::Tp.params(16, s);
        let t2 = Workload::Trade2.params(16, s);
        // Aggregate bounce footprint = per-group region x groups.
        let groups = |p: &crate::WorkloadParams| 16 / p.bounce_group_threads as u64;
        assert!(tp.bounce_lines * groups(&tp) > s.l3_lines_total * 2);
        assert!(t2.bounce_lines * groups(&t2) < s.l3_lines_total);
    }

    #[test]
    fn names_match_paper() {
        assert_eq!(Workload::Tp.name(), "TP");
        assert_eq!(Workload::Cpw2.to_string(), "CPW2");
        assert_eq!(Workload::NotesBench.name(), "NotesBench");
        assert_eq!(Workload::Trade2.name(), "Trade2");
    }

    #[test]
    fn notesbench_is_private_dominated() {
        let p = Workload::NotesBench.params(16, CacheScale::paper());
        assert!(p.mix.private > 0.6);
    }
}
