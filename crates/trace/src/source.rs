//! Reference sources: where the simulator's memory references come from.

use std::collections::VecDeque;

use crate::{SyntheticWorkload, ThreadId, TraceRecord};

/// A per-thread supplier of memory references.
///
/// The simulator pulls references on demand, one thread at a time; a
/// source must always produce a record (sources backed by finite traces
/// wrap around). Implemented by [`SyntheticWorkload`] (the calibrated
/// commercial-workload models) and [`TracePlayback`] (recorded traces,
/// as in the paper's methodology: "we feed the traces into the Mambo
/// cache hierarchy simulator").
pub trait ReferenceSource: std::fmt::Debug {
    /// Produces the next reference for `thread`.
    fn next_record(&mut self, thread: ThreadId) -> TraceRecord;

    /// Cycles between successive references of one thread (models CPU
    /// utilization; 1 = fully issue-bound).
    fn issue_interval(&self) -> u64;

    /// Workload name for reports.
    fn name(&self) -> &str;
}

impl ReferenceSource for SyntheticWorkload {
    fn next_record(&mut self, thread: ThreadId) -> TraceRecord {
        SyntheticWorkload::next_record(self, thread)
    }

    fn issue_interval(&self) -> u64 {
        self.params().issue_interval
    }

    fn name(&self) -> &str {
        &self.params().name
    }
}

/// Replays a recorded trace, partitioned per thread, wrapping around
/// when a thread's stream is exhausted.
///
/// # Example
///
/// ```
/// use cmpsim_trace::{TracePlayback, TraceRecord, ThreadId, MemOp, ReferenceSource};
/// use cmpsim_cache::Addr;
///
/// let recs = vec![
///     TraceRecord::new(ThreadId::new(0), MemOp::Load, Addr::new(0)),
///     TraceRecord::new(ThreadId::new(0), MemOp::Store, Addr::new(128)),
/// ];
/// let mut p = TracePlayback::new("demo", recs, 1, 1);
/// assert_eq!(p.next_record(ThreadId::new(0)).addr.raw(), 0);
/// assert_eq!(p.next_record(ThreadId::new(0)).addr.raw(), 128);
/// assert_eq!(p.next_record(ThreadId::new(0)).addr.raw(), 0); // wrapped
/// ```
#[derive(Debug, Clone)]
pub struct TracePlayback {
    name: String,
    per_thread: Vec<VecDeque<TraceRecord>>,
    cursors: Vec<usize>,
    issue_interval: u64,
    wraps: u64,
}

impl TracePlayback {
    /// Builds a playback source from raw records.
    ///
    /// Records are partitioned by their thread id; threads with no
    /// records in the trace replay an idle load of address 0 (so the
    /// simulator's thread model stays uniform).
    ///
    /// # Panics
    ///
    /// Panics if `threads` or `issue_interval` is zero.
    pub fn new(
        name: impl Into<String>,
        records: Vec<TraceRecord>,
        threads: u16,
        issue_interval: u64,
    ) -> Self {
        assert!(threads > 0, "playback needs at least one thread");
        assert!(issue_interval > 0, "issue interval must be nonzero");
        let mut per_thread: Vec<VecDeque<TraceRecord>> =
            (0..threads).map(|_| VecDeque::new()).collect();
        for r in records {
            if (r.thread.index()) < per_thread.len() {
                per_thread[r.thread.index()].push_back(r);
            }
        }
        TracePlayback {
            name: name.into(),
            cursors: vec![0; per_thread.len()],
            per_thread,
            issue_interval,
            wraps: 0,
        }
    }

    /// How many times any thread's stream wrapped around.
    pub fn wraps(&self) -> u64 {
        self.wraps
    }
}

impl ReferenceSource for TracePlayback {
    fn next_record(&mut self, thread: ThreadId) -> TraceRecord {
        let t = thread.index();
        let q = &self.per_thread[t];
        if q.is_empty() {
            // Idle thread: spin on a private line.
            return TraceRecord::new(thread, crate::MemOp::Load, cmpsim_cache::Addr::new(0));
        }
        let idx = self.cursors[t];
        let rec = q[idx];
        self.cursors[t] = (idx + 1) % q.len();
        if self.cursors[t] == 0 {
            self.wraps += 1;
        }
        rec
    }

    fn issue_interval(&self) -> u64 {
        self.issue_interval
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemOp;
    use cmpsim_cache::Addr;

    fn rec(t: u16, addr: u64) -> TraceRecord {
        TraceRecord::new(ThreadId::new(t), MemOp::Load, Addr::new(addr))
    }

    #[test]
    fn partitions_by_thread() {
        let mut p = TracePlayback::new("t", vec![rec(0, 0), rec(1, 128), rec(0, 256)], 2, 1);
        assert_eq!(p.next_record(ThreadId::new(1)).addr.raw(), 128);
        assert_eq!(p.next_record(ThreadId::new(0)).addr.raw(), 0);
        assert_eq!(p.next_record(ThreadId::new(0)).addr.raw(), 256);
    }

    #[test]
    fn wraps_and_counts() {
        let mut p = TracePlayback::new("t", vec![rec(0, 0), rec(0, 128)], 1, 1);
        for _ in 0..5 {
            p.next_record(ThreadId::new(0));
        }
        assert_eq!(p.wraps(), 2);
    }

    #[test]
    fn idle_threads_spin() {
        let mut p = TracePlayback::new("t", vec![rec(0, 0)], 4, 2);
        let r = p.next_record(ThreadId::new(3));
        assert_eq!(r.addr.raw(), 0);
        assert!(!r.op.is_store());
        assert_eq!(p.issue_interval(), 2);
        assert_eq!(p.name(), "t");
    }

    #[test]
    fn synthetic_implements_source() {
        use crate::{CacheScale, Workload};
        let params = Workload::Cpw2.params(16, CacheScale::scaled(16));
        let interval = params.issue_interval;
        let mut w = SyntheticWorkload::new(params, 1).unwrap();
        let src: &mut dyn ReferenceSource = &mut w;
        assert_eq!(src.issue_interval(), interval);
        assert_eq!(src.name(), "CPW2");
        let _ = src.next_record(ThreadId::new(0));
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_panics() {
        let _ = TracePlayback::new("t", vec![], 0, 1);
    }
}
