//! Offline trace analysis: the statistics that predict cache behaviour.
//!
//! These tools quantify the properties the synthetic workloads are
//! calibrated to reproduce — LRU reuse distances (hit rates at any
//! cache size fall out directly), footprints, sharing degree, and
//! write-back re-reference counts (the paper notes Trade2 lines are
//! "written back and then re-referenced more than 300 times").

use std::collections::HashMap;

use crate::TraceRecord;

/// LRU reuse-distance histogram over a reference stream.
///
/// The reuse distance of an access is the number of *distinct* lines
/// touched since the previous access to the same line (∞ for first
/// touches). A fully-associative LRU cache of `C` lines hits exactly
/// the accesses with distance < `C`, so the histogram predicts hit
/// rates at every capacity at once.
///
/// This implementation uses the classic O(N·M) stack simulation (M =
/// footprint), which is fine for the trace sizes the tools handle.
///
/// # Example
///
/// ```
/// use cmpsim_trace::{analysis::ReuseDistances, TraceRecord, ThreadId, MemOp};
/// use cmpsim_cache::Addr;
///
/// let r = |a: u64| TraceRecord::new(ThreadId::new(0), MemOp::Load, Addr::new(a * 128));
/// let trace = vec![r(1), r(2), r(1)]; // line 1 reused at distance 1
/// let rd = ReuseDistances::from_records(&trace, 128);
/// assert_eq!(rd.cold_misses(), 2);
/// assert!((rd.hit_rate_at(2) - 1.0 / 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct ReuseDistances {
    /// `histogram[d]` = number of accesses with reuse distance `d`
    /// (log2-bucketed: bucket `i` covers `[2^i, 2^(i+1))`, bucket 0 is
    /// distance 0).
    buckets: Vec<u64>,
    cold: u64,
    total: u64,
}

impl ReuseDistances {
    /// Computes reuse distances for a record stream at the given line
    /// size.
    pub fn from_records(records: &[TraceRecord], line_bytes: u64) -> Self {
        let mut stack: Vec<u64> = Vec::new();
        let mut buckets = vec![0u64; 40];
        let mut cold = 0u64;
        for r in records {
            let line = r.addr.line(line_bytes).raw();
            match stack.iter().rposition(|&l| l == line) {
                Some(pos) => {
                    let distance = stack.len() - 1 - pos;
                    let b = if distance == 0 {
                        0
                    } else {
                        64 - (distance as u64).leading_zeros() as usize
                    };
                    buckets[b.min(39)] += 1;
                    stack.remove(pos);
                    stack.push(line);
                }
                None => {
                    cold += 1;
                    stack.push(line);
                }
            }
        }
        ReuseDistances {
            buckets,
            cold,
            total: records.len() as u64,
        }
    }

    /// Accesses that touched a line for the first time.
    pub fn cold_misses(&self) -> u64 {
        self.cold
    }

    /// Total accesses analysed.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Predicted hit rate of a fully-associative LRU cache with
    /// `capacity_lines` lines.
    pub fn hit_rate_at(&self, capacity_lines: u64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let mut hits = 0u64;
        for (i, &count) in self.buckets.iter().enumerate() {
            let bucket_floor: u64 = if i == 0 { 0 } else { 1 << (i - 1) };
            if bucket_floor < capacity_lines {
                hits += count;
            }
        }
        hits as f64 / self.total as f64
    }

    /// The log2 histogram buckets (`buckets()[i]` covers distances
    /// `[2^(i-1), 2^i)`; bucket 0 is distance 0).
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }
}

/// Aggregate footprint and sharing statistics of a trace.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceProfile {
    /// Total records.
    pub records: u64,
    /// Store fraction ×1000 (integer to stay `Eq`; divide by 10 for %).
    pub store_permille: u64,
    /// Distinct lines touched.
    pub footprint_lines: u64,
    /// Lines touched by more than one thread.
    pub shared_lines: u64,
    /// Lines touched by threads of more than one L2 cache (4 threads
    /// per L2 in the modelled CMP).
    pub cross_l2_lines: u64,
    /// Maximum times any single line was touched.
    pub max_line_touches: u64,
}

/// Profiles a record stream: footprint, sharing, store mix.
///
/// `threads_per_l2` maps threads onto L2 caches for the cross-L2
/// sharing statistic (4 in the modelled CMP).
pub fn profile(records: &[TraceRecord], line_bytes: u64, threads_per_l2: u16) -> TraceProfile {
    #[derive(Default)]
    struct LineInfo {
        touches: u64,
        threads: u32, // bitmask over first 32 thread ids
        l2s: u8,      // bitmask over first 8 L2s
    }
    let mut lines: HashMap<u64, LineInfo> = HashMap::new();
    let mut stores = 0u64;
    for r in records {
        if r.op.is_store() {
            stores += 1;
        }
        let e = lines.entry(r.addr.line(line_bytes).raw()).or_default();
        e.touches += 1;
        if r.thread.index() < 32 {
            e.threads |= 1 << r.thread.index();
        }
        let l2 = r.thread.index() / threads_per_l2.max(1) as usize;
        if l2 < 8 {
            e.l2s |= 1 << l2;
        }
    }
    TraceProfile {
        records: records.len() as u64,
        store_permille: if records.is_empty() {
            0
        } else {
            stores * 1000 / records.len() as u64
        },
        footprint_lines: lines.len() as u64,
        shared_lines: lines
            .values()
            .filter(|i| i.threads.count_ones() > 1)
            .count() as u64,
        cross_l2_lines: lines.values().filter(|i| i.l2s.count_ones() > 1).count() as u64,
        max_line_touches: lines.values().map(|i| i.touches).max().unwrap_or(0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MemOp, ThreadId};
    use cmpsim_cache::Addr;

    fn r(t: u16, line: u64, store: bool) -> TraceRecord {
        TraceRecord::new(
            ThreadId::new(t),
            if store { MemOp::Store } else { MemOp::Load },
            Addr::new(line * 128),
        )
    }

    #[test]
    fn reuse_distance_basics() {
        // Stream: 1 2 3 1 -> line 1 reused at distance 2.
        let trace = vec![
            r(0, 1, false),
            r(0, 2, false),
            r(0, 3, false),
            r(0, 1, false),
        ];
        let rd = ReuseDistances::from_records(&trace, 128);
        assert_eq!(rd.cold_misses(), 3);
        assert_eq!(rd.total(), 4);
        // Capacity 1 or 2: the reuse at distance 2 misses.
        assert!((rd.hit_rate_at(2) - 0.0).abs() < 1e-12);
        // Capacity 4: it hits.
        assert!((rd.hit_rate_at(4) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn immediate_reuse_is_distance_zero() {
        let trace = vec![r(0, 5, false), r(0, 5, false), r(0, 5, false)];
        let rd = ReuseDistances::from_records(&trace, 128);
        assert_eq!(rd.cold_misses(), 1);
        assert_eq!(rd.buckets()[0], 2);
        assert!((rd.hit_rate_at(1) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn hit_rate_monotone_in_capacity() {
        let mut trace = Vec::new();
        for i in 0..200u64 {
            trace.push(r(0, i % 37, i % 3 == 0));
        }
        let rd = ReuseDistances::from_records(&trace, 128);
        let mut prev = 0.0;
        for cap in [1u64, 2, 4, 8, 16, 32, 64] {
            let h = rd.hit_rate_at(cap);
            assert!(h >= prev, "hit rate not monotone at {cap}");
            prev = h;
        }
        // Capacity >= footprint: everything but cold misses hits.
        let warm = (rd.total() - rd.cold_misses()) as f64 / rd.total() as f64;
        assert!((rd.hit_rate_at(64) - warm).abs() < 1e-12);
    }

    #[test]
    fn profile_counts_sharing() {
        let trace = vec![
            r(0, 1, false),
            r(1, 1, true),  // shared within L2#0 (threads 0-3)
            r(4, 2, false), // L2#1
            r(0, 2, false), // line 2 now cross-L2
            r(0, 3, false),
        ];
        let p = profile(&trace, 128, 4);
        assert_eq!(p.records, 5);
        assert_eq!(p.footprint_lines, 3);
        assert_eq!(p.shared_lines, 2); // lines 1 and 2
        assert_eq!(p.cross_l2_lines, 1); // line 2 only
        assert_eq!(p.store_permille, 200);
        assert_eq!(p.max_line_touches, 2);
    }

    #[test]
    fn empty_trace_profiles_cleanly() {
        let p = profile(&[], 128, 4);
        assert_eq!(p, TraceProfile::default());
        let rd = ReuseDistances::from_records(&[], 128);
        assert_eq!(rd.hit_rate_at(100), 0.0);
    }
}
