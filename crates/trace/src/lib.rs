//! Memory-reference traces and synthetic commercial workloads.
//!
//! The paper drives its simulator with "L2 cache traffic traces captured
//! on a real SMP machine running the full workloads" — four proprietary
//! IBM commercial workloads (TP, CPW2, NotesBench, Trade2). Those traces
//! are not available, so this crate provides **synthetic workload
//! generators** that reproduce the *statistical properties* the paper's
//! mechanisms respond to:
//!
//! * per-thread private working sets with strong temporal locality,
//! * a chip-wide cyclically-scanned "bounce" set sized relative to the
//!   L2/L3 capacities — this is what produces lines that are repeatedly
//!   evicted from the L2, written back, and missed on again (the
//!   redundant-clean-write-back population of Table 1 and the write-back
//!   reuse of Table 2),
//! * read-mostly shared data (intervention traffic, `Shared` lines that
//!   the snarf mechanism victimizes),
//! * migratory read-modify-write data (dirty interventions, upgrades),
//! * and streaming data (cold misses to memory).
//!
//! Each of the four [`Workload`] presets dials these populations to land in the
//! paper's qualitative band for that workload (see `EXPERIMENTS.md`).
//!
//! The crate also defines the [`TraceRecord`] currency and a compact
//! binary [`mod@file`] format for storing and replaying traces.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod analysis;
pub mod file;
mod presets;
mod record;
mod sharded;
mod source;
mod synth;

pub use presets::{CacheScale, Workload};
pub use record::{MemOp, ThreadId, TraceRecord};
pub use sharded::ShardedWorkload;
pub use source::{ReferenceSource, TracePlayback};
pub use synth::{SegmentMix, SyntheticWorkload, WorkloadError, WorkloadParams};
