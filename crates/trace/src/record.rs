//! Trace records: the unit of workload input.

use std::fmt;

use cmpsim_cache::Addr;

/// A hardware thread identifier (the modelled CMP has 16: 8 cores × 2
/// SMT threads).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ThreadId(u16);

impl ThreadId {
    /// Creates a thread id.
    pub const fn new(raw: u16) -> Self {
        ThreadId(raw)
    }

    /// Raw index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Raw value.
    pub const fn raw(self) -> u16 {
        self.0
    }

    /// All thread ids in a system with `count` threads.
    pub fn all(count: u16) -> impl Iterator<Item = ThreadId> {
        (0..count).map(ThreadId)
    }
}

impl fmt::Display for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// A memory operation kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemOp {
    /// A load (read).
    Load,
    /// A store (write).
    Store,
}

impl MemOp {
    /// Is this a store?
    pub fn is_store(self) -> bool {
        matches!(self, MemOp::Store)
    }
}

impl fmt::Display for MemOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            MemOp::Load => "ld",
            MemOp::Store => "st",
        })
    }
}

/// One memory reference in a trace.
///
/// # Example
///
/// ```
/// use cmpsim_trace::{TraceRecord, ThreadId, MemOp};
/// use cmpsim_cache::Addr;
///
/// let r = TraceRecord::new(ThreadId::new(3), MemOp::Load, Addr::new(0x1000));
/// assert_eq!(r.thread.index(), 3);
/// assert!(!r.op.is_store());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Issuing hardware thread.
    pub thread: ThreadId,
    /// Operation kind.
    pub op: MemOp,
    /// Referenced byte address.
    pub addr: Addr,
}

impl TraceRecord {
    /// Creates a record.
    pub fn new(thread: ThreadId, op: MemOp, addr: Addr) -> Self {
        TraceRecord { thread, op, addr }
    }
}

impl fmt::Display for TraceRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.thread, self.op, self.addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_ids() {
        let ts: Vec<_> = ThreadId::all(3).collect();
        assert_eq!(ts.len(), 3);
        assert_eq!(ts[2].index(), 2);
        assert_eq!(ts[2].raw(), 2);
    }

    #[test]
    fn op_classification() {
        assert!(MemOp::Store.is_store());
        assert!(!MemOp::Load.is_store());
    }

    #[test]
    fn record_display() {
        let r = TraceRecord::new(ThreadId::new(1), MemOp::Store, Addr::new(0x80));
        assert_eq!(r.to_string(), "t1 st 0x80");
    }
}
