//! Adaptive write-back mechanisms for CMP cache hierarchies.
//!
//! This crate is the primary contribution of the reproduced paper —
//! *"Adaptive Mechanisms and Policies for Managing Cache Hierarchies in
//! Chip Multiprocessors"* (Speight, Shafi, Zhang, Rajamony, ISCA 2005) —
//! together with the full CMP system model it is evaluated on:
//!
//! * [`policy`] — the **Write-Back History Table** (WBHT, §2) with its
//!   retry-rate on/off switch and local/global update scopes, and the
//!   **L2-to-L2 snarf mechanism** (§3) with its reuse table;
//! * [`system`] — the modelled CMP of Figure 1: 8 two-way-SMT cores,
//!   private L1s, four sliced L2 caches on a bidirectional intrachip
//!   ring, an off-chip L3 victim cache, and a memory controller;
//! * [`SystemConfig`] — Table 3's parameters (and scaled-down variants);
//! * [`run`] / [`RunSpec`] / [`RunReport`] — one-call simulation runs.
//!
//! # Quickstart
//!
//! ```
//! use cmp_adaptive_wb::{run, RunSpec, SystemConfig, PolicyConfig, WbhtConfig};
//! use cmpsim_trace::Workload;
//!
//! // Baseline vs WBHT on a scaled-down Trade2-like workload.
//! let mut cfg = SystemConfig::scaled(16);
//! cfg.max_outstanding = 6;
//! let base = run(RunSpec::for_workload(cfg.clone(), Workload::Trade2, 2_000))?;
//!
//! cfg.policy = PolicyConfig::wbht(WbhtConfig { entries: 4096, ..Default::default() });
//! let wbht = run(RunSpec::for_workload(cfg, Workload::Trade2, 2_000))?;
//!
//! println!("improvement: {:.1}%", wbht.improvement_over(&base));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

mod config;
pub mod policy;
mod runner;
pub mod system;

pub use config::{L1Config, L3Organization, SystemConfig};
pub use policy::{
    HybridConfig, PolicyConfig, RdcbConfig, RetrySwitchConfig, SnarfConfig, UpdateScope, WbhtConfig,
};
pub use runner::{run, RunReport, RunSpec};
pub use system::{
    chrome_decision_events, DecisionAudit, DecisionAuditSummary, InvariantViolation,
    L2DecisionStats, System, SystemError, SystemStats,
};
