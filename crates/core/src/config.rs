//! Whole-system configuration.

use cmpsim_cache::GeometryError;
use cmpsim_coherence::L2Id;
use cmpsim_engine::Cycle;
use cmpsim_mem::{L3Config, MemoryConfig};
use cmpsim_ring::RingConfig;
use cmpsim_trace::ThreadId;

use crate::policy::{PolicyConfig, RetrySwitchConfig};

// The paper geometries are static, so check them against the packed tag
// word at compile time (3 L2 state bits, 1 L3 state bit, tag-only /
// use-bit history tables); a state enum growing past its bit budget
// fails the build here instead of at first construction. Dynamically
// scaled geometries (--scale, --entries) are covered by the runtime
// check in `PackedTagArray::try_new`.
const _: () = {
    use cmpsim_cache::packed_fits;
    assert!(packed_fits(3, 512 * 1024 / 128 / 8)); // L2 slice · L2State
    assert!(packed_fits(1, 4 * 1024 * 1024 / 128 / 16)); // L3 slice · L3State
    assert!(packed_fits(0, 32 * 1024 / 16)); // WBHT (tag-only)
    assert!(packed_fits(1, 32 * 1024 / 16)); // snarf table (use bit)
    assert!(packed_fits(3, 16 * 1024 / 128 / 8)); // smallest --scale L2 slice
    assert!(packed_fits(0, 4 * 1024 / 128 / 4)); // smallest --scale L1
};

/// How the L3 level is organized (§7: "we are investigating alternate
/// L3 organizations and policies, including having separate buses for
/// chip-private L3 caches and memory, similar to the POWER 5
/// architecture").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum L3Organization {
    /// The paper's evaluated design: one shared victim cache on the
    /// snooped ring, absorbing castouts from every L2.
    #[default]
    SharedVictim,
    /// POWER5-style: each L2 owns a private L3 slice of the same total
    /// capacity, reached over a dedicated bus. Castouts go only to the
    /// owner's L3 (no ring address phase, no snoops); a private L3
    /// serves only its own L2's misses.
    PrivatePerL2,
}

/// L1 cache configuration (private per core, write-through).
///
/// The paper's Table 3 omits L1 parameters (its traces are L2 traffic);
/// these defaults are typical for the POWER generation modelled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct L1Config {
    /// Capacity in bytes.
    pub size_bytes: u64,
    /// Associativity.
    pub assoc: u64,
}

impl Default for L1Config {
    fn default() -> Self {
        L1Config {
            size_bytes: 32 * 1024,
            assoc: 4,
        }
    }
}

/// Full configuration of the modelled CMP (paper Figure 1 / Table 3).
#[derive(Debug, Clone)]
pub struct SystemConfig {
    /// Processor cores (paper: 8).
    pub cores: u8,
    /// SMT threads per core (paper: 2).
    pub threads_per_core: u8,
    /// L2 caches, each shared by a core pair (paper: 4).
    pub num_l2: u8,
    /// Cache line size in bytes (paper: 128).
    pub line_bytes: u64,
    /// Optional L1 filter caches (None disables the L1 level).
    pub l1: Option<L1Config>,
    /// Bytes per L2 slice (paper: 512 KB).
    pub l2_slice_bytes: u64,
    /// Slices per L2 (paper: 4).
    pub l2_slices: u64,
    /// L2 associativity (paper: 8).
    pub l2_assoc: u64,
    /// L2 load-to-use hit latency (paper: 20) — informational; hits do
    /// not stall the SMT thread model.
    pub l2_hit_cycles: Cycle,
    /// Cycles to detect an L2 miss before the bus request is issued.
    pub miss_detect_cycles: Cycle,
    /// L2 data-array access when sourcing an intervention.
    pub l2_array_cycles: Cycle,
    /// L2 snoop (tag lookup + response) latency.
    pub l2_snoop_cycles: Cycle,
    /// Snoop tag-port initiation interval (pipelined lookups).
    pub l2_snoop_occupancy: Cycle,
    /// MSHRs per L2.
    pub l2_mshrs: usize,
    /// Write-back queue entries per L2 (paper §2.1: 8).
    pub wbq_len: usize,
    /// Castout bus transactions one L2 may have in flight concurrently.
    pub castout_inflight_max: usize,
    /// Intrachip ring parameters.
    pub ring: RingConfig,
    /// L3 victim-cache parameters.
    pub l3: L3Config,
    /// L3 organization (shared victim cache vs POWER5-style private).
    pub l3_organization: L3Organization,
    /// One-way delay of the dedicated off-chip L3 pathway.
    pub l3_link_delay: Cycle,
    /// Concurrent transfers on the L3 pathway.
    pub l3_link_lanes: usize,
    /// Line-transfer occupancy on the L3 pathway.
    pub l3_link_occupancy: Cycle,
    /// Memory-controller parameters.
    pub mem: MemoryConfig,
    /// One-way delay of the dedicated memory pathway.
    pub mem_link_delay: Cycle,
    /// Concurrent transfers on the memory pathway.
    pub mem_link_lanes: usize,
    /// Line-transfer occupancy on the memory pathway.
    pub mem_link_occupancy: Cycle,
    /// Back-off before re-issuing a retried transaction.
    pub retry_backoff: Cycle,
    /// Maximum outstanding misses per thread (the paper's memory-pressure
    /// knob, swept 1–6 in Figures 2/3/5/7).
    pub max_outstanding: u32,
    /// Snarf-buffer entries per L2 (resource-conflict declines, §3).
    pub snarf_buffers: usize,
    /// How long a snarf buffer is held per absorbed line.
    pub snarf_buffer_hold: Cycle,
    /// References a thread processes inline per scheduling step
    /// (simulation granularity for hit bursts; misses always re-enter
    /// the event queue).
    pub thread_batch: usize,
    /// Write-back policy under evaluation.
    pub policy: PolicyConfig,
    /// Retry-rate switch parameters (paper §2.2: 2000 retries / 1M
    /// cycles). [`SystemConfig::scaled`] shrinks the observation window
    /// proportionally so short scaled runs still complete windows.
    pub retry_switch: RetrySwitchConfig,
    /// §7 future-work extension: cost-aware L2 replacement that, among
    /// the least-recently-used ways, prefers evicting clean lines the
    /// WBHT knows to be resident in the L3 (their write-back will be
    /// aborted and a re-fetch only pays the L3 latency). Has no effect
    /// without a WBHT policy.
    pub history_aware_replacement: bool,
    /// Random seed for the synthetic workload.
    pub seed: u64,
    /// Explicit seed salting the deterministic retry back-off jitter
    /// (see `System::retry_delay`). The jitter is a pure function of
    /// `(transaction id, attempt, this seed)`, so two runs of the same
    /// spec are byte-identical — the property the determinism tests and
    /// the parallel experiment grid rely on. The default of 0 preserves
    /// the historical jitter sequence (and the committed golden traces);
    /// set a different value to decorrelate retry storms across grid
    /// points without touching the workload seed.
    pub retry_jitter_seed: u64,
}

impl SystemConfig {
    /// The paper's Table 3 system.
    pub fn paper() -> Self {
        SystemConfig {
            cores: 8,
            threads_per_core: 2,
            num_l2: 4,
            line_bytes: 128,
            l1: Some(L1Config::default()),
            l2_slice_bytes: 512 * 1024,
            l2_slices: 4,
            l2_assoc: 8,
            l2_hit_cycles: 20,
            miss_detect_cycles: 16,
            l2_array_cycles: 12,
            l2_snoop_cycles: 8,
            l2_snoop_occupancy: 2,
            l2_mshrs: 32,
            wbq_len: 8,
            castout_inflight_max: 2,
            ring: RingConfig::default(),
            l3: L3Config::paper(),
            l3_organization: L3Organization::SharedVictim,
            l3_link_delay: 25,
            l3_link_lanes: 4,
            l3_link_occupancy: 16,
            mem: MemoryConfig::default(),
            mem_link_delay: 25,
            mem_link_lanes: 4,
            mem_link_occupancy: 16,
            retry_backoff: 64,
            max_outstanding: 6,
            snarf_buffers: 4,
            snarf_buffer_hold: 32,
            thread_batch: 32,
            policy: PolicyConfig::baseline(),
            retry_switch: RetrySwitchConfig::default(),
            history_aware_replacement: false,
            seed: 0x1BAD_B002,
            retry_jitter_seed: 0,
        }
    }

    /// The paper system with cache capacities divided by `factor`
    /// (structure and latencies preserved) — used by tests and the quick
    /// experiment profile so working sets stay proportionate.
    ///
    /// # Panics
    ///
    /// Panics if `factor` does not divide the capacities into valid
    /// power-of-two geometries.
    pub fn scaled(factor: u64) -> Self {
        let mut c = Self::paper();
        c.l2_slice_bytes = (512 * 1024 / factor).max(16 * 1024);
        c.l3 = L3Config::scaled(factor);
        if let Some(l1) = &mut c.l1 {
            l1.size_bytes = (l1.size_bytes / factor).max(4 * 1024);
        }
        c.retry_switch = RetrySwitchConfig::scaled(factor);
        c
    }

    /// The paper's machine scaled *out* to `cores` cores: structure and
    /// latencies are preserved (two SMT threads per core, one L2 per
    /// core pair, same per-L2 capacity), only the agent count grows.
    /// This is the >8-core topology axis the ring hierarchy invites —
    /// a 32- or 64-core chip puts proportionally more L2 agents on the
    /// snooped ring, which is exactly the configuration sharded
    /// execution (`--shards`) is meant to make affordable.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is not a positive multiple of 2 (an L2 serves
    /// a core pair).
    pub fn with_cores(cores: u8) -> Self {
        assert!(
            cores >= 2 && cores.is_multiple_of(2),
            "cores must be a positive multiple of 2 (one L2 per core pair), got {cores}"
        );
        let mut c = Self::paper();
        c.cores = cores;
        c.num_l2 = cores / 2;
        c
    }

    /// Total hardware threads.
    pub fn num_threads(&self) -> u16 {
        self.cores as u16 * self.threads_per_core as u16
    }

    /// The L2 cache serving a thread (each L2 is fed by a core pair, so
    /// by `threads_per_core * 2` threads — four in the paper system).
    pub fn l2_of_thread(&self, t: ThreadId) -> L2Id {
        let threads_per_l2 = self.num_threads() as usize / self.num_l2 as usize;
        L2Id::new((t.index() / threads_per_l2) as u8)
    }

    /// The core a thread runs on.
    pub fn core_of_thread(&self, t: ThreadId) -> usize {
        t.index() / self.threads_per_core as usize
    }

    /// Total L2 lines across all caches (for workload scaling).
    pub fn l2_lines_total(&self) -> u64 {
        self.num_l2 as u64 * self.l2_slices * self.l2_slice_bytes / self.line_bytes
    }

    /// Total L3 lines.
    pub fn l3_lines_total(&self) -> u64 {
        self.l3.geometry.total_bytes() / self.line_bytes
    }

    /// The cache scale exposed to workload presets.
    pub fn cache_scale(&self) -> cmpsim_trace::CacheScale {
        cmpsim_trace::CacheScale {
            l2_lines_total: self.l2_lines_total(),
            l3_lines_total: self.l3_lines_total(),
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`GeometryError`] when a cache geometry is invalid.
    pub fn validate(&self) -> Result<(), GeometryError> {
        cmpsim_cache::SlicedGeometry::new(
            self.l2_slices,
            self.l2_slice_bytes,
            self.l2_assoc,
            self.line_bytes,
        )?;
        if let Some(l1) = &self.l1 {
            cmpsim_cache::CacheGeometry::new(l1.size_bytes, l1.assoc, self.line_bytes)?;
        }
        Ok(())
    }
}

impl Default for SystemConfig {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_is_valid() {
        let c = SystemConfig::paper();
        assert!(c.validate().is_ok());
        assert_eq!(c.num_threads(), 16);
        assert_eq!(c.l2_lines_total(), 65536);
        assert_eq!(c.l3_lines_total(), 131072);
    }

    #[test]
    fn scaled_config_is_valid() {
        for f in [2, 4, 8, 16] {
            let c = SystemConfig::scaled(f);
            assert!(c.validate().is_ok(), "factor {f}");
        }
    }

    #[test]
    fn thread_to_l2_mapping() {
        let c = SystemConfig::paper();
        // Four threads per L2: t0-3 -> L2#0, t4-7 -> L2#1, ...
        assert_eq!(c.l2_of_thread(ThreadId::new(0)), L2Id::new(0));
        assert_eq!(c.l2_of_thread(ThreadId::new(3)), L2Id::new(0));
        assert_eq!(c.l2_of_thread(ThreadId::new(4)), L2Id::new(1));
        assert_eq!(c.l2_of_thread(ThreadId::new(15)), L2Id::new(3));
    }

    #[test]
    fn thread_to_core_mapping() {
        let c = SystemConfig::paper();
        assert_eq!(c.core_of_thread(ThreadId::new(0)), 0);
        assert_eq!(c.core_of_thread(ThreadId::new(1)), 0);
        assert_eq!(c.core_of_thread(ThreadId::new(2)), 1);
        assert_eq!(c.core_of_thread(ThreadId::new(15)), 7);
    }

    #[test]
    fn scaled_out_topologies_are_valid() {
        for cores in [2, 8, 16, 32, 64] {
            let c = SystemConfig::with_cores(cores);
            assert!(c.validate().is_ok(), "{cores} cores");
            assert_eq!(c.num_threads(), cores as u16 * 2);
            assert_eq!(c.num_l2, cores / 2);
            // Thread→L2 mapping stays a clean core-pair partition.
            let threads_per_l2 = c.num_threads() as usize / c.num_l2 as usize;
            assert_eq!(threads_per_l2, 4);
            assert_eq!(
                c.l2_of_thread(ThreadId::new(c.num_threads() - 1)),
                L2Id::new(c.num_l2 - 1)
            );
        }
    }

    #[test]
    #[should_panic(expected = "multiple of 2")]
    fn odd_core_count_rejected() {
        let _ = SystemConfig::with_cores(7);
    }

    #[test]
    fn cache_scale_matches_paper() {
        let s = SystemConfig::paper().cache_scale();
        let p = cmpsim_trace::CacheScale::paper();
        assert_eq!(s.l2_lines_total, p.l2_lines_total);
        assert_eq!(s.l3_lines_total, p.l3_lines_total);
    }
}
