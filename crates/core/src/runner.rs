//! Convenience runner producing a complete report per simulation.

use cmpsim_engine::metrics::MetricsRegistry;
use cmpsim_engine::profiler::{HostProfiler, HostReport};
use cmpsim_engine::progress::ProgressMeter;
use cmpsim_engine::spans::{SpanRecord, SpanSummary, SpanTracer};
use cmpsim_engine::stream::TelemetryStream;
use cmpsim_engine::telemetry::{IntervalRecord, Telemetry, DEFAULT_INTERVAL};
use cmpsim_engine::Cycle;
use cmpsim_trace::{Workload, WorkloadParams};

use crate::config::SystemConfig;
use crate::policy::{HybridStats, RdcbStats, RetrySwitchConfig, SnarfStats, WbhtStats};
use crate::system::{DecisionAuditSummary, System, SystemError, SystemStats};

/// Everything one simulation run produced.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Workload name.
    pub workload: String,
    /// Policy label.
    pub policy: &'static str,
    /// Outstanding-miss limit used.
    pub max_outstanding: u32,
    /// System statistics.
    pub stats: SystemStats,
    /// L3 statistics.
    pub l3: cmpsim_mem::L3Stats,
    /// Memory statistics.
    pub mem: cmpsim_mem::MemoryStats,
    /// Ring statistics.
    pub ring: cmpsim_ring::RingStats,
    /// Merged WBHT statistics.
    pub wbht: WbhtStats,
    /// Snarf-table statistics, when snarfing is on.
    pub snarf_table: Option<SnarfStats>,
    /// Reuse-distance copy-back statistics, when the rdcb policy is on.
    /// Registered into [`RunReport::metrics`] as an `rdcb_*` section —
    /// only when present, so legacy exports stay byte-identical.
    pub rdcb: Option<RdcbStats>,
    /// Hybrid update/invalidate statistics, when the hybrid policy is
    /// on. Registered into [`RunReport::metrics`] as a `hybrid_*`
    /// section — only when present.
    pub hybrid: Option<HybridStats>,
    /// Interval snapshots, when interval sampling was enabled.
    pub intervals: Vec<IntervalRecord>,
    /// Completed transaction spans, when span tracing was enabled
    /// (empty otherwise). Feed to
    /// [`cmpsim_engine::spans::write_chrome_trace`] for Perfetto.
    pub spans: Vec<SpanRecord>,
    /// Span accounting (counts + per-fill-source latency histograms),
    /// when span tracing was enabled.
    pub span_summary: Option<SpanSummary>,
    /// Host-side profiling summary (stage attribution, gauges, peak
    /// RSS), when host profiling was enabled. Deliberately kept out of
    /// [`RunReport::metrics`]: wall-clock numbers must never perturb the
    /// byte-stable JSON/CSV exports.
    pub host: Option<HostReport>,
    /// Decision-quality audit aggregates, when the audit was enabled.
    /// Registered into [`RunReport::metrics`] as an `audit_*` section —
    /// only when present, so audited-off exports stay byte-identical.
    pub audit: Option<DecisionAuditSummary>,
}

impl RunReport {
    /// Execution time in cycles.
    pub fn cycles(&self) -> u64 {
        self.stats.cycles
    }

    /// The run's metrics as a registry — the single source both the
    /// JSON and CSV exports render from, so the formats agree
    /// field-for-field by construction.
    pub fn metrics(&self) -> MetricsRegistry {
        let s = &self.stats;
        let l3_total = self.l3.read_hits + self.l3.read_misses;
        let l3_hit = if l3_total == 0 {
            0.0
        } else {
            self.l3.read_hits as f64 / l3_total as f64
        };
        let mut m = MetricsRegistry::new();
        m.set_text("workload", self.workload.clone());
        m.set_text("policy", self.policy);
        m.set_counter("max_outstanding", u64::from(self.max_outstanding));
        m.set_counter("cycles", s.cycles);
        m.set_counter("refs", s.refs);
        m.set_counter("loads", s.loads);
        m.set_counter("stores", s.stores);
        m.set_counter("l1_hits", s.l1_hits);
        m.set_gauge("l2_hit_rate", s.l2_hit_rate());
        m.set_gauge("l3_load_hit_rate", l3_hit);
        m.set_counter("fills_from_l2", s.fills_from_l2);
        m.set_counter("fills_from_l3", s.fills_from_l3);
        m.set_counter("fills_from_memory", s.fills_from_memory);
        m.set_counter("wb_requests", s.wb.requests());
        m.set_counter("wb_dirty", s.wb.dirty_requests);
        m.set_counter("wb_clean", s.wb.clean_requests);
        m.set_counter("wb_clean_aborted", s.wb.clean_aborted);
        m.set_gauge("wb_clean_redundant_rate", s.wb.clean_redundant_rate());
        m.set_counter("wb_snarfed", s.wb.snarfed);
        m.set_counter("wb_squashed_peer", s.wb.squashed_peer);
        m.set_counter("wb_accepted_l3", s.wb.accepted_l3);
        m.set_counter("retries_total", s.retries_total);
        m.set_counter("retries_l3", s.retries_l3);
        m.set_counter("upgrades", s.upgrades);
        m.set_gauge("mean_miss_latency", s.miss_latency.mean());
        m.set_counter("wbht_decisions", self.wbht.decisions);
        m.set_gauge("wbht_correct_rate", self.wbht.correct_rate());
        m.set_counter("ring_addr_txns", self.ring.addr_issued);
        m.set_counter("mem_reads", self.mem.reads);
        m.set_counter("mem_writes", self.mem.writes);
        m.set_counter("mshr_high_water", s.mshr_high_water);
        m.set_counter("wbq_high_water", s.wbq_high_water);
        m.set_counter("event_queue_high_water", s.event_queue_high_water);
        m.set_counter("l3_read_queue_high_water", self.l3.read_queue_high_water);
        m.set_counter("l3_data_queue_high_water", self.l3.data_queue_high_water);
        if let Some(r) = &self.rdcb {
            m.set_counter("rdcb_decisions", r.decisions);
            m.set_counter("rdcb_aborted", r.aborted);
            m.set_counter("rdcb_trained", r.trained);
            m.set_counter("rdcb_unknown", r.unknown);
        }
        if let Some(h) = &self.hybrid {
            m.set_counter("hybrid_invalidations", h.invalidations);
            m.set_counter("hybrid_updates", h.updates);
            m.set_counter("hybrid_regretted_invalidations", h.regretted_invalidations);
            m.set_counter("hybrid_promotions", h.promotions);
            m.set_counter("hybrid_demotions", h.demotions);
            m.set_counter("coherence_updates", s.coherence_updates);
        }
        if let Some(spans) = &self.span_summary {
            spans.register_into(&mut m);
        }
        if let Some(audit) = &self.audit {
            audit.register_into(&mut m);
        }
        m
    }

    /// A compact JSON summary of the run, rendered from
    /// [`RunReport::metrics`].
    pub fn to_json(&self) -> String {
        self.metrics().to_json()
    }

    /// A `(header, row)` CSV pair rendered from the same registry as
    /// [`RunReport::to_json`].
    pub fn to_csv(&self) -> (String, String) {
        self.metrics().to_csv()
    }

    /// Percentage runtime improvement of this run over a baseline run
    /// (positive = faster, as plotted in Figures 2/3/5/7).
    pub fn improvement_over(&self, baseline: &RunReport) -> f64 {
        if baseline.stats.cycles == 0 {
            return 0.0;
        }
        (1.0 - self.stats.cycles as f64 / baseline.stats.cycles as f64) * 100.0
    }
}

/// Options for a single run.
#[derive(Debug, Clone)]
pub struct RunSpec {
    /// System configuration (policy, pressure, geometry).
    pub config: SystemConfig,
    /// Workload parameters.
    pub workload: WorkloadParams,
    /// References each thread executes.
    pub refs_per_thread: u64,
    /// Retry-switch override (scaled windows for scaled runs).
    pub retry_switch: Option<RetrySwitchConfig>,
    /// Event-trace handle (disabled by default: zero cost).
    pub telemetry: Telemetry,
    /// Interval-sampling period in cycles, when set.
    pub interval_stats: Option<Cycle>,
    /// Transaction span tracer (disabled by default: zero cost).
    pub span_tracer: SpanTracer,
    /// Host-side wall-clock profiler (disabled by default: zero cost).
    /// When enabled with no `interval_stats` period, sampling falls back
    /// to [`DEFAULT_INTERVAL`] so the gauges have a cadence.
    pub host_profiler: HostProfiler,
    /// Live telemetry stream (disabled by default: zero cost).
    pub stream: TelemetryStream,
    /// Cell id tagged on this run's streamed frames (grid multiplexing).
    pub stream_cell: u64,
    /// `--progress` heartbeat period in wall seconds, when set.
    pub progress_secs: Option<f64>,
    /// Enables the decision-quality audit (disabled by default: zero
    /// cost, byte-identical outputs).
    pub audit: bool,
    /// Frontend shard count (`--shards N`). With `N > 1`, trace
    /// generation runs on `N` producer threads feeding the event loop
    /// through lock-free per-thread rings
    /// ([`cmpsim_trace::ShardedWorkload`]); the run-ahead is bounded by
    /// the conservative lookahead derived from the ring hop latency.
    /// Output is byte-identical to the serial build for every count
    /// (enforced by `tests/shard_oracle.rs` and the verify.sh matrix),
    /// so the field is deliberately absent from [`RunReport::metrics`].
    pub shards: usize,
}

impl RunSpec {
    /// Builds a spec for one of the paper's workloads on a configuration.
    pub fn for_workload(config: SystemConfig, workload: Workload, refs_per_thread: u64) -> Self {
        let params = workload.params(config.num_threads(), config.cache_scale());
        RunSpec {
            config,
            workload: params,
            refs_per_thread,
            retry_switch: None,
            telemetry: Telemetry::disabled(),
            interval_stats: None,
            span_tracer: SpanTracer::disabled(),
            host_profiler: HostProfiler::disabled(),
            stream: TelemetryStream::disabled(),
            stream_cell: 0,
            progress_secs: None,
            audit: false,
            shards: 1,
        }
    }
}

/// Runs one simulation to completion.
///
/// # Errors
///
/// Returns [`SystemError`] for invalid configurations or workloads.
///
/// # Example
///
/// ```
/// use cmp_adaptive_wb::{run, RunSpec, SystemConfig};
/// use cmpsim_trace::Workload;
///
/// let spec = RunSpec::for_workload(SystemConfig::scaled(16), Workload::Cpw2, 1_000);
/// let report = run(spec)?;
/// assert!(report.cycles() > 0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn run(spec: RunSpec) -> Result<RunReport, SystemError> {
    let workload_name = spec.workload.name.clone();
    let policy = spec.config.policy.label();
    let max_outstanding = spec.config.max_outstanding;
    let mut sys = if spec.shards > 1 {
        // Sharded frontend: same generator, same seed, but producing on
        // worker threads with ring-hop-bounded run-ahead. Stream-for-
        // stream identical to the inline path, so everything downstream
        // of the source is untouched.
        use cmpsim_engine::shard::Lookahead;
        use cmpsim_trace::{ShardedWorkload, SyntheticWorkload};
        let generator = SyntheticWorkload::new(spec.workload, spec.config.seed)?;
        let lookahead = Lookahead::from_ring_hop(spec.config.ring.hop_cycles);
        let source = ShardedWorkload::spawn_with_lookahead(generator, spec.shards, lookahead);
        System::with_source(spec.config, Box::new(source))?
    } else {
        System::new(spec.config, spec.workload)?
    };
    if let Some(rs) = spec.retry_switch {
        sys.set_retry_switch(rs);
    }
    if spec.telemetry.is_enabled() {
        sys.set_telemetry(spec.telemetry.clone());
    }
    let observing = spec.host_profiler.is_enabled() || spec.stream.is_enabled();
    match spec.interval_stats {
        Some(period) => sys.enable_interval_sampling(period),
        // Host observation samples on the interval cadence, so give it
        // one; the sampler only reads counters, never changes them.
        None if observing => sys.enable_interval_sampling(DEFAULT_INTERVAL),
        None => {}
    }
    let tracing = spec.span_tracer.is_enabled();
    if tracing {
        sys.set_span_tracer(spec.span_tracer.clone());
    }
    let profiling = spec.host_profiler.is_enabled();
    if profiling {
        sys.set_host_profiler(spec.host_profiler.clone());
    }
    if spec.stream.is_enabled() {
        sys.set_stream(spec.stream.clone(), spec.stream_cell);
    }
    if let Some(secs) = spec.progress_secs {
        sys.set_progress(ProgressMeter::new(secs));
    }
    if spec.audit {
        sys.enable_decision_audit();
    }
    let stats = sys.run(spec.refs_per_thread);
    Ok(RunReport {
        workload: workload_name,
        policy,
        max_outstanding,
        stats,
        l3: sys.l3_stats(),
        mem: sys.memory().stats(),
        ring: sys.ring_stats(),
        wbht: sys.wbht_stats(),
        snarf_table: sys.snarf_table_stats(),
        rdcb: sys.rdcb_stats(),
        hybrid: sys.hybrid_stats(),
        intervals: sys.interval_records().to_vec(),
        spans: if tracing {
            spec.span_tracer.finished_spans()
        } else {
            Vec::new()
        },
        span_summary: tracing.then(|| spec.span_tracer.summary()),
        host: profiling.then(|| spec.host_profiler.report()),
        audit: sys.decision_audit_summary(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_baseline() {
        let spec = RunSpec::for_workload(SystemConfig::scaled(16), Workload::NotesBench, 500);
        let r = run(spec).unwrap();
        assert!(r.cycles() > 0);
        assert_eq!(r.stats.refs, 500 * 16);
        assert_eq!(r.policy, "baseline");
    }

    #[test]
    fn json_summary_is_valid_shape() {
        let spec = RunSpec::for_workload(SystemConfig::scaled(16), Workload::Cpw2, 400);
        let r = run(spec).unwrap();
        let j = r.to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"workload\":\"CPW2\""));
        assert!(j.contains("\"cycles\":"));
        // Balanced braces and quotes.
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('"').count() % 2, 0);
    }

    #[test]
    fn json_and_csv_share_one_registry() {
        let spec = RunSpec::for_workload(SystemConfig::scaled(16), Workload::Cpw2, 400);
        let r = run(spec).unwrap();
        let (header, row) = r.to_csv();
        let names: Vec<&str> = header.split(',').collect();
        let values: Vec<&str> = row.split(',').collect();
        assert_eq!(names.len(), values.len());
        let json = r.to_json();
        for (name, value) in names.iter().zip(&values) {
            let quoted = format!("\"{name}\":\"{value}\"");
            let bare = format!("\"{name}\":{value}");
            assert!(
                json.contains(&quoted) || json.contains(&bare),
                "CSV field {name}={value} missing from JSON {json}"
            );
        }
    }

    #[test]
    fn telemetry_spec_collects_events_and_intervals() {
        use cmpsim_engine::telemetry::Telemetry;

        let (tel, sink) = Telemetry::with_vec_sink();
        let mut spec = RunSpec::for_workload(SystemConfig::scaled(16), Workload::Cpw2, 400);
        spec.telemetry = tel;
        spec.interval_stats = Some(5_000);
        let r = run(spec).unwrap();
        assert!(!sink.lock().unwrap().events().is_empty());
        assert!(!r.intervals.is_empty());
        let last = r.intervals.last().unwrap();
        assert_eq!(last.end, r.cycles());
    }

    #[test]
    fn span_tracer_spec_collects_spans() {
        let mut spec = RunSpec::for_workload(SystemConfig::scaled(16), Workload::Cpw2, 400);
        spec.span_tracer = SpanTracer::sampled(1);
        let r = run(spec).unwrap();
        assert!(!r.spans.is_empty());
        let summary = r.span_summary.as_ref().unwrap();
        assert_eq!(summary.recorded, r.spans.len() as u64);
        // Telescoping: queue wait + service tiles every span exactly.
        for s in &r.spans {
            assert_eq!(s.queue_wait() + s.service(), s.total(), "span {}", s.id);
            assert!(s.outcome.is_some(), "span {} left unfinished", s.id);
        }
        // The summary's histograms surface in the metrics registry.
        let json = r.to_json();
        assert!(json.contains("\"spans_recorded\":"));
        assert!(json.contains("\"span_memory_total.count\":"));
    }

    #[test]
    fn high_water_metrics_exported() {
        let spec = RunSpec::for_workload(SystemConfig::scaled(16), Workload::Trade2, 400);
        let r = run(spec).unwrap();
        assert!(r.stats.mshr_high_water > 0);
        assert!(r.stats.event_queue_high_water > 0);
        let json = r.to_json();
        assert!(json.contains("\"mshr_high_water\":"));
        assert!(json.contains("\"wbq_high_water\":"));
        assert!(json.contains("\"l3_read_queue_high_water\":"));
    }

    #[test]
    fn audit_preserves_base_metrics_and_records_switch_state() {
        use crate::policy::{PolicyConfig, SnarfConfig, WbhtConfig};

        let mut cfg = SystemConfig::scaled(16);
        cfg.policy = PolicyConfig::combined(
            WbhtConfig {
                entries: 1024,
                assoc: 16,
                ..Default::default()
            },
            SnarfConfig {
                entries: 1024,
                ..Default::default()
            },
        );
        cfg.max_outstanding = 6;
        let plain = run(RunSpec::for_workload(cfg.clone(), Workload::Trade2, 2_000)).unwrap();
        let mut spec = RunSpec::for_workload(cfg, Workload::Trade2, 2_000);
        spec.audit = true;
        let audited = run(spec).unwrap();
        assert!(plain.audit.is_none());
        // The audit must not perturb the simulation or the base export:
        // the audited run's metrics minus the audit_* section are
        // byte-identical to the plain run's.
        let base_rows = plain.metrics().flat_rows();
        let audited_rows: Vec<_> = audited
            .metrics()
            .flat_rows()
            .into_iter()
            .filter(|(name, _)| !name.starts_with("audit_"))
            .collect();
        assert_eq!(base_rows, audited_rows);
        // Decision coverage: every clean-castout verdict is recorded
        // with its retry-switch state, and every recorded decision gets
        // an outcome by run end.
        let a = audited.audit.as_ref().unwrap();
        assert!(a.totals.wbht_decisions > 0, "no WBHT verdicts audited");
        assert!(a.totals.snarfs > 0, "no snarf placements audited");
        assert_eq!(
            a.totals.decisions_engaged + a.totals.decisions_disengaged(),
            a.totals.wbht_decisions
        );
        assert_eq!(
            a.totals.aborts,
            a.totals.aborts_correct + a.totals.aborts_mispredicted
        );
        assert!((a.resolved_coverage() - 1.0).abs() < 1e-12);
        let json = audited.to_json();
        assert!(json.contains("\"audit_abort_precision\":"));
        assert!(json.contains("\"audit_useful_snarf_rate\":"));
    }

    #[test]
    fn sharded_run_is_byte_identical_to_serial() {
        let spec = RunSpec::for_workload(SystemConfig::scaled(16), Workload::Trade2, 600);
        let serial = run(spec.clone()).unwrap();
        for shards in [2, 4] {
            let mut sharded_spec = spec.clone();
            sharded_spec.shards = shards;
            let sharded = run(sharded_spec).unwrap();
            assert_eq!(serial.to_json(), sharded.to_json(), "shards={shards}");
            assert_eq!(serial.to_csv(), sharded.to_csv(), "shards={shards}");
        }
    }

    #[test]
    fn scaled_out_32_core_topology_runs_and_shards_identically() {
        // The >8-core axis: 32 cores, 64 threads, 16 L2 agents on the
        // ring — shrunk caches keep the test fast. The sharded frontend
        // must agree byte-for-byte here too.
        let mut cfg = SystemConfig::with_cores(32);
        cfg.l2_slice_bytes = 32 * 1024;
        cfg.l3 = cmpsim_mem::L3Config::scaled(16);
        if let Some(l1) = &mut cfg.l1 {
            l1.size_bytes = 4 * 1024;
        }
        cfg.retry_switch = RetrySwitchConfig::scaled(16);
        let spec = RunSpec::for_workload(cfg, Workload::Cpw2, 150);
        let serial = run(spec.clone()).unwrap();
        assert_eq!(serial.stats.refs, 150 * 64);
        let mut sharded_spec = spec;
        sharded_spec.shards = 8;
        let sharded = run(sharded_spec).unwrap();
        assert_eq!(serial.to_json(), sharded.to_json());
    }

    #[test]
    fn improvement_math() {
        let spec = RunSpec::for_workload(SystemConfig::scaled(16), Workload::NotesBench, 300);
        let a = run(spec.clone()).unwrap();
        let mut b = a.clone();
        b.stats.cycles = a.stats.cycles * 9 / 10;
        assert!(b.improvement_over(&a) > 9.0);
        assert!(a.improvement_over(&a).abs() < 1e-9);
    }
}
