//! Convenience runner producing a complete report per simulation.

use cmpsim_trace::{Workload, WorkloadParams};

use crate::config::SystemConfig;
use crate::policy::{RetrySwitchConfig, SnarfStats, WbhtStats};
use crate::system::{System, SystemError, SystemStats};

/// Everything one simulation run produced.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Workload name.
    pub workload: String,
    /// Policy label.
    pub policy: &'static str,
    /// Outstanding-miss limit used.
    pub max_outstanding: u32,
    /// System statistics.
    pub stats: SystemStats,
    /// L3 statistics.
    pub l3: cmpsim_mem::L3Stats,
    /// Memory statistics.
    pub mem: cmpsim_mem::MemoryStats,
    /// Ring statistics.
    pub ring: cmpsim_ring::RingStats,
    /// Merged WBHT statistics.
    pub wbht: WbhtStats,
    /// Snarf-table statistics, when snarfing is on.
    pub snarf_table: Option<SnarfStats>,
}

impl RunReport {
    /// Execution time in cycles.
    pub fn cycles(&self) -> u64 {
        self.stats.cycles
    }

    /// A compact JSON summary of the run (hand-rolled: every field is a
    /// number or string, so no serializer dependency is needed).
    pub fn to_json(&self) -> String {
        let s = &self.stats;
        let l3_total = self.l3.read_hits + self.l3.read_misses;
        let l3_hit = if l3_total == 0 {
            0.0
        } else {
            self.l3.read_hits as f64 / l3_total as f64
        };
        format!(
            concat!(
                "{{\"workload\":\"{}\",\"policy\":\"{}\",\"max_outstanding\":{},",
                "\"cycles\":{},\"refs\":{},\"loads\":{},\"stores\":{},",
                "\"l1_hits\":{},\"l2_hit_rate\":{:.6},\"l3_load_hit_rate\":{:.6},",
                "\"fills_from_l2\":{},\"fills_from_l3\":{},\"fills_from_memory\":{},",
                "\"wb_requests\":{},\"wb_dirty\":{},\"wb_clean\":{},",
                "\"wb_clean_aborted\":{},\"wb_clean_redundant_rate\":{:.6},",
                "\"wb_snarfed\":{},\"wb_squashed_peer\":{},\"wb_accepted_l3\":{},",
                "\"retries_total\":{},\"retries_l3\":{},\"upgrades\":{},",
                "\"mean_miss_latency\":{:.2},",
                "\"wbht_decisions\":{},\"wbht_correct_rate\":{:.6},",
                "\"ring_addr_txns\":{},\"mem_reads\":{},\"mem_writes\":{}}}"
            ),
            self.workload,
            self.policy,
            self.max_outstanding,
            s.cycles,
            s.refs,
            s.loads,
            s.stores,
            s.l1_hits,
            s.l2_hit_rate(),
            l3_hit,
            s.fills_from_l2,
            s.fills_from_l3,
            s.fills_from_memory,
            s.wb.requests(),
            s.wb.dirty_requests,
            s.wb.clean_requests,
            s.wb.clean_aborted,
            s.wb.clean_redundant_rate(),
            s.wb.snarfed,
            s.wb.squashed_peer,
            s.wb.accepted_l3,
            s.retries_total,
            s.retries_l3,
            s.upgrades,
            s.miss_latency.mean(),
            self.wbht.decisions,
            self.wbht.correct_rate(),
            self.ring.addr_issued,
            self.mem.reads,
            self.mem.writes,
        )
    }

    /// Percentage runtime improvement of this run over a baseline run
    /// (positive = faster, as plotted in Figures 2/3/5/7).
    pub fn improvement_over(&self, baseline: &RunReport) -> f64 {
        if baseline.stats.cycles == 0 {
            return 0.0;
        }
        (1.0 - self.stats.cycles as f64 / baseline.stats.cycles as f64) * 100.0
    }
}

/// Options for a single run.
#[derive(Debug, Clone)]
pub struct RunSpec {
    /// System configuration (policy, pressure, geometry).
    pub config: SystemConfig,
    /// Workload parameters.
    pub workload: WorkloadParams,
    /// References each thread executes.
    pub refs_per_thread: u64,
    /// Retry-switch override (scaled windows for scaled runs).
    pub retry_switch: Option<RetrySwitchConfig>,
}

impl RunSpec {
    /// Builds a spec for one of the paper's workloads on a configuration.
    pub fn for_workload(config: SystemConfig, workload: Workload, refs_per_thread: u64) -> Self {
        let params = workload.params(config.num_threads(), config.cache_scale());
        RunSpec {
            config,
            workload: params,
            refs_per_thread,
            retry_switch: None,
        }
    }
}

/// Runs one simulation to completion.
///
/// # Errors
///
/// Returns [`SystemError`] for invalid configurations or workloads.
///
/// # Example
///
/// ```
/// use cmp_adaptive_wb::{run, RunSpec, SystemConfig};
/// use cmpsim_trace::Workload;
///
/// let spec = RunSpec::for_workload(SystemConfig::scaled(16), Workload::Cpw2, 1_000);
/// let report = run(spec)?;
/// assert!(report.cycles() > 0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn run(spec: RunSpec) -> Result<RunReport, SystemError> {
    let workload_name = spec.workload.name.clone();
    let policy = spec.config.policy.label();
    let max_outstanding = spec.config.max_outstanding;
    let mut sys = System::new(spec.config, spec.workload)?;
    if let Some(rs) = spec.retry_switch {
        sys.set_retry_switch(rs);
    }
    let stats = sys.run(spec.refs_per_thread);
    Ok(RunReport {
        workload: workload_name,
        policy,
        max_outstanding,
        stats,
        l3: sys.l3_stats(),
        mem: sys.memory().stats(),
        ring: sys.ring_stats(),
        wbht: sys.wbht_stats(),
        snarf_table: sys.snarf_table_stats(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_baseline() {
        let spec = RunSpec::for_workload(SystemConfig::scaled(16), Workload::NotesBench, 500);
        let r = run(spec).unwrap();
        assert!(r.cycles() > 0);
        assert_eq!(r.stats.refs, 500 * 16);
        assert_eq!(r.policy, "baseline");
    }

    #[test]
    fn json_summary_is_valid_shape() {
        let spec = RunSpec::for_workload(SystemConfig::scaled(16), Workload::Cpw2, 400);
        let r = run(spec).unwrap();
        let j = r.to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"workload\":\"CPW2\""));
        assert!(j.contains("\"cycles\":"));
        // Balanced braces and quotes.
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('"').count() % 2, 0);
    }

    #[test]
    fn improvement_math() {
        let spec = RunSpec::for_workload(SystemConfig::scaled(16), Workload::NotesBench, 300);
        let a = run(spec.clone()).unwrap();
        let mut b = a.clone();
        b.stats.cycles = a.stats.cycles * 9 / 10;
        assert!(b.improvement_over(&a) > 9.0);
        assert!(a.improvement_over(&a).abs() < 1e-9);
    }
}
