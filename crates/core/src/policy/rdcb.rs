//! Reuse-distance-based clean copy-back filtering (after Wang et al.,
//! arXiv:2105.14442) — a rival policy to the WBHT.
//!
//! Where the WBHT remembers which clean victims the L3 *already holds*
//! (redundancy filtering), this policy predicts whether a clean victim
//! will be re-referenced *soon enough* for an L3 copy to pay off at
//! all. Each L2 keeps a sampled reuse-distance predictor: a tagged
//! table records, per tracked line, the local miss-count at its last
//! reference and an exponentially-smoothed estimate of its reuse
//! distance (measured in L2 misses, a capacity-relative clock). On a
//! clean castout candidate the copy-back is allowed only when the
//! line's predicted reuse distance is at or below
//! [`RdcbConfig::max_distance`]; lines predicted to be effectively dead
//! are dropped instead of occupying L3 fill bandwidth.
//!
//! Sampling: only lines whose address hash lands in the sample
//! (1-in-2^[`RdcbConfig::sample_shift`]) train the table. Unsampled or
//! unknown lines are copied back (the conservative baseline action), so
//! a cold predictor degrades to baseline behaviour rather than dropping
//! live lines.

use cmpsim_cache::{GeometryError, LineAddr, WideHistoryTable};

/// Configuration of the reuse-distance copy-back predictor (per L2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RdcbConfig {
    /// Predictor entries per L2 (tagged, set-associative).
    pub entries: u64,
    /// Predictor associativity.
    pub assoc: u64,
    /// Train 1-in-2^k lines (0 = every line).
    pub sample_shift: u32,
    /// Allow the copy-back when the predicted reuse distance (in local
    /// L2 misses) is at or below this bound.
    pub max_distance: u64,
}

impl Default for RdcbConfig {
    fn default() -> Self {
        RdcbConfig {
            entries: 32 * 1024,
            assoc: 16,
            sample_shift: 0,
            max_distance: 4 * 1024,
        }
    }
}

/// Counters for one predictor.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RdcbStats {
    /// Castout decisions taken (clean victims consulted).
    pub decisions: u64,
    /// Copy-backs vetoed (predicted reuse distance above the bound).
    pub aborted: u64,
    /// Training observations folded into the table.
    pub trained: u64,
    /// Decisions on lines with no prediction (allowed conservatively).
    pub unknown: u64,
}

/// Per-line training state: last-reference clock and smoothed distance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct Entry {
    last_seen: u64,
    predicted: u64,
}

/// One L2's sampled reuse-distance predictor.
#[derive(Debug, Clone)]
pub struct ReuseDistanceCopyBack {
    table: WideHistoryTable<Entry>,
    cfg: RdcbConfig,
    /// Local miss-count clock; advanced by the owning L2's misses.
    clock: u64,
    stats: RdcbStats,
}

impl ReuseDistanceCopyBack {
    /// Builds a predictor; `entries`/`assoc` follow history-table rules.
    pub fn new(cfg: RdcbConfig) -> Result<Self, GeometryError> {
        Ok(ReuseDistanceCopyBack {
            table: WideHistoryTable::new(cfg.entries, cfg.assoc)?,
            cfg,
            clock: 0,
            stats: RdcbStats::default(),
        })
    }

    /// Is `line` in the training sample?
    #[inline]
    fn sampled(&self, line: LineAddr) -> bool {
        // Mix the line address so striding workloads still sample
        // uniformly, then keep 1-in-2^k.
        let h = line.raw().wrapping_mul(0x9E37_79B9_7F4A_7C15);
        (h >> 32) & ((1u64 << self.cfg.sample_shift) - 1) == 0
    }

    /// Observes one local L2 miss for `line`: advances the clock and,
    /// for sampled lines, folds the observed reuse distance into the
    /// per-line estimate (EWMA with weight 1/2).
    pub fn observe_miss(&mut self, line: LineAddr) {
        self.clock += 1;
        if !self.sampled(line) {
            return;
        }
        let now = self.clock;
        match self.table.lookup(line) {
            Some(e) => {
                let observed = now - e.last_seen;
                let predicted = if e.predicted == 0 {
                    observed
                } else {
                    (e.predicted + observed) / 2
                };
                self.table.update(line, |e| {
                    e.last_seen = now;
                    e.predicted = predicted;
                });
            }
            None => self.table.record(
                line,
                Entry {
                    last_seen: now,
                    predicted: 0,
                },
            ),
        }
        self.stats.trained += 1;
    }

    /// Decides a clean castout candidate: `true` aborts the copy-back.
    ///
    /// A line with a trained estimate above [`RdcbConfig::max_distance`]
    /// is predicted dead (or too-distant for a victim cache to retain)
    /// and its copy-back is vetoed; unknown or still-warming lines are
    /// copied back.
    pub fn should_abort(&mut self, line: LineAddr) -> bool {
        self.stats.decisions += 1;
        match self.table.peek(line) {
            Some(e) if e.predicted > 0 => {
                let abort = e.predicted > self.cfg.max_distance;
                if abort {
                    self.stats.aborted += 1;
                }
                abort
            }
            _ => {
                self.stats.unknown += 1;
                false
            }
        }
    }

    /// The configuration.
    pub fn config(&self) -> RdcbConfig {
        self.cfg
    }

    /// Counters.
    pub fn stats(&self) -> RdcbStats {
        self.stats
    }

    /// Valid fraction of the predictor table.
    pub fn occupancy(&self) -> f64 {
        self.table.len() as f64 / self.table.capacity() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(raw: u64) -> LineAddr {
        LineAddr::new(raw)
    }

    fn rdcb(max_distance: u64) -> ReuseDistanceCopyBack {
        ReuseDistanceCopyBack::new(RdcbConfig {
            entries: 256,
            assoc: 4,
            sample_shift: 0,
            max_distance,
        })
        .unwrap()
    }

    #[test]
    fn unknown_lines_are_copied_back() {
        let mut p = rdcb(8);
        assert!(!p.should_abort(line(42)));
        assert_eq!(p.stats().unknown, 1);
        assert_eq!(p.stats().aborted, 0);
    }

    #[test]
    fn single_observation_only_warms_the_entry() {
        let mut p = rdcb(8);
        p.observe_miss(line(7));
        // One sighting has no distance yet: conservative allow.
        assert!(!p.should_abort(line(7)));
        assert_eq!(p.stats().unknown, 1);
    }

    #[test]
    fn threshold_boundary_is_exact() {
        // Re-reference distance of exactly max_distance must copy back;
        // one miss further must abort.
        for (gap, expect_abort) in [(8u64, false), (9, true)] {
            let mut p = rdcb(8);
            p.observe_miss(line(1));
            for k in 0..gap - 1 {
                p.observe_miss(line(1000 + k)); // unrelated misses advance the clock
            }
            p.observe_miss(line(1)); // observed distance == gap
            assert_eq!(
                p.should_abort(line(1)),
                expect_abort,
                "distance {gap} vs bound 8"
            );
        }
    }

    #[test]
    fn estimate_is_smoothed_not_last_value() {
        let mut p = rdcb(8);
        // First observed distance 2, then 20: EWMA(1/2) = 11, above the
        // bound even though a plain last-distance of 20 also is — so
        // follow with distance 2 again: EWMA -> (11+2)/2 = 6 <= 8.
        p.observe_miss(line(1));
        p.observe_miss(line(99));
        p.observe_miss(line(1)); // d=2 -> predicted 2
        for k in 0..19 {
            p.observe_miss(line(2000 + k));
        }
        p.observe_miss(line(1)); // d=20 -> predicted (2+20)/2 = 11
        assert!(p.should_abort(line(1)));
        p.observe_miss(line(99));
        p.observe_miss(line(1)); // d=2 -> predicted (11+2)/2 = 6
        assert!(!p.should_abort(line(1)));
    }

    #[test]
    fn sampling_skips_out_of_sample_lines() {
        let mut p = ReuseDistanceCopyBack::new(RdcbConfig {
            entries: 256,
            assoc: 4,
            sample_shift: 3, // 1-in-8
            max_distance: 8,
        })
        .unwrap();
        for raw in 0..256u64 {
            p.observe_miss(line(raw));
        }
        let trained = p.stats().trained;
        assert!(
            trained > 0 && trained < 256,
            "1-in-8 sampling must train a strict subset, got {trained}"
        );
        // The clock still advances on every miss (distance is measured
        // against all misses, not just sampled ones).
        assert_eq!(p.clock, 256);
    }

    #[test]
    fn decisions_count_even_when_unknown() {
        let mut p = rdcb(8);
        p.should_abort(line(5));
        p.observe_miss(line(5));
        p.should_abort(line(5));
        assert_eq!(p.stats().decisions, 2);
    }
}
