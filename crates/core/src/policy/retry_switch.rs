//! The retry-rate on/off switch for the WBHT (paper §2.2).

use cmpsim_engine::telemetry::{SimEvent, Telemetry};
use cmpsim_engine::Cycle;

/// Configuration of the retry-rate switch.
///
/// "We implement a simple timer and maintain a count of retry
/// transactions … When the number of retries in a specified period of
/// time goes below a certain threshold, we do not use the WBHT to make
/// decisions … Surprisingly, a common threshold of two thousand retries
/// every one million processor cycles works well" (§2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetrySwitchConfig {
    /// Observation window length in cycles.
    pub window: Cycle,
    /// Retries per window at or above which the WBHT is engaged.
    pub threshold: u64,
}

impl Default for RetrySwitchConfig {
    fn default() -> Self {
        RetrySwitchConfig {
            window: 1_000_000,
            threshold: 2_000,
        }
    }
}

impl RetrySwitchConfig {
    /// Scales the window (and threshold proportionally) for scaled-down
    /// simulations whose runs are shorter than a paper-scale window.
    pub fn scaled(factor: u64) -> Self {
        let d = Self::default();
        RetrySwitchConfig {
            window: (d.window / factor).max(1),
            threshold: (d.threshold / factor).max(1),
        }
    }
}

/// Tracks intrachip-bus retries per window and derives the WBHT enable.
///
/// The decision for the *current* window uses the *previous* window's
/// retry count (a hardware-realistic one-window lag). The switch starts
/// off: under low memory pressure the WBHT stays disengaged, matching
/// the paper's flat curves at 1–2 outstanding loads.
///
/// # Example
///
/// ```
/// use cmp_adaptive_wb::policy::{RetrySwitch, RetrySwitchConfig};
///
/// let mut s = RetrySwitch::new(RetrySwitchConfig { window: 1000, threshold: 10 });
/// assert!(!s.engaged(0));
/// for i in 0..20 { s.record_retry(i * 10); }
/// // Next window sees >= 10 retries in the previous one.
/// assert!(s.engaged(1500));
/// ```
#[derive(Debug, Clone)]
pub struct RetrySwitch {
    cfg: RetrySwitchConfig,
    window_start: Cycle,
    count_this_window: u64,
    engaged: bool,
    total_retries: u64,
    engaged_windows: u64,
    windows: u64,
    telemetry: Telemetry,
}

impl RetrySwitch {
    /// Creates a switch (initially disengaged).
    pub fn new(cfg: RetrySwitchConfig) -> Self {
        RetrySwitch {
            cfg,
            window_start: 0,
            count_this_window: 0,
            engaged: false,
            total_retries: 0,
            engaged_windows: 0,
            windows: 0,
            telemetry: Telemetry::disabled(),
        }
    }

    /// Attaches an event-trace handle; each engaged/disengaged flip is
    /// emitted as a [`SimEvent::RetrySwitchFlip`] stamped with the window
    /// boundary at which the decision took effect.
    pub fn attach_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    fn roll(&mut self, now: Cycle) {
        while now >= self.window_start + self.cfg.window {
            let next = self.count_this_window >= self.cfg.threshold;
            if next != self.engaged {
                let boundary = self.window_start + self.cfg.window;
                let window_retries = self.count_this_window;
                let threshold = self.cfg.threshold;
                self.telemetry.emit(boundary, || SimEvent::RetrySwitchFlip {
                    engaged: next,
                    window_retries,
                    threshold,
                });
            }
            self.engaged = next;
            self.windows += 1;
            if self.engaged {
                self.engaged_windows += 1;
            }
            self.count_this_window = 0;
            self.window_start += self.cfg.window;
        }
    }

    /// Records one retry observed on the bus at time `now`.
    pub fn record_retry(&mut self, now: Cycle) {
        self.roll(now);
        self.count_this_window += 1;
        self.total_retries += 1;
    }

    /// Is the WBHT engaged at time `now`?
    pub fn engaged(&mut self, now: Cycle) -> bool {
        self.roll(now);
        self.engaged
    }

    /// Total retries observed.
    pub fn total_retries(&self) -> u64 {
        self.total_retries
    }

    /// (engaged windows, total completed windows).
    pub fn window_counts(&self) -> (u64, u64) {
        (self.engaged_windows, self.windows)
    }

    /// The configuration.
    pub fn config(&self) -> RetrySwitchConfig {
        self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> RetrySwitchConfig {
        RetrySwitchConfig {
            window: 100,
            threshold: 5,
        }
    }

    #[test]
    fn starts_disengaged() {
        let mut s = RetrySwitch::new(cfg());
        assert!(!s.engaged(0));
        assert!(!s.engaged(99));
    }

    #[test]
    fn engages_after_busy_window() {
        let mut s = RetrySwitch::new(cfg());
        for t in 0..5 {
            s.record_retry(t);
        }
        // Still within window 0: decision not yet taken.
        assert!(!s.engaged(50));
        // Window 1: previous window had 5 >= 5.
        assert!(s.engaged(100));
        assert!(s.engaged(150));
    }

    #[test]
    fn disengages_after_quiet_window() {
        let mut s = RetrySwitch::new(cfg());
        for t in 0..10 {
            s.record_retry(t);
        }
        assert!(s.engaged(100)); // window 0 busy
                                 // Window 1 quiet (no retries recorded 100..200).
        assert!(!s.engaged(200));
    }

    #[test]
    fn skipped_windows_count_as_quiet() {
        let mut s = RetrySwitch::new(cfg());
        for t in 0..10 {
            s.record_retry(t);
        }
        // Jump far ahead: the intervening empty windows disengage it.
        assert!(!s.engaged(1000));
    }

    #[test]
    fn counters() {
        let mut s = RetrySwitch::new(cfg());
        for t in 0..7 {
            s.record_retry(t);
        }
        let _ = s.engaged(250);
        assert_eq!(s.total_retries(), 7);
        let (engaged, total) = s.window_counts();
        assert_eq!(total, 2); // windows 0 and 1 completed by t=250
        assert_eq!(engaged, 1);
    }

    #[test]
    fn telemetry_traces_flips_only() {
        use cmpsim_engine::telemetry::{SimEvent, Telemetry};

        let (t, sink) = Telemetry::with_vec_sink();
        let mut s = RetrySwitch::new(cfg());
        s.attach_telemetry(t);
        for t in 0..10 {
            s.record_retry(t);
        }
        assert!(s.engaged(100)); // flip on at the 100 boundary
        assert!(s.engaged(150)); // still on: no event
        assert!(!s.engaged(300)); // quiet window 100..200: flip off at 200
        let sink = sink.lock().unwrap();
        let flips: Vec<(Cycle, bool)> = sink
            .events()
            .iter()
            .map(|(at, e)| match e {
                SimEvent::RetrySwitchFlip { engaged, .. } => (*at, *engaged),
                other => panic!("unexpected event {other:?}"),
            })
            .collect();
        assert_eq!(flips, [(100, true), (200, false)]);
    }

    #[test]
    fn paper_threshold_boundaries_are_exact() {
        // Paper defaults: 2000 retries / 1M cycles (§2.2). One retry
        // short of the threshold must leave filtering off.
        let d = RetrySwitchConfig::default();
        let mut s = RetrySwitch::new(d);
        for k in 0..1_999 {
            s.record_retry(k);
        }
        assert!(!s.engaged(d.window), "1999 < 2000 must stay disengaged");
        // Exactly 2000 engages at the window boundary, not a cycle
        // before it (the one-window decision lag).
        let mut s = RetrySwitch::new(d);
        for k in 0..2_000 {
            s.record_retry(k);
        }
        assert!(!s.engaged(d.window - 1), "decision lags the window");
        assert!(s.engaged(d.window), "2000 >= 2000 engages at boundary");
        assert!(s.engaged(2 * d.window - 1), "holds through the window");
        // A quiet window flips it off exactly at the next boundary,
        // and a busy one re-engages at its closing boundary.
        assert!(!s.engaged(2 * d.window), "quiet window disengages");
        for k in 0..2_000 {
            s.record_retry(2 * d.window + k);
        }
        assert!(!s.engaged(3 * d.window - 1));
        assert!(s.engaged(3 * d.window), "re-engages after busy window");
        let (engaged, windows) = s.window_counts();
        assert_eq!(windows, 3);
        assert_eq!(engaged, 2, "windows 0 and 2 closed engaged");
    }

    #[test]
    fn paper_default() {
        let d = RetrySwitchConfig::default();
        assert_eq!(d.window, 1_000_000);
        assert_eq!(d.threshold, 2_000);
        let s = RetrySwitchConfig::scaled(10);
        assert_eq!(s.window, 100_000);
        assert_eq!(s.threshold, 200);
    }
}
