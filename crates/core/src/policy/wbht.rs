//! The Write-Back History Table (paper §2).

use cmpsim_cache::{GeometryError, HistoryTable, LineAddr};
use cmpsim_engine::telemetry::{SimEvent, Telemetry};
use cmpsim_engine::Cycle;

/// Whose WBHT is updated when the combined snoop response reveals that a
/// clean write-back was already valid in the L3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum UpdateScope {
    /// Only the L2 performing the write-back allocates an entry
    /// (the Figure 2 configuration).
    #[default]
    Local,
    /// Every L2 allocates an entry — "because of the details of our bus
    /// protocol, all L2 caches see the combined snoop response … we can
    /// place the line's tag in all WBHTs on the chip" (§2.2, Figure 3).
    Global,
}

/// WBHT configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WbhtConfig {
    /// Table entries (paper default: 32K — "about 9% of our L2 cache
    /// size"; Figure 4 sweeps 512–64K).
    pub entries: u64,
    /// Table associativity (paper: 16).
    pub assoc: u64,
    /// Update scope (Figure 2 vs Figure 3).
    pub scope: UpdateScope,
    /// Cache lines covered per table entry (power of two). `1` is the
    /// paper's evaluated design; larger values implement the §7
    /// future-work idea of letting "each entry in the table serve
    /// multiple cache lines, reducing the size of each entry and
    /// providing greater coverage at the risk of increased prediction
    /// errors".
    pub granularity: u64,
}

impl Default for WbhtConfig {
    fn default() -> Self {
        WbhtConfig {
            entries: 32 * 1024,
            assoc: 16,
            scope: UpdateScope::Local,
            granularity: 1,
        }
    }
}

/// WBHT decision statistics (Table 4's columns).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WbhtStats {
    /// Filtering decisions taken while the retry switch was engaged.
    pub decisions: u64,
    /// Decisions that aborted the clean write-back.
    pub aborted: u64,
    /// Decisions the oracle judged correct ("WBHT Correct" in Table 4:
    /// abort was correct iff the line was in the L3; write-back was
    /// correct iff it was not).
    pub correct: u64,
    /// Entry allocations.
    pub allocated: u64,
}

impl WbhtStats {
    /// Fraction of decisions judged correct by the L3-peek oracle.
    pub fn correct_rate(&self) -> f64 {
        if self.decisions == 0 {
            0.0
        } else {
            self.correct as f64 / self.decisions as f64
        }
    }

    /// Fraction of decisions that aborted the write-back.
    pub fn abort_rate(&self) -> f64 {
        if self.decisions == 0 {
            0.0
        } else {
            self.aborted as f64 / self.decisions as f64
        }
    }
}

/// One L2's Write-Back History Table.
///
/// A cache-organized tag table remembering lines whose clean write-back
/// the L3 squashed as redundant. On the next clean victimization of such
/// a line the write-back is aborted entirely — no address-ring
/// transaction, no snoops, no L3 queue occupancy. "Note that an
/// incorrect decision only affects performance, not correctness" (§1).
///
/// # Example
///
/// ```
/// use cmp_adaptive_wb::policy::{Wbht, WbhtConfig};
/// use cmpsim_cache::LineAddr;
///
/// let mut wbht = Wbht::new(WbhtConfig { entries: 1024, ..Default::default() })?;
/// let line = LineAddr::new(7);
/// assert!(!wbht.should_abort(0, line, /* engaged= */ true, /* in_l3= */ false));
/// wbht.note_redundant(10, line);
/// assert!(wbht.should_abort(20, line, true, true));
/// # Ok::<(), cmpsim_cache::GeometryError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Wbht {
    table: HistoryTable<()>,
    cfg: WbhtConfig,
    stats: WbhtStats,
    telemetry: Telemetry,
    owner: u32,
}

impl Wbht {
    /// Creates a WBHT.
    ///
    /// # Errors
    ///
    /// Returns [`GeometryError`] for invalid entry/associativity shapes
    /// or a non-power-of-two granularity.
    pub fn new(cfg: WbhtConfig) -> Result<Self, GeometryError> {
        if cfg.granularity == 0 || !cfg.granularity.is_power_of_two() {
            return Err(GeometryError::NotPowerOfTwo(
                "wbht granularity",
                cfg.granularity,
            ));
        }
        Ok(Wbht {
            table: HistoryTable::new(cfg.entries, cfg.assoc)?,
            cfg,
            stats: WbhtStats::default(),
            telemetry: Telemetry::disabled(),
            owner: 0,
        })
    }

    /// Attaches an event-trace handle; `owner` is the id of the L2 slice
    /// this table belongs to (stamped on every emitted event).
    pub fn attach_telemetry(&mut self, telemetry: Telemetry, owner: u32) {
        self.telemetry = telemetry;
        self.owner = owner;
    }

    /// Maps a line to its covering table tag (granularity > 1 folds
    /// neighbouring lines onto one entry).
    fn tag_of(&self, line: LineAddr) -> LineAddr {
        LineAddr::new(line.raw() >> self.cfg.granularity.trailing_zeros())
    }

    /// The configuration.
    pub fn config(&self) -> WbhtConfig {
        self.cfg
    }

    /// Decides whether a clean write-back of `line` should be aborted.
    ///
    /// `engaged` is the retry switch state: when disengaged the table is
    /// still *consulted* (to keep LRU state realistic) but the write-back
    /// always proceeds and no decision is recorded. `in_l3` is the
    /// oracle's ground truth, used only for the Table 4 "WBHT Correct"
    /// statistic. `now` stamps the emitted trace events.
    pub fn should_abort(&mut self, now: Cycle, line: LineAddr, engaged: bool, in_l3: bool) -> bool {
        let tag = self.tag_of(line);
        let hit = self.table.lookup(tag).is_some();
        if !engaged {
            return false;
        }
        self.stats.decisions += 1;
        let correct = if hit {
            self.stats.aborted += 1;
            if in_l3 {
                self.stats.correct += 1;
            }
            in_l3
        } else {
            if !in_l3 {
                self.stats.correct += 1;
            }
            !in_l3
        };
        let owner = self.owner;
        self.telemetry.emit(now, || SimEvent::WbhtPredict {
            l2: owner,
            line: line.raw(),
            engaged,
            abort: hit,
            correct,
        });
        if !correct {
            self.telemetry.emit(now, || SimEvent::WbhtMispredict {
                l2: owner,
                line: line.raw(),
                abort: hit,
            });
        }
        hit
    }

    /// Records that the L3 reported `line` already valid on a clean
    /// write-back (combined-response step 3 of §2): allocates an entry.
    pub fn note_redundant(&mut self, now: Cycle, line: LineAddr) {
        let tag = self.tag_of(line);
        self.table.record(tag, ());
        self.stats.allocated += 1;
        let owner = self.owner;
        self.telemetry.emit(now, || SimEvent::WbhtAllocate {
            l2: owner,
            line: line.raw(),
        });
    }

    /// Pure peek: does the table currently cover `line`? No recency or
    /// statistics side effects — used by the history-aware replacement
    /// extension (§7: "new replacement algorithms that take into account
    /// information contained in the history tables").
    pub fn knows(&self, line: LineAddr) -> bool {
        let tag = self.tag_of(line);
        self.table.peek(tag).is_some()
    }

    /// Decision statistics.
    pub fn stats(&self) -> WbhtStats {
        self.stats
    }

    /// Entries currently valid (for occupancy diagnostics).
    pub fn occupancy(&self) -> u64 {
        self.table.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wbht() -> Wbht {
        Wbht::new(WbhtConfig {
            entries: 64,
            assoc: 4,
            scope: UpdateScope::Local,
            granularity: 1,
        })
        .unwrap()
    }

    #[test]
    fn unknown_line_writes_back() {
        let mut w = wbht();
        assert!(!w.should_abort(0, LineAddr::new(1), true, false));
        assert_eq!(w.stats().decisions, 1);
        assert_eq!(w.stats().aborted, 0);
        assert_eq!(w.stats().correct, 1); // not in L3, wrote back: correct
    }

    #[test]
    fn known_line_aborts() {
        let mut w = wbht();
        w.note_redundant(0, LineAddr::new(1));
        assert!(w.should_abort(0, LineAddr::new(1), true, true));
        assert_eq!(w.stats().aborted, 1);
        assert_eq!(w.stats().correct, 1);
    }

    #[test]
    fn disengaged_never_aborts_or_counts() {
        let mut w = wbht();
        w.note_redundant(0, LineAddr::new(1));
        assert!(!w.should_abort(0, LineAddr::new(1), false, true));
        assert_eq!(w.stats().decisions, 0);
    }

    #[test]
    fn oracle_scores_mispredictions() {
        let mut w = wbht();
        // Abort but line NOT in L3 (stale entry): incorrect.
        w.note_redundant(0, LineAddr::new(2));
        assert!(w.should_abort(0, LineAddr::new(2), true, false));
        // Write back but line IS in L3 (entry aged out): incorrect.
        assert!(!w.should_abort(0, LineAddr::new(3), true, true));
        assert_eq!(w.stats().decisions, 2);
        assert_eq!(w.stats().correct, 0);
        assert_eq!(w.stats().correct_rate(), 0.0);
    }

    #[test]
    fn entries_age_out() {
        let mut w = Wbht::new(WbhtConfig {
            entries: 4,
            assoc: 2,
            scope: UpdateScope::Local,
            granularity: 1,
        })
        .unwrap();
        // Fill one set (lines with same parity collide in a 2-set table).
        w.note_redundant(0, LineAddr::new(0));
        w.note_redundant(0, LineAddr::new(2));
        w.note_redundant(0, LineAddr::new(4)); // evicts 0
        assert!(!w.should_abort(0, LineAddr::new(0), true, true));
        assert!(w.should_abort(0, LineAddr::new(4), true, true));
    }

    #[test]
    fn stats_rates() {
        let mut w = wbht();
        w.note_redundant(0, LineAddr::new(8));
        w.should_abort(0, LineAddr::new(8), true, true); // abort, correct
        w.should_abort(0, LineAddr::new(9), true, true); // wb, incorrect
        assert!((w.stats().correct_rate() - 0.5).abs() < 1e-12);
        assert!((w.stats().abort_rate() - 0.5).abs() < 1e-12);
        assert_eq!(w.occupancy(), 1);
    }

    #[test]
    fn paper_geometry_constructs() {
        let w = Wbht::new(WbhtConfig::default()).unwrap();
        assert_eq!(w.config().entries, 32 * 1024);
        assert_eq!(w.config().assoc, 16);
        assert_eq!(w.config().granularity, 1);
    }

    #[test]
    fn coarse_granularity_covers_neighbours() {
        // §7 future work: one entry serves 4 consecutive lines.
        let mut w = Wbht::new(WbhtConfig {
            entries: 64,
            assoc: 4,
            scope: UpdateScope::Local,
            granularity: 4,
        })
        .unwrap();
        w.note_redundant(0, LineAddr::new(100)); // covers lines 100..104
        assert!(w.should_abort(0, LineAddr::new(101), true, true));
        assert!(w.should_abort(0, LineAddr::new(103), true, true));
        assert!(!w.should_abort(0, LineAddr::new(104), true, false));
        // Coverage at the cost of errors: a never-written-back
        // neighbour also aborts (incorrect if not in the L3).
        assert!(w.should_abort(0, LineAddr::new(102), true, false));
        assert!(w.stats().correct < w.stats().decisions);
    }

    #[test]
    fn knows_is_side_effect_free() {
        let mut w = wbht();
        w.note_redundant(0, LineAddr::new(5));
        assert!(w.knows(LineAddr::new(5)));
        assert!(!w.knows(LineAddr::new(6)));
        assert_eq!(w.stats().decisions, 0);
    }

    #[test]
    fn telemetry_traces_predicts_and_allocates() {
        use cmpsim_engine::telemetry::{SimEvent, Telemetry};

        let (t, sink) = Telemetry::with_vec_sink();
        let mut w = wbht();
        w.attach_telemetry(t, 3);
        w.note_redundant(10, LineAddr::new(1));
        w.should_abort(20, LineAddr::new(1), true, true); // abort, correct
        w.should_abort(30, LineAddr::new(2), true, true); // wb, incorrect
        w.should_abort(40, LineAddr::new(2), false, true); // disengaged: no event
        let sink = sink.lock().unwrap();
        let kinds: Vec<&str> = sink.events().iter().map(|(_, e)| e.kind()).collect();
        assert_eq!(
            kinds,
            [
                "wbht_allocate",
                "wbht_predict",
                "wbht_predict",
                "wbht_mispredict"
            ]
        );
        match &sink.events()[1] {
            (
                20,
                SimEvent::WbhtPredict {
                    l2, abort, correct, ..
                },
            ) => {
                assert_eq!(*l2, 3);
                assert!(*abort && *correct);
            }
            other => panic!("unexpected event {other:?}"),
        }
    }

    #[test]
    fn granularity_must_be_power_of_two() {
        assert!(Wbht::new(WbhtConfig {
            granularity: 3,
            ..Default::default()
        })
        .is_err());
        assert!(Wbht::new(WbhtConfig {
            granularity: 0,
            ..Default::default()
        })
        .is_err());
    }
}
