//! The pluggable policy framework: the [`CachePolicy`] trait and the
//! [`PolicyStack`] the system dispatches through.
//!
//! Each adaptive mechanism (WBHT, snarf, reuse-distance copy-back,
//! hybrid update/invalidate) implements [`CachePolicy`] and plugs into
//! a [`PolicyStack`] owned by the `System`. The pipeline stages call
//! fixed hook points on the stack instead of reaching into concrete
//! mechanism state, so policies compose freely and new ones ride along
//! without touching the pipeline.
//!
//! # Hook points and ordering guarantees
//!
//! | Hook                        | Pipeline stage (caller)               |
//! |-----------------------------|---------------------------------------|
//! | `on_castout_candidate`      | `castout::handle_wb_drain`, clean victims only, after the retry-switch gate is sampled and the L3 presence peek is taken |
//! | `on_castout_issued`         | `castout::bus_issue_castout`, first attempt only, before the castout telemetry event |
//! | `snarf_eligible`            | `castout::handle_wb_drain`, after the abort decision allowed the write-back |
//! | `on_snarf_arbitration`      | `castout::bus_issue_castout`, at combine time, before audit allow-resolution |
//! | `observe_combined_response` | `bus_issue::apply_read`, after write-back-reuse accounting, before the install matrix |
//! | `note_redundant_copy_back`  | `castout` squash paths (shared and private L3), at combine time |
//! | `on_store_to_shared`        | `frontend::process_reference`, stores hitting non-writable lines, before the Upgrade is issued |
//! | `knows_line`                | `fill` victim selection (history-aware replacement) |
//!
//! Policies are consulted in stack order (WBHT, reuse-distance,
//! snarf, hybrid); the first abort/update verdict short-circuits.
//! Decision lineage: the `System` records every castout verdict and
//! coherence action with the decision-audit layer, so plugged-in
//! policies inherit abort-precision/useful-snarf-style outcome
//! tracking without audit-specific code of their own.

use std::any::Any;

use cmpsim_cache::{GeometryError, InsertPosition, LineAddr};
use cmpsim_coherence::L2Id;
use cmpsim_engine::telemetry::Telemetry;
use cmpsim_engine::Cycle;

use super::hybrid::{CoherenceAction, HybridStats, HybridUpdateInvalidate};
use super::rdcb::{RdcbStats, ReuseDistanceCopyBack};
use super::retry_switch::{RetrySwitch, RetrySwitchConfig};
use super::snarf::{SnarfStats, SnarfTable};
use super::wbht::{UpdateScope, Wbht, WbhtStats};
use super::PolicyConfig;

/// What a policy participates in; the union across a stack lets the
/// pipeline skip whole hook sites (and their context computation) when
/// no plugged-in policy cares, keeping the baseline path byte-identical
/// to a build without the framework.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PolicyCaps {
    /// Consulted on clean castout candidates (may veto the write-back).
    pub filters_clean_castouts: bool,
    /// The castout-candidate gate samples the retry-rate switch.
    pub uses_retry_switch: bool,
    /// Participates in castout snarfing (reuse table + placement).
    pub snarfs_castouts: bool,
    /// Decides update-vs-invalidate on stores to shared lines.
    pub adapts_coherence: bool,
    /// Supplies line-history knowledge to victim selection.
    pub knows_lines: bool,
}

impl PolicyCaps {
    fn union(self, other: PolicyCaps) -> PolicyCaps {
        PolicyCaps {
            filters_clean_castouts: self.filters_clean_castouts || other.filters_clean_castouts,
            uses_retry_switch: self.uses_retry_switch || other.uses_retry_switch,
            snarfs_castouts: self.snarfs_castouts || other.snarfs_castouts,
            adapts_coherence: self.adapts_coherence || other.adapts_coherence,
            knows_lines: self.knows_lines || other.knows_lines,
        }
    }
}

/// Context for a clean castout candidate about to drain from a WBQ.
#[derive(Debug, Clone, Copy)]
pub struct CastoutCtx {
    /// Drain time.
    pub now: Cycle,
    /// The evicting L2.
    pub l2: usize,
    /// The clean victim line.
    pub line: LineAddr,
    /// Retry-rate switch state at `now` (`true` when no stacked policy
    /// uses the switch).
    pub engaged: bool,
    /// Whether the L3 (shared or this L2's private slice) already holds
    /// the line.
    pub in_l3: bool,
}

/// Verdict for a castout candidate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CastoutDecision {
    /// Let the write-back proceed.
    Allow,
    /// Drop the clean victim without writing it back.
    Abort,
}

/// Context for a combined read/read-exclusive response (a miss that is
/// about to fill).
#[derive(Debug, Clone, Copy)]
pub struct ResponseCtx {
    /// Combine time.
    pub now: Cycle,
    /// The requesting L2.
    pub l2: usize,
    /// The missing line.
    pub line: LineAddr,
}

/// A pluggable adaptive cache-management policy.
///
/// Every hook has a no-op default so a policy only implements the
/// stages it participates in; [`CachePolicy::caps`] must advertise
/// exactly those stages (the stack trusts it to skip hook sites).
pub trait CachePolicy {
    /// Short stable name (used in labels and reports).
    fn name(&self) -> &'static str;

    /// The pipeline stages this policy participates in.
    fn caps(&self) -> PolicyCaps;

    /// Attaches an event-trace handle to the policy's internals.
    fn attach_telemetry(&mut self, _telemetry: &Telemetry) {}

    /// Clean castout candidate: allow or veto the write-back.
    fn on_castout_candidate(&mut self, _ctx: &CastoutCtx) -> CastoutDecision {
        CastoutDecision::Allow
    }

    /// A castout transaction was put on the ring (first attempt only).
    fn on_castout_issued(&mut self, _line: LineAddr) {}

    /// Should this write-back be offered to peer L2s for snarfing?
    fn snarf_eligible(&mut self, _line: LineAddr) -> bool {
        false
    }

    /// A snarf-eligible castout combined; `winner` is the accepting L2.
    fn on_snarf_arbitration(&self, _now: Cycle, _l2: u32, _line: LineAddr, _winner: Option<u32>) {}

    /// A miss for `line` by `l2` combined (the line is about to fill).
    fn observe_combined_response(&mut self, _ctx: &ResponseCtx) {}

    /// A clean write-back from `src` was squashed as redundant.
    fn note_redundant_copy_back(&mut self, _now: Cycle, _src: L2Id, _line: LineAddr) {}

    /// Does this policy's history say `l2` recently saw `line`?
    fn knows_line(&self, _l2: usize, _line: LineAddr) -> bool {
        false
    }

    /// Insert position for lines this policy places into peers.
    fn snarf_insert_pos(&self) -> Option<InsertPosition> {
        None
    }

    /// Store hit a non-writable (shared) line: update or invalidate?
    fn on_store_to_shared(&mut self, _now: Cycle, _line: LineAddr) -> Option<CoherenceAction> {
        None
    }

    /// Downcast access for concrete-stats reporting.
    fn as_any(&self) -> &dyn Any;
}

/// The write-back history table as a plugged-in policy (one table per
/// L2, scope-aware redundancy updates, gated by the retry-rate switch).
pub struct WbhtPolicy {
    tables: Vec<Wbht>,
    scope: UpdateScope,
}

impl CachePolicy for WbhtPolicy {
    fn name(&self) -> &'static str {
        "wbht"
    }

    fn caps(&self) -> PolicyCaps {
        PolicyCaps {
            filters_clean_castouts: true,
            uses_retry_switch: true,
            knows_lines: true,
            ..Default::default()
        }
    }

    fn attach_telemetry(&mut self, telemetry: &Telemetry) {
        for (i, w) in self.tables.iter_mut().enumerate() {
            w.attach_telemetry(telemetry.clone(), i as u32);
        }
    }

    fn on_castout_candidate(&mut self, ctx: &CastoutCtx) -> CastoutDecision {
        if self.tables[ctx.l2].should_abort(ctx.now, ctx.line, ctx.engaged, ctx.in_l3) {
            CastoutDecision::Abort
        } else {
            CastoutDecision::Allow
        }
    }

    fn note_redundant_copy_back(&mut self, now: Cycle, src: L2Id, line: LineAddr) {
        match self.scope {
            UpdateScope::Local => self.tables[src.index()].note_redundant(now, line),
            UpdateScope::Global => {
                for w in &mut self.tables {
                    w.note_redundant(now, line);
                }
            }
        }
    }

    fn knows_line(&self, l2: usize, line: LineAddr) -> bool {
        self.tables[l2].knows(line)
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// The snarf mechanism as a plugged-in policy (chip-wide reuse table
/// plus the peer-placement insert position).
pub struct SnarfPolicy {
    table: SnarfTable,
    insert_pos: InsertPosition,
}

impl CachePolicy for SnarfPolicy {
    fn name(&self) -> &'static str {
        "snarf"
    }

    fn caps(&self) -> PolicyCaps {
        PolicyCaps {
            snarfs_castouts: true,
            ..Default::default()
        }
    }

    fn attach_telemetry(&mut self, telemetry: &Telemetry) {
        self.table.attach_telemetry(telemetry.clone());
    }

    fn on_castout_issued(&mut self, line: LineAddr) {
        self.table.observe_writeback(line);
    }

    fn snarf_eligible(&mut self, line: LineAddr) -> bool {
        self.table.check_eligible(line)
    }

    fn on_snarf_arbitration(&self, now: Cycle, l2: u32, line: LineAddr, winner: Option<u32>) {
        self.table.record_arbitration(now, l2, line, winner);
    }

    fn observe_combined_response(&mut self, ctx: &ResponseCtx) {
        self.table.observe_miss(ctx.line);
    }

    fn snarf_insert_pos(&self) -> Option<InsertPosition> {
        Some(self.insert_pos)
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// Reuse-distance copy-back as a plugged-in policy (one sampled
/// predictor per L2).
pub struct RdcbPolicy {
    predictors: Vec<ReuseDistanceCopyBack>,
}

impl CachePolicy for RdcbPolicy {
    fn name(&self) -> &'static str {
        "rdcb"
    }

    fn caps(&self) -> PolicyCaps {
        PolicyCaps {
            filters_clean_castouts: true,
            ..Default::default()
        }
    }

    fn on_castout_candidate(&mut self, ctx: &CastoutCtx) -> CastoutDecision {
        if self.predictors[ctx.l2].should_abort(ctx.line) {
            CastoutDecision::Abort
        } else {
            CastoutDecision::Allow
        }
    }

    fn observe_combined_response(&mut self, ctx: &ResponseCtx) {
        self.predictors[ctx.l2].observe_miss(ctx.line);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// Hybrid update/invalidate as a plugged-in policy (chip-wide mode
/// table).
pub struct HybridPolicy {
    dir: HybridUpdateInvalidate,
}

impl CachePolicy for HybridPolicy {
    fn name(&self) -> &'static str {
        "hybrid"
    }

    fn caps(&self) -> PolicyCaps {
        PolicyCaps {
            adapts_coherence: true,
            ..Default::default()
        }
    }

    fn observe_combined_response(&mut self, ctx: &ResponseCtx) {
        self.dir.observe_miss(ctx.now, ctx.line);
    }

    fn on_store_to_shared(&mut self, now: Cycle, line: LineAddr) -> Option<CoherenceAction> {
        Some(self.dir.on_store_to_shared(now, line))
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// The ordered set of plugged-in policies the `System` dispatches
/// through, plus the shared retry-rate switch they may consult.
///
/// Hook methods mirror [`CachePolicy`]; the stack consults policies in
/// order and short-circuits on the first decisive verdict. Capability
/// queries ([`PolicyStack::caps`]) let hot paths skip hook sites whose
/// context (retry-switch state, L3 presence) would otherwise have to be
/// computed.
pub struct PolicyStack {
    policies: Vec<Box<dyn CachePolicy + Send>>,
    retry_switch: RetrySwitch,
    caps: PolicyCaps,
}

impl std::fmt::Debug for PolicyStack {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PolicyStack")
            .field(
                "policies",
                &self.policies.iter().map(|p| p.name()).collect::<Vec<_>>(),
            )
            .field("caps", &self.caps)
            .finish_non_exhaustive()
    }
}

impl PolicyStack {
    /// Builds the stack for a policy configuration: one plugged-in
    /// policy per configured mechanism, in canonical order (WBHT,
    /// reuse-distance, snarf, hybrid).
    pub fn new(
        cfg: &PolicyConfig,
        num_l2: usize,
        retry: RetrySwitchConfig,
    ) -> Result<Self, GeometryError> {
        let mut policies: Vec<Box<dyn CachePolicy + Send>> = Vec::new();
        if let Some(w) = cfg.wbht {
            let tables = (0..num_l2)
                .map(|_| Wbht::new(w))
                .collect::<Result<_, _>>()?;
            policies.push(Box::new(WbhtPolicy {
                tables,
                scope: w.scope,
            }));
        }
        if let Some(r) = cfg.rdcb {
            let predictors = (0..num_l2)
                .map(|_| ReuseDistanceCopyBack::new(r))
                .collect::<Result<_, _>>()?;
            policies.push(Box::new(RdcbPolicy { predictors }));
        }
        if let Some(s) = cfg.snarf {
            policies.push(Box::new(SnarfPolicy {
                table: SnarfTable::new(s)?,
                insert_pos: s.insert_pos,
            }));
        }
        if let Some(h) = cfg.hybrid {
            policies.push(Box::new(HybridPolicy {
                dir: HybridUpdateInvalidate::new(h)?,
            }));
        }
        let caps = policies
            .iter()
            .fold(PolicyCaps::default(), |acc, p| acc.union(p.caps()));
        Ok(PolicyStack {
            policies,
            retry_switch: RetrySwitch::new(retry),
            caps,
        })
    }

    /// The union of the stacked policies' capabilities.
    pub fn caps(&self) -> PolicyCaps {
        self.caps
    }

    /// Replaces the retry-rate switch configuration (testing knob).
    pub fn set_retry_switch(&mut self, cfg: RetrySwitchConfig) {
        self.retry_switch = RetrySwitch::new(cfg);
    }

    /// Attaches an event-trace handle to the switch and every policy.
    pub fn attach_telemetry(&mut self, telemetry: &Telemetry) {
        self.retry_switch.attach_telemetry(telemetry.clone());
        for p in &mut self.policies {
            p.attach_telemetry(telemetry);
        }
    }

    /// Records one bus retry (feeds the retry-rate switch).
    #[inline]
    pub fn record_retry(&mut self, now: Cycle) {
        self.retry_switch.record_retry(now);
    }

    /// (engaged windows, total completed windows) of the retry switch.
    pub fn retry_window_counts(&self) -> (u64, u64) {
        self.retry_switch.window_counts()
    }

    /// Samples the retry-rate switch for a castout-candidate gate:
    /// `true` when no stacked policy uses the switch (the gate is then
    /// unconditional for the policies that do filter).
    #[inline]
    pub fn castout_gate_engaged(&mut self, now: Cycle) -> bool {
        if self.caps.uses_retry_switch {
            self.retry_switch.engaged(now)
        } else {
            true
        }
    }

    /// Consults the filtering policies on a clean castout candidate;
    /// the first veto wins.
    #[inline]
    pub fn on_castout_candidate(&mut self, ctx: &CastoutCtx) -> CastoutDecision {
        for p in &mut self.policies {
            if p.caps().filters_clean_castouts
                && p.on_castout_candidate(ctx) == CastoutDecision::Abort
            {
                return CastoutDecision::Abort;
            }
        }
        CastoutDecision::Allow
    }

    /// A castout hit the ring (first attempt).
    #[inline]
    pub fn on_castout_issued(&mut self, line: LineAddr) {
        for p in &mut self.policies {
            p.on_castout_issued(line);
        }
    }

    /// Should this write-back be offered for snarfing?
    #[inline]
    pub fn snarf_eligible(&mut self, line: LineAddr) -> bool {
        self.policies.iter_mut().any(|p| p.snarf_eligible(line))
    }

    /// A snarf-eligible castout combined.
    #[inline]
    pub fn on_snarf_arbitration(&self, now: Cycle, l2: u32, line: LineAddr, winner: Option<u32>) {
        for p in &self.policies {
            p.on_snarf_arbitration(now, l2, line, winner);
        }
    }

    /// A miss combined and is about to fill.
    #[inline]
    pub fn observe_combined_response(&mut self, ctx: &ResponseCtx) {
        for p in &mut self.policies {
            p.observe_combined_response(ctx);
        }
    }

    /// A clean write-back was squashed as redundant.
    #[inline]
    pub fn note_redundant_copy_back(&mut self, now: Cycle, src: L2Id, line: LineAddr) {
        for p in &mut self.policies {
            p.note_redundant_copy_back(now, src, line);
        }
    }

    /// Does any stacked policy's history know `line` at `l2`?
    #[inline]
    pub fn knows_line(&self, l2: usize, line: LineAddr) -> bool {
        self.policies.iter().any(|p| p.knows_line(l2, line))
    }

    /// Insert position for snarfed lines (MRU when no policy placed).
    pub fn snarf_insert_pos(&self) -> InsertPosition {
        self.policies
            .iter()
            .find_map(|p| p.snarf_insert_pos())
            .unwrap_or(InsertPosition::Mru)
    }

    /// Update-vs-invalidate verdict for a store to a shared line; the
    /// base protocol (invalidate) applies when no policy decides.
    #[inline]
    pub fn on_store_to_shared(&mut self, now: Cycle, line: LineAddr) -> CoherenceAction {
        for p in &mut self.policies {
            if let Some(action) = p.on_store_to_shared(now, line) {
                return action;
            }
        }
        CoherenceAction::Invalidate
    }

    fn find<P: 'static>(&self) -> Option<&P> {
        self.policies.iter().find_map(|p| p.as_any().downcast_ref())
    }

    /// Merged WBHT counters across the per-L2 tables (all-zero when the
    /// WBHT is not stacked, matching the hard-wired reporting).
    pub fn wbht_stats(&self) -> WbhtStats {
        let mut merged = WbhtStats::default();
        if let Some(w) = self.find::<WbhtPolicy>() {
            for t in &w.tables {
                let s = t.stats();
                merged.decisions += s.decisions;
                merged.aborted += s.aborted;
                merged.correct += s.correct;
                merged.allocated += s.allocated;
            }
        }
        merged
    }

    /// Snarf reuse-table counters, when the snarf policy is stacked.
    pub fn snarf_stats(&self) -> Option<SnarfStats> {
        self.find::<SnarfPolicy>().map(|s| s.table.stats())
    }

    /// Merged reuse-distance predictor counters, when stacked.
    pub fn rdcb_stats(&self) -> Option<RdcbStats> {
        self.find::<RdcbPolicy>().map(|r| {
            let mut merged = RdcbStats::default();
            for p in &r.predictors {
                let s = p.stats();
                merged.decisions += s.decisions;
                merged.aborted += s.aborted;
                merged.trained += s.trained;
                merged.unknown += s.unknown;
            }
            merged
        })
    }

    /// Hybrid update/invalidate counters, when stacked.
    pub fn hybrid_stats(&self) -> Option<HybridStats> {
        self.find::<HybridPolicy>().map(|h| h.dir.stats())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{HybridConfig, RdcbConfig, SnarfConfig, WbhtConfig};

    fn line(raw: u64) -> LineAddr {
        LineAddr::new(raw)
    }

    fn stack(cfg: PolicyConfig) -> PolicyStack {
        PolicyStack::new(&cfg, 4, RetrySwitchConfig::default()).unwrap()
    }

    #[test]
    fn baseline_stack_has_no_capabilities() {
        let s = stack(PolicyConfig::baseline());
        assert_eq!(s.caps(), PolicyCaps::default());
        assert_eq!(s.wbht_stats(), WbhtStats::default());
        assert!(s.snarf_stats().is_none());
        assert!(s.rdcb_stats().is_none());
        assert!(s.hybrid_stats().is_none());
    }

    #[test]
    fn caps_union_matches_configuration() {
        let s = stack(PolicyConfig::combined_paper());
        assert!(s.caps().filters_clean_castouts);
        assert!(s.caps().uses_retry_switch);
        assert!(s.caps().snarfs_castouts);
        assert!(!s.caps().adapts_coherence);

        let s = stack(PolicyConfig::rdcb(RdcbConfig::default()));
        assert!(s.caps().filters_clean_castouts);
        assert!(
            !s.caps().uses_retry_switch,
            "rdcb must not gate on the switch"
        );

        let s = stack(PolicyConfig::hybrid(HybridConfig::default()));
        assert!(s.caps().adapts_coherence);
        assert!(!s.caps().filters_clean_castouts);
    }

    #[test]
    fn rdcb_vetoes_through_the_stack() {
        let mut s = stack(PolicyConfig::rdcb(RdcbConfig {
            entries: 256,
            assoc: 4,
            sample_shift: 0,
            max_distance: 2,
        }));
        // Train a distance of 8 on L2 0 (above the bound of 2).
        s.observe_combined_response(&ResponseCtx {
            now: 0,
            l2: 0,
            line: line(1),
        });
        for k in 0..7 {
            s.observe_combined_response(&ResponseCtx {
                now: 0,
                l2: 0,
                line: line(100 + k),
            });
        }
        s.observe_combined_response(&ResponseCtx {
            now: 0,
            l2: 0,
            line: line(1),
        });
        let ctx = CastoutCtx {
            now: 10,
            l2: 0,
            line: line(1),
            engaged: true,
            in_l3: false,
        };
        assert_eq!(s.on_castout_candidate(&ctx), CastoutDecision::Abort);
        // The other L2's predictor is untrained: allow.
        let ctx = CastoutCtx { l2: 1, ..ctx };
        assert_eq!(s.on_castout_candidate(&ctx), CastoutDecision::Allow);
        assert_eq!(s.rdcb_stats().unwrap().aborted, 1);
    }

    #[test]
    fn snarf_insert_pos_defaults_to_mru() {
        let s = stack(PolicyConfig::baseline());
        assert_eq!(s.snarf_insert_pos(), InsertPosition::Mru);
        let s = stack(PolicyConfig::snarf(SnarfConfig {
            entries: 512,
            insert_pos: InsertPosition::Lru,
            ..Default::default()
        }));
        assert_eq!(s.snarf_insert_pos(), InsertPosition::Lru);
    }

    #[test]
    fn castout_gate_is_unconditional_without_the_switch() {
        let mut s = stack(PolicyConfig::rdcb(RdcbConfig::default()));
        assert!(s.castout_gate_engaged(0), "no switch user: always engaged");
        let mut s = stack(PolicyConfig::wbht(WbhtConfig::default()));
        assert!(!s.castout_gate_engaged(0), "switch starts disengaged");
    }

    #[test]
    fn composed_filters_short_circuit_on_first_veto() {
        // WBHT stacked with rdcb: an untrained rdcb never vetoes, so a
        // WBHT-known line under an engaged gate still aborts.
        let mut s = stack(PolicyConfig {
            wbht: Some(WbhtConfig {
                entries: 512,
                ..Default::default()
            }),
            rdcb: Some(RdcbConfig {
                entries: 256,
                assoc: 4,
                ..Default::default()
            }),
            ..Default::default()
        });
        s.note_redundant_copy_back(0, L2Id::new(0), line(7));
        let ctx = CastoutCtx {
            now: 10,
            l2: 0,
            line: line(7),
            engaged: true,
            in_l3: false,
        };
        assert_eq!(s.on_castout_candidate(&ctx), CastoutDecision::Abort);
        let r = s.rdcb_stats().unwrap();
        assert_eq!(r.decisions, 0, "short-circuit must skip the second filter");
    }
}
