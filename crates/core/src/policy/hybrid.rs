//! Hybrid update/invalidate coherence policy (after Dovgopol & Rosonke,
//! arXiv:1502.00101) — a protocol-level adaptive knob.
//!
//! The base protocol is write-invalidate: a store to a Shared line
//! issues an Upgrade that invalidates every peer copy. For
//! producer-consumer lines that is pessimal — each peer's next read
//! turns into a full miss. This policy keeps a per-line mode table with
//! a saturating counter: lines start in invalidate mode, and each
//! *regretted* invalidation (a peer re-reads the line within
//! [`HybridConfig::regret_window`] cycles of being invalidated) moves
//! the line toward update mode. In update mode a store to a Shared line
//! completes as a write-through-style update instead: the writer keeps
//! its (clean) Shared copy, peers keep theirs, and the store pays
//! [`HybridConfig::update_penalty`] cycles of ring/push latency. A run
//! of [`HybridConfig::demote_after_updates`] updates with no fresh
//! sharing signal decays the line back toward invalidate mode, bounding
//! the cost of wasted updates to dead sharers.
//!
//! Modelling note: updates are modelled timing-only (latency charged to
//! the issuing thread, traffic counted in [`HybridStats`]); the
//! single-writer ownership invariants of the base protocol are
//! untouched because update-mode stores never take the line Modified.

use cmpsim_cache::{GeometryError, LineAddr, WideHistoryTable};
use cmpsim_engine::Cycle;

/// Configuration of the hybrid update/invalidate mode table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HybridConfig {
    /// Mode-table entries (tagged, set-associative, chip-wide).
    pub entries: u64,
    /// Mode-table associativity.
    pub assoc: u64,
    /// A peer read within this many cycles of an invalidation counts as
    /// a regretted invalidation (the sharing signal).
    pub regret_window: Cycle,
    /// Regret count at which a line switches to update mode.
    pub promote_threshold: u8,
    /// Consecutive update-mode stores without a fresh sharing signal
    /// before the counter decays one step back toward invalidate.
    pub demote_after_updates: u8,
    /// Cycles charged to the issuing thread per update-mode store
    /// (ring round-trip pushing the new data to sharers).
    pub update_penalty: Cycle,
}

impl Default for HybridConfig {
    fn default() -> Self {
        HybridConfig {
            entries: 32 * 1024,
            assoc: 16,
            regret_window: 4_000,
            promote_threshold: 2,
            demote_after_updates: 4,
            update_penalty: 16,
        }
    }
}

/// Counters for the hybrid coherence policy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HybridStats {
    /// Stores to Shared lines that invalidated peers (invalidate mode).
    pub invalidations: u64,
    /// Stores to Shared lines completed as updates (update mode).
    pub updates: u64,
    /// Invalidations regretted by a prompt peer re-read.
    pub regretted_invalidations: u64,
    /// Lines promoted into update mode.
    pub promotions: u64,
    /// Counter decays after a run of unrewarded updates.
    pub demotions: u64,
}

/// Per-line adaptive state.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct Entry {
    /// Saturating sharing-affinity counter; at or above the promote
    /// threshold the line is in update mode.
    counter: u8,
    /// Cycle of the last invalidation broadcast for this line.
    last_invalidate: Cycle,
    /// Update-mode stores since the last sharing signal.
    updates_run: u8,
}

/// The action the coherence layer should take for a store that hit a
/// Shared line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoherenceAction {
    /// Issue the base-protocol Upgrade (invalidate peer copies).
    Invalidate,
    /// Complete the store as a write-through-style update: the writer
    /// and all peers keep their Shared copies; the store pays `penalty`
    /// extra cycles.
    Update {
        /// Extra cycles charged to the issuing thread.
        penalty: Cycle,
    },
}

/// Chip-wide hybrid update/invalidate mode table.
#[derive(Debug, Clone)]
pub struct HybridUpdateInvalidate {
    table: WideHistoryTable<Entry>,
    cfg: HybridConfig,
    stats: HybridStats,
}

impl HybridUpdateInvalidate {
    /// Builds the mode table (all lines start in invalidate mode).
    pub fn new(cfg: HybridConfig) -> Result<Self, GeometryError> {
        Ok(HybridUpdateInvalidate {
            table: WideHistoryTable::new(cfg.entries, cfg.assoc)?,
            cfg,
            stats: HybridStats::default(),
        })
    }

    /// Decides a store that hit a Shared line at time `now`.
    ///
    /// Invalidate mode records the broadcast time (arming the regret
    /// detector); update mode counts the update and decays the line
    /// back toward invalidate after a run of unrewarded updates.
    pub fn on_store_to_shared(&mut self, now: Cycle, line: LineAddr) -> CoherenceAction {
        let cfg = self.cfg;
        let mut action = CoherenceAction::Invalidate;
        let mut demoted = false;
        let known = self.table.update(line, |e| {
            if e.counter >= cfg.promote_threshold {
                e.updates_run += 1;
                if e.updates_run >= cfg.demote_after_updates {
                    e.counter -= 1;
                    e.updates_run = 0;
                    demoted = true;
                }
                action = CoherenceAction::Update {
                    penalty: cfg.update_penalty,
                };
            } else {
                e.last_invalidate = now;
            }
        });
        if !known {
            self.table.record(
                line,
                Entry {
                    counter: 0,
                    last_invalidate: now,
                    updates_run: 0,
                },
            );
        }
        match action {
            CoherenceAction::Invalidate => self.stats.invalidations += 1,
            CoherenceAction::Update { .. } => self.stats.updates += 1,
        }
        if demoted {
            self.stats.demotions += 1;
        }
        action
    }

    /// Observes a miss for `line` at time `now` (any requester): a miss
    /// shortly after an invalidation means a peer still wanted the line
    /// — a regretted invalidation, moving the line toward update mode.
    pub fn observe_miss(&mut self, now: Cycle, line: LineAddr) {
        let cfg = self.cfg;
        let mut regret = false;
        let mut promoted = false;
        self.table.update(line, |e| {
            if e.last_invalidate != 0 && now.saturating_sub(e.last_invalidate) <= cfg.regret_window
            {
                regret = true;
                e.last_invalidate = 0; // one regret per broadcast
                e.updates_run = 0;
                if e.counter < cfg.promote_threshold {
                    e.counter += 1;
                    promoted = e.counter >= cfg.promote_threshold;
                }
            }
        });
        if regret {
            self.stats.regretted_invalidations += 1;
        }
        if promoted {
            self.stats.promotions += 1;
        }
    }

    /// Is `line` currently in update mode?
    pub fn in_update_mode(&self, line: LineAddr) -> bool {
        matches!(self.table.peek(line), Some(e) if e.counter >= self.cfg.promote_threshold)
    }

    /// The configuration.
    pub fn config(&self) -> HybridConfig {
        self.cfg
    }

    /// Counters.
    pub fn stats(&self) -> HybridStats {
        self.stats
    }

    /// Valid fraction of the mode table.
    pub fn occupancy(&self) -> f64 {
        self.table.len() as f64 / self.table.capacity() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(raw: u64) -> LineAddr {
        LineAddr::new(raw)
    }

    fn hybrid() -> HybridUpdateInvalidate {
        HybridUpdateInvalidate::new(HybridConfig {
            entries: 256,
            assoc: 4,
            regret_window: 100,
            promote_threshold: 2,
            demote_after_updates: 3,
            update_penalty: 16,
        })
        .unwrap()
    }

    #[test]
    fn starts_in_invalidate_mode() {
        let mut h = hybrid();
        assert_eq!(
            h.on_store_to_shared(10, line(1)),
            CoherenceAction::Invalidate
        );
        assert!(!h.in_update_mode(line(1)));
        assert_eq!(h.stats().invalidations, 1);
    }

    #[test]
    fn regretted_invalidations_promote_to_update_mode() {
        let mut h = hybrid();
        // Two invalidate-then-prompt-reread rounds reach the threshold.
        h.on_store_to_shared(10, line(1));
        h.observe_miss(50, line(1)); // regret 1
        assert!(!h.in_update_mode(line(1)));
        h.on_store_to_shared(200, line(1));
        h.observe_miss(250, line(1)); // regret 2 -> promoted
        assert!(h.in_update_mode(line(1)));
        assert_eq!(h.stats().regretted_invalidations, 2);
        assert_eq!(h.stats().promotions, 1);
        assert_eq!(
            h.on_store_to_shared(300, line(1)),
            CoherenceAction::Update { penalty: 16 }
        );
    }

    #[test]
    fn late_rereads_are_not_regrets() {
        let mut h = hybrid();
        h.on_store_to_shared(10, line(1));
        h.observe_miss(111, line(1)); // window is 100: 101 cycles later
        assert_eq!(h.stats().regretted_invalidations, 0);
        assert!(!h.in_update_mode(line(1)));
    }

    #[test]
    fn one_regret_per_invalidation_broadcast() {
        let mut h = hybrid();
        h.on_store_to_shared(10, line(1));
        h.observe_miss(20, line(1));
        h.observe_miss(30, line(1)); // same broadcast: no second regret
        assert_eq!(h.stats().regretted_invalidations, 1);
    }

    #[test]
    fn unrewarded_update_run_decays_back_to_invalidate() {
        let mut h = hybrid();
        h.on_store_to_shared(10, line(1));
        h.observe_miss(20, line(1));
        h.on_store_to_shared(30, line(1));
        h.observe_miss(40, line(1));
        assert!(h.in_update_mode(line(1)));
        // Three updates with no fresh sharing signal decay one step,
        // dropping below the threshold.
        for t in [100, 200, 300] {
            assert!(matches!(
                h.on_store_to_shared(t, line(1)),
                CoherenceAction::Update { .. }
            ));
        }
        assert!(!h.in_update_mode(line(1)));
        assert_eq!(h.stats().demotions, 1);
        assert_eq!(h.stats().updates, 3);
        // The next store invalidates again.
        assert_eq!(
            h.on_store_to_shared(400, line(1)),
            CoherenceAction::Invalidate
        );
    }

    #[test]
    fn miss_outside_regret_window_carries_no_signal() {
        let mut h = hybrid();
        h.on_store_to_shared(10, line(1));
        h.observe_miss(20, line(1));
        h.on_store_to_shared(30, line(1));
        h.observe_miss(40, line(1)); // promoted; updates_run = 0
        h.on_store_to_shared(100, line(1)); // run 1
        h.on_store_to_shared(200, line(1)); // run 2
                                            // A miss outside any regret window carries no signal...
        h.observe_miss(300, line(1));
        // ...so the third update still decays the counter.
        h.on_store_to_shared(400, line(1));
        assert!(!h.in_update_mode(line(1)));
    }

    #[test]
    fn lines_track_modes_independently() {
        let mut h = hybrid();
        h.on_store_to_shared(10, line(1));
        h.observe_miss(20, line(1));
        h.on_store_to_shared(30, line(1));
        h.observe_miss(40, line(1));
        assert!(h.in_update_mode(line(1)));
        assert!(!h.in_update_mode(line(2)));
        assert_eq!(
            h.on_store_to_shared(50, line(2)),
            CoherenceAction::Invalidate
        );
    }
}
