//! The adaptive cache-management policies and the pluggable framework
//! they ride on.
//!
//! The paper's two mechanisms and two rivals from the related work are
//! all [`CachePolicy`] implementations dispatched through a
//! [`PolicyStack`] (see [`framework`](self)):
//!
//! * **WBHT** ([`WbhtConfig`], §2) — filters redundant clean
//!   write-backs with per-L2 history tables, gated by the retry-rate
//!   switch (§2.2);
//! * **snarf** ([`SnarfConfig`], §3) — L2-to-L2 write-back absorption
//!   driven by a chip-wide reuse table;
//! * **reuse-distance copy-back** ([`RdcbConfig`], after Wang et al.,
//!   arXiv:2105.14442) — vetoes copy-backs of clean victims predicted
//!   dead, a rival to the WBHT;
//! * **hybrid update/invalidate** ([`HybridConfig`], after Dovgopol &
//!   Rosonke, arXiv:1502.00101) — adaptively completes stores to
//!   shared lines as updates instead of invalidations.
//!
//! [`PolicyConfig`] selects any combination; the paper's configurations
//! are the [`PolicyConfig::wbht`]/[`PolicyConfig::snarf`]/
//! [`PolicyConfig::combined`] corners.

mod framework;
mod hybrid;
mod rdcb;
mod retry_switch;
mod snarf;
mod wbht;

pub use framework::{
    CachePolicy, CastoutCtx, CastoutDecision, PolicyCaps, PolicyStack, ResponseCtx,
};
pub use hybrid::{CoherenceAction, HybridConfig, HybridStats, HybridUpdateInvalidate};
pub use rdcb::{RdcbConfig, RdcbStats, ReuseDistanceCopyBack};
pub use retry_switch::{RetrySwitch, RetrySwitchConfig};
pub use snarf::{SnarfConfig, SnarfStats, SnarfTable};
pub use wbht::{UpdateScope, Wbht, WbhtConfig, WbhtStats};

/// Which adaptive mechanisms are active — a composable set (each field
/// is independent; any combination is valid). The default is the
/// baseline: every victimized line, clean and dirty, is written back
/// and peers are invalidated on stores.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PolicyConfig {
    /// Write-back history table (paper §2).
    pub wbht: Option<WbhtConfig>,
    /// L2-to-L2 snarfing (paper §3).
    pub snarf: Option<SnarfConfig>,
    /// Reuse-distance clean copy-back filtering (related work).
    pub rdcb: Option<RdcbConfig>,
    /// Hybrid update/invalidate coherence (related work).
    pub hybrid: Option<HybridConfig>,
}

impl PolicyConfig {
    /// The baseline: no adaptive mechanism.
    pub fn baseline() -> Self {
        PolicyConfig::default()
    }

    /// WBHT only.
    pub fn wbht(cfg: WbhtConfig) -> Self {
        PolicyConfig {
            wbht: Some(cfg),
            ..Default::default()
        }
    }

    /// Snarfing only.
    pub fn snarf(cfg: SnarfConfig) -> Self {
        PolicyConfig {
            snarf: Some(cfg),
            ..Default::default()
        }
    }

    /// WBHT and snarfing together (the paper's combined configuration).
    pub fn combined(wbht: WbhtConfig, snarf: SnarfConfig) -> Self {
        PolicyConfig {
            wbht: Some(wbht),
            snarf: Some(snarf),
            ..Default::default()
        }
    }

    /// Reuse-distance copy-back only.
    pub fn rdcb(cfg: RdcbConfig) -> Self {
        PolicyConfig {
            rdcb: Some(cfg),
            ..Default::default()
        }
    }

    /// Hybrid update/invalidate only.
    pub fn hybrid(cfg: HybridConfig) -> Self {
        PolicyConfig {
            hybrid: Some(cfg),
            ..Default::default()
        }
    }

    /// The paper's §5.3 combined configuration: both tables at 16K
    /// entries "to preserve the overall space requirements".
    pub fn combined_paper() -> Self {
        PolicyConfig::combined(
            WbhtConfig {
                entries: 16 * 1024,
                ..WbhtConfig::default()
            },
            SnarfConfig {
                entries: 16 * 1024,
                ..SnarfConfig::default()
            },
        )
    }

    /// Is the WBHT active?
    pub fn has_wbht(&self) -> bool {
        self.wbht.is_some()
    }

    /// Is snarfing active?
    pub fn has_snarf(&self) -> bool {
        self.snarf.is_some()
    }

    /// Is reuse-distance copy-back active?
    pub fn has_rdcb(&self) -> bool {
        self.rdcb.is_some()
    }

    /// Is hybrid update/invalidate active?
    pub fn has_hybrid(&self) -> bool {
        self.hybrid.is_some()
    }

    /// A short policy label for reports. The paper's four corners keep
    /// their historical names; other combinations join the active
    /// mechanisms with `+` in canonical order.
    pub fn label(&self) -> &'static str {
        match (
            self.has_wbht(),
            self.has_snarf(),
            self.has_rdcb(),
            self.has_hybrid(),
        ) {
            (false, false, false, false) => "baseline",
            (true, false, false, false) => "wbht",
            (false, true, false, false) => "snarf",
            (true, true, false, false) => "combined",
            (false, false, true, false) => "rdcb",
            (false, false, false, true) => "hybrid",
            (true, false, true, false) => "wbht+rdcb",
            (true, false, false, true) => "wbht+hybrid",
            (false, true, true, false) => "snarf+rdcb",
            (false, true, false, true) => "snarf+hybrid",
            (false, false, true, true) => "rdcb+hybrid",
            (true, true, true, false) => "wbht+snarf+rdcb",
            (true, true, false, true) => "wbht+snarf+hybrid",
            (true, false, true, true) => "wbht+rdcb+hybrid",
            (false, true, true, true) => "snarf+rdcb+hybrid",
            (true, true, true, true) => "wbht+snarf+rdcb+hybrid",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels() {
        assert_eq!(PolicyConfig::baseline().label(), "baseline");
        assert_eq!(PolicyConfig::wbht(WbhtConfig::default()).label(), "wbht");
        assert_eq!(PolicyConfig::snarf(SnarfConfig::default()).label(), "snarf");
        assert_eq!(PolicyConfig::combined_paper().label(), "combined");
        assert_eq!(PolicyConfig::rdcb(RdcbConfig::default()).label(), "rdcb");
        assert_eq!(
            PolicyConfig::hybrid(HybridConfig::default()).label(),
            "hybrid"
        );
        let mix = PolicyConfig {
            snarf: Some(SnarfConfig::default()),
            rdcb: Some(RdcbConfig::default()),
            ..Default::default()
        };
        assert_eq!(mix.label(), "snarf+rdcb");
    }

    #[test]
    fn capability_flags() {
        assert!(!PolicyConfig::baseline().has_wbht());
        assert!(!PolicyConfig::baseline().has_snarf());
        assert!(PolicyConfig::wbht(WbhtConfig::default()).has_wbht());
        assert!(PolicyConfig::snarf(SnarfConfig::default()).has_snarf());
        assert!(PolicyConfig::rdcb(RdcbConfig::default()).has_rdcb());
        assert!(PolicyConfig::hybrid(HybridConfig::default()).has_hybrid());
        let c = PolicyConfig::combined_paper();
        assert!(c.has_wbht() && c.has_snarf());
        assert!(!c.has_rdcb() && !c.has_hybrid());
    }

    #[test]
    fn combined_paper_halves_tables() {
        let c = PolicyConfig::combined_paper();
        let (w, s) = (c.wbht.unwrap(), c.snarf.unwrap());
        assert_eq!(w.entries, 16 * 1024);
        assert_eq!(s.entries, 16 * 1024);
    }
}
