//! Write-back management policies — the paper's contribution.
//!
//! Four policies are modelled, matching §5 of the paper:
//!
//! * [`PolicyConfig::Baseline`] — every victimized line (clean and
//!   dirty) is written back toward the L3; the only filtering is the
//!   L3's own squash of clean write-backs it already holds.
//! * [`PolicyConfig::Wbht`] — adds the Write-Back History Table (§2):
//!   clean write-backs predicted redundant are aborted before touching
//!   the ring, gated by the retry-rate switch (§2.2).
//! * [`PolicyConfig::Snarf`] — adds L2-to-L2 write-back absorption (§3)
//!   driven by the reuse (snarf) table.
//! * [`PolicyConfig::Combined`] — both, with half-sized tables to keep
//!   total area constant (§5.3).

mod retry_switch;
mod snarf;
mod wbht;

pub use retry_switch::{RetrySwitch, RetrySwitchConfig};
pub use snarf::{SnarfConfig, SnarfStats, SnarfTable};
pub use wbht::{UpdateScope, Wbht, WbhtConfig, WbhtStats};

/// Which write-back policy a simulation runs.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum PolicyConfig {
    /// All victimized lines are written back toward the L3.
    #[default]
    Baseline,
    /// Selective clean write-backs via the WBHT.
    Wbht(WbhtConfig),
    /// L2-to-L2 write-back snarfing.
    Snarf(SnarfConfig),
    /// Both mechanisms together.
    Combined(WbhtConfig, SnarfConfig),
}

impl PolicyConfig {
    /// The paper's §5.3 combined configuration: both tables at 16K
    /// entries "to preserve the overall space requirements".
    pub fn combined_paper() -> Self {
        PolicyConfig::Combined(
            WbhtConfig {
                entries: 16 * 1024,
                ..WbhtConfig::default()
            },
            SnarfConfig {
                entries: 16 * 1024,
                ..SnarfConfig::default()
            },
        )
    }

    /// Does this policy include the WBHT?
    pub fn has_wbht(&self) -> bool {
        matches!(self, PolicyConfig::Wbht(_) | PolicyConfig::Combined(..))
    }

    /// Does this policy include snarfing?
    pub fn has_snarf(&self) -> bool {
        matches!(self, PolicyConfig::Snarf(_) | PolicyConfig::Combined(..))
    }

    /// Short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            PolicyConfig::Baseline => "baseline",
            PolicyConfig::Wbht(_) => "wbht",
            PolicyConfig::Snarf(_) => "snarf",
            PolicyConfig::Combined(..) => "combined",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels() {
        assert_eq!(PolicyConfig::Baseline.label(), "baseline");
        assert_eq!(PolicyConfig::Wbht(WbhtConfig::default()).label(), "wbht");
        assert_eq!(PolicyConfig::Snarf(SnarfConfig::default()).label(), "snarf");
        assert_eq!(PolicyConfig::combined_paper().label(), "combined");
    }

    #[test]
    fn capability_flags() {
        assert!(!PolicyConfig::Baseline.has_wbht());
        assert!(!PolicyConfig::Baseline.has_snarf());
        assert!(PolicyConfig::Wbht(WbhtConfig::default()).has_wbht());
        assert!(PolicyConfig::Snarf(SnarfConfig::default()).has_snarf());
        let c = PolicyConfig::combined_paper();
        assert!(c.has_wbht() && c.has_snarf());
    }

    #[test]
    fn combined_paper_halves_tables() {
        if let PolicyConfig::Combined(w, s) = PolicyConfig::combined_paper() {
            assert_eq!(w.entries, 16 * 1024);
            assert_eq!(s.entries, 16 * 1024);
        } else {
            panic!("not combined");
        }
    }
}
