//! The L2-to-L2 snarf (reuse) table (paper §3).

use cmpsim_cache::{GeometryError, HistoryTable, InsertPosition, LineAddr};
use cmpsim_engine::telemetry::{SimEvent, Telemetry};
use cmpsim_engine::Cycle;

/// Snarf mechanism configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnarfConfig {
    /// Reuse-table entries (paper default: 32K; Figure 6 sweeps
    /// 512–64K).
    pub entries: u64,
    /// Table associativity (paper: 16, like the WBHT).
    pub assoc: u64,
    /// Recency position at which a snarfed line is inserted in the
    /// recipient L2 (§3 discusses "managing the LRU information at the
    /// recipient cache to optimize the chances of such lines staying at
    /// the destination until they are reused").
    pub insert_pos: InsertPosition,
}

impl Default for SnarfConfig {
    fn default() -> Self {
        SnarfConfig {
            entries: 32 * 1024,
            assoc: 16,
            insert_pos: InsertPosition::Mru,
        }
    }
}

/// Reuse-table statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SnarfStats {
    /// Tags entered on observed write-backs.
    pub recorded: u64,
    /// Use bits set by subsequent misses.
    pub use_bits_set: u64,
    /// Castouts marked snarf-eligible.
    pub eligible: u64,
    /// Castout lookups that found no reuse history.
    pub not_eligible: u64,
}

/// The reuse table driving snarf eligibility.
///
/// "The tag for a line is entered into the table when the line is
/// written back by any L2 cache. If the line is later missed on, and the
/// line still has an entry in the table, the 'use bit' is set … When
/// such a line is written back again, the lookup table is consulted, and
/// on a hit with the reuse bit set, a special bus transaction bit is set
/// to trigger the snarf algorithm at snooping L2 caches" (§3).
///
/// Every L2 observes every bus transaction, so the per-L2 tables hold
/// identical contents; the simulator therefore keeps one logical table.
///
/// # Example
///
/// ```
/// use cmp_adaptive_wb::policy::{SnarfTable, SnarfConfig};
/// use cmpsim_cache::LineAddr;
///
/// let mut t = SnarfTable::new(SnarfConfig { entries: 256, ..Default::default() })?;
/// let line = LineAddr::new(5);
/// t.observe_writeback(line);        // first castout: tag recorded
/// assert!(!t.check_eligible(line)); // no reuse yet
/// t.observe_miss(line);             // missed on again -> use bit
/// assert!(t.check_eligible(line));  // second castout: snarf-eligible
/// # Ok::<(), cmpsim_cache::GeometryError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SnarfTable {
    table: HistoryTable<bool>,
    cfg: SnarfConfig,
    stats: SnarfStats,
    telemetry: Telemetry,
}

impl SnarfTable {
    /// Creates a reuse table.
    ///
    /// # Errors
    ///
    /// Returns [`GeometryError`] for invalid entry/associativity shapes.
    pub fn new(cfg: SnarfConfig) -> Result<Self, GeometryError> {
        Ok(SnarfTable {
            table: HistoryTable::new(cfg.entries, cfg.assoc)?,
            cfg,
            stats: SnarfStats::default(),
            telemetry: Telemetry::disabled(),
        })
    }

    /// Attaches an event-trace handle for arbitration-outcome events.
    pub fn attach_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// Records the bus-level outcome of a snarf-eligible castout: which
    /// peer (if any) won the line. Emits a
    /// [`SimEvent::SnarfArbitration`] when tracing is enabled.
    pub fn record_arbitration(&self, now: Cycle, l2: u32, line: LineAddr, winner: Option<u32>) {
        self.telemetry.emit(now, || SimEvent::SnarfArbitration {
            l2,
            line: line.raw(),
            winner,
        });
    }

    /// The configuration.
    pub fn config(&self) -> SnarfConfig {
        self.cfg
    }

    /// Observes a write-back of `line` by any L2: enters its tag with a
    /// cleared use bit (refreshing an existing entry *keeps* an already
    /// set use bit — the line keeps proving reuse).
    pub fn observe_writeback(&mut self, line: LineAddr) {
        self.stats.recorded += 1;
        match self.table.lookup(line) {
            Some(_) => {
                // Entry refreshed by lookup; keep the use bit as is.
            }
            None => self.table.record(line, false),
        }
    }

    /// Observes a demand miss on `line`: sets the use bit if the tag is
    /// still present.
    pub fn observe_miss(&mut self, line: LineAddr) {
        if self.table.update(line, |b| *b = true) {
            self.stats.use_bits_set += 1;
        }
    }

    /// Consulted when `line` is written back: snarf-eligible on a hit
    /// with the use bit set.
    pub fn check_eligible(&mut self, line: LineAddr) -> bool {
        let eligible = self.table.lookup(line) == Some(true);
        if eligible {
            self.stats.eligible += 1;
        } else {
            self.stats.not_eligible += 1;
        }
        eligible
    }

    /// Statistics.
    pub fn stats(&self) -> SnarfStats {
        self.stats
    }

    /// Valid entries (diagnostics).
    pub fn occupancy(&self) -> u64 {
        self.table.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> SnarfTable {
        SnarfTable::new(SnarfConfig {
            entries: 64,
            assoc: 4,
            insert_pos: InsertPosition::Mru,
        })
        .unwrap()
    }

    #[test]
    fn eligibility_requires_wb_then_miss() {
        let mut t = table();
        let l = LineAddr::new(9);
        assert!(!t.check_eligible(l)); // never seen
        t.observe_writeback(l);
        assert!(!t.check_eligible(l)); // no reuse observed
        t.observe_miss(l);
        assert!(t.check_eligible(l));
        assert_eq!(t.stats().eligible, 1);
        assert_eq!(t.stats().use_bits_set, 1);
    }

    #[test]
    fn miss_without_entry_is_ignored() {
        let mut t = table();
        t.observe_miss(LineAddr::new(3));
        assert_eq!(t.stats().use_bits_set, 0);
        assert!(!t.check_eligible(LineAddr::new(3)));
    }

    #[test]
    fn rewriteback_preserves_use_bit() {
        let mut t = table();
        let l = LineAddr::new(4);
        t.observe_writeback(l);
        t.observe_miss(l);
        // Written back again (this is exactly the eligible case); the
        // use bit survives the refresh.
        t.observe_writeback(l);
        assert!(t.check_eligible(l));
    }

    #[test]
    fn entries_age_out() {
        let mut t = SnarfTable::new(SnarfConfig {
            entries: 4,
            assoc: 2,
            insert_pos: InsertPosition::Mru,
        })
        .unwrap();
        let a = LineAddr::new(0);
        t.observe_writeback(a);
        t.observe_miss(a);
        // Two more same-set tags evict `a` (2-way set).
        t.observe_writeback(LineAddr::new(2));
        t.observe_writeback(LineAddr::new(4));
        assert!(!t.check_eligible(a));
    }

    #[test]
    fn stats_accumulate() {
        let mut t = table();
        t.observe_writeback(LineAddr::new(1));
        t.observe_writeback(LineAddr::new(2));
        t.check_eligible(LineAddr::new(1));
        assert_eq!(t.stats().recorded, 2);
        assert_eq!(t.stats().not_eligible, 1);
        assert_eq!(t.occupancy(), 2);
    }

    #[test]
    fn paper_geometry_constructs() {
        let t = SnarfTable::new(SnarfConfig::default()).unwrap();
        assert_eq!(t.config().entries, 32 * 1024);
    }

    #[test]
    fn telemetry_traces_arbitration_outcomes() {
        use cmpsim_engine::telemetry::{SimEvent, Telemetry};

        let (tel, sink) = Telemetry::with_vec_sink();
        let mut t = table();
        t.attach_telemetry(tel);
        t.record_arbitration(7, 1, LineAddr::new(42), Some(3));
        t.record_arbitration(9, 1, LineAddr::new(43), None);
        let sink = sink.lock().unwrap();
        assert_eq!(sink.events().len(), 2);
        match &sink.events()[0].1 {
            SimEvent::SnarfArbitration { l2, line, winner } => {
                assert_eq!((*l2, *line, *winner), (1, 42, Some(3)));
            }
            other => panic!("unexpected event {other:?}"),
        }
        assert!(sink.events()[1].1.to_json(9).contains("\"winner\":null"));
    }
}
