//! The CMP system model as a layered coherence pipeline.
//!
//! The [`System`] type in [`system`](self) is a thin orchestrator: it
//! owns all state (caches, ring, queues, policies) and the event loop,
//! and delegates every protocol phase to a focused sibling module. Each
//! phase communicates through the explicit per-transaction state type
//! [`cmpsim_coherence::TxnState`] rather than ad-hoc event payloads.
//!
//! Module map (one module per pipeline layer):
//!
//! | Module       | Layer                                                     |
//! |--------------|-----------------------------------------------------------|
//! | `system`     | Orchestrator: state, construction, event loop, dispatch   |
//! | `frontend`   | Thread issue: reference processing, L1/L2 lookup, MSHRs   |
//! | `bus_issue`  | Miss path: address-ring issue, combined-response handling |
//! | `snoop`      | Snoop window: peer/L3/memory response collection          |
//! | `castout`    | Write-back path: WBQ drain, WBHT filter, castout issue    |
//! | `fill`       | Completion: fills, snarf absorption, invalidations        |
//! | `observe`    | Telemetry wiring, statistics accessors, finalization      |
//! | `audit`      | Decision-quality lineage: verdict recording + resolution  |
//! | `audit_report` | Audit aggregation: summary rates, metrics, Chrome track |
//! | `invariants` | Typed protocol-invariant checking                         |
//! | `l1`/`l2`    | The cache units themselves                                |
//! | `thread`     | Per-thread issue state                                    |
//! | `stats`      | Counter structs                                           |

mod audit;
mod audit_report;
mod bus_issue;
mod castout;
mod fill;
mod frontend;
mod invariants;
mod l1;
mod l2;
mod observe;
mod snoop;
mod stats;
#[allow(clippy::module_inception)]
mod system;
mod thread;

pub use audit::{DecisionAudit, L2DecisionStats};
pub use audit_report::{chrome_decision_events, DecisionAuditSummary};
pub use invariants::InvariantViolation;
pub use l1::L1Cache;
pub use l2::{L2Unit, SnarfFlags};
pub use stats::{L2Stats, SnarfUsage, SystemStats, WbReuse, WbTraffic};
pub use system::{System, SystemError};
pub use thread::{Park, ThreadCtx};

/// Shared fixtures for the phase modules' unit tests.
#[cfg(test)]
pub(crate) mod testutil {
    use cmpsim_trace::{SegmentMix, WorkloadParams};

    use crate::config::SystemConfig;
    use crate::policy::PolicyConfig;
    use crate::system::System;

    /// A small 16-thread workload exercising every segment kind.
    pub(crate) fn tiny_workload() -> WorkloadParams {
        WorkloadParams {
            name: "unit".into(),
            line_bytes: 128,
            threads: 16,
            issue_interval: 1,
            mix: SegmentMix {
                private: 0.5,
                bounce: 0.2,
                rotor: 0.1,
                shared: 0.1,
                migratory: 0.05,
                streaming: 0.05,
            },
            private_lines: 64,
            private_theta: 2.0,
            private_store_frac: 0.2,
            bounce_lines: 256,
            bounce_group_threads: 4,
            bounce_cross_frac: 0.2,
            bounce_theta: 1.5,
            bounce_store_frac: 0.1,
            rotor_lines: 128,
            rotor_store_frac: 0.2,
            shared_lines: 64,
            shared_theta: 1.5,
            shared_store_frac: 0.05,
            migratory_lines: 32,
            migratory_rmw_frac: 0.8,
        }
    }

    /// A 1/16-scale system over [`tiny_workload`] with the given policy.
    pub(crate) fn system(policy: PolicyConfig) -> System {
        let mut cfg = SystemConfig::scaled(16);
        cfg.policy = policy;
        cfg.max_outstanding = 4;
        System::new(cfg, tiny_workload()).unwrap()
    }
}
