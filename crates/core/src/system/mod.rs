//! The CMP system model: threads, L1s, L2s, ring, L3, memory, and the
//! discrete-event loop that ties them together.

mod l1;
mod l2;
mod stats;
#[allow(clippy::module_inception)]
mod system;
mod thread;

pub use l1::L1Cache;
pub use l2::{L2Unit, SnarfFlags};
pub use stats::{L2Stats, SnarfUsage, SystemStats, WbReuse, WbTraffic};
pub use system::{System, SystemError};
pub use thread::{Park, ThreadCtx};
