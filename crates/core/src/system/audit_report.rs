//! Decision-audit reporting: resolved aggregates, derived rates, the
//! metrics-registry section, and the Chrome-trace counter track.
//!
//! The outcome-resolution half of the audit lives in
//! [`audit`](super::audit): the [`DecisionAudit`](super::DecisionAudit)
//! records verdicts as the pipeline makes them and resolves each one
//! when its consequence lands. This module owns everything downstream
//! of resolution — the [`DecisionAuditSummary`] snapshot, its quality
//! rates and net-cycle model, `audit_*` metrics export, and the
//! pid-9998 Chrome counter track.

use cmpsim_engine::metrics::MetricsRegistry;
use cmpsim_engine::stream::DecisionFrame;

use super::audit::L2DecisionStats;

/// Resolved decision-quality aggregates for one run.
#[derive(Debug, Clone)]
pub struct DecisionAuditSummary {
    /// Per-L2 counters.
    pub per_l2: Vec<L2DecisionStats>,
    /// Whole-machine counters (sum over L2s).
    pub totals: L2DecisionStats,
    /// Aborts classified correct only because the run ended without a
    /// re-miss (subset of `totals.aborts_correct`).
    pub unresolved_aborts: u64,
    /// Retry-switch state flips observed at decision sites.
    pub flips: u64,
    /// Retry-switch windows that ended engaged.
    pub engaged_windows: u64,
    /// Retry-switch windows completed.
    pub windows: u64,
    /// Estimated cycles saved by correct aborts.
    pub abort_credit_cycles: u64,
    /// Estimated cycles saved by useful snarfs.
    pub snarf_credit_cycles: u64,
    /// Estimated cycles charged for wasted displacing snarfs.
    pub displace_cost_cycles: u64,
    /// Stores to shared lines completed as coherence updates (hybrid
    /// update/invalidate policy; zero and unreported otherwise).
    pub coherence_updates: u64,
    /// Stores to shared lines that took the base invalidate path while
    /// a coherence-adaptive policy was auditing them.
    pub coherence_invalidations: u64,
    /// Abort verdicts per global L2 set (slice-major).
    pub heat_abort: Vec<u32>,
    /// Snarf placements per global L2 set (slice-major).
    pub heat_snarf: Vec<u32>,
}

fn rate(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

impl DecisionAuditSummary {
    /// Fraction of aborts that were correct (1.0 when none fired).
    pub fn abort_precision(&self) -> f64 {
        if self.totals.aborts == 0 {
            1.0
        } else {
            rate(self.totals.aborts_correct, self.totals.aborts)
        }
    }

    /// Fraction of snarf placements that served a hit or intervention.
    pub fn useful_snarf_rate(&self) -> f64 {
        rate(self.totals.snarfs_useful, self.totals.snarfs)
    }

    /// Coherence decisions audited (stores to shared lines seen by an
    /// adaptive coherence policy).
    pub fn coherence_decisions(&self) -> u64 {
        self.coherence_updates + self.coherence_invalidations
    }

    /// Fraction of audited coherence decisions resolved as updates.
    pub fn coherence_update_rate(&self) -> f64 {
        rate(self.coherence_updates, self.coherence_decisions())
    }

    /// Fraction of audited decisions with a definite outcome (aborts
    /// resolved + snarfs retired over all recorded; 1.0 after finalize).
    pub fn resolved_coverage(&self) -> f64 {
        let recorded = self.totals.aborts + self.totals.snarfs;
        let resolved = self.totals.aborts_correct
            + self.totals.aborts_mispredicted
            + self.totals.snarfs_useful
            + self.totals.snarfs_wasted;
        if recorded == 0 {
            1.0
        } else {
            rate(resolved, recorded)
        }
    }

    /// Net cycles saved (positive) or lost (negative) by the adaptive
    /// decisions, under the audit's first-order cost model.
    pub fn net_cycles(&self) -> i64 {
        (self.abort_credit_cycles + self.snarf_credit_cycles) as i64
            - (self.totals.mispredict_penalty_cycles + self.displace_cost_cycles) as i64
    }

    /// Registers the audit section into a metrics registry (`audit_*`
    /// names, appended after the base sections — only ever called when
    /// the audit ran, so disabled runs export byte-identical output).
    /// The coherence rows appear only when a coherence-adaptive policy
    /// recorded decisions, keeping legacy audit output unchanged.
    pub fn register_into(&self, m: &mut MetricsRegistry) {
        let t = &self.totals;
        m.set_counter("audit_wbht_decisions", t.wbht_decisions);
        m.set_counter("audit_decisions_engaged", t.decisions_engaged);
        m.set_counter("audit_decisions_disengaged", t.decisions_disengaged());
        m.set_counter("audit_aborts", t.aborts);
        m.set_counter("audit_aborts_correct", t.aborts_correct);
        m.set_counter("audit_aborts_mispredicted", t.aborts_mispredicted);
        m.set_counter("audit_aborts_unresolved", self.unresolved_aborts);
        m.set_gauge("audit_abort_precision", self.abort_precision());
        m.set_counter("audit_allows", t.allows);
        m.set_counter("audit_allows_redundant", t.allows_redundant);
        m.set_counter("audit_snarfs", t.snarfs);
        m.set_counter("audit_snarfs_useful", t.snarfs_useful);
        m.set_counter("audit_snarfs_wasted", t.snarfs_wasted);
        m.set_counter("audit_snarfs_displacing", t.snarfs_displacing);
        m.set_gauge("audit_useful_snarf_rate", self.useful_snarf_rate());
        m.set_counter("audit_abort_credit_cycles", self.abort_credit_cycles);
        m.set_counter(
            "audit_mispredict_penalty_cycles",
            t.mispredict_penalty_cycles,
        );
        m.set_counter("audit_snarf_credit_cycles", self.snarf_credit_cycles);
        m.set_counter("audit_displace_cost_cycles", self.displace_cost_cycles);
        m.set_gauge("audit_net_cycles", self.net_cycles() as f64);
        m.set_counter("audit_retry_switch_flips", self.flips);
        m.set_counter("audit_engaged_windows", self.engaged_windows);
        m.set_counter("audit_windows", self.windows);
        m.set_gauge("audit_resolved_coverage", self.resolved_coverage());
        m.set_counter("audit_heat_abort_sets", nonzero(&self.heat_abort));
        m.set_counter("audit_heat_abort_max", peak(&self.heat_abort));
        m.set_counter("audit_heat_snarf_sets", nonzero(&self.heat_snarf));
        m.set_counter("audit_heat_snarf_max", peak(&self.heat_snarf));
        if self.coherence_decisions() > 0 {
            m.set_counter("audit_coherence_updates", self.coherence_updates);
            m.set_counter(
                "audit_coherence_invalidations",
                self.coherence_invalidations,
            );
            m.set_gauge("audit_coherence_update_rate", self.coherence_update_rate());
        }
        for (i, s) in self.per_l2.iter().enumerate() {
            m.set_counter(&format!("audit_l2_{i}_decisions"), s.wbht_decisions);
            m.set_counter(&format!("audit_l2_{i}_aborts"), s.aborts);
            m.set_gauge(
                &format!("audit_l2_{i}_abort_precision"),
                if s.aborts == 0 {
                    1.0
                } else {
                    rate(s.aborts_correct, s.aborts)
                },
            );
            m.set_counter(&format!("audit_l2_{i}_snarfs"), s.snarfs);
            m.set_gauge(
                &format!("audit_l2_{i}_useful_snarf_rate"),
                rate(s.snarfs_useful, s.snarfs),
            );
        }
    }
}

pub(super) fn nonzero(heat: &[u32]) -> u64 {
    heat.iter().filter(|&&v| v > 0).count() as u64
}

pub(super) fn peak(heat: &[u32]) -> u64 {
    heat.iter().copied().max().unwrap_or(0) as u64
}

/// Renders the audit's interval history as Chrome-trace counter lines
/// (a dedicated pid-9998 "decision audit" track, mirroring the host
/// profiler's pid-9999 track) for `write_chrome_trace_with`.
pub fn chrome_decision_events(history: &[DecisionFrame]) -> Vec<String> {
    if history.is_empty() {
        return Vec::new();
    }
    let mut out = vec![
        r#"{"name":"process_name","ph":"M","pid":9998,"tid":0,"args":{"name":"decision audit"}}"#
            .to_string(),
    ];
    for f in history {
        out.push(format!(
            "{{\"name\":\"wbht outcomes\",\"ph\":\"C\",\"ts\":{},\"pid\":9998,\"tid\":0,\
             \"args\":{{\"correct\":{},\"mispredicted\":{},\"allows_redundant\":{}}}}}",
            f.cycle, f.aborts_correct, f.aborts_mispredicted, f.allows_redundant
        ));
        out.push(format!(
            "{{\"name\":\"snarf outcomes\",\"ph\":\"C\",\"ts\":{},\"pid\":9998,\"tid\":0,\
             \"args\":{{\"useful\":{},\"wasted\":{}}}}}",
            f.cycle, f.snarfs_useful, f.snarfs_wasted
        ));
        out.push(format!(
            "{{\"name\":\"wbht engaged\",\"ph\":\"C\",\"ts\":{},\"pid\":9998,\"tid\":0,\
             \"args\":{{\"engaged\":{}}}}}",
            f.cycle,
            u8::from(f.engaged)
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::super::audit::DecisionAudit;
    use super::*;
    use crate::config::SystemConfig;

    fn audit() -> DecisionAudit {
        DecisionAudit::new(&SystemConfig::scaled(16))
    }

    #[test]
    fn registry_section_and_chrome_track() {
        let mut a = audit();
        a.record_wbht_decision(0, 4, true, true);
        a.resolve_abort(4, true, 2000);
        let f = a.note_interval(5_000);
        assert_eq!(f.aborts_mispredicted, 1);
        assert!(f.engaged);
        a.finalize(1, 2);
        let mut m = MetricsRegistry::new();
        a.summary().register_into(&mut m);
        let json = m.to_json();
        assert!(json.contains("\"audit_wbht_decisions\":1"));
        assert!(json.contains("\"audit_aborts_mispredicted\":1"));
        assert!(json.contains("\"audit_abort_precision\":0.000000"));
        assert!(json.contains("\"audit_l2_0_decisions\":1"));
        // No coherence decisions recorded: the section stays absent so
        // legacy audit exports remain byte-identical.
        assert!(!json.contains("audit_coherence"));
        let lines = chrome_decision_events(a.history());
        assert!(lines[0].contains("process_name"));
        assert!(lines.iter().any(|l| l.contains("\"mispredicted\":1")));
        assert!(lines.iter().any(|l| l.contains("\"engaged\":1")));
        assert!(chrome_decision_events(&[]).is_empty());
    }

    #[test]
    fn coherence_section_appears_when_recorded() {
        let mut a = audit();
        a.record_coherence_decision(true);
        a.record_coherence_decision(true);
        a.record_coherence_decision(false);
        a.finalize(0, 0);
        let s = a.summary();
        assert_eq!(s.coherence_updates, 2);
        assert_eq!(s.coherence_invalidations, 1);
        assert!((s.coherence_update_rate() - 2.0 / 3.0).abs() < 1e-12);
        let mut m = MetricsRegistry::new();
        s.register_into(&mut m);
        let json = m.to_json();
        assert!(json.contains("\"audit_coherence_updates\":2"));
        assert!(json.contains("\"audit_coherence_invalidations\":1"));
    }

    #[test]
    fn empty_audit_reports_unit_rates() {
        let s = audit().summary();
        assert!((s.abort_precision() - 1.0).abs() < 1e-12);
        assert_eq!(s.useful_snarf_rate(), 0.0);
        assert!((s.resolved_coverage() - 1.0).abs() < 1e-12);
        assert_eq!(s.net_cycles(), 0);
        assert_eq!(s.coherence_decisions(), 0);
        assert_eq!(s.coherence_update_rate(), 0.0);
    }
}
