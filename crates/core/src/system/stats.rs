//! Simulation statistics: every number the paper's tables report.

use cmpsim_engine::stats::Log2Histogram;
use cmpsim_engine::Cycle;

/// Per-L2 counters.
#[derive(Debug, Clone, Default)]
pub struct L2Stats {
    /// Demand accesses that hit in this L2 (including hits on lines that
    /// were snarfed in or recovered from the write-back queue).
    pub hits: u64,
    /// Demand accesses that missed.
    pub misses: u64,
    /// Misses satisfied by recovering the line from this cache's own
    /// write-back queue.
    pub wbq_recoveries: u64,
    /// Interventions sourced by this L2.
    pub interventions_provided: u64,
    /// Write-backs this L2 absorbed from peers.
    pub snarfs_accepted: u64,
}

impl L2Stats {
    /// Local hit rate.
    pub fn hit_rate(&self) -> f64 {
        let t = self.hits + self.misses;
        if t == 0 {
            0.0
        } else {
            self.hits as f64 / t as f64
        }
    }
}

/// Write-back traffic counters (Tables 1 and 4).
#[derive(Debug, Clone, Copy, Default)]
pub struct WbTraffic {
    /// Dirty castout transactions issued on the bus.
    pub dirty_requests: u64,
    /// Clean castout transactions issued on the bus.
    pub clean_requests: u64,
    /// Clean write-backs aborted by the WBHT (never reached the bus).
    pub clean_aborted: u64,
    /// Clean castouts squashed because the L3 already held the line
    /// (Table 1's numerator).
    pub clean_squashed_l3: u64,
    /// Castouts squashed because a peer L2 held the line.
    pub squashed_peer: u64,
    /// Castouts absorbed by peer L2s (snarfed).
    pub snarfed: u64,
    /// Castouts accepted by the L3.
    pub accepted_l3: u64,
    /// Castout re-issues after retry responses.
    pub retried_attempts: u64,
}

impl WbTraffic {
    /// Total castout bus transactions (Table 4 "L2 Write Back Requests").
    pub fn requests(&self) -> u64 {
        self.dirty_requests + self.clean_requests
    }

    /// Fraction of clean castout transactions found already valid in the
    /// L3 (Table 1).
    pub fn clean_redundant_rate(&self) -> f64 {
        if self.clean_requests == 0 {
            0.0
        } else {
            self.clean_squashed_l3 as f64 / self.clean_requests as f64
        }
    }
}

/// Write-back reuse tracking (Table 2).
#[derive(Debug, Clone, Copy, Default)]
pub struct WbReuse {
    /// Write-backs attempted (bus transactions).
    pub total: u64,
    /// Write-backs accepted by the L3.
    pub accepted: u64,
    /// Attempted write-backs whose line was later missed on again.
    pub reused_total: u64,
    /// L3-accepted write-backs whose line was later missed on again.
    pub reused_accepted: u64,
}

impl WbReuse {
    /// Table 2 "% Total".
    pub fn reuse_rate_total(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.reused_total as f64 / self.total as f64
        }
    }

    /// Table 2 "% Accepted".
    pub fn reuse_rate_accepted(&self) -> f64 {
        if self.accepted == 0 {
            0.0
        } else {
            self.reused_accepted as f64 / self.accepted as f64
        }
    }
}

/// Snarf effectiveness counters (Table 5).
#[derive(Debug, Clone, Copy, Default)]
pub struct SnarfUsage {
    /// Lines absorbed by peer L2s.
    pub snarfed: u64,
    /// Snarfed lines later hit by a thread of the snarfing L2.
    pub used_locally: u64,
    /// Snarfed lines later provided as interventions to other L2s.
    pub used_for_intervention: u64,
    /// Snarfed lines evicted or invalidated without any use.
    pub evicted_unused: u64,
}

impl SnarfUsage {
    /// Table 5 "Snarfed Lines Used Locally" (fraction of snarfed lines).
    pub fn local_use_rate(&self) -> f64 {
        if self.snarfed == 0 {
            0.0
        } else {
            self.used_locally as f64 / self.snarfed as f64
        }
    }

    /// Table 5 "Snarfed Lines Provided for Interventions".
    pub fn intervention_use_rate(&self) -> f64 {
        if self.snarfed == 0 {
            0.0
        } else {
            self.used_for_intervention as f64 / self.snarfed as f64
        }
    }
}

/// Whole-run statistics.
#[derive(Debug, Clone, Default)]
pub struct SystemStats {
    /// Execution time: the cycle at which the last thread finished its
    /// reference stream (outstanding misses drained).
    pub cycles: Cycle,
    /// References processed.
    pub refs: u64,
    /// Loads processed.
    pub loads: u64,
    /// Stores processed.
    pub stores: u64,
    /// L1 hits (when the L1 level is enabled).
    pub l1_hits: u64,
    /// Per-L2 counters.
    pub l2: Vec<L2Stats>,
    /// Fills served by L2-to-L2 intervention.
    pub fills_from_l2: u64,
    /// Fills served by the L3.
    pub fills_from_l3: u64,
    /// Fills served by memory.
    pub fills_from_memory: u64,
    /// Upgrade transactions completed.
    pub upgrades: u64,
    /// Stores to shared lines completed as updates instead of
    /// invalidations (hybrid update/invalidate coherence; zero under
    /// the base write-invalidate protocol).
    pub coherence_updates: u64,
    /// Read/upgrade transactions re-issued after retries.
    pub read_retries: u64,
    /// Total retry combined-responses observed.
    pub retries_total: u64,
    /// Retries attributed to the L3.
    pub retries_l3: u64,
    /// Write-back traffic.
    pub wb: WbTraffic,
    /// Write-back reuse (Table 2).
    pub wb_reuse: WbReuse,
    /// Snarf usage (Table 5).
    pub snarf: SnarfUsage,
    /// Miss latency distribution (issue to fill).
    pub miss_latency: Log2Histogram,
    /// Peak MSHR occupancy observed across all L2s (out of
    /// `mshr_entries`; sustained saturation parks threads).
    pub mshr_high_water: u64,
    /// Peak write-back queue occupancy observed across all L2s (a full
    /// queue blocks L2 misses, §2.1).
    pub wbq_high_water: u64,
    /// Peak event-queue population in the simulation engine (simulator
    /// health, not a modelled structure).
    pub event_queue_high_water: u64,
}

impl std::fmt::Display for SystemStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "cycles           : {}", self.cycles)?;
        writeln!(
            f,
            "references       : {} ({} loads, {} stores)",
            self.refs, self.loads, self.stores
        )?;
        writeln!(f, "L1 hits          : {}", self.l1_hits)?;
        writeln!(f, "L2 hit rate      : {:.1}%", self.l2_hit_rate() * 100.0)?;
        writeln!(
            f,
            "fills            : {} L2-to-L2, {} L3, {} memory",
            self.fills_from_l2, self.fills_from_l3, self.fills_from_memory
        )?;
        writeln!(
            f,
            "write-backs      : {} requests ({} dirty, {} clean; {:.1}% redundant)",
            self.wb.requests(),
            self.wb.dirty_requests,
            self.wb.clean_requests,
            self.wb.clean_redundant_rate() * 100.0
        )?;
        writeln!(
            f,
            "                   {} WBHT-aborted, {} snarfed, {} peer-squashed",
            self.wb.clean_aborted, self.wb.snarfed, self.wb.squashed_peer
        )?;
        writeln!(
            f,
            "retries          : {} total ({} L3-issued)",
            self.retries_total, self.retries_l3
        )?;
        write!(
            f,
            "mean miss latency: {:.0} cycles (p99 ~{})",
            self.miss_latency.mean(),
            self.miss_latency.percentile(0.99)
        )
    }
}

impl SystemStats {
    /// Creates zeroed stats for `num_l2` caches.
    pub fn new(num_l2: usize) -> Self {
        SystemStats {
            l2: vec![L2Stats::default(); num_l2],
            ..Default::default()
        }
    }

    /// Aggregate L2 hit rate.
    pub fn l2_hit_rate(&self) -> f64 {
        let hits: u64 = self.l2.iter().map(|s| s.hits).sum();
        let misses: u64 = self.l2.iter().map(|s| s.misses).sum();
        let t = hits + misses;
        if t == 0 {
            0.0
        } else {
            hits as f64 / t as f64
        }
    }

    /// Off-chip accesses: fills that left the chip (L3 or memory).
    pub fn off_chip_accesses(&self) -> u64 {
        self.fills_from_l3 + self.fills_from_memory
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_handle_zero_denominators() {
        let s = SystemStats::new(4);
        assert_eq!(s.l2_hit_rate(), 0.0);
        assert_eq!(s.wb.clean_redundant_rate(), 0.0);
        assert_eq!(s.wb_reuse.reuse_rate_total(), 0.0);
        assert_eq!(s.snarf.local_use_rate(), 0.0);
        assert_eq!(s.l2[0].hit_rate(), 0.0);
    }

    #[test]
    fn wb_traffic_rates() {
        let wb = WbTraffic {
            clean_requests: 100,
            clean_squashed_l3: 60,
            dirty_requests: 40,
            ..Default::default()
        };
        assert_eq!(wb.requests(), 140);
        assert!((wb.clean_redundant_rate() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn reuse_rates() {
        let r = WbReuse {
            total: 200,
            accepted: 100,
            reused_total: 50,
            reused_accepted: 40,
        };
        assert!((r.reuse_rate_total() - 0.25).abs() < 1e-12);
        assert!((r.reuse_rate_accepted() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn snarf_rates() {
        let s = SnarfUsage {
            snarfed: 50,
            used_locally: 10,
            used_for_intervention: 5,
            evicted_unused: 35,
        };
        assert!((s.local_use_rate() - 0.2).abs() < 1e-12);
        assert!((s.intervention_use_rate() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn display_mentions_key_metrics() {
        let mut s = SystemStats::new(4);
        s.cycles = 1234;
        s.refs = 10;
        s.wb.clean_requests = 5;
        let text = s.to_string();
        assert!(text.contains("cycles"));
        assert!(text.contains("1234"));
        assert!(text.contains("write-backs"));
        assert!(text.contains("retries"));
    }

    #[test]
    fn aggregate_hit_rate() {
        let mut s = SystemStats::new(2);
        s.l2[0].hits = 30;
        s.l2[0].misses = 10;
        s.l2[1].hits = 10;
        s.l2[1].misses = 10;
        assert!((s.l2_hit_rate() - 40.0 / 60.0).abs() < 1e-12);
        assert!((s.l2[0].hit_rate() - 0.75).abs() < 1e-12);
    }
}
