//! Typed protocol-invariant checking: at most one dirty owner per line,
//! `E`/`M` exclusivity, and at most one `SL` holder. Violations are
//! reported as structured [`InvariantViolation`] values so tools (the
//! `debug_invariant` bisector) can act on them without parsing panic
//! strings; tests use the panicking [`System::assert_invariants`]
//! wrapper.

use std::collections::HashMap;

use cmpsim_cache::LineAddr;
use cmpsim_coherence::L2State;

use crate::system::l2::L2Unit;
use crate::system::System;

/// A violated coherence-protocol invariant, naming the line and every
/// L2 holding it (index, state) at the time of the check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InvariantViolation {
    /// More than one L2 holds the line in a dirty (`M`/`T`) state.
    MultipleDirtyOwners {
        /// The line's raw address.
        line: u64,
        /// Every holder of the line as `(l2 index, state)`.
        holders: Vec<(usize, L2State)>,
    },
    /// An `E`/`M` holder coexists with other copies of the line.
    ExclusiveWithSharers {
        /// The line's raw address.
        line: u64,
        /// Every holder of the line as `(l2 index, state)`.
        holders: Vec<(usize, L2State)>,
    },
    /// More than one L2 claims the `SL` (shared-last, intervener) state.
    MultipleSharedLast {
        /// The line's raw address.
        line: u64,
        /// Every holder of the line as `(l2 index, state)`.
        holders: Vec<(usize, L2State)>,
    },
}

impl InvariantViolation {
    /// The raw address of the offending line.
    pub fn line(&self) -> u64 {
        match self {
            InvariantViolation::MultipleDirtyOwners { line, .. }
            | InvariantViolation::ExclusiveWithSharers { line, .. }
            | InvariantViolation::MultipleSharedLast { line, .. } => *line,
        }
    }

    /// Every L2 holding the offending line, as `(l2 index, state)`.
    pub fn holders(&self) -> &[(usize, L2State)] {
        match self {
            InvariantViolation::MultipleDirtyOwners { holders, .. }
            | InvariantViolation::ExclusiveWithSharers { holders, .. }
            | InvariantViolation::MultipleSharedLast { holders, .. } => holders,
        }
    }
}

impl std::fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InvariantViolation::MultipleDirtyOwners { line, holders } => {
                let dirty = holders.iter().filter(|(_, s)| s.is_dirty()).count();
                write!(f, "line {line:#x}: {dirty} dirty owners: {holders:?}")
            }
            InvariantViolation::ExclusiveWithSharers { line, holders } => {
                write!(f, "line {line:#x}: E/M with sharers: {holders:?}")
            }
            InvariantViolation::MultipleSharedLast { line, holders } => {
                let sl = holders
                    .iter()
                    .filter(|(_, s)| *s == L2State::SharedLast)
                    .count();
                write!(f, "line {line:#x}: {sl} SL holders: {holders:?}")
            }
        }
    }
}

impl std::error::Error for InvariantViolation {}

impl System {
    /// Verifies protocol invariants across all caches: at most one dirty
    /// owner per line, `E`/`M` exclusivity, at most one `SL` holder.
    ///
    /// Returns the first violation found, with the offending line and
    /// its holders, or `Ok(())` when the caches are consistent.
    ///
    /// # Errors
    ///
    /// Returns an [`InvariantViolation`] describing the violated rule.
    pub fn check_invariants(&self) -> Result<(), InvariantViolation> {
        let mut holders: HashMap<u64, Vec<(usize, L2State)>> = HashMap::new();
        for (i, l2) in self.l2s.iter().enumerate() {
            for line in all_lines(l2) {
                let st = l2.state_of(line).expect("listed line resident");
                holders.entry(line.raw()).or_default().push((i, st));
            }
        }
        for (line, hs) in holders {
            let dirty = hs.iter().filter(|(_, s)| s.is_dirty()).count();
            if dirty > 1 {
                return Err(InvariantViolation::MultipleDirtyOwners { line, holders: hs });
            }
            let excl = hs.iter().filter(|(_, s)| s.is_exclusive()).count();
            if excl > 0 && hs.len() != 1 {
                return Err(InvariantViolation::ExclusiveWithSharers { line, holders: hs });
            }
            let sl = hs.iter().filter(|(_, s)| *s == L2State::SharedLast).count();
            if sl > 1 {
                return Err(InvariantViolation::MultipleSharedLast { line, holders: hs });
            }
        }
        Ok(())
    }

    /// [`check_invariants`](Self::check_invariants), panicking on the
    /// first violation (the test-friendly form).
    ///
    /// # Panics
    ///
    /// Panics with a description of the violated invariant.
    pub fn assert_invariants(&self) {
        if let Err(v) = self.check_invariants() {
            panic!("coherence invariant violated: {v}");
        }
    }
}

fn all_lines(l2: &L2Unit) -> Vec<LineAddr> {
    // Reconstructs resident global line addresses via the snarf-victim
    // helper path; exposed only for invariant checking, so a slow path
    // through the public surface is fine.
    l2.resident_lines()
}

#[cfg(test)]
mod tests {
    use cmpsim_cache::{InsertPosition, LineAddr};
    use cmpsim_coherence::L2State;

    use super::InvariantViolation;
    use crate::policy::PolicyConfig;
    use crate::system::testutil::system;

    #[test]
    fn violations_are_typed_and_described() {
        let mut sys = system(PolicyConfig::baseline());
        assert_eq!(sys.check_invariants(), Ok(()));

        // Two dirty owners of one line.
        let line = LineAddr::new(40);
        sys.l2s[0].fill(line, L2State::Modified, InsertPosition::Mru);
        sys.l2s[1].fill(line, L2State::Tagged, InsertPosition::Mru);
        let v = sys.check_invariants().unwrap_err();
        assert!(matches!(v, InvariantViolation::MultipleDirtyOwners { .. }));
        assert_eq!(v.line(), line.raw());
        assert_eq!(v.holders().len(), 2);
        assert!(v.to_string().contains("dirty owners"));

        // Demote one copy: now it is an E/M-with-sharers violation.
        sys.l2s[1].set_state(line, L2State::Shared);
        let v = sys.check_invariants().unwrap_err();
        assert!(matches!(v, InvariantViolation::ExclusiveWithSharers { .. }));

        // Two SL claimants.
        sys.l2s[0].set_state(line, L2State::SharedLast);
        sys.l2s[1].set_state(line, L2State::SharedLast);
        let v = sys.check_invariants().unwrap_err();
        assert!(matches!(v, InvariantViolation::MultipleSharedLast { .. }));

        // Repair and re-verify.
        sys.l2s[1].set_state(line, L2State::Shared);
        sys.assert_invariants();
    }
}
