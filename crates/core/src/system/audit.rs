//! Decision-quality audit: outcome lineage for the adaptive mechanisms.
//!
//! The WBHT (§2) and the snarf mechanism (§3) make per-line predictions
//! — *this clean castout is redundant*, *this evicted line will be
//! wanted by a peer* — and the base statistics only count how often each
//! mechanism fired, never whether a given decision turned out to be
//! right. The [`DecisionAudit`] closes that loop: every WBHT verdict and
//! every snarf placement registers a pending outcome record, and the
//! later pipeline stages resolve it:
//!
//! * **WBHT abort** → *correct* when the line is never re-missed or the
//!   re-miss is served by the L3/a peer (the castout really was
//!   redundant), *mispredict* when the re-miss escalates to memory (the
//!   dropped write-back cost a full memory fill, whose measured latency
//!   is charged as the penalty).
//! * **WBHT allow** → *redundant* when the castout is squashed because
//!   the L3 already held the line (a missed abort opportunity).
//! * **Snarf** → *useful* when the absorbed line later serves a local
//!   hit or a ring intervention, *wasted* when it is evicted (or the run
//!   ends) untouched; placements that displaced a resident victim are
//!   tallied separately.
//! * **Coherence** (hybrid update/invalidate policy only) → each store
//!   to a shared line is tallied by the action the policy chose; the
//!   policy's own regret tracking grades the invalidations.
//!
//! This module owns the *resolution* half: recording verdicts and
//! matching each to its eventual outcome. Aggregation, derived rates,
//! the metrics-registry section, and the Chrome counter track live in
//! [`audit_report`](super::audit_report).
//!
//! Net-cycle accounting uses the *measured* re-miss latency for
//! mispredict penalties and first-order link-latency estimates from the
//! [`SystemConfig`] for the credits (a skipped castout saves one L3-link
//! transfer; a useful snarf saves roughly one memory-link round trip).
//!
//! Like every observability layer in this codebase the audit is
//! zero-cost when off: the `System` holds an `Option<Box<DecisionAudit>>`
//! and every hook is one `if let` branch, so disabled runs stay
//! byte-identical.

use cmpsim_engine::hash::{FxHashMap, FxHashSet};
use cmpsim_engine::stream::DecisionFrame;
use cmpsim_engine::Cycle;

use super::audit_report::DecisionAuditSummary;
use crate::config::SystemConfig;

/// Per-L2 decision-quality counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct L2DecisionStats {
    /// WBHT verdicts audited (every clean castout drained under a WBHT
    /// policy, whether or not the retry switch had the filter engaged).
    pub wbht_decisions: u64,
    /// Verdicts taken while the retry-rate switch had filtering engaged.
    pub decisions_engaged: u64,
    /// Abort verdicts (castout dropped).
    pub aborts: u64,
    /// Aborts whose line was never re-missed, or re-missed but served by
    /// the L3 or a peer L2 (the write-back really was redundant).
    pub aborts_correct: u64,
    /// Aborts whose line was re-missed all the way to memory.
    pub aborts_mispredicted: u64,
    /// Allow verdicts (castout issued).
    pub allows: u64,
    /// Allows squashed by the L3 as already-present — missed aborts.
    pub allows_redundant: u64,
    /// Snarf placements absorbed by this L2.
    pub snarfs: u64,
    /// Snarfed lines that served a local hit or a ring intervention.
    pub snarfs_useful: u64,
    /// Snarfed lines retired (or still resident at run end) untouched.
    pub snarfs_wasted: u64,
    /// Snarf placements that displaced a resident line.
    pub snarfs_displacing: u64,
    /// Wasted placements that also displaced a resident line (the only
    /// ones charged a displacement cost — a useful snarf earned its
    /// slot).
    pub snarfs_wasted_displacing: u64,
    /// Sum of measured re-miss latencies charged to mispredicted aborts,
    /// less the estimated L3-fill latency each would have paid anyway.
    pub mispredict_penalty_cycles: u64,
}

impl L2DecisionStats {
    /// Verdicts taken with filtering disengaged.
    pub fn decisions_disengaged(&self) -> u64 {
        self.wbht_decisions - self.decisions_engaged
    }

    fn merge(&mut self, o: &L2DecisionStats) {
        self.wbht_decisions += o.wbht_decisions;
        self.decisions_engaged += o.decisions_engaged;
        self.aborts += o.aborts;
        self.aborts_correct += o.aborts_correct;
        self.aborts_mispredicted += o.aborts_mispredicted;
        self.allows += o.allows;
        self.allows_redundant += o.allows_redundant;
        self.snarfs += o.snarfs;
        self.snarfs_useful += o.snarfs_useful;
        self.snarfs_wasted += o.snarfs_wasted;
        self.snarfs_displacing += o.snarfs_displacing;
        self.snarfs_wasted_displacing += o.snarfs_wasted_displacing;
        self.mispredict_penalty_cycles += o.mispredict_penalty_cycles;
    }
}

/// The audit layer: pending outcome records plus resolved aggregates.
/// Owned by the `System` as an `Option<Box<_>>`; see the module docs.
#[derive(Debug)]
pub struct DecisionAudit {
    /// L2 slice count (heatmap set indexing).
    slices: u64,
    /// Sets per slice (heatmap set indexing).
    sets_per_slice: u64,
    /// Cycles credited per correct abort: the L3-link transfer the
    /// skipped castout never paid (`l3_link_delay + l3_link_occupancy`).
    credit_abort: Cycle,
    /// Estimated latency of an L3-served re-miss, subtracted from a
    /// mispredict's measured memory latency so only the *escalation* is
    /// charged.
    pub(super) est_l3_fill: Cycle,
    /// Cycles credited per useful snarf: roughly the memory-link round
    /// trip the local/peer hit avoided.
    credit_snarf: Cycle,
    /// Cycles charged per wasted snarf that displaced a resident line
    /// (the victim may need one L3-link refetch).
    cost_displace: Cycle,
    per_l2: Vec<L2DecisionStats>,
    /// Aborted lines awaiting a re-miss: line → aborting L2.
    pending_aborts: FxHashMap<u64, u8>,
    /// Allowed clean castouts awaiting their bus outcome.
    pending_allows: FxHashSet<(u8, u64)>,
    /// Snarfed lines awaiting retirement: (l2, line) → displaced flag.
    pending_snarfs: FxHashMap<(u8, u64), bool>,
    /// Abort verdicts per global L2 set (slice-major).
    heat_abort: Vec<u32>,
    /// Snarf placements per global L2 set (slice-major).
    heat_snarf: Vec<u32>,
    /// Retry-switch state flips observed at decision sites.
    flips: u64,
    last_engaged: Option<bool>,
    /// Aborts never re-missed, classified correct at finalize.
    unresolved_aborts: u64,
    /// Retry-switch windows that ended engaged (set at finalize).
    engaged_windows: u64,
    /// Retry-switch windows completed (set at finalize).
    windows: u64,
    /// Stores to shared lines resolved as coherence updates.
    coherence_updates: u64,
    /// Stores to shared lines resolved as base invalidations while a
    /// coherence-adaptive policy was active.
    coherence_invalidations: u64,
    /// Cumulative per-interval snapshots for the stream and the
    /// Chrome-trace counter track.
    history: Vec<DecisionFrame>,
}

impl DecisionAudit {
    /// Builds an audit sized for `cfg`'s L2 geometry and latencies.
    pub fn new(cfg: &SystemConfig) -> Self {
        let slices = cfg.l2_slices.max(1);
        let sets_per_slice = (cfg.l2_slice_bytes / (cfg.line_bytes * cfg.l2_assoc)).max(1);
        let total_sets = (slices * sets_per_slice) as usize;
        DecisionAudit {
            slices,
            sets_per_slice,
            credit_abort: cfg.l3_link_delay + cfg.l3_link_occupancy,
            est_l3_fill: 2 * cfg.l3_link_delay + cfg.l3_link_occupancy,
            credit_snarf: cfg.mem_link_delay + cfg.mem_link_occupancy,
            cost_displace: cfg.l3_link_delay,
            per_l2: vec![L2DecisionStats::default(); cfg.num_l2 as usize],
            pending_aborts: FxHashMap::default(),
            pending_allows: FxHashSet::default(),
            pending_snarfs: FxHashMap::default(),
            heat_abort: vec![0; total_sets],
            heat_snarf: vec![0; total_sets],
            flips: 0,
            last_engaged: None,
            unresolved_aborts: 0,
            engaged_windows: 0,
            windows: 0,
            coherence_updates: 0,
            coherence_invalidations: 0,
            history: Vec::new(),
        }
    }

    /// Global set index of a line under the L2's slice-major geometry.
    fn set_index(&self, raw: u64) -> usize {
        let slice = raw % self.slices;
        let set = (raw / self.slices) % self.sets_per_slice;
        (slice * self.sets_per_slice + set) as usize
    }

    /// Records one WBHT verdict on a drained clean castout. `engaged` is
    /// the retry-rate switch state at decision time; `abort` the verdict.
    pub fn record_wbht_decision(&mut self, l2: usize, raw: u64, engaged: bool, abort: bool) {
        let s = &mut self.per_l2[l2];
        s.wbht_decisions += 1;
        if engaged {
            s.decisions_engaged += 1;
        }
        if abort {
            s.aborts += 1;
            self.pending_aborts.insert(raw, l2 as u8);
            let idx = self.set_index(raw);
            self.heat_abort[idx] += 1;
        } else {
            s.allows += 1;
            self.pending_allows.insert((l2 as u8, raw));
        }
        if self.last_engaged != Some(engaged) {
            if self.last_engaged.is_some() {
                self.flips += 1;
            }
            self.last_engaged = Some(engaged);
        }
    }

    /// Resolves a pending allow verdict from the castout's terminal bus
    /// outcome. `redundant` marks an L3 already-present squash — the
    /// WBHT should have aborted. No-op when no allow is pending.
    pub fn resolve_allow(&mut self, l2: usize, raw: u64, redundant: bool) {
        if self.pending_allows.remove(&(l2 as u8, raw)) && redundant {
            self.per_l2[l2].allows_redundant += 1;
        }
    }

    /// Resolves a pending abort verdict from a demand re-miss on the
    /// line. `from_memory` escalation makes the abort a mispredict and
    /// charges the measured fill `latency` (less the estimated L3-fill
    /// latency the miss would have cost anyway). No-op when no abort is
    /// pending on the line.
    pub fn resolve_abort(&mut self, raw: u64, from_memory: bool, latency: Cycle) {
        let Some(l2) = self.pending_aborts.remove(&raw) else {
            return;
        };
        let s = &mut self.per_l2[l2 as usize];
        if from_memory {
            s.aborts_mispredicted += 1;
            s.mispredict_penalty_cycles += latency.saturating_sub(self.est_l3_fill);
        } else {
            s.aborts_correct += 1;
        }
    }

    /// Records one snarf placement absorbed by `l2`. `displaced` marks a
    /// resident (clean) victim evicted to make room.
    pub fn record_snarf(&mut self, l2: usize, raw: u64, displaced: bool) {
        let s = &mut self.per_l2[l2];
        s.snarfs += 1;
        if displaced {
            s.snarfs_displacing += 1;
        }
        self.pending_snarfs.insert((l2 as u8, raw), displaced);
        let idx = self.set_index(raw);
        self.heat_snarf[idx] += 1;
    }

    /// Resolves a snarf placement at retirement (eviction, invalidation,
    /// or run end): `useful` when the line served a local hit or a ring
    /// intervention. No-op when no placement is pending.
    pub fn resolve_snarf(&mut self, l2: usize, raw: u64, useful: bool) {
        let Some(displaced) = self.pending_snarfs.remove(&(l2 as u8, raw)) else {
            return;
        };
        let s = &mut self.per_l2[l2];
        if useful {
            s.snarfs_useful += 1;
        } else {
            s.snarfs_wasted += 1;
            if displaced {
                s.snarfs_wasted_displacing += 1;
            }
        }
    }

    /// Records one store-to-shared coherence decision from an adaptive
    /// coherence policy: `update` when the store pushed new data to the
    /// sharers, `false` when it took the base invalidate path. Legacy
    /// policies never call this, so their audit output is unchanged.
    pub fn record_coherence_decision(&mut self, update: bool) {
        if update {
            self.coherence_updates += 1;
        } else {
            self.coherence_invalidations += 1;
        }
    }

    /// Closes one observation interval: appends (and returns) a
    /// cumulative snapshot for the live stream and the Chrome counter
    /// track.
    pub fn note_interval(&mut self, now: Cycle) -> DecisionFrame {
        let t = self.totals();
        let f = DecisionFrame {
            cycle: now,
            decisions: t.wbht_decisions,
            aborts: t.aborts,
            aborts_correct: t.aborts_correct,
            aborts_mispredicted: t.aborts_mispredicted,
            allows_redundant: t.allows_redundant,
            snarfs: t.snarfs,
            snarfs_useful: t.snarfs_useful,
            snarfs_wasted: t.snarfs_wasted,
            engaged: self.last_engaged.unwrap_or(false),
        };
        self.history.push(f);
        f
    }

    /// The per-interval snapshots recorded so far.
    pub fn history(&self) -> &[DecisionFrame] {
        &self.history
    }

    /// End-of-run classification: pending aborts were never re-missed
    /// (correct), pending snarfs never touched (wasted — normally the
    /// still-resident sweep resolves them first), and the retry-switch
    /// window tallies are recorded. Idempotent.
    pub fn finalize(&mut self, engaged_windows: u64, windows: u64) {
        let leftover: Vec<(u64, u8)> = self.pending_aborts.drain().collect();
        for (_, l2) in leftover {
            self.per_l2[l2 as usize].aborts_correct += 1;
            self.unresolved_aborts += 1;
        }
        let stale: Vec<(u8, u64)> = self.pending_snarfs.keys().copied().collect();
        for (l2, raw) in stale {
            self.resolve_snarf(l2 as usize, raw, false);
        }
        self.pending_allows.clear();
        self.engaged_windows = engaged_windows;
        self.windows = windows;
    }

    fn totals(&self) -> L2DecisionStats {
        let mut t = L2DecisionStats::default();
        for s in &self.per_l2 {
            t.merge(s);
        }
        t
    }

    /// The resolved aggregates (call after the run finalized).
    pub fn summary(&self) -> DecisionAuditSummary {
        let totals = self.totals();
        DecisionAuditSummary {
            per_l2: self.per_l2.clone(),
            abort_credit_cycles: totals.aborts_correct * self.credit_abort,
            snarf_credit_cycles: totals.snarfs_useful * self.credit_snarf,
            displace_cost_cycles: totals.snarfs_wasted_displacing * self.cost_displace,
            totals,
            unresolved_aborts: self.unresolved_aborts,
            flips: self.flips,
            engaged_windows: self.engaged_windows,
            windows: self.windows,
            coherence_updates: self.coherence_updates,
            coherence_invalidations: self.coherence_invalidations,
            heat_abort: self.heat_abort.clone(),
            heat_snarf: self.heat_snarf.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::audit_report::{nonzero, peak};
    use super::*;

    fn audit() -> DecisionAudit {
        DecisionAudit::new(&SystemConfig::scaled(16))
    }

    #[test]
    fn abort_lifecycle_resolves_by_source() {
        let mut a = audit();
        a.record_wbht_decision(0, 100, true, true);
        a.record_wbht_decision(1, 200, true, true);
        a.record_wbht_decision(2, 300, false, true);
        // Line 100 re-missed from memory: mispredict, penalty above the
        // estimated L3 fill.
        a.resolve_abort(100, true, a.est_l3_fill + 500);
        // Line 200 re-hit in the L3: correct.
        a.resolve_abort(200, false, 40);
        // Line 300 never re-missed: classified correct at finalize.
        a.finalize(3, 7);
        let s = a.summary();
        assert_eq!(s.totals.aborts, 3);
        assert_eq!(s.totals.aborts_mispredicted, 1);
        assert_eq!(s.totals.aborts_correct, 2);
        assert_eq!(s.unresolved_aborts, 1);
        assert_eq!(s.totals.mispredict_penalty_cycles, 500);
        assert_eq!(s.engaged_windows, 3);
        assert_eq!(s.windows, 7);
        assert!((s.abort_precision() - 2.0 / 3.0).abs() < 1e-12);
        assert!((s.resolved_coverage() - 1.0).abs() < 1e-12);
        // Re-missing a line with no pending abort is a no-op.
        a.resolve_abort(999, true, 1000);
        assert_eq!(a.summary().totals.aborts_mispredicted, 1);
    }

    #[test]
    fn allow_redundancy_and_engaged_tallies() {
        let mut a = audit();
        a.record_wbht_decision(0, 8, true, false);
        a.record_wbht_decision(0, 16, false, false);
        a.resolve_allow(0, 8, true); // squashed already-in-L3
        a.resolve_allow(0, 16, false); // accepted
        a.resolve_allow(0, 24, true); // nothing pending: no-op
        let s = a.summary();
        assert_eq!(s.totals.allows, 2);
        assert_eq!(s.totals.allows_redundant, 1);
        assert_eq!(s.totals.decisions_engaged, 1);
        assert_eq!(s.totals.decisions_disengaged(), 1);
        assert_eq!(s.flips, 1, "engaged -> disengaged observed once");
    }

    #[test]
    fn snarf_lifecycle_and_displacement_cost() {
        let mut a = audit();
        a.record_snarf(1, 40, true);
        a.record_snarf(1, 48, false);
        a.record_snarf(2, 56, true);
        a.resolve_snarf(1, 40, true); // useful despite displacing
        a.resolve_snarf(1, 48, false); // wasted
        a.finalize(0, 0); // line 56 still pending: wasted
        let s = a.summary();
        assert_eq!(s.totals.snarfs, 3);
        assert_eq!(s.totals.snarfs_useful, 1);
        assert_eq!(s.totals.snarfs_wasted, 2);
        assert_eq!(s.totals.snarfs_displacing, 2);
        assert!((s.useful_snarf_rate() - 1.0 / 3.0).abs() < 1e-12);
        // Only the wasted displacing placement (L2#2) is charged.
        let cfg = SystemConfig::scaled(16);
        assert_eq!(s.displace_cost_cycles, cfg.l3_link_delay);
        assert_eq!(
            s.snarf_credit_cycles,
            cfg.mem_link_delay + cfg.mem_link_occupancy
        );
        // Double-resolution is a no-op.
        a.resolve_snarf(1, 40, false);
        assert_eq!(a.summary().totals.snarfs_wasted, 2);
    }

    #[test]
    fn coherence_lineage_tallies_by_action() {
        let mut a = audit();
        a.record_coherence_decision(true);
        a.record_coherence_decision(false);
        a.record_coherence_decision(false);
        let s = a.summary();
        assert_eq!(s.coherence_updates, 1);
        assert_eq!(s.coherence_invalidations, 2);
    }

    #[test]
    fn heatmaps_land_in_distinct_sets() {
        let mut a = audit();
        let sets = a.heat_abort.len() as u64;
        a.record_wbht_decision(0, 0, false, true);
        a.record_wbht_decision(0, 1, false, true); // next slice
        a.record_wbht_decision(0, 0, false, true); // same set again
        a.record_snarf(0, 2, false);
        let s = a.summary();
        assert_eq!(s.heat_abort.len() as u64, sets);
        assert_eq!(nonzero(&s.heat_abort), 2);
        assert_eq!(peak(&s.heat_abort), 2);
        assert_eq!(nonzero(&s.heat_snarf), 1);
    }
}
