//! The `System` orchestrator: it owns all simulator state and the event
//! loop, and dispatches each event to the protocol-phase module that
//! handles it (see the module map in [`crate::system`]).

use cmpsim_cache::LineAddr;
use cmpsim_coherence::{L2Id, L2State, SnoopCollector, SnoopResponse, TxnId, TxnState};
use cmpsim_engine::hash::FxHashMap;
use cmpsim_engine::profiler::{now_ticks, ticks_to_ns, HostProfiler, HostStage};
use cmpsim_engine::progress::ProgressMeter;
use cmpsim_engine::spans::SpanTracer;
use cmpsim_engine::stream::TelemetryStream;
use cmpsim_engine::telemetry::{IntervalSampler, Telemetry};
use cmpsim_engine::{Channel, Cycle, EventQueue};
use cmpsim_mem::{L3Cache, MemoryController};
use cmpsim_ring::{Ring, RingTopology};
use cmpsim_trace::{ReferenceSource, SyntheticWorkload, ThreadId};

use crate::config::{L3Organization, SystemConfig};
use crate::policy::PolicyStack;
use crate::system::l1::L1Cache;
use crate::system::l2::L2Unit;
use crate::system::stats::SystemStats;
use crate::system::thread::ThreadCtx;

/// Simulation events. Bus transactions carry their full pipeline state
/// ([`TxnState`]) so every phase module reads and re-issues the same
/// explicit type.
#[derive(Debug, Clone, Copy)]
pub(super) enum Ev {
    /// A thread resumes issuing references.
    ThreadStep(ThreadId),
    /// A bus transaction arbitrates for the address ring.
    BusIssue(TxnState),
    /// Demand data arrives at the requesting L2.
    Fill {
        /// The filling L2.
        l2: L2Id,
        /// The line being installed.
        line: LineAddr,
        /// Install state granted by the combined response.
        state: L2State,
    },
    /// A snarfed castout arrives at the absorbing L2.
    SnarfFill {
        /// The absorbing L2.
        l2: L2Id,
        /// The absorbed line.
        line: LineAddr,
        /// Whether the line carries dirty data.
        dirty: bool,
    },
    /// The L2's write-back queue drains its next entry.
    WbDrain(L2Id),
}

impl Ev {
    /// The host-profiler attribution bucket this event's handler bills
    /// to (the snoop window nested inside bus/castout handling is carved
    /// out separately by the handlers themselves).
    fn stage(&self) -> HostStage {
        match self {
            Ev::ThreadStep(_) => HostStage::Frontend,
            Ev::BusIssue(state) if state.txn.kind.is_castout() => HostStage::Castout,
            Ev::BusIssue(_) => HostStage::BusIssue,
            Ev::Fill { .. } | Ev::SnarfFill { .. } => HostStage::Fill,
            Ev::WbDrain(_) => HostStage::Castout,
        }
    }
}

/// The modelled chip multiprocessor (paper Figure 1): 8 two-way-SMT
/// cores with private L1s, four sliced L2 caches, a bidirectional ring,
/// an off-chip L3 victim cache, and a memory controller — driven by a
/// synthetic workload and one of the four write-back policies.
///
/// # Example
///
/// ```
/// use cmp_adaptive_wb::{System, SystemConfig};
/// use cmpsim_trace::{Workload, CacheScale};
///
/// let cfg = SystemConfig::scaled(16);
/// let wl = Workload::Trade2.params(cfg.num_threads(), cfg.cache_scale());
/// let mut sys = System::new(cfg, wl)?;
/// let stats = sys.run(2_000);
/// assert!(stats.cycles > 0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct System {
    pub(super) cfg: SystemConfig,
    pub(super) workload: Box<dyn ReferenceSource>,
    pub(super) queue: EventQueue<Ev>,
    pub(super) ring: Ring,
    pub(super) collector: SnoopCollector,
    pub(super) l3: L3Cache,
    /// POWER5-style chip-private L3s (one per L2) when the configuration
    /// selects [`L3Organization::PrivatePerL2`]; empty otherwise.
    pub(super) private_l3s: Vec<L3Cache>,
    pub(super) mem: MemoryController,
    pub(super) l3_link: Channel,
    /// Dedicated per-L2 buses to the private L3s.
    pub(super) private_l3_links: Vec<Channel>,
    pub(super) mem_link: Channel,
    pub(super) l2s: Vec<L2Unit>,
    pub(super) l1s: Vec<L1Cache>,
    pub(super) threads: Vec<ThreadCtx>,
    /// The pluggable adaptive-policy stack (WBHT, snarf, rivals) plus
    /// the shared retry-rate switch; every pipeline stage dispatches
    /// through its hook points.
    pub(super) policy: PolicyStack,
    pub(super) txn_seq: TxnId,
    pub(super) stats: SystemStats,
    /// Lines written back and not yet re-referenced (Table 2 tracking):
    /// key present = write-back pending, value `true` = the L3 accepted
    /// the data (vs. dropped on the floor by a WBHT-suppressed or
    /// declined write-back).
    ///
    /// A castout's *first* bus attempt inserts the line with `false`
    /// (overwriting any stale accepted mark from a prior write-back
    /// generation); the L3 accepting the data flips it to `true`; a
    /// demand miss on the line removes the entry, counting
    /// `reused_total` and — when the value was `true` —
    /// `reused_accepted`. The two roles share one map because every hot
    /// path touches both together, and this set grows with the
    /// workload's castout working set: one probe instead of two on the
    /// coldest structure in the system.
    pub(super) wb_lines: FxHashMap<u64, bool>,
    /// Miss issue times for the latency histogram: (l2, line) -> cycle.
    pub(super) miss_issue: FxHashMap<(u8, u64), Cycle>,
    /// Lines in flight to an L2, keyed (l2, line), flagged
    /// [`INBOUND_FILL`](Self::INBOUND_FILL) for fills granted by a
    /// combined response but not yet landed and
    /// [`INBOUND_SNARF`](Self::INBOUND_SNARF) for snarfed castouts in
    /// transit to their absorber (in no tag array during the transfer,
    /// but with a line-fill buffer reserved). Snoops retry against
    /// either kind — ownership is in flight — and that hot joint probe
    /// ([`inbound_any`](Self::inbound_any), once per peer per snoop
    /// fan-out) is why both kinds share one map.
    pub(super) inbound: FxHashMap<(u8, u64), u8>,
    /// Recycled snoop-response buffer: the snoop layer takes it, fills
    /// it, and the bus layer hands it back after combining, so no bus
    /// transaction allocates a response vector.
    pub(super) snoop_scratch: Vec<SnoopResponse>,
    /// Recycled MSHR-waiter buffer for the completion layer, same
    /// pattern.
    pub(super) waiter_scratch: Vec<ThreadId>,
    /// Debug: line (raw) whose every transition is logged to stderr.
    /// Set via the `CMPSIM_TRACE_LINE` environment variable (hex).
    pub(super) trace_line: Option<u64>,
    /// Event-trace handle, shared (cloned) into every instrumented
    /// component. Disabled by default: one dead branch per emission site.
    pub(super) telemetry: Telemetry,
    /// Interval sampler snapshotting key counters every N cycles.
    pub(super) sampler: Option<IntervalSampler>,
    /// Transaction span tracer. Disabled by default: one dead branch per
    /// instrumentation site, mirroring `telemetry`.
    pub(super) spans: SpanTracer,
    /// Host-side wall-clock profiler. Disabled by default: the event
    /// loop then runs its uninstrumented path.
    pub(super) host: HostProfiler,
    /// True only while the profiler is timing the current dispatch;
    /// gates the nested snoop-window clock reads in the handlers.
    pub(super) host_sampling: bool,
    /// Clock ticks the current sampled dispatch spent inside snoop
    /// collection (subtracted from the outer stage, credited to Snoop).
    pub(super) host_nested: u64,
    /// Live telemetry stream (interval + host-sample frames). Disabled
    /// by default.
    pub(super) stream: TelemetryStream,
    /// Cell id tagged on every streamed frame (grid multiplexing).
    pub(super) stream_cell: u64,
    /// Progress heartbeat for long runs. Off by default.
    pub(super) progress: Option<ProgressMeter>,
    /// Decision-quality audit (WBHT verdict / snarf outcome lineage).
    /// Off by default: each hook is one `if let` branch, preserving
    /// byte-identical statistics and golden spans when disabled.
    pub(super) audit: Option<Box<crate::system::audit::DecisionAudit>>,
}

/// Errors from building a [`System`].
#[derive(Debug)]
pub enum SystemError {
    /// Invalid cache geometry in the configuration.
    Geometry(cmpsim_cache::GeometryError),
    /// Invalid workload parameters.
    Workload(cmpsim_trace::WorkloadError),
}

impl std::fmt::Display for SystemError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SystemError::Geometry(e) => write!(f, "invalid geometry: {e}"),
            SystemError::Workload(e) => write!(f, "invalid workload: {e}"),
        }
    }
}

impl std::error::Error for SystemError {}

impl From<cmpsim_cache::GeometryError> for SystemError {
    fn from(e: cmpsim_cache::GeometryError) -> Self {
        SystemError::Geometry(e)
    }
}

impl From<cmpsim_trace::WorkloadError> for SystemError {
    fn from(e: cmpsim_trace::WorkloadError) -> Self {
        SystemError::Workload(e)
    }
}

impl System {
    /// Builds a system from a configuration and workload parameters.
    ///
    /// # Errors
    ///
    /// Returns [`SystemError`] for invalid geometries or workloads.
    pub fn new(
        cfg: SystemConfig,
        workload_params: cmpsim_trace::WorkloadParams,
    ) -> Result<Self, SystemError> {
        cfg.validate()?;
        let workload = SyntheticWorkload::new(workload_params, cfg.seed)?;
        Self::with_source(cfg, Box::new(workload))
    }

    /// Builds a system over any reference source — a synthetic workload
    /// or a recorded-trace playback ([`cmpsim_trace::TracePlayback`]),
    /// matching the paper's trace-driven methodology.
    ///
    /// # Errors
    ///
    /// Returns [`SystemError`] for invalid geometries.
    pub fn with_source(
        cfg: SystemConfig,
        workload: Box<dyn ReferenceSource>,
    ) -> Result<Self, SystemError> {
        cfg.validate()?;

        // Policy wiring: every configured mechanism becomes a plugged-in
        // policy on the stack the pipeline stages dispatch through.
        let policy = PolicyStack::new(&cfg.policy, cfg.num_l2 as usize, cfg.retry_switch)?;

        let l2s = L2Id::all(cfg.num_l2)
            .map(|id| L2Unit::new(id, &cfg))
            .collect::<Vec<_>>();

        let l1s = match cfg.l1 {
            Some(l1cfg) => (0..cfg.cores)
                .map(|_| L1Cache::new(l1cfg, cfg.line_bytes))
                .collect(),
            None => Vec::new(),
        };

        let topo = RingTopology::standard_cmp(cfg.num_l2, cfg.ring.hop_cycles);
        let ring = Ring::new(topo, cfg.ring);
        let num_l2 = cfg.num_l2 as usize;

        let (private_l3s, private_l3_links) = match cfg.l3_organization {
            L3Organization::SharedVictim => (Vec::new(), Vec::new()),
            L3Organization::PrivatePerL2 => {
                // Same total capacity, partitioned per L2.
                let mut pc = cfg.l3;
                let per = cfg.l3.geometry.per_slice().size_bytes() / cfg.num_l2 as u64;
                pc.geometry = cmpsim_cache::SlicedGeometry::new(
                    cfg.l3.geometry.slices(),
                    per.max(cfg.line_bytes * cfg.l3.geometry.per_slice().assoc()),
                    cfg.l3.geometry.per_slice().assoc(),
                    cfg.line_bytes,
                )?;
                (
                    (0..cfg.num_l2).map(|_| L3Cache::new(pc)).collect(),
                    (0..cfg.num_l2)
                        .map(|_| Channel::new(cfg.l3_link_lanes, cfg.l3_link_occupancy))
                        .collect(),
                )
            }
        };
        Ok(System {
            ring,
            collector: SnoopCollector::new(),
            l3: L3Cache::new(cfg.l3),
            private_l3s,
            mem: MemoryController::new(cfg.mem),
            l3_link: Channel::new(cfg.l3_link_lanes, cfg.l3_link_occupancy),
            private_l3_links,
            mem_link: Channel::new(cfg.mem_link_lanes, cfg.mem_link_occupancy),
            l2s,
            l1s,
            threads: Vec::new(),
            policy,
            txn_seq: TxnId::ZERO,
            stats: SystemStats::new(num_l2),
            wb_lines: FxHashMap::default(),
            miss_issue: FxHashMap::default(),
            inbound: FxHashMap::default(),
            snoop_scratch: Vec::new(),
            waiter_scratch: Vec::new(),
            trace_line: std::env::var("CMPSIM_TRACE_LINE")
                .ok()
                .and_then(|v| u64::from_str_radix(v.trim_start_matches("0x"), 16).ok()),
            queue: EventQueue::with_capacity(1 << 16),
            workload,
            cfg,
            telemetry: Telemetry::disabled(),
            sampler: None,
            spans: SpanTracer::disabled(),
            host: HostProfiler::disabled(),
            host_sampling: false,
            host_nested: 0,
            stream: TelemetryStream::disabled(),
            stream_cell: 0,
            progress: None,
            audit: None,
        })
    }

    /// The configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// Runs the simulation until every thread has consumed
    /// `refs_per_thread` references and drained its misses. Returns the
    /// accumulated statistics.
    ///
    /// Calling `run` again continues with warm caches and tables (and a
    /// fresh set of thread contexts) on the same virtual clock;
    /// statistics — including the cycle count — keep accumulating.
    pub fn run(&mut self, refs_per_thread: u64) -> SystemStats {
        let n = self.cfg.num_threads();
        let start = self.queue.now();
        self.threads = (0..n)
            .map(|_| {
                let mut t = ThreadCtx::new(refs_per_thread);
                t.next_time = start;
                t
            })
            .collect();
        for t in ThreadId::all(n) {
            self.queue.push(start, Ev::ThreadStep(t));
        }
        self.stream_run_start(refs_per_thread);
        if self.host.is_enabled() {
            self.run_loop_profiled();
        } else {
            self.run_loop_plain();
        }
        self.finalize_stats();
        if self.sampler.is_some() {
            self.close_intervals(self.stats.cycles, true);
        }
        self.finish_host_observation();
        self.telemetry.flush();
        self.stats.clone()
    }

    /// The uninstrumented event loop: exactly the pre-profiler hot path
    /// (one dead branch each for the sampler and the progress meter), so
    /// runs with host observability off stay byte-identical and full
    /// speed.
    fn run_loop_plain(&mut self) {
        // u64::MAX never decrements to zero, so the budget check is a
        // never-taken branch and this is the whole event loop.
        self.run_chunk_plain(u64::MAX);
    }

    /// Runs up to `budget` untimed event-loop iterations; returns
    /// `false` once the queue is exhausted. Out of line on purpose: the
    /// plain and profiled loops share this one copy of the hot path, so
    /// enabling the profiler cannot shift its code layout — the only
    /// added cost per untimed event is the budget decrement.
    #[inline(never)]
    fn run_chunk_plain(&mut self, budget: u64) -> bool {
        let mut n = budget;
        while n != 0 {
            n -= 1;
            let Some((now, ev)) = self.queue.pop() else {
                return false;
            };
            self.dispatch(now, ev);
            // Debug builds sweep coherence invariants on a stride: the
            // full-cache walk is O(resident lines), so doing it on every
            // event would make `cargo test` unusably slow, and release
            // builds skip it entirely.
            #[cfg(debug_assertions)]
            if self.queue.popped() & 0x3FF == 0 {
                self.assert_invariants();
            }
            if self.sampler.as_ref().is_some_and(|s| s.due(now)) {
                self.close_intervals(now, false);
            }
            if self.progress.is_some() && self.queue.popped() & 0x1FFF == 0 {
                self.progress_beat();
            }
        }
        true
    }

    /// The profiled event loop: times one full iteration out of every
    /// `stride` (pop → dispatch → observation tail) and scales the
    /// observed ticks up, so per-stage attribution converges on the true
    /// wall-time split while the untimed iterations pay only a counter
    /// decrement over [`run_loop_plain`](Self::run_loop_plain).
    fn run_loop_profiled(&mut self) {
        let host = self.host.clone();
        let stride = u64::from(host.stride());
        // At stride 1 the timed windows tile the loop: each iteration
        // reuses the previous one's closing timestamp as its opening
        // one, so the profiler's own accounting cost is attributed (to
        // `EventQueue`) instead of leaking into the coverage residual.
        let contiguous = stride == 1;
        let mut carry = 0u64;
        // Measured with the same clock the stage samples use, so any
        // TSC calibration error cancels out of the coverage ratio.
        let run_wall = now_ticks();
        loop {
            if !self.profiled_iteration(&host, contiguous, &mut carry) {
                break;
            }
            // stride - 1 untimed iterations through the shared hot path.
            if !self.run_chunk_plain(stride - 1) {
                break;
            }
        }
        host.record_run_wall(ticks_to_ns(now_ticks().saturating_sub(run_wall)));
    }

    /// One timed event-loop iteration (see
    /// [`run_loop_profiled`](Self::run_loop_profiled)). Kept out of line
    /// so the untimed fast path optimizes like the plain loop; at large
    /// strides virtually every iteration takes that path.
    #[inline(never)]
    fn profiled_iteration(
        &mut self,
        host: &HostProfiler,
        contiguous: bool,
        carry: &mut u64,
    ) -> bool {
        let t_pop = if contiguous && *carry != 0 {
            *carry
        } else {
            now_ticks()
        };
        let Some((now, ev)) = self.queue.pop() else {
            return false;
        };
        let t_dispatch = now_ticks();
        let stage = ev.stage();
        self.host_sampling = true;
        self.host_nested = 0;
        self.dispatch(now, ev);
        self.host_sampling = false;
        let t_observe = now_ticks();
        let nested = self.host_nested;
        #[cfg(debug_assertions)]
        if self.queue.popped() & 0x3FF == 0 {
            self.assert_invariants();
        }
        if self.sampler.as_ref().is_some_and(|s| s.due(now)) {
            self.close_intervals(now, false);
        }
        if self.progress.is_some() && self.queue.popped() & 0x1FFF == 0 {
            self.progress_beat();
        }
        let t_done = now_ticks();
        *carry = t_done;
        host.add_sampled(HostStage::EventQueue, t_dispatch.saturating_sub(t_pop), 1);
        host.add_sampled(
            stage,
            t_observe.saturating_sub(t_dispatch).saturating_sub(nested),
            1,
        );
        if nested > 0 {
            host.add_sampled(HostStage::Snoop, nested, 1);
        }
        host.add_sampled(HostStage::Observe, t_done.saturating_sub(t_observe), 0);
        true
    }

    /// Routes one event to its phase module.
    fn dispatch(&mut self, now: Cycle, ev: Ev) {
        match ev {
            Ev::ThreadStep(t) => self.handle_thread_step(now, t),
            Ev::BusIssue(state) => self.handle_bus_issue(now, state),
            Ev::Fill { l2, line, state } => self.handle_fill(now, l2, line, state),
            Ev::SnarfFill { l2, line, dirty } => self.handle_snarf_fill(now, l2, line, dirty),
            Ev::WbDrain(l2) => self.handle_wb_drain(now, l2),
        }
    }

    /// The L3 that absorbs L2 `i`'s castouts and serves its misses.
    pub(super) fn l3_for(&mut self, i: usize) -> &mut L3Cache {
        match self.cfg.l3_organization {
            L3Organization::SharedVictim => &mut self.l3,
            L3Organization::PrivatePerL2 => &mut self.private_l3s[i],
        }
    }

    /// Logs `msg` to stderr when `line` is the `CMPSIM_TRACE_LINE` line.
    #[inline]
    pub(super) fn trace(&self, line: LineAddr, msg: &dyn Fn() -> String) {
        if self.trace_line == Some(line.raw()) {
            eprintln!("[trace {line}] {}", msg());
        }
    }

    /// [`inbound`](Self::inbound) flag: a granted demand fill in flight.
    pub(super) const INBOUND_FILL: u8 = 1;
    /// [`inbound`](Self::inbound) flag: a snarfed castout in flight.
    pub(super) const INBOUND_SNARF: u8 = 2;

    /// Marks a `kind` transfer to `l2` as in flight.
    #[inline]
    pub(super) fn inbound_insert(&mut self, l2: u8, raw: u64, kind: u8) {
        *self.inbound.entry((l2, raw)).or_insert(0) |= kind;
    }

    /// Clears a `kind` transfer to `l2`, dropping the entry when no
    /// transfer of the other kind remains in flight.
    #[inline]
    pub(super) fn inbound_remove(&mut self, l2: u8, raw: u64, kind: u8) {
        if let std::collections::hash_map::Entry::Occupied(mut e) = self.inbound.entry((l2, raw)) {
            *e.get_mut() &= !kind;
            if *e.get() == 0 {
                e.remove();
            }
        }
    }

    /// Is any transfer (fill or snarf) to `l2` in flight for this line?
    /// The snoop fan-out's joint probe — one lookup for both kinds.
    #[inline]
    pub(super) fn inbound_any(&self, l2: u8, raw: u64) -> bool {
        self.inbound.contains_key(&(l2, raw))
    }

    /// Is a `kind` transfer to `l2` in flight for this line?
    #[inline]
    pub(super) fn inbound_has(&self, l2: u8, raw: u64, kind: u8) -> bool {
        self.inbound.get(&(l2, raw)).is_some_and(|f| f & kind != 0)
    }
}
