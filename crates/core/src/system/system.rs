//! The full CMP system model and its event loop.

use std::collections::HashMap;

use cmpsim_cache::{InsertPosition, LineAddr};
use cmpsim_coherence::{
    AgentId, BusTxn, CombinedResponse, DataSource, L2Id, L2State, SnoopCollector, SnoopResponse,
    TxnId, TxnKind, WbOutcome,
};
use cmpsim_engine::spans::{SpanOutcome, SpanPhase, SpanTracer};
use cmpsim_engine::telemetry::{
    IntervalRecord, IntervalSampler, SimEvent, SquashReason, Telemetry,
};
use cmpsim_engine::{Channel, Cycle, EventQueue};
use cmpsim_mem::{L3Cache, MemoryController};
use cmpsim_ring::{Ring, RingTopology};
use cmpsim_trace::{ReferenceSource, SyntheticWorkload, ThreadId};

use crate::config::{L3Organization, SystemConfig};
use crate::policy::{PolicyConfig, RetrySwitch, RetrySwitchConfig, SnarfTable, UpdateScope, Wbht};
use crate::system::l1::L1Cache;
use crate::system::l2::{L2Unit, SnarfFlags};
use crate::system::stats::SystemStats;
use crate::system::thread::{Park, ThreadCtx};

/// Simulation events.
#[derive(Debug, Clone, Copy)]
enum Ev {
    /// A thread resumes issuing references.
    ThreadStep(ThreadId),
    /// A bus transaction arbitrates for the address ring.
    BusIssue {
        txn: BusTxn,
        origin: Origin,
        attempt: u32,
    },
    /// Demand data arrives at the requesting L2.
    Fill {
        l2: L2Id,
        line: LineAddr,
        state: L2State,
    },
    /// A snarfed castout arrives at the absorbing L2.
    SnarfFill {
        l2: L2Id,
        line: LineAddr,
        dirty: bool,
    },
    /// The L2's write-back queue drains its next entry.
    WbDrain(L2Id),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Origin {
    Miss,
    Castout { dirty: bool },
}

/// The modelled chip multiprocessor (paper Figure 1): 8 two-way-SMT
/// cores with private L1s, four sliced L2 caches, a bidirectional ring,
/// an off-chip L3 victim cache, and a memory controller — driven by a
/// synthetic workload and one of the four write-back policies.
///
/// # Example
///
/// ```
/// use cmp_adaptive_wb::{System, SystemConfig};
/// use cmpsim_trace::{Workload, CacheScale};
///
/// let cfg = SystemConfig::scaled(16);
/// let wl = Workload::Trade2.params(cfg.num_threads(), cfg.cache_scale());
/// let mut sys = System::new(cfg, wl)?;
/// let stats = sys.run(2_000);
/// assert!(stats.cycles > 0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct System {
    cfg: SystemConfig,
    workload: Box<dyn ReferenceSource>,
    queue: EventQueue<Ev>,
    ring: Ring,
    collector: SnoopCollector,
    l3: L3Cache,
    /// POWER5-style chip-private L3s (one per L2) when the configuration
    /// selects [`L3Organization::PrivatePerL2`]; empty otherwise.
    private_l3s: Vec<L3Cache>,
    mem: MemoryController,
    l3_link: Channel,
    /// Dedicated per-L2 buses to the private L3s.
    private_l3_links: Vec<Channel>,
    mem_link: Channel,
    l2s: Vec<L2Unit>,
    l1s: Vec<L1Cache>,
    threads: Vec<ThreadCtx>,
    retry_switch: RetrySwitch,
    snarf_table: Option<SnarfTable>,
    snarf_insert_pos: InsertPosition,
    txn_seq: TxnId,
    stats: SystemStats,
    /// Lines written back and not yet re-referenced: line -> accepted by
    /// L3 (Table 2 tracking).
    wb_pending: HashMap<u64, bool>,
    /// Miss issue times for the latency histogram: (l2, line) -> cycle.
    miss_issue: HashMap<(u8, u64), Cycle>,
    /// Fills granted by a combined response but not yet landed:
    /// (l2, line). Snoops retry against these — ownership is in flight.
    inbound_fills: std::collections::HashSet<(u8, u64)>,
    /// Snarfed castouts in flight to their absorbing L2: the line is in
    /// no tag array during the transfer, so snoops must retry against
    /// these too (the absorber has reserved a line-fill buffer for it).
    inbound_snarfs: std::collections::HashSet<(u8, u64)>,
    /// Debug: line (raw) whose every transition is logged to stderr.
    /// Set via the `CMPSIM_TRACE_LINE` environment variable (hex).
    trace_line: Option<u64>,
    /// Event-trace handle, shared (cloned) into every instrumented
    /// component. Disabled by default: one dead branch per emission site.
    telemetry: Telemetry,
    /// Interval sampler snapshotting key counters every N cycles.
    sampler: Option<IntervalSampler>,
    /// Transaction span tracer. Disabled by default: one dead branch per
    /// instrumentation site, mirroring `telemetry`.
    spans: SpanTracer,
}

/// Errors from building a [`System`].
#[derive(Debug)]
pub enum SystemError {
    /// Invalid cache geometry in the configuration.
    Geometry(cmpsim_cache::GeometryError),
    /// Invalid workload parameters.
    Workload(cmpsim_trace::WorkloadError),
}

impl std::fmt::Display for SystemError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SystemError::Geometry(e) => write!(f, "invalid geometry: {e}"),
            SystemError::Workload(e) => write!(f, "invalid workload: {e}"),
        }
    }
}

impl std::error::Error for SystemError {}

impl From<cmpsim_cache::GeometryError> for SystemError {
    fn from(e: cmpsim_cache::GeometryError) -> Self {
        SystemError::Geometry(e)
    }
}

impl From<cmpsim_trace::WorkloadError> for SystemError {
    fn from(e: cmpsim_trace::WorkloadError) -> Self {
        SystemError::Workload(e)
    }
}

impl System {
    /// Builds a system from a configuration and workload parameters.
    ///
    /// # Errors
    ///
    /// Returns [`SystemError`] for invalid geometries or workloads.
    pub fn new(
        cfg: SystemConfig,
        workload_params: cmpsim_trace::WorkloadParams,
    ) -> Result<Self, SystemError> {
        cfg.validate()?;
        let workload = SyntheticWorkload::new(workload_params, cfg.seed)?;
        Self::with_source(cfg, Box::new(workload))
    }

    /// Builds a system over any reference source — a synthetic workload
    /// or a recorded-trace playback ([`cmpsim_trace::TracePlayback`]),
    /// matching the paper's trace-driven methodology.
    ///
    /// # Errors
    ///
    /// Returns [`SystemError`] for invalid geometries.
    pub fn with_source(
        cfg: SystemConfig,
        workload: Box<dyn ReferenceSource>,
    ) -> Result<Self, SystemError> {
        cfg.validate()?;

        // Policy wiring.
        let (wbht_cfg, snarf_cfg) = match &cfg.policy {
            PolicyConfig::Baseline => (None, None),
            PolicyConfig::Wbht(w) => (Some(*w), None),
            PolicyConfig::Snarf(s) => (None, Some(*s)),
            PolicyConfig::Combined(w, s) => (Some(*w), Some(*s)),
        };
        let snarf_table = match snarf_cfg {
            Some(s) => Some(SnarfTable::new(s)?),
            None => None,
        };
        let snarf_insert_pos = snarf_cfg
            .map(|s| s.insert_pos)
            .unwrap_or(InsertPosition::Mru);

        let l2s = L2Id::all(cfg.num_l2)
            .map(|id| {
                let wbht = wbht_cfg.map(Wbht::new).transpose()?;
                Ok(L2Unit::new(id, &cfg, wbht))
            })
            .collect::<Result<Vec<_>, cmpsim_cache::GeometryError>>()?;

        let l1s = match cfg.l1 {
            Some(l1cfg) => (0..cfg.cores)
                .map(|_| L1Cache::new(l1cfg, cfg.line_bytes))
                .collect(),
            None => Vec::new(),
        };

        let topo = RingTopology::standard_cmp(cfg.num_l2, cfg.ring.hop_cycles);
        let ring = Ring::new(topo, cfg.ring);
        let num_l2 = cfg.num_l2 as usize;
        let retry_switch = RetrySwitch::new(cfg.retry_switch);

        let (private_l3s, private_l3_links) = match cfg.l3_organization {
            L3Organization::SharedVictim => (Vec::new(), Vec::new()),
            L3Organization::PrivatePerL2 => {
                // Same total capacity, partitioned per L2.
                let mut pc = cfg.l3;
                let per = cfg.l3.geometry.per_slice().size_bytes() / cfg.num_l2 as u64;
                pc.geometry = cmpsim_cache::SlicedGeometry::new(
                    cfg.l3.geometry.slices(),
                    per.max(cfg.line_bytes * cfg.l3.geometry.per_slice().assoc()),
                    cfg.l3.geometry.per_slice().assoc(),
                    cfg.line_bytes,
                )?;
                (
                    (0..cfg.num_l2).map(|_| L3Cache::new(pc)).collect(),
                    (0..cfg.num_l2)
                        .map(|_| Channel::new(cfg.l3_link_lanes, cfg.l3_link_occupancy))
                        .collect(),
                )
            }
        };
        Ok(System {
            ring,
            collector: SnoopCollector::new(),
            l3: L3Cache::new(cfg.l3),
            private_l3s,
            mem: MemoryController::new(cfg.mem),
            l3_link: Channel::new(cfg.l3_link_lanes, cfg.l3_link_occupancy),
            private_l3_links,
            mem_link: Channel::new(cfg.mem_link_lanes, cfg.mem_link_occupancy),
            l2s,
            l1s,
            threads: Vec::new(),
            retry_switch,
            snarf_table,
            snarf_insert_pos,
            txn_seq: TxnId::ZERO,
            stats: SystemStats::new(num_l2),
            wb_pending: HashMap::new(),
            miss_issue: HashMap::new(),
            inbound_fills: std::collections::HashSet::new(),
            inbound_snarfs: std::collections::HashSet::new(),
            trace_line: std::env::var("CMPSIM_TRACE_LINE")
                .ok()
                .and_then(|v| u64::from_str_radix(v.trim_start_matches("0x"), 16).ok()),
            queue: EventQueue::with_capacity(1 << 16),
            workload,
            cfg,
            telemetry: Telemetry::disabled(),
            sampler: None,
            spans: SpanTracer::disabled(),
        })
    }

    /// Overrides the retry-switch configuration (scaled-down runs use a
    /// proportionally shorter window).
    pub fn set_retry_switch(&mut self, cfg: RetrySwitchConfig) {
        self.retry_switch = RetrySwitch::new(cfg);
        self.retry_switch.attach_telemetry(self.telemetry.clone());
    }

    /// Attaches an event-trace handle and propagates clones of it to
    /// every instrumented component (L2s and their WBHTs, the retry
    /// switch, the snarf table, and the L3s).
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        for l2 in &mut self.l2s {
            l2.attach_telemetry(telemetry.clone());
        }
        self.retry_switch.attach_telemetry(telemetry.clone());
        if let Some(t) = &mut self.snarf_table {
            t.attach_telemetry(telemetry.clone());
        }
        self.l3.attach_telemetry(telemetry.clone());
        for l3 in &mut self.private_l3s {
            l3.attach_telemetry(telemetry.clone());
        }
        self.telemetry = telemetry;
    }

    /// Attaches a transaction span tracer. Every subsequent L2
    /// miss/upgrade/castout transaction gets a cycle-stamped phase
    /// timeline (subject to the tracer's sampling rate). Pass a clone and
    /// keep the original: clones share one record book, so the caller can
    /// read the finished spans after [`run`](Self::run).
    pub fn set_span_tracer(&mut self, spans: SpanTracer) {
        self.spans = spans;
    }

    /// The attached span tracer (disabled unless
    /// [`set_span_tracer`](Self::set_span_tracer) was called).
    pub fn span_tracer(&self) -> &SpanTracer {
        &self.spans
    }

    /// Enables interval sampling: key counters are snapshotted every
    /// `period` cycles into [`interval_records`](Self::interval_records)
    /// (and, when tracing is on, emitted as [`SimEvent::Interval`]).
    ///
    /// # Panics
    ///
    /// Panics if `period` is 0.
    pub fn enable_interval_sampling(&mut self, period: Cycle) {
        self.sampler = Some(IntervalSampler::new(period));
    }

    /// The interval time series recorded so far (empty when sampling is
    /// disabled).
    pub fn interval_records(&self) -> &[IntervalRecord] {
        self.sampler.as_ref().map_or(&[], |s| s.records())
    }

    /// The configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// Runs the simulation until every thread has consumed
    /// `refs_per_thread` references and drained its misses. Returns the
    /// accumulated statistics.
    ///
    /// Calling `run` again continues with warm caches and tables (and a
    /// fresh set of thread contexts) on the same virtual clock;
    /// statistics — including the cycle count — keep accumulating.
    pub fn run(&mut self, refs_per_thread: u64) -> SystemStats {
        let n = self.cfg.num_threads();
        let start = self.queue.now();
        self.threads = (0..n)
            .map(|_| {
                let mut t = ThreadCtx::new(refs_per_thread);
                t.next_time = start;
                t
            })
            .collect();
        for t in ThreadId::all(n) {
            self.queue.push(start, Ev::ThreadStep(t));
        }
        while let Some((now, ev)) = self.queue.pop() {
            self.dispatch(now, ev);
            if self.sampler.as_ref().is_some_and(|s| s.due(now)) {
                self.close_intervals(now, false);
            }
        }
        self.finalize_stats();
        if self.sampler.is_some() {
            self.close_intervals(self.stats.cycles, true);
        }
        self.telemetry.flush();
        self.stats.clone()
    }

    /// Closes passed sampler window(s) at `now` (`finish` also closes
    /// the trailing partial window) and mirrors each new record into the
    /// event trace.
    fn close_intervals(&mut self, now: Cycle, finish: bool) {
        let snapshot = self.counter_snapshot();
        let Some(sampler) = &mut self.sampler else {
            return;
        };
        let already = sampler.records().len();
        if finish {
            sampler.finish(now, &snapshot);
        } else {
            sampler.sample(now, &snapshot);
        }
        for rec in &sampler.records()[already..] {
            self.telemetry.emit(rec.end, || SimEvent::Interval {
                start: rec.start,
                end: rec.end,
                counters: rec.counters.clone(),
            });
        }
    }

    /// The cumulative counters the interval sampler tracks.
    fn counter_snapshot(&self) -> Vec<(&'static str, u64)> {
        let s = &self.stats;
        vec![
            ("refs", s.refs),
            ("l2_misses", s.l2.iter().map(|l| l.misses).sum()),
            ("fills_from_l2", s.fills_from_l2),
            ("fills_from_l3", s.fills_from_l3),
            ("fills_from_memory", s.fills_from_memory),
            ("wb_dirty", s.wb.dirty_requests),
            ("wb_clean", s.wb.clean_requests),
            ("wb_clean_aborted", s.wb.clean_aborted),
            ("wb_squashed_l3", s.wb.clean_squashed_l3),
            ("wb_snarfed", s.wb.snarfed),
            ("retries_total", s.retries_total),
            ("retries_l3", s.retries_l3),
            ("upgrades", s.upgrades),
        ]
    }

    /// Statistics accumulated so far (valid after [`run`](Self::run)).
    pub fn stats(&self) -> &SystemStats {
        &self.stats
    }

    /// The L3 model (for oracle peeks and statistics). In the private
    /// organization this is the (unused) shared instance; use
    /// [`l3_stats`](Self::l3_stats) for aggregate numbers.
    pub fn l3(&self) -> &L3Cache {
        &self.l3
    }

    /// Aggregate L3 statistics across the shared instance or all
    /// private L3s, whichever the organization uses.
    pub fn l3_stats(&self) -> cmpsim_mem::L3Stats {
        match self.cfg.l3_organization {
            L3Organization::SharedVictim => self.l3.stats(),
            L3Organization::PrivatePerL2 => {
                let mut acc = cmpsim_mem::L3Stats::default();
                for l3 in &self.private_l3s {
                    let s = l3.stats();
                    acc.read_hits += s.read_hits;
                    acc.read_misses += s.read_misses;
                    acc.reads_served += s.reads_served;
                    acc.castouts_accepted += s.castouts_accepted;
                    acc.castouts_squashed += s.castouts_squashed;
                    acc.retries_issued += s.retries_issued;
                    acc.invalidations += s.invalidations;
                    acc.dirty_victims_to_memory += s.dirty_victims_to_memory;
                    acc.read_queue_high_water =
                        acc.read_queue_high_water.max(s.read_queue_high_water);
                    acc.data_queue_high_water =
                        acc.data_queue_high_water.max(s.data_queue_high_water);
                }
                acc
            }
        }
    }

    /// Coherence state of `line` in L2 `l2`, if resident (inspection
    /// API for tests and tools).
    pub fn l2_state(&self, l2: usize, line: LineAddr) -> Option<L2State> {
        self.l2s.get(l2).and_then(|u| u.state_of(line))
    }

    /// Is `line` currently parked in L2 `l2`'s write-back queue?
    pub fn l2_wbq_contains(&self, l2: usize, line: LineAddr) -> bool {
        self.l2s.get(l2).is_some_and(|u| u.wbq.contains(line))
    }

    /// The L3 that absorbs L2 `i`'s castouts and serves its misses.
    fn l3_for(&mut self, i: usize) -> &mut L3Cache {
        match self.cfg.l3_organization {
            L3Organization::SharedVictim => &mut self.l3,
            L3Organization::PrivatePerL2 => &mut self.private_l3s[i],
        }
    }

    /// The memory controller statistics.
    pub fn memory(&self) -> &MemoryController {
        &self.mem
    }

    /// Ring utilization statistics.
    pub fn ring_stats(&self) -> cmpsim_ring::RingStats {
        self.ring.stats()
    }

    /// Merged WBHT statistics across all L2s (empty stats when the
    /// policy has no WBHT).
    pub fn wbht_stats(&self) -> crate::policy::WbhtStats {
        let mut acc = crate::policy::WbhtStats::default();
        for l2 in &self.l2s {
            if let Some(w) = &l2.wbht {
                let s = w.stats();
                acc.decisions += s.decisions;
                acc.aborted += s.aborted;
                acc.correct += s.correct;
                acc.allocated += s.allocated;
            }
        }
        acc
    }

    /// Snarf-table statistics (when the policy snarfs).
    pub fn snarf_table_stats(&self) -> Option<crate::policy::SnarfStats> {
        self.snarf_table.as_ref().map(|t| t.stats())
    }

    /// Verifies protocol invariants across all caches (used by tests):
    /// at most one dirty owner per line, `E`/`M` exclusivity, at most one
    /// `SL` holder.
    ///
    /// # Panics
    ///
    /// Panics with a description of the violated invariant.
    pub fn check_invariants(&self) {
        use std::collections::HashMap as Map;
        let mut holders: Map<u64, Vec<(usize, L2State)>> = Map::new();
        for (i, l2) in self.l2s.iter().enumerate() {
            for line in all_lines(l2) {
                let st = l2.state_of(line).expect("listed line resident");
                holders.entry(line.raw()).or_default().push((i, st));
            }
        }
        for (line, hs) in holders {
            let dirty = hs.iter().filter(|(_, s)| s.is_dirty()).count();
            assert!(dirty <= 1, "line {line:#x}: {dirty} dirty owners: {hs:?}");
            let excl = hs.iter().filter(|(_, s)| s.is_exclusive()).count();
            if excl > 0 {
                assert_eq!(hs.len(), 1, "line {line:#x}: E/M with sharers: {hs:?}");
            }
            let sl = hs.iter().filter(|(_, s)| *s == L2State::SharedLast).count();
            assert!(sl <= 1, "line {line:#x}: {sl} SL holders: {hs:?}");
        }
    }

    #[inline]
    fn trace(&self, line: LineAddr, msg: &dyn Fn() -> String) {
        if self.trace_line == Some(line.raw()) {
            eprintln!("[trace {line}] {}", msg());
        }
    }

    // --- event dispatch ---------------------------------------------------

    fn dispatch(&mut self, now: Cycle, ev: Ev) {
        match ev {
            Ev::ThreadStep(t) => self.handle_thread_step(now, t),
            Ev::BusIssue {
                txn,
                origin,
                attempt,
            } => self.handle_bus_issue(now, txn, origin, attempt),
            Ev::Fill { l2, line, state } => self.handle_fill(now, l2, line, state),
            Ev::SnarfFill { l2, line, dirty } => self.handle_snarf_fill(now, l2, line, dirty),
            Ev::WbDrain(l2) => self.handle_wb_drain(now, l2),
        }
    }

    // --- thread issue -----------------------------------------------------

    fn handle_thread_step(&mut self, now: Cycle, t: ThreadId) {
        let ti = t.index();
        if self.threads[ti].park == Park::Done {
            return;
        }
        self.threads[ti].park = Park::Running;
        self.threads[ti].next_time = self.threads[ti].next_time.max(now);
        let l2id = self.cfg.l2_of_thread(t);
        let mut processed = 0usize;
        loop {
            if self.threads[ti].stream_done() {
                self.threads[ti].park = Park::Done;
                self.note_possible_completion(now, t);
                return;
            }
            if self.threads[ti].outstanding >= self.cfg.max_outstanding {
                self.threads[ti].park = Park::Outstanding;
                return;
            }
            if processed >= self.cfg.thread_batch {
                let at = self.threads[ti].next_time;
                self.queue.push(at.max(now), Ev::ThreadStep(t));
                return;
            }
            let rec = match self.threads[ti].pending.take() {
                Some(r) => r,
                None => self.workload.next_record(t),
            };
            if !self.process_reference(t, l2id, rec) {
                // Parked on MSHR exhaustion; the record is preserved.
                return;
            }
            processed += 1;
        }
    }

    /// Processes one reference; returns `false` when the thread parked
    /// (record preserved in `pending`).
    fn process_reference(
        &mut self,
        t: ThreadId,
        l2id: L2Id,
        rec: cmpsim_trace::TraceRecord,
    ) -> bool {
        let ti = t.index();
        let i = l2id.index();
        let core = self.cfg.core_of_thread(t);
        let line = rec.addr.line(self.cfg.line_bytes);
        let is_store = rec.op.is_store();
        let t_now = self.threads[ti].next_time;

        // L1 filter (loads only; stores write through).
        if !is_store && !self.l1s.is_empty() && self.l1s[core].load(line) {
            self.stats.l1_hits += 1;
            self.count_ref(ti, is_store);
            return true;
        }

        // L2 lookup.
        let mut resident = self.l2s[i].state_of(line);

        // Write-back queue recovery: the line was evicted recently and is
        // still waiting in our own castout queue — pull it back.
        if resident.is_none()
            && !self.l2s[i].castouts_inflight.contains(&line)
            && self.l2s[i].wbq.contains(line)
        {
            let e = self.l2s[i].wbq.remove(line).expect("entry just seen");
            // While parked in the queue the entry may have served
            // interventions (the queue is snoopable), so peers can hold
            // Shared copies now: a recovered dirty line is then the
            // shared dirty owner (T), and a recovered clean line must
            // not claim a second SL.
            let peer_copies =
                (0..self.l2s.len()).any(|j| j != i && self.l2s[j].state_of(line).is_some());
            let st = match (e.dirty, peer_copies) {
                (true, false) => L2State::Modified,
                (true, true) => L2State::Tagged,
                (false, _) => self.sanitize_install(i, line, L2State::SharedLast),
            };
            if let Some((vline, vst)) = self.l2s[i].fill(line, st, InsertPosition::Mru) {
                self.on_l2_eviction(t_now, i, vline, vst);
            }
            self.trace(line, &|| format!("wbq-recovery L2#{i} -> {st}"));
            self.stats.l2[i].wbq_recoveries += 1;
            resident = Some(st);
        }

        match resident {
            Some(st) if !is_store || st.is_writable() => {
                // Plain hit.
                self.l2s[i].touch(line);
                if is_store && st == L2State::Exclusive {
                    self.l2s[i].set_state(line, L2State::Modified);
                }
                self.note_l2_hit(i, core, line, is_store);
                self.count_ref(ti, is_store);
                true
            }
            Some(_) => {
                // Store on a shared copy: upgrade transaction.
                self.note_l2_hit(i, core, line, is_store);
                self.start_miss(t, l2id, line, TxnKind::Upgrade, rec)
            }
            None => {
                let kind = if is_store {
                    TxnKind::ReadExclusive
                } else {
                    TxnKind::ReadShared
                };
                self.stats.l2[i].misses += 1;
                self.telemetry.emit(t_now, || SimEvent::L2Miss {
                    l2: i as u32,
                    line: line.raw(),
                    store: is_store,
                });
                self.start_miss(t, l2id, line, kind, rec)
            }
        }
    }

    fn note_l2_hit(&mut self, i: usize, core: usize, line: LineAddr, is_store: bool) {
        self.stats.l2[i].hits += 1;
        if let Some(f) = self.l2s[i].snarfed_lines.get_mut(&line.raw()) {
            if !f.used_locally {
                f.used_locally = true;
                self.stats.snarf.used_locally += 1;
            }
        }
        if !is_store && !self.l1s.is_empty() {
            self.l1s[core].fill(line);
        }
    }

    fn count_ref(&mut self, ti: usize, is_store: bool) {
        self.threads[ti].issued += 1;
        self.threads[ti].next_time += self.workload.issue_interval();
        self.stats.refs += 1;
        if is_store {
            self.stats.stores += 1;
        } else {
            self.stats.loads += 1;
        }
    }

    /// Registers a miss/upgrade with the MSHRs and issues the bus
    /// transaction for primaries. Returns `false` when parked.
    fn start_miss(
        &mut self,
        t: ThreadId,
        l2id: L2Id,
        line: LineAddr,
        kind: TxnKind,
        rec: cmpsim_trace::TraceRecord,
    ) -> bool {
        let ti = t.index();
        let i = l2id.index();
        let t_now = self.threads[ti].next_time;
        match self.l2s[i].mshrs.allocate(line, t) {
            Err(_) => {
                self.threads[ti].pending = Some(rec);
                self.threads[ti].park = Park::MshrFull;
                self.l2s[i].waiting_threads.push(t);
                false
            }
            Ok(primary) => {
                self.threads[ti].outstanding += 1;
                if primary {
                    let txn = BusTxn::new(self.txn_seq.bump(), kind, line, l2id);
                    self.spans
                        .start(txn.span_id(), txn.span_kind(), i as u32, line.raw(), t_now);
                    self.miss_issue.insert((i as u8, line.raw()), t_now);
                    self.queue.push(
                        (t_now + self.cfg.miss_detect_cycles).max(self.queue.now()),
                        Ev::BusIssue {
                            txn,
                            origin: Origin::Miss,
                            attempt: 0,
                        },
                    );
                }
                self.count_ref(ti, rec.op.is_store());
                true
            }
        }
    }

    // --- bus transactions ---------------------------------------------------

    fn handle_bus_issue(&mut self, now: Cycle, txn: BusTxn, origin: Origin, attempt: u32) {
        match origin {
            Origin::Miss => self.bus_issue_miss(now, txn, attempt),
            Origin::Castout { dirty } => self.bus_issue_castout(now, txn, dirty, attempt),
        }
    }

    fn bus_issue_miss(&mut self, now: Cycle, mut txn: BusTxn, attempt: u32) {
        let i = txn.src.index();
        let line = txn.line;
        let sid = txn.span_id();
        // First attempt: the segment since span start is the miss-detect
        // / MSHR window. Retries: the segment since the combined response
        // is back-off queueing.
        if attempt == 0 {
            self.spans.mark(sid, SpanPhase::MshrAlloc, now);
        } else {
            self.spans.mark(sid, SpanPhase::RetryBackoff, now);
        }
        // Revalidate against state changes since the miss was detected
        // (snarfs, peer castout squashes, races during retries).
        let st = self.l2s[i].state_of(line);
        match (txn.kind, st) {
            (TxnKind::Upgrade, None) => txn.kind = TxnKind::ReadExclusive,
            (TxnKind::Upgrade, Some(s)) if s.is_writable() => {
                // Already exclusive (e.g. peers vanished): done.
                self.spans.finish(sid, SpanOutcome::ResolvedLocal, now);
                self.queue.push(
                    now,
                    Ev::Fill {
                        l2: txn.src,
                        line,
                        state: L2State::Modified,
                    },
                );
                return;
            }
            (TxnKind::ReadShared, Some(_)) => {
                // The line arrived by other means (snarf): hit.
                self.spans.finish(sid, SpanOutcome::ResolvedLocal, now);
                self.queue.push(
                    now,
                    Ev::Fill {
                        l2: txn.src,
                        line,
                        state: st.expect("present"),
                    },
                );
                return;
            }
            (TxnKind::ReadExclusive, Some(s)) => {
                if s.is_writable() {
                    self.spans.finish(sid, SpanOutcome::ResolvedLocal, now);
                    self.queue.push(
                        now,
                        Ev::Fill {
                            l2: txn.src,
                            line,
                            state: L2State::Modified,
                        },
                    );
                    return;
                }
                txn.kind = TxnKind::Upgrade;
            }
            _ => {}
        }

        let src_agent = AgentId::L2(txn.src);
        let (arb_wait, t_ring) = self.ring.issue_address_timed(now, src_agent);
        self.spans.mark(sid, SpanPhase::RingArb, now + arb_wait);
        self.spans.mark(sid, SpanPhase::RingTransit, t_ring);

        // Snoop phase.
        let mut responses: Vec<SnoopResponse> = Vec::with_capacity(self.l2s.len() + 2);
        let mut t_collect: Cycle = self.ring.response_at_collector(t_ring, src_agent);
        for j in 0..self.l2s.len() {
            if j == i {
                continue;
            }
            let agent = AgentId::L2(L2Id::new(j as u8));
            let t_sn = self.ring.snoop_arrival(t_ring, src_agent, agent);
            let t_resp = self.snoop_port(j, t_sn);
            let resp = self.snoop_l2_read(j, line);
            t_collect = t_collect.max(self.ring.response_at_collector(t_resp, agent));
            responses.push(resp);
        }
        // L3 snoop: the shared victim cache, or (private organization)
        // the requester's own L3 — probed at the same point of the
        // address phase over its dedicated bus.
        {
            let t_sn = self.ring.snoop_arrival(t_ring, src_agent, AgentId::L3);
            let snoop_lat = self.cfg.l2_snoop_cycles;
            let resp = if txn.kind == TxnKind::Upgrade {
                SnoopResponse::Null
            } else {
                self.l3_for(i).snoop_read(t_sn, line)
            };
            let t_resp = t_sn + snoop_lat;
            t_collect = t_collect.max(self.ring.response_at_collector(t_resp, AgentId::L3));
            responses.push(resp);
        }
        // Memory ack.
        {
            let t_sn = self.ring.snoop_arrival(t_ring, src_agent, AgentId::Memory);
            t_collect = t_collect.max(self.ring.response_at_collector(t_sn, AgentId::Memory));
            responses.push(if txn.kind == TxnKind::Upgrade {
                SnoopResponse::Null
            } else {
                SnoopResponse::MemoryAck
            });
        }

        let combined = self.collector.combine(&txn, &responses);
        let t_seen = self.ring.combined_arrival(t_collect, src_agent);

        match combined {
            CombinedResponse::Retry { l3_issued } => {
                self.spans.mark(sid, SpanPhase::SnoopWindow, t_seen);
                self.record_retry(t_seen, l3_issued);
                self.stats.read_retries += 1;
                self.queue.push(
                    t_seen + self.retry_delay(&txn, attempt),
                    Ev::BusIssue {
                        txn,
                        origin: Origin::Miss,
                        attempt: attempt + 1,
                    },
                );
            }
            CombinedResponse::UpgradeOk => {
                self.trace(line, &|| format!("upgrade-ok {}", txn.src));
                self.spans.mark(sid, SpanPhase::SnoopWindow, t_seen);
                self.spans.finish(sid, SpanOutcome::Upgraded, t_seen);
                self.stats.upgrades += 1;
                self.apply_invalidations(txn.src, line, None);
                self.inbound_fills
                    .insert((txn.src.index() as u8, line.raw()));
                self.queue.push(
                    t_seen,
                    Ev::Fill {
                        l2: txn.src,
                        line,
                        state: L2State::Modified,
                    },
                );
            }
            CombinedResponse::Read { source, sharers } => {
                self.apply_read(t_collect, t_seen, &txn, source, sharers);
            }
            CombinedResponse::Wb(_) => unreachable!("castout response to a read"),
        }
    }

    /// Books an L2's snoop tag port (pipelined: the port is occupied for
    /// `l2_snoop_occupancy`, the full lookup takes `l2_snoop_cycles`).
    fn snoop_port(&mut self, j: usize, t_sn: Cycle) -> Cycle {
        let occ = self.cfg.l2_snoop_occupancy.min(self.cfg.l2_snoop_cycles);
        self.l2s[j].snoop_srv.reserve_for(t_sn, occ) + (self.cfg.l2_snoop_cycles - occ)
    }

    fn snoop_l2_read(&mut self, j: usize, line: LineAddr) -> SnoopResponse {
        let id = L2Id::new(j as u8);
        // Address collision with a granted, in-flight fill at this
        // peer: ownership is in transit, so the snooped transaction must
        // retry (standard snoop behaviour for MSHR address matches).
        // Ungranted misses do NOT retry — their own bus phase is still
        // pending and will observe whatever this transaction decides.
        if self.inbound_fills.contains(&(j as u8, line.raw()))
            || self.inbound_snarfs.contains(&(j as u8, line.raw()))
        {
            return SnoopResponse::L2Retry(id);
        }
        match self.l2s[j].state_of(line) {
            Some(L2State::Modified) | Some(L2State::Tagged) => SnoopResponse::DirtyIntervene(id),
            Some(L2State::Exclusive) | Some(L2State::SharedLast) => {
                SnoopResponse::CleanIntervene(id)
            }
            Some(L2State::Shared) => SnoopResponse::SharedNoIntervene(id),
            None => {
                // The write-back queue is snoopable: a line parked there
                // is still this cache's to provide.
                match self.l2s[j].wbq.get(line) {
                    Some(e) if e.dirty => SnoopResponse::DirtyIntervene(id),
                    Some(_) => SnoopResponse::CleanIntervene(id),
                    None => SnoopResponse::Null,
                }
            }
        }
    }

    fn apply_read(
        &mut self,
        t_collect: Cycle,
        t_seen: Cycle,
        txn: &BusTxn,
        source: DataSource,
        sharers: bool,
    ) {
        let line = txn.line;
        let src_agent = AgentId::L2(txn.src);

        // Reuse bookkeeping: this is a demand miss on the line.
        if let Some(accepted) = self.wb_pending.remove(&line.raw()) {
            self.stats.wb_reuse.reused_total += 1;
            if accepted {
                self.stats.wb_reuse.reused_accepted += 1;
            }
        }
        if let Some(t) = &mut self.snarf_table {
            t.observe_miss(line);
        }

        self.trace(line, &|| {
            format!(
                "grant {} src={:?} sharers={sharers} for {}",
                txn.kind, source, txn.src
            )
        });
        let install = match (txn.kind, source) {
            (TxnKind::ReadExclusive, _) => L2State::Modified,
            (_, DataSource::L2 { dirty: true, .. }) => L2State::Shared,
            (_, DataSource::L2 { dirty: false, .. }) => L2State::SharedLast,
            (_, DataSource::L3 { .. }) => {
                if sharers {
                    L2State::Shared
                } else {
                    L2State::SharedLast
                }
            }
            (_, DataSource::Memory) => {
                if sharers {
                    L2State::Shared
                } else {
                    L2State::Exclusive
                }
            }
        };

        let sid = txn.span_id();
        let arrival = match source {
            DataSource::L2 { provider, dirty: _ } => {
                let p = provider.index();
                self.stats.fills_from_l2 += 1;
                self.stats.l2[p].interventions_provided += 1;
                if let Some(f) = self.l2s[p].snarfed_lines.get_mut(&line.raw()) {
                    if !f.used_for_intervention {
                        f.used_for_intervention = true;
                        self.stats.snarf.used_for_intervention += 1;
                    }
                }
                // Provider-side state transition.
                if txn.kind == TxnKind::ReadShared {
                    if let Some(cur) = self.l2s[p].state_of(line) {
                        self.l2s[p].set_state(line, cur.after_providing_shared());
                    }
                }
                let p_agent = AgentId::L2(provider);
                let t_seen_p = self.ring.combined_arrival(t_collect, p_agent);
                self.spans.mark(sid, SpanPhase::SnoopWindow, t_seen_p);
                let (p_wait, t_data) = self.l2s[p].array_srv.reserve_timed(t_seen_p);
                self.spans
                    .mark(sid, SpanPhase::PeerQueue, t_seen_p + p_wait);
                self.spans.mark(sid, SpanPhase::PeerService, t_data);
                self.ring.transfer_data(t_data, p_agent, src_agent)
            }
            DataSource::L3 { .. } => {
                self.stats.fills_from_l3 += 1;
                let t_seen_l3 = self.ring.combined_arrival(t_collect, AgentId::L3);
                self.spans.mark(sid, SpanPhase::SnoopWindow, t_seen_l3);
                let invalidate = txn.kind == TxnKind::ReadExclusive;
                let i = txn.src.index();
                let occ = self.cfg.l3_link_occupancy;
                let delay = self.cfg.l3_link_delay;
                let (ready, _st, l3_wait) = self
                    .l3_for(i)
                    .provide_read_timed(t_seen_l3, line, invalidate);
                self.spans
                    .mark(sid, SpanPhase::L3Queue, t_seen_l3 + l3_wait);
                self.spans.mark(sid, SpanPhase::L3Service, ready);
                let link = match self.cfg.l3_organization {
                    L3Organization::SharedVictim => &mut self.l3_link,
                    L3Organization::PrivatePerL2 => &mut self.private_l3_links[i],
                };
                link.reserve_for(ready, occ) + delay
            }
            DataSource::Memory => {
                self.stats.fills_from_memory += 1;
                let t_seen_m = self.ring.combined_arrival(t_collect, AgentId::Memory);
                self.spans.mark(sid, SpanPhase::SnoopWindow, t_seen_m);
                let (bank_wait, ready) = self.mem.read_timed(t_seen_m, line);
                self.spans
                    .mark(sid, SpanPhase::MemQueue, t_seen_m + bank_wait);
                self.spans.mark(sid, SpanPhase::MemService, ready);
                self.mem_link
                    .reserve_for(ready, self.cfg.mem_link_occupancy)
                    + self.cfg.mem_link_delay
            }
        };

        if txn.kind == TxnKind::ReadExclusive {
            let skip_l3 = matches!(source, DataSource::L3 { .. });
            self.apply_invalidations(txn.src, line, skip_l3.then_some(()));
        }

        self.inbound_fills
            .insert((txn.src.index() as u8, line.raw()));
        let t_fill = arrival.max(t_seen);
        self.spans.mark(sid, SpanPhase::DataReturn, t_fill);
        self.spans
            .finish(sid, SpanOutcome::Filled(source.fill_source()), t_fill);
        if self.telemetry.is_enabled() {
            let l2 = txn.src.index() as u32;
            let latency = self
                .miss_issue
                .get(&(txn.src.index() as u8, line.raw()))
                .map_or(0, |&t0| t_fill.saturating_sub(t0));
            self.telemetry.emit(t_fill, || SimEvent::L2Fill {
                l2,
                line: line.raw(),
                source: source.fill_source(),
                latency,
            });
        }
        self.queue.push(
            t_fill,
            Ev::Fill {
                l2: txn.src,
                line,
                state: install,
            },
        );
    }

    /// Invalidates `line` in every L2 except `keeper`, in their L1s, in
    /// peer write-back queues (the dirt, if any, has been claimed by the
    /// requester), and in the L3 (unless the L3 already invalidated as
    /// the data source, signalled by `l3_done`).
    fn apply_invalidations(&mut self, keeper: L2Id, line: LineAddr, l3_done: Option<()>) {
        for j in 0..self.l2s.len() {
            if j == keeper.index() {
                continue;
            }
            if self.l2s[j].invalidate(line).is_some() {
                self.trace(line, &|| format!("invalidate L2#{j} (keeper {keeper})"));
                self.invalidate_l1s_of(j, line);
                self.finalize_snarf_flags(j, line);
            }
            if self.l2s[j].wbq.remove(line).is_some() {
                // The entry was claimed; if its castout was in flight the
                // pending bus event will notice the mismatch and move on.
                self.l2s[j].castouts_inflight.remove(&line);
            }
        }
        if l3_done.is_none() {
            match self.cfg.l3_organization {
                L3Organization::SharedVictim => self.l3.invalidate(line),
                L3Organization::PrivatePerL2 => {
                    // A stale copy may sit in any private L3 (the line
                    // may have been cast out by a previous owner).
                    for l3 in &mut self.private_l3s {
                        l3.invalidate(line);
                    }
                }
            }
        }
    }

    fn invalidate_l1s_of(&mut self, l2_idx: usize, line: LineAddr) {
        if self.l1s.is_empty() {
            return;
        }
        let cores_per_l2 = self.cfg.cores as usize / self.cfg.num_l2 as usize;
        for c in l2_idx * cores_per_l2..(l2_idx + 1) * cores_per_l2 {
            self.l1s[c].invalidate(line);
        }
    }

    fn finalize_snarf_flags(&mut self, l2_idx: usize, line: LineAddr) {
        if let Some(f) = self.l2s[l2_idx].retire_snarf_flags(line) {
            if !f.used_locally && !f.used_for_intervention {
                self.stats.snarf.evicted_unused += 1;
            }
        }
    }

    /// Retry back-off with deterministic per-transaction jitter so
    /// rejected transactions do not return in lockstep storms.
    fn retry_delay(&self, txn: &BusTxn, attempt: u32) -> Cycle {
        let base = self.cfg.retry_backoff;
        let jitter = (txn
            .id
            .raw()
            .wrapping_mul(7)
            .wrapping_add(attempt as u64 * 13))
            % base.max(1);
        base + jitter
    }

    fn record_retry(&mut self, now: Cycle, l3_issued: bool) {
        self.stats.retries_total += 1;
        if l3_issued {
            self.stats.retries_l3 += 1;
        }
        self.retry_switch.record_retry(now);
    }

    // --- castouts -----------------------------------------------------------

    fn bus_issue_castout(&mut self, now: Cycle, txn: BusTxn, dirty: bool, attempt: u32) {
        let i = txn.src.index();
        let line = txn.line;
        let sid = txn.span_id();
        // The entry may have been claimed (RFO) or recovered since the
        // drain picked it.
        if !self.l2s[i].castouts_inflight.contains(&line) || !self.l2s[i].wbq.contains(line) {
            self.spans.finish(sid, SpanOutcome::ResolvedLocal, now);
            self.l2s[i].castouts_inflight.remove(&line);
            self.queue.push(now, Ev::WbDrain(txn.src));
            return;
        }
        // First attempt: the segment since span start is the drain-to-bus
        // issue gap. Retries: back-off queueing.
        if attempt == 0 {
            self.spans.mark(sid, SpanPhase::Issue, now);
        } else {
            self.spans.mark(sid, SpanPhase::RetryBackoff, now);
        }
        if self.cfg.l3_organization == L3Organization::PrivatePerL2 {
            self.private_castout(now, txn, dirty, attempt);
            return;
        }

        if attempt == 0 {
            if dirty {
                self.stats.wb.dirty_requests += 1;
            } else {
                self.stats.wb.clean_requests += 1;
            }
            self.stats.wb_reuse.total += 1;
            self.wb_pending.insert(line.raw(), false);
            if let Some(t) = &mut self.snarf_table {
                t.observe_writeback(line);
            }
            let snarf_eligible = txn.snarf_eligible;
            self.telemetry.emit(now, || SimEvent::CastoutIssued {
                l2: i as u32,
                line: line.raw(),
                dirty,
                snarf_eligible,
            });
        } else {
            self.stats.wb.retried_attempts += 1;
        }

        let src_agent = AgentId::L2(txn.src);
        let (arb_wait, t_ring) = self.ring.issue_address_timed(now, src_agent);
        self.spans.mark(sid, SpanPhase::RingArb, now + arb_wait);
        self.spans.mark(sid, SpanPhase::RingTransit, t_ring);
        let mut responses: Vec<SnoopResponse> = Vec::with_capacity(self.l2s.len() + 1);
        let mut t_collect: Cycle = self.ring.response_at_collector(t_ring, src_agent);

        // Every L2 snoops every address transaction (castouts included)
        // in both the baseline and the snarf protocol — that is how a
        // snoop-based system works, so the snoop-port cost is identical
        // and the comparison fair. What the snarf protocol *adds* is the
        // response: any peer holding the line squashes the write-back
        // ("if a peer L2 cache snoops a write back request, and the line
        // is already valid in the peer L2, the actual write back
        // operation is squashed", §5.2), and for snarf-eligible castouts
        // (reuse-table hit with the use bit — the gate that limits the
        // *victim-allocation* work, §3) a peer with a free or
        // Shared-state way and a free line-fill buffer offers to absorb
        // the line.
        for j in 0..self.l2s.len() {
            if j == i {
                continue;
            }
            let agent = AgentId::L2(L2Id::new(j as u8));
            let t_sn = self.ring.snoop_arrival(t_ring, src_agent, agent);
            let t_resp = self.snoop_port(j, t_sn);
            let id = L2Id::new(j as u8);
            let resp = if !self.cfg.policy.has_snarf() {
                // Baseline: peers observe castouts but stay silent.
                SnoopResponse::Null
            } else if self.l2s[j].state_of(line).is_some() || self.l2s[j].wbq.contains(line) {
                SnoopResponse::PeerHasCopy(id)
            } else if txn.snarf_eligible
                && self.l2s[j].snarf_victim(line).is_some()
                && self.l2s[j].try_reserve_snarf_buffer(t_sn, line, self.cfg.snarf_buffer_hold)
            {
                SnoopResponse::SnarfAccept(id)
            } else {
                SnoopResponse::Null
            };
            t_collect = t_collect.max(self.ring.response_at_collector(t_resp, agent));
            responses.push(resp);
        }
        // L3 snoop.
        {
            let t_sn = self.ring.snoop_arrival(t_ring, src_agent, AgentId::L3);
            let resp = self.l3.snoop_castout(t_sn, line, dirty);
            let t_resp = t_sn + self.cfg.l2_snoop_cycles;
            t_collect = t_collect.max(self.ring.response_at_collector(t_resp, AgentId::L3));
            responses.push(resp);
        }

        let combined = self.collector.combine(&txn, &responses);
        let t_seen = self.ring.combined_arrival(t_collect, src_agent);
        self.spans.mark(sid, SpanPhase::SnoopWindow, t_seen);

        let outcome = match combined {
            CombinedResponse::Retry { l3_issued } => {
                self.record_retry(t_seen, l3_issued);
                self.queue.push(
                    t_seen + self.retry_delay(&txn, attempt),
                    Ev::BusIssue {
                        txn,
                        origin: Origin::Castout { dirty },
                        attempt: attempt + 1,
                    },
                );
                return;
            }
            CombinedResponse::Wb(o) => o,
            other => unreachable!("read response {other:?} to a castout"),
        };

        self.trace(line, &|| {
            format!("castout {} from {} outcome {outcome:?}", txn.kind, txn.src)
        });
        if txn.snarf_eligible {
            let winner = match outcome {
                WbOutcome::SnarfedBy(p) => Some(p.index() as u32),
                _ => None,
            };
            if let Some(t) = &self.snarf_table {
                t.record_arbitration(t_seen, i as u32, line, winner);
            }
        }
        match outcome {
            WbOutcome::SquashedAlreadyInL3 => {
                self.spans.finish(sid, SpanOutcome::Squashed, t_seen);
                self.stats.wb.clean_squashed_l3 += 1;
                self.telemetry.emit(t_seen, || SimEvent::CastoutSquashed {
                    l2: i as u32,
                    line: line.raw(),
                    reason: SquashReason::AlreadyInL3,
                });
                self.note_redundant_clean_wb(t_seen, txn.src, line);
            }
            WbOutcome::SquashedPeerHasCopy(p) => {
                self.spans.finish(sid, SpanOutcome::Squashed, t_seen);
                self.stats.wb.squashed_peer += 1;
                self.telemetry.emit(t_seen, || SimEvent::CastoutSquashed {
                    l2: i as u32,
                    line: line.raw(),
                    reason: SquashReason::PeerHasCopy,
                });
                if dirty {
                    // Ownership transfer: the peer's clean copy becomes
                    // the dirty owner without a data transfer.
                    let pj = p.index();
                    if let Some(cur) = self.l2s[pj].state_of(line) {
                        if !cur.is_dirty() {
                            self.l2s[pj].set_state(line, L2State::Tagged);
                        }
                    }
                }
            }
            WbOutcome::SnarfedBy(p) => {
                self.stats.wb.snarfed += 1;
                self.telemetry.emit(t_seen, || SimEvent::CastoutSnarfed {
                    l2: i as u32,
                    by: p.index() as u32,
                    line: line.raw(),
                });
                self.inbound_snarfs.insert((p.index() as u8, line.raw()));
                let arrival = self.ring.transfer_data(t_seen, src_agent, AgentId::L2(p));
                self.spans.mark(sid, SpanPhase::DataReturn, arrival);
                self.spans.finish(sid, SpanOutcome::Snarfed, arrival);
                self.queue
                    .push(arrival, Ev::SnarfFill { l2: p, line, dirty });
            }
            WbOutcome::AcceptedByL3 { .. } => {
                let t_arr = self.l3_link.reserve_for(t_seen, self.cfg.l3_link_occupancy)
                    + self.cfg.l3_link_delay;
                self.spans.mark(sid, SpanPhase::DataReturn, t_arr);
                match self.l3.accept_castout_timed(t_arr, line, dirty) {
                    Some((done, victim, l3_wait)) => {
                        self.spans.mark(sid, SpanPhase::L3Queue, t_arr + l3_wait);
                        self.spans.mark(sid, SpanPhase::L3Service, done);
                        self.spans.finish(sid, SpanOutcome::AcceptedL3, done);
                        self.stats.wb.accepted_l3 += 1;
                        self.telemetry.emit(t_arr, || SimEvent::CastoutAccepted {
                            l2: i as u32,
                            line: line.raw(),
                        });
                        if let Some(acc) = self.wb_pending.get_mut(&line.raw()) {
                            *acc = true;
                        }
                        self.stats.wb_reuse.accepted += 1;
                        if let Some(v) = victim {
                            self.mem.write(done, v);
                        }
                    }
                    None => {
                        // Queue filled between snoop and data arrival.
                        self.record_retry(t_arr, true);
                        self.queue.push(
                            t_arr + self.retry_delay(&txn, attempt),
                            Ev::BusIssue {
                                txn,
                                origin: Origin::Castout { dirty },
                                attempt: attempt + 1,
                            },
                        );
                        return;
                    }
                }
            }
        }

        // Resolution: retire the entry and continue draining.
        self.l2s[i].wbq.remove(line);
        self.l2s[i].castouts_inflight.remove(&line);
        self.queue.push(t_seen + 1, Ev::WbDrain(txn.src));
    }

    /// Castout over a dedicated private-L3 bus (§7 organization): no
    /// ring address phase, no peer snoops, no Snoop Collector — and
    /// therefore no snarfing. The WBHT still learns from the private
    /// bus's squash responses.
    fn private_castout(&mut self, now: Cycle, txn: BusTxn, dirty: bool, attempt: u32) {
        let i = txn.src.index();
        let line = txn.line;
        let sid = txn.span_id();
        if attempt == 0 {
            if dirty {
                self.stats.wb.dirty_requests += 1;
            } else {
                self.stats.wb.clean_requests += 1;
            }
            self.stats.wb_reuse.total += 1;
            self.wb_pending.insert(line.raw(), false);
            self.telemetry.emit(now, || SimEvent::CastoutIssued {
                l2: i as u32,
                line: line.raw(),
                dirty,
                snarf_eligible: false,
            });
        } else {
            self.stats.wb.retried_attempts += 1;
        }
        let occ = self.cfg.l3_link_occupancy;
        let delay = self.cfg.l3_link_delay;
        let arrive = self.private_l3_links[i].reserve_for(now, occ) + delay;
        self.spans.mark(sid, SpanPhase::DataReturn, arrive);
        let resp = self.l3_for(i).snoop_castout(arrive, line, dirty);
        self.trace(line, &|| {
            format!("private castout from {} -> {resp:?}", txn.src)
        });
        match resp {
            SnoopResponse::L3Hit(_) if !dirty => {
                self.spans.finish(sid, SpanOutcome::Squashed, arrive);
                self.stats.wb.clean_squashed_l3 += 1;
                self.telemetry.emit(arrive, || SimEvent::CastoutSquashed {
                    l2: i as u32,
                    line: line.raw(),
                    reason: SquashReason::AlreadyInL3,
                });
                self.note_redundant_clean_wb(arrive, txn.src, line);
            }
            SnoopResponse::L3Hit(_) | SnoopResponse::L3Accept => {
                match self.l3_for(i).accept_castout_timed(arrive, line, dirty) {
                    Some((done, victim, l3_wait)) => {
                        self.spans.mark(sid, SpanPhase::L3Queue, arrive + l3_wait);
                        self.spans.mark(sid, SpanPhase::L3Service, done);
                        self.spans.finish(sid, SpanOutcome::AcceptedL3, done);
                        self.stats.wb.accepted_l3 += 1;
                        self.telemetry.emit(arrive, || SimEvent::CastoutAccepted {
                            l2: i as u32,
                            line: line.raw(),
                        });
                        if let Some(acc) = self.wb_pending.get_mut(&line.raw()) {
                            *acc = true;
                        }
                        self.stats.wb_reuse.accepted += 1;
                        if let Some(v) = victim {
                            self.mem.write(done, v);
                        }
                    }
                    None => {
                        self.record_retry(arrive, true);
                        self.queue.push(
                            arrive + self.retry_delay(&txn, attempt),
                            Ev::BusIssue {
                                txn,
                                origin: Origin::Castout { dirty },
                                attempt: attempt + 1,
                            },
                        );
                        return;
                    }
                }
            }
            SnoopResponse::L3Retry => {
                self.record_retry(arrive, true);
                self.queue.push(
                    arrive + self.retry_delay(&txn, attempt),
                    Ev::BusIssue {
                        txn,
                        origin: Origin::Castout { dirty },
                        attempt: attempt + 1,
                    },
                );
                return;
            }
            other => unreachable!("private L3 castout response {other:?}"),
        }
        self.l2s[i].wbq.remove(line);
        self.l2s[i].castouts_inflight.remove(&line);
        self.queue.push(arrive + 1, Ev::WbDrain(txn.src));
    }

    /// WBHT allocation on an L3-squashed clean write-back (§2 step 3),
    /// honouring the update scope (§2.2 / Figure 3).
    fn note_redundant_clean_wb(&mut self, now: Cycle, src: L2Id, line: LineAddr) {
        let scope = match &self.cfg.policy {
            PolicyConfig::Wbht(w) => Some(w.scope),
            PolicyConfig::Combined(w, _) => Some(w.scope),
            _ => None,
        };
        match scope {
            None => {}
            Some(UpdateScope::Local) => {
                if let Some(w) = &mut self.l2s[src.index()].wbht {
                    w.note_redundant(now, line);
                }
            }
            Some(UpdateScope::Global) => {
                for l2 in &mut self.l2s {
                    if let Some(w) = &mut l2.wbht {
                        w.note_redundant(now, line);
                    }
                }
            }
        }
    }

    fn handle_wb_drain(&mut self, now: Cycle, l2id: L2Id) {
        let i = l2id.index();
        loop {
            if self.l2s[i].castouts_inflight.len() >= self.cfg.castout_inflight_max {
                return;
            }
            // Oldest entry not already on the bus.
            let next = {
                let inflight = &self.l2s[i].castouts_inflight;
                let mut found = None;
                for k in 0.. {
                    // Scan queue order via front-relative probing.
                    let Some(e) = self.l2s[i].wbq.nth(k) else {
                        break;
                    };
                    if !inflight.contains(&e.line) {
                        found = Some(*e);
                        break;
                    }
                }
                found
            };
            let Some(entry) = next else {
                self.l2s[i].draining = !self.l2s[i].castouts_inflight.is_empty();
                return;
            };
            // WBHT filtering: consulted off the miss path, after the
            // victim entered the queue (§2).
            if !entry.dirty && self.cfg.policy.has_wbht() {
                let engaged = self.retry_switch.engaged(now);
                let in_l3 = match self.cfg.l3_organization {
                    L3Organization::SharedVictim => self.l3.peek(entry.line),
                    L3Organization::PrivatePerL2 => self.private_l3s[i].peek(entry.line),
                };
                let abort = self.l2s[i]
                    .wbht
                    .as_mut()
                    .expect("wbht policy implies table")
                    .should_abort(now, entry.line, engaged, in_l3);
                if abort {
                    self.l2s[i].wbq.remove(entry.line);
                    self.stats.wb.clean_aborted += 1;
                    self.telemetry.emit(now, || SimEvent::CastoutAborted {
                        l2: i as u32,
                        line: entry.line.raw(),
                    });
                    continue;
                }
            }
            let eligible = match &mut self.snarf_table {
                Some(t) => t.check_eligible(entry.line),
                None => false,
            };
            let mut txn = BusTxn::new(
                self.txn_seq.bump(),
                if entry.dirty {
                    TxnKind::CastoutDirty
                } else {
                    TxnKind::CastoutClean
                },
                entry.line,
                l2id,
            );
            if eligible {
                txn = txn.with_snarf();
            }
            self.spans.start(
                txn.span_id(),
                txn.span_kind(),
                i as u32,
                entry.line.raw(),
                now,
            );
            self.l2s[i].castouts_inflight.insert(entry.line);
            self.l2s[i].draining = true;
            self.queue.push(
                now + 1,
                Ev::BusIssue {
                    txn,
                    origin: Origin::Castout { dirty: entry.dirty },
                    attempt: 0,
                },
            );
            // Loop: issue more if the concurrency limit allows.
        }
    }

    // --- fills --------------------------------------------------------------

    fn handle_fill(&mut self, now: Cycle, l2id: L2Id, line: LineAddr, state: L2State) {
        let i = l2id.index();
        if self.l2s[i].state_of(line).is_some() {
            self.inbound_fills.remove(&(i as u8, line.raw()));
            // Upgrade completion, or the line arrived by other means.
            if state == L2State::Modified {
                self.l2s[i].set_state(line, L2State::Modified);
                // Claim any copy that slipped in since the upgrade's
                // combined response.
                self.apply_invalidations(l2id, line, Some(()));
            }
            self.l2s[i].touch(line);
            self.complete_miss(now, l2id, line);
            return;
        }
        // A fill that must evict needs write-back queue space (§2.1:
        // a full queue blocks L2 misses). The inbound-fill marker stays
        // set while the fill is blocked — the line is still in transit
        // and snoops must keep retrying against it.
        if self.l2s[i].wbq.is_full() && !self.l2s[i].has_invalid_way(line) {
            self.queue.push(
                now + 8,
                Ev::Fill {
                    l2: l2id,
                    line,
                    state,
                },
            );
            return;
        }
        self.inbound_fills.remove(&(i as u8, line.raw()));
        let state = self.sanitize_install(i, line, state);
        self.trace(line, &|| format!("fill {l2id} install={state}"));
        if state == L2State::Modified {
            // Late-claim any stale copies that slipped in between the
            // combined response and this fill (e.g. a snarf landing).
            self.apply_invalidations(l2id, line, Some(()));
        }
        let evicted = if self.cfg.history_aware_replacement {
            self.l2s[i].fill_history_aware(line, state, InsertPosition::Mru, 4)
        } else {
            self.l2s[i].fill(line, state, InsertPosition::Mru)
        };
        if let Some((vline, vst)) = evicted {
            self.on_l2_eviction(now, i, vline, vst);
        }
        self.complete_miss(now, l2id, line);
    }

    /// Downgrades an install state that a concurrent snarf or fill has
    /// made stale (the combined response was computed before the other
    /// line movement landed). Keeps the E/SL-uniqueness invariants.
    fn sanitize_install(&self, i: usize, line: LineAddr, state: L2State) -> L2State {
        if !matches!(state, L2State::Exclusive | L2State::SharedLast) {
            return state;
        }
        let mut peer_any = false;
        let mut peer_intervener = false;
        for (j, l2) in self.l2s.iter().enumerate() {
            if j == i {
                continue;
            }
            if let Some(st) = l2.state_of(line) {
                peer_any = true;
                if st.can_intervene() {
                    peer_intervener = true;
                }
            }
        }
        match state {
            L2State::Exclusive if peer_any => {
                if peer_intervener {
                    L2State::Shared
                } else {
                    L2State::SharedLast
                }
            }
            L2State::SharedLast if peer_intervener => L2State::Shared,
            other => other,
        }
    }

    fn on_l2_eviction(&mut self, now: Cycle, i: usize, vline: LineAddr, vst: L2State) {
        self.trace(vline, &|| format!("evict L2#{i} state={vst} -> wbq"));
        self.invalidate_l1s_of(i, vline);
        self.finalize_snarf_flags(i, vline);
        let pushed = self.l2s[i].wbq.push(cmpsim_cache::WbEntry {
            line: vline,
            dirty: vst.is_dirty(),
        });
        debug_assert!(pushed, "wbq overflow despite fill gating");
        if self.l2s[i].castouts_inflight.len() < self.cfg.castout_inflight_max {
            self.queue.push(
                now.max(self.queue.now()) + 1,
                Ev::WbDrain(L2Id::new(i as u8)),
            );
        }
    }

    fn complete_miss(&mut self, now: Cycle, l2id: L2Id, line: LineAddr) {
        let i = l2id.index();
        if let Some(t0) = self.miss_issue.remove(&(i as u8, line.raw())) {
            self.stats.miss_latency.add(now.saturating_sub(t0));
        }
        let Some(waiters) = self.l2s[i].mshrs.complete(line) else {
            return;
        };
        for t in waiters {
            let ti = t.index();
            self.threads[ti].outstanding = self.threads[ti].outstanding.saturating_sub(1);
            if !self.l1s.is_empty() {
                let core = self.cfg.core_of_thread(t);
                self.l1s[core].fill(line);
            }
            match self.threads[ti].park {
                Park::Outstanding => {
                    self.threads[ti].park = Park::Running;
                    let at = self.threads[ti].next_time.max(now);
                    self.queue.push(at, Ev::ThreadStep(t));
                }
                Park::Done => self.note_possible_completion(now, t),
                _ => {}
            }
        }
        // An MSHR freed: wake threads blocked on exhaustion.
        let waiting = std::mem::take(&mut self.l2s[i].waiting_threads);
        for t in waiting {
            let ti = t.index();
            if self.threads[ti].park == Park::MshrFull {
                self.threads[ti].park = Park::Running;
                let at = self.threads[ti].next_time.max(now);
                self.queue.push(at, Ev::ThreadStep(t));
            }
        }
    }

    fn handle_snarf_fill(&mut self, now: Cycle, l2id: L2Id, line: LineAddr, dirty: bool) {
        let i = l2id.index();
        self.inbound_snarfs.remove(&(i as u8, line.raw()));
        if self.l2s[i].state_of(line).is_some() {
            return;
        }
        // A peer may have re-fetched the line since the castout snooped
        // (combined responses are not atomic with data movement): if so,
        // the snarf is stale — drop clean data, forward dirty to the L3.
        let peer_has_copy = (0..self.l2s.len()).any(|j| {
            j != i
                && (self.l2s[j].state_of(line).is_some()
                    || self.l2s[j].wbq.contains(line)
                    || self.inbound_fills.contains(&(j as u8, line.raw())))
        });
        match (!peer_has_copy)
            .then(|| self.l2s[i].snarf_victim(line))
            .flatten()
        {
            Some(way) => {
                let st = if dirty {
                    L2State::Modified
                } else {
                    L2State::SharedLast
                };
                if let Some((vline, vst)) =
                    self.l2s[i].snarf_insert(line, way, st, self.snarf_insert_pos)
                {
                    // Victims are Invalid or plain Shared: droppable.
                    debug_assert!(!vst.is_dirty(), "snarf displaced dirty line");
                    self.invalidate_l1s_of(i, vline);
                    self.finalize_snarf_flags(i, vline);
                }
                self.trace(line, &|| format!("snarf-fill L2#{i}"));
                self.l2s[i]
                    .snarfed_lines
                    .insert(line.raw(), SnarfFlags::default());
                self.stats.snarf.snarfed += 1;
                self.stats.l2[i].snarfs_accepted += 1;
            }
            None => {
                // Resources changed since the snoop; fall back to the L3
                // (dirty data must not be dropped).
                if dirty {
                    match self.l3.accept_castout(now, line, true) {
                        Some((done, victim)) => {
                            if let Some(v) = victim {
                                self.mem.write(done, v);
                            }
                        }
                        None => {
                            self.mem.write(now, line);
                        }
                    }
                }
            }
        }
    }

    // --- completion ---------------------------------------------------------

    fn note_possible_completion(&mut self, now: Cycle, t: ThreadId) {
        let ti = t.index();
        if self.threads[ti].finished() && self.threads[ti].completed_at.is_none() {
            self.threads[ti].completed_at = Some(now.max(self.threads[ti].next_time));
        }
    }

    fn finalize_stats(&mut self) {
        self.stats.cycles = self
            .threads
            .iter()
            .map(|t| t.completed_at.unwrap_or(t.next_time))
            .max()
            .unwrap_or(0);
        self.stats.mshr_high_water = self
            .l2s
            .iter()
            .map(|l2| l2.mshrs.high_water() as u64)
            .max()
            .unwrap_or(0)
            .max(self.stats.mshr_high_water);
        self.stats.wbq_high_water = self
            .l2s
            .iter()
            .map(|l2| l2.wbq.high_water() as u64)
            .max()
            .unwrap_or(0)
            .max(self.stats.wbq_high_water);
        self.stats.event_queue_high_water = self
            .stats
            .event_queue_high_water
            .max(self.queue.high_water() as u64);
        // Snarfed lines still resident and unused count as unused.
        let mut still_unused = 0;
        for l2 in &self.l2s {
            for f in l2.snarfed_lines.values() {
                if !f.used_locally && !f.used_for_intervention {
                    still_unused += 1;
                }
            }
        }
        self.stats.snarf.evicted_unused += still_unused;
    }
}

fn all_lines(l2: &L2Unit) -> Vec<LineAddr> {
    // Reconstructs resident global line addresses via the snarf-victim
    // helper path; exposed only for invariant checking, so a slow path
    // through the public surface is fine.
    l2.resident_lines()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{SnarfConfig, WbhtConfig};
    use cmpsim_trace::{SegmentMix, WorkloadParams};

    fn tiny_workload() -> WorkloadParams {
        WorkloadParams {
            name: "unit".into(),
            line_bytes: 128,
            threads: 16,
            issue_interval: 1,
            mix: SegmentMix {
                private: 0.5,
                bounce: 0.2,
                rotor: 0.1,
                shared: 0.1,
                migratory: 0.05,
                streaming: 0.05,
            },
            private_lines: 64,
            private_theta: 2.0,
            private_store_frac: 0.2,
            bounce_lines: 256,
            bounce_group_threads: 4,
            bounce_cross_frac: 0.2,
            bounce_theta: 1.5,
            bounce_store_frac: 0.1,
            rotor_lines: 128,
            rotor_store_frac: 0.2,
            shared_lines: 64,
            shared_theta: 1.5,
            shared_store_frac: 0.05,
            migratory_lines: 32,
            migratory_rmw_frac: 0.8,
        }
    }

    fn system(policy: PolicyConfig) -> System {
        let mut cfg = SystemConfig::scaled(16);
        cfg.policy = policy;
        cfg.max_outstanding = 4;
        System::new(cfg, tiny_workload()).unwrap()
    }

    #[test]
    fn sanitize_demotes_exclusive_against_peers() {
        let mut sys = system(PolicyConfig::Baseline);
        let line = LineAddr::new(100);
        sys.l2s[0].fill(line, L2State::SharedLast, InsertPosition::Mru);
        // Installing E at L2#1 while L2#0 holds an intervener: demote to S.
        assert_eq!(
            sys.sanitize_install(1, line, L2State::Exclusive),
            L2State::Shared
        );
        // SL against an SL holder also demotes.
        assert_eq!(
            sys.sanitize_install(1, line, L2State::SharedLast),
            L2State::Shared
        );
        // Against a plain-S holder, E demotes to SL (keeps intervention).
        sys.l2s[0].set_state(line, L2State::Shared);
        assert_eq!(
            sys.sanitize_install(1, line, L2State::Exclusive),
            L2State::SharedLast
        );
        // With no peers at all, E survives.
        sys.l2s[0].invalidate(line);
        assert_eq!(
            sys.sanitize_install(1, line, L2State::Exclusive),
            L2State::Exclusive
        );
    }

    #[test]
    fn retry_delay_is_jittered_and_bounded() {
        let sys = system(PolicyConfig::Baseline);
        let mut txn_seq = TxnId::ZERO;
        let base = sys.cfg.retry_backoff;
        let mut delays = std::collections::HashSet::new();
        for attempt in 0..8 {
            let txn = BusTxn::new(
                txn_seq.bump(),
                TxnKind::ReadShared,
                LineAddr::new(4),
                L2Id::new(0),
            );
            let d = sys.retry_delay(&txn, attempt);
            assert!(
                d >= base && d < 2 * base,
                "delay {d} out of [{base}, {})",
                2 * base
            );
            delays.insert(d);
        }
        assert!(delays.len() > 1, "no jitter across transactions");
    }

    #[test]
    fn apply_invalidations_clears_tags_queues_and_l1s() {
        let mut sys = system(PolicyConfig::Baseline);
        let line = LineAddr::new(64);
        sys.l2s[1].fill(line, L2State::Shared, InsertPosition::Mru);
        sys.l2s[2]
            .wbq
            .push(cmpsim_cache::WbEntry { line, dirty: false });
        sys.l1s[2].fill(line); // core 2 belongs to L2#1
        sys.apply_invalidations(L2Id::new(0), line, None);
        assert_eq!(sys.l2s[1].state_of(line), None);
        assert!(!sys.l2s[2].wbq.contains(line));
        assert!(!sys.l1s[2].load(line));
        assert!(!sys.l3.peek(line));
    }

    #[test]
    fn global_scope_notes_redundant_in_every_table() {
        let mut sys = system(PolicyConfig::Wbht(WbhtConfig {
            entries: 256,
            assoc: 16,
            scope: UpdateScope::Global,
            granularity: 1,
        }));
        let line = LineAddr::new(16);
        sys.note_redundant_clean_wb(0, L2Id::new(0), line);
        for l2 in &sys.l2s {
            assert!(l2.wbht.as_ref().unwrap().knows(line));
        }
        // Local scope: only the writer's table.
        let mut sys = system(PolicyConfig::Wbht(WbhtConfig {
            entries: 256,
            assoc: 16,
            scope: UpdateScope::Local,
            granularity: 1,
        }));
        sys.note_redundant_clean_wb(0, L2Id::new(2), line);
        for (i, l2) in sys.l2s.iter().enumerate() {
            assert_eq!(l2.wbht.as_ref().unwrap().knows(line), i == 2);
        }
    }

    #[test]
    fn upgrades_happen_under_rmw_traffic() {
        let mut sys = system(PolicyConfig::Baseline);
        let stats = sys.run(2_000);
        assert!(stats.upgrades > 0, "migratory RMW must trigger upgrades");
        assert!(
            stats.fills_from_l2 > 0,
            "RMW lines must migrate via interventions"
        );
        sys.check_invariants();
    }

    #[test]
    fn snoop_port_is_pipelined() {
        let mut sys = system(PolicyConfig::Baseline);
        let a = sys.snoop_port(1, 100);
        let b = sys.snoop_port(1, 100);
        // Latency is full for both, but the port only serializes by the
        // initiation interval, not the full lookup.
        assert_eq!(a, 100 + sys.cfg.l2_snoop_cycles);
        assert_eq!(b, a + sys.cfg.l2_snoop_occupancy);
    }

    #[test]
    fn private_l3_partitions_are_separate() {
        let mut cfg = SystemConfig::scaled(16);
        cfg.l3_organization = L3Organization::PrivatePerL2;
        let mut sys = System::with_source(
            cfg,
            Box::new(cmpsim_trace::TracePlayback::new("idle", vec![], 16, 1)),
        )
        .unwrap();
        assert_eq!(sys.private_l3s.len(), 4);
        let line = LineAddr::new(8);
        sys.l3_for(0).accept_castout(0, line, false);
        assert!(sys.private_l3s[0].peek(line));
        assert!(!sys.private_l3s[1].peek(line));
        let agg = sys.l3_stats();
        assert_eq!(agg.castouts_accepted, 1);
    }

    #[test]
    fn run_twice_continues_with_warm_caches() {
        let mut sys = system(PolicyConfig::Baseline);
        let cold = sys.run(800);
        let warm = sys.run(800);
        // The second run re-processes the same per-thread budget on the
        // same (monotonic) clock...
        assert_eq!(warm.refs, cold.refs + 800 * 16);
        assert!(warm.cycles > cold.cycles);
        // ...and the warm increment is no slower than the cold run.
        assert!(warm.cycles - cold.cycles <= cold.cycles);
        sys.check_invariants();
    }

    #[test]
    fn snarf_policy_builds_table_and_buffers() {
        let sys = system(PolicyConfig::Snarf(SnarfConfig {
            entries: 256,
            ..Default::default()
        }));
        assert!(sys.snarf_table.is_some());
        assert!(sys.snarf_table_stats().is_some());
    }
}
