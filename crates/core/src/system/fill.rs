//! Completion layer: demand fills into the requesting L2 (with install
//! sanitizing and eviction into the write-back queue), snarf-fill
//! absorption at peer L2s, system-wide invalidations, and MSHR / thread
//! wake-up on miss completion.

use cmpsim_cache::{InsertPosition, LineAddr};
use cmpsim_coherence::{L2Id, L2State};
use cmpsim_engine::Cycle;

use crate::config::L3Organization;
use crate::system::l2::SnarfFlags;
use crate::system::system::Ev;
use crate::system::thread::Park;
use crate::system::System;

impl System {
    pub(super) fn handle_fill(&mut self, now: Cycle, l2id: L2Id, line: LineAddr, state: L2State) {
        let i = l2id.index();
        if self.l2s[i].state_of(line).is_some() {
            self.inbound_remove(i as u8, line.raw(), Self::INBOUND_FILL);
            // Upgrade completion, or the line arrived by other means.
            if state == L2State::Modified {
                self.l2s[i].set_state(line, L2State::Modified);
                // Claim any copy that slipped in since the upgrade's
                // combined response.
                self.apply_invalidations(l2id, line, Some(()));
            }
            self.l2s[i].touch(line);
            self.complete_miss(now, l2id, line);
            return;
        }
        // A fill that must evict needs write-back queue space (§2.1:
        // a full queue blocks L2 misses). The inbound-fill marker stays
        // set while the fill is blocked — the line is still in transit
        // and snoops must keep retrying against it.
        if self.l2s[i].wbq.is_full() && !self.l2s[i].has_invalid_way(line) {
            self.queue.push(
                now + 8,
                Ev::Fill {
                    l2: l2id,
                    line,
                    state,
                },
            );
            return;
        }
        self.inbound_remove(i as u8, line.raw(), Self::INBOUND_FILL);
        let state = self.sanitize_install(i, line, state);
        self.trace(line, &|| format!("fill {l2id} install={state}"));
        if state == L2State::Modified {
            // Late-claim any stale copies that slipped in between the
            // combined response and this fill (e.g. a snarf landing).
            self.apply_invalidations(l2id, line, Some(()));
        }
        let evicted = if self.cfg.history_aware_replacement && self.policy.caps().knows_lines {
            let policy = &self.policy;
            self.l2s[i].fill_history_aware(line, state, InsertPosition::Mru, 4, |l| {
                policy.knows_line(i, l)
            })
        } else {
            self.l2s[i].fill(line, state, InsertPosition::Mru)
        };
        if let Some((vline, vst)) = evicted {
            self.on_l2_eviction(now, i, vline, vst);
        }
        self.complete_miss(now, l2id, line);
    }

    /// Downgrades an install state that a concurrent snarf or fill has
    /// made stale (the combined response was computed before the other
    /// line movement landed). Keeps the E/SL-uniqueness invariants.
    pub(super) fn sanitize_install(&self, i: usize, line: LineAddr, state: L2State) -> L2State {
        if !matches!(state, L2State::Exclusive | L2State::SharedLast) {
            return state;
        }
        let mut peer_any = false;
        let mut peer_intervener = false;
        for (j, l2) in self.l2s.iter().enumerate() {
            if j == i {
                continue;
            }
            if let Some(st) = l2.state_of(line) {
                peer_any = true;
                if st.can_intervene() {
                    peer_intervener = true;
                }
            }
        }
        match state {
            L2State::Exclusive if peer_any => {
                if peer_intervener {
                    L2State::Shared
                } else {
                    L2State::SharedLast
                }
            }
            L2State::SharedLast if peer_intervener => L2State::Shared,
            other => other,
        }
    }

    /// Invalidates `line` in every L2 except `keeper`, in their L1s, in
    /// peer write-back queues (the dirt, if any, has been claimed by the
    /// requester), and in the L3 (unless the L3 already invalidated as
    /// the data source, signalled by `l3_done`).
    pub(super) fn apply_invalidations(
        &mut self,
        keeper: L2Id,
        line: LineAddr,
        l3_done: Option<()>,
    ) {
        for j in 0..self.l2s.len() {
            if j == keeper.index() {
                continue;
            }
            if self.l2s[j].invalidate(line).is_some() {
                self.trace(line, &|| format!("invalidate L2#{j} (keeper {keeper})"));
                self.invalidate_l1s_of(j, line);
                self.finalize_snarf_flags(j, line);
            }
            if self.l2s[j].wbq.remove(line).is_some() {
                // The entry was claimed; if its castout was in flight the
                // pending bus event will notice the mismatch and move on.
                self.l2s[j].castouts_inflight.remove(&line);
            }
        }
        if l3_done.is_none() {
            match self.cfg.l3_organization {
                L3Organization::SharedVictim => self.l3.invalidate(line),
                L3Organization::PrivatePerL2 => {
                    // A stale copy may sit in any private L3 (the line
                    // may have been cast out by a previous owner).
                    for l3 in &mut self.private_l3s {
                        l3.invalidate(line);
                    }
                }
            }
        }
    }

    pub(super) fn invalidate_l1s_of(&mut self, l2_idx: usize, line: LineAddr) {
        if self.l1s.is_empty() {
            return;
        }
        let cores_per_l2 = self.cfg.cores as usize / self.cfg.num_l2 as usize;
        for c in l2_idx * cores_per_l2..(l2_idx + 1) * cores_per_l2 {
            self.l1s[c].invalidate(line);
        }
    }

    pub(super) fn finalize_snarf_flags(&mut self, l2_idx: usize, line: LineAddr) {
        if let Some(f) = self.l2s[l2_idx].retire_snarf_flags(line) {
            let used = f.used_locally || f.used_for_intervention;
            if !used {
                self.stats.snarf.evicted_unused += 1;
            }
            if let Some(a) = &mut self.audit {
                a.resolve_snarf(l2_idx, line.raw(), used);
            }
        }
    }

    pub(super) fn complete_miss(&mut self, now: Cycle, l2id: L2Id, line: LineAddr) {
        let i = l2id.index();
        if let Some(t0) = self.miss_issue.remove(&(i as u8, line.raw())) {
            self.stats.miss_latency.add(now.saturating_sub(t0));
        }
        let mut waiters = std::mem::take(&mut self.waiter_scratch);
        waiters.clear();
        if !self.l2s[i].mshrs.complete_into(line, &mut waiters) {
            self.waiter_scratch = waiters;
            return;
        }
        for &t in &waiters {
            let ti = t.index();
            self.threads[ti].outstanding = self.threads[ti].outstanding.saturating_sub(1);
            if !self.l1s.is_empty() {
                let core = self.cfg.core_of_thread(t);
                self.l1s[core].fill(line);
            }
            match self.threads[ti].park {
                Park::Outstanding => {
                    self.threads[ti].park = Park::Running;
                    let at = self.threads[ti].next_time.max(now);
                    self.queue.push(at, Ev::ThreadStep(t));
                }
                Park::Done => self.note_possible_completion(now, t),
                _ => {}
            }
        }
        self.waiter_scratch = waiters;
        // An MSHR freed: wake threads blocked on exhaustion.
        let waiting = std::mem::take(&mut self.l2s[i].waiting_threads);
        for t in waiting {
            let ti = t.index();
            if self.threads[ti].park == Park::MshrFull {
                self.threads[ti].park = Park::Running;
                let at = self.threads[ti].next_time.max(now);
                self.queue.push(at, Ev::ThreadStep(t));
            }
        }
    }

    pub(super) fn handle_snarf_fill(
        &mut self,
        now: Cycle,
        l2id: L2Id,
        line: LineAddr,
        dirty: bool,
    ) {
        let i = l2id.index();
        self.inbound_remove(i as u8, line.raw(), Self::INBOUND_SNARF);
        if self.l2s[i].state_of(line).is_some() {
            return;
        }
        // A peer may have re-fetched the line since the castout snooped
        // (combined responses are not atomic with data movement): if so,
        // the snarf is stale — drop clean data, forward dirty to the L3.
        let peer_has_copy = (0..self.l2s.len()).any(|j| {
            j != i
                && (self.l2s[j].state_of(line).is_some()
                    || self.l2s[j].wbq.contains(line)
                    || self.inbound_has(j as u8, line.raw(), Self::INBOUND_FILL))
        });
        match (!peer_has_copy)
            .then(|| self.l2s[i].snarf_victim(line))
            .flatten()
        {
            Some(way) => {
                let st = if dirty {
                    L2State::Modified
                } else {
                    L2State::SharedLast
                };
                let displaced = if let Some((vline, vst)) =
                    self.l2s[i].snarf_insert(line, way, st, self.policy.snarf_insert_pos())
                {
                    // Victims are Invalid or plain Shared: droppable.
                    debug_assert!(!vst.is_dirty(), "snarf displaced dirty line");
                    self.invalidate_l1s_of(i, vline);
                    self.finalize_snarf_flags(i, vline);
                    true
                } else {
                    false
                };
                if let Some(a) = &mut self.audit {
                    a.record_snarf(i, line.raw(), displaced);
                }
                self.trace(line, &|| format!("snarf-fill L2#{i}"));
                self.l2s[i]
                    .snarfed_lines
                    .insert(line.raw(), SnarfFlags::default());
                self.stats.snarf.snarfed += 1;
                self.stats.l2[i].snarfs_accepted += 1;
            }
            None => {
                // Resources changed since the snoop; fall back to the L3
                // (dirty data must not be dropped).
                if dirty {
                    match self.l3.accept_castout(now, line, true) {
                        Some((done, victim)) => {
                            if let Some(v) = victim {
                                self.mem.write(done, v);
                            }
                        }
                        None => {
                            self.mem.write(now, line);
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use cmpsim_cache::{InsertPosition, LineAddr};
    use cmpsim_coherence::{L2Id, L2State};

    use crate::policy::PolicyConfig;
    use crate::system::testutil::system;

    #[test]
    fn sanitize_demotes_exclusive_against_peers() {
        let mut sys = system(PolicyConfig::baseline());
        let line = LineAddr::new(100);
        sys.l2s[0].fill(line, L2State::SharedLast, InsertPosition::Mru);
        // Installing E at L2#1 while L2#0 holds an intervener: demote to S.
        assert_eq!(
            sys.sanitize_install(1, line, L2State::Exclusive),
            L2State::Shared
        );
        // SL against an SL holder also demotes.
        assert_eq!(
            sys.sanitize_install(1, line, L2State::SharedLast),
            L2State::Shared
        );
        // Against a plain-S holder, E demotes to SL (keeps intervention).
        sys.l2s[0].set_state(line, L2State::Shared);
        assert_eq!(
            sys.sanitize_install(1, line, L2State::Exclusive),
            L2State::SharedLast
        );
        // With no peers at all, E survives.
        sys.l2s[0].invalidate(line);
        assert_eq!(
            sys.sanitize_install(1, line, L2State::Exclusive),
            L2State::Exclusive
        );
    }

    #[test]
    fn apply_invalidations_clears_tags_queues_and_l1s() {
        let mut sys = system(PolicyConfig::baseline());
        let line = LineAddr::new(64);
        sys.l2s[1].fill(line, L2State::Shared, InsertPosition::Mru);
        sys.l2s[2]
            .wbq
            .push(cmpsim_cache::WbEntry { line, dirty: false });
        sys.l1s[2].fill(line); // core 2 belongs to L2#1
        sys.apply_invalidations(L2Id::new(0), line, None);
        assert_eq!(sys.l2s[1].state_of(line), None);
        assert!(!sys.l2s[2].wbq.contains(line));
        assert!(!sys.l1s[2].load(line));
        assert!(!sys.l3.peek(line));
    }
}
