//! Frontend layer: thread scheduling and reference processing — L1
//! filtering, L2 lookup, write-back-queue recovery, and MSHR
//! registration. Misses leave this layer as [`TxnState`] bus
//! transactions on the miss path.

use cmpsim_cache::{InsertPosition, LineAddr};
use cmpsim_coherence::{BusTxn, L2Id, L2State, TxnKind, TxnState};
use cmpsim_engine::telemetry::SimEvent;
use cmpsim_engine::Cycle;
use cmpsim_trace::ThreadId;

use crate::policy::CoherenceAction;
use crate::system::system::Ev;
use crate::system::thread::Park;
use crate::system::System;

impl System {
    pub(super) fn handle_thread_step(&mut self, now: Cycle, t: ThreadId) {
        let ti = t.index();
        if self.threads[ti].park == Park::Done {
            return;
        }
        self.threads[ti].park = Park::Running;
        self.threads[ti].next_time = self.threads[ti].next_time.max(now);
        let l2id = self.cfg.l2_of_thread(t);
        let mut processed = 0usize;
        loop {
            if self.threads[ti].stream_done() {
                self.threads[ti].park = Park::Done;
                self.note_possible_completion(now, t);
                return;
            }
            if self.threads[ti].outstanding >= self.cfg.max_outstanding {
                self.threads[ti].park = Park::Outstanding;
                return;
            }
            if processed >= self.cfg.thread_batch {
                let at = self.threads[ti].next_time;
                self.queue.push(at.max(now), Ev::ThreadStep(t));
                return;
            }
            let rec = match self.threads[ti].pending.take() {
                Some(r) => r,
                None => self.workload.next_record(t),
            };
            if !self.process_reference(t, l2id, rec) {
                // Parked on MSHR exhaustion; the record is preserved.
                return;
            }
            processed += 1;
        }
    }

    /// Processes one reference; returns `false` when the thread parked
    /// (record preserved in `pending`).
    fn process_reference(
        &mut self,
        t: ThreadId,
        l2id: L2Id,
        rec: cmpsim_trace::TraceRecord,
    ) -> bool {
        let ti = t.index();
        let i = l2id.index();
        let core = self.cfg.core_of_thread(t);
        let line = rec.addr.line(self.cfg.line_bytes);
        let is_store = rec.op.is_store();
        let t_now = self.threads[ti].next_time;

        // L1 filter (loads only; stores write through).
        if !is_store && !self.l1s.is_empty() && self.l1s[core].load(line) {
            self.stats.l1_hits += 1;
            self.count_ref(ti, is_store);
            return true;
        }

        // L2 lookup.
        let mut resident = self.l2s[i].state_of(line);

        // Write-back queue recovery: the line was evicted recently and is
        // still waiting in our own castout queue — pull it back.
        if resident.is_none()
            && !self.l2s[i].castouts_inflight.contains(&line)
            && self.l2s[i].wbq.contains(line)
        {
            let e = self.l2s[i].wbq.remove(line).expect("entry just seen");
            // While parked in the queue the entry may have served
            // interventions (the queue is snoopable), so peers can hold
            // Shared copies now: a recovered dirty line is then the
            // shared dirty owner (T), and a recovered clean line must
            // not claim a second SL.
            // In-flight fills count as copies: an intervention this
            // queue entry served may still be travelling to its
            // requester, which will install Shared after we recover.
            let peer_copies = (0..self.l2s.len()).any(|j| {
                j != i
                    && (self.l2s[j].state_of(line).is_some()
                        || self.inbound_any(j as u8, line.raw()))
            });
            let st = match (e.dirty, peer_copies) {
                (true, false) => L2State::Modified,
                (true, true) => L2State::Tagged,
                (false, _) => self.sanitize_install(i, line, L2State::SharedLast),
            };
            if let Some((vline, vst)) = self.l2s[i].fill(line, st, InsertPosition::Mru) {
                self.on_l2_eviction(t_now, i, vline, vst);
            }
            self.trace(line, &|| format!("wbq-recovery L2#{i} -> {st}"));
            self.stats.l2[i].wbq_recoveries += 1;
            resident = Some(st);
        }

        match resident {
            Some(st) if !is_store || st.is_writable() => {
                // Plain hit.
                self.l2s[i].touch(line);
                if is_store && st == L2State::Exclusive {
                    self.l2s[i].set_state(line, L2State::Modified);
                }
                self.note_l2_hit(i, core, line, is_store);
                self.count_ref(ti, is_store);
                true
            }
            Some(_) => {
                // Store on a shared copy: the coherence policy decides
                // between the base-protocol Upgrade (invalidate peers)
                // and a write-through-style update.
                if self.policy.caps().adapts_coherence {
                    let action = self.policy.on_store_to_shared(t_now, line);
                    if let Some(a) = &mut self.audit {
                        a.record_coherence_decision(matches!(
                            action,
                            CoherenceAction::Update { .. }
                        ));
                    }
                    if let CoherenceAction::Update { penalty } = action {
                        // Update-mode store: push the new data to the
                        // sharers instead of invalidating them. Every
                        // copy stays Shared (ownership is untouched);
                        // the store pays the push latency.
                        self.l2s[i].touch(line);
                        self.note_l2_hit(i, core, line, is_store);
                        self.stats.coherence_updates += 1;
                        self.telemetry.emit(t_now, || SimEvent::CoherenceUpdate {
                            l2: i as u32,
                            line: line.raw(),
                        });
                        self.threads[ti].next_time += penalty;
                        self.count_ref(ti, is_store);
                        return true;
                    }
                }
                self.note_l2_hit(i, core, line, is_store);
                self.start_miss(t, l2id, line, TxnKind::Upgrade, rec)
            }
            None => {
                let kind = if is_store {
                    TxnKind::ReadExclusive
                } else {
                    TxnKind::ReadShared
                };
                self.stats.l2[i].misses += 1;
                self.telemetry.emit(t_now, || SimEvent::L2Miss {
                    l2: i as u32,
                    line: line.raw(),
                    store: is_store,
                });
                self.start_miss(t, l2id, line, kind, rec)
            }
        }
    }

    #[inline]
    fn note_l2_hit(&mut self, i: usize, core: usize, line: LineAddr, is_store: bool) {
        self.stats.l2[i].hits += 1;
        if let Some(f) = self.l2s[i].snarfed_lines.get_mut(&line.raw()) {
            if !f.used_locally {
                f.used_locally = true;
                self.stats.snarf.used_locally += 1;
            }
        }
        if !is_store && !self.l1s.is_empty() {
            self.l1s[core].fill(line);
        }
    }

    #[inline]
    fn count_ref(&mut self, ti: usize, is_store: bool) {
        self.threads[ti].issued += 1;
        self.threads[ti].next_time += self.workload.issue_interval();
        self.stats.refs += 1;
        if is_store {
            self.stats.stores += 1;
        } else {
            self.stats.loads += 1;
        }
    }

    /// Registers a miss/upgrade with the MSHRs and issues the bus
    /// transaction for primaries. Returns `false` when parked.
    fn start_miss(
        &mut self,
        t: ThreadId,
        l2id: L2Id,
        line: LineAddr,
        kind: TxnKind,
        rec: cmpsim_trace::TraceRecord,
    ) -> bool {
        let ti = t.index();
        let i = l2id.index();
        let t_now = self.threads[ti].next_time;
        match self.l2s[i].mshrs.allocate(line, t) {
            Err(_) => {
                self.threads[ti].pending = Some(rec);
                self.threads[ti].park = Park::MshrFull;
                self.l2s[i].waiting_threads.push(t);
                false
            }
            Ok(primary) => {
                self.threads[ti].outstanding += 1;
                if primary {
                    let txn = BusTxn::new(self.txn_seq.bump(), kind, line, l2id);
                    self.spans
                        .start(txn.span_id(), txn.span_kind(), i as u32, line.raw(), t_now);
                    self.miss_issue.insert((i as u8, line.raw()), t_now);
                    self.queue.push(
                        (t_now + self.cfg.miss_detect_cycles).max(self.queue.now()),
                        Ev::BusIssue(TxnState::miss(txn)),
                    );
                }
                self.count_ref(ti, rec.op.is_store());
                true
            }
        }
    }

    /// Records a thread's completion time once its stream is consumed
    /// and its outstanding misses drained.
    pub(super) fn note_possible_completion(&mut self, now: Cycle, t: ThreadId) {
        let ti = t.index();
        if self.threads[ti].finished() && self.threads[ti].completed_at.is_none() {
            self.threads[ti].completed_at = Some(now.max(self.threads[ti].next_time));
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::policy::PolicyConfig;
    use crate::system::testutil::system;

    #[test]
    fn upgrades_happen_under_rmw_traffic() {
        let mut sys = system(PolicyConfig::baseline());
        let stats = sys.run(2_000);
        assert!(stats.upgrades > 0, "migratory RMW must trigger upgrades");
        assert!(
            stats.fills_from_l2 > 0,
            "RMW lines must migrate via interventions"
        );
        sys.assert_invariants();
    }

    #[test]
    fn run_twice_continues_with_warm_caches() {
        let mut sys = system(PolicyConfig::baseline());
        let cold = sys.run(800);
        let warm = sys.run(800);
        // The second run re-processes the same per-thread budget on the
        // same (monotonic) clock...
        assert_eq!(warm.refs, cold.refs + 800 * 16);
        assert!(warm.cycles > cold.cycles);
        // ...and the warm increment is no slower than the cold run.
        assert!(warm.cycles - cold.cycles <= cold.cycles);
        sys.assert_invariants();
    }
}
