//! Snoop layer: every agent's reply to an address-ring transaction —
//! peer L2 tag lookups (pipelined through the snoop port), the L3
//! probe, and the memory acknowledgement — collected with the cycle the
//! combined response forms at the Snoop Collector.

use cmpsim_cache::LineAddr;
use cmpsim_coherence::{AgentId, BusTxn, L2Id, L2State, SnoopResponse, TxnKind};
use cmpsim_engine::Cycle;

use crate::system::System;

impl System {
    /// Books an L2's snoop tag port (pipelined: the port is occupied for
    /// `l2_snoop_occupancy`, the full lookup takes `l2_snoop_cycles`).
    pub(super) fn snoop_port(&mut self, j: usize, t_sn: Cycle) -> Cycle {
        let occ = self.cfg.l2_snoop_occupancy.min(self.cfg.l2_snoop_cycles);
        self.l2s[j].snoop_srv.reserve_for(t_sn, occ) + (self.cfg.l2_snoop_cycles - occ)
    }

    /// Peer L2 `j`'s snoop response to a read-class transaction on
    /// `line`.
    pub(super) fn snoop_l2_read(&mut self, j: usize, line: LineAddr) -> SnoopResponse {
        let id = L2Id::new(j as u8);
        // Address collision with a granted, in-flight fill at this
        // peer: ownership is in transit, so the snooped transaction must
        // retry (standard snoop behaviour for MSHR address matches).
        // Ungranted misses do NOT retry — their own bus phase is still
        // pending and will observe whatever this transaction decides.
        if self.inbound_any(j as u8, line.raw()) {
            return SnoopResponse::L2Retry(id);
        }
        match self.l2s[j].state_of(line) {
            Some(L2State::Modified) | Some(L2State::Tagged) => SnoopResponse::DirtyIntervene(id),
            Some(L2State::Exclusive) | Some(L2State::SharedLast) => {
                SnoopResponse::CleanIntervene(id)
            }
            Some(L2State::Shared) => SnoopResponse::SharedNoIntervene(id),
            None => {
                // The write-back queue is snoopable: a line parked there
                // is still this cache's to provide.
                match self.l2s[j].wbq.get(line) {
                    Some(e) if e.dirty => SnoopResponse::DirtyIntervene(id),
                    Some(_) => SnoopResponse::CleanIntervene(id),
                    None => SnoopResponse::Null,
                }
            }
        }
    }

    /// The snoop window of a miss-path transaction: every peer L2, the
    /// L3 (the requester's own in the private organization), and the
    /// memory controller reply; returns the responses and the cycle the
    /// last reply reaches the Snoop Collector.
    pub(super) fn collect_miss_snoops(
        &mut self,
        txn: &BusTxn,
        t_ring: Cycle,
    ) -> (Vec<SnoopResponse>, Cycle) {
        let i = txn.src.index();
        let line = txn.line;
        let src_agent = AgentId::L2(txn.src);
        let mut responses = std::mem::take(&mut self.snoop_scratch);
        responses.clear();
        let mut t_collect: Cycle = self.ring.response_at_collector(t_ring, src_agent);
        for j in 0..self.l2s.len() {
            if j == i {
                continue;
            }
            let agent = AgentId::L2(L2Id::new(j as u8));
            let t_sn = self.ring.snoop_arrival(t_ring, src_agent, agent);
            let t_resp = self.snoop_port(j, t_sn);
            let resp = self.snoop_l2_read(j, line);
            t_collect = t_collect.max(self.ring.response_at_collector(t_resp, agent));
            responses.push(resp);
        }
        // L3 snoop: the shared victim cache, or (private organization)
        // the requester's own L3 — probed at the same point of the
        // address phase over its dedicated bus.
        {
            let t_sn = self.ring.snoop_arrival(t_ring, src_agent, AgentId::L3);
            let snoop_lat = self.cfg.l2_snoop_cycles;
            let resp = if txn.kind == TxnKind::Upgrade {
                SnoopResponse::Null
            } else {
                self.l3_for(i).snoop_read(t_sn, line)
            };
            let t_resp = t_sn + snoop_lat;
            t_collect = t_collect.max(self.ring.response_at_collector(t_resp, AgentId::L3));
            responses.push(resp);
        }
        // Memory ack.
        {
            let t_sn = self.ring.snoop_arrival(t_ring, src_agent, AgentId::Memory);
            t_collect = t_collect.max(self.ring.response_at_collector(t_sn, AgentId::Memory));
            responses.push(if txn.kind == TxnKind::Upgrade {
                SnoopResponse::Null
            } else {
                SnoopResponse::MemoryAck
            });
        }
        (responses, t_collect)
    }

    /// The snoop window of a castout on the shared ring.
    ///
    /// Every L2 snoops every address transaction (castouts included)
    /// in both the baseline and the snarf protocol — that is how a
    /// snoop-based system works, so the snoop-port cost is identical
    /// and the comparison fair. What the snarf protocol *adds* is the
    /// response: any peer holding the line squashes the write-back
    /// ("if a peer L2 cache snoops a write back request, and the line
    /// is already valid in the peer L2, the actual write back
    /// operation is squashed", §5.2), and for snarf-eligible castouts
    /// (reuse-table hit with the use bit — the gate that limits the
    /// *victim-allocation* work, §3) a peer with a free or
    /// Shared-state way and a free line-fill buffer offers to absorb
    /// the line.
    pub(super) fn collect_castout_snoops(
        &mut self,
        txn: &BusTxn,
        dirty: bool,
        t_ring: Cycle,
    ) -> (Vec<SnoopResponse>, Cycle) {
        let i = txn.src.index();
        let line = txn.line;
        let src_agent = AgentId::L2(txn.src);
        let mut responses = std::mem::take(&mut self.snoop_scratch);
        responses.clear();
        let mut t_collect: Cycle = self.ring.response_at_collector(t_ring, src_agent);
        for j in 0..self.l2s.len() {
            if j == i {
                continue;
            }
            let agent = AgentId::L2(L2Id::new(j as u8));
            let t_sn = self.ring.snoop_arrival(t_ring, src_agent, agent);
            let t_resp = self.snoop_port(j, t_sn);
            let id = L2Id::new(j as u8);
            let resp = if !self.cfg.policy.has_snarf() {
                // Baseline: peers observe castouts but stay silent.
                SnoopResponse::Null
            } else if self.l2s[j].state_of(line).is_some() || self.l2s[j].wbq.contains(line) {
                SnoopResponse::PeerHasCopy(id)
            } else if txn.snarf_eligible
                && self.l2s[j].snarf_victim(line).is_some()
                && self.l2s[j].try_reserve_snarf_buffer(t_sn, line, self.cfg.snarf_buffer_hold)
            {
                SnoopResponse::SnarfAccept(id)
            } else {
                SnoopResponse::Null
            };
            t_collect = t_collect.max(self.ring.response_at_collector(t_resp, agent));
            responses.push(resp);
        }
        // L3 snoop.
        {
            let t_sn = self.ring.snoop_arrival(t_ring, src_agent, AgentId::L3);
            let resp = self.l3.snoop_castout(t_sn, line, dirty);
            let t_resp = t_sn + self.cfg.l2_snoop_cycles;
            t_collect = t_collect.max(self.ring.response_at_collector(t_resp, AgentId::L3));
            responses.push(resp);
        }
        (responses, t_collect)
    }
}

#[cfg(test)]
mod tests {
    use crate::policy::PolicyConfig;
    use crate::system::testutil::system;

    #[test]
    fn snoop_port_is_pipelined() {
        let mut sys = system(PolicyConfig::baseline());
        let a = sys.snoop_port(1, 100);
        let b = sys.snoop_port(1, 100);
        // Latency is full for both, but the port only serializes by the
        // initiation interval, not the full lookup.
        assert_eq!(a, 100 + sys.cfg.l2_snoop_cycles);
        assert_eq!(b, a + sys.cfg.l2_snoop_occupancy);
    }
}
