//! Write-back layer: L2 eviction into the snoopable write-back queue,
//! policy filtering at drain time (WBHT, reuse-distance copy-back),
//! castout bus issue (ring or private L3 bus), squash/snarf/accept
//! outcome handling, and redundant-clean-WB accounting.

use cmpsim_cache::LineAddr;
use cmpsim_coherence::{
    AgentId, BusTxn, CombinedResponse, L2Id, L2State, SnoopResponse, TxnKind, TxnPath, TxnState,
    WbOutcome,
};
use cmpsim_engine::spans::{SpanOutcome, SpanPhase};
use cmpsim_engine::telemetry::{SimEvent, SquashReason};
use cmpsim_engine::Cycle;

use crate::config::L3Organization;
use crate::policy::{CastoutCtx, CastoutDecision};
use crate::system::system::Ev;
use crate::system::System;

impl System {
    pub(super) fn bus_issue_castout(&mut self, now: Cycle, state: TxnState, dirty: bool) {
        let TxnState { txn, attempt, .. } = state;
        let i = txn.src.index();
        let line = txn.line;
        let sid = txn.span_id();
        // The entry may have been claimed (RFO) or recovered since the
        // drain picked it.
        if !self.l2s[i].castouts_inflight.contains(&line) || !self.l2s[i].wbq.contains(line) {
            self.spans.finish(sid, SpanOutcome::ResolvedLocal, now);
            self.l2s[i].castouts_inflight.remove(&line);
            self.queue.push(now, Ev::WbDrain(txn.src));
            return;
        }
        // First attempt: the segment since span start is the drain-to-bus
        // issue gap. Retries: back-off queueing.
        if attempt == 0 {
            self.spans.mark(sid, SpanPhase::Issue, now);
        } else {
            self.spans.mark(sid, SpanPhase::RetryBackoff, now);
        }
        if self.cfg.l3_organization == L3Organization::PrivatePerL2 {
            self.private_castout(now, txn, dirty, attempt);
            return;
        }

        if attempt == 0 {
            if dirty {
                self.stats.wb.dirty_requests += 1;
            } else {
                self.stats.wb.clean_requests += 1;
            }
            self.stats.wb_reuse.total += 1;
            // New write-back generation: overwriting clears any stale
            // accepted mark from an earlier castout of the same line.
            self.wb_lines.insert(line.raw(), false);
            self.policy.on_castout_issued(line);
            let snarf_eligible = txn.snarf_eligible;
            self.telemetry.emit(now, || SimEvent::CastoutIssued {
                l2: i as u32,
                line: line.raw(),
                dirty,
                snarf_eligible,
            });
        } else {
            self.stats.wb.retried_attempts += 1;
        }

        let src_agent = AgentId::L2(txn.src);
        let (arb_wait, t_ring) = self.ring.issue_address_timed(now, src_agent);
        self.spans.mark(sid, SpanPhase::RingArb, now + arb_wait);
        self.spans.mark(sid, SpanPhase::RingTransit, t_ring);

        // Snoop phase (squash/snarf responses: see the snoop layer).
        // Wall time here is carved out for `HostStage::Snoop` when the
        // host profiler sampled this dispatch.
        let t_snoop = if self.host_sampling {
            cmpsim_engine::profiler::now_ticks()
        } else {
            0
        };
        let (responses, t_collect) = self.collect_castout_snoops(&txn, dirty, t_ring);
        if self.host_sampling {
            self.host_nested += cmpsim_engine::profiler::now_ticks().saturating_sub(t_snoop);
        }

        let combined = self.collector.combine(&txn, &responses);
        self.snoop_scratch = responses;
        let t_seen = self.ring.combined_arrival(t_collect, src_agent);
        self.spans.mark(sid, SpanPhase::SnoopWindow, t_seen);

        let outcome = match combined {
            CombinedResponse::Retry { l3_issued } => {
                self.record_retry(t_seen, l3_issued);
                self.queue.push(
                    t_seen + self.retry_delay(&txn, attempt),
                    Ev::BusIssue(TxnState {
                        txn,
                        path: TxnPath::Castout { dirty },
                        attempt: attempt + 1,
                    }),
                );
                return;
            }
            CombinedResponse::Wb(o) => o,
            other => unreachable!("read response {other:?} to a castout"),
        };

        self.trace(line, &|| {
            format!("castout {} from {} outcome {outcome:?}", txn.kind, txn.src)
        });
        if txn.snarf_eligible {
            let winner = match outcome {
                WbOutcome::SnarfedBy(p) => Some(p.index() as u32),
                _ => None,
            };
            self.policy
                .on_snarf_arbitration(t_seen, i as u32, line, winner);
        }
        if let Some(a) = &mut self.audit {
            // Terminal outcome for an audited allow verdict: an
            // already-in-L3 squash marks it a missed abort.
            a.resolve_allow(
                i,
                line.raw(),
                matches!(outcome, WbOutcome::SquashedAlreadyInL3),
            );
        }
        match outcome {
            WbOutcome::SquashedAlreadyInL3 => {
                self.spans.finish(sid, SpanOutcome::Squashed, t_seen);
                self.stats.wb.clean_squashed_l3 += 1;
                self.telemetry.emit(t_seen, || SimEvent::CastoutSquashed {
                    l2: i as u32,
                    line: line.raw(),
                    reason: SquashReason::AlreadyInL3,
                });
                self.policy.note_redundant_copy_back(t_seen, txn.src, line);
            }
            WbOutcome::SquashedPeerHasCopy(p) => {
                self.spans.finish(sid, SpanOutcome::Squashed, t_seen);
                self.stats.wb.squashed_peer += 1;
                self.telemetry.emit(t_seen, || SimEvent::CastoutSquashed {
                    l2: i as u32,
                    line: line.raw(),
                    reason: SquashReason::PeerHasCopy,
                });
                if dirty {
                    // Ownership transfer: the peer's clean copy becomes
                    // the dirty owner without a data transfer.
                    let pj = p.index();
                    if let Some(cur) = self.l2s[pj].state_of(line) {
                        if !cur.is_dirty() {
                            self.l2s[pj].set_state(line, L2State::Tagged);
                        }
                    }
                }
            }
            WbOutcome::SnarfedBy(p) => {
                self.stats.wb.snarfed += 1;
                self.telemetry.emit(t_seen, || SimEvent::CastoutSnarfed {
                    l2: i as u32,
                    by: p.index() as u32,
                    line: line.raw(),
                });
                self.inbound_insert(p.index() as u8, line.raw(), Self::INBOUND_SNARF);
                let arrival = self.ring.transfer_data(t_seen, src_agent, AgentId::L2(p));
                self.spans.mark(sid, SpanPhase::DataReturn, arrival);
                self.spans.finish(sid, SpanOutcome::Snarfed, arrival);
                self.queue
                    .push(arrival, Ev::SnarfFill { l2: p, line, dirty });
            }
            WbOutcome::AcceptedByL3 { .. } => {
                let t_arr = self.l3_link.reserve_for(t_seen, self.cfg.l3_link_occupancy)
                    + self.cfg.l3_link_delay;
                self.spans.mark(sid, SpanPhase::DataReturn, t_arr);
                match self.l3.accept_castout_timed(t_arr, line, dirty) {
                    Some((done, victim, l3_wait)) => {
                        self.spans.mark(sid, SpanPhase::L3Queue, t_arr + l3_wait);
                        self.spans.mark(sid, SpanPhase::L3Service, done);
                        self.spans.finish(sid, SpanOutcome::AcceptedL3, done);
                        self.stats.wb.accepted_l3 += 1;
                        self.telemetry.emit(t_arr, || SimEvent::CastoutAccepted {
                            l2: i as u32,
                            line: line.raw(),
                        });
                        if let Some(accepted) = self.wb_lines.get_mut(&line.raw()) {
                            *accepted = true;
                        }
                        self.stats.wb_reuse.accepted += 1;
                        if let Some(v) = victim {
                            self.mem.write(done, v);
                        }
                    }
                    None => {
                        // Queue filled between snoop and data arrival.
                        self.record_retry(t_arr, true);
                        self.queue.push(
                            t_arr + self.retry_delay(&txn, attempt),
                            Ev::BusIssue(TxnState {
                                txn,
                                path: TxnPath::Castout { dirty },
                                attempt: attempt + 1,
                            }),
                        );
                        return;
                    }
                }
            }
        }

        // Resolution: retire the entry and continue draining.
        self.l2s[i].wbq.remove(line);
        self.l2s[i].castouts_inflight.remove(&line);
        self.queue.push(t_seen + 1, Ev::WbDrain(txn.src));
    }

    /// Castout over a dedicated private-L3 bus (§7 organization): no
    /// ring address phase, no peer snoops, no Snoop Collector — and
    /// therefore no snarfing. The WBHT still learns from the private
    /// bus's squash responses.
    fn private_castout(&mut self, now: Cycle, txn: BusTxn, dirty: bool, attempt: u32) {
        let i = txn.src.index();
        let line = txn.line;
        let sid = txn.span_id();
        if attempt == 0 {
            if dirty {
                self.stats.wb.dirty_requests += 1;
            } else {
                self.stats.wb.clean_requests += 1;
            }
            self.stats.wb_reuse.total += 1;
            self.wb_lines.insert(line.raw(), false);
            self.telemetry.emit(now, || SimEvent::CastoutIssued {
                l2: i as u32,
                line: line.raw(),
                dirty,
                snarf_eligible: false,
            });
        } else {
            self.stats.wb.retried_attempts += 1;
        }
        let occ = self.cfg.l3_link_occupancy;
        let delay = self.cfg.l3_link_delay;
        let arrive = self.private_l3_links[i].reserve_for(now, occ) + delay;
        self.spans.mark(sid, SpanPhase::DataReturn, arrive);
        let resp = self.l3_for(i).snoop_castout(arrive, line, dirty);
        self.trace(line, &|| {
            format!("private castout from {} -> {resp:?}", txn.src)
        });
        if !matches!(&resp, SnoopResponse::L3Retry) {
            if let Some(a) = &mut self.audit {
                a.resolve_allow(
                    i,
                    line.raw(),
                    matches!(&resp, SnoopResponse::L3Hit(_)) && !dirty,
                );
            }
        }
        match resp {
            SnoopResponse::L3Hit(_) if !dirty => {
                self.spans.finish(sid, SpanOutcome::Squashed, arrive);
                self.stats.wb.clean_squashed_l3 += 1;
                self.telemetry.emit(arrive, || SimEvent::CastoutSquashed {
                    l2: i as u32,
                    line: line.raw(),
                    reason: SquashReason::AlreadyInL3,
                });
                self.policy.note_redundant_copy_back(arrive, txn.src, line);
            }
            SnoopResponse::L3Hit(_) | SnoopResponse::L3Accept => {
                match self.l3_for(i).accept_castout_timed(arrive, line, dirty) {
                    Some((done, victim, l3_wait)) => {
                        self.spans.mark(sid, SpanPhase::L3Queue, arrive + l3_wait);
                        self.spans.mark(sid, SpanPhase::L3Service, done);
                        self.spans.finish(sid, SpanOutcome::AcceptedL3, done);
                        self.stats.wb.accepted_l3 += 1;
                        self.telemetry.emit(arrive, || SimEvent::CastoutAccepted {
                            l2: i as u32,
                            line: line.raw(),
                        });
                        if let Some(accepted) = self.wb_lines.get_mut(&line.raw()) {
                            *accepted = true;
                        }
                        self.stats.wb_reuse.accepted += 1;
                        if let Some(v) = victim {
                            self.mem.write(done, v);
                        }
                    }
                    None => {
                        self.record_retry(arrive, true);
                        self.queue.push(
                            arrive + self.retry_delay(&txn, attempt),
                            Ev::BusIssue(TxnState {
                                txn,
                                path: TxnPath::Castout { dirty },
                                attempt: attempt + 1,
                            }),
                        );
                        return;
                    }
                }
            }
            SnoopResponse::L3Retry => {
                self.record_retry(arrive, true);
                self.queue.push(
                    arrive + self.retry_delay(&txn, attempt),
                    Ev::BusIssue(TxnState {
                        txn,
                        path: TxnPath::Castout { dirty },
                        attempt: attempt + 1,
                    }),
                );
                return;
            }
            other => unreachable!("private L3 castout response {other:?}"),
        }
        self.l2s[i].wbq.remove(line);
        self.l2s[i].castouts_inflight.remove(&line);
        self.queue.push(arrive + 1, Ev::WbDrain(txn.src));
    }

    pub(super) fn handle_wb_drain(&mut self, now: Cycle, l2id: L2Id) {
        let i = l2id.index();
        loop {
            if self.l2s[i].castouts_inflight.len() >= self.cfg.castout_inflight_max {
                return;
            }
            // Oldest entry not already on the bus.
            let next = {
                let inflight = &self.l2s[i].castouts_inflight;
                let mut found = None;
                for k in 0.. {
                    // Scan queue order via front-relative probing.
                    let Some(e) = self.l2s[i].wbq.nth(k) else {
                        break;
                    };
                    if !inflight.contains(&e.line) {
                        found = Some(*e);
                        break;
                    }
                }
                found
            };
            let Some(entry) = next else {
                self.l2s[i].draining = !self.l2s[i].castouts_inflight.is_empty();
                return;
            };
            // Policy filtering: consulted off the miss path, after the
            // victim entered the queue (§2).
            if !entry.dirty && self.policy.caps().filters_clean_castouts {
                let engaged = self.policy.castout_gate_engaged(now);
                let in_l3 = match self.cfg.l3_organization {
                    L3Organization::SharedVictim => self.l3.peek(entry.line),
                    L3Organization::PrivatePerL2 => self.private_l3s[i].peek(entry.line),
                };
                let ctx = CastoutCtx {
                    now,
                    l2: i,
                    line: entry.line,
                    engaged,
                    in_l3,
                };
                let abort = self.policy.on_castout_candidate(&ctx) == CastoutDecision::Abort;
                if let Some(a) = &mut self.audit {
                    a.record_wbht_decision(i, entry.line.raw(), engaged, abort);
                }
                if abort {
                    self.l2s[i].wbq.remove(entry.line);
                    self.stats.wb.clean_aborted += 1;
                    self.telemetry.emit(now, || SimEvent::CastoutAborted {
                        l2: i as u32,
                        line: entry.line.raw(),
                    });
                    continue;
                }
            }
            let eligible = self.policy.snarf_eligible(entry.line);
            let mut txn = BusTxn::new(
                self.txn_seq.bump(),
                if entry.dirty {
                    TxnKind::CastoutDirty
                } else {
                    TxnKind::CastoutClean
                },
                entry.line,
                l2id,
            );
            if eligible {
                txn = txn.with_snarf();
            }
            self.spans.start(
                txn.span_id(),
                txn.span_kind(),
                i as u32,
                entry.line.raw(),
                now,
            );
            self.l2s[i].castouts_inflight.insert(entry.line);
            self.l2s[i].draining = true;
            self.queue
                .push(now + 1, Ev::BusIssue(TxnState::castout(txn, entry.dirty)));
            // Loop: issue more if the concurrency limit allows.
        }
    }

    pub(super) fn on_l2_eviction(&mut self, now: Cycle, i: usize, vline: LineAddr, vst: L2State) {
        self.trace(vline, &|| format!("evict L2#{i} state={vst} -> wbq"));
        self.invalidate_l1s_of(i, vline);
        self.finalize_snarf_flags(i, vline);
        let pushed = self.l2s[i].wbq.push(cmpsim_cache::WbEntry {
            line: vline,
            dirty: vst.is_dirty(),
        });
        debug_assert!(pushed, "wbq overflow despite fill gating");
        if self.l2s[i].castouts_inflight.len() < self.cfg.castout_inflight_max {
            self.queue.push(
                now.max(self.queue.now()) + 1,
                Ev::WbDrain(L2Id::new(i as u8)),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use cmpsim_cache::LineAddr;
    use cmpsim_coherence::L2Id;

    use crate::policy::{PolicyConfig, UpdateScope, WbhtConfig};
    use crate::system::testutil::system;

    #[test]
    fn global_scope_notes_redundant_in_every_table() {
        let mut sys = system(PolicyConfig::wbht(WbhtConfig {
            entries: 256,
            assoc: 16,
            scope: UpdateScope::Global,
            granularity: 1,
        }));
        let line = LineAddr::new(16);
        sys.policy.note_redundant_copy_back(0, L2Id::new(0), line);
        for i in 0..sys.l2s.len() {
            assert!(sys.policy.knows_line(i, line));
        }
        // Local scope: only the writer's table.
        let mut sys = system(PolicyConfig::wbht(WbhtConfig {
            entries: 256,
            assoc: 16,
            scope: UpdateScope::Local,
            granularity: 1,
        }));
        sys.policy.note_redundant_copy_back(0, L2Id::new(2), line);
        for i in 0..sys.l2s.len() {
            assert_eq!(sys.policy.knows_line(i, line), i == 2);
        }
    }
}
