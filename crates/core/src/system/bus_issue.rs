//! Bus-issue layer of the miss path: revalidation against state changes
//! since miss detection, address-ring arbitration, combined-response
//! handling, and data-source timing for fills. Castout transactions are
//! routed to the write-back layer ([`castout`](super::castout)).

use cmpsim_coherence::{
    AgentId, BusTxn, CombinedResponse, DataSource, L2State, TxnKind, TxnPath, TxnState,
};
use cmpsim_engine::spans::{SpanOutcome, SpanPhase};
use cmpsim_engine::telemetry::SimEvent;
use cmpsim_engine::Cycle;

use crate::config::L3Organization;
use crate::policy::ResponseCtx;
use crate::system::system::Ev;
use crate::system::System;

impl System {
    /// Routes a bus transaction to its protocol path.
    pub(super) fn handle_bus_issue(&mut self, now: Cycle, state: TxnState) {
        match state.path {
            TxnPath::Miss => self.bus_issue_miss(now, state),
            TxnPath::Castout { dirty } => self.bus_issue_castout(now, state, dirty),
        }
    }

    fn bus_issue_miss(&mut self, now: Cycle, state: TxnState) {
        let TxnState {
            mut txn, attempt, ..
        } = state;
        let i = txn.src.index();
        let line = txn.line;
        let sid = txn.span_id();
        // First attempt: the segment since span start is the miss-detect
        // / MSHR window. Retries: the segment since the combined response
        // is back-off queueing.
        if attempt == 0 {
            self.spans.mark(sid, SpanPhase::MshrAlloc, now);
        } else {
            self.spans.mark(sid, SpanPhase::RetryBackoff, now);
        }
        // Revalidate against state changes since the miss was detected
        // (snarfs, peer castout squashes, races during retries).
        let st = self.l2s[i].state_of(line);
        match (txn.kind, st) {
            (TxnKind::Upgrade, None) => txn.kind = TxnKind::ReadExclusive,
            (TxnKind::Upgrade, Some(s)) if s.is_writable() => {
                // Already exclusive (e.g. peers vanished): done.
                self.spans.finish(sid, SpanOutcome::ResolvedLocal, now);
                self.queue.push(
                    now,
                    Ev::Fill {
                        l2: txn.src,
                        line,
                        state: L2State::Modified,
                    },
                );
                return;
            }
            (TxnKind::ReadShared, Some(_)) => {
                // The line arrived by other means (snarf): hit.
                self.spans.finish(sid, SpanOutcome::ResolvedLocal, now);
                self.queue.push(
                    now,
                    Ev::Fill {
                        l2: txn.src,
                        line,
                        state: st.expect("present"),
                    },
                );
                return;
            }
            (TxnKind::ReadExclusive, Some(s)) => {
                if s.is_writable() {
                    self.spans.finish(sid, SpanOutcome::ResolvedLocal, now);
                    self.queue.push(
                        now,
                        Ev::Fill {
                            l2: txn.src,
                            line,
                            state: L2State::Modified,
                        },
                    );
                    return;
                }
                txn.kind = TxnKind::Upgrade;
            }
            _ => {}
        }

        let src_agent = AgentId::L2(txn.src);
        let (arb_wait, t_ring) = self.ring.issue_address_timed(now, src_agent);
        self.spans.mark(sid, SpanPhase::RingArb, now + arb_wait);
        self.spans.mark(sid, SpanPhase::RingTransit, t_ring);

        // Snoop phase. When the host profiler sampled this dispatch, the
        // snoop window's wall time is carved out of the enclosing stage
        // and billed to `HostStage::Snoop` by the event loop.
        let t_snoop = if self.host_sampling {
            cmpsim_engine::profiler::now_ticks()
        } else {
            0
        };
        let (responses, t_collect) = self.collect_miss_snoops(&txn, t_ring);
        if self.host_sampling {
            self.host_nested += cmpsim_engine::profiler::now_ticks().saturating_sub(t_snoop);
        }

        let combined = self.collector.combine(&txn, &responses);
        self.snoop_scratch = responses;
        let t_seen = self.ring.combined_arrival(t_collect, src_agent);

        match combined {
            CombinedResponse::Retry { l3_issued } => {
                self.spans.mark(sid, SpanPhase::SnoopWindow, t_seen);
                self.record_retry(t_seen, l3_issued);
                self.stats.read_retries += 1;
                self.queue.push(
                    t_seen + self.retry_delay(&txn, attempt),
                    Ev::BusIssue(TxnState {
                        txn,
                        path: TxnPath::Miss,
                        attempt: attempt + 1,
                    }),
                );
            }
            CombinedResponse::UpgradeOk => {
                self.trace(line, &|| format!("upgrade-ok {}", txn.src));
                self.spans.mark(sid, SpanPhase::SnoopWindow, t_seen);
                self.spans.finish(sid, SpanOutcome::Upgraded, t_seen);
                self.stats.upgrades += 1;
                self.apply_invalidations(txn.src, line, None);
                self.inbound_insert(txn.src.index() as u8, line.raw(), Self::INBOUND_FILL);
                self.queue.push(
                    t_seen,
                    Ev::Fill {
                        l2: txn.src,
                        line,
                        state: L2State::Modified,
                    },
                );
            }
            CombinedResponse::Read { source, sharers } => {
                self.apply_read(t_collect, t_seen, &txn, source, sharers);
            }
            CombinedResponse::Wb(_) => unreachable!("castout response to a read"),
        }
    }

    fn apply_read(
        &mut self,
        t_collect: Cycle,
        t_seen: Cycle,
        txn: &BusTxn,
        source: DataSource,
        sharers: bool,
    ) {
        let line = txn.line;
        let src_agent = AgentId::L2(txn.src);

        // Reuse bookkeeping: this is a demand miss on the line; one map
        // removal answers both "was a write-back pending" and "had the
        // L3 accepted it".
        if let Some(accepted) = self.wb_lines.remove(&line.raw()) {
            self.stats.wb_reuse.reused_total += 1;
            if accepted {
                self.stats.wb_reuse.reused_accepted += 1;
            }
        }
        self.policy.observe_combined_response(&ResponseCtx {
            now: t_seen,
            l2: txn.src.index(),
            line,
        });

        self.trace(line, &|| {
            format!(
                "grant {} src={:?} sharers={sharers} for {}",
                txn.kind, source, txn.src
            )
        });
        let install = match (txn.kind, source) {
            (TxnKind::ReadExclusive, _) => L2State::Modified,
            (_, DataSource::L2 { dirty: true, .. }) => L2State::Shared,
            (_, DataSource::L2 { dirty: false, .. }) => L2State::SharedLast,
            (_, DataSource::L3 { .. }) => {
                if sharers {
                    L2State::Shared
                } else {
                    L2State::SharedLast
                }
            }
            (_, DataSource::Memory) => {
                if sharers {
                    L2State::Shared
                } else {
                    L2State::Exclusive
                }
            }
        };

        let sid = txn.span_id();
        let arrival = match source {
            DataSource::L2 { provider, dirty: _ } => {
                let p = provider.index();
                self.stats.fills_from_l2 += 1;
                self.stats.l2[p].interventions_provided += 1;
                if let Some(f) = self.l2s[p].snarfed_lines.get_mut(&line.raw()) {
                    if !f.used_for_intervention {
                        f.used_for_intervention = true;
                        self.stats.snarf.used_for_intervention += 1;
                    }
                }
                // Provider-side state transition.
                if txn.kind == TxnKind::ReadShared {
                    if let Some(cur) = self.l2s[p].state_of(line) {
                        self.l2s[p].set_state(line, cur.after_providing_shared());
                    }
                }
                let p_agent = AgentId::L2(provider);
                let t_seen_p = self.ring.combined_arrival(t_collect, p_agent);
                self.spans.mark(sid, SpanPhase::SnoopWindow, t_seen_p);
                let (p_wait, t_data) = self.l2s[p].array_srv.reserve_timed(t_seen_p);
                self.spans
                    .mark(sid, SpanPhase::PeerQueue, t_seen_p + p_wait);
                self.spans.mark(sid, SpanPhase::PeerService, t_data);
                self.ring.transfer_data(t_data, p_agent, src_agent)
            }
            DataSource::L3 { .. } => {
                self.stats.fills_from_l3 += 1;
                let t_seen_l3 = self.ring.combined_arrival(t_collect, AgentId::L3);
                self.spans.mark(sid, SpanPhase::SnoopWindow, t_seen_l3);
                let invalidate = txn.kind == TxnKind::ReadExclusive;
                let i = txn.src.index();
                let occ = self.cfg.l3_link_occupancy;
                let delay = self.cfg.l3_link_delay;
                let (ready, _st, l3_wait) = self
                    .l3_for(i)
                    .provide_read_timed(t_seen_l3, line, invalidate);
                self.spans
                    .mark(sid, SpanPhase::L3Queue, t_seen_l3 + l3_wait);
                self.spans.mark(sid, SpanPhase::L3Service, ready);
                let link = match self.cfg.l3_organization {
                    L3Organization::SharedVictim => &mut self.l3_link,
                    L3Organization::PrivatePerL2 => &mut self.private_l3_links[i],
                };
                link.reserve_for(ready, occ) + delay
            }
            DataSource::Memory => {
                self.stats.fills_from_memory += 1;
                let t_seen_m = self.ring.combined_arrival(t_collect, AgentId::Memory);
                self.spans.mark(sid, SpanPhase::SnoopWindow, t_seen_m);
                let (bank_wait, ready) = self.mem.read_timed(t_seen_m, line);
                self.spans
                    .mark(sid, SpanPhase::MemQueue, t_seen_m + bank_wait);
                self.spans.mark(sid, SpanPhase::MemService, ready);
                self.mem_link
                    .reserve_for(ready, self.cfg.mem_link_occupancy)
                    + self.cfg.mem_link_delay
            }
        };

        if txn.kind == TxnKind::ReadExclusive {
            let skip_l3 = matches!(source, DataSource::L3 { .. });
            self.apply_invalidations(txn.src, line, skip_l3.then_some(()));
        }

        self.inbound_insert(txn.src.index() as u8, line.raw(), Self::INBOUND_FILL);
        let t_fill = arrival.max(t_seen);
        self.spans.mark(sid, SpanPhase::DataReturn, t_fill);
        self.spans
            .finish(sid, SpanOutcome::Filled(source.fill_source()), t_fill);
        if let Some(a) = &mut self.audit {
            // A demand re-miss on a WBHT-aborted line resolves the
            // pending verdict: memory escalation is a mispredict, charged
            // the measured fill latency; an L3/peer fill proves the
            // dropped write-back redundant.
            let latency = self
                .miss_issue
                .get(&(txn.src.index() as u8, line.raw()))
                .map_or(0, |&t0| t_fill.saturating_sub(t0));
            a.resolve_abort(line.raw(), matches!(source, DataSource::Memory), latency);
        }
        if self.telemetry.is_enabled() {
            let l2 = txn.src.index() as u32;
            let latency = self
                .miss_issue
                .get(&(txn.src.index() as u8, line.raw()))
                .map_or(0, |&t0| t_fill.saturating_sub(t0));
            self.telemetry.emit(t_fill, || SimEvent::L2Fill {
                l2,
                line: line.raw(),
                source: source.fill_source(),
                latency,
            });
        }
        self.queue.push(
            t_fill,
            Ev::Fill {
                l2: txn.src,
                line,
                state: install,
            },
        );
    }

    /// Retry back-off with deterministic per-transaction jitter so
    /// rejected transactions do not return in lockstep storms. The
    /// jitter is a pure hash of `(transaction id, attempt)` salted with
    /// the configuration's explicit `retry_jitter_seed`, so identical
    /// specs replay identical back-off sequences (the determinism the
    /// golden traces and the parallel grid rely on); the default seed
    /// of 0 contributes nothing and preserves the historical sequence.
    pub(super) fn retry_delay(&self, txn: &BusTxn, attempt: u32) -> Cycle {
        let base = self.cfg.retry_backoff;
        let jitter = (txn
            .id
            .raw()
            .wrapping_mul(7)
            .wrapping_add(attempt as u64 * 13)
            .wrapping_add(
                self.cfg
                    .retry_jitter_seed
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15),
            ))
            % base.max(1);
        base + jitter
    }

    pub(super) fn record_retry(&mut self, now: Cycle, l3_issued: bool) {
        self.stats.retries_total += 1;
        if l3_issued {
            self.stats.retries_l3 += 1;
        }
        self.policy.record_retry(now);
    }
}

#[cfg(test)]
mod tests {
    use cmpsim_cache::LineAddr;
    use cmpsim_coherence::{BusTxn, L2Id, TxnId, TxnKind};

    use crate::policy::PolicyConfig;
    use crate::system::testutil::system;

    #[test]
    fn retry_delay_is_jittered_and_bounded() {
        let sys = system(PolicyConfig::baseline());
        let mut txn_seq = TxnId::ZERO;
        let base = sys.cfg.retry_backoff;
        let mut delays = std::collections::HashSet::new();
        for attempt in 0..8 {
            let txn = BusTxn::new(
                txn_seq.bump(),
                TxnKind::ReadShared,
                LineAddr::new(4),
                L2Id::new(0),
            );
            let d = sys.retry_delay(&txn, attempt);
            assert!(
                d >= base && d < 2 * base,
                "delay {d} out of [{base}, {})",
                2 * base
            );
            delays.insert(d);
        }
        assert!(delays.len() > 1, "no jitter across transactions");
    }

    #[test]
    fn retry_jitter_seed_shifts_the_sequence_deterministically() {
        let mut sys_a = system(PolicyConfig::baseline());
        let mut sys_b = system(PolicyConfig::baseline());
        sys_a.cfg.retry_jitter_seed = 1;
        sys_b.cfg.retry_jitter_seed = 1;
        let plain = system(PolicyConfig::baseline());
        let mut txn_seq = TxnId::ZERO;
        let txn = BusTxn::new(
            txn_seq.bump(),
            TxnKind::ReadShared,
            LineAddr::new(4),
            L2Id::new(0),
        );
        // Same seed -> same delay; the salt shifts relative to seed 0.
        assert_eq!(sys_a.retry_delay(&txn, 2), sys_b.retry_delay(&txn, 2));
        let differs = (0..8).any(|a| sys_a.retry_delay(&txn, a) != plain.retry_delay(&txn, a));
        assert!(differs, "salt must perturb at least one attempt");
    }
}
