//! Observation layer: telemetry and span-tracer wiring, interval
//! sampling, statistics accessors for tests/tools, and end-of-run
//! statistics finalization.

use cmpsim_cache::LineAddr;
use cmpsim_coherence::L2State;
use cmpsim_engine::profiler::{HostGauges, HostProfiler};
use cmpsim_engine::progress::ProgressMeter;
use cmpsim_engine::spans::SpanTracer;
use cmpsim_engine::stream::TelemetryStream;
use cmpsim_engine::telemetry::{IntervalRecord, IntervalSampler, SimEvent, Telemetry};
use cmpsim_engine::Cycle;
use cmpsim_mem::{L3Cache, MemoryController};

use crate::config::L3Organization;
use crate::policy::RetrySwitchConfig;
use crate::system::audit::DecisionAudit;
use crate::system::audit_report::DecisionAuditSummary;
use crate::system::stats::SystemStats;
use crate::system::System;

impl System {
    /// Replaces the adaptive retry-rate switch (§6) configuration.
    pub fn set_retry_switch(&mut self, cfg: RetrySwitchConfig) {
        self.policy.set_retry_switch(cfg);
        self.policy.attach_telemetry(&self.telemetry);
    }

    /// Attaches an event-trace handle and propagates clones of it to
    /// every instrumented component (L2s, the policy stack and its
    /// retry switch, and the L3s).
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        for l2 in &mut self.l2s {
            l2.attach_telemetry(telemetry.clone());
        }
        self.policy.attach_telemetry(&telemetry);
        self.l3.attach_telemetry(telemetry.clone());
        for l3 in &mut self.private_l3s {
            l3.attach_telemetry(telemetry.clone());
        }
        self.telemetry = telemetry;
    }

    /// Attaches a transaction span tracer. Every subsequent L2
    /// miss/upgrade/castout transaction gets a cycle-stamped phase
    /// timeline (subject to the tracer's sampling rate). Pass a clone and
    /// keep the original: clones share one record book, so the caller can
    /// read the finished spans after [`run`](Self::run).
    pub fn set_span_tracer(&mut self, spans: SpanTracer) {
        self.spans = spans;
    }

    /// The attached span tracer (disabled unless
    /// [`set_span_tracer`](Self::set_span_tracer) was called).
    pub fn span_tracer(&self) -> &SpanTracer {
        &self.spans
    }

    /// Enables interval sampling: key counters are snapshotted every
    /// `period` cycles into [`interval_records`](Self::interval_records)
    /// (and, when tracing is on, emitted as [`SimEvent::Interval`]).
    ///
    /// # Panics
    ///
    /// Panics if `period` is 0.
    pub fn enable_interval_sampling(&mut self, period: Cycle) {
        self.sampler = Some(IntervalSampler::new(period));
    }

    /// The interval time series recorded so far (empty when sampling is
    /// disabled).
    pub fn interval_records(&self) -> &[IntervalRecord] {
        self.sampler.as_ref().map_or(&[], |s| s.records())
    }

    /// Attaches a host-side wall-clock profiler. The event loop switches
    /// to its instrumented path and the gauges are sampled on the
    /// interval-sampler cadence (pass a clone and keep the original to
    /// read the [`HostProfiler::report`] after the run, mirroring
    /// [`set_span_tracer`](Self::set_span_tracer)).
    pub fn set_host_profiler(&mut self, host: HostProfiler) {
        self.host = host;
    }

    /// The attached host profiler (disabled unless
    /// [`set_host_profiler`](Self::set_host_profiler) was called).
    pub fn host_profiler(&self) -> &HostProfiler {
        &self.host
    }

    /// Attaches a live telemetry stream; every frame this system sends
    /// is tagged with `cell` so one stream can multiplex a whole grid.
    pub fn set_stream(&mut self, stream: TelemetryStream, cell: u64) {
        self.stream = stream;
        self.stream_cell = cell;
    }

    /// Enables the `--progress` stderr heartbeat.
    pub fn set_progress(&mut self, meter: ProgressMeter) {
        self.progress = Some(meter);
    }

    /// Enables the decision-quality audit: every WBHT verdict and snarf
    /// placement registers a pending outcome record that the later
    /// pipeline stages resolve (see the `system::audit` module). Off by
    /// default — disabled runs stay byte-identical.
    pub fn enable_decision_audit(&mut self) {
        self.audit = Some(Box::new(DecisionAudit::new(&self.cfg)));
    }

    /// The attached decision audit, when enabled.
    pub fn decision_audit(&self) -> Option<&DecisionAudit> {
        self.audit.as_deref()
    }

    /// The audit's resolved aggregates (valid after [`run`](Self::run)),
    /// or `None` when auditing is off.
    pub fn decision_audit_summary(&self) -> Option<DecisionAuditSummary> {
        self.audit.as_ref().map(|a| a.summary())
    }

    /// Closes passed sampler window(s) at `now` (`finish` also closes
    /// the trailing partial window), mirrors each new record into the
    /// event trace and the live stream, and takes a host-profiler
    /// sample on the same cadence.
    pub(super) fn close_intervals(&mut self, now: Cycle, finish: bool) {
        let snapshot = self.counter_snapshot();
        let Some(sampler) = &mut self.sampler else {
            return;
        };
        let already = sampler.records().len();
        if finish {
            sampler.finish(now, &snapshot);
        } else {
            sampler.sample(now, &snapshot);
        }
        let mut closed_any = false;
        for rec in &sampler.records()[already..] {
            closed_any = true;
            self.telemetry.emit(rec.end, || SimEvent::Interval {
                start: rec.start,
                end: rec.end,
                counters: rec.counters.clone(),
            });
            self.stream.send_interval(self.stream_cell, rec);
        }
        if closed_any {
            let frame = self.audit.as_mut().map(|a| a.note_interval(now));
            if let Some(f) = frame {
                self.stream.send_decision(self.stream_cell, &f);
            }
            self.host_tick(now);
        }
    }

    /// Takes one host-profiler sample (gauges + cumulative attribution)
    /// and pushes it onto the live stream. No-op when profiling is off.
    pub(super) fn host_tick(&mut self, now: Cycle) {
        if !self.host.is_enabled() {
            return;
        }
        let gauges = self.host_gauges(now);
        if let Some(sample) = self.host.sample(gauges) {
            self.stream.send_host_sample(self.stream_cell, &sample);
        }
    }

    /// Snapshot of the simulator-side occupancy gauges the host
    /// profiler records alongside its wall-time attribution.
    fn host_gauges(&self, now: Cycle) -> HostGauges {
        let mut mshr_used = 0u64;
        let mut mshr_cap = 0u64;
        let mut wbq_depth = 0u64;
        for l2 in &self.l2s {
            mshr_used += l2.mshrs.len() as u64;
            mshr_cap += l2.mshrs.capacity() as u64;
            wbq_depth += l2.wbq.len() as u64;
        }
        HostGauges {
            cycles: now,
            events: self.queue.popped(),
            eq_len: self.queue.len() as u64,
            eq_ring_len: self.queue.ring_len() as u64,
            eq_overflow_len: self.queue.overflow_len() as u64,
            mshr_used,
            mshr_cap,
            wbq_depth,
        }
    }

    /// Streams the run-start frame (no-op when streaming is off).
    pub(super) fn stream_run_start(&mut self, refs_per_thread: u64) {
        if self.stream.is_enabled() {
            self.stream.send_run_start(
                self.stream_cell,
                self.workload.name(),
                self.cfg.policy.label(),
                refs_per_thread,
            );
        }
    }

    /// End-of-run host observation: guarantees at least one host sample
    /// per profiled run (short runs may never cross an interval
    /// boundary) and streams the run-end frame.
    pub(super) fn finish_host_observation(&mut self) {
        if self.host.is_enabled() && self.host.samples().is_empty() {
            self.host_tick(self.stats.cycles);
        }
        if self.stream.is_enabled() {
            self.stream
                .send_run_end(self.stream_cell, self.stats.cycles, self.queue.popped());
        }
    }

    /// Emits the `--progress` heartbeat when its period has elapsed
    /// (polled from the event loop on an event-count stride).
    pub(super) fn progress_beat(&mut self) {
        let (mut done, mut total) = (0u64, 0u64);
        for t in &self.threads {
            done += t.issued;
            total += t.limit;
        }
        let cycles = self.queue.now();
        if let Some(meter) = &mut self.progress {
            meter.maybe_beat(cycles, done, total);
        }
    }

    /// The cumulative counters the interval sampler tracks.
    fn counter_snapshot(&self) -> Vec<(&'static str, u64)> {
        let s = &self.stats;
        vec![
            ("refs", s.refs),
            ("l2_misses", s.l2.iter().map(|l| l.misses).sum()),
            ("fills_from_l2", s.fills_from_l2),
            ("fills_from_l3", s.fills_from_l3),
            ("fills_from_memory", s.fills_from_memory),
            ("wb_dirty", s.wb.dirty_requests),
            ("wb_clean", s.wb.clean_requests),
            ("wb_clean_aborted", s.wb.clean_aborted),
            ("wb_squashed_l3", s.wb.clean_squashed_l3),
            ("wb_snarfed", s.wb.snarfed),
            ("retries_total", s.retries_total),
            ("retries_l3", s.retries_l3),
            ("upgrades", s.upgrades),
        ]
    }

    /// Statistics accumulated so far (valid after [`run`](Self::run)).
    pub fn stats(&self) -> &SystemStats {
        &self.stats
    }

    /// Total events dispatched so far (the event queue's lifetime pop
    /// count). Benchmarks divide this by wall time for events/sec; it is
    /// deliberately not part of [`SystemStats`] so the serialized
    /// statistics stay byte-identical across engine changes.
    pub fn events_processed(&self) -> u64 {
        self.queue.popped()
    }

    /// The L3 model (for oracle peeks and statistics). In the private
    /// organization this is the (unused) shared instance; use
    /// [`l3_stats`](Self::l3_stats) for aggregate numbers.
    pub fn l3(&self) -> &L3Cache {
        &self.l3
    }

    /// Aggregate L3 statistics across the shared instance or all
    /// private L3s, whichever the organization uses.
    pub fn l3_stats(&self) -> cmpsim_mem::L3Stats {
        match self.cfg.l3_organization {
            L3Organization::SharedVictim => self.l3.stats(),
            L3Organization::PrivatePerL2 => {
                let mut acc = cmpsim_mem::L3Stats::default();
                for l3 in &self.private_l3s {
                    let s = l3.stats();
                    acc.read_hits += s.read_hits;
                    acc.read_misses += s.read_misses;
                    acc.reads_served += s.reads_served;
                    acc.castouts_accepted += s.castouts_accepted;
                    acc.castouts_squashed += s.castouts_squashed;
                    acc.retries_issued += s.retries_issued;
                    acc.invalidations += s.invalidations;
                    acc.dirty_victims_to_memory += s.dirty_victims_to_memory;
                    acc.read_queue_high_water =
                        acc.read_queue_high_water.max(s.read_queue_high_water);
                    acc.data_queue_high_water =
                        acc.data_queue_high_water.max(s.data_queue_high_water);
                }
                acc
            }
        }
    }

    /// Coherence state of `line` in L2 `l2`, if resident (inspection
    /// API for tests and tools).
    pub fn l2_state(&self, l2: usize, line: LineAddr) -> Option<L2State> {
        self.l2s.get(l2).and_then(|u| u.state_of(line))
    }

    /// Is `line` currently parked in L2 `l2`'s write-back queue?
    pub fn l2_wbq_contains(&self, l2: usize, line: LineAddr) -> bool {
        self.l2s.get(l2).is_some_and(|u| u.wbq.contains(line))
    }

    /// The memory controller statistics.
    pub fn memory(&self) -> &MemoryController {
        &self.mem
    }

    /// Ring utilization statistics.
    pub fn ring_stats(&self) -> cmpsim_ring::RingStats {
        self.ring.stats()
    }

    /// Merged WBHT statistics across all L2s (empty stats when the
    /// policy has no WBHT).
    pub fn wbht_stats(&self) -> crate::policy::WbhtStats {
        self.policy.wbht_stats()
    }

    /// Snarf-table statistics (when the policy snarfs).
    pub fn snarf_table_stats(&self) -> Option<crate::policy::SnarfStats> {
        self.policy.snarf_stats()
    }

    /// Merged reuse-distance copy-back statistics (when stacked).
    pub fn rdcb_stats(&self) -> Option<crate::policy::RdcbStats> {
        self.policy.rdcb_stats()
    }

    /// Hybrid update/invalidate statistics (when stacked).
    pub fn hybrid_stats(&self) -> Option<crate::policy::HybridStats> {
        self.policy.hybrid_stats()
    }

    pub(super) fn finalize_stats(&mut self) {
        self.stats.cycles = self
            .threads
            .iter()
            .map(|t| t.completed_at.unwrap_or(t.next_time))
            .max()
            .unwrap_or(0);
        self.stats.mshr_high_water = self
            .l2s
            .iter()
            .map(|l2| l2.mshrs.high_water() as u64)
            .max()
            .unwrap_or(0)
            .max(self.stats.mshr_high_water);
        self.stats.wbq_high_water = self
            .l2s
            .iter()
            .map(|l2| l2.wbq.high_water() as u64)
            .max()
            .unwrap_or(0)
            .max(self.stats.wbq_high_water);
        self.stats.event_queue_high_water = self
            .stats
            .event_queue_high_water
            .max(self.queue.high_water() as u64);
        // Snarfed lines still resident and unused count as unused. The
        // audit resolves every still-resident placement from the same
        // flags (useful if ever touched, wasted otherwise).
        let mut still_unused = 0;
        for (idx, l2) in self.l2s.iter().enumerate() {
            for (&raw, f) in &l2.snarfed_lines {
                let used = f.used_locally || f.used_for_intervention;
                if !used {
                    still_unused += 1;
                }
                if let Some(a) = &mut self.audit {
                    a.resolve_snarf(idx, raw, used);
                }
            }
        }
        self.stats.snarf.evicted_unused += still_unused;
        if self.audit.is_some() {
            let (engaged, windows) = self.policy.retry_window_counts();
            let now = self.stats.cycles;
            if let Some(a) = &mut self.audit {
                a.finalize(engaged, windows);
                // One terminal frame with every outcome resolved, so the
                // stream and the Chrome counter track carry the final
                // verdict even when no interval window ever closed.
                let frame = a.note_interval(now);
                self.stream.send_decision(self.stream_cell, &frame);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use cmpsim_cache::LineAddr;

    use crate::config::{L3Organization, SystemConfig};
    use crate::policy::{PolicyConfig, SnarfConfig};
    use crate::system::testutil::system;
    use crate::system::System;

    #[test]
    fn private_l3_partitions_are_separate() {
        let mut cfg = SystemConfig::scaled(16);
        cfg.l3_organization = L3Organization::PrivatePerL2;
        let mut sys = System::with_source(
            cfg,
            Box::new(cmpsim_trace::TracePlayback::new("idle", vec![], 16, 1)),
        )
        .unwrap();
        assert_eq!(sys.private_l3s.len(), 4);
        let line = LineAddr::new(8);
        sys.l3_for(0).accept_castout(0, line, false);
        assert!(sys.private_l3s[0].peek(line));
        assert!(!sys.private_l3s[1].peek(line));
        let agg = sys.l3_stats();
        assert_eq!(agg.castouts_accepted, 1);
    }

    #[test]
    fn snarf_policy_builds_table_and_buffers() {
        let sys = system(PolicyConfig::snarf(SnarfConfig {
            entries: 256,
            ..Default::default()
        }));
        assert!(sys.policy.caps().snarfs_castouts);
        assert!(sys.snarf_table_stats().is_some());
    }
}
