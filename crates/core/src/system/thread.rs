//! Per-thread issue state.

use cmpsim_engine::Cycle;
use cmpsim_trace::TraceRecord;

/// Why a thread is not currently issuing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Park {
    /// Running (a `ThreadStep` event is scheduled or executing).
    Running,
    /// At the outstanding-miss limit; wakes when one of its misses
    /// completes.
    Outstanding,
    /// Blocked on MSHR exhaustion at its L2; wakes when an MSHR frees.
    MshrFull,
    /// Finished its reference stream.
    Done,
}

/// Issue state of one hardware thread.
///
/// Threads issue one reference per cycle while below their
/// outstanding-miss limit — the paper's memory-pressure model: "One
/// parameter we vary is the maximum number of outstanding read and write
/// misses per thread that can be simultaneously present in the system"
/// (§4.1).
#[derive(Debug, Clone)]
pub struct ThreadCtx {
    /// The thread's local clock: when its next reference issues.
    pub next_time: Cycle,
    /// References issued so far.
    pub issued: u64,
    /// Reference budget for the run.
    pub limit: u64,
    /// Misses (and upgrades) currently in flight.
    pub outstanding: u32,
    /// Scheduling state.
    pub park: Park,
    /// A reference fetched but not yet processed (kept across MSHR-full
    /// parking so it is not lost).
    pub pending: Option<TraceRecord>,
    /// Cycle at which the thread finished (stream consumed and
    /// outstanding drained).
    pub completed_at: Option<Cycle>,
}

impl ThreadCtx {
    /// Creates a thread with a reference budget.
    pub fn new(limit: u64) -> Self {
        ThreadCtx {
            next_time: 0,
            issued: 0,
            limit,
            outstanding: 0,
            park: Park::Running,
            pending: None,
            completed_at: None,
        }
    }

    /// Has the thread consumed its reference budget?
    pub fn stream_done(&self) -> bool {
        self.issued >= self.limit && self.pending.is_none()
    }

    /// Is the thread fully finished (stream consumed, misses drained)?
    pub fn finished(&self) -> bool {
        self.stream_done() && self.outstanding == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle() {
        let mut t = ThreadCtx::new(2);
        assert!(!t.stream_done());
        t.issued = 2;
        assert!(t.stream_done());
        t.outstanding = 1;
        assert!(!t.finished());
        t.outstanding = 0;
        assert!(t.finished());
    }

    #[test]
    fn pending_blocks_stream_done() {
        let mut t = ThreadCtx::new(1);
        t.issued = 1;
        assert!(t.stream_done());
        t.pending = Some(TraceRecord::new(
            cmpsim_trace::ThreadId::new(0),
            cmpsim_trace::MemOp::Load,
            cmpsim_cache::Addr::new(0),
        ));
        assert!(!t.stream_done());
    }
}
