//! One L2 cache: sliced tag arrays, MSHRs, write-back queue, snoop port.

use cmpsim_cache::{
    InsertPosition, LineAddr, MshrFile, ReplacementPolicy, SlicedGeometry, TagArray, WayIdx,
    WriteBackQueue,
};
use cmpsim_coherence::{L2Id, L2State};
use cmpsim_engine::hash::{FxHashMap, FxHashSet};
use cmpsim_engine::telemetry::{SimEvent, Telemetry};
use cmpsim_engine::{Cycle, FifoServer, SlotPool};
use cmpsim_trace::ThreadId;

use crate::config::SystemConfig;

/// Reuse bookkeeping for a snarfed line (Table 5 statistics).
#[derive(Debug, Clone, Copy, Default)]
pub struct SnarfFlags {
    /// Hit by a thread of the snarfing L2.
    pub used_locally: bool,
    /// Sourced an intervention to another L2.
    pub used_for_intervention: bool,
}

/// One L2 cache of the CMP (shared by a core pair, four slices).
#[derive(Debug)]
pub struct L2Unit {
    /// This cache's id.
    pub id: L2Id,
    geometry: SlicedGeometry,
    slices: Vec<TagArray<L2State>>,
    /// Miss-status registers (waiters are thread ids).
    pub mshrs: MshrFile<ThreadId>,
    /// The bounded castout queue.
    pub wbq: WriteBackQueue,
    /// Snoop tag-port contention.
    pub snoop_srv: FifoServer,
    /// Data-array port for sourcing interventions.
    pub array_srv: FifoServer,
    /// Snarf line-fill buffers ("we conservatively decline the cache
    /// line" when these are busy, §3).
    pub snarf_buffers: SlotPool,
    /// Castouts currently arbitrating on the bus; they stay in `wbq`
    /// until resolution so they remain snoopable.
    pub castouts_inflight: FxHashSet<LineAddr>,
    /// Whether a drain event chain is active.
    pub draining: bool,
    /// Threads parked on MSHR exhaustion.
    pub waiting_threads: Vec<ThreadId>,
    /// Reuse flags for lines snarfed into this cache.
    pub snarfed_lines: FxHashMap<u64, SnarfFlags>,
    telemetry: Telemetry,
}

impl L2Unit {
    /// Builds an L2 from the system configuration.
    ///
    /// # Panics
    ///
    /// Panics on invalid geometry (configs are validated beforehand).
    pub fn new(id: L2Id, cfg: &SystemConfig) -> Self {
        let geometry = SlicedGeometry::new(
            cfg.l2_slices,
            cfg.l2_slice_bytes,
            cfg.l2_assoc,
            cfg.line_bytes,
        )
        .expect("validated L2 geometry");
        let slices = (0..cfg.l2_slices)
            .map(|_| TagArray::new(geometry.per_slice(), ReplacementPolicy::Lru))
            .collect();
        L2Unit {
            id,
            geometry,
            slices,
            mshrs: MshrFile::new(cfg.l2_mshrs),
            wbq: WriteBackQueue::new(cfg.wbq_len),
            snoop_srv: FifoServer::new(cfg.l2_snoop_cycles),
            array_srv: FifoServer::new(cfg.l2_array_cycles),
            snarf_buffers: SlotPool::new(cfg.snarf_buffers.max(1)),
            castouts_inflight: FxHashSet::default(),
            draining: false,
            waiting_threads: Vec::new(),
            snarfed_lines: FxHashMap::default(),
            telemetry: Telemetry::disabled(),
        }
    }

    /// Attaches an event-trace handle.
    pub fn attach_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    #[inline]
    fn slice_and_local(&self, line: LineAddr) -> (usize, LineAddr) {
        (
            self.geometry.slice_of(line) as usize,
            self.geometry.slice_local(line),
        )
    }

    /// Coherence state of `line` if resident.
    #[inline]
    pub fn state_of(&self, line: LineAddr) -> Option<L2State> {
        let (s, local) = self.slice_and_local(line);
        self.slices[s].probe(local).map(|(_, st)| st)
    }

    /// Refreshes recency of a resident line. Returns `false` if absent.
    #[inline]
    pub fn touch(&mut self, line: LineAddr) -> bool {
        let (s, local) = self.slice_and_local(line);
        self.slices[s].touch(local)
    }

    /// Rewrites the state of a resident line. Returns `false` if absent.
    pub fn set_state(&mut self, line: LineAddr, st: L2State) -> bool {
        let (s, local) = self.slice_and_local(line);
        self.slices[s].set_state(local, st)
    }

    /// Removes a line, returning its state.
    pub fn invalidate(&mut self, line: LineAddr) -> Option<L2State> {
        let (s, local) = self.slice_and_local(line);
        self.slices[s].invalidate(local)
    }

    /// Inserts a line, evicting by LRU when the set is full. Returns the
    /// evicted victim (with its *global* line address), if any.
    pub fn fill(
        &mut self,
        line: LineAddr,
        st: L2State,
        pos: InsertPosition,
    ) -> Option<(LineAddr, L2State)> {
        let (s, local) = self.slice_and_local(line);
        let slice_bits = self.geometry.slices().trailing_zeros();
        self.slices[s].insert(local, st, pos).map(|ev| {
            let global = (ev.line.raw() << slice_bits) | s as u64;
            (LineAddr::new(global), ev.state)
        })
    }

    /// Inserts a line using cost-aware victim selection (§7 extension):
    /// among the `window` least-recently-used ways, prefer a clean line
    /// the policy's history covers (known to be in the L3 — cheap to
    /// lose). `knows` is the line-knowledge source (the policy stack's
    /// history query); callers without one use plain [`fill`](Self::fill).
    pub fn fill_history_aware(
        &mut self,
        line: LineAddr,
        st: L2State,
        pos: InsertPosition,
        window: usize,
        knows: impl Fn(LineAddr) -> bool,
    ) -> Option<(LineAddr, L2State)> {
        let (s, local) = self.slice_and_local(line);
        let slice_bits = self.geometry.slices().trailing_zeros();
        if self.slices[s].invalid_way(local).is_none() {
            let cands = self.slices[s].victim_candidates(local, window);
            let pick = cands.iter().find(|(way, vlocal)| {
                let global = LineAddr::new((vlocal.raw() << slice_bits) | s as u64);
                let clean = self.slices[s]
                    .line_at(*way)
                    .map(|(_, st)| !st.is_dirty())
                    .unwrap_or(false);
                clean && knows(global)
            });
            if let Some(&(way, _)) = pick {
                return self.slices[s].insert_into(local, way, st, pos).map(|ev| {
                    let global = (ev.line.raw() << slice_bits) | s as u64;
                    (LineAddr::new(global), ev.state)
                });
            }
        }
        self.fill(line, st, pos)
    }

    /// Does the set `line` maps to have a free (invalid) way?
    pub fn has_invalid_way(&self, line: LineAddr) -> bool {
        let (s, local) = self.slice_and_local(line);
        self.slices[s].invalid_way(local).is_some()
    }

    /// Snarf victim selection per §3: an invalid way if one exists,
    /// otherwise the LRU way in a shared state (`S` or `SL`; never `E`,
    /// `M`, or `T` — "a line in the Exclusive state is guaranteed to be
    /// the only valid copy on-chip", and replacing Modified lines "would
    /// force another write back"). Our protocol hands most clean fills
    /// the `SL` flavour of shared, so both shared states qualify; a
    /// dropped `S`/`SL` victim is recoverable from the L3 or memory.
    pub fn snarf_victim(&self, line: LineAddr) -> Option<WayIdx> {
        let (s, local) = self.slice_and_local(line);
        self.slices[s].invalid_way(local).or_else(|| {
            self.slices[s].victim_way_by(local, |&st| {
                matches!(st, L2State::Shared | L2State::SharedLast)
            })
        })
    }

    /// Inserts a snarfed line into a specific way (chosen by
    /// [`snarf_victim`](Self::snarf_victim)). Returns the displaced
    /// victim with its global line address.
    pub fn snarf_insert(
        &mut self,
        line: LineAddr,
        way: WayIdx,
        st: L2State,
        pos: InsertPosition,
    ) -> Option<(LineAddr, L2State)> {
        let (s, local) = self.slice_and_local(line);
        let slice_bits = self.geometry.slices().trailing_zeros();
        self.slices[s].insert_into(local, way, st, pos).map(|ev| {
            let global = (ev.line.raw() << slice_bits) | s as u64;
            (LineAddr::new(global), ev.state)
        })
    }

    /// Can the snarf buffers take `line` at `now` (held until
    /// `now + hold`)? Acquires on success; a decline (all buffers busy —
    /// "we conservatively decline the cache line", §3) is traced.
    pub fn try_reserve_snarf_buffer(&mut self, now: Cycle, line: LineAddr, hold: Cycle) -> bool {
        let ok = self.snarf_buffers.try_acquire(now, now + hold);
        if !ok {
            let id = self.id.index() as u32;
            self.telemetry.emit(now, || SimEvent::SnarfBufferDeclined {
                l2: id,
                line: line.raw(),
            });
        }
        ok
    }

    /// Total valid lines.
    pub fn valid_lines(&self) -> u64 {
        self.slices.iter().map(|s| s.valid_lines()).sum()
    }

    /// All resident lines with global addresses (invariant checking and
    /// debug dumps; not on any hot path).
    pub fn resident_lines(&self) -> Vec<LineAddr> {
        let slice_bits = self.geometry.slices().trailing_zeros();
        let mut out = Vec::new();
        for (s, arr) in self.slices.iter().enumerate() {
            for (local, _) in arr.iter_valid() {
                out.push(LineAddr::new((local.raw() << slice_bits) | s as u64));
            }
        }
        out
    }

    /// Clears snarf bookkeeping for an evicted/invalidated line,
    /// returning its flags if it was a snarfed line.
    pub fn retire_snarf_flags(&mut self, line: LineAddr) -> Option<SnarfFlags> {
        self.snarfed_lines.remove(&line.raw())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit() -> L2Unit {
        let cfg = SystemConfig::scaled(16);
        L2Unit::new(L2Id::new(0), &cfg)
    }

    #[test]
    fn fill_probe_invalidate() {
        let mut u = unit();
        let line = LineAddr::new(100);
        assert_eq!(u.state_of(line), None);
        assert!(u
            .fill(line, L2State::Exclusive, InsertPosition::Mru)
            .is_none());
        assert_eq!(u.state_of(line), Some(L2State::Exclusive));
        assert!(u.set_state(line, L2State::Modified));
        assert_eq!(u.invalidate(line), Some(L2State::Modified));
        assert_eq!(u.state_of(line), None);
    }

    #[test]
    fn eviction_returns_global_address() {
        let mut u = unit();
        // Fill one set to capacity: same slice (line % 4), same set.
        let cfg = SystemConfig::scaled(16);
        let sets = cfg.l2_slice_bytes / cfg.line_bytes / cfg.l2_assoc;
        let stride = 4 * sets; // same slice, same set
        let mut evicted = None;
        for i in 0..=cfg.l2_assoc {
            evicted = u.fill(
                LineAddr::new(8 + i * stride),
                L2State::Shared,
                InsertPosition::Mru,
            );
        }
        let (victim, st) = evicted.expect("set overflow must evict");
        assert_eq!(victim, LineAddr::new(8)); // LRU = first inserted
        assert_eq!(st, L2State::Shared);
    }

    #[test]
    fn snarf_victim_prefers_invalid_then_shared() {
        let mut u = unit();
        let line = LineAddr::new(4);
        // Empty set: invalid way available.
        assert!(u.snarf_victim(line).is_some());
        // Fill the set with non-Shared lines: no victim.
        let cfg = SystemConfig::scaled(16);
        let sets = cfg.l2_slice_bytes / cfg.line_bytes / cfg.l2_assoc;
        let stride = 4 * sets;
        for i in 0..cfg.l2_assoc {
            u.fill(
                LineAddr::new(4 + i * stride),
                L2State::Exclusive,
                InsertPosition::Mru,
            );
        }
        assert!(u.snarf_victim(line).is_none());
        // Turn one into Shared: it becomes the victim.
        assert!(u.set_state(LineAddr::new(4 + stride), L2State::Shared));
        let way = u.snarf_victim(LineAddr::new(4)).unwrap();
        let ev = u
            .snarf_insert(
                LineAddr::new(4 + 8 * stride),
                way,
                L2State::SharedLast,
                InsertPosition::Mru,
            )
            .unwrap();
        assert_eq!(ev.0, LineAddr::new(4 + stride));
        assert_eq!(ev.1, L2State::Shared);
    }

    #[test]
    fn snarf_buffers_decline_when_busy() {
        let (tel, sink) = Telemetry::with_vec_sink();
        let mut u = unit();
        u.attach_telemetry(tel);
        let line = LineAddr::new(4);
        let cap = SystemConfig::scaled(16).snarf_buffers;
        for _ in 0..cap {
            assert!(u.try_reserve_snarf_buffer(0, line, 100));
        }
        assert!(!u.try_reserve_snarf_buffer(10, line, 100));
        assert!(u.try_reserve_snarf_buffer(150, line, 100));
        // Only the decline is traced.
        let sink = sink.lock().unwrap();
        assert_eq!(sink.events().len(), 1);
        assert_eq!(sink.events()[0].1.kind(), "snarf_buffer_declined");
    }

    #[test]
    fn history_aware_fill_prefers_known_clean_victims() {
        let mut u = unit();
        let cfg = SystemConfig::scaled(16);
        let sets = cfg.l2_slice_bytes / cfg.line_bytes / cfg.l2_assoc;
        let stride = 4 * sets; // same slice, same set
        for i in 0..cfg.l2_assoc {
            u.fill(
                LineAddr::new(8 + i * stride),
                L2State::Shared,
                InsertPosition::Mru,
            );
        }
        // LRU is line 8, but the history knows only the second-oldest:
        // the history-aware fill victimizes the known line instead.
        let known = LineAddr::new(8 + stride);
        let ev = u
            .fill_history_aware(
                LineAddr::new(8 + 100 * stride),
                L2State::Shared,
                InsertPosition::Mru,
                4,
                |line| line == known,
            )
            .expect("full set must evict");
        assert_eq!(ev.0, known);
        // With no knowledge, plain LRU applies.
        let ev = u
            .fill_history_aware(
                LineAddr::new(8 + 101 * stride),
                L2State::Shared,
                InsertPosition::Mru,
                4,
                |_| false,
            )
            .expect("full set must evict");
        assert_eq!(ev.0, LineAddr::new(8));
    }

    #[test]
    fn snarf_flag_bookkeeping() {
        let mut u = unit();
        u.snarfed_lines.insert(
            42,
            SnarfFlags {
                used_locally: true,
                used_for_intervention: false,
            },
        );
        let f = u.retire_snarf_flags(LineAddr::new(42)).unwrap();
        assert!(f.used_locally);
        assert!(u.retire_snarf_flags(LineAddr::new(42)).is_none());
    }
}
