//! Private per-core L1 filter caches.

use cmpsim_cache::{CacheGeometry, InsertPosition, LineAddr, ReplacementPolicy, TagArray};

use crate::config::L1Config;

/// A private L1 data cache.
///
/// Modelled as a write-through, no-write-allocate filter in front of the
/// L2 (the POWER-style organization the paper's CMP uses): loads that hit
/// here never reach the L2, stores always do. The L1 holds no coherence
/// state of its own — the L2 is the point of coherence and back-
/// invalidates L1 copies whenever it loses a line.
#[derive(Debug, Clone)]
pub struct L1Cache {
    tags: TagArray<()>,
    hits: u64,
    misses: u64,
}

impl L1Cache {
    /// Creates an L1.
    ///
    /// # Panics
    ///
    /// Panics if the configuration does not form a valid geometry (the
    /// system validates configs before construction).
    pub fn new(cfg: L1Config, line_bytes: u64) -> Self {
        let geom = CacheGeometry::new(cfg.size_bytes, cfg.assoc, line_bytes)
            .expect("validated L1 geometry");
        L1Cache {
            tags: TagArray::new(geom, ReplacementPolicy::Lru),
            hits: 0,
            misses: 0,
        }
    }

    /// Load lookup; returns `true` on hit (and refreshes recency).
    pub fn load(&mut self, line: LineAddr) -> bool {
        if self.tags.touch(line) {
            self.hits += 1;
            true
        } else {
            self.misses += 1;
            false
        }
    }

    /// Fills a line after an L2 hit or miss completion. The evicted L1
    /// victim needs no write-back (write-through).
    pub fn fill(&mut self, line: LineAddr) {
        if self.tags.probe(line).is_none() {
            self.tags.insert(line, (), InsertPosition::Mru);
        }
    }

    /// Back-invalidation from the L2.
    pub fn invalidate(&mut self, line: LineAddr) {
        self.tags.invalidate(line);
    }

    /// (hits, misses).
    pub fn counts(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l1() -> L1Cache {
        L1Cache::new(
            L1Config {
                size_bytes: 4096,
                assoc: 2,
            },
            128,
        )
    }

    #[test]
    fn miss_fill_hit() {
        let mut c = l1();
        let line = LineAddr::new(10);
        assert!(!c.load(line));
        c.fill(line);
        assert!(c.load(line));
        assert_eq!(c.counts(), (1, 1));
    }

    #[test]
    fn invalidate_removes() {
        let mut c = l1();
        c.fill(LineAddr::new(3));
        c.invalidate(LineAddr::new(3));
        assert!(!c.load(LineAddr::new(3)));
    }

    #[test]
    fn refill_is_idempotent() {
        let mut c = l1();
        c.fill(LineAddr::new(3));
        c.fill(LineAddr::new(3));
        assert!(c.load(LineAddr::new(3)));
    }

    #[test]
    fn capacity_evictions_silent() {
        let mut c = l1();
        // 4096/128 = 32 lines, 2-way, 16 sets: lines 0,16,32 collide.
        c.fill(LineAddr::new(0));
        c.fill(LineAddr::new(16));
        c.fill(LineAddr::new(32));
        assert!(!c.load(LineAddr::new(0)));
        assert!(c.load(LineAddr::new(32)));
    }
}
