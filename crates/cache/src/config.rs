//! Cache geometry math and validation.

use std::error::Error;
use std::fmt;

use crate::LineAddr;

/// Errors from invalid cache geometry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GeometryError {
    /// A parameter that must be a power of two is not.
    NotPowerOfTwo(&'static str, u64),
    /// A parameter is zero.
    Zero(&'static str),
    /// Capacity is not divisible into `assoc`-way sets.
    Indivisible {
        /// Total number of lines.
        lines: u64,
        /// Requested associativity.
        assoc: u64,
    },
    /// The packed tag word cannot hold this geometry's tag bits: with
    /// `state_bits` of state, only `63 - state_bits` tag bits remain,
    /// but a `num_sets`-set geometry needs
    /// `PACKED_LINE_ADDR_BITS - log2(num_sets)` of them (see
    /// [`packed_fits`](crate::packed_fits)).
    PackedTagOverflow {
        /// State bits the line payload type declares.
        state_bits: u32,
        /// Number of sets (fewer sets leave more tag bits to store).
        num_sets: u64,
    },
}

impl fmt::Display for GeometryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GeometryError::NotPowerOfTwo(what, v) => {
                write!(f, "{what} must be a power of two, got {v}")
            }
            GeometryError::Zero(what) => write!(f, "{what} must be nonzero"),
            GeometryError::Indivisible { lines, assoc } => {
                write!(f, "{lines} lines not divisible into {assoc}-way sets")
            }
            GeometryError::PackedTagOverflow {
                state_bits,
                num_sets,
            } => {
                write!(
                    f,
                    "packed tag word overflow: {state_bits} state bits leave too few \
                     tag bits for a {num_sets}-set geometry (need \
                     {} - log2({num_sets}), have {})",
                    crate::PACKED_LINE_ADDR_BITS,
                    63u32.saturating_sub(*state_bits)
                )
            }
        }
    }
}

impl Error for GeometryError {}

/// Geometry of one set-associative cache (or cache slice).
///
/// # Example
///
/// ```
/// use cmpsim_cache::CacheGeometry;
///
/// let g = CacheGeometry::new(512 * 1024, 8, 128)?; // one L2 slice
/// assert_eq!(g.num_sets(), 512);
/// assert_eq!(g.num_lines(), 4096);
/// # Ok::<(), cmpsim_cache::GeometryError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheGeometry {
    size_bytes: u64,
    assoc: u64,
    line_bytes: u64,
    num_sets: u64,
}

impl CacheGeometry {
    /// Creates a geometry from total size, associativity and line size.
    ///
    /// # Errors
    ///
    /// Returns [`GeometryError`] when a parameter is zero, size or line
    /// size is not a power of two, or the line count is not divisible
    /// into `assoc`-way sets with a power-of-two set count.
    pub fn new(size_bytes: u64, assoc: u64, line_bytes: u64) -> Result<Self, GeometryError> {
        if size_bytes == 0 {
            return Err(GeometryError::Zero("size_bytes"));
        }
        if assoc == 0 {
            return Err(GeometryError::Zero("assoc"));
        }
        if line_bytes == 0 {
            return Err(GeometryError::Zero("line_bytes"));
        }
        if !size_bytes.is_power_of_two() {
            return Err(GeometryError::NotPowerOfTwo("size_bytes", size_bytes));
        }
        if !line_bytes.is_power_of_two() {
            return Err(GeometryError::NotPowerOfTwo("line_bytes", line_bytes));
        }
        let lines = size_bytes / line_bytes;
        if lines == 0 || !lines.is_multiple_of(assoc) {
            return Err(GeometryError::Indivisible { lines, assoc });
        }
        let num_sets = lines / assoc;
        if !num_sets.is_power_of_two() {
            return Err(GeometryError::NotPowerOfTwo("num_sets", num_sets));
        }
        Ok(CacheGeometry {
            size_bytes,
            assoc,
            line_bytes,
            num_sets,
        })
    }

    /// Creates a geometry directly from a line *count* and associativity
    /// (used by history tables, which store tags only).
    ///
    /// # Errors
    ///
    /// Same validation as [`CacheGeometry::new`].
    pub fn from_entries(entries: u64, assoc: u64, line_bytes: u64) -> Result<Self, GeometryError> {
        if entries == 0 {
            return Err(GeometryError::Zero("entries"));
        }
        Self::new(entries * line_bytes, assoc, line_bytes)
    }

    /// Total capacity in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.size_bytes
    }

    /// Associativity (ways per set).
    pub fn assoc(&self) -> u64 {
        self.assoc
    }

    /// Line size in bytes.
    pub fn line_bytes(&self) -> u64 {
        self.line_bytes
    }

    /// Number of sets.
    pub fn num_sets(&self) -> u64 {
        self.num_sets
    }

    /// Total number of lines (sets × ways).
    pub fn num_lines(&self) -> u64 {
        self.num_sets * self.assoc
    }

    /// Set index for a line address.
    pub fn set_of(&self, line: LineAddr) -> u64 {
        line.raw() & (self.num_sets - 1)
    }
}

/// Geometry of a sliced cache: `slices` independent [`CacheGeometry`]s
/// with addresses statically interleaved across slices at line
/// granularity, as in the modelled CMP (each L2 and the L3 have 4 slices).
///
/// # Example
///
/// ```
/// use cmpsim_cache::{SlicedGeometry, LineAddr};
///
/// let g = SlicedGeometry::new(4, 512 * 1024, 8, 128)?;
/// assert_eq!(g.slice_of(LineAddr::new(6)), 2);
/// assert_eq!(g.total_bytes(), 2 * 1024 * 1024);
/// # Ok::<(), cmpsim_cache::GeometryError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SlicedGeometry {
    slices: u64,
    per_slice: CacheGeometry,
}

impl SlicedGeometry {
    /// Creates a sliced geometry: `slices` slices, each of
    /// `slice_bytes` / `assoc` / `line_bytes`.
    ///
    /// # Errors
    ///
    /// Returns [`GeometryError`] when the per-slice geometry is invalid or
    /// `slices` is not a nonzero power of two.
    pub fn new(
        slices: u64,
        slice_bytes: u64,
        assoc: u64,
        line_bytes: u64,
    ) -> Result<Self, GeometryError> {
        if slices == 0 {
            return Err(GeometryError::Zero("slices"));
        }
        if !slices.is_power_of_two() {
            return Err(GeometryError::NotPowerOfTwo("slices", slices));
        }
        Ok(SlicedGeometry {
            slices,
            per_slice: CacheGeometry::new(slice_bytes, assoc, line_bytes)?,
        })
    }

    /// Number of slices.
    pub fn slices(&self) -> u64 {
        self.slices
    }

    /// Geometry of one slice.
    pub fn per_slice(&self) -> CacheGeometry {
        self.per_slice
    }

    /// Total capacity across slices.
    pub fn total_bytes(&self) -> u64 {
        self.slices * self.per_slice.size_bytes()
    }

    /// Which slice a line maps to (low line-address bits).
    pub fn slice_of(&self, line: LineAddr) -> u64 {
        line.raw() & (self.slices - 1)
    }

    /// The line address as seen *within* its slice (slice bits stripped),
    /// used for set indexing inside the slice.
    pub fn slice_local(&self, line: LineAddr) -> LineAddr {
        LineAddr::new(line.raw() >> self.slices.trailing_zeros())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn l2_slice_geometry() {
        // Paper: L2 slice = 512 KB, 8-way, 128 B lines.
        let g = CacheGeometry::new(512 * 1024, 8, 128).unwrap();
        assert_eq!(g.num_lines(), 4096);
        assert_eq!(g.num_sets(), 512);
        assert_eq!(g.assoc(), 8);
    }

    #[test]
    fn l3_slice_geometry() {
        // Paper: L3 slice = 4 MB, 16-way, 128 B lines.
        let g = CacheGeometry::new(4 * 1024 * 1024, 16, 128).unwrap();
        assert_eq!(g.num_lines(), 32768);
        assert_eq!(g.num_sets(), 2048);
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(matches!(
            CacheGeometry::new(0, 8, 128),
            Err(GeometryError::Zero("size_bytes"))
        ));
        assert!(matches!(
            CacheGeometry::new(1024, 0, 128),
            Err(GeometryError::Zero("assoc"))
        ));
        assert!(matches!(
            CacheGeometry::new(1000, 8, 128),
            Err(GeometryError::NotPowerOfTwo("size_bytes", 1000))
        ));
        assert!(matches!(
            CacheGeometry::new(1024, 128, 128), // 8 lines, 128-way impossible
            Err(GeometryError::Indivisible { .. })
        ));
    }

    #[test]
    fn set_mapping_wraps() {
        let g = CacheGeometry::new(1024, 2, 128).unwrap(); // 8 lines, 4 sets
        assert_eq!(g.num_sets(), 4);
        assert_eq!(g.set_of(LineAddr::new(0)), 0);
        assert_eq!(g.set_of(LineAddr::new(5)), 1);
        assert_eq!(g.set_of(LineAddr::new(7)), 3);
    }

    #[test]
    fn slice_interleaving() {
        let g = SlicedGeometry::new(4, 1024, 2, 128).unwrap();
        for i in 0..16 {
            assert_eq!(g.slice_of(LineAddr::new(i)), i % 4);
        }
        assert_eq!(g.slice_local(LineAddr::new(13)).raw(), 3);
        assert_eq!(g.total_bytes(), 4096);
    }

    #[test]
    fn from_entries_history_table() {
        // Paper WBHT: 32K entries, 16-way.
        let g = CacheGeometry::from_entries(32 * 1024, 16, 128).unwrap();
        assert_eq!(g.num_lines(), 32 * 1024);
        assert_eq!(g.num_sets(), 2048);
    }

    #[test]
    fn error_display_nonempty() {
        let e = CacheGeometry::new(1000, 8, 128).unwrap_err();
        assert!(!e.to_string().is_empty());
    }
}
