//! Physical addresses and cache-line numbers.

use std::fmt;

/// A physical byte address.
///
/// # Example
///
/// ```
/// use cmpsim_cache::Addr;
///
/// let a = Addr::new(0x1234);
/// assert_eq!(a.line(128).raw(), 0x1234 / 128);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Addr(u64);

impl Addr {
    /// Wraps a raw byte address.
    pub const fn new(raw: u64) -> Self {
        Addr(raw)
    }

    /// The raw byte address.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// The cache-line number this address falls in, for a given line size.
    ///
    /// # Panics
    ///
    /// Panics (debug) if `line_bytes` is not a power of two.
    pub fn line(self, line_bytes: u64) -> LineAddr {
        debug_assert!(line_bytes.is_power_of_two());
        LineAddr(self.0 >> line_bytes.trailing_zeros())
    }

    /// Byte offset within its cache line.
    pub fn offset(self, line_bytes: u64) -> u64 {
        debug_assert!(line_bytes.is_power_of_two());
        self.0 & (line_bytes - 1)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl fmt::LowerHex for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl From<u64> for Addr {
    fn from(raw: u64) -> Self {
        Addr(raw)
    }
}

/// A cache-line number (byte address divided by the line size).
///
/// The whole simulator operates at line granularity; [`LineAddr`] is the
/// universal currency between caches, the ring, the L3, and the history
/// tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LineAddr(u64);

impl LineAddr {
    /// Wraps a raw line number.
    pub const fn new(raw: u64) -> Self {
        LineAddr(raw)
    }

    /// The raw line number.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// The first byte address of this line for a given line size.
    pub fn base_addr(self, line_bytes: u64) -> Addr {
        debug_assert!(line_bytes.is_power_of_two());
        Addr(self.0 << line_bytes.trailing_zeros())
    }
}

impl fmt::Display for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{:#x}", self.0)
    }
}

impl From<u64> for LineAddr {
    fn from(raw: u64) -> Self {
        LineAddr(raw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_extraction() {
        let a = Addr::new(0x1080);
        assert_eq!(a.line(128), LineAddr::new(0x21));
        assert_eq!(a.offset(128), 0);
        let b = Addr::new(0x10FF);
        assert_eq!(b.line(128), LineAddr::new(0x21));
        assert_eq!(b.offset(128), 0x7F);
    }

    #[test]
    fn base_addr_roundtrip() {
        let l = LineAddr::new(77);
        assert_eq!(l.base_addr(128).line(128), l);
        assert_eq!(l.base_addr(128).raw(), 77 * 128);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Addr::new(255).to_string(), "0xff");
        assert_eq!(LineAddr::new(16).to_string(), "L0x10");
        assert_eq!(format!("{:x}", Addr::new(255)), "ff");
    }

    #[test]
    fn conversions() {
        assert_eq!(Addr::from(5u64).raw(), 5);
        assert_eq!(LineAddr::from(6u64).raw(), 6);
    }
}
