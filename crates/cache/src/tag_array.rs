//! Set-associative tag array generic over a per-line state payload.

use std::cell::Cell;

use cmpsim_engine::SplitMix64;

use crate::{CacheGeometry, LineAddr, ReplacementPolicy};

/// Index of a way within a set.
pub type WayIdx = usize;

/// Where a newly inserted line lands in the recency stack.
///
/// Demand fills insert at [`Mru`](InsertPosition::Mru); the snarf
/// mechanism's insertion position is a tunable (§3 of the paper discusses
/// managing recipient LRU state to keep snarfed lines resident until
/// reuse).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum InsertPosition {
    /// Most recently used — maximum residency.
    #[default]
    Mru,
    /// Halfway down the recency stack.
    Mid,
    /// Least recently used — first out.
    Lru,
}

/// A line evicted by [`TagArray::insert`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Evicted<S> {
    /// The victim's line address.
    pub line: LineAddr,
    /// The victim's state payload at eviction time.
    pub state: S,
}

#[derive(Debug, Clone)]
struct Way<S> {
    tag: u64,
    valid: bool,
    state: S,
    stamp: u64,
}

/// A set-associative tag array.
///
/// Generic over the per-line state payload `S` (a coherence state in the
/// L2/L3 models, a use-bit in the snarf table, `()` in the WBHT), so all
/// tag storage in the simulator shares one well-tested implementation.
///
/// # Example
///
/// ```
/// use cmpsim_cache::{CacheGeometry, TagArray, ReplacementPolicy, LineAddr, InsertPosition};
///
/// let geom = CacheGeometry::new(1024, 2, 128)?; // 4 sets x 2 ways
/// let mut t: TagArray<char> = TagArray::new(geom, ReplacementPolicy::Lru);
/// t.insert(LineAddr::new(0), 'a', InsertPosition::Mru);
/// t.insert(LineAddr::new(4), 'b', InsertPosition::Mru); // same set
/// let ev = t.insert(LineAddr::new(8), 'c', InsertPosition::Mru).unwrap();
/// assert_eq!(ev.line, LineAddr::new(0)); // LRU victim
/// # Ok::<(), cmpsim_cache::GeometryError>(())
/// ```
#[derive(Debug, Clone)]
pub struct TagArray<S> {
    geom: CacheGeometry,
    policy: ReplacementPolicy,
    ways: Vec<Way<S>>,
    plru: Vec<u64>,
    stamp: u64,
    rng: SplitMix64,
    valid_count: u64,
    /// Way memoization: per-set index of the last way that hit (or was
    /// filled), `NO_HINT` when unknown. Hints are *validated* on use
    /// (valid bit and tag compare), so a stale hint after an eviction or
    /// invalidation degrades to the full way scan — it can never return
    /// a wrong answer, and therefore never needs clearing. `Cell` keeps
    /// [`probe`](Self::probe) shared (`&self`); the array stays `Send`,
    /// which is all the parallel sweep driver needs (each worker builds
    /// its own systems).
    way_hint: Vec<Cell<u32>>,
    /// Consult the hint on probes? Always updated, consulted only when
    /// `true`; tests flip it off to prove probe/LRU behaviour is
    /// identical either way.
    memo: bool,
}

/// Sentinel for "no memoized way" (associativities are far below this).
const NO_HINT: u32 = u32::MAX;

impl<S: Copy + Default> TagArray<S> {
    /// Creates an empty tag array.
    ///
    /// # Panics
    ///
    /// Panics if `policy` is [`ReplacementPolicy::TreePlru`] and the
    /// associativity is not a power of two.
    pub fn new(geom: CacheGeometry, policy: ReplacementPolicy) -> Self {
        if policy == ReplacementPolicy::TreePlru {
            assert!(
                geom.assoc().is_power_of_two(),
                "tree-PLRU requires power-of-two associativity"
            );
        }
        let n = geom.num_lines() as usize;
        TagArray {
            geom,
            policy,
            ways: vec![
                Way {
                    tag: 0,
                    valid: false,
                    state: S::default(),
                    stamp: 0,
                };
                n
            ],
            plru: vec![0; geom.num_sets() as usize],
            stamp: 0,
            rng: SplitMix64::new(0xCAFE_F00D),
            valid_count: 0,
            way_hint: vec![Cell::new(NO_HINT); geom.num_sets() as usize],
            memo: true,
        }
    }

    /// Enables or disables the way-memoization fast path (on by
    /// default). Probe results, recency stamps, and victim choices are
    /// identical either way — tests flip this to prove it.
    pub fn set_way_memo(&mut self, on: bool) {
        self.memo = on;
    }

    /// The geometry this array was built with.
    pub fn geometry(&self) -> CacheGeometry {
        self.geom
    }

    /// The replacement policy in force.
    pub fn policy(&self) -> ReplacementPolicy {
        self.policy
    }

    /// Number of valid lines currently resident.
    pub fn valid_lines(&self) -> u64 {
        self.valid_count
    }

    fn set_range(&self, line: LineAddr) -> std::ops::Range<usize> {
        let set = self.geom.set_of(line) as usize;
        let a = self.geom.assoc() as usize;
        set * a..(set + 1) * a
    }

    /// Looks up a line without updating recency. Returns the way and a
    /// reference to its state when present.
    #[inline]
    pub fn probe(&self, line: LineAddr) -> Option<(WayIdx, &S)> {
        let set = self.geom.set_of(line) as usize;
        let a = self.geom.assoc() as usize;
        let base = set * a;
        if self.memo {
            let h = self.way_hint[set].get() as usize;
            if h < a {
                let w = &self.ways[base + h];
                if w.valid && w.tag == line.raw() {
                    return Some((base + h, &w.state));
                }
            }
        }
        let hit = self.ways[base..base + a]
            .iter()
            .position(|w| w.valid && w.tag == line.raw())?;
        self.way_hint[set].set(hit as u32);
        Some((base + hit, &self.ways[base + hit].state))
    }

    /// Looks up a line without updating recency, returning a mutable
    /// state reference (e.g. for coherence state transitions on snoops).
    #[inline]
    pub fn probe_mut(&mut self, line: LineAddr) -> Option<(WayIdx, &mut S)> {
        let (way, _) = self.probe(line)?;
        Some((way, &mut self.ways[way].state))
    }

    /// Marks a line as just-used (hit path). Returns `false` if absent.
    #[inline]
    pub fn touch(&mut self, line: LineAddr) -> bool {
        let Some((way, _)) = self.probe(line) else {
            return false;
        };
        self.promote(line, way);
        true
    }

    fn promote(&mut self, line: LineAddr, way: WayIdx) {
        self.stamp += 1;
        self.ways[way].stamp = self.stamp;
        if self.policy == ReplacementPolicy::TreePlru {
            let set = self.geom.set_of(line) as usize;
            let local = way - self.set_range(line).start;
            self.plru_touch(set, local);
        }
    }

    /// Inserts a line, evicting a victim when the set is full.
    ///
    /// Returns the evicted line, if any. The victim is an invalid way when
    /// one exists, otherwise chosen by the replacement policy.
    ///
    /// # Panics
    ///
    /// Panics (debug) if the line is already present — callers must
    /// [`probe`](Self::probe) first and update state in place on a hit.
    pub fn insert(&mut self, line: LineAddr, state: S, pos: InsertPosition) -> Option<Evicted<S>> {
        debug_assert!(
            self.probe(line).is_none(),
            "insert of already-present line {line}"
        );
        let way = match self.invalid_way(line) {
            Some(w) => w,
            None => self.victim_way(line),
        };
        self.fill_way(line, way, state, pos)
    }

    /// Inserts a line into a *specific* way (used by the snarf mechanism,
    /// which picks its own victim with state preferences).
    ///
    /// Returns the previous occupant, if any.
    pub fn insert_into(
        &mut self,
        line: LineAddr,
        way: WayIdx,
        state: S,
        pos: InsertPosition,
    ) -> Option<Evicted<S>> {
        debug_assert!(self.set_range(line).contains(&way), "way not in line's set");
        self.fill_way(line, way, state, pos)
    }

    fn fill_way(
        &mut self,
        line: LineAddr,
        way: WayIdx,
        state: S,
        pos: InsertPosition,
    ) -> Option<Evicted<S>> {
        let evicted = if self.ways[way].valid {
            Some(Evicted {
                line: LineAddr::new(self.ways[way].tag),
                state: self.ways[way].state,
            })
        } else {
            self.valid_count += 1;
            None
        };
        let stamp = self.stamp_for(line, pos);
        let w = &mut self.ways[way];
        w.tag = line.raw();
        w.valid = true;
        w.state = state;
        w.stamp = stamp;
        let set = self.geom.set_of(line) as usize;
        let local = way - set * self.geom.assoc() as usize;
        // A just-filled line is the likeliest next probe target.
        self.way_hint[set].set(local as u32);
        if self.policy == ReplacementPolicy::TreePlru && pos == InsertPosition::Mru {
            self.plru_touch(set, local);
        }
        evicted
    }

    fn stamp_for(&mut self, line: LineAddr, pos: InsertPosition) -> u64 {
        match pos {
            InsertPosition::Mru => {
                self.stamp += 1;
                self.stamp
            }
            InsertPosition::Lru => {
                let range = self.set_range(line);
                self.ways[range]
                    .iter()
                    .filter(|w| w.valid)
                    .map(|w| w.stamp)
                    .min()
                    .map_or(0, |m| m.saturating_sub(1))
            }
            InsertPosition::Mid => {
                let range = self.set_range(line);
                let (mut lo, mut hi) = (u64::MAX, 0u64);
                let mut any = false;
                for w in &self.ways[range] {
                    if w.valid {
                        lo = lo.min(w.stamp);
                        hi = hi.max(w.stamp);
                        any = true;
                    }
                }
                if any {
                    lo / 2 + hi / 2
                } else {
                    self.stamp += 1;
                    self.stamp
                }
            }
        }
    }

    /// First invalid way in the line's set, if any.
    pub fn invalid_way(&self, line: LineAddr) -> Option<WayIdx> {
        let range = self.set_range(line);
        let base = range.start;
        self.ways[range]
            .iter()
            .position(|w| !w.valid)
            .map(|i| base + i)
    }

    /// The way the replacement policy would victimize in this line's set
    /// (assumes the set has at least one valid way; invalid ways are
    /// preferred by [`insert`](Self::insert) before this is consulted).
    pub fn victim_way(&mut self, line: LineAddr) -> WayIdx {
        let range = self.set_range(line);
        let base = range.start;
        match self.policy {
            ReplacementPolicy::Lru => {
                let mut best = base;
                let mut best_stamp = u64::MAX;
                for (i, w) in self.ways[range].iter().enumerate() {
                    if w.stamp < best_stamp {
                        best_stamp = w.stamp;
                        best = base + i;
                    }
                }
                best
            }
            ReplacementPolicy::TreePlru => {
                let set = self.geom.set_of(line) as usize;
                base + self.plru_victim(set)
            }
            ReplacementPolicy::Random => base + self.rng.gen_range(self.geom.assoc()) as usize,
        }
    }

    /// Finds the best victim way among valid ways whose state satisfies
    /// `pred`, preferring the least recently used. Returns `None` when no
    /// way qualifies. Invalid ways are *not* returned — use
    /// [`invalid_way`](Self::invalid_way) first.
    ///
    /// This implements the snarf victim policy of §3: the caller first
    /// asks for an invalid way, then for the LRU way in `Shared` state.
    pub fn victim_way_by(&self, line: LineAddr, pred: impl Fn(&S) -> bool) -> Option<WayIdx> {
        let range = self.set_range(line);
        let base = range.start;
        self.ways[range]
            .iter()
            .enumerate()
            .filter(|(_, w)| w.valid && pred(&w.state))
            .min_by_key(|(i, w)| (w.stamp, *i))
            .map(|(i, _)| base + i)
    }

    /// The `k` least-recently-used valid ways in the line's set, most
    /// evictable first. Used by cost-aware replacement policies that
    /// re-rank the LRU tail (e.g. preferring victims known to be cheap
    /// to re-fetch). Returns fewer than `k` entries when the set has
    /// fewer valid ways.
    pub fn victim_candidates(&self, line: LineAddr, k: usize) -> Vec<(WayIdx, LineAddr)> {
        let range = self.set_range(line);
        let base = range.start;
        let mut ways: Vec<(u64, WayIdx, LineAddr)> = self.ways[range]
            .iter()
            .enumerate()
            .filter(|(_, w)| w.valid)
            .map(|(i, w)| (w.stamp, base + i, LineAddr::new(w.tag)))
            .collect();
        ways.sort_unstable_by_key(|&(stamp, i, _)| (stamp, i));
        ways.truncate(k);
        ways.into_iter().map(|(_, i, l)| (i, l)).collect()
    }

    /// Removes a line, returning its state if it was present.
    pub fn invalidate(&mut self, line: LineAddr) -> Option<S> {
        let range = self.set_range(line);
        for w in &mut self.ways[range] {
            if w.valid && w.tag == line.raw() {
                w.valid = false;
                self.valid_count -= 1;
                return Some(w.state);
            }
        }
        None
    }

    /// The line currently occupying `way`, if valid.
    pub fn line_at(&self, way: WayIdx) -> Option<(LineAddr, &S)> {
        let w = &self.ways[way];
        w.valid.then(|| (LineAddr::new(w.tag), &w.state))
    }

    /// Iterates over all valid lines (for verification and debug dumps).
    pub fn iter_valid(&self) -> impl Iterator<Item = (LineAddr, &S)> + '_ {
        self.ways
            .iter()
            .filter(|w| w.valid)
            .map(|w| (LineAddr::new(w.tag), &w.state))
    }

    // --- tree-PLRU helpers -------------------------------------------------

    fn plru_touch(&mut self, set: usize, way: usize) {
        let assoc = self.geom.assoc() as usize;
        let bits = &mut self.plru[set];
        let mut node = 0usize; // root at index 0; internal nodes: assoc-1
        let mut lo = 0usize;
        let mut hi = assoc;
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            if way < mid {
                // went left: point victim bit right (1)
                *bits |= 1 << node;
                node = 2 * node + 1;
                hi = mid;
            } else {
                *bits &= !(1 << node);
                node = 2 * node + 2;
                lo = mid;
            }
        }
    }

    fn plru_victim(&self, set: usize) -> usize {
        let assoc = self.geom.assoc() as usize;
        let bits = self.plru[set];
        let mut node = 0usize;
        let mut lo = 0usize;
        let mut hi = assoc;
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            if bits & (1 << node) != 0 {
                // victim bit points right
                node = 2 * node + 2;
                lo = mid;
            } else {
                node = 2 * node + 1;
                hi = mid;
            }
        }
        lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> TagArray<u8> {
        // 4 sets x 2 ways, 128 B lines.
        TagArray::new(
            CacheGeometry::new(1024, 2, 128).unwrap(),
            ReplacementPolicy::Lru,
        )
    }

    #[test]
    fn probe_miss_then_hit() {
        let mut t = small();
        let l = LineAddr::new(12);
        assert!(t.probe(l).is_none());
        t.insert(l, 7, InsertPosition::Mru);
        assert_eq!(t.probe(l), Some((t.probe(l).unwrap().0, &7)));
        assert_eq!(t.valid_lines(), 1);
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut t = small();
        // Set 0 holds lines 0, 4, 8, ...
        t.insert(LineAddr::new(0), 1, InsertPosition::Mru);
        t.insert(LineAddr::new(4), 2, InsertPosition::Mru);
        t.touch(LineAddr::new(0)); // 4 is now LRU
        let ev = t.insert(LineAddr::new(8), 3, InsertPosition::Mru).unwrap();
        assert_eq!(ev.line, LineAddr::new(4));
        assert_eq!(ev.state, 2);
        assert!(t.probe(LineAddr::new(0)).is_some());
    }

    #[test]
    fn lru_insert_position_lru_is_first_victim() {
        let mut t = small();
        t.insert(LineAddr::new(0), 1, InsertPosition::Mru);
        t.insert(LineAddr::new(4), 2, InsertPosition::Lru); // parked at LRU
        let ev = t.insert(LineAddr::new(8), 3, InsertPosition::Mru).unwrap();
        assert_eq!(ev.line, LineAddr::new(4));
    }

    #[test]
    fn invalidate_removes() {
        let mut t = small();
        t.insert(LineAddr::new(0), 9, InsertPosition::Mru);
        assert_eq!(t.invalidate(LineAddr::new(0)), Some(9));
        assert_eq!(t.invalidate(LineAddr::new(0)), None);
        assert_eq!(t.valid_lines(), 0);
    }

    #[test]
    fn probe_mut_updates_state() {
        let mut t = small();
        t.insert(LineAddr::new(0), 1, InsertPosition::Mru);
        if let Some((_, s)) = t.probe_mut(LineAddr::new(0)) {
            *s = 42;
        }
        assert_eq!(*t.probe(LineAddr::new(0)).unwrap().1, 42);
    }

    #[test]
    fn victim_way_by_prefers_lru_matching() {
        let mut t = small();
        t.insert(LineAddr::new(0), 10, InsertPosition::Mru);
        t.insert(LineAddr::new(4), 20, InsertPosition::Mru);
        // Only states >= 15 qualify.
        let w = t.victim_way_by(LineAddr::new(8), |&s| s >= 15).unwrap();
        assert_eq!(t.line_at(w).unwrap().0, LineAddr::new(4));
        assert!(t.victim_way_by(LineAddr::new(8), |&s| s > 99).is_none());
    }

    #[test]
    fn insert_into_specific_way() {
        let mut t = small();
        t.insert(LineAddr::new(0), 1, InsertPosition::Mru);
        let w = t.probe(LineAddr::new(0)).unwrap().0;
        let ev = t
            .insert_into(LineAddr::new(8), w, 5, InsertPosition::Mid)
            .unwrap();
        assert_eq!(ev.line, LineAddr::new(0));
        assert!(t.probe(LineAddr::new(8)).is_some());
        assert!(t.probe(LineAddr::new(0)).is_none());
    }

    #[test]
    fn different_sets_do_not_conflict() {
        let mut t = small();
        for i in 0..4 {
            assert!(t
                .insert(LineAddr::new(i), i as u8, InsertPosition::Mru)
                .is_none());
        }
        assert_eq!(t.valid_lines(), 4);
        assert_eq!(t.iter_valid().count(), 4);
    }

    #[test]
    fn tree_plru_victimizes_untouched() {
        let geom = CacheGeometry::new(2048, 4, 128).unwrap(); // 4 sets x 4 ways
        let mut t: TagArray<u8> = TagArray::new(geom, ReplacementPolicy::TreePlru);
        // Fill set 0: lines 0,4,8,12.
        for (i, l) in [0u64, 4, 8, 12].iter().enumerate() {
            t.insert(LineAddr::new(*l), i as u8, InsertPosition::Mru);
        }
        // Touch 0, 8, 4: the root bit last pointed away from way1 (line 4,
        // left subtree) and the right subtree bit away from way2 (line 8),
        // so tree-PLRU victimizes way3 = line 12.
        t.touch(LineAddr::new(0));
        t.touch(LineAddr::new(8));
        t.touch(LineAddr::new(4));
        let ev = t.insert(LineAddr::new(16), 9, InsertPosition::Mru).unwrap();
        assert_eq!(ev.line, LineAddr::new(12));
    }

    #[test]
    fn random_policy_deterministic() {
        let geom = CacheGeometry::new(1024, 2, 128).unwrap();
        let mut a: TagArray<u8> = TagArray::new(geom, ReplacementPolicy::Random);
        let mut b: TagArray<u8> = TagArray::new(geom, ReplacementPolicy::Random);
        for i in 0..20 {
            let ea = a.insert(LineAddr::new(i * 4), 0, InsertPosition::Mru);
            let eb = b.insert(LineAddr::new(i * 4), 0, InsertPosition::Mru);
            assert_eq!(ea.map(|e| e.line), eb.map(|e| e.line));
        }
    }

    #[test]
    fn victim_candidates_ordered_by_recency() {
        let geom = CacheGeometry::new(2048, 4, 128).unwrap();
        let mut t: TagArray<u8> = TagArray::new(geom, ReplacementPolicy::Lru);
        for (i, l) in [0u64, 4, 8, 12].iter().enumerate() {
            t.insert(LineAddr::new(*l), i as u8, InsertPosition::Mru);
        }
        t.touch(LineAddr::new(0)); // 4 becomes the coldest
        let c = t.victim_candidates(LineAddr::new(16), 2);
        assert_eq!(c.len(), 2);
        assert_eq!(c[0].1, LineAddr::new(4));
        assert_eq!(c[1].1, LineAddr::new(8));
        // k larger than valid ways is clipped.
        assert_eq!(t.victim_candidates(LineAddr::new(16), 99).len(), 4);
    }

    #[test]
    fn way_memo_is_behaviour_invisible() {
        // Mirror a random probe/touch/insert/invalidate schedule onto two
        // arrays, one with the way-memoization fast path disabled, and
        // demand identical probe results (way AND state), identical
        // evictions, and identical LRU stamps throughout.
        let geom = CacheGeometry::new(4096, 8, 128).unwrap(); // 4 sets x 8 ways
        let mut on: TagArray<u8> = TagArray::new(geom, ReplacementPolicy::Lru);
        let mut off: TagArray<u8> = TagArray::new(geom, ReplacementPolicy::Lru);
        off.set_way_memo(false);
        let mut rng = SplitMix64::new(0xDEAD_BEEF);
        for step in 0..20_000u64 {
            let line = LineAddr::new(rng.gen_range(64));
            match rng.gen_range(4) {
                0 => {
                    let a = on.probe(line).map(|(w, &s)| (w, s));
                    let b = off.probe(line).map(|(w, &s)| (w, s));
                    assert_eq!(a, b, "probe diverged at step {step}");
                }
                1 => {
                    assert_eq!(on.touch(line), off.touch(line), "touch @ {step}");
                }
                2 => {
                    let st = (step & 0xFF) as u8;
                    if on.probe(line).is_none() {
                        let a = on.insert(line, st, InsertPosition::Mru);
                        let b = off.insert(line, st, InsertPosition::Mru);
                        assert_eq!(a, b, "eviction diverged at step {step}");
                    }
                }
                _ => {
                    assert_eq!(on.invalidate(line), off.invalidate(line));
                }
            }
            assert_eq!(on.valid_lines(), off.valid_lines());
        }
        // Full-state comparison at the end: every resident line, state,
        // and victim ordering matches.
        let a: Vec<_> = on.iter_valid().map(|(l, &s)| (l, s)).collect();
        let b: Vec<_> = off.iter_valid().map(|(l, &s)| (l, s)).collect();
        assert_eq!(a, b);
        for set_line in 0..4u64 {
            let l = LineAddr::new(set_line);
            assert_eq!(on.victim_candidates(l, 8), off.victim_candidates(l, 8));
        }
    }

    #[test]
    fn stale_hint_never_lies() {
        // Hit a line (hint points at it), invalidate it, re-insert a
        // *different* line into the same way, then probe the old line:
        // the stale hint must be rejected by tag compare.
        let mut t = small();
        t.insert(LineAddr::new(0), 1, InsertPosition::Mru);
        assert!(t.probe(LineAddr::new(0)).is_some());
        let way = t.probe(LineAddr::new(0)).unwrap().0;
        t.invalidate(LineAddr::new(0));
        assert!(t.probe(LineAddr::new(0)).is_none());
        t.insert_into(LineAddr::new(8), way, 2, InsertPosition::Mru);
        assert!(t.probe(LineAddr::new(0)).is_none());
        assert_eq!(*t.probe(LineAddr::new(8)).unwrap().1, 2);
    }

    #[test]
    fn mid_insert_sits_between() {
        let geom = CacheGeometry::new(2048, 4, 128).unwrap();
        let mut t: TagArray<u8> = TagArray::new(geom, ReplacementPolicy::Lru);
        t.insert(LineAddr::new(0), 0, InsertPosition::Mru);
        t.insert(LineAddr::new(4), 1, InsertPosition::Mru);
        t.insert(LineAddr::new(8), 2, InsertPosition::Mru);
        // Mid insert: should be evicted before the MRU lines but after
        // the oldest line is gone.
        t.insert(LineAddr::new(12), 3, InsertPosition::Mid);
        let ev1 = t.insert(LineAddr::new(16), 4, InsertPosition::Mru).unwrap();
        assert_eq!(ev1.line, LineAddr::new(0)); // true LRU goes first
        let ev2 = t.insert(LineAddr::new(20), 5, InsertPosition::Mru).unwrap();
        assert_eq!(ev2.line, LineAddr::new(12)); // mid-inserted goes next
    }
}
