//! Bit-packed tag-array backend: one `u64` word per line, hot state
//! struct-of-arrays.
//!
//! # Word layout
//!
//! ```text
//!  63  62 .. 63-S::BITS  62-S::BITS .. 0
//! +---+----------------+----------------------------------+
//! | V |     state      |   tag  (line.raw() >> set bits)  |
//! +---+----------------+----------------------------------+
//! ```
//!
//! The tag drops its set-index bits (they are implied by the word's
//! position in the array), so a geometry fits whenever
//! `S::BITS + (48 − set_bits) ≤ 63` — checked at construction against
//! [`PACKED_LINE_ADDR_BITS`] by [`packed_fits`]. A probe is a single
//! masked compare per way (`word & (VALID|TAG_MASK) == VALID|tag`) over
//! per-set contiguous words, which the compiler turns into a short
//! sequential-load compare loop.
//!
//! Recency stamps live in a **separate** `Box<[u64]>` epoch array, not
//! in the word: a stamp needs the full 64-bit monotone counter to keep
//! the oracle's exact tie-break ordering (stamps survive invalidation
//! and are compared across the whole set, including invalid ways), and
//! keeping them out of the word means the probe loop never loads them.
//!
//! A per-set **presence filter** (`u32` signature: the OR of
//! `1 << (tag & 31)` over valid ways) short-circuits definite misses
//! before the way scan. Snoop probes and invalidations fan out to every
//! remote slice and mostly miss, so this skips the bulk of scans while
//! staying exact: the signature is recomputed (not just OR-ed) on every
//! insert and invalidate, and a false positive only costs the scan that
//! would have run anyway. Hit results, stamps, victim choices, and the
//! rng stream are unaffected.

use std::cell::Cell;
use std::marker::PhantomData;

use cmpsim_engine::SplitMix64;

use super::{plru, Evicted, InsertPosition, PackedState, TagStorage, WayIdx, NO_HINT};
use crate::{CacheGeometry, GeometryError, LineAddr, ReplacementPolicy};

/// Line-address width the packed word must be able to tag (48-bit
/// physical addressing; line addresses are physical addresses already
/// shifted right by the line-offset bits, so this is generous).
pub const PACKED_LINE_ADDR_BITS: u32 = 48;

/// Can a packed word hold `state_bits` of state plus the tag bits a
/// `num_sets`-set geometry leaves over from a
/// [`PACKED_LINE_ADDR_BITS`]-bit line address?
///
/// `const` so statically known geometries can be checked at compile
/// time (`const _: () = assert!(packed_fits(3, 512));`); `num_sets`
/// must be a power of two (as [`CacheGeometry`] guarantees).
pub const fn packed_fits(state_bits: u32, num_sets: u64) -> bool {
    if state_bits > 63 {
        return false;
    }
    let set_bits = num_sets.trailing_zeros();
    PACKED_LINE_ADDR_BITS.saturating_sub(set_bits) <= 63 - state_bits
}

/// One packed line word: `valid | state | tag` (see the module docs for
/// the layout). The field boundaries depend on the state type's
/// [`PackedState::BITS`], so decoding lives on [`PackedTagArray`]; this
/// wrapper exists to name the format and pin its size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[repr(transparent)]
pub struct PackedLine(u64);

// Layout regression guard: a line word is exactly one u64.
const _: () = assert!(std::mem::size_of::<PackedLine>() == 8);

impl PackedLine {
    /// The raw word.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Is the valid bit (bit 63) set?
    #[inline]
    pub const fn is_valid(self) -> bool {
        self.0 >> 63 != 0
    }
}

/// A set-associative tag array storing each line as one packed `u64`.
///
/// Same semantics as [`GenericTagArray`](super::GenericTagArray) —
/// probe scan order, recency stamps, victim tie-breaks, the
/// deterministic Random rng stream, and way-memoization hints are all
/// identical by construction (the randomized mirror test in
/// `tests/mirror.rs` enforces it) — but the per-way storage is a
/// single word, laid out struct-of-arrays with per-set contiguous
/// ways, so the probe loop touches `assoc × 8` contiguous bytes.
///
/// Requires `S:`[`PackedState`] and a geometry accepted by
/// [`packed_fits`]; payloads too wide to pack use the generic backend
/// (see [`WideHistoryTable`](crate::WideHistoryTable)).
#[derive(Debug, Clone)]
pub struct PackedTagArray<S> {
    geom: CacheGeometry,
    policy: ReplacementPolicy,
    /// One [`PackedLine`] word per line, `set * assoc + way` indexed.
    words: Box<[PackedLine]>,
    /// Per-set presence signature: the OR of `1 << (tag & 31)` over the
    /// set's valid ways. A probe whose tag bit is clear is *definitely*
    /// absent and skips the way scan entirely — the common case for
    /// snoop probes fanning out across remote slices. Rebuilt exactly
    /// (not just OR-ed) on every insert/invalidate, so it never decays
    /// into all-ones; a set bit merely falls through to the scan.
    filters: Box<[u32]>,
    /// Recency epochs, parallel to `words`. Kept out of the packed word
    /// (full-width monotone counter; survives invalidation) — see the
    /// module docs.
    stamps: Box<[u64]>,
    plru: Box<[u64]>,
    stamp: u64,
    rng: SplitMix64,
    valid_count: u64,
    /// Way memoization: per-set index of the last way that hit (or was
    /// filled), `NO_HINT` when unknown. Hints are *validated* on use
    /// (masked tag compare), so a stale hint after an eviction or
    /// invalidation degrades to the full way scan — it can never return
    /// a wrong answer, and therefore never needs clearing. `Cell` keeps
    /// [`probe`](Self::probe) shared (`&self`); the array stays `Send`,
    /// which is all the parallel sweep driver needs (each worker builds
    /// its own systems).
    way_hint: Box<[Cell<u32>]>,
    /// Consult the hint on probes? Always updated, consulted only when
    /// `true`; tests flip it off to prove probe/LRU behaviour is
    /// identical either way.
    memo: bool,
    /// `num_sets - 1`, cached off the hot path's `geom` indirection.
    set_mask: u64,
    /// `log2(num_sets)`: how many low line-address bits the tag drops.
    set_shift: u32,
    /// `geom.assoc()` as usize, cached likewise.
    assoc: usize,
    _state: PhantomData<S>,
}

impl<S: PackedState> PackedTagArray<S> {
    /// Tag field width: whatever the word has left after valid + state.
    const TAG_BITS: u32 = 63 - S::BITS;
    /// Valid flag (bit 63).
    const VALID: u64 = 1 << 63;
    /// Mask of the tag field (low bits).
    const TAG_MASK: u64 = (1 << Self::TAG_BITS) - 1;
    /// Mask of the state field (between tag and valid).
    const STATE_MASK: u64 = ((1 << S::BITS) - 1) << Self::TAG_BITS;
    /// What a probe compares: valid bit + tag field.
    const MATCH_MASK: u64 = Self::VALID | Self::TAG_MASK;

    /// Creates an empty tag array.
    ///
    /// # Errors
    ///
    /// Returns [`GeometryError::PackedTagOverflow`] when the geometry
    /// needs more tag bits than the word has spare (see [`packed_fits`]).
    ///
    /// # Panics
    ///
    /// Panics if `policy` is [`ReplacementPolicy::TreePlru`] and the
    /// associativity is not a power of two.
    pub fn try_new(geom: CacheGeometry, policy: ReplacementPolicy) -> Result<Self, GeometryError> {
        if !packed_fits(S::BITS, geom.num_sets()) {
            return Err(GeometryError::PackedTagOverflow {
                state_bits: S::BITS,
                num_sets: geom.num_sets(),
            });
        }
        if policy == ReplacementPolicy::TreePlru {
            assert!(
                geom.assoc().is_power_of_two(),
                "tree-PLRU requires power-of-two associativity"
            );
        }
        let n = geom.num_lines() as usize;
        Ok(PackedTagArray {
            geom,
            policy,
            words: vec![PackedLine::default(); n].into_boxed_slice(),
            filters: vec![0; geom.num_sets() as usize].into_boxed_slice(),
            stamps: vec![0; n].into_boxed_slice(),
            plru: vec![0; geom.num_sets() as usize].into_boxed_slice(),
            stamp: 0,
            rng: SplitMix64::new(0xCAFE_F00D),
            valid_count: 0,
            way_hint: vec![Cell::new(NO_HINT); geom.num_sets() as usize].into_boxed_slice(),
            memo: true,
            set_mask: geom.num_sets() - 1,
            set_shift: geom.num_sets().trailing_zeros(),
            assoc: geom.assoc() as usize,
            _state: PhantomData,
        })
    }

    /// Creates an empty tag array.
    ///
    /// # Panics
    ///
    /// Panics when the geometry's tag bits do not fit the packed word
    /// (see [`Self::try_new`]) or on a tree-PLRU policy with
    /// non-power-of-two associativity.
    pub fn new(geom: CacheGeometry, policy: ReplacementPolicy) -> Self {
        Self::try_new(geom, policy).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Enables or disables the way-memoization fast path (on by
    /// default). Probe results, recency stamps, and victim choices are
    /// identical either way — tests flip this to prove it.
    pub fn set_way_memo(&mut self, on: bool) {
        self.memo = on;
    }

    /// The geometry this array was built with.
    pub fn geometry(&self) -> CacheGeometry {
        self.geom
    }

    /// The replacement policy in force.
    pub fn policy(&self) -> ReplacementPolicy {
        self.policy
    }

    /// Number of valid lines currently resident.
    pub fn valid_lines(&self) -> u64 {
        self.valid_count
    }

    /// The presence-filter bit for a tag (low five tag bits — the bits
    /// that distinguish same-set lines at the smallest strides).
    #[inline]
    fn filter_bit(tag: u64) -> u32 {
        1u32 << (tag & 31)
    }

    /// Recomputes one set's presence signature from its words. Called
    /// after any mutation that adds or removes a tag; the set's words
    /// are already in cache at that point, so this is a handful of
    /// register ops.
    #[inline]
    fn rebuild_filter(&mut self, set: usize) {
        let base = set * self.assoc;
        let mut f = 0u32;
        for w in &self.words[base..base + self.assoc] {
            if w.is_valid() {
                // The tag field is the word's low bits, so the word's
                // low five bits *are* the tag's.
                f |= Self::filter_bit(w.raw());
            }
        }
        self.filters[set] = f;
    }

    /// Encodes the state field of a word.
    #[inline]
    fn state_bits(state: S) -> u64 {
        let bits = state.to_bits();
        debug_assert_eq!(
            bits & !(Self::STATE_MASK >> Self::TAG_BITS),
            0,
            "PackedState::to_bits exceeded BITS"
        );
        bits << Self::TAG_BITS
    }

    /// Decodes a word's state field.
    #[inline]
    fn state_of(word: PackedLine) -> S {
        S::from_bits((word.raw() & Self::STATE_MASK) >> Self::TAG_BITS)
    }

    /// Reconstructs the line address stored at flat way index `way`
    /// (tag field ‖ the set index implied by the word's position).
    #[inline]
    fn line_of(&self, way: WayIdx) -> LineAddr {
        let set = (way / self.assoc) as u64;
        LineAddr::new(((self.words[way].raw() & Self::TAG_MASK) << self.set_shift) | set)
    }

    #[inline]
    fn set_range(&self, line: LineAddr) -> std::ops::Range<usize> {
        let set = (line.raw() & self.set_mask) as usize;
        set * self.assoc..(set + 1) * self.assoc
    }

    /// Looks up a line without updating recency. Returns the way and its
    /// state when present.
    ///
    /// A line address wider than the tag field can never have been
    /// inserted; its masked compare misses every word, so no explicit
    /// width check is needed here.
    #[inline]
    pub fn probe(&self, line: LineAddr) -> Option<(WayIdx, S)> {
        let set = (line.raw() & self.set_mask) as usize;
        let tag = line.raw() >> self.set_shift;
        if self.filters[set] & Self::filter_bit(tag) == 0 {
            return None;
        }
        let base = set * self.assoc;
        let want = Self::VALID | tag;
        if self.memo {
            let h = self.way_hint[set].get() as usize;
            if h < self.assoc {
                let w = self.words[base + h];
                if w.raw() & Self::MATCH_MASK == want {
                    return Some((base + h, Self::state_of(w)));
                }
            }
        }
        for (i, w) in self.words[base..base + self.assoc].iter().enumerate() {
            if w.raw() & Self::MATCH_MASK == want {
                self.way_hint[set].set(i as u32);
                return Some((base + i, Self::state_of(*w)));
            }
        }
        None
    }

    /// Rewrites a resident line's state in place (no recency update),
    /// e.g. for coherence state transitions on snoops. Returns `false`
    /// when the line is absent.
    #[inline]
    pub fn update_state(&mut self, line: LineAddr, f: impl FnOnce(&mut S)) -> bool {
        let Some((way, mut state)) = self.probe(line) else {
            return false;
        };
        f(&mut state);
        let w = &mut self.words[way];
        *w = PackedLine((w.raw() & !Self::STATE_MASK) | Self::state_bits(state));
        true
    }

    /// Overwrites a resident line's state. Returns `false` when absent.
    #[inline]
    pub fn set_state(&mut self, line: LineAddr, state: S) -> bool {
        self.update_state(line, |s| *s = state)
    }

    /// Marks a line as just-used (hit path). Returns `false` if absent.
    #[inline]
    pub fn touch(&mut self, line: LineAddr) -> bool {
        let Some((way, _)) = self.probe(line) else {
            return false;
        };
        self.promote(line, way);
        true
    }

    fn promote(&mut self, line: LineAddr, way: WayIdx) {
        self.stamp += 1;
        self.stamps[way] = self.stamp;
        if self.policy == ReplacementPolicy::TreePlru {
            let set = (line.raw() & self.set_mask) as usize;
            let local = way - set * self.assoc;
            plru::touch(&mut self.plru[set], self.assoc, local);
        }
    }

    /// Inserts a line, evicting a victim when the set is full.
    ///
    /// Returns the evicted line, if any. The victim is an invalid way when
    /// one exists, otherwise chosen by the replacement policy.
    ///
    /// # Panics
    ///
    /// Panics if the line address does not fit the tag field (only
    /// possible for addresses beyond [`PACKED_LINE_ADDR_BITS`], since
    /// construction already validated the geometry), and (debug) if the
    /// line is already present — callers must [`probe`](Self::probe)
    /// first and update state in place on a hit.
    pub fn insert(&mut self, line: LineAddr, state: S, pos: InsertPosition) -> Option<Evicted<S>> {
        debug_assert!(
            self.probe(line).is_none(),
            "insert of already-present line {line}"
        );
        let way = match self.invalid_way(line) {
            Some(w) => w,
            None => self.victim_way(line),
        };
        self.fill_way(line, way, state, pos)
    }

    /// Inserts a line into a *specific* way (used by the snarf mechanism,
    /// which picks its own victim with state preferences).
    ///
    /// Returns the previous occupant, if any.
    ///
    /// # Panics
    ///
    /// As [`insert`](Self::insert).
    pub fn insert_into(
        &mut self,
        line: LineAddr,
        way: WayIdx,
        state: S,
        pos: InsertPosition,
    ) -> Option<Evicted<S>> {
        debug_assert!(self.set_range(line).contains(&way), "way not in line's set");
        self.fill_way(line, way, state, pos)
    }

    fn fill_way(
        &mut self,
        line: LineAddr,
        way: WayIdx,
        state: S,
        pos: InsertPosition,
    ) -> Option<Evicted<S>> {
        let tag = line.raw() >> self.set_shift;
        assert!(
            tag <= Self::TAG_MASK,
            "line {line} exceeds the packed tag width ({} bits)",
            Self::TAG_BITS
        );
        // `way` is in `line`'s set, so the set index comes off the line
        // address — no division by `assoc` to recover it from `way`.
        let set = (line.raw() & self.set_mask) as usize;
        let old = self.words[way];
        let evicted = if old.is_valid() {
            Some(Evicted {
                line: LineAddr::new(((old.raw() & Self::TAG_MASK) << self.set_shift) | set as u64),
                state: Self::state_of(old),
            })
        } else {
            self.valid_count += 1;
            None
        };
        let stamp = self.stamp_for(line, pos);
        self.words[way] = PackedLine(Self::VALID | Self::state_bits(state) | tag);
        self.stamps[way] = stamp;
        self.rebuild_filter(set);
        let local = way - set * self.assoc;
        // A just-filled line is the likeliest next probe target.
        self.way_hint[set].set(local as u32);
        if self.policy == ReplacementPolicy::TreePlru && pos == InsertPosition::Mru {
            plru::touch(&mut self.plru[set], self.assoc, local);
        }
        evicted
    }

    fn stamp_for(&mut self, line: LineAddr, pos: InsertPosition) -> u64 {
        match pos {
            InsertPosition::Mru => {
                self.stamp += 1;
                self.stamp
            }
            InsertPosition::Lru => {
                let range = self.set_range(line);
                self.words[range.clone()]
                    .iter()
                    .zip(&self.stamps[range])
                    .filter(|(w, _)| w.is_valid())
                    .map(|(_, &s)| s)
                    .min()
                    .map_or(0, |m| m.saturating_sub(1))
            }
            InsertPosition::Mid => {
                let range = self.set_range(line);
                let (mut lo, mut hi) = (u64::MAX, 0u64);
                let mut any = false;
                for (w, &s) in self.words[range.clone()].iter().zip(&self.stamps[range]) {
                    if w.is_valid() {
                        lo = lo.min(s);
                        hi = hi.max(s);
                        any = true;
                    }
                }
                if any {
                    lo / 2 + hi / 2
                } else {
                    self.stamp += 1;
                    self.stamp
                }
            }
        }
    }

    /// First invalid way in the line's set, if any.
    pub fn invalid_way(&self, line: LineAddr) -> Option<WayIdx> {
        let range = self.set_range(line);
        let base = range.start;
        self.words[range]
            .iter()
            .position(|w| !w.is_valid())
            .map(|i| base + i)
    }

    /// The way the replacement policy would victimize in this line's set
    /// (assumes the set has at least one valid way; invalid ways are
    /// preferred by [`insert`](Self::insert) before this is consulted).
    pub fn victim_way(&mut self, line: LineAddr) -> WayIdx {
        let range = self.set_range(line);
        let base = range.start;
        match self.policy {
            ReplacementPolicy::Lru => {
                // Scans *all* ways' stamps (invalid ways keep theirs) —
                // identical tie-breaking to the generic oracle.
                let mut best = base;
                let mut best_stamp = u64::MAX;
                for (i, &s) in self.stamps[range].iter().enumerate() {
                    if s < best_stamp {
                        best_stamp = s;
                        best = base + i;
                    }
                }
                best
            }
            ReplacementPolicy::TreePlru => {
                let set = (line.raw() & self.set_mask) as usize;
                base + plru::victim(self.plru[set], self.assoc)
            }
            ReplacementPolicy::Random => base + self.rng.gen_range(self.geom.assoc()) as usize,
        }
    }

    /// Finds the best victim way among valid ways whose state satisfies
    /// `pred`, preferring the least recently used. Returns `None` when no
    /// way qualifies. Invalid ways are *not* returned — use
    /// [`invalid_way`](Self::invalid_way) first.
    ///
    /// This implements the snarf victim policy of §3: the caller first
    /// asks for an invalid way, then for the LRU way in `Shared` state.
    pub fn victim_way_by(&self, line: LineAddr, pred: impl Fn(&S) -> bool) -> Option<WayIdx> {
        let range = self.set_range(line);
        let base = range.start;
        self.words[range.clone()]
            .iter()
            .zip(&self.stamps[range])
            .enumerate()
            .filter(|(_, (w, _))| w.is_valid() && pred(&Self::state_of(**w)))
            .min_by_key(|&(i, (_, &s))| (s, i))
            .map(|(i, _)| base + i)
    }

    /// The `k` least-recently-used valid ways in the line's set, most
    /// evictable first. Used by cost-aware replacement policies that
    /// re-rank the LRU tail (e.g. preferring victims known to be cheap
    /// to re-fetch). Returns fewer than `k` entries when the set has
    /// fewer valid ways.
    pub fn victim_candidates(&self, line: LineAddr, k: usize) -> Vec<(WayIdx, LineAddr)> {
        let range = self.set_range(line);
        let base = range.start;
        let mut ways: Vec<(u64, WayIdx, LineAddr)> = self.words[range]
            .iter()
            .enumerate()
            .filter(|(_, w)| w.is_valid())
            .map(|(i, _)| (self.stamps[base + i], base + i, self.line_of(base + i)))
            .collect();
        ways.sort_unstable_by_key(|&(stamp, i, _)| (stamp, i));
        ways.truncate(k);
        ways.into_iter().map(|(_, i, l)| (i, l)).collect()
    }

    /// Removes a line, returning its state if it was present. The way's
    /// recency stamp is kept (matching the generic oracle's tie-breaks).
    pub fn invalidate(&mut self, line: LineAddr) -> Option<S> {
        let set = (line.raw() & self.set_mask) as usize;
        let tag = line.raw() >> self.set_shift;
        if self.filters[set] & Self::filter_bit(tag) == 0 {
            // Definitely absent (snoop invalidations fan out to slices
            // that mostly don't hold the line) — skip the scan.
            return None;
        }
        let range = self.set_range(line);
        let want = Self::VALID | tag;
        for w in &mut self.words[range] {
            if w.raw() & Self::MATCH_MASK == want {
                let state = Self::state_of(*w);
                *w = PackedLine(w.raw() & !Self::VALID);
                self.valid_count -= 1;
                self.rebuild_filter(set);
                return Some(state);
            }
        }
        None
    }

    /// The line currently occupying `way`, if valid.
    pub fn line_at(&self, way: WayIdx) -> Option<(LineAddr, S)> {
        let w = self.words[way];
        w.is_valid().then(|| (self.line_of(way), Self::state_of(w)))
    }

    /// Iterates over all valid lines (for verification and debug dumps).
    pub fn iter_valid(&self) -> impl Iterator<Item = (LineAddr, S)> + '_ {
        self.words
            .iter()
            .enumerate()
            .filter(|(_, w)| w.is_valid())
            .map(|(i, w)| (self.line_of(i), Self::state_of(*w)))
    }
}

impl<S: PackedState + std::fmt::Debug> TagStorage<S> for PackedTagArray<S> {
    fn try_new(geom: CacheGeometry, policy: ReplacementPolicy) -> Result<Self, GeometryError> {
        PackedTagArray::try_new(geom, policy)
    }

    fn geometry(&self) -> CacheGeometry {
        PackedTagArray::geometry(self)
    }

    fn valid_lines(&self) -> u64 {
        PackedTagArray::valid_lines(self)
    }

    fn probe(&self, line: LineAddr) -> Option<(WayIdx, S)> {
        PackedTagArray::probe(self, line)
    }

    fn touch(&mut self, line: LineAddr) -> bool {
        PackedTagArray::touch(self, line)
    }

    fn update_state(&mut self, line: LineAddr, f: impl FnOnce(&mut S)) -> bool {
        PackedTagArray::update_state(self, line, f)
    }

    fn insert(&mut self, line: LineAddr, state: S, pos: InsertPosition) -> Option<Evicted<S>> {
        PackedTagArray::insert(self, line, state, pos)
    }

    fn invalidate(&mut self, line: LineAddr) -> Option<S> {
        PackedTagArray::invalidate(self, line)
    }
}
