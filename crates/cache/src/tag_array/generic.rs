//! The pre-packing tag-array backend: a `Vec` of struct-of-enums lines.
//!
//! Kept for two jobs:
//!
//! * **Differential oracle.** `--features legacy-tags` re-points the
//!   [`TagArray`](crate::TagArray) alias here, so a whole simulator
//!   build runs on this backend and its `--json`/span/audit output can
//!   be diffed byte-for-byte against the packed build (verify.sh does
//!   exactly that), and `tests/mirror.rs` drives both backends through
//!   randomized op sequences asserting identical results.
//! * **Wide payloads.** State types that cannot fit the packed word's
//!   spare bits (e.g. the reuse-distance predictor's two-`u64` entry)
//!   store here via [`WideHistoryTable`](crate::WideHistoryTable).

use std::cell::Cell;

use cmpsim_engine::SplitMix64;

use super::{plru, Evicted, InsertPosition, TagStorage, WayIdx, NO_HINT};
use crate::{CacheGeometry, GeometryError, LineAddr, ReplacementPolicy};

#[derive(Debug, Clone)]
struct Way<S> {
    tag: u64,
    valid: bool,
    state: S,
    stamp: u64,
}

/// A set-associative tag array storing each line as a padded struct.
///
/// Generic over any `Copy + Default` per-line state payload — unlike
/// [`PackedTagArray`](super::PackedTagArray) it imposes no bit-width
/// limit, at the cost of a padded struct per way. Semantics (probe scan
/// order, recency stamps, victim tie-breaks, the deterministic Random
/// rng stream, way-memoization hints) are identical to the packed
/// backend by construction; the mirror test enforces it.
#[derive(Debug, Clone)]
pub struct GenericTagArray<S> {
    geom: CacheGeometry,
    policy: ReplacementPolicy,
    ways: Vec<Way<S>>,
    plru: Vec<u64>,
    stamp: u64,
    rng: SplitMix64,
    valid_count: u64,
    /// Way memoization: per-set index of the last way that hit (or was
    /// filled), `NO_HINT` when unknown. Hints are *validated* on use
    /// (valid bit and tag compare), so a stale hint after an eviction or
    /// invalidation degrades to the full way scan — it can never return
    /// a wrong answer, and therefore never needs clearing. `Cell` keeps
    /// [`probe`](Self::probe) shared (`&self`); the array stays `Send`,
    /// which is all the parallel sweep driver needs (each worker builds
    /// its own systems).
    way_hint: Vec<Cell<u32>>,
    /// Consult the hint on probes? Always updated, consulted only when
    /// `true`; tests flip it off to prove probe/LRU behaviour is
    /// identical either way.
    memo: bool,
}

impl<S: Copy + Default> GenericTagArray<S> {
    /// Creates an empty tag array.
    ///
    /// # Panics
    ///
    /// Panics if `policy` is [`ReplacementPolicy::TreePlru`] and the
    /// associativity is not a power of two.
    pub fn new(geom: CacheGeometry, policy: ReplacementPolicy) -> Self {
        if policy == ReplacementPolicy::TreePlru {
            assert!(
                geom.assoc().is_power_of_two(),
                "tree-PLRU requires power-of-two associativity"
            );
        }
        let n = geom.num_lines() as usize;
        GenericTagArray {
            geom,
            policy,
            ways: vec![
                Way {
                    tag: 0,
                    valid: false,
                    state: S::default(),
                    stamp: 0,
                };
                n
            ],
            plru: vec![0; geom.num_sets() as usize],
            stamp: 0,
            rng: SplitMix64::new(0xCAFE_F00D),
            valid_count: 0,
            way_hint: vec![Cell::new(NO_HINT); geom.num_sets() as usize],
            memo: true,
        }
    }

    /// Like [`new`](Self::new) but fallible, for [`TagStorage`] parity
    /// with the packed backend (this backend has no width limits).
    ///
    /// # Errors
    ///
    /// Never errors today; the `Result` mirrors
    /// [`PackedTagArray::try_new`](super::PackedTagArray::try_new).
    pub fn try_new(geom: CacheGeometry, policy: ReplacementPolicy) -> Result<Self, GeometryError> {
        Ok(Self::new(geom, policy))
    }

    /// Enables or disables the way-memoization fast path (on by
    /// default). Probe results, recency stamps, and victim choices are
    /// identical either way — tests flip this to prove it.
    pub fn set_way_memo(&mut self, on: bool) {
        self.memo = on;
    }

    /// The geometry this array was built with.
    pub fn geometry(&self) -> CacheGeometry {
        self.geom
    }

    /// The replacement policy in force.
    pub fn policy(&self) -> ReplacementPolicy {
        self.policy
    }

    /// Number of valid lines currently resident.
    pub fn valid_lines(&self) -> u64 {
        self.valid_count
    }

    fn set_range(&self, line: LineAddr) -> std::ops::Range<usize> {
        let set = self.geom.set_of(line) as usize;
        let a = self.geom.assoc() as usize;
        set * a..(set + 1) * a
    }

    /// Looks up a line without updating recency. Returns the way and its
    /// state when present.
    #[inline]
    pub fn probe(&self, line: LineAddr) -> Option<(WayIdx, S)> {
        let set = self.geom.set_of(line) as usize;
        let a = self.geom.assoc() as usize;
        let base = set * a;
        if self.memo {
            let h = self.way_hint[set].get() as usize;
            if h < a {
                let w = &self.ways[base + h];
                if w.valid && w.tag == line.raw() {
                    return Some((base + h, w.state));
                }
            }
        }
        let hit = self.ways[base..base + a]
            .iter()
            .position(|w| w.valid && w.tag == line.raw())?;
        self.way_hint[set].set(hit as u32);
        Some((base + hit, self.ways[base + hit].state))
    }

    /// Rewrites a resident line's state in place (no recency update),
    /// e.g. for coherence state transitions on snoops. Returns `false`
    /// when the line is absent.
    #[inline]
    pub fn update_state(&mut self, line: LineAddr, f: impl FnOnce(&mut S)) -> bool {
        let Some((way, _)) = self.probe(line) else {
            return false;
        };
        f(&mut self.ways[way].state);
        true
    }

    /// Overwrites a resident line's state. Returns `false` when absent.
    #[inline]
    pub fn set_state(&mut self, line: LineAddr, state: S) -> bool {
        self.update_state(line, |s| *s = state)
    }

    /// Marks a line as just-used (hit path). Returns `false` if absent.
    #[inline]
    pub fn touch(&mut self, line: LineAddr) -> bool {
        let Some((way, _)) = self.probe(line) else {
            return false;
        };
        self.promote(line, way);
        true
    }

    fn promote(&mut self, line: LineAddr, way: WayIdx) {
        self.stamp += 1;
        self.ways[way].stamp = self.stamp;
        if self.policy == ReplacementPolicy::TreePlru {
            let set = self.geom.set_of(line) as usize;
            let local = way - self.set_range(line).start;
            plru::touch(&mut self.plru[set], self.geom.assoc() as usize, local);
        }
    }

    /// Inserts a line, evicting a victim when the set is full.
    ///
    /// Returns the evicted line, if any. The victim is an invalid way when
    /// one exists, otherwise chosen by the replacement policy.
    ///
    /// # Panics
    ///
    /// Panics (debug) if the line is already present — callers must
    /// [`probe`](Self::probe) first and update state in place on a hit.
    pub fn insert(&mut self, line: LineAddr, state: S, pos: InsertPosition) -> Option<Evicted<S>> {
        debug_assert!(
            self.probe(line).is_none(),
            "insert of already-present line {line}"
        );
        let way = match self.invalid_way(line) {
            Some(w) => w,
            None => self.victim_way(line),
        };
        self.fill_way(line, way, state, pos)
    }

    /// Inserts a line into a *specific* way (used by the snarf mechanism,
    /// which picks its own victim with state preferences).
    ///
    /// Returns the previous occupant, if any.
    pub fn insert_into(
        &mut self,
        line: LineAddr,
        way: WayIdx,
        state: S,
        pos: InsertPosition,
    ) -> Option<Evicted<S>> {
        debug_assert!(self.set_range(line).contains(&way), "way not in line's set");
        self.fill_way(line, way, state, pos)
    }

    fn fill_way(
        &mut self,
        line: LineAddr,
        way: WayIdx,
        state: S,
        pos: InsertPosition,
    ) -> Option<Evicted<S>> {
        let evicted = if self.ways[way].valid {
            Some(Evicted {
                line: LineAddr::new(self.ways[way].tag),
                state: self.ways[way].state,
            })
        } else {
            self.valid_count += 1;
            None
        };
        let stamp = self.stamp_for(line, pos);
        let w = &mut self.ways[way];
        w.tag = line.raw();
        w.valid = true;
        w.state = state;
        w.stamp = stamp;
        let set = self.geom.set_of(line) as usize;
        let local = way - set * self.geom.assoc() as usize;
        // A just-filled line is the likeliest next probe target.
        self.way_hint[set].set(local as u32);
        if self.policy == ReplacementPolicy::TreePlru && pos == InsertPosition::Mru {
            plru::touch(&mut self.plru[set], self.geom.assoc() as usize, local);
        }
        evicted
    }

    fn stamp_for(&mut self, line: LineAddr, pos: InsertPosition) -> u64 {
        match pos {
            InsertPosition::Mru => {
                self.stamp += 1;
                self.stamp
            }
            InsertPosition::Lru => {
                let range = self.set_range(line);
                self.ways[range]
                    .iter()
                    .filter(|w| w.valid)
                    .map(|w| w.stamp)
                    .min()
                    .map_or(0, |m| m.saturating_sub(1))
            }
            InsertPosition::Mid => {
                let range = self.set_range(line);
                let (mut lo, mut hi) = (u64::MAX, 0u64);
                let mut any = false;
                for w in &self.ways[range] {
                    if w.valid {
                        lo = lo.min(w.stamp);
                        hi = hi.max(w.stamp);
                        any = true;
                    }
                }
                if any {
                    lo / 2 + hi / 2
                } else {
                    self.stamp += 1;
                    self.stamp
                }
            }
        }
    }

    /// First invalid way in the line's set, if any.
    pub fn invalid_way(&self, line: LineAddr) -> Option<WayIdx> {
        let range = self.set_range(line);
        let base = range.start;
        self.ways[range]
            .iter()
            .position(|w| !w.valid)
            .map(|i| base + i)
    }

    /// The way the replacement policy would victimize in this line's set
    /// (assumes the set has at least one valid way; invalid ways are
    /// preferred by [`insert`](Self::insert) before this is consulted).
    pub fn victim_way(&mut self, line: LineAddr) -> WayIdx {
        let range = self.set_range(line);
        let base = range.start;
        match self.policy {
            ReplacementPolicy::Lru => {
                let mut best = base;
                let mut best_stamp = u64::MAX;
                for (i, w) in self.ways[range].iter().enumerate() {
                    if w.stamp < best_stamp {
                        best_stamp = w.stamp;
                        best = base + i;
                    }
                }
                best
            }
            ReplacementPolicy::TreePlru => {
                let set = self.geom.set_of(line) as usize;
                base + plru::victim(self.plru[set], self.geom.assoc() as usize)
            }
            ReplacementPolicy::Random => base + self.rng.gen_range(self.geom.assoc()) as usize,
        }
    }

    /// Finds the best victim way among valid ways whose state satisfies
    /// `pred`, preferring the least recently used. Returns `None` when no
    /// way qualifies. Invalid ways are *not* returned — use
    /// [`invalid_way`](Self::invalid_way) first.
    ///
    /// This implements the snarf victim policy of §3: the caller first
    /// asks for an invalid way, then for the LRU way in `Shared` state.
    pub fn victim_way_by(&self, line: LineAddr, pred: impl Fn(&S) -> bool) -> Option<WayIdx> {
        let range = self.set_range(line);
        let base = range.start;
        self.ways[range]
            .iter()
            .enumerate()
            .filter(|(_, w)| w.valid && pred(&w.state))
            .min_by_key(|(i, w)| (w.stamp, *i))
            .map(|(i, _)| base + i)
    }

    /// The `k` least-recently-used valid ways in the line's set, most
    /// evictable first. Used by cost-aware replacement policies that
    /// re-rank the LRU tail (e.g. preferring victims known to be cheap
    /// to re-fetch). Returns fewer than `k` entries when the set has
    /// fewer valid ways.
    pub fn victim_candidates(&self, line: LineAddr, k: usize) -> Vec<(WayIdx, LineAddr)> {
        let range = self.set_range(line);
        let base = range.start;
        let mut ways: Vec<(u64, WayIdx, LineAddr)> = self.ways[range]
            .iter()
            .enumerate()
            .filter(|(_, w)| w.valid)
            .map(|(i, w)| (w.stamp, base + i, LineAddr::new(w.tag)))
            .collect();
        ways.sort_unstable_by_key(|&(stamp, i, _)| (stamp, i));
        ways.truncate(k);
        ways.into_iter().map(|(_, i, l)| (i, l)).collect()
    }

    /// Removes a line, returning its state if it was present.
    pub fn invalidate(&mut self, line: LineAddr) -> Option<S> {
        let range = self.set_range(line);
        for w in &mut self.ways[range] {
            if w.valid && w.tag == line.raw() {
                w.valid = false;
                self.valid_count -= 1;
                return Some(w.state);
            }
        }
        None
    }

    /// The line currently occupying `way`, if valid.
    pub fn line_at(&self, way: WayIdx) -> Option<(LineAddr, S)> {
        let w = &self.ways[way];
        w.valid.then(|| (LineAddr::new(w.tag), w.state))
    }

    /// Iterates over all valid lines (for verification and debug dumps).
    pub fn iter_valid(&self) -> impl Iterator<Item = (LineAddr, S)> + '_ {
        self.ways
            .iter()
            .filter(|w| w.valid)
            .map(|w| (LineAddr::new(w.tag), w.state))
    }
}

impl<S: Copy + Default + std::fmt::Debug> TagStorage<S> for GenericTagArray<S> {
    fn try_new(geom: CacheGeometry, policy: ReplacementPolicy) -> Result<Self, GeometryError> {
        GenericTagArray::try_new(geom, policy)
    }

    fn geometry(&self) -> CacheGeometry {
        GenericTagArray::geometry(self)
    }

    fn valid_lines(&self) -> u64 {
        GenericTagArray::valid_lines(self)
    }

    fn probe(&self, line: LineAddr) -> Option<(WayIdx, S)> {
        GenericTagArray::probe(self, line)
    }

    fn touch(&mut self, line: LineAddr) -> bool {
        GenericTagArray::touch(self, line)
    }

    fn update_state(&mut self, line: LineAddr, f: impl FnOnce(&mut S)) -> bool {
        GenericTagArray::update_state(self, line, f)
    }

    fn insert(&mut self, line: LineAddr, state: S, pos: InsertPosition) -> Option<Evicted<S>> {
        GenericTagArray::insert(self, line, state, pos)
    }

    fn invalidate(&mut self, line: LineAddr) -> Option<S> {
        GenericTagArray::invalidate(self, line)
    }
}
