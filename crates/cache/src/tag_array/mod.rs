//! Set-associative tag arrays generic over a per-line state payload.
//!
//! Two backends share one API surface:
//!
//! * [`PackedTagArray`] — the default: per-line state packed into one
//!   `u64` word (`valid | state | tag`, see [`PackedLine`]) stored
//!   struct-of-arrays, so a way scan is a handful of sequential u64
//!   loads and the common probe compiles to a masked-compare loop.
//! * [`GenericTagArray`] — the pre-packing `Vec` of struct-of-enums
//!   lines, kept as a differential oracle (and as storage for payloads
//!   too wide to pack, via [`WideHistoryTable`]).
//!
//! [`TagArray`] aliases the packed backend by default; building with
//! `--features legacy-tags` re-points the alias at the generic backend
//! so a whole simulator build can be diffed byte-for-byte against the
//! packed one (the same oracle pattern as the engine's `legacy-heap`).
//!
//! [`WideHistoryTable`]: crate::WideHistoryTable

mod generic;
mod packed;

use crate::{CacheGeometry, GeometryError, LineAddr, ReplacementPolicy};

pub use generic::GenericTagArray;
pub use packed::{packed_fits, PackedLine, PackedTagArray, PACKED_LINE_ADDR_BITS};

/// The default tag-array backend: packed words.
#[cfg(not(feature = "legacy-tags"))]
pub use packed::PackedTagArray as TagArray;

/// The differential-oracle backend selected by `--features legacy-tags`.
#[cfg(feature = "legacy-tags")]
pub use generic::GenericTagArray as TagArray;

/// Index of a way within a set.
pub type WayIdx = usize;

/// Where a newly inserted line lands in the recency stack.
///
/// Demand fills insert at [`Mru`](InsertPosition::Mru); the snarf
/// mechanism's insertion position is a tunable (§3 of the paper discusses
/// managing recipient LRU state to keep snarfed lines resident until
/// reuse).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum InsertPosition {
    /// Most recently used — maximum residency.
    #[default]
    Mru,
    /// Halfway down the recency stack.
    Mid,
    /// Least recently used — first out.
    Lru,
}

/// A line evicted by [`TagArray::insert`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Evicted<S> {
    /// The victim's line address.
    pub line: LineAddr,
    /// The victim's state payload at eviction time.
    pub state: S,
}

/// A per-line state payload that fits the packed tag word.
///
/// The packed backend stores each line as one `u64` of
/// `valid | state | tag`; a state type declares how many of those bits
/// it needs ([`BITS`](Self::BITS)) and how to round-trip through them.
/// Implementors must satisfy `from_bits(to_bits(s)) == s` and keep
/// `to_bits` within `BITS` bits; the array debug-asserts both.
///
/// Implemented by the coherence enums (`L2State`: 3 bits, `L3State`:
/// 1 bit — in `cmpsim-coherence`), the snarf use-bit (`bool`), `()` for
/// tag-only tables (WBHT, L1 filters), and small unsigned integers for
/// tests. Payloads wider than the word can spare (e.g. the
/// reuse-distance predictor's two-counter entry) use the generic
/// backend instead via [`WideHistoryTable`](crate::WideHistoryTable).
pub trait PackedState: Copy + Default {
    /// State bits consumed in the packed word (0 for tag-only payloads).
    const BITS: u32;

    /// Encodes the state into its low [`BITS`](Self::BITS) bits.
    fn to_bits(self) -> u64;

    /// Decodes a value previously produced by [`to_bits`](Self::to_bits).
    fn from_bits(bits: u64) -> Self;
}

impl PackedState for () {
    const BITS: u32 = 0;

    #[inline]
    fn to_bits(self) -> u64 {
        0
    }

    #[inline]
    fn from_bits(_bits: u64) -> Self {}
}

impl PackedState for bool {
    const BITS: u32 = 1;

    #[inline]
    fn to_bits(self) -> u64 {
        self as u64
    }

    #[inline]
    fn from_bits(bits: u64) -> Self {
        bits != 0
    }
}

impl PackedState for u8 {
    const BITS: u32 = 8;

    #[inline]
    fn to_bits(self) -> u64 {
        self as u64
    }

    #[inline]
    fn from_bits(bits: u64) -> Self {
        bits as u8
    }
}

impl PackedState for u16 {
    const BITS: u32 = 16;

    #[inline]
    fn to_bits(self) -> u64 {
        self as u64
    }

    #[inline]
    fn from_bits(bits: u64) -> Self {
        bits as u16
    }
}

/// The backend-independent tag-storage surface.
///
/// [`HistoryTable`](crate::HistoryTable) is generic over this trait so
/// the same table logic runs on packed words (WBHT tags, snarf use
/// bits) and on generic struct-of-enums lines (payloads too wide to
/// pack). Both [`PackedTagArray`] and [`GenericTagArray`] implement it
/// by forwarding to their inherent methods.
pub trait TagStorage<S>: std::fmt::Debug + Clone + Sized {
    /// Creates empty storage, validating backend-specific limits.
    ///
    /// # Errors
    ///
    /// Returns [`GeometryError`] when the geometry violates a backend
    /// constraint (e.g. the packed word cannot fit the tag bits).
    fn try_new(geom: CacheGeometry, policy: ReplacementPolicy) -> Result<Self, GeometryError>;

    /// The geometry this storage was built with.
    fn geometry(&self) -> CacheGeometry;

    /// Number of valid lines currently resident.
    fn valid_lines(&self) -> u64;

    /// Looks up a line without updating recency.
    fn probe(&self, line: LineAddr) -> Option<(WayIdx, S)>;

    /// Marks a line as just-used (hit path). Returns `false` if absent.
    fn touch(&mut self, line: LineAddr) -> bool;

    /// Rewrites a resident line's state in place (no recency update).
    /// Returns `false` when the line is absent.
    fn update_state(&mut self, line: LineAddr, f: impl FnOnce(&mut S)) -> bool;

    /// Inserts a line, evicting a victim when the set is full.
    fn insert(&mut self, line: LineAddr, state: S, pos: InsertPosition) -> Option<Evicted<S>>;

    /// Removes a line, returning its state if it was present.
    fn invalidate(&mut self, line: LineAddr) -> Option<S>;
}

/// Sentinel for "no memoized way" (associativities are far below this).
pub(crate) const NO_HINT: u32 = u32::MAX;

/// Tree-PLRU bit manipulation shared by both backends.
///
/// One `u64` of internal-node "victim points right" bits per set, root
/// at bit 0, children of node `n` at `2n+1` / `2n+2`.
pub(crate) mod plru {
    /// Re-points the victim path away from `way` after a touch.
    pub(crate) fn touch(bits: &mut u64, assoc: usize, way: usize) {
        let mut node = 0usize;
        let mut lo = 0usize;
        let mut hi = assoc;
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            if way < mid {
                // went left: point victim bit right (1)
                *bits |= 1 << node;
                node = 2 * node + 1;
                hi = mid;
            } else {
                *bits &= !(1 << node);
                node = 2 * node + 2;
                lo = mid;
            }
        }
    }

    /// Follows the victim path to a way index.
    pub(crate) fn victim(bits: u64, assoc: usize) -> usize {
        let mut node = 0usize;
        let mut lo = 0usize;
        let mut hi = assoc;
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            if bits & (1 << node) != 0 {
                // victim bit points right
                node = 2 * node + 2;
                lo = mid;
            } else {
                node = 2 * node + 1;
                hi = mid;
            }
        }
        lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmpsim_engine::SplitMix64;

    fn small() -> TagArray<u8> {
        // 4 sets x 2 ways, 128 B lines.
        TagArray::new(
            CacheGeometry::new(1024, 2, 128).unwrap(),
            ReplacementPolicy::Lru,
        )
    }

    #[test]
    fn probe_miss_then_hit() {
        let mut t = small();
        let l = LineAddr::new(12);
        assert!(t.probe(l).is_none());
        t.insert(l, 7, InsertPosition::Mru);
        assert_eq!(t.probe(l), Some((t.probe(l).unwrap().0, 7)));
        assert_eq!(t.valid_lines(), 1);
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut t = small();
        // Set 0 holds lines 0, 4, 8, ...
        t.insert(LineAddr::new(0), 1, InsertPosition::Mru);
        t.insert(LineAddr::new(4), 2, InsertPosition::Mru);
        t.touch(LineAddr::new(0)); // 4 is now LRU
        let ev = t.insert(LineAddr::new(8), 3, InsertPosition::Mru).unwrap();
        assert_eq!(ev.line, LineAddr::new(4));
        assert_eq!(ev.state, 2);
        assert!(t.probe(LineAddr::new(0)).is_some());
    }

    #[test]
    fn lru_insert_position_lru_is_first_victim() {
        let mut t = small();
        t.insert(LineAddr::new(0), 1, InsertPosition::Mru);
        t.insert(LineAddr::new(4), 2, InsertPosition::Lru); // parked at LRU
        let ev = t.insert(LineAddr::new(8), 3, InsertPosition::Mru).unwrap();
        assert_eq!(ev.line, LineAddr::new(4));
    }

    #[test]
    fn invalidate_removes() {
        let mut t = small();
        t.insert(LineAddr::new(0), 9, InsertPosition::Mru);
        assert_eq!(t.invalidate(LineAddr::new(0)), Some(9));
        assert_eq!(t.invalidate(LineAddr::new(0)), None);
        assert_eq!(t.valid_lines(), 0);
    }

    #[test]
    fn update_state_rewrites_in_place() {
        let mut t = small();
        t.insert(LineAddr::new(0), 1, InsertPosition::Mru);
        assert!(t.update_state(LineAddr::new(0), |s| *s = 42));
        assert_eq!(t.probe(LineAddr::new(0)).unwrap().1, 42);
        assert!(!t.update_state(LineAddr::new(4), |s| *s = 9));
    }

    #[test]
    fn victim_way_by_prefers_lru_matching() {
        let mut t = small();
        t.insert(LineAddr::new(0), 10, InsertPosition::Mru);
        t.insert(LineAddr::new(4), 20, InsertPosition::Mru);
        // Only states >= 15 qualify.
        let w = t.victim_way_by(LineAddr::new(8), |&s| s >= 15).unwrap();
        assert_eq!(t.line_at(w).unwrap().0, LineAddr::new(4));
        assert!(t.victim_way_by(LineAddr::new(8), |&s| s > 99).is_none());
    }

    #[test]
    fn insert_into_specific_way() {
        let mut t = small();
        t.insert(LineAddr::new(0), 1, InsertPosition::Mru);
        let w = t.probe(LineAddr::new(0)).unwrap().0;
        let ev = t
            .insert_into(LineAddr::new(8), w, 5, InsertPosition::Mid)
            .unwrap();
        assert_eq!(ev.line, LineAddr::new(0));
        assert!(t.probe(LineAddr::new(8)).is_some());
        assert!(t.probe(LineAddr::new(0)).is_none());
    }

    #[test]
    fn different_sets_do_not_conflict() {
        let mut t = small();
        for i in 0..4 {
            assert!(t
                .insert(LineAddr::new(i), i as u8, InsertPosition::Mru)
                .is_none());
        }
        assert_eq!(t.valid_lines(), 4);
        assert_eq!(t.iter_valid().count(), 4);
    }

    #[test]
    fn tree_plru_victimizes_untouched() {
        let geom = CacheGeometry::new(2048, 4, 128).unwrap(); // 4 sets x 4 ways
        let mut t: TagArray<u8> = TagArray::new(geom, ReplacementPolicy::TreePlru);
        // Fill set 0: lines 0,4,8,12.
        for (i, l) in [0u64, 4, 8, 12].iter().enumerate() {
            t.insert(LineAddr::new(*l), i as u8, InsertPosition::Mru);
        }
        // Touch 0, 8, 4: the root bit last pointed away from way1 (line 4,
        // left subtree) and the right subtree bit away from way2 (line 8),
        // so tree-PLRU victimizes way3 = line 12.
        t.touch(LineAddr::new(0));
        t.touch(LineAddr::new(8));
        t.touch(LineAddr::new(4));
        let ev = t.insert(LineAddr::new(16), 9, InsertPosition::Mru).unwrap();
        assert_eq!(ev.line, LineAddr::new(12));
    }

    #[test]
    fn random_policy_deterministic() {
        let geom = CacheGeometry::new(1024, 2, 128).unwrap();
        let mut a: TagArray<u8> = TagArray::new(geom, ReplacementPolicy::Random);
        let mut b: TagArray<u8> = TagArray::new(geom, ReplacementPolicy::Random);
        for i in 0..20 {
            let ea = a.insert(LineAddr::new(i * 4), 0, InsertPosition::Mru);
            let eb = b.insert(LineAddr::new(i * 4), 0, InsertPosition::Mru);
            assert_eq!(ea.map(|e| e.line), eb.map(|e| e.line));
        }
    }

    #[test]
    fn victim_candidates_ordered_by_recency() {
        let geom = CacheGeometry::new(2048, 4, 128).unwrap();
        let mut t: TagArray<u8> = TagArray::new(geom, ReplacementPolicy::Lru);
        for (i, l) in [0u64, 4, 8, 12].iter().enumerate() {
            t.insert(LineAddr::new(*l), i as u8, InsertPosition::Mru);
        }
        t.touch(LineAddr::new(0)); // 4 becomes the coldest
        let c = t.victim_candidates(LineAddr::new(16), 2);
        assert_eq!(c.len(), 2);
        assert_eq!(c[0].1, LineAddr::new(4));
        assert_eq!(c[1].1, LineAddr::new(8));
        // k larger than valid ways is clipped.
        assert_eq!(t.victim_candidates(LineAddr::new(16), 99).len(), 4);
    }

    #[test]
    fn way_memo_is_behaviour_invisible() {
        // Mirror a random probe/touch/insert/invalidate schedule onto two
        // arrays, one with the way-memoization fast path disabled, and
        // demand identical probe results (way AND state), identical
        // evictions, and identical LRU stamps throughout.
        let geom = CacheGeometry::new(4096, 8, 128).unwrap(); // 4 sets x 8 ways
        let mut on: TagArray<u8> = TagArray::new(geom, ReplacementPolicy::Lru);
        let mut off: TagArray<u8> = TagArray::new(geom, ReplacementPolicy::Lru);
        off.set_way_memo(false);
        let mut rng = SplitMix64::new(0xDEAD_BEEF);
        for step in 0..20_000u64 {
            let line = LineAddr::new(rng.gen_range(64));
            match rng.gen_range(4) {
                0 => {
                    let a = on.probe(line);
                    let b = off.probe(line);
                    assert_eq!(a, b, "probe diverged at step {step}");
                }
                1 => {
                    assert_eq!(on.touch(line), off.touch(line), "touch @ {step}");
                }
                2 => {
                    let st = (step & 0xFF) as u8;
                    if on.probe(line).is_none() {
                        let a = on.insert(line, st, InsertPosition::Mru);
                        let b = off.insert(line, st, InsertPosition::Mru);
                        assert_eq!(a, b, "eviction diverged at step {step}");
                    }
                }
                _ => {
                    assert_eq!(on.invalidate(line), off.invalidate(line));
                }
            }
            assert_eq!(on.valid_lines(), off.valid_lines());
        }
        // Full-state comparison at the end: every resident line, state,
        // and victim ordering matches.
        let a: Vec<_> = on.iter_valid().collect();
        let b: Vec<_> = off.iter_valid().collect();
        assert_eq!(a, b);
        for set_line in 0..4u64 {
            let l = LineAddr::new(set_line);
            assert_eq!(on.victim_candidates(l, 8), off.victim_candidates(l, 8));
        }
    }

    #[test]
    fn stale_hint_never_lies() {
        // Hit a line (hint points at it), invalidate it, re-insert a
        // *different* line into the same way, then probe the old line:
        // the stale hint must be rejected by tag compare.
        let mut t = small();
        t.insert(LineAddr::new(0), 1, InsertPosition::Mru);
        assert!(t.probe(LineAddr::new(0)).is_some());
        let way = t.probe(LineAddr::new(0)).unwrap().0;
        t.invalidate(LineAddr::new(0));
        assert!(t.probe(LineAddr::new(0)).is_none());
        t.insert_into(LineAddr::new(8), way, 2, InsertPosition::Mru);
        assert!(t.probe(LineAddr::new(0)).is_none());
        assert_eq!(t.probe(LineAddr::new(8)).unwrap().1, 2);
    }

    #[test]
    fn mid_insert_sits_between() {
        let geom = CacheGeometry::new(2048, 4, 128).unwrap();
        let mut t: TagArray<u8> = TagArray::new(geom, ReplacementPolicy::Lru);
        t.insert(LineAddr::new(0), 0, InsertPosition::Mru);
        t.insert(LineAddr::new(4), 1, InsertPosition::Mru);
        t.insert(LineAddr::new(8), 2, InsertPosition::Mru);
        // Mid insert: should be evicted before the MRU lines but after
        // the oldest line is gone.
        t.insert(LineAddr::new(12), 3, InsertPosition::Mid);
        let ev1 = t.insert(LineAddr::new(16), 4, InsertPosition::Mru).unwrap();
        assert_eq!(ev1.line, LineAddr::new(0)); // true LRU goes first
        let ev2 = t.insert(LineAddr::new(20), 5, InsertPosition::Mru).unwrap();
        assert_eq!(ev2.line, LineAddr::new(12)); // mid-inserted goes next
    }
}
