//! Cache-organized history tables.
//!
//! The paper's two mechanisms are both built on "a small lookup table …
//! organized and accessed just like a cache tag array" (§2): the
//! Write-Back History Table stores bare tags, the snarf (reuse) table
//! stores tags plus a *use bit*. [`HistoryTable`] provides both, generic
//! over a small payload.

use std::marker::PhantomData;

use crate::{
    CacheGeometry, GenericTagArray, GeometryError, InsertPosition, LineAddr, ReplacementPolicy,
    TagArray, TagStorage,
};

/// Statistics of a [`HistoryTable`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HistoryStats {
    /// Lookups that found the queried line.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Allocations of new entries.
    pub allocs: u64,
    /// Entries lost to replacement (table conflict evictions).
    pub evictions: u64,
    /// Explicit invalidations.
    pub invalidations: u64,
}

/// A small, set-associative tag table that remembers recently seen lines.
///
/// Entries age out by LRU replacement exactly like cache lines — "lines
/// disappear from the WBHT due to the fact that there are many fewer
/// entries than possible tag values" (§2). Lookups are *performance
/// hints*: stale or missing entries only cost cycles, never correctness,
/// which is why the table may be updated lazily off the miss path.
///
/// # Example
///
/// ```
/// use cmpsim_cache::{HistoryTable, LineAddr};
///
/// // A 1K-entry, 16-way WBHT (payload () = tag-only).
/// let mut wbht: HistoryTable<()> = HistoryTable::new(1024, 16)?;
/// let line = LineAddr::new(0xABC);
/// assert!(!wbht.contains(line));
/// wbht.record(line, ());
/// assert!(wbht.contains(line));
/// # Ok::<(), cmpsim_cache::GeometryError>(())
/// ```
#[derive(Debug, Clone)]
pub struct HistoryTable<P: Copy + Default, A: TagStorage<P> = TagArray<P>> {
    tags: A,
    stats: HistoryStats,
    _payload: PhantomData<P>,
}

/// A [`HistoryTable`] on the generic (unpacked) backend, for payloads
/// too wide to fit the packed tag word's spare bits — e.g. the
/// reuse-distance predictor's two-`u64` entry. Tag-width rules never
/// apply here; everything else (LRU aging, stats, API) is identical.
pub type WideHistoryTable<P> = HistoryTable<P, GenericTagArray<P>>;

impl<P: Copy + Default, A: TagStorage<P>> HistoryTable<P, A> {
    /// Creates a table with `entries` total entries and `assoc` ways,
    /// with LRU replacement (as specified in the paper).
    ///
    /// # Errors
    ///
    /// Returns [`GeometryError`] when `entries`/`assoc` do not form a
    /// valid power-of-two set-associative organization.
    pub fn new(entries: u64, assoc: u64) -> Result<Self, GeometryError> {
        // Line size is irrelevant for a tag-only table; use 1 "byte" per
        // entry so `entries` is the capacity.
        let geom = CacheGeometry::from_entries(entries, assoc, 1)?;
        Ok(HistoryTable {
            tags: A::try_new(geom, ReplacementPolicy::Lru)?,
            stats: HistoryStats::default(),
            _payload: PhantomData,
        })
    }

    /// Total entry capacity.
    pub fn capacity(&self) -> u64 {
        self.tags.geometry().num_lines()
    }

    /// Number of currently valid entries.
    pub fn len(&self) -> u64 {
        self.tags.valid_lines()
    }

    /// `true` when no entries are valid.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Checks for a line *without* updating recency or stats (pure peek).
    pub fn peek(&self, line: LineAddr) -> Option<P> {
        self.tags.probe(line).map(|(_, p)| p)
    }

    /// Looks up a line, updating recency and hit/miss stats. Returns the
    /// payload when present.
    pub fn lookup(&mut self, line: LineAddr) -> Option<P> {
        match self.tags.probe(line) {
            Some((_, p)) => {
                self.tags.touch(line);
                self.stats.hits += 1;
                Some(p)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// `true` when the line is present (counts as a lookup).
    pub fn contains(&mut self, line: LineAddr) -> bool {
        self.lookup(line).is_some()
    }

    /// Records a line with the given payload: allocates a fresh entry (or
    /// refreshes an existing one), promoting it to MRU.
    pub fn record(&mut self, line: LineAddr, payload: P) {
        if self.tags.update_state(line, |p| *p = payload) {
            self.tags.touch(line);
            return;
        }
        self.stats.allocs += 1;
        if self
            .tags
            .insert(line, payload, InsertPosition::Mru)
            .is_some()
        {
            self.stats.evictions += 1;
        }
    }

    /// Updates the payload of an existing entry in place (no recency
    /// update). Returns `false` when the line is absent.
    pub fn update(&mut self, line: LineAddr, f: impl FnOnce(&mut P)) -> bool {
        self.tags.update_state(line, f)
    }

    /// Removes a line's entry, returning its payload.
    pub fn invalidate(&mut self, line: LineAddr) -> Option<P> {
        let r = self.tags.invalidate(line);
        if r.is_some() {
            self.stats.invalidations += 1;
        }
        r
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> HistoryStats {
        self.stats
    }

    /// Hit rate of lookups so far (0 when no lookups).
    pub fn hit_rate(&self) -> f64 {
        let total = self.stats.hits + self.stats.misses;
        if total == 0 {
            0.0
        } else {
            self.stats.hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_then_lookup() {
        let mut t: HistoryTable<()> = HistoryTable::new(64, 4).unwrap();
        let l = LineAddr::new(123);
        assert_eq!(t.lookup(l), None);
        t.record(l, ());
        assert_eq!(t.lookup(l), Some(()));
        assert_eq!(t.stats().hits, 1);
        assert_eq!(t.stats().misses, 1);
        assert_eq!(t.stats().allocs, 1);
    }

    #[test]
    fn capacity_and_len() {
        let mut t: HistoryTable<()> = HistoryTable::new(64, 4).unwrap();
        assert_eq!(t.capacity(), 64);
        assert!(t.is_empty());
        for i in 0..10 {
            t.record(LineAddr::new(i), ());
        }
        assert_eq!(t.len(), 10);
    }

    #[test]
    fn conflict_eviction_ages_out_old_tags() {
        // 4 entries, 2-way -> 2 sets. Lines with the same parity collide.
        let mut t: HistoryTable<()> = HistoryTable::new(4, 2).unwrap();
        t.record(LineAddr::new(0), ());
        t.record(LineAddr::new(2), ());
        t.record(LineAddr::new(4), ()); // evicts line 0 (LRU)
        assert_eq!(t.stats().evictions, 1);
        assert!(!t.contains(LineAddr::new(0)));
        assert!(t.contains(LineAddr::new(2)));
        assert!(t.contains(LineAddr::new(4)));
    }

    #[test]
    fn lookup_refreshes_lru() {
        let mut t: HistoryTable<()> = HistoryTable::new(4, 2).unwrap();
        t.record(LineAddr::new(0), ());
        t.record(LineAddr::new(2), ());
        assert!(t.contains(LineAddr::new(0))); // refresh 0; 2 becomes LRU
        t.record(LineAddr::new(4), ());
        assert!(t.contains(LineAddr::new(0)));
        assert!(!t.contains(LineAddr::new(2)));
    }

    #[test]
    fn use_bit_payload() {
        // Snarf-table usage: payload is a "has been missed on" bit.
        let mut t: HistoryTable<bool> = HistoryTable::new(16, 4).unwrap();
        let l = LineAddr::new(9);
        t.record(l, false);
        assert_eq!(t.lookup(l), Some(false));
        assert!(t.update(l, |b| *b = true));
        assert_eq!(t.lookup(l), Some(true));
        assert!(!t.update(LineAddr::new(10), |b| *b = true));
    }

    #[test]
    fn record_refreshes_existing() {
        let mut t: HistoryTable<u8> = HistoryTable::new(16, 4).unwrap();
        t.record(LineAddr::new(1), 1);
        t.record(LineAddr::new(1), 2);
        assert_eq!(t.stats().allocs, 1); // second record is a refresh
        assert_eq!(t.lookup(LineAddr::new(1)), Some(2));
    }

    #[test]
    fn invalidate_counts() {
        let mut t: HistoryTable<()> = HistoryTable::new(16, 4).unwrap();
        t.record(LineAddr::new(1), ());
        assert_eq!(t.invalidate(LineAddr::new(1)), Some(()));
        assert_eq!(t.invalidate(LineAddr::new(1)), None);
        assert_eq!(t.stats().invalidations, 1);
    }

    #[test]
    fn peek_does_not_touch_stats() {
        let mut t: HistoryTable<()> = HistoryTable::new(16, 4).unwrap();
        t.record(LineAddr::new(1), ());
        assert!(t.peek(LineAddr::new(1)).is_some());
        assert!(t.peek(LineAddr::new(2)).is_none());
        assert_eq!(t.stats().hits + t.stats().misses, 0);
    }

    #[test]
    fn paper_sized_wbht() {
        // 32K entries, 16-way — the paper's WBHT.
        let t: HistoryTable<()> = HistoryTable::new(32 * 1024, 16).unwrap();
        assert_eq!(t.capacity(), 32 * 1024);
    }

    #[test]
    fn wide_table_holds_unpackable_payloads() {
        // Two u64s can never fit the packed word; the wide alias stores
        // them on the generic backend with identical table semantics.
        #[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
        struct Wide {
            a: u64,
            b: u64,
        }
        let mut t: crate::WideHistoryTable<Wide> = HistoryTable::new(16, 4).unwrap();
        let l = LineAddr::new(7);
        t.record(l, Wide { a: 1, b: 2 });
        assert_eq!(t.lookup(l), Some(Wide { a: 1, b: 2 }));
        assert!(t.update(l, |w| w.b = 9));
        assert_eq!(t.peek(l), Some(Wide { a: 1, b: 9 }));
    }

    #[test]
    fn hit_rate_empty_is_zero() {
        let t: HistoryTable<()> = HistoryTable::new(16, 4).unwrap();
        assert_eq!(t.hit_rate(), 0.0);
    }
}
