//! Replacement policy selection.

/// Replacement policy for a [`TagArray`](crate::TagArray).
///
/// The modelled system uses LRU everywhere (the paper's WBHT explicitly
/// uses LRU); tree-PLRU and random are provided for ablation studies of
/// the history tables' sensitivity to replacement precision.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ReplacementPolicy {
    /// True least-recently-used via per-way stamps.
    #[default]
    Lru,
    /// Tree pseudo-LRU (requires power-of-two associativity).
    TreePlru,
    /// Uniform random victim selection (deterministic, seeded).
    Random,
}

impl std::fmt::Display for ReplacementPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ReplacementPolicy::Lru => "lru",
            ReplacementPolicy::TreePlru => "tree-plru",
            ReplacementPolicy::Random => "random",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names() {
        assert_eq!(ReplacementPolicy::Lru.to_string(), "lru");
        assert_eq!(ReplacementPolicy::TreePlru.to_string(), "tree-plru");
        assert_eq!(ReplacementPolicy::Random.to_string(), "random");
    }

    #[test]
    fn default_is_lru() {
        assert_eq!(ReplacementPolicy::default(), ReplacementPolicy::Lru);
    }
}
