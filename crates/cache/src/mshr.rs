//! Miss-status holding registers (MSHRs).

use std::error::Error;
use std::fmt;

use crate::LineAddr;

/// Identifier of an allocated MSHR entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MshrId(usize);

impl MshrId {
    /// Raw index (for logging).
    pub fn index(self) -> usize {
        self.0
    }
}

/// Errors from MSHR allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MshrError {
    /// All MSHRs are in use; the miss must stall.
    Full,
}

impl fmt::Display for MshrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MshrError::Full => f.write_str("all MSHRs in use"),
        }
    }
}

impl Error for MshrError {}

/// One register slot. Freed slots keep their `waiters` vector so its
/// buffer is recycled by the next allocation (no per-miss allocation
/// once the file has warmed up).
#[derive(Debug, Clone)]
struct Slot<W> {
    line: LineAddr,
    active: bool,
    waiters: Vec<W>,
}

/// A file of miss-status holding registers with secondary-miss merging.
///
/// A *primary* miss allocates an entry and triggers a bus request; a
/// *secondary* miss to the same line merges into the existing entry and
/// waits for the same fill. `W` is the waiter token type (thread ids in
/// this simulator).
///
/// The file is a fixed slab of `capacity` slots searched linearly — a
/// hardware MSHR file is a handful of CAM entries, and at that size a
/// linear tag compare beats any hash map.
///
/// # Example
///
/// ```
/// use cmpsim_cache::{MshrFile, LineAddr};
///
/// let mut mshrs: MshrFile<u32> = MshrFile::new(4);
/// let line = LineAddr::new(7);
/// assert!(mshrs.allocate(line, 0).unwrap()); // primary
/// assert!(!mshrs.allocate(line, 1).unwrap()); // secondary, merged
/// let waiters = mshrs.complete(line).unwrap();
/// assert_eq!(waiters, vec![0, 1]);
/// ```
#[derive(Debug, Clone)]
pub struct MshrFile<W> {
    slots: Vec<Slot<W>>,
    len: usize,
    /// Highest simultaneous occupancy seen (for sizing studies).
    high_water: usize,
    primary: u64,
    secondary: u64,
    stalls: u64,
}

impl<W> MshrFile<W> {
    /// Creates a file with `capacity` registers.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "MSHR file must have at least one register");
        MshrFile {
            slots: (0..capacity)
                .map(|_| Slot {
                    line: LineAddr::new(0),
                    active: false,
                    waiters: Vec::new(),
                })
                .collect(),
            len: 0,
            high_water: 0,
            primary: 0,
            secondary: 0,
            stalls: 0,
        }
    }

    #[inline]
    fn find(&self, line: LineAddr) -> Option<usize> {
        self.slots.iter().position(|s| s.active && s.line == line)
    }

    /// Registers a miss on `line` by `waiter`.
    ///
    /// Returns `Ok(true)` for a primary miss (caller must issue the bus
    /// request), `Ok(false)` for a merged secondary miss.
    ///
    /// # Errors
    ///
    /// [`MshrError::Full`] when the miss would need a new register and
    /// none is free: the cache must stall the request.
    pub fn allocate(&mut self, line: LineAddr, waiter: W) -> Result<bool, MshrError> {
        if let Some(i) = self.find(line) {
            self.slots[i].waiters.push(waiter);
            self.secondary += 1;
            return Ok(false);
        }
        if self.len >= self.slots.len() {
            self.stalls += 1;
            return Err(MshrError::Full);
        }
        let slot = self
            .slots
            .iter_mut()
            .find(|s| !s.active)
            .expect("len < capacity implies a free slot");
        slot.line = line;
        slot.active = true;
        slot.waiters.clear();
        slot.waiters.push(waiter);
        self.len += 1;
        self.high_water = self.high_water.max(self.len);
        self.primary += 1;
        Ok(true)
    }

    /// Completes the miss on `line`, appending all merged waiters to
    /// `out` (which is *not* cleared first). Returns `true` when an MSHR
    /// was outstanding for the line.
    ///
    /// This is the allocation-free form of [`complete`](Self::complete):
    /// the register's waiter buffer stays in the slab for reuse and the
    /// caller recycles its own scratch vector.
    pub fn complete_into(&mut self, line: LineAddr, out: &mut Vec<W>) -> bool {
        match self.find(line) {
            Some(i) => {
                let slot = &mut self.slots[i];
                slot.active = false;
                out.append(&mut slot.waiters);
                self.len -= 1;
                true
            }
            None => false,
        }
    }

    /// Completes the miss on `line`, returning all merged waiters.
    ///
    /// Returns `None` when no MSHR is outstanding for the line.
    pub fn complete(&mut self, line: LineAddr) -> Option<Vec<W>> {
        let mut out = Vec::new();
        self.complete_into(line, &mut out).then_some(out)
    }

    /// `true` when a miss on `line` is already outstanding.
    #[inline]
    pub fn contains(&self, line: LineAddr) -> bool {
        self.find(line).is_some()
    }

    /// Number of registers currently in use.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no registers are in use.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Register capacity.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Highest simultaneous occupancy observed.
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// (primary, secondary, stall) counts.
    pub fn counts(&self) -> (u64, u64, u64) {
        (self.primary, self.secondary, self.stalls)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primary_then_secondary() {
        let mut m: MshrFile<u32> = MshrFile::new(2);
        assert_eq!(m.allocate(LineAddr::new(1), 10), Ok(true));
        assert_eq!(m.allocate(LineAddr::new(1), 11), Ok(false));
        assert_eq!(m.len(), 1);
        assert_eq!(m.complete(LineAddr::new(1)), Some(vec![10, 11]));
        assert!(m.is_empty());
        assert_eq!(m.counts(), (1, 1, 0));
    }

    #[test]
    fn full_file_stalls() {
        let mut m: MshrFile<u32> = MshrFile::new(2);
        m.allocate(LineAddr::new(1), 0).unwrap();
        m.allocate(LineAddr::new(2), 0).unwrap();
        assert_eq!(m.allocate(LineAddr::new(3), 0), Err(MshrError::Full));
        // Secondary to an existing line still merges even when full.
        assert_eq!(m.allocate(LineAddr::new(2), 1), Ok(false));
        assert_eq!(m.counts().2, 1);
    }

    #[test]
    fn complete_unknown_is_none() {
        let mut m: MshrFile<u32> = MshrFile::new(2);
        assert_eq!(m.complete(LineAddr::new(9)), None);
        let mut scratch = Vec::new();
        assert!(!m.complete_into(LineAddr::new(9), &mut scratch));
        assert!(scratch.is_empty());
    }

    #[test]
    fn high_water_tracks_peak() {
        let mut m: MshrFile<u32> = MshrFile::new(4);
        m.allocate(LineAddr::new(1), 0).unwrap();
        m.allocate(LineAddr::new(2), 0).unwrap();
        m.allocate(LineAddr::new(3), 0).unwrap();
        m.complete(LineAddr::new(1));
        m.complete(LineAddr::new(2));
        assert_eq!(m.high_water(), 3);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn contains_reflects_outstanding() {
        let mut m: MshrFile<u32> = MshrFile::new(2);
        assert!(!m.contains(LineAddr::new(5)));
        m.allocate(LineAddr::new(5), 0).unwrap();
        assert!(m.contains(LineAddr::new(5)));
        m.complete(LineAddr::new(5));
        assert!(!m.contains(LineAddr::new(5)));
    }

    #[test]
    fn slots_recycle_after_complete() {
        let mut m: MshrFile<u32> = MshrFile::new(2);
        let mut scratch = Vec::new();
        for round in 0..100 {
            m.allocate(LineAddr::new(round), 0).unwrap();
            m.allocate(LineAddr::new(round), 1).unwrap();
            assert!(m.complete_into(LineAddr::new(round), &mut scratch));
            assert_eq!(scratch, vec![0, 1]);
            scratch.clear();
            assert!(m.is_empty());
        }
        assert_eq!(m.counts(), (100, 100, 0));
        assert_eq!(m.high_water(), 1);
    }

    #[test]
    fn complete_into_appends() {
        let mut m: MshrFile<u32> = MshrFile::new(4);
        m.allocate(LineAddr::new(1), 7).unwrap();
        let mut out = vec![99];
        assert!(m.complete_into(LineAddr::new(1), &mut out));
        assert_eq!(out, vec![99, 7]);
    }

    #[test]
    #[should_panic(expected = "at least one register")]
    fn zero_capacity_panics() {
        let _m: MshrFile<u32> = MshrFile::new(0);
    }
}
