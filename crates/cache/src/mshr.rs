//! Miss-status holding registers (MSHRs).

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use crate::LineAddr;

/// Identifier of an allocated MSHR entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MshrId(usize);

impl MshrId {
    /// Raw index (for logging).
    pub fn index(self) -> usize {
        self.0
    }
}

/// Errors from MSHR allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MshrError {
    /// All MSHRs are in use; the miss must stall.
    Full,
}

impl fmt::Display for MshrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MshrError::Full => f.write_str("all MSHRs in use"),
        }
    }
}

impl Error for MshrError {}

#[derive(Debug, Clone)]
struct Entry<W> {
    line: LineAddr,
    waiters: Vec<W>,
}

/// A file of miss-status holding registers with secondary-miss merging.
///
/// A *primary* miss allocates an entry and triggers a bus request; a
/// *secondary* miss to the same line merges into the existing entry and
/// waits for the same fill. `W` is the waiter token type (thread ids in
/// this simulator).
///
/// # Example
///
/// ```
/// use cmpsim_cache::{MshrFile, LineAddr};
///
/// let mut mshrs: MshrFile<u32> = MshrFile::new(4);
/// let line = LineAddr::new(7);
/// assert!(mshrs.allocate(line, 0).unwrap()); // primary
/// assert!(!mshrs.allocate(line, 1).unwrap()); // secondary, merged
/// let waiters = mshrs.complete(line).unwrap();
/// assert_eq!(waiters, vec![0, 1]);
/// ```
#[derive(Debug, Clone)]
pub struct MshrFile<W> {
    capacity: usize,
    entries: HashMap<LineAddr, Entry<W>>,
    /// Highest simultaneous occupancy seen (for sizing studies).
    high_water: usize,
    primary: u64,
    secondary: u64,
    stalls: u64,
}

impl<W> MshrFile<W> {
    /// Creates a file with `capacity` registers.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "MSHR file must have at least one register");
        MshrFile {
            capacity,
            entries: HashMap::new(),
            high_water: 0,
            primary: 0,
            secondary: 0,
            stalls: 0,
        }
    }

    /// Registers a miss on `line` by `waiter`.
    ///
    /// Returns `Ok(true)` for a primary miss (caller must issue the bus
    /// request), `Ok(false)` for a merged secondary miss.
    ///
    /// # Errors
    ///
    /// [`MshrError::Full`] when the miss would need a new register and
    /// none is free: the cache must stall the request.
    pub fn allocate(&mut self, line: LineAddr, waiter: W) -> Result<bool, MshrError> {
        if let Some(e) = self.entries.get_mut(&line) {
            e.waiters.push(waiter);
            self.secondary += 1;
            return Ok(false);
        }
        if self.entries.len() >= self.capacity {
            self.stalls += 1;
            return Err(MshrError::Full);
        }
        self.entries.insert(
            line,
            Entry {
                line,
                waiters: vec![waiter],
            },
        );
        self.high_water = self.high_water.max(self.entries.len());
        self.primary += 1;
        Ok(true)
    }

    /// Completes the miss on `line`, returning all merged waiters.
    ///
    /// Returns `None` when no MSHR is outstanding for the line.
    pub fn complete(&mut self, line: LineAddr) -> Option<Vec<W>> {
        self.entries.remove(&line).map(|e| {
            debug_assert_eq!(e.line, line);
            e.waiters
        })
    }

    /// `true` when a miss on `line` is already outstanding.
    pub fn contains(&self, line: LineAddr) -> bool {
        self.entries.contains_key(&line)
    }

    /// Number of registers currently in use.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no registers are in use.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Register capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Highest simultaneous occupancy observed.
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// (primary, secondary, stall) counts.
    pub fn counts(&self) -> (u64, u64, u64) {
        (self.primary, self.secondary, self.stalls)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primary_then_secondary() {
        let mut m: MshrFile<u32> = MshrFile::new(2);
        assert_eq!(m.allocate(LineAddr::new(1), 10), Ok(true));
        assert_eq!(m.allocate(LineAddr::new(1), 11), Ok(false));
        assert_eq!(m.len(), 1);
        assert_eq!(m.complete(LineAddr::new(1)), Some(vec![10, 11]));
        assert!(m.is_empty());
        assert_eq!(m.counts(), (1, 1, 0));
    }

    #[test]
    fn full_file_stalls() {
        let mut m: MshrFile<u32> = MshrFile::new(2);
        m.allocate(LineAddr::new(1), 0).unwrap();
        m.allocate(LineAddr::new(2), 0).unwrap();
        assert_eq!(m.allocate(LineAddr::new(3), 0), Err(MshrError::Full));
        // Secondary to an existing line still merges even when full.
        assert_eq!(m.allocate(LineAddr::new(2), 1), Ok(false));
        assert_eq!(m.counts().2, 1);
    }

    #[test]
    fn complete_unknown_is_none() {
        let mut m: MshrFile<u32> = MshrFile::new(2);
        assert_eq!(m.complete(LineAddr::new(9)), None);
    }

    #[test]
    fn high_water_tracks_peak() {
        let mut m: MshrFile<u32> = MshrFile::new(4);
        m.allocate(LineAddr::new(1), 0).unwrap();
        m.allocate(LineAddr::new(2), 0).unwrap();
        m.allocate(LineAddr::new(3), 0).unwrap();
        m.complete(LineAddr::new(1));
        m.complete(LineAddr::new(2));
        assert_eq!(m.high_water(), 3);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn contains_reflects_outstanding() {
        let mut m: MshrFile<u32> = MshrFile::new(2);
        assert!(!m.contains(LineAddr::new(5)));
        m.allocate(LineAddr::new(5), 0).unwrap();
        assert!(m.contains(LineAddr::new(5)));
        m.complete(LineAddr::new(5));
        assert!(!m.contains(LineAddr::new(5)));
    }

    #[test]
    #[should_panic(expected = "at least one register")]
    fn zero_capacity_panics() {
        let _m: MshrFile<u32> = MshrFile::new(0);
    }
}
