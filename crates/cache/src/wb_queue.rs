//! The bounded per-cache write-back (castout) queue.

use std::collections::VecDeque;

use crate::LineAddr;

/// One pending write-back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WbEntry {
    /// The victimized line.
    pub line: LineAddr,
    /// `true` for a dirty castout (must reach the L3 or a peer), `false`
    /// for a clean write-back (a performance optimization only).
    pub dirty: bool,
}

/// A bounded FIFO of write-backs awaiting the intrachip ring.
///
/// The paper uses an eight-entry queue and notes that consulting the WBHT
/// happens *after* the victim enters this queue — off the miss critical
/// path — and that a full queue blocks further L2 misses (§2.1). The
/// queue is snoopable: a request for a line sitting here is serviced from
/// the queue (the line is still logically owned by this cache).
///
/// # Example
///
/// ```
/// use cmpsim_cache::{WriteBackQueue, WbEntry, LineAddr};
///
/// let mut q = WriteBackQueue::new(8);
/// assert!(q.push(WbEntry { line: LineAddr::new(3), dirty: true }));
/// assert_eq!(q.pop().map(|e| e.line), Some(LineAddr::new(3)));
/// ```
#[derive(Debug, Clone)]
pub struct WriteBackQueue {
    capacity: usize,
    entries: VecDeque<WbEntry>,
    high_water: usize,
    full_rejections: u64,
    pushed: u64,
}

impl WriteBackQueue {
    /// Creates a queue with the given capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "write-back queue needs capacity > 0");
        WriteBackQueue {
            capacity,
            entries: VecDeque::with_capacity(capacity),
            high_water: 0,
            full_rejections: 0,
            pushed: 0,
        }
    }

    /// Enqueues a write-back. Returns `false` (recording a rejection)
    /// when the queue is full — the cache must block the triggering miss.
    pub fn push(&mut self, e: WbEntry) -> bool {
        if self.entries.len() >= self.capacity {
            self.full_rejections += 1;
            return false;
        }
        self.entries.push_back(e);
        self.pushed += 1;
        self.high_water = self.high_water.max(self.entries.len());
        true
    }

    /// Dequeues the oldest write-back.
    pub fn pop(&mut self) -> Option<WbEntry> {
        self.entries.pop_front()
    }

    /// Peeks at the oldest write-back without removing it.
    pub fn front(&self) -> Option<&WbEntry> {
        self.entries.front()
    }

    /// Snoop: is `line` sitting in the queue?
    #[inline]
    pub fn contains(&self, line: LineAddr) -> bool {
        self.entries.iter().any(|e| e.line == line)
    }

    /// Snoop: the queued entry for `line`, if any.
    #[inline]
    pub fn get(&self, line: LineAddr) -> Option<&WbEntry> {
        self.entries.iter().find(|e| e.line == line)
    }

    /// The `k`-th oldest entry (0 = front), if any.
    pub fn nth(&self, k: usize) -> Option<&WbEntry> {
        self.entries.get(k)
    }

    /// Removes a specific line (e.g. squashed by a snoop response),
    /// returning its entry.
    #[inline]
    pub fn remove(&mut self, line: LineAddr) -> Option<WbEntry> {
        let idx = self.entries.iter().position(|e| e.line == line)?;
        self.entries.remove(idx)
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// `true` when at capacity (misses must block).
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    /// Capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Peak occupancy observed.
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Number of pushes rejected because the queue was full.
    pub fn full_rejections(&self) -> u64 {
        self.full_rejections
    }

    /// Total successful pushes.
    pub fn pushed(&self) -> u64 {
        self.pushed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(line: u64, dirty: bool) -> WbEntry {
        WbEntry {
            line: LineAddr::new(line),
            dirty,
        }
    }

    #[test]
    fn fifo_order() {
        let mut q = WriteBackQueue::new(4);
        q.push(e(1, true));
        q.push(e(2, false));
        assert_eq!(q.pop(), Some(e(1, true)));
        assert_eq!(q.pop(), Some(e(2, false)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn rejects_when_full() {
        let mut q = WriteBackQueue::new(2);
        assert!(q.push(e(1, true)));
        assert!(q.push(e(2, true)));
        assert!(q.is_full());
        assert!(!q.push(e(3, true)));
        assert_eq!(q.full_rejections(), 1);
        q.pop();
        assert!(q.push(e(3, true)));
    }

    #[test]
    fn snoop_and_remove() {
        let mut q = WriteBackQueue::new(4);
        q.push(e(1, true));
        q.push(e(2, false));
        q.push(e(3, true));
        assert!(q.contains(LineAddr::new(2)));
        assert_eq!(q.remove(LineAddr::new(2)), Some(e(2, false)));
        assert!(!q.contains(LineAddr::new(2)));
        assert_eq!(q.len(), 2);
        // FIFO order preserved after mid-removal.
        assert_eq!(q.pop(), Some(e(1, true)));
        assert_eq!(q.pop(), Some(e(3, true)));
    }

    #[test]
    fn high_water_and_counts() {
        let mut q = WriteBackQueue::new(8);
        for i in 0..5 {
            q.push(e(i, false));
        }
        q.pop();
        q.pop();
        assert_eq!(q.high_water(), 5);
        assert_eq!(q.pushed(), 5);
        assert_eq!(q.len(), 3);
        assert_eq!(q.front(), Some(&e(2, false)));
    }

    #[test]
    #[should_panic(expected = "capacity > 0")]
    fn zero_capacity_panics() {
        let _ = WriteBackQueue::new(0);
    }
}
