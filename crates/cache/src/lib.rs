//! Generic cache structures for the CMP cache-hierarchy simulator.
//!
//! This crate models the *storage* side of a cache hierarchy, independent
//! of any coherence protocol:
//!
//! * [`Addr`] / [`LineAddr`] — physical addresses and cache-line numbers,
//! * [`CacheGeometry`] / [`SlicedGeometry`] — size/associativity/slicing
//!   math with power-of-two validation,
//! * [`TagArray`] — a set-associative tag array generic over a per-line
//!   state payload, with LRU / tree-PLRU / random replacement and
//!   predicate-driven victim selection (used by the snarf mechanism to
//!   prefer Invalid, then Shared victims),
//! * [`MshrFile`] — miss-status holding registers with secondary-miss
//!   merging,
//! * [`WriteBackQueue`] — the bounded per-cache castout queue, and
//! * [`HistoryTable`] — the cache-organized tag table underlying both the
//!   Write-Back History Table and the snarf (reuse) table of the paper.
//!
//! # Example
//!
//! ```
//! use cmpsim_cache::{CacheGeometry, TagArray, ReplacementPolicy, LineAddr, InsertPosition};
//!
//! let geom = CacheGeometry::new(64 * 1024, 8, 128).unwrap();
//! let mut tags: TagArray<u8> = TagArray::new(geom, ReplacementPolicy::Lru);
//! let line = LineAddr::new(0x40);
//! assert!(tags.probe(line).is_none());
//! tags.insert(line, 1, InsertPosition::Mru);
//! assert_eq!(tags.probe(line).map(|(_, s)| s), Some(1));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod addr;
mod config;
mod history;
mod mshr;
mod replacement;
mod tag_array;
mod wb_queue;

pub use addr::{Addr, LineAddr};
pub use config::{CacheGeometry, GeometryError, SlicedGeometry};
pub use history::{HistoryStats, HistoryTable, WideHistoryTable};
pub use mshr::{MshrError, MshrFile, MshrId};
pub use replacement::ReplacementPolicy;
pub use tag_array::{
    packed_fits, Evicted, GenericTagArray, InsertPosition, PackedLine, PackedState, PackedTagArray,
    TagArray, TagStorage, WayIdx, PACKED_LINE_ADDR_BITS,
};
pub use wb_queue::{WbEntry, WriteBackQueue};
