//! Differential oracle for the packed tag-array backend.
//!
//! Drives [`PackedTagArray`] and [`GenericTagArray`] through identical
//! randomized probe/touch/insert/insert_into/update_state/invalidate
//! sequences and asserts identical probe results, victims, recency
//! orderings, and evicted payloads for all three replacement policies —
//! plus the satellite regressions: stale way-hints on both backends and
//! geometry extremes under the packed word-layout rules.

use cmpsim_cache::{
    packed_fits, CacheGeometry, GenericTagArray, GeometryError, InsertPosition, LineAddr,
    PackedLine, PackedTagArray, ReplacementPolicy, PACKED_LINE_ADDR_BITS,
};
use cmpsim_engine::SplitMix64;

/// One randomized mirror run: every operation must produce the same
/// observable result on both backends, and the final resident state
/// (lines, payloads, victim orderings) must match exactly.
fn mirror_run(policy: ReplacementPolicy, geom: CacheGeometry, line_space: u64, seed: u64) {
    let mut p: PackedTagArray<u8> = PackedTagArray::new(geom, policy);
    let mut g: GenericTagArray<u8> = GenericTagArray::new(geom, policy);
    let mut rng = SplitMix64::new(seed);
    for step in 0..30_000u64 {
        let line = LineAddr::new(rng.gen_range(line_space));
        match rng.gen_range(6) {
            0 => {
                assert_eq!(p.probe(line), g.probe(line), "probe @ {step}");
            }
            1 => {
                assert_eq!(p.touch(line), g.touch(line), "touch @ {step}");
            }
            2 => {
                let st = (step & 0xFF) as u8;
                if p.probe(line).is_none() {
                    assert_eq!(
                        p.insert(line, st, InsertPosition::Mru),
                        g.insert(line, st, InsertPosition::Mru),
                        "insert eviction @ {step}"
                    );
                }
            }
            3 => {
                // insert_into a policy-chosen way with a non-Mru position
                // (the snarf path). Skip when the line is resident
                // (insert_into does not handle duplicates).
                if p.probe(line).is_none() {
                    let pos = if step % 2 == 0 {
                        InsertPosition::Mid
                    } else {
                        InsertPosition::Lru
                    };
                    let wp = p.invalid_way(line).unwrap_or_else(|| p.victim_way(line));
                    let wg = g.invalid_way(line).unwrap_or_else(|| g.victim_way(line));
                    assert_eq!(wp, wg, "victim way @ {step}");
                    // The chosen way may hold a different line; only
                    // proceed if that occupant is not `line` itself.
                    assert_eq!(
                        p.insert_into(line, wp, (step & 0x7F) as u8, pos),
                        g.insert_into(line, wg, (step & 0x7F) as u8, pos),
                        "insert_into @ {step}"
                    );
                }
            }
            4 => {
                let st = (step & 0x3F) as u8;
                assert_eq!(
                    p.update_state(line, |s| *s = st),
                    g.update_state(line, |s| *s = st),
                    "update_state @ {step}"
                );
                assert_eq!(p.probe(line), g.probe(line), "state after update @ {step}");
            }
            _ => {
                assert_eq!(
                    p.invalidate(line),
                    g.invalidate(line),
                    "invalidate @ {step}"
                );
            }
        }
        assert_eq!(p.valid_lines(), g.valid_lines(), "occupancy @ {step}");
    }
    // Terminal full-state comparison.
    let pv: Vec<_> = p.iter_valid().collect();
    let gv: Vec<_> = g.iter_valid().collect();
    assert_eq!(pv, gv, "final resident lines diverge");
    for set in 0..geom.num_sets() {
        let l = LineAddr::new(set);
        assert_eq!(
            p.victim_candidates(l, geom.assoc() as usize),
            g.victim_candidates(l, geom.assoc() as usize),
            "victim ordering diverges in set {set}"
        );
        assert_eq!(p.invalid_way(l), g.invalid_way(l));
    }
}

#[test]
fn mirror_lru() {
    let geom = CacheGeometry::new(4096, 8, 128).unwrap(); // 4 sets x 8 ways
    mirror_run(ReplacementPolicy::Lru, geom, 64, 0x51AB_1E5E);
}

#[test]
fn mirror_tree_plru() {
    let geom = CacheGeometry::new(4096, 8, 128).unwrap();
    mirror_run(ReplacementPolicy::TreePlru, geom, 64, 0x7EE9_1A02);
}

#[test]
fn mirror_random() {
    // Both backends consume the same seeded SplitMix64 stream only on
    // Random victim selection, so the streams stay in lockstep.
    let geom = CacheGeometry::new(4096, 8, 128).unwrap();
    mirror_run(ReplacementPolicy::Random, geom, 64, 0xBAD5_EED5);
}

#[test]
fn mirror_wider_geometry() {
    // More sets, lower pressure: exercises set indexing and tag
    // reconstruction across set boundaries.
    let geom = CacheGeometry::new(16384, 4, 128).unwrap(); // 32 sets x 4 ways
    mirror_run(ReplacementPolicy::Lru, geom, 4096, 0x0DDC_0FFE);
}

/// Satellite regression: a way-hint that survives an `invalidate` +
/// re-`insert` of a *different* tag into the same way must never
/// short-circuit to a wrong hit — on either backend.
#[test]
fn stale_hint_after_reuse_never_lies() {
    macro_rules! check {
        ($t:expr) => {{
            let t = &mut $t;
            let a = LineAddr::new(0); // set 0
            let b = LineAddr::new(8); // same set (8 sets x 2 ways)
            t.insert(a, 1, InsertPosition::Mru);
            assert!(t.probe(a).is_some()); // seeds the hint with a's way
            let way = t.probe(a).unwrap().0;
            t.invalidate(a);
            // A *different* tag now occupies the hinted way.
            t.insert_into(b, way, 9, InsertPosition::Mru);
            assert_eq!(t.probe(a), None, "stale hint returned a wrong hit");
            assert_eq!(t.probe(b).map(|(_, s)| s), Some(9));
        }};
    }

    let geom = CacheGeometry::new(2048, 2, 128).unwrap(); // 8 sets x 2 ways
    let mut p: PackedTagArray<u8> = PackedTagArray::new(geom, ReplacementPolicy::Lru);
    check!(p);
    let mut g: GenericTagArray<u8> = GenericTagArray::new(geom, ReplacementPolicy::Lru);
    check!(g);
}

// --- geometry extremes under the packed layout (satellite) -------------

#[test]
fn direct_mapped_1_way() {
    // 1-way: every set is a single word; insert always replaces.
    let geom = CacheGeometry::new(1024, 1, 128).unwrap(); // 8 sets x 1 way
    mirror_run(ReplacementPolicy::Lru, geom, 64, 0xD1CE_0001);
    let mut t: PackedTagArray<u8> = PackedTagArray::new(geom, ReplacementPolicy::Lru);
    t.insert(LineAddr::new(0), 1, InsertPosition::Mru);
    let ev = t.insert(LineAddr::new(8), 2, InsertPosition::Mru).unwrap();
    assert_eq!(ev.line, LineAddr::new(0));
    assert_eq!(ev.state, 1);
}

#[test]
fn max_associativity_single_set() {
    // Fully associative: one set holding every line; the probe loop
    // scans all 32 ways.
    let geom = CacheGeometry::new(4096, 32, 128).unwrap(); // 1 set x 32 ways
    assert_eq!(geom.num_sets(), 1);
    mirror_run(ReplacementPolicy::Lru, geom, 64, 0xF011_A550);
}

#[test]
fn non_power_of_two_sets_rejected_by_geometry() {
    // The packed backend never sees a non-power-of-two set count: every
    // route to one is rejected by CacheGeometry before any backend is
    // built (set indexing is a mask; tag packing drops exactly
    // log2(num_sets) bits).
    assert!(matches!(
        CacheGeometry::new(128 * 24, 8, 128), // 24 sets via non-pow2 size
        Err(GeometryError::NotPowerOfTwo("size_bytes", _))
    ));
    assert!(matches!(
        CacheGeometry::new(4096, 12, 128), // 32 lines / 12-way
        Err(GeometryError::Indivisible { .. })
    ));
    assert!(matches!(
        CacheGeometry::from_entries(24, 2, 1), // 12 sets via entry count
        Err(GeometryError::NotPowerOfTwo(_, _))
    ));
}

#[test]
fn packed_fits_boundary() {
    // u8 payload: 8 state bits leave 55 tag bits — plenty for 48-bit
    // line addresses at any set count.
    assert!(packed_fits(8, 1));
    // u16 payload: 16 state bits leave 47 tag bits. A single set needs
    // all 48 — one too many; two sets shave one bit and fit exactly.
    assert!(!packed_fits(16, 1));
    assert!(packed_fits(16, 2));
    // L2State-sized payloads always fit real geometries.
    assert!(packed_fits(3, 512));
    // Nothing wider than the word can ever fit.
    assert!(!packed_fits(64, 1 << 20));
}

#[test]
fn oversized_tag_geometry_rejected_at_construction() {
    // 16 state bits + 1 set = 48 needed tag bits > 47 available.
    let geom = CacheGeometry::new(4096, 32, 128).unwrap(); // 1 set
    match PackedTagArray::<u16>::try_new(geom, ReplacementPolicy::Lru) {
        Err(GeometryError::PackedTagOverflow {
            state_bits: 16,
            num_sets: 1,
        }) => {}
        other => panic!("expected PackedTagOverflow, got {other:?}"),
    }
    // The generic backend has no such limit.
    assert!(GenericTagArray::<u16>::try_new(geom, ReplacementPolicy::Lru).is_ok());
}

#[test]
#[should_panic(expected = "packed tag word overflow")]
fn oversized_tag_geometry_panics_in_new() {
    let geom = CacheGeometry::new(4096, 32, 128).unwrap();
    let _ = PackedTagArray::<u16>::new(geom, ReplacementPolicy::Lru);
}

#[test]
fn line_addresses_up_to_packed_width_roundtrip() {
    // The largest supported line address must store and reconstruct
    // exactly (tag reconstruction = stored tag bits ‖ set index).
    let geom = CacheGeometry::new(4096, 8, 128).unwrap(); // 4 sets
    let mut t: PackedTagArray<u8> = PackedTagArray::new(geom, ReplacementPolicy::Lru);
    let top = LineAddr::new((1u64 << PACKED_LINE_ADDR_BITS) - 1);
    t.insert(top, 0xAB, InsertPosition::Mru);
    assert_eq!(t.probe(top).map(|(_, s)| s), Some(0xAB));
    assert_eq!(t.iter_valid().collect::<Vec<_>>(), vec![(top, 0xAB)]);
    assert_eq!(t.invalidate(top), Some(0xAB));
}

#[test]
fn layout_size_assertions() {
    // The packed word is exactly 8 bytes; per-line hot state is the
    // word plus one epoch stamp (16 bytes/line total vs the generic
    // backend's padded struct).
    assert_eq!(std::mem::size_of::<PackedLine>(), 8);
    assert_eq!(std::mem::align_of::<PackedLine>(), 8);
}
