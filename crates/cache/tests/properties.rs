//! Property-based tests for cache structure invariants.

use cmpsim_cache::{
    CacheGeometry, HistoryTable, InsertPosition, LineAddr, MshrFile, ReplacementPolicy, TagArray,
    WbEntry, WriteBackQueue,
};
use proptest::prelude::*;
use std::collections::HashSet;

proptest! {
    /// A tag array never holds more valid lines than its capacity, never
    /// holds duplicates, and every probe hit returns the inserted state.
    #[test]
    fn tag_array_capacity_and_uniqueness(
        lines in proptest::collection::vec(0u64..256, 1..300),
        policy_idx in 0usize..3,
    ) {
        let policy = [ReplacementPolicy::Lru, ReplacementPolicy::TreePlru, ReplacementPolicy::Random][policy_idx];
        let geom = CacheGeometry::new(4096, 4, 128).unwrap(); // 8 sets x 4 ways
        let mut t: TagArray<u16> = TagArray::new(geom, policy);
        for &l in &lines {
            let la = LineAddr::new(l);
            if let Some((_, s)) = t.probe(la) {
                prop_assert_eq!(s, (l * 3) as u16);
                t.touch(la);
            } else {
                t.insert(la, (l * 3) as u16, InsertPosition::Mru);
            }
            prop_assert!(t.valid_lines() <= geom.num_lines());
            let mut seen = HashSet::new();
            for (line, _) in t.iter_valid() {
                prop_assert!(seen.insert(line), "duplicate line {line}");
            }
        }
    }

    /// After inserting a line it is always probeable until evicted or
    /// invalidated; eviction only happens from the same set.
    #[test]
    fn tag_array_eviction_same_set(lines in proptest::collection::vec(0u64..512, 1..200)) {
        let geom = CacheGeometry::new(2048, 2, 128).unwrap(); // 8 sets x 2 ways
        let mut t: TagArray<()> = TagArray::new(geom, ReplacementPolicy::Lru);
        for &l in &lines {
            let la = LineAddr::new(l);
            if t.probe(la).is_some() {
                continue;
            }
            if let Some(ev) = t.insert(la, (), InsertPosition::Mru) {
                prop_assert_eq!(geom.set_of(ev.line), geom.set_of(la));
            }
            prop_assert!(t.probe(la).is_some());
        }
    }

    /// History table: recorded entries remain visible until they age out;
    /// capacity is never exceeded; hit+miss equals lookups.
    #[test]
    fn history_table_bounds(ops in proptest::collection::vec((0u64..128, any::<bool>()), 1..400)) {
        let mut h: HistoryTable<()> = HistoryTable::new(32, 4).unwrap();
        let mut lookups = 0u64;
        for &(l, write) in &ops {
            let la = LineAddr::new(l);
            if write {
                h.record(la, ());
                prop_assert!(h.peek(la).is_some(), "just-recorded entry missing");
            } else {
                let _ = h.lookup(la);
                lookups += 1;
            }
            prop_assert!(h.len() <= h.capacity());
        }
        prop_assert_eq!(h.stats().hits + h.stats().misses, lookups);
    }

    /// MSHR file: waiters are returned exactly once, in order, and
    /// occupancy never exceeds capacity.
    #[test]
    fn mshr_waiters_conserved(ops in proptest::collection::vec((0u64..16, 0u32..8), 1..200)) {
        let mut m: MshrFile<(u64, u32)> = MshrFile::new(4);
        let mut outstanding: Vec<u64> = Vec::new();
        let mut issued = 0usize;
        let mut returned = 0usize;
        for &(l, w) in &ops {
            let la = LineAddr::new(l);
            match m.allocate(la, (l, w)) {
                Ok(true) => { outstanding.push(l); issued += 1; }
                Ok(false) => { issued += 1; }
                Err(_) => {
                    // Full: complete the oldest to make room.
                    let done = outstanding.remove(0);
                    let ws = m.complete(LineAddr::new(done)).unwrap();
                    for (wl, _) in &ws { prop_assert_eq!(*wl, done); }
                    returned += ws.len();
                }
            }
            prop_assert!(m.len() <= m.capacity());
        }
        for l in outstanding {
            returned += m.complete(LineAddr::new(l)).unwrap().len();
        }
        prop_assert_eq!(issued, returned);
    }

    /// Write-back queue preserves FIFO order among retained entries and
    /// never exceeds capacity.
    #[test]
    fn wb_queue_fifo(lines in proptest::collection::vec(0u64..64, 1..100), cap in 1usize..12) {
        let mut q = WriteBackQueue::new(cap);
        let mut model: Vec<u64> = Vec::new();
        for &l in &lines {
            if q.push(WbEntry { line: LineAddr::new(l), dirty: l % 2 == 0 }) {
                model.push(l);
            } else {
                prop_assert_eq!(q.len(), cap);
                let popped = q.pop().unwrap();
                prop_assert_eq!(popped.line.raw(), model.remove(0));
            }
        }
        while let Some(e) = q.pop() {
            prop_assert_eq!(e.line.raw(), model.remove(0));
        }
        prop_assert!(model.is_empty());
    }
}
