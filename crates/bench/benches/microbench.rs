//! Microbenchmarks for the simulator's hot data structures.
//!
//! These guard the performance of the building blocks the experiment
//! harness leans on: tag-array probes, history-table churn, event-queue
//! throughput, ring reservations, and synthetic trace generation.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

use cmpsim_cache::{
    CacheGeometry, HistoryTable, InsertPosition, LineAddr, ReplacementPolicy, TagArray,
};
use cmpsim_coherence::{AgentId, L2Id};
use cmpsim_engine::{EventQueue, SplitMix64};
use cmpsim_ring::{Ring, RingConfig, RingTopology};
use cmpsim_trace::{CacheScale, SyntheticWorkload, ThreadId, Workload};

fn bench_tag_array(c: &mut Criterion) {
    let geom = CacheGeometry::new(512 * 1024, 8, 128).unwrap();
    let mut g = c.benchmark_group("tag_array");
    g.throughput(Throughput::Elements(1));
    g.bench_function("probe_hit", |b| {
        let mut tags: TagArray<u8> = TagArray::new(geom, ReplacementPolicy::Lru);
        for i in 0..geom.num_lines() {
            tags.insert(LineAddr::new(i), 0, InsertPosition::Mru);
        }
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 17) % geom.num_lines();
            black_box(tags.probe(LineAddr::new(i)))
        });
    });
    g.bench_function("insert_evict", |b| {
        let mut tags: TagArray<u8> = TagArray::new(geom, ReplacementPolicy::Lru);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(tags.insert(LineAddr::new(i), 0, InsertPosition::Mru))
        });
    });
    g.finish();
}

fn bench_history_table(c: &mut Criterion) {
    let mut g = c.benchmark_group("wbht");
    g.throughput(Throughput::Elements(1));
    g.bench_function("record_lookup_churn", |b| {
        let mut t: HistoryTable<()> = HistoryTable::new(32 * 1024, 16).unwrap();
        let mut rng = SplitMix64::new(1);
        b.iter(|| {
            let line = LineAddr::new(rng.gen_range(256 * 1024));
            if rng.gen_bool(0.5) {
                t.record(line, ());
            } else {
                black_box(t.lookup(line));
            }
        });
    });
    g.finish();
}

fn bench_event_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine");
    g.throughput(Throughput::Elements(1));
    g.bench_function("event_queue_push_pop", |b| {
        let mut q: EventQueue<u64> = EventQueue::with_capacity(1024);
        let mut rng = SplitMix64::new(2);
        let mut now = 0;
        // Keep a standing population of ~512 events.
        for _ in 0..512 {
            q.push(now + rng.gen_range(1000), 0);
        }
        b.iter(|| {
            let (t, v) = q.pop().unwrap();
            now = t;
            q.push(now + 1 + rng.gen_range(1000), v + 1);
            black_box(t)
        });
    });
    g.finish();
}

fn bench_ring(c: &mut Criterion) {
    let mut g = c.benchmark_group("ring");
    g.throughput(Throughput::Elements(1));
    g.bench_function("address_issue_and_transfer", |b| {
        let mut ring = Ring::new(RingTopology::standard_cmp(4, 2), RingConfig::default());
        let src = AgentId::L2(L2Id::new(0));
        let mut now = 0;
        b.iter(|| {
            let t = ring.issue_address(now, src);
            let done = ring.transfer_data(t, AgentId::L3, src);
            now += 4;
            black_box(done)
        });
    });
    g.finish();
}

fn bench_trace_generation(c: &mut Criterion) {
    let mut g = c.benchmark_group("trace");
    g.throughput(Throughput::Elements(1));
    for wl in Workload::all() {
        g.bench_function(format!("generate_{wl}"), |b| {
            let params = wl.params(16, CacheScale::scaled(8));
            let mut w = SyntheticWorkload::new(params, 7).unwrap();
            let mut t = 0u16;
            b.iter(|| {
                t = (t + 1) % 16;
                black_box(w.next_record(ThreadId::new(t)))
            });
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_tag_array,
    bench_history_table,
    bench_event_queue,
    bench_ring,
    bench_trace_generation
);
criterion_main!(benches);
