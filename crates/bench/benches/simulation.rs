//! End-to-end simulation benchmarks: one short run per policy, plus the
//! ablation points DESIGN.md calls out (snarf insert position, WBHT
//! update scope). These measure *simulator* throughput; the paper's
//! performance numbers come from the `exp-*` binaries.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use cmp_adaptive_wb::{
    run, PolicyConfig, RunSpec, SnarfConfig, SystemConfig, UpdateScope, WbhtConfig,
};
use cmpsim_cache::InsertPosition;
use cmpsim_trace::Workload;

const REFS: u64 = 2_000;

fn spec(policy: PolicyConfig, workload: Workload) -> RunSpec {
    let mut cfg = SystemConfig::scaled(16);
    cfg.policy = policy;
    cfg.max_outstanding = 6;
    RunSpec::for_workload(cfg, workload, REFS)
}

fn bench_policies(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulation");
    g.sample_size(10);
    let policies: Vec<(&str, PolicyConfig)> = vec![
        ("baseline", PolicyConfig::baseline()),
        (
            "wbht",
            PolicyConfig::wbht(WbhtConfig {
                entries: 2048,
                ..Default::default()
            }),
        ),
        (
            "snarf",
            PolicyConfig::snarf(SnarfConfig {
                entries: 2048,
                ..Default::default()
            }),
        ),
        ("combined", PolicyConfig::combined_paper()),
    ];
    for (name, p) in policies {
        g.bench_function(format!("trade2_{name}"), |b| {
            b.iter(|| black_box(run(spec(p.clone(), Workload::Trade2)).unwrap().stats.cycles));
        });
    }
    g.finish();
}

fn bench_ablation_insert_pos(c: &mut Criterion) {
    // Ablation: where snarfed lines land in the recipient's LRU stack
    // (§3 discusses recipient LRU management).
    let mut g = c.benchmark_group("ablation_snarf_insert");
    g.sample_size(10);
    for (name, pos) in [
        ("mru", InsertPosition::Mru),
        ("mid", InsertPosition::Mid),
        ("lru", InsertPosition::Lru),
    ] {
        g.bench_function(name, |b| {
            let p = PolicyConfig::snarf(SnarfConfig {
                entries: 2048,
                assoc: 16,
                insert_pos: pos,
            });
            b.iter(|| black_box(run(spec(p.clone(), Workload::Tp)).unwrap().stats.cycles));
        });
    }
    g.finish();
}

fn bench_ablation_scope(c: &mut Criterion) {
    // Ablation: local vs global WBHT updates (Figure 2 vs Figure 3).
    let mut g = c.benchmark_group("ablation_wbht_scope");
    g.sample_size(10);
    for (name, scope) in [
        ("local", UpdateScope::Local),
        ("global", UpdateScope::Global),
    ] {
        g.bench_function(name, |b| {
            let p = PolicyConfig::wbht(WbhtConfig {
                entries: 2048,
                assoc: 16,
                scope,
                granularity: 1,
            });
            b.iter(|| black_box(run(spec(p.clone(), Workload::Trade2)).unwrap().stats.cycles));
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_policies,
    bench_ablation_insert_pos,
    bench_ablation_scope
);
criterion_main!(benches);
