//! The parallel grid driver must be a pure wall-clock optimization:
//! any worker count yields the same reports in the same order as a
//! serial loop.

use cmp_adaptive_wb::run;
use cmpsim_bench::{run_grid, Profile};
use cmpsim_trace::Workload;

fn grid_specs(p: &Profile) -> Vec<cmp_adaptive_wb::RunSpec> {
    let mut specs = Vec::new();
    for (i, &wl) in [Workload::Cpw2, Workload::Trade2, Workload::Tp]
        .iter()
        .enumerate()
    {
        for pressure in [1u32, 6] {
            let mut cfg = p.config();
            cfg.max_outstanding = pressure;
            cfg.seed = cfg.seed.wrapping_add(i as u64);
            specs.push(p.spec(cfg, wl));
        }
    }
    specs
}

#[test]
fn parallel_grid_matches_serial_loop_in_order() {
    let p = Profile {
        scale_factor: 16,
        refs_per_thread: 600,
        seeds: 1,
    };
    let serial: Vec<String> = grid_specs(&p)
        .into_iter()
        .map(|s| run(s).expect("valid spec").to_json())
        .collect();
    let parallel: Vec<String> = run_grid(grid_specs(&p), 4)
        .into_iter()
        .map(|r| r.to_json())
        .collect();
    assert_eq!(serial, parallel);
    // Degenerate worker counts behave too.
    let one: Vec<String> = run_grid(grid_specs(&p), 1)
        .into_iter()
        .map(|r| r.to_json())
        .collect();
    let many: Vec<String> = run_grid(grid_specs(&p), 64)
        .into_iter()
        .map(|r| r.to_json())
        .collect();
    assert_eq!(serial, one);
    assert_eq!(serial, many);
}

#[test]
fn empty_grid_is_fine() {
    assert!(run_grid(Vec::new(), 8).is_empty());
    // Degenerate worker counts on the degenerate grid too.
    assert!(run_grid(Vec::new(), 0).is_empty());
    assert!(run_grid(Vec::new(), 1).is_empty());
}

fn tiny_profile() -> Profile {
    Profile {
        scale_factor: 16,
        refs_per_thread: 300,
        seeds: 1,
    }
}

#[test]
fn more_jobs_than_specs_is_fine() {
    // One spec, sixteen workers: fifteen must exit cleanly without
    // claiming anything, and the result is still the serial report.
    let p = tiny_profile();
    let serial = run(p.spec(p.config(), Workload::Cpw2))
        .expect("valid spec")
        .to_json();
    let reports = run_grid(vec![p.spec(p.config(), Workload::Cpw2)], 16);
    assert_eq!(reports.len(), 1);
    assert_eq!(reports[0].to_json(), serial);
}

#[test]
fn zero_jobs_clamps_to_one_worker() {
    let p = tiny_profile();
    let serial = run(p.spec(p.config(), Workload::Tp))
        .expect("valid spec")
        .to_json();
    let reports = run_grid(vec![p.spec(p.config(), Workload::Tp)], 0);
    assert_eq!(reports.len(), 1);
    assert_eq!(reports[0].to_json(), serial);
}

#[test]
fn invalid_spec_panics_through_the_grid_on_any_worker_count() {
    // run_grid's contract is "specs come from validated profiles"; a
    // spec that cannot build must abort the grid loudly (propagated
    // worker panic), never return a short or reordered report list.
    let p = tiny_profile();
    let mut bad = p.spec(p.config(), Workload::Tp);
    bad.config.l2_slice_bytes = 12_345; // not a power-of-two geometry
    for jobs in [1, 4] {
        let specs = vec![p.spec(p.config(), Workload::Tp), bad.clone()];
        let result =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run_grid(specs, jobs)));
        assert!(
            result.is_err(),
            "invalid spec must panic through run_grid at jobs={jobs}"
        );
    }
}
