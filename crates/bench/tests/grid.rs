//! The parallel grid driver must be a pure wall-clock optimization:
//! any worker count yields the same reports in the same order as a
//! serial loop.

use cmp_adaptive_wb::run;
use cmpsim_bench::{run_grid, Profile};
use cmpsim_trace::Workload;

fn grid_specs(p: &Profile) -> Vec<cmp_adaptive_wb::RunSpec> {
    let mut specs = Vec::new();
    for (i, &wl) in [Workload::Cpw2, Workload::Trade2, Workload::Tp]
        .iter()
        .enumerate()
    {
        for pressure in [1u32, 6] {
            let mut cfg = p.config();
            cfg.max_outstanding = pressure;
            cfg.seed = cfg.seed.wrapping_add(i as u64);
            specs.push(p.spec(cfg, wl));
        }
    }
    specs
}

#[test]
fn parallel_grid_matches_serial_loop_in_order() {
    let p = Profile {
        scale_factor: 16,
        refs_per_thread: 600,
        seeds: 1,
    };
    let serial: Vec<String> = grid_specs(&p)
        .into_iter()
        .map(|s| run(s).expect("valid spec").to_json())
        .collect();
    let parallel: Vec<String> = run_grid(grid_specs(&p), 4)
        .into_iter()
        .map(|r| r.to_json())
        .collect();
    assert_eq!(serial, parallel);
    // Degenerate worker counts behave too.
    let one: Vec<String> = run_grid(grid_specs(&p), 1)
        .into_iter()
        .map(|r| r.to_json())
        .collect();
    let many: Vec<String> = run_grid(grid_specs(&p), 64)
        .into_iter()
        .map(|r| r.to_json())
        .collect();
    assert_eq!(serial, one);
    assert_eq!(serial, many);
}

#[test]
fn empty_grid_is_fine() {
    assert!(run_grid(Vec::new(), 8).is_empty());
}
