//! Figure 4: execution time vs WBHT size, normalized to a 512-entry
//! WBHT system, at 6 outstanding loads/thread.
//!
//! Paper shape: all workloads improve (values below 1.0) as the table
//! grows 1K→64K, Trade2 by far the most (≈0.78 at 64K), the others
//! more gently.

use cmp_adaptive_wb::UpdateScope;

use crate::experiments::{size_sweep, wbht_cfg};
use crate::Profile;

/// Runs the size sweep and renders normalized runtimes.
pub fn run(p: &Profile) -> String {
    // Paper sweeps 1K..64K; scale with the profile but keep >= 512.
    let sizes: Vec<u64> = [1024u64, 2048, 4096, 8192, 16384, 32768, 65536]
        .iter()
        .map(|&s| (s / p.scale_factor).max(512))
        .collect();
    let mut sizes = sizes;
    sizes.dedup();
    size_sweep(p, &sizes, |p, sz| wbht_cfg(p, 6, sz, UpdateScope::Local)).render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalized_values_near_one() {
        let p = Profile {
            scale_factor: 16,
            refs_per_thread: 1_000,
            seeds: 1,
        };
        let out = run(&p);
        // Every data cell parses as a float around 1.
        for line in out.lines().skip(2) {
            for cell in line.split_whitespace().skip(1) {
                let v: f64 = cell.parse().unwrap();
                assert!((0.3..2.0).contains(&v), "value {v} out of range");
            }
        }
    }
}
