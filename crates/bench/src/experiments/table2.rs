//! Table 2: write-back reuse statistics.
//!
//! Paper values (`% Total` / `% Accepted`): CPW2 27.1/38.4,
//! NotesBench 33.9/53.2, TP 15.5/18.6, Trade2 28.9/58.7. Measured on the
//! baseline system: the fraction of attempted (resp. L3-accepted)
//! write-backs whose line was later missed on again.

use crate::experiments::{base_cfg, pct, workloads};
use crate::{parallel_runs, Profile, Table};

/// Runs the experiment and renders the table.
pub fn run(p: &Profile) -> String {
    let specs = workloads()
        .iter()
        .map(|&wl| p.spec(base_cfg(p, 6), wl))
        .collect();
    let reports = parallel_runs(specs);
    let mut t = Table::new(vec![
        "Workload".into(),
        "% Total".into(),
        "% Accepted".into(),
        "(paper)".into(),
    ]);
    let paper = ["27.1 / 38.4", "33.9 / 53.2", "15.5 / 18.6", "28.9 / 58.7"];
    for (r, paper) in reports.iter().zip(paper) {
        t.row(vec![
            r.workload.clone(),
            pct(r.stats.wb_reuse.reuse_rate_total()),
            pct(r.stats.wb_reuse.reuse_rate_accepted()),
            paper.into(),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reuse_rates_present() {
        let p = Profile {
            scale_factor: 16,
            refs_per_thread: 2_000,
            seeds: 1,
        };
        let out = run(&p);
        assert!(out.contains("% Total"));
        assert!(out.contains("Trade2"));
    }
}
