//! Figure 2: runtime improvement of the WBHT over the baseline as the
//! maximum number of outstanding loads per thread grows from 1 to 6.
//!
//! Paper shape: near-zero (or slightly negative for TP) at 1–2 loads
//! where the retry switch keeps the WBHT disengaged, rising with memory
//! pressure to ~6–13 % at 6 loads (Trade2 highest, NotesBench flat).

use cmp_adaptive_wb::UpdateScope;

use crate::experiments::{default_entries, pressure_sweep, wbht_cfg};
use crate::Profile;

/// Runs the sweep and renders percentage improvements per pressure.
pub fn run(p: &Profile) -> String {
    let entries = default_entries(p);
    pressure_sweep(p, |p, n| wbht_cfg(p, n, entries, UpdateScope::Local)).render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_has_six_pressure_columns() {
        let p = Profile {
            scale_factor: 16,
            refs_per_thread: 1_000,
            seeds: 1,
        };
        let out = run(&p);
        let header = out.lines().next().unwrap();
        for n in 1..=6 {
            assert!(header.contains(&n.to_string()));
        }
        assert!(out.contains("Trade2"));
    }
}
