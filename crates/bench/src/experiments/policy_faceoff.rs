//! Policy face-off: the paper's adaptive mechanisms against the two
//! post-paper policies, on equal footing.
//!
//! Runs the memory-pressure sweep (1..=6 outstanding loads/thread) for
//! the WBHT (§2), the reuse-distance copy-back filter, and the hybrid
//! update/invalidate coherence policy, each against the shared
//! baseline, and tabulates runtime improvement per workload. A second
//! pass at the highest pressure level enables the span tracer and
//! attributes mean miss latency to its fill source (peer L2, L3,
//! memory) plus the castout path, per policy — showing *where* each
//! policy buys or spends its cycles rather than just the bottom line.

use cmpsim_engine::spans::SpanTracer;
use cmpsim_engine::stats::Log2Histogram;

use crate::experiments::{
    base_cfg, default_entries, hybrid_cfg, pressure_sweep, rdcb_cfg, wbht_cfg, workloads,
};
use crate::{parallel_runs, Profile, Table};
use cmp_adaptive_wb::UpdateScope;

/// A named config constructor at a given pressure level.
type Contender = (
    &'static str,
    Box<dyn Fn(u32) -> cmp_adaptive_wb::SystemConfig>,
);

/// The contenders, in render order.
fn contenders(p: &Profile) -> Vec<Contender> {
    let entries = default_entries(p);
    let p = *p;
    vec![
        ("baseline", Box::new(move |n| base_cfg(&p, n))),
        (
            "wbht",
            Box::new(move |n| wbht_cfg(&p, n, entries, UpdateScope::Local)),
        ),
        ("rdcb", Box::new(move |n| rdcb_cfg(&p, n, entries))),
        ("hybrid", Box::new(move |n| hybrid_cfg(&p, n, entries))),
    ]
}

/// Runs the face-off and renders the sweep + attribution tables.
pub fn run(p: &Profile) -> String {
    let entries = default_entries(p);
    let wbht = pressure_sweep(p, |p, n| wbht_cfg(p, n, entries, UpdateScope::Local));
    let rdcb = pressure_sweep(p, |p, n| rdcb_cfg(p, n, entries));
    let hybrid = pressure_sweep(p, |p, n| hybrid_cfg(p, n, entries));
    format!(
        "WBHT runtime improvement over baseline\n{}\n\
         Reuse-distance copy-back runtime improvement over baseline\n{}\n\
         Hybrid update/invalidate runtime improvement over baseline\n{}\n\
         Mean miss latency by fill source at 6 loads/thread (cycles)\n{}",
        wbht.render(),
        rdcb.render(),
        hybrid.render(),
        attribution(p).render()
    )
}

/// Span-tracer latency attribution at the top pressure level: one row
/// per policy, mean span latency per fill source merged across the
/// standard workloads.
fn attribution(p: &Profile) -> Table {
    let contenders = contenders(p);
    let mut specs = Vec::new();
    for (_, cfg) in &contenders {
        for &wl in &workloads() {
            let mut spec = p.spec(cfg(6), wl);
            spec.span_tracer = SpanTracer::sampled(4);
            specs.push(spec);
        }
    }
    let reports = parallel_runs(specs);
    let mut t = Table::new(vec![
        "Policy".into(),
        "L2 peer".into(),
        "L3".into(),
        "Memory".into(),
        "Castout".into(),
        "Memory fills".into(),
    ]);
    let mut idx = 0;
    for (name, _) in &contenders {
        // Merge each source's latency histogram across the workloads so
        // the row reflects the whole suite.
        let mut merged = [
            Log2Histogram::new(),
            Log2Histogram::new(),
            Log2Histogram::new(),
            Log2Histogram::new(),
        ];
        for _ in &workloads() {
            let s = reports[idx].span_summary.as_ref().expect("tracer enabled");
            idx += 1;
            merged[0].merge(&s.l2_peer.total);
            merged[1].merge(&s.l3.total);
            merged[2].merge(&s.memory.total);
            merged[3].merge(&s.castout.total);
        }
        let mut row = vec![name.to_string()];
        row.extend(merged.iter().map(|h| format!("{:.0}", h.mean())));
        row.push(merged[2].count().to_string());
        t.row(row);
    }
    t
}

/// Structural self-check for CI (`exp_policy_faceoff --check`): runs a
/// smoke-sized face-off and validates that every contender completed,
/// the new policies populated their report sections, and the span
/// attribution recorded fills. Returns the failures, empty on pass.
pub fn check(p: &Profile) -> Vec<String> {
    let contenders = contenders(p);
    let mut specs = Vec::new();
    for (_, cfg) in &contenders {
        let mut spec = p.spec(cfg(4), workloads()[0]);
        spec.span_tracer = SpanTracer::sampled(2);
        specs.push(spec);
    }
    let reports = parallel_runs(specs);
    let mut fails = Vec::new();
    for ((name, _), r) in contenders.iter().zip(&reports) {
        if r.stats.refs == 0 {
            fails.push(format!("{name}: no references processed"));
        }
        let s = r.span_summary.as_ref();
        if s.is_none_or(|s| s.recorded == 0) {
            fails.push(format!("{name}: span tracer recorded nothing"));
        }
        match *name {
            "rdcb" if r.rdcb.as_ref().is_none_or(|x| x.decisions == 0) => {
                fails.push("rdcb: no copy-back decisions audited".into());
            }
            "hybrid" if r.hybrid.is_none() => {
                fails.push("hybrid: report section missing".into());
            }
            "wbht" if r.wbht.allocated == 0 => {
                fails.push("wbht: history table never allocated".into());
            }
            _ => {}
        }
    }
    fails
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Profile {
        Profile {
            scale_factor: 16,
            refs_per_thread: 1_000,
            seeds: 1,
        }
    }

    #[test]
    fn check_passes_on_smoke_profile() {
        let fails = check(&tiny());
        assert!(fails.is_empty(), "faceoff check failed: {fails:?}");
    }

    #[test]
    fn report_covers_every_contender() {
        let out = run(&Profile {
            scale_factor: 16,
            refs_per_thread: 500,
            seeds: 1,
        });
        for want in [
            "WBHT runtime improvement",
            "Reuse-distance copy-back",
            "Hybrid update/invalidate",
            "Mean miss latency by fill source",
            "baseline",
            "rdcb",
            "hybrid",
        ] {
            assert!(out.contains(want), "missing {want:?} in:\n{out}");
        }
    }
}
