//! Figure 6: execution time vs snarf-table size, normalized to a
//! 512-entry table, at 6 outstanding loads/thread.
//!
//! Paper shape: little sensitivity beyond a modest size for most
//! workloads; Trade2 the most sensitive, improving ~4.5 % at 64K.

use crate::experiments::{size_sweep, snarf_cfg};
use crate::Profile;

/// Runs the size sweep and renders normalized runtimes.
pub fn run(p: &Profile) -> String {
    let mut sizes: Vec<u64> = [1024u64, 2048, 4096, 8192, 16384, 32768, 65536]
        .iter()
        .map(|&s| (s / p.scale_factor).max(512))
        .collect();
    sizes.dedup();
    size_sweep(p, &sizes, |p, sz| snarf_cfg(p, 6, sz)).render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_normalized_runtimes() {
        let p = Profile {
            scale_factor: 16,
            refs_per_thread: 1_000,
            seeds: 1,
        };
        let out = run(&p);
        assert!(out.contains("Table entries"));
    }
}
