//! Table 5: effects of L2-to-L2 write-backs at 6 loads/thread.
//!
//! Per workload: performance improvement, reduction in off-chip
//! accesses, % of write-backs snarfed, % of snarfed lines used locally /
//! provided for interventions, increase in the local L2 hit rate, and
//! the L3-issued retry-rate reduction.

use crate::experiments::{base_cfg, default_entries, pct, pp, snarf_cfg, workloads};
use crate::{parallel_runs, Profile, Table};

/// Runs the experiment and renders the table.
pub fn run(p: &Profile) -> String {
    let entries = default_entries(p);
    let mut specs = Vec::new();
    for &wl in &workloads() {
        specs.push(p.spec(base_cfg(p, 6), wl));
        specs.push(p.spec(snarf_cfg(p, 6, entries), wl));
    }
    let reports = parallel_runs(specs);
    let mut t = Table::new(vec![
        "Metric".into(),
        "CPW2".into(),
        "NotesBench".into(),
        "TP".into(),
        "Trade2".into(),
    ]);
    let mut rows: Vec<Vec<String>> = vec![
        vec!["Performance improvement".into()],
        vec!["Reduction in off-chip accesses".into()],
        vec!["Write-backs snarfed".into()],
        vec!["Snarfed lines used locally".into()],
        vec!["Snarfed lines provided for interventions".into()],
        vec!["Increase in local L2 hit rate".into()],
        vec!["L3-issued retry-rate reduction".into()],
    ];
    for pair in reports.chunks(2) {
        let (base, sn) = (&pair[0], &pair[1]);
        rows[0].push(pp(sn.improvement_over(base)));
        let off_red = 1.0
            - sn.stats.off_chip_accesses() as f64 / base.stats.off_chip_accesses().max(1) as f64;
        rows[1].push(pct(off_red));
        rows[2].push(pct(
            sn.stats.snarf.snarfed as f64 / sn.stats.wb.requests().max(1) as f64
        ));
        rows[3].push(pct(sn.stats.snarf.local_use_rate()));
        rows[4].push(pct(sn.stats.snarf.intervention_use_rate()));
        rows[5].push(pp(
            (sn.stats.l2_hit_rate() - base.stats.l2_hit_rate()) * 100.0
        ));
        let retry_red = 1.0 - sn.stats.retries_l3 as f64 / base.stats.retries_l3.max(1) as f64;
        rows[6].push(pct(retry_red));
    }
    for r in rows {
        t.row(r);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_seven_metrics_present() {
        let p = Profile {
            scale_factor: 16,
            refs_per_thread: 2_000,
            seeds: 1,
        };
        let out = run(&p);
        assert!(out.contains("Write-backs snarfed"));
        assert!(out.contains("retry-rate reduction"));
        assert!(out.lines().count() >= 9);
    }
}
