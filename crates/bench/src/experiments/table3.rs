//! Table 3: system parameters (configuration dump).
//!
//! Not a measurement — prints the simulated system's parameters next to
//! the paper's Table 3 values so the reproduction's geometry is
//! auditable.

use crate::{Profile, Table};

/// Renders the configuration table.
pub fn run(p: &Profile) -> String {
    let c = p.config();
    let mut t = Table::new(vec!["Parameter".into(), "This run".into(), "Paper".into()]);
    let l2_total = c.l2_slices * c.l2_slice_bytes / 1024;
    let l3_slice_kb = c.l3.geometry.per_slice().size_bytes() / 1024;
    let rows: Vec<(String, String, &str)> = vec![
        (
            "Processors".into(),
            format!("{}, {}-way SMT", c.cores, c.threads_per_core),
            "8, 2-way SMT",
        ),
        (
            "L2 size".into(),
            format!(
                "{} slices, {} KB each",
                c.l2_slices,
                c.l2_slice_bytes / 1024
            ),
            "4 slices, 512 KB each",
        ),
        ("Number of L2 caches".into(), format!("{}", c.num_l2), "4"),
        (
            "L2 associativity".into(),
            format!("{}-way", c.l2_assoc),
            "8-way",
        ),
        (
            "L2 latency".into(),
            format!("{} cycles", c.l2_hit_cycles),
            "20 cycles",
        ),
        (
            "L3 size".into(),
            format!("{} slices, {} KB each", c.l3.geometry.slices(), l3_slice_kb),
            "4 slices, 4 MB each",
        ),
        (
            "L3 associativity".into(),
            format!("{}-way", c.l3.geometry.per_slice().assoc()),
            "16-way",
        ),
        (
            "Ring".into(),
            format!(
                "bidirectional, {} B wide equiv. ({} cy/transfer), 1:2 core speed",
                32, c.ring.data_occupancy
            ),
            "1:2 core speed, 32B-wide",
        ),
        (
            "Write-back queue".into(),
            format!("{} entries", c.wbq_len),
            "8 entries",
        ),
        (
            "Per-L2 capacity (derived)".into(),
            format!("{} KB", l2_total),
            "2048 KB",
        ),
        ("Line size".into(), format!("{} B", c.line_bytes), "128 B"),
    ];
    for (a, b, c) in rows {
        t.row(vec![a, b, c.to_string()]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_profile_matches_paper_geometry() {
        let out = run(&Profile::full());
        assert!(out.contains("4 slices, 512 KB each"));
        assert!(out.contains("8, 2-way SMT"));
        assert!(out.contains("16-way"));
    }

    #[test]
    fn quick_profile_notes_scaling() {
        let out = run(&Profile::quick());
        assert!(out.contains("64 KB each")); // 512/8
    }
}
