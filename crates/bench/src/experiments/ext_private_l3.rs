//! Extension (paper §7 future work): POWER5-style chip-private L3s.
//!
//! "Currently, we are investigating alternate L3 organizations and
//! policies, including having separate buses for chip-private L3 caches
//! and memory, similar to the POWER 5 architecture from IBM." This
//! experiment compares the paper's shared L3 victim cache against a
//! same-total-capacity partitioning into four private L3s with dedicated
//! buses: castouts skip the snooped ring entirely, but each L2 can only
//! use a quarter of the L3 capacity and cross-L2 reuse is lost.

use cmp_adaptive_wb::L3Organization;

use crate::experiments::{base_cfg, pct, pp, workloads};
use crate::{parallel_runs, Profile, Table};

/// Runs the comparison and renders per-workload outcomes.
pub fn run(p: &Profile) -> String {
    let mut specs = Vec::new();
    for &wl in &workloads() {
        specs.push(p.spec(base_cfg(p, 6), wl));
        let mut private = base_cfg(p, 6);
        private.l3_organization = L3Organization::PrivatePerL2;
        specs.push(p.spec(private, wl));
    }
    let reports = parallel_runs(specs);
    let mut t = Table::new(vec![
        "Workload".into(),
        "Shared cycles".into(),
        "Private cycles".into(),
        "Private vs shared".into(),
        "L3 hit (shared)".into(),
        "L3 hit (private)".into(),
        "Ring addr txns (shared)".into(),
        "(private)".into(),
    ]);
    let l3_hit = |r: &cmp_adaptive_wb::RunReport| {
        let tot = r.l3.read_hits + r.l3.read_misses;
        if tot == 0 {
            0.0
        } else {
            r.l3.read_hits as f64 / tot as f64
        }
    };
    for pair in reports.chunks(2) {
        let (shared, private) = (&pair[0], &pair[1]);
        t.row(vec![
            shared.workload.clone(),
            shared.stats.cycles.to_string(),
            private.stats.cycles.to_string(),
            pp(private.improvement_over(shared)),
            pct(l3_hit(shared)),
            pct(l3_hit(private)),
            shared.ring.addr_issued.to_string(),
            private.ring.addr_issued.to_string(),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn private_organization_runs_and_sheds_ring_traffic() {
        let p = Profile {
            scale_factor: 16,
            refs_per_thread: 2_000,
            seeds: 1,
        };
        let out = run(&p);
        assert!(out.contains("Private"));
        // Private castouts never arbitrate for the address ring, so the
        // private column's transaction count must be lower for the
        // write-back-heavy Trade2 row.
        let line = out
            .lines()
            .find(|l| l.starts_with("Trade2"))
            .expect("Trade2 row");
        let nums: Vec<u64> = line
            .split_whitespace()
            .filter_map(|c| c.parse().ok())
            .collect();
        // cycles(shared), cycles(private), addr(shared), addr(private)
        assert!(nums.len() >= 4);
        let (addr_shared, addr_private) = (nums[nums.len() - 2], nums[nums.len() - 1]);
        assert!(
            addr_private < addr_shared,
            "private ring txns {addr_private} not below shared {addr_shared}"
        );
    }
}
