//! Table 1: percentage of clean L2 write-backs already present in the L3.
//!
//! Paper values: CPW 60.0 %, NotesBench 59.1 %, TP 42.1 %, Trade2 79.1 %.
//! Measured on the *baseline* system at 6 outstanding loads/thread: of
//! all clean castout transactions, the fraction the L3 squashed because
//! it already held a valid copy.

use crate::experiments::{base_cfg, pct, workloads};
use crate::{parallel_runs, Profile, Table};

/// Runs the experiment and renders the table.
pub fn run(p: &Profile) -> String {
    let specs = workloads()
        .iter()
        .map(|&wl| p.spec(base_cfg(p, 6), wl))
        .collect();
    let reports = parallel_runs(specs);
    let mut t = Table::new(vec![
        "Workload".into(),
        "Clean WBs already in L3".into(),
        "(paper)".into(),
    ]);
    let paper = ["60.0%", "59.1%", "42.1%", "79.1%"];
    for (r, paper) in reports.iter().zip(paper) {
        t.row(vec![
            r.workload.clone(),
            pct(r.stats.wb.clean_redundant_rate()),
            paper.into(),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_four_rows_with_percentages() {
        let p = Profile {
            scale_factor: 16,
            refs_per_thread: 2_000,
            seeds: 1,
        };
        let out = run(&p);
        for wl in ["CPW2", "NotesBench", "TP", "Trade2"] {
            assert!(out.contains(wl), "missing {wl} in:\n{out}");
        }
        assert!(out.matches('%').count() >= 8);
    }
}
