//! Figure 3: like Figure 2, but every L2 allocates a WBHT entry when the
//! combined snoop response reveals a redundant clean write-back (global
//! update scope). The paper observes "a small increase for all
//! applications when memory contention is high, with Trade2 benefiting
//! the most".

use cmp_adaptive_wb::UpdateScope;

use crate::experiments::{default_entries, pressure_sweep, wbht_cfg};
use crate::Profile;

/// Runs the sweep and renders percentage improvements per pressure.
pub fn run(p: &Profile) -> String {
    let entries = default_entries(p);
    pressure_sweep(p, |p, n| wbht_cfg(p, n, entries, UpdateScope::Global)).render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_all_workloads() {
        let p = Profile {
            scale_factor: 16,
            refs_per_thread: 1_000,
            seeds: 1,
        };
        let out = run(&p);
        for wl in ["CPW2", "NotesBench", "TP", "Trade2"] {
            assert!(out.contains(wl));
        }
    }
}
