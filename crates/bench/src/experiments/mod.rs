//! One module per table/figure of the paper's evaluation (§5).

pub mod ext_exclusive;
pub mod ext_granularity;
pub mod ext_insert_pos;
pub mod ext_private_l3;
pub mod ext_replacement;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod policy_audit;
pub mod policy_faceoff;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod table4;
pub mod table5;
pub mod workloads_profile;

use cmp_adaptive_wb::{
    HybridConfig, PolicyConfig, RdcbConfig, SnarfConfig, SystemConfig, UpdateScope, WbhtConfig,
};
use cmpsim_trace::Workload;

use crate::Profile;

/// An experiment: its paper id, a title, and a runner producing the
/// report text.
#[derive(Clone)]
pub struct Experiment {
    /// Paper identifier, e.g. `"table1"` or `"fig4"`.
    pub id: &'static str,
    /// Human-readable title.
    pub title: &'static str,
    /// Runner.
    pub run: fn(&Profile) -> String,
}

impl std::fmt::Debug for Experiment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Experiment")
            .field("id", &self.id)
            .field("title", &self.title)
            .finish()
    }
}

/// All experiments, in paper order.
pub fn all() -> Vec<Experiment> {
    vec![
        Experiment {
            id: "table1",
            title: "Table 1: % of clean L2 write-backs already present in the L3",
            run: table1::run,
        },
        Experiment {
            id: "table2",
            title: "Table 2: write-back reuse statistics",
            run: table2::run,
        },
        Experiment {
            id: "table3",
            title: "Table 3: system parameters",
            run: table3::run,
        },
        Experiment {
            id: "table4",
            title: "Table 4: effects of the WBHT (6 loads/thread)",
            run: table4::run,
        },
        Experiment {
            id: "table5",
            title: "Table 5: effects of L2-to-L2 write-backs (6 loads/thread)",
            run: table5::run,
        },
        Experiment {
            id: "fig2",
            title: "Figure 2: runtime improvement of the WBHT vs outstanding loads",
            run: fig2::run,
        },
        Experiment {
            id: "fig3",
            title: "Figure 3: WBHT with global (all-L2) table updates",
            run: fig3::run,
        },
        Experiment {
            id: "fig4",
            title: "Figure 4: runtime vs WBHT size (normalized to 512 entries)",
            run: fig4::run,
        },
        Experiment {
            id: "fig5",
            title: "Figure 5: runtime improvement of L2 snarfing vs outstanding loads",
            run: fig5::run,
        },
        Experiment {
            id: "fig6",
            title: "Figure 6: runtime vs snarf-table size (normalized to 512 entries)",
            run: fig6::run,
        },
        Experiment {
            id: "fig7",
            title: "Figure 7: combined WBHT + snarfing (two half-sized tables)",
            run: fig7::run,
        },
        Experiment {
            id: "ext-granularity",
            title: "Extension (paper §7): multi-line WBHT entries (quarter-size table)",
            run: ext_granularity::run,
        },
        Experiment {
            id: "ext-replacement",
            title: "Extension (paper §7): history-aware L2 replacement",
            run: ext_replacement::run,
        },
        Experiment {
            id: "ext-exclusive",
            title: "Ablation: retaining vs strictly exclusive L3 victim cache",
            run: ext_exclusive::run,
        },
        Experiment {
            id: "ext-private-l3",
            title: "Extension (paper §7): POWER5-style chip-private L3s",
            run: ext_private_l3::run,
        },
        Experiment {
            id: "ext-insert-pos",
            title: "Ablation: snarf insertion recency position (MRU/Mid/LRU)",
            run: ext_insert_pos::run,
        },
        Experiment {
            id: "workloads",
            title: "Workload characterization (calibration evidence)",
            run: workloads_profile::run,
        },
        Experiment {
            id: "policy-audit",
            title: "Decision audit: WBHT abort precision and useful-snarf rate",
            run: policy_audit::run,
        },
        Experiment {
            id: "policy-faceoff",
            title: "Policy face-off: WBHT vs reuse-distance copy-back vs hybrid coherence",
            run: policy_faceoff::run,
        },
    ]
}

/// Looks up an experiment by id.
pub fn by_id(id: &str) -> Option<Experiment> {
    all().into_iter().find(|e| e.id == id)
}

// --- shared configuration helpers -----------------------------------------

/// Baseline system at a given memory pressure.
pub(crate) fn base_cfg(p: &Profile, pressure: u32) -> SystemConfig {
    let mut c = p.config();
    c.max_outstanding = pressure;
    c
}

/// WBHT system (paper default 32K entries unless overridden).
pub(crate) fn wbht_cfg(
    p: &Profile,
    pressure: u32,
    entries: u64,
    scope: UpdateScope,
) -> SystemConfig {
    let mut c = base_cfg(p, pressure);
    c.policy = PolicyConfig::wbht(WbhtConfig {
        entries,
        assoc: 16,
        scope,
        granularity: 1,
    });
    c
}

/// Snarf system.
pub(crate) fn snarf_cfg(p: &Profile, pressure: u32, entries: u64) -> SystemConfig {
    let mut c = base_cfg(p, pressure);
    c.policy = PolicyConfig::snarf(SnarfConfig {
        entries,
        ..Default::default()
    });
    c
}

/// Combined system (two half-sized tables, §5.3).
pub(crate) fn combined_cfg(p: &Profile, pressure: u32, half_entries: u64) -> SystemConfig {
    let mut c = base_cfg(p, pressure);
    c.policy = PolicyConfig::combined(
        WbhtConfig {
            entries: half_entries,
            assoc: 16,
            scope: UpdateScope::Local,
            granularity: 1,
        },
        SnarfConfig {
            entries: half_entries,
            ..Default::default()
        },
    );
    c
}

/// Reuse-distance copy-back system.
pub(crate) fn rdcb_cfg(p: &Profile, pressure: u32, entries: u64) -> SystemConfig {
    let mut c = base_cfg(p, pressure);
    c.policy = PolicyConfig::rdcb(RdcbConfig {
        entries,
        ..Default::default()
    });
    c
}

/// Hybrid update/invalidate coherence system.
pub(crate) fn hybrid_cfg(p: &Profile, pressure: u32, entries: u64) -> SystemConfig {
    let mut c = base_cfg(p, pressure);
    c.policy = PolicyConfig::hybrid(HybridConfig {
        entries,
        ..Default::default()
    });
    c
}

/// Scaled paper-default table size (32K at full scale).
pub(crate) fn default_entries(p: &Profile) -> u64 {
    p.table_entries(32 * 1024)
}

/// Formats a fraction as a percentage.
pub(crate) fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Formats a signed percentage-point value.
pub(crate) fn pp(x: f64) -> String {
    format!("{x:+.1}%")
}

/// The standard workload order used in every table.
pub(crate) fn workloads() -> [Workload; 4] {
    Workload::all()
}

/// A pressure-sweep figure (Figures 2, 3, 5, 7): runs baseline and the
/// variant at pressures 1..=6 and tabulates percentage improvements.
pub(crate) fn pressure_sweep(
    p: &Profile,
    make_variant: impl Fn(&Profile, u32) -> SystemConfig,
) -> crate::Table {
    let pressures: Vec<u32> = (1..=6).collect();
    let mut specs = Vec::new();
    for &wl in &workloads() {
        for &n in &pressures {
            for seed in 0..p.seeds {
                let mut base = base_cfg(p, n);
                base.seed = base.seed.wrapping_add(seed * 7919);
                let mut var = make_variant(p, n);
                var.seed = base.seed;
                specs.push(p.spec(base, wl));
                specs.push(p.spec(var, wl));
            }
        }
    }
    let reports = crate::parallel_runs(specs);
    let mut header = vec!["Max outstanding loads/thread".to_string()];
    header.extend(pressures.iter().map(|n| n.to_string()));
    let mut t = crate::Table::new(header);
    let mut idx = 0;
    for &wl in &workloads() {
        let mut row = vec![wl.name().to_string()];
        for _ in &pressures {
            let mut acc = 0.0;
            for _ in 0..p.seeds {
                let base = &reports[idx];
                let variant = &reports[idx + 1];
                idx += 2;
                acc += variant.improvement_over(base);
            }
            row.push(pp(acc / p.seeds as f64));
        }
        t.row(row);
    }
    t
}

/// A table-size sweep (Figures 4 and 6) at 6 loads/thread: runtimes
/// normalized to the 512-entry configuration (values < 1 are faster).
pub(crate) fn size_sweep(
    p: &Profile,
    sizes: &[u64],
    make_variant: impl Fn(&Profile, u64) -> SystemConfig,
) -> crate::Table {
    let mut specs = Vec::new();
    for &wl in &workloads() {
        for seed in 0..p.seeds {
            let bump = seed * 7919;
            let mut norm = make_variant(p, 512);
            norm.seed = norm.seed.wrapping_add(bump);
            specs.push(p.spec(norm, wl));
            for &sz in sizes {
                let mut cfg = make_variant(p, sz);
                cfg.seed = cfg.seed.wrapping_add(bump);
                specs.push(p.spec(cfg, wl));
            }
        }
    }
    let reports = crate::parallel_runs(specs);
    let mut header = vec!["Table entries".to_string()];
    header.extend(sizes.iter().map(|s| s.to_string()));
    let mut t = crate::Table::new(header);
    let mut idx = 0;
    for &wl in &workloads() {
        let mut acc = vec![0.0f64; sizes.len()];
        for _ in 0..p.seeds {
            let norm = reports[idx].stats.cycles as f64;
            idx += 1;
            for a in acc.iter_mut() {
                *a += reports[idx].stats.cycles as f64 / norm;
                idx += 1;
            }
        }
        let mut row = vec![wl.name().to_string()];
        for a in acc {
            row.push(format!("{:.3}", a / p.seeds as f64));
        }
        t.row(row);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_covers_every_table_and_figure() {
        let ids: Vec<&str> = all().iter().map(|e| e.id).collect();
        for want in [
            "table1", "table2", "table3", "table4", "table5", "fig2", "fig3", "fig4", "fig5",
            "fig6", "fig7",
        ] {
            assert!(ids.contains(&want), "missing experiment {want}");
        }
        assert!(by_id("table4").is_some());
        assert!(by_id("nope").is_none());
    }

    #[test]
    fn config_helpers_set_policies() {
        let p = Profile::quick();
        assert_eq!(base_cfg(&p, 3).max_outstanding, 3);
        assert!(wbht_cfg(&p, 6, 1024, UpdateScope::Local).policy.has_wbht());
        assert!(snarf_cfg(&p, 6, 1024).policy.has_snarf());
        let c = combined_cfg(&p, 6, 2048);
        assert!(c.policy.has_wbht() && c.policy.has_snarf());
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.421), "42.1%");
        assert_eq!(pp(13.09), "+13.1%");
        assert_eq!(pp(-0.26), "-0.3%");
    }
}
