//! Ablation of the snarf-insertion recency position (§3: "managing the
//! LRU information at the recipient cache to optimize the chances of
//! such lines staying at the destination until they are reused").
//!
//! Snarfed lines can enter the recipient's recency stack at MRU (stay
//! longest), mid-stack, or LRU (first out). MRU maximizes reuse but
//! also maximizes interference with the recipient's own lines.

use cmp_adaptive_wb::{PolicyConfig, SnarfConfig};
use cmpsim_cache::InsertPosition;

use crate::experiments::{base_cfg, default_entries, pct, pp, workloads};
use crate::{parallel_runs, Profile, Table};

/// Runs the ablation and renders improvement + snarf-reuse per position.
pub fn run(p: &Profile) -> String {
    let entries = default_entries(p);
    let positions = [
        ("MRU", InsertPosition::Mru),
        ("Mid", InsertPosition::Mid),
        ("LRU", InsertPosition::Lru),
    ];
    let mut specs = Vec::new();
    for &wl in &workloads() {
        specs.push(p.spec(base_cfg(p, 6), wl));
        for &(_, pos) in &positions {
            let mut cfg = base_cfg(p, 6);
            cfg.policy = PolicyConfig::snarf(SnarfConfig {
                entries,
                assoc: 16,
                insert_pos: pos,
            });
            specs.push(p.spec(cfg, wl));
        }
    }
    let reports = parallel_runs(specs);
    let mut header = vec!["Workload".to_string()];
    for (name, _) in positions {
        header.push(format!("{name} improvement"));
        header.push("reused".into());
    }
    let mut t = Table::new(header);
    let mut idx = 0;
    for &wl in &workloads() {
        let base = reports[idx].clone();
        idx += 1;
        let mut row = vec![wl.name().to_string()];
        for _ in positions {
            let r = &reports[idx];
            idx += 1;
            row.push(pp(r.improvement_over(&base)));
            let reuse = (r.stats.snarf.used_locally + r.stats.snarf.used_for_intervention) as f64
                / r.stats.snarf.snarfed.max(1) as f64;
            row.push(pct(reuse));
        }
        t.row(row);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablation_renders_three_positions() {
        let p = Profile {
            scale_factor: 16,
            refs_per_thread: 1_500,
            seeds: 1,
        };
        let out = run(&p);
        for col in ["MRU improvement", "Mid improvement", "LRU improvement"] {
            assert!(out.contains(col), "missing {col}");
        }
    }
}
