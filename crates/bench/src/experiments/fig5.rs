//! Figure 5: runtime improvement from allowing L2-to-L2 write-back
//! snarfing, versus outstanding loads per thread.
//!
//! Paper shape: CPW2 and NotesBench flat at ~1.7–2.4 %, Trade2 rising
//! to ~5.9 %, TP spiking to ~13 % at high pressure (driven by a >99 %
//! reduction in L3-issued retries).

use crate::experiments::{default_entries, pressure_sweep, snarf_cfg};
use crate::Profile;

/// Runs the sweep and renders percentage improvements per pressure.
pub fn run(p: &Profile) -> String {
    let entries = default_entries(p);
    pressure_sweep(p, |p, n| snarf_cfg(p, n, entries)).render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_sweep() {
        let p = Profile {
            scale_factor: 16,
            refs_per_thread: 1_000,
            seeds: 1,
        };
        let out = run(&p);
        assert!(out.contains("TP"));
        assert!(out.lines().count() >= 6);
    }
}
