//! Figure 7: the combined WBHT + snarf system — with each table halved
//! to 16K entries to keep the total area constant (§5.3) — versus
//! outstanding loads per thread.
//!
//! Paper shape: benefits are not additive; TP beats either mechanism
//! alone, Trade2's combined gain falls below WBHT-only at high pressure
//! but wins at low pressure.

use crate::experiments::{combined_cfg, default_entries, pressure_sweep};
use crate::Profile;

/// Runs the sweep and renders percentage improvements per pressure.
pub fn run(p: &Profile) -> String {
    let half = (default_entries(p) / 2).max(256);
    pressure_sweep(p, |p, n| combined_cfg(p, n, half)).render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_sweep() {
        let p = Profile {
            scale_factor: 16,
            refs_per_thread: 1_000,
            seeds: 1,
        };
        let out = run(&p);
        assert!(out.contains("CPW2"));
    }
}
