//! Extension (paper §7 future work): multi-line WBHT entries.
//!
//! "One idea we are investigating for reducing the size of the WBHT …
//! is to allow each entry in the table to serve multiple cache lines,
//! reducing the size of each entry and providing greater coverage at
//! the risk of increased prediction errors." This experiment sweeps the
//! per-entry coverage (1–8 lines) at a fixed *quarter-size* table and 6
//! outstanding loads/thread, reporting runtime improvement over the
//! baseline and the oracle-correct decision rate.

use cmp_adaptive_wb::{PolicyConfig, UpdateScope, WbhtConfig};

use crate::experiments::{base_cfg, pct, pp, workloads};
use crate::{parallel_runs, Profile, Table};

/// Runs the sweep and renders improvement / correctness per granularity.
pub fn run(p: &Profile) -> String {
    // A deliberately small table: coverage is where coarse entries help.
    let entries = p.table_entries(8 * 1024);
    let grans = [1u64, 2, 4, 8];
    let mut specs = Vec::new();
    for &wl in &workloads() {
        specs.push(p.spec(base_cfg(p, 6), wl));
        for &g in &grans {
            let mut cfg = base_cfg(p, 6);
            cfg.policy = PolicyConfig::wbht(WbhtConfig {
                entries,
                assoc: 16,
                scope: UpdateScope::Local,
                granularity: g,
            });
            specs.push(p.spec(cfg, wl));
        }
    }
    let reports = parallel_runs(specs);
    let mut header = vec!["Workload".to_string()];
    for &g in &grans {
        header.push(format!("{g} line/entry"));
        header.push("correct".into());
    }
    let mut t = Table::new(header);
    let mut idx = 0;
    for &wl in &workloads() {
        let base = reports[idx].clone();
        idx += 1;
        let mut row = vec![wl.name().to_string()];
        for _ in &grans {
            let r = &reports[idx];
            idx += 1;
            row.push(pp(r.improvement_over(&base)));
            row.push(pct(r.wbht.correct_rate()));
        }
        t.row(row);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_renders() {
        let p = Profile {
            scale_factor: 16,
            refs_per_thread: 1_000,
            seeds: 1,
        };
        let out = run(&p);
        assert!(out.contains("1 line/entry"));
        assert!(out.contains("8 line/entry"));
        assert!(out.contains("Trade2"));
    }
}
