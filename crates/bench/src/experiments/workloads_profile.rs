//! Workload characterization: the measurable properties of the four
//! synthetic commercial workloads, as the calibration evidence behind
//! DESIGN.md's trace substitution.

use cmpsim_trace::analysis::{profile, ReuseDistances};
use cmpsim_trace::SyntheticWorkload;

use crate::experiments::{pct, workloads};
use crate::{Profile, Table};

/// Profiles each workload's generated stream and renders the table.
pub fn run(p: &Profile) -> String {
    let cfg = p.config();
    let n = (p.refs_per_thread as usize * 4).min(400_000);
    let mut t = Table::new(vec![
        "Workload".into(),
        "Stores".into(),
        "Footprint (lines)".into(),
        "Shared lines".into(),
        "Cross-L2 lines".into(),
        "Cold misses".into(),
        "LRU hit @ one-L2".into(),
        "LRU hit @ L3".into(),
    ]);
    for wl in workloads() {
        let params = wl.params(cfg.num_threads(), cfg.cache_scale());
        let mut gen = SyntheticWorkload::new(params, cfg.seed).expect("valid preset");
        let records = gen.generate(n);
        let prof = profile(&records, cfg.line_bytes, 4);
        let rd = ReuseDistances::from_records(&records, cfg.line_bytes);
        let l2_lines = cfg.l2_lines_total() / cfg.num_l2 as u64;
        let l3_lines = cfg.l3_lines_total();
        t.row(vec![
            wl.name().into(),
            format!("{:.1}%", prof.store_permille as f64 / 10.0),
            prof.footprint_lines.to_string(),
            pct(prof.shared_lines as f64 / prof.footprint_lines.max(1) as f64),
            pct(prof.cross_l2_lines as f64 / prof.footprint_lines.max(1) as f64),
            pct(rd.cold_misses() as f64 / rd.total().max(1) as f64),
            pct(rd.hit_rate_at(l2_lines)),
            pct(rd.hit_rate_at(l3_lines)),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_have_expected_ordering() {
        let p = Profile {
            scale_factor: 16,
            refs_per_thread: 4_000,
            seeds: 1,
        };
        let out = run(&p);
        assert!(out.contains("Footprint"));
        // Every workload row renders with eight columns.
        for wl in ["CPW2", "NotesBench", "TP", "Trade2"] {
            let row = out.lines().find(|l| l.starts_with(wl)).unwrap();
            assert!(row.matches('%').count() >= 5, "row {row}");
        }
    }
}
