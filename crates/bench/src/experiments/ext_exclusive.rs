//! Ablation of design decision 3 (DESIGN.md): the L3 victim cache keeps
//! its copy on a read hit.
//!
//! The paper's Table 1 exists *because* the modelled L3 retains lines it
//! serves back to the L2s — that is what makes 42–79 % of clean
//! write-backs redundant, and what gives the WBHT something to learn.
//! This ablation flips the L3 to a strictly exclusive victim cache
//! (invalidate on read hit) and shows the redundancy — and with it the
//! WBHT's abort opportunity — collapsing.

use crate::experiments::{base_cfg, pct, workloads};
use crate::{parallel_runs, Profile, Table};

/// Runs the ablation and renders redundancy rates under both designs.
pub fn run(p: &Profile) -> String {
    let mut specs = Vec::new();
    for &wl in &workloads() {
        specs.push(p.spec(base_cfg(p, 6), wl));
        let mut excl = base_cfg(p, 6);
        excl.l3.exclusive_on_read_hit = true;
        specs.push(p.spec(excl, wl));
    }
    let reports = parallel_runs(specs);
    let mut t = Table::new(vec![
        "Workload".into(),
        "Redundant clean WBs (retaining L3)".into(),
        "Redundant (exclusive L3)".into(),
        "L3 load hit (retaining)".into(),
        "L3 load hit (exclusive)".into(),
    ]);
    let l3_hit = |r: &cmp_adaptive_wb::RunReport| {
        let tot = r.l3.read_hits + r.l3.read_misses;
        if tot == 0 {
            0.0
        } else {
            r.l3.read_hits as f64 / tot as f64
        }
    };
    for pair in reports.chunks(2) {
        let (keep, excl) = (&pair[0], &pair[1]);
        t.row(vec![
            keep.workload.clone(),
            pct(keep.stats.wb.clean_redundant_rate()),
            pct(excl.stats.wb.clean_redundant_rate()),
            pct(l3_hit(keep)),
            pct(l3_hit(excl)),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exclusive_l3_reduces_redundancy() {
        let p = Profile {
            scale_factor: 16,
            refs_per_thread: 2_500,
            seeds: 1,
        };
        let out = run(&p);
        assert!(out.contains("exclusive"));
        // Parse the Trade2 row: retaining redundancy should exceed the
        // exclusive one.
        let line = out
            .lines()
            .find(|l| l.starts_with("Trade2"))
            .expect("Trade2 row");
        let vals: Vec<f64> = line
            .split_whitespace()
            .filter_map(|c| c.strip_suffix('%'))
            .filter_map(|c| c.parse().ok())
            .collect();
        assert!(vals.len() >= 2);
        assert!(
            vals[0] > vals[1],
            "retaining L3 should be more redundant: {vals:?}"
        );
    }
}
