//! Extension (paper §7 future work): history-aware L2 replacement.
//!
//! "Finally, we are developing new replacement algorithms that take into
//! account information contained in the history tables presented here to
//! better utilize all available cache space." This experiment compares
//! the WBHT policy with plain LRU replacement against a variant whose
//! victim selection prefers — among the four least-recently-used ways —
//! clean lines the WBHT knows to be resident in the L3 (their write-back
//! will be aborted and a later re-fetch pays only the L3 latency).

use cmp_adaptive_wb::UpdateScope;

use crate::experiments::{default_entries, pp, wbht_cfg, workloads};
use crate::{parallel_runs, Profile, Table};

/// Runs the comparison and renders improvements over the plain-LRU WBHT
/// system.
pub fn run(p: &Profile) -> String {
    let entries = default_entries(p);
    let mut specs = Vec::new();
    for &wl in &workloads() {
        specs.push(p.spec(wbht_cfg(p, 6, entries, UpdateScope::Local), wl));
        let mut aware = wbht_cfg(p, 6, entries, UpdateScope::Local);
        aware.history_aware_replacement = true;
        specs.push(p.spec(aware, wl));
    }
    let reports = parallel_runs(specs);
    let mut t = Table::new(vec![
        "Workload".into(),
        "WBHT cycles".into(),
        "+history-aware cycles".into(),
        "delta".into(),
    ]);
    for pair in reports.chunks(2) {
        let (lru, aware) = (&pair[0], &pair[1]);
        t.row(vec![
            lru.workload.clone(),
            lru.stats.cycles.to_string(),
            aware.stats.cycles.to_string(),
            pp(aware.improvement_over(lru)),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comparison_renders() {
        let p = Profile {
            scale_factor: 16,
            refs_per_thread: 1_000,
            seeds: 1,
        };
        let out = run(&p);
        assert!(out.contains("history-aware"));
        assert!(out.contains("TP"));
    }
}
