//! Decision-quality audit across the memory-pressure sweep.
//!
//! Runs the combined policy (two half-sized tables, §5.3) with the
//! decision-audit layer enabled and tabulates, per workload and
//! pressure level, how good the adaptive decisions actually were:
//! WBHT abort precision (aborted clean write-backs that were never
//! re-missed all the way to memory), the useful-snarf rate (snarfed
//! lines that later served a local hit or an intervention), and the
//! whole-machine net cycle balance of both mechanisms.

use crate::experiments::{combined_cfg, default_entries, pct, workloads};
use crate::{parallel_runs, Profile, Table};

/// Runs the experiment and renders the three quality tables.
pub fn run(p: &Profile) -> String {
    let half = (default_entries(p) / 2).max(256);
    let pressures: Vec<u32> = (1..=6).collect();
    let mut specs = Vec::new();
    for &wl in &workloads() {
        for &n in &pressures {
            let mut spec = p.spec(combined_cfg(p, n, half), wl);
            spec.audit = true;
            specs.push(spec);
        }
    }
    let reports = parallel_runs(specs);

    let mut header = vec!["Max outstanding loads/thread".to_string()];
    header.extend(pressures.iter().map(|n| n.to_string()));
    let mut precision = Table::new(header.clone());
    let mut useful = Table::new(header.clone());
    let mut net = Table::new(header);
    let mut idx = 0;
    for &wl in &workloads() {
        let mut prow = vec![wl.name().to_string()];
        let mut urow = vec![wl.name().to_string()];
        let mut nrow = vec![wl.name().to_string()];
        for _ in &pressures {
            let a = reports[idx].audit.as_ref().expect("audit enabled");
            idx += 1;
            prow.push(if a.totals.aborts == 0 {
                "n/a".into()
            } else {
                pct(a.abort_precision())
            });
            urow.push(if a.totals.snarfs == 0 {
                "n/a".into()
            } else {
                pct(a.useful_snarf_rate())
            });
            nrow.push(format!("{:+}", a.net_cycles()));
        }
        precision.row(prow);
        useful.row(urow);
        net.row(nrow);
    }
    format!(
        "WBHT abort precision (aborted write-backs never re-missed to memory)\n{}\n\
         Useful-snarf rate (snarfed lines later hit locally or served a peer)\n{}\n\
         Net cycles saved (abort + snarf credits minus penalties)\n{}",
        precision.render(),
        useful.render(),
        net.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reports_quality_rates_per_workload() {
        let p = Profile {
            scale_factor: 16,
            refs_per_thread: 2_000,
            seeds: 1,
        };
        let out = run(&p);
        assert!(out.contains("abort precision"));
        assert!(out.contains("Useful-snarf rate"));
        assert!(out.contains("Net cycles"));
        // Every workload appears once per table.
        for wl in workloads() {
            assert_eq!(out.matches(wl.name()).count(), 3, "{}", wl.name());
        }
        // At least one cell resolved to an actual percentage.
        assert!(out.contains('%'), "no resolved rates in:\n{out}");
    }
}
