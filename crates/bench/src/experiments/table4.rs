//! Table 4: effects of the Write-Back History Table at 6 loads/thread.
//!
//! Per workload, base vs WBHT: the WBHT correct-decision rate (oracle:
//! peeking into the L3), the L3 load hit rate, the number of L2
//! write-back requests reaching the bus, and the L3-issued retry count.

use cmp_adaptive_wb::UpdateScope;

use crate::experiments::{base_cfg, default_entries, pct, wbht_cfg, workloads};
use crate::{parallel_runs, Profile, Table};

/// Runs the experiment and renders the table.
pub fn run(p: &Profile) -> String {
    let entries = default_entries(p);
    let mut specs = Vec::new();
    for &wl in &workloads() {
        specs.push(p.spec(base_cfg(p, 6), wl));
        specs.push(p.spec(wbht_cfg(p, 6, entries, UpdateScope::Local), wl));
    }
    let reports = parallel_runs(specs);
    let mut t = Table::new(vec![
        "Workload".into(),
        "Config".into(),
        "WBHT correct".into(),
        "L3 load hit rate".into(),
        "L2 WB requests".into(),
        "L3-issued retries".into(),
    ]);
    for pair in reports.chunks(2) {
        let (base, wbht) = (&pair[0], &pair[1]);
        let l3_hit = |r: &cmp_adaptive_wb::RunReport| {
            let tot = r.l3.read_hits + r.l3.read_misses;
            if tot == 0 {
                0.0
            } else {
                r.l3.read_hits as f64 / tot as f64
            }
        };
        t.row(vec![
            base.workload.clone(),
            "Base".into(),
            "N/A".into(),
            pct(l3_hit(base)),
            base.stats.wb.requests().to_string(),
            base.stats.retries_l3.to_string(),
        ]);
        t.row(vec![
            String::new(),
            "WBHT".into(),
            pct(wbht.wbht.correct_rate()),
            pct(l3_hit(wbht)),
            wbht.stats.wb.requests().to_string(),
            wbht.stats.retries_l3.to_string(),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_for_base_and_wbht() {
        let p = Profile {
            scale_factor: 16,
            refs_per_thread: 2_000,
            seeds: 1,
        };
        let out = run(&p);
        assert_eq!(out.matches("Base").count(), 4);
        assert_eq!(out.matches("WBHT").count(), 4 + 1); // header column label
    }
}
