//! Experiment profiles: how large a simulation each experiment runs.

use cmp_adaptive_wb::{RetrySwitchConfig, RunReport, RunSpec, SystemConfig};

/// Scale profile for experiment runs.
///
/// * `quick` — hierarchy capacities divided by 8 (L2 256 KB/cache, L3
///   2 MB), 30 k references per thread. Minutes for the full suite.
/// * `full` — the paper's geometry (Table 3), 200 k references per
///   thread. Use for final numbers.
///
/// Selected via the `CMPSIM_PROFILE` environment variable (`quick` /
/// `full`), defaulting to `quick`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Profile {
    /// Capacity divisor relative to the paper system.
    pub scale_factor: u64,
    /// References per thread per run.
    pub refs_per_thread: u64,
    /// Independent workload seeds per data point (figure sweeps report
    /// the mean across seeds). Default 1; set `CMPSIM_SEEDS` to raise.
    pub seeds: u64,
}

impl Profile {
    /// The quick profile.
    pub fn quick() -> Self {
        Profile {
            scale_factor: 8,
            refs_per_thread: 30_000,
            seeds: 1,
        }
    }

    /// The paper-scale profile.
    pub fn full() -> Self {
        Profile {
            scale_factor: 1,
            refs_per_thread: 200_000,
            seeds: 1,
        }
    }

    /// Reads `CMPSIM_PROFILE` (default: quick) and `CMPSIM_SEEDS`.
    pub fn from_env() -> Self {
        let mut p = match std::env::var("CMPSIM_PROFILE").as_deref() {
            Ok("full") => Self::full(),
            _ => Self::quick(),
        };
        if let Ok(s) = std::env::var("CMPSIM_SEEDS") {
            if let Ok(n) = s.parse::<u64>() {
                p.seeds = n.clamp(1, 32);
            }
        }
        p
    }

    /// Base system configuration at this profile's scale.
    pub fn config(&self) -> SystemConfig {
        if self.scale_factor == 1 {
            SystemConfig::paper()
        } else {
            SystemConfig::scaled(self.scale_factor)
        }
    }

    /// Retry-switch window scaled with the profile (runs are shorter at
    /// smaller scales, so the observation window shrinks too).
    pub fn retry_switch(&self) -> RetrySwitchConfig {
        RetrySwitchConfig::scaled(self.scale_factor)
    }

    /// A run spec for this profile with the given configuration and
    /// workload.
    pub fn spec(&self, config: SystemConfig, workload: cmpsim_trace::Workload) -> RunSpec {
        let mut spec = RunSpec::for_workload(config, workload, self.refs_per_thread);
        spec.retry_switch = Some(self.retry_switch());
        spec
    }

    /// Scales an absolute table-entry count to this profile (32 K
    /// entries in the paper becomes 4 K at scale 8), with a floor that
    /// keeps tables non-degenerate.
    pub fn table_entries(&self, paper_entries: u64) -> u64 {
        (paper_entries / self.scale_factor).max(256)
    }
}

/// Runs several simulations in parallel (one OS thread each),
/// preserving input order in the results.
///
/// Simulations are deterministic and independent; parallelism only
/// shortens wall-clock time.
///
/// # Panics
///
/// Panics if any simulation fails to build (invalid config/workload) —
/// experiment specs are constructed from validated profiles.
pub fn parallel_runs(specs: Vec<RunSpec>) -> Vec<RunReport> {
    let n = specs.len();
    let mut out: Vec<Option<RunReport>> = (0..n).map(|_| None).collect();
    // Bound concurrency to the machine.
    let max_par = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4);
    let specs: Vec<(usize, RunSpec)> = specs.into_iter().enumerate().collect();
    for chunk in specs.chunks(max_par) {
        let handles: Vec<_> = chunk
            .iter()
            .cloned()
            .map(|(idx, spec)| {
                std::thread::spawn(move || (idx, cmp_adaptive_wb::run(spec).expect("valid spec")))
            })
            .collect();
        for h in handles {
            let (idx, report) = h.join().expect("simulation thread panicked");
            out[idx] = Some(report);
        }
    }
    out.into_iter()
        .map(|r| r.expect("all runs joined"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmpsim_trace::Workload;

    #[test]
    fn profiles_scale() {
        let q = Profile::quick();
        let f = Profile::full();
        assert_eq!(q.seeds, 1);
        assert!(q.scale_factor > f.scale_factor);
        assert_eq!(q.table_entries(32 * 1024), 4096);
        assert_eq!(f.table_entries(32 * 1024), 32 * 1024);
        assert_eq!(q.table_entries(512), 256); // floor
    }

    #[test]
    fn parallel_matches_serial() {
        let p = Profile {
            scale_factor: 16,
            refs_per_thread: 400,
            seeds: 1,
        };
        let spec = p.spec(p.config(), Workload::Cpw2);
        let serial = cmp_adaptive_wb::run(spec.clone()).unwrap();
        let par = parallel_runs(vec![spec.clone(), spec]);
        assert_eq!(par[0].stats.cycles, serial.stats.cycles);
        assert_eq!(par[1].stats.cycles, serial.stats.cycles);
    }
}
