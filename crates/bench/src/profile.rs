//! Experiment profiles: how large a simulation each experiment runs.

use cmp_adaptive_wb::{RetrySwitchConfig, RunReport, RunSpec, SystemConfig};

/// Scale profile for experiment runs.
///
/// * `quick` — hierarchy capacities divided by 8 (L2 256 KB/cache, L3
///   2 MB), 30 k references per thread. Minutes for the full suite.
/// * `full` — the paper's geometry (Table 3), 200 k references per
///   thread. Use for final numbers.
///
/// Selected via the `CMPSIM_PROFILE` environment variable (`quick` /
/// `full`), defaulting to `quick`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Profile {
    /// Capacity divisor relative to the paper system.
    pub scale_factor: u64,
    /// References per thread per run.
    pub refs_per_thread: u64,
    /// Independent workload seeds per data point (figure sweeps report
    /// the mean across seeds). Default 1; set `CMPSIM_SEEDS` to raise.
    pub seeds: u64,
}

impl Profile {
    /// The quick profile.
    pub fn quick() -> Self {
        Profile {
            scale_factor: 8,
            refs_per_thread: 30_000,
            seeds: 1,
        }
    }

    /// The paper-scale profile.
    pub fn full() -> Self {
        Profile {
            scale_factor: 1,
            refs_per_thread: 200_000,
            seeds: 1,
        }
    }

    /// A seconds-long smoke profile for CI: tiny hierarchy, short
    /// streams. The numbers are not meaningful — only their
    /// reproducibility is (the serial-vs-parallel CI gate diffs two
    /// smoke runs).
    pub fn smoke() -> Self {
        Profile {
            scale_factor: 16,
            refs_per_thread: 500,
            seeds: 1,
        }
    }

    /// Reads `CMPSIM_PROFILE` (default: quick) and `CMPSIM_SEEDS`.
    pub fn from_env() -> Self {
        let mut p = match std::env::var("CMPSIM_PROFILE").as_deref() {
            Ok("full") => Self::full(),
            Ok("smoke") => Self::smoke(),
            _ => Self::quick(),
        };
        if let Ok(s) = std::env::var("CMPSIM_SEEDS") {
            if let Ok(n) = s.parse::<u64>() {
                p.seeds = n.clamp(1, 32);
            }
        }
        p
    }

    /// Base system configuration at this profile's scale.
    pub fn config(&self) -> SystemConfig {
        if self.scale_factor == 1 {
            SystemConfig::paper()
        } else {
            SystemConfig::scaled(self.scale_factor)
        }
    }

    /// Retry-switch window scaled with the profile (runs are shorter at
    /// smaller scales, so the observation window shrinks too).
    pub fn retry_switch(&self) -> RetrySwitchConfig {
        RetrySwitchConfig::scaled(self.scale_factor)
    }

    /// A run spec for this profile with the given configuration and
    /// workload.
    pub fn spec(&self, config: SystemConfig, workload: cmpsim_trace::Workload) -> RunSpec {
        let mut spec = RunSpec::for_workload(config, workload, self.refs_per_thread);
        spec.retry_switch = Some(self.retry_switch());
        spec.shards = effective_shards();
        spec
    }

    /// Scales an absolute table-entry count to this profile (32 K
    /// entries in the paper becomes 4 K at scale 8), with a floor that
    /// keeps tables non-degenerate.
    pub fn table_entries(&self, paper_entries: u64) -> u64 {
        (paper_entries / self.scale_factor).max(256)
    }
}

/// Runs a grid of simulations through at most `jobs` worker threads,
/// returning reports in input order.
///
/// Simulations are deterministic and independent, so the schedule only
/// affects wall-clock time: `run_grid(specs, 1)` and
/// `run_grid(specs, 32)` produce identical reports. Workers pull the
/// next unstarted spec from a shared cursor (no chunk barriers), so a
/// slow run never serializes the runs behind it.
///
/// # Panics
///
/// Panics if any simulation fails to build (invalid config/workload) —
/// experiment specs are constructed from validated profiles.
pub fn run_grid(specs: Vec<RunSpec>, jobs: usize) -> Vec<RunReport> {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    let n = specs.len();
    let jobs = jobs.max(1).min(n.max(1));
    if jobs == 1 {
        return specs
            .into_iter()
            .map(|s| cmp_adaptive_wb::run(s).expect("valid spec"))
            .collect();
    }
    let slots: Vec<Mutex<Option<RunSpec>>> =
        specs.into_iter().map(|s| Mutex::new(Some(s))).collect();
    let out: Vec<Mutex<Option<RunReport>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let spec = slots[i]
                    .lock()
                    .expect("spec slot poisoned")
                    .take()
                    .expect("each slot claimed once");
                let report = cmp_adaptive_wb::run(spec).expect("valid spec");
                *out[i].lock().expect("report slot poisoned") = Some(report);
            });
        }
    });
    out.into_iter()
        .map(|m| {
            m.into_inner()
                .expect("report slot poisoned")
                .expect("all runs joined")
        })
        .collect()
}

/// Process-wide worker-count override set by `--jobs`; 0 means auto.
static JOBS: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);

/// Overrides the worker count used by [`parallel_runs`] (0 restores
/// auto-detection).
pub fn set_jobs(jobs: usize) {
    JOBS.store(jobs, std::sync::atomic::Ordering::Relaxed);
}

/// The worker count [`parallel_runs`] will use: the `--jobs` override
/// if set, else the `CMPSIM_JOBS` environment variable, else the
/// machine's available parallelism.
pub fn effective_jobs() -> usize {
    let j = JOBS.load(std::sync::atomic::Ordering::Relaxed);
    if j > 0 {
        return j;
    }
    if let Ok(v) = std::env::var("CMPSIM_JOBS") {
        if let Ok(n) = v.parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
}

/// Parses `--jobs N` (or `--jobs=N`) from the process arguments and
/// registers it as the worker-count override. Experiment binaries call
/// this once at startup; unknown arguments are left for the caller.
pub fn jobs_from_args() {
    let args: Vec<String> = std::env::args().collect();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let n = if a == "--jobs" {
            it.next().and_then(|v| v.parse::<usize>().ok())
        } else if let Some(v) = a.strip_prefix("--jobs=") {
            v.parse::<usize>().ok()
        } else {
            continue;
        };
        match n {
            Some(n) if n > 0 => set_jobs(n),
            _ => {
                eprintln!("--jobs expects a positive integer");
                std::process::exit(2);
            }
        }
        return;
    }
}

/// Process-wide per-run shard-count override set by `--shards`;
/// 0 means serial (1).
static SHARDS: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);

/// Overrides the per-run shard count applied by [`Profile::spec`]
/// (0 restores the serial default).
pub fn set_shards(shards: usize) {
    SHARDS.store(shards, std::sync::atomic::Ordering::Relaxed);
}

/// The per-run shard count [`Profile::spec`] will apply: the `--shards`
/// override if set, else the `CMPSIM_SHARDS` environment variable, else
/// 1 (serial). Unlike `--jobs` there is no auto-detection: sharding a
/// run is byte-identical but not free on saturated hosts, so it stays
/// opt-in. `--shards` composes with `--jobs` — grid cells still fan out
/// across jobs, and each run additionally shards its frontend.
pub fn effective_shards() -> usize {
    let s = SHARDS.load(std::sync::atomic::Ordering::Relaxed);
    if s > 0 {
        return s;
    }
    if let Ok(v) = std::env::var("CMPSIM_SHARDS") {
        if let Ok(n) = v.parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    1
}

/// Parses `--shards N` (or `--shards=N`) from the process arguments and
/// registers it as the per-run shard-count override. Experiment
/// binaries call this once at startup (next to [`jobs_from_args`]);
/// unknown arguments are left for the caller.
pub fn shards_from_args() {
    let args: Vec<String> = std::env::args().collect();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let n = if a == "--shards" {
            it.next().and_then(|v| v.parse::<usize>().ok())
        } else if let Some(v) = a.strip_prefix("--shards=") {
            v.parse::<usize>().ok()
        } else {
            continue;
        };
        match n {
            Some(n) if n > 0 => set_shards(n),
            _ => {
                eprintln!("--shards expects a positive integer");
                std::process::exit(2);
            }
        }
        return;
    }
}

/// Runs several simulations in parallel, preserving input order in the
/// results. The worker count comes from [`effective_jobs`] (`--jobs` /
/// `CMPSIM_JOBS` / auto); results are identical at any setting.
///
/// # Panics
///
/// Panics if any simulation fails to build (invalid config/workload) —
/// experiment specs are constructed from validated profiles.
pub fn parallel_runs(specs: Vec<RunSpec>) -> Vec<RunReport> {
    run_grid(specs, effective_jobs())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmpsim_trace::Workload;

    #[test]
    fn profiles_scale() {
        let q = Profile::quick();
        let f = Profile::full();
        assert_eq!(q.seeds, 1);
        assert!(q.scale_factor > f.scale_factor);
        assert_eq!(q.table_entries(32 * 1024), 4096);
        assert_eq!(f.table_entries(32 * 1024), 32 * 1024);
        assert_eq!(q.table_entries(512), 256); // floor
    }

    #[test]
    fn spec_applies_shard_override() {
        // Serial-only test ordering hazard: the override is
        // process-wide, so restore it before returning.
        let p = Profile::smoke();
        assert_eq!(p.spec(p.config(), Workload::Tp).shards, 1);
        set_shards(4);
        assert_eq!(p.spec(p.config(), Workload::Tp).shards, 4);
        set_shards(0);
        assert_eq!(p.spec(p.config(), Workload::Tp).shards, 1);
    }

    #[test]
    fn parallel_matches_serial() {
        let p = Profile {
            scale_factor: 16,
            refs_per_thread: 400,
            seeds: 1,
        };
        let spec = p.spec(p.config(), Workload::Cpw2);
        let serial = cmp_adaptive_wb::run(spec.clone()).unwrap();
        let par = parallel_runs(vec![spec.clone(), spec]);
        assert_eq!(par[0].stats.cycles, serial.stats.cycles);
        assert_eq!(par[1].stats.cycles, serial.stats.cycles);
    }
}
