//! Internal calibration probe: local- vs global-update WBHT and snarf
//! comparisons at 6 outstanding loads (used while tuning Figure 2/3
//! behaviour; kept for future recalibration work).
use cmp_adaptive_wb::{
    run, PolicyConfig, RunSpec, SnarfConfig, SystemConfig, UpdateScope, WbhtConfig,
};
use cmpsim_trace::Workload;
fn main() {
    let refs: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(20_000);
    for wl in Workload::all() {
        let cfg = |p: PolicyConfig| {
            let mut c = SystemConfig::scaled(8);
            c.max_outstanding = 6;
            c.policy = p;
            c
        };
        let base = run(RunSpec::for_workload(
            cfg(PolicyConfig::baseline()),
            wl,
            refs,
        ))
        .unwrap();
        let wl_ = |scope| {
            PolicyConfig::wbht(WbhtConfig {
                entries: 4096,
                assoc: 16,
                scope,
                granularity: 1,
            })
        };
        let local = run(RunSpec::for_workload(
            cfg(wl_(UpdateScope::Local)),
            wl,
            refs,
        ))
        .unwrap();
        let global = run(RunSpec::for_workload(
            cfg(wl_(UpdateScope::Global)),
            wl,
            refs,
        ))
        .unwrap();
        let sn = run(RunSpec::for_workload(
            cfg(PolicyConfig::snarf(SnarfConfig {
                entries: 4096,
                ..Default::default()
            })),
            wl,
            refs,
        ))
        .unwrap();
        println!("{:<11} base={:>8}  wbht-local={:+.1}%  wbht-global={:+.1}%  snarf={:+.1}% (snarfed={} squash={} retries {}->{})",
            wl.name(), base.stats.cycles,
            local.improvement_over(&base), global.improvement_over(&base), sn.improvement_over(&base),
            sn.stats.snarf.snarfed, sn.stats.wb.squashed_peer, base.stats.retries_l3, sn.stats.retries_l3);
    }
}
