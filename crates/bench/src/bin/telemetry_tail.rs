//! `telemetry_tail` — attach to a live telemetry stream and render a
//! refreshing console view of the simulator: per-stage wall-time bars,
//! cycles/sec, queue depths, and (when the run has `--audit` on)
//! adaptive-decision quality, one block per grid cell.
//!
//! ```text
//! telemetry_tail [--once] [--wait SECS] [--refresh MS] PATH|-
//! ```
//!
//! `PATH` is the Unix socket a simulator is serving via
//! `--stream-telemetry=PATH`; `-` reads a stream from stdin (e.g.
//! `cmpsim -q --stream-telemetry | telemetry_tail -`). `--wait` retries
//! the connection until the socket exists (default 5 s), so the tail
//! can be started before the sweep. `--once` prints one plain-text
//! snapshot after the first host sample (or at end of stream) and
//! exits — 0 only if a host sample was consumed, making it a cheap
//! end-to-end check that streaming works.

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader};

use cmpsim_engine::profiler::{HostStage, TIMED_STAGES};
use cmpsim_engine::stream::{frame_str, frame_u64, read_frame, STREAM_SCHEMA};

struct Args {
    once: bool,
    wait_secs: u64,
    refresh_ms: u64,
    source: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        once: false,
        wait_secs: 5,
        refresh_ms: 250,
        source: String::new(),
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--once" => args.once = true,
            "--wait" => {
                args.wait_secs = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--wait expects seconds"));
            }
            "--refresh" => {
                args.refresh_ms = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| usage("--refresh expects milliseconds"));
            }
            other if !other.starts_with("--") => args.source = other.to_string(),
            other => usage(&format!("unknown flag {other}")),
        }
    }
    if args.source.is_empty() {
        usage("missing stream source (socket PATH or -)");
    }
    args
}

fn usage(msg: &str) -> ! {
    eprintln!(
        "telemetry_tail: {msg}\n\
         usage: telemetry_tail [--once] [--wait SECS] [--refresh MS] PATH|-"
    );
    std::process::exit(2);
}

/// Latest known state of one grid cell, folded from its frames.
#[derive(Default)]
struct CellView {
    workload: String,
    policy: String,
    cycles: u64,
    cycles_per_sec: u64,
    events_per_sec: u64,
    eq_ring: u64,
    eq_overflow: u64,
    mshr_used: u64,
    mshr_cap: u64,
    wbq_depth: u64,
    rss_kb: u64,
    stage_ns: [u64; TIMED_STAGES],
    host_samples: u64,
    intervals: u64,
    decisions: u64,
    aborts_correct: u64,
    aborts_mispredicted: u64,
    snarfs_useful: u64,
    snarfs_wasted: u64,
    wbht_engaged: bool,
    done: bool,
}

fn ingest(cells: &mut BTreeMap<u64, CellView>, json: &str) -> bool {
    let cell = frame_u64(json, "cell").unwrap_or(0);
    let view = cells.entry(cell).or_default();
    match frame_str(json, "type") {
        Some("run_start") => {
            view.workload = frame_str(json, "workload").unwrap_or("?").to_string();
            view.policy = frame_str(json, "policy").unwrap_or("?").to_string();
            view.done = false;
        }
        Some("interval") => {
            view.intervals += 1;
            if let Some(end) = frame_u64(json, "end") {
                view.cycles = view.cycles.max(end);
            }
        }
        Some("host_sample") => {
            view.host_samples += 1;
            let get = |k| frame_u64(json, k).unwrap_or(0);
            view.cycles = view.cycles.max(get("cycles"));
            view.cycles_per_sec = get("cycles_per_sec");
            view.events_per_sec = get("events_per_sec");
            view.eq_ring = get("eq_ring_len");
            view.eq_overflow = get("eq_overflow_len");
            view.mshr_used = get("mshr_used");
            view.mshr_cap = get("mshr_cap");
            view.wbq_depth = get("wbq_depth");
            view.rss_kb = get("rss_kb");
            for st in HostStage::all().iter().take(TIMED_STAGES) {
                view.stage_ns[*st as usize] =
                    frame_u64(json, &format!("{}_ns", st.as_str())).unwrap_or(0);
            }
            return true;
        }
        Some("decision") => {
            let get = |k| frame_u64(json, k).unwrap_or(0);
            view.decisions = get("decisions");
            view.aborts_correct = get("aborts_correct");
            view.aborts_mispredicted = get("aborts_mispredicted");
            view.snarfs_useful = get("snarfs_useful");
            view.snarfs_wasted = get("snarfs_wasted");
            view.wbht_engaged = get("engaged") != 0;
        }
        Some("run_end") => {
            view.done = true;
            if let Some(c) = frame_u64(json, "cycles") {
                view.cycles = view.cycles.max(c);
            }
        }
        _ => {} // unknown types are forward-compatible: skip
    }
    false
}

fn render(cells: &BTreeMap<u64, CellView>) -> String {
    let mut out = String::new();
    for (id, v) in cells {
        let status = if v.done { "done" } else { "running" };
        out.push_str(&format!(
            "cell {id} {}/{} [{status}]  {:.1}M cycles  {:.2}M cyc/s  {:.2}M ev/s\n",
            v.workload,
            v.policy,
            v.cycles as f64 / 1e6,
            v.cycles_per_sec as f64 / 1e6,
            v.events_per_sec as f64 / 1e6,
        ));
        out.push_str(&format!(
            "  queues: eq ring {} + overflow {}, mshr {}/{}, wbq {}  rss {} kB  \
             ({} host samples, {} intervals)\n",
            v.eq_ring,
            v.eq_overflow,
            v.mshr_used,
            v.mshr_cap,
            v.wbq_depth,
            v.rss_kb,
            v.host_samples,
            v.intervals,
        ));
        if v.decisions > 0 {
            // Rates over *resolved* outcomes only; early in a run most
            // decisions are still pending, so show "--" instead of a
            // 0/0 artifact.
            let rate = |num: u64, den: u64| {
                if den == 0 {
                    "--".to_string()
                } else {
                    format!("{:.0}%", 100.0 * num as f64 / den as f64)
                }
            };
            // Label the audit block with the cell's configured policy
            // (from its run_start frame) rather than assuming the WBHT
            // is the only decision-maker.
            let policy = if v.policy.is_empty() { "?" } else { &v.policy };
            out.push_str(&format!(
                "  audit[{policy}]: {} castout decisions [{}], abort precision {}, \
                 useful snarfs {}\n",
                v.decisions,
                if v.wbht_engaged { "engaged" } else { "off" },
                rate(v.aborts_correct, v.aborts_correct + v.aborts_mispredicted),
                rate(v.snarfs_useful, v.snarfs_useful + v.snarfs_wasted),
            ));
        }
        let attributed: u64 = v.stage_ns.iter().sum();
        if attributed > 0 {
            for st in HostStage::all().iter().take(TIMED_STAGES) {
                let share = v.stage_ns[*st as usize] as f64 / attributed as f64;
                let bar = "#".repeat((share * 30.0).round() as usize);
                out.push_str(&format!(
                    "  {:<12} {:>5.1}% |{bar:<30}|\n",
                    st.as_str(),
                    share * 100.0
                ));
            }
        }
    }
    out
}

fn open_source(args: &Args) -> Box<dyn BufRead> {
    if args.source == "-" {
        return Box::new(BufReader::new(std::io::stdin()));
    }
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(args.wait_secs);
    loop {
        match std::os::unix::net::UnixStream::connect(&args.source) {
            Ok(s) => return Box::new(BufReader::new(s)),
            Err(e) => {
                if std::time::Instant::now() >= deadline {
                    eprintln!("telemetry_tail: {}: {e}", args.source);
                    std::process::exit(1);
                }
                std::thread::sleep(std::time::Duration::from_millis(50));
            }
        }
    }
}

fn main() {
    let args = parse_args();
    let mut reader = open_source(&args);

    let hello = match read_frame(&mut reader) {
        Ok(Some(h)) => h,
        Ok(None) => {
            eprintln!("telemetry_tail: stream closed before the hello frame");
            std::process::exit(1);
        }
        Err(e) => {
            eprintln!("telemetry_tail: bad frame: {e}");
            std::process::exit(1);
        }
    };
    if frame_str(&hello, "type") != Some("hello")
        || frame_str(&hello, "schema") != Some(STREAM_SCHEMA)
    {
        eprintln!("telemetry_tail: unsupported stream header: {hello}");
        std::process::exit(1);
    }

    let mut cells: BTreeMap<u64, CellView> = BTreeMap::new();
    let mut saw_host_sample = false;
    let mut last_draw = std::time::Instant::now();
    let refresh = std::time::Duration::from_millis(args.refresh_ms);
    loop {
        match read_frame(&mut reader) {
            Ok(Some(json)) => {
                saw_host_sample |= ingest(&mut cells, &json);
                if args.once {
                    if saw_host_sample {
                        break;
                    }
                    continue;
                }
                if last_draw.elapsed() >= refresh {
                    last_draw = std::time::Instant::now();
                    // Clear screen + home, then the current view.
                    print!("\x1b[2J\x1b[H{}", render(&cells));
                    use std::io::Write as _;
                    let _ = std::io::stdout().flush();
                }
            }
            Ok(None) => break,
            Err(e) => {
                eprintln!("telemetry_tail: bad frame: {e}");
                std::process::exit(1);
            }
        }
    }
    // Final plain snapshot (also the entire output under --once).
    print!("{}", render(&cells));
    if args.once && !saw_host_sample {
        eprintln!("telemetry_tail: stream ended without a host sample");
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_throughput_first_sample_renders_finite() {
        let mut cells = BTreeMap::new();
        ingest(
            &mut cells,
            r#"{"type":"run_start","cell":0,"workload":"tp","policy":"combined"}"#,
        );
        // First sample window with nothing simulated yet: all rates 0.
        let saw = ingest(
            &mut cells,
            r#"{"type":"host_sample","cell":0,"cycles":0,"cycles_per_sec":0,
               "events_per_sec":0,"mshr_used":0,"mshr_cap":0,"wbq_depth":0}"#,
        );
        assert!(saw);
        let out = render(&cells);
        assert!(out.contains("0.00M cyc/s"), "{out}");
        assert!(!out.contains("NaN") && !out.contains("inf"), "{out}");
    }

    #[test]
    fn decision_frames_fold_into_the_view() {
        let mut cells = BTreeMap::new();
        ingest(
            &mut cells,
            r#"{"type":"run_start","cell":3,"workload":"tp","policy":"wbht+snarf"}"#,
        );
        ingest(
            &mut cells,
            r#"{"type":"decision","cell":3,"cycle":500,"decisions":10,"aborts":4,
               "aborts_correct":3,"aborts_mispredicted":1,"allows_redundant":2,
               "snarfs":5,"snarfs_useful":2,"snarfs_wasted":1,"engaged":1}"#,
        );
        let out = render(&cells);
        // The audit block is labelled with the configured policy from
        // the run_start frame, not a hard-wired mechanism name.
        assert!(
            out.contains("audit[wbht+snarf]: 10 castout decisions [engaged]"),
            "{out}"
        );
        assert!(out.contains("abort precision 75%"), "{out}");
        assert!(out.contains("useful snarfs 67%"), "{out}");
    }

    #[test]
    fn unresolved_decisions_render_dashes_not_nan() {
        let mut cells = BTreeMap::new();
        // Early frame: decisions recorded, nothing resolved yet (0/0).
        ingest(
            &mut cells,
            r#"{"type":"decision","cell":0,"cycle":100,"decisions":7,"engaged":0}"#,
        );
        let out = render(&cells);
        // No run_start seen for this cell: the policy label degrades to
        // "?" instead of guessing a mechanism from metric presence.
        assert!(out.contains("audit[?]: 7 castout decisions [off]"), "{out}");
        assert!(out.contains("abort precision --"), "{out}");
        assert!(out.contains("useful snarfs --"), "{out}");
        assert!(!out.contains("NaN"), "{out}");
    }

    #[test]
    fn unknown_frame_types_are_skipped() {
        let mut cells = BTreeMap::new();
        assert!(!ingest(
            &mut cells,
            r#"{"type":"mystery","cell":0,"weird":1}"#
        ));
        // The cell exists (forward-compatible) but carries no data.
        assert_eq!(cells.len(), 1);
        assert_eq!(cells[&0].decisions, 0);
    }
}
