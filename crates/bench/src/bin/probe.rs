//! Internal calibration probe: per-workload baseline / WBHT / snarf
//! summaries at one pressure point. Used while tuning the synthetic
//! workloads; kept for future recalibration work.
//!
//! ```sh
//! probe [scale_factor] [refs_per_thread]
//! ```

use cmp_adaptive_wb::{
    run, PolicyConfig, RetrySwitchConfig, RunSpec, SnarfConfig, SystemConfig, WbhtConfig,
};
use cmpsim_trace::Workload;
use std::time::Instant;

fn main() {
    let factor: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(8);
    let refs: u64 = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(20_000);
    for wl in Workload::all() {
        let mut cfg = SystemConfig::scaled(factor);
        cfg.max_outstanding = 6;
        let t0 = Instant::now();
        let mut spec = RunSpec::for_workload(cfg.clone(), wl, refs);
        spec.retry_switch = Some(RetrySwitchConfig::scaled(factor));
        let base = run(spec).unwrap();
        let dt = t0.elapsed();
        let s = &base.stats;
        println!(
            "== {wl} base: cycles={} refs={} wall={:?} ({:.1} Mref/s)",
            s.cycles,
            s.refs,
            dt,
            s.refs as f64 / dt.as_secs_f64() / 1e6
        );
        println!(
            "   l1_hit={:.1}% l2_hit={:.1}% l3_load_hit={:.1}% fills l2/l3/mem={}/{}/{}",
            100.0 * s.l1_hits as f64 / s.refs as f64,
            100.0 * s.l2_hit_rate(),
            100.0 * base.l3.read_hits as f64
                / (base.l3.read_hits + base.l3.read_misses).max(1) as f64,
            s.fills_from_l2,
            s.fills_from_l3,
            s.fills_from_memory
        );
        println!("   wb: clean_req={} dirty_req={} clean_redundant={:.1}% retries_l3={} retries_total={} upgrades={}",
            s.wb.clean_requests, s.wb.dirty_requests, 100.0*s.wb.clean_redundant_rate(), s.retries_l3, s.retries_total, s.upgrades);
        println!(
            "   reuse: total={:.1}% accepted={:.1}%",
            100.0 * s.wb_reuse.reuse_rate_total(),
            100.0 * s.wb_reuse.reuse_rate_accepted()
        );

        // WBHT run
        let mut cfgw = cfg.clone();
        cfgw.policy = PolicyConfig::wbht(WbhtConfig {
            entries: (32 * 1024 / factor).max(512),
            ..Default::default()
        });
        let mut spec = RunSpec::for_workload(cfgw, wl, refs);
        spec.retry_switch = Some(RetrySwitchConfig::scaled(factor));
        let w = run(spec).unwrap();
        println!(
            "   WBHT: improvement={:+.2}% aborted={} correct={:.1}% decisions={}",
            w.improvement_over(&base),
            w.stats.wb.clean_aborted,
            100.0 * w.wbht.correct_rate(),
            w.wbht.decisions
        );

        // Snarf run
        let mut cfgs = cfg.clone();
        cfgs.policy = PolicyConfig::snarf(SnarfConfig {
            entries: (32 * 1024 / factor).max(512),
            ..Default::default()
        });
        let mut spec = RunSpec::for_workload(cfgs, wl, refs);
        spec.retry_switch = Some(RetrySwitchConfig::scaled(factor));
        let sn = run(spec).unwrap();
        println!("   SNARF: improvement={:+.2}% snarfed={} used_local={:.1}% used_interv={:.1}% squashed_peer={} retries_l3={} offchip_red={:.1}%",
            sn.improvement_over(&base), sn.stats.snarf.snarfed, 100.0*sn.stats.snarf.local_use_rate(),
            100.0*sn.stats.snarf.intervention_use_rate(), sn.stats.wb.squashed_peer, sn.stats.retries_l3,
            100.0*(1.0 - sn.stats.off_chip_accesses() as f64/base.stats.off_chip_accesses().max(1) as f64));
        if let Some(ts) = sn.snarf_table {
            println!(
                "   snarf-table: recorded={} use_bits={} eligible={} not_eligible={}",
                ts.recorded, ts.use_bits_set, ts.eligible, ts.not_eligible
            );
        }
    }
}
// snarf-table diagnostics appended via env var PROBE_SNARF_DIAG
