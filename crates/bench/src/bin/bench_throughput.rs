//! Pinned-workload throughput benchmark behind `scripts/bench.sh`.
//!
//! Runs a fixed suite of simulations and reports, per entry, simulated
//! cycles per wall-clock second, events per second, and the process
//! peak RSS. The suite is pinned (workload, policy, refs, scale, seed)
//! so numbers are comparable across commits on the same machine:
//!
//! * `quick_trade2_combined` / `quick_cpw2_baseline` — single
//!   quick-profile runs (scale 8, 30 k refs/thread).
//! * `full_trade2_snarf` / `full_cpw2_wbht` — paper-scale runs (scale
//!   1, 100 k refs/thread): the Figure 5 snarf point and a WBHT point.
//!   These are the entries whose recorded pre→post ratio must
//!   demonstrate the packed tag-array win (>= 1.10x).
//! * `smoke_grid` — 2 workloads x 4 policies at the smoke profile,
//!   aggregated; watched by the `BENCH_PR10.json` regression gate.
//!
//! ```text
//! bench_throughput --emit [BASE.json]   measure; print JSON (carrying
//!                                       pre_cycles_per_sec over from BASE)
//! bench_throughput --check FILE.json    measure; fail (exit 1) when any
//!                                       entry regresses >20% in
//!                                       cycles/sec vs FILE's post numbers,
//!                                       or when a full-scale entry's
//!                                       recorded pre→post speedup sits
//!                                       below 1.10x. Entries whose
//!                                       recorded pre_cycles_per_sec is 0
//!                                       (unmeasured baseline, e.g.
//!                                       parity-only shard entries on
//!                                       1-core hosts) skip the speedup
//!                                       floor with a note instead of
//!                                       dividing by zero
//! bench_throughput --overhead-check     measure profiler-on vs -off on a
//!                                       pinned case; fail (exit 1) when
//!                                       the default observability stack
//!                                       costs more than 3% cycles/sec
//! bench_throughput --audit-overhead-check
//!                                       same gate for the decision-audit
//!                                       layer (--audit): at most 3%
//! bench_throughput --shard-bench [--emit [BASE.json] | --check [FILE.json]]
//!                                       single-run sharding suite: the
//!                                       pinned full-scale case serial and
//!                                       at --shards 4, against
//!                                       BENCH_PR9.json. --check applies
//!                                       the 20% no-regression floor to
//!                                       both entries and, on hosts with
//!                                       >= 8 cores, additionally requires
//!                                       >= 1.5x cycles/sec at shards 4
//! ```
//!
//! `CMPSIM_BENCH_NO_GATE=1` turns a `--check` or `--overhead-check`
//! failure into a warning (escape hatch for busy or slower CI machines).

use std::time::Instant;

use cmp_adaptive_wb::{PolicyConfig, SnarfConfig, System, SystemConfig, UpdateScope, WbhtConfig};
use cmpsim_engine::profiler::HostProfiler;
use cmpsim_engine::stream::TelemetryStream;
use cmpsim_engine::telemetry::DEFAULT_INTERVAL;
use cmpsim_trace::Workload;

/// One pinned simulation: mirrors `cmpsim`'s CLI construction (same
/// seed, same table-entry scaling) so shell-timed `cmpsim` runs and
/// this harness measure the same work.
#[derive(Clone, Copy)]
struct Case {
    workload: Workload,
    policy: &'static str,
    refs: u64,
    scale: u64,
}

struct Measurement {
    id: &'static str,
    sim_cycles: u64,
    events: u64,
    wall_sec: f64,
    peak_rss_kb: u64,
}

impl Measurement {
    fn cycles_per_sec(&self) -> u64 {
        (self.sim_cycles as f64 / self.wall_sec) as u64
    }

    fn events_per_sec(&self) -> u64 {
        (self.events as f64 / self.wall_sec) as u64
    }
}

const SEED: u64 = 0x1BAD_B002;

fn config_for(scale: u64, policy: &str) -> SystemConfig {
    let mut cfg = if scale <= 1 {
        SystemConfig::paper()
    } else {
        SystemConfig::scaled(scale)
    };
    cfg.seed = SEED;
    let entries = (32 * 1024 / scale.max(1)).max(256);
    cfg.policy = match policy {
        "baseline" => PolicyConfig::baseline(),
        "wbht" => PolicyConfig::wbht(WbhtConfig {
            entries,
            assoc: 16,
            scope: UpdateScope::Local,
            granularity: 1,
        }),
        "snarf" => PolicyConfig::snarf(SnarfConfig {
            entries,
            ..Default::default()
        }),
        "combined" => PolicyConfig::combined(
            WbhtConfig {
                entries: (entries / 2).max(256),
                assoc: 16,
                scope: UpdateScope::Local,
                granularity: 1,
            },
            SnarfConfig {
                entries: (entries / 2).max(256),
                ..Default::default()
            },
        ),
        other => panic!("unknown policy {other}"),
    };
    cfg
}

/// Runs one case, returning (simulated cycles, events dispatched).
fn run_case(c: Case) -> (u64, u64) {
    let cfg = config_for(c.scale, c.policy);
    let params = c.workload.params(cfg.num_threads(), cfg.cache_scale());
    let mut sys = System::new(cfg, params).expect("pinned case is valid");
    let stats = sys.run(c.refs);
    (stats.cycles, sys.events_processed())
}

/// Process peak RSS in kB from /proc/self/status (0 when unreadable,
/// e.g. on non-Linux). Monotonic over the process lifetime, so later
/// entries report the running maximum.
fn peak_rss_kb() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    status
        .lines()
        .find_map(|l| l.strip_prefix("VmHWM:"))
        .and_then(|v| v.trim().trim_end_matches("kB").trim().parse().ok())
        .unwrap_or(0)
}

fn measure(id: &'static str, cases: &[Case]) -> Measurement {
    let t0 = Instant::now();
    let mut sim_cycles = 0;
    let mut events = 0;
    for &c in cases {
        let (cyc, ev) = run_case(c);
        sim_cycles += cyc;
        events += ev;
    }
    Measurement {
        id,
        sim_cycles,
        events,
        wall_sec: t0.elapsed().as_secs_f64(),
        peak_rss_kb: peak_rss_kb(),
    }
}

fn suite() -> Vec<Measurement> {
    let mut out = vec![
        measure(
            "quick_trade2_combined",
            &[Case {
                workload: Workload::Trade2,
                policy: "combined",
                refs: 30_000,
                scale: 8,
            }],
        ),
        measure(
            "quick_cpw2_baseline",
            &[Case {
                workload: Workload::Cpw2,
                policy: "baseline",
                refs: 30_000,
                scale: 8,
            }],
        ),
        measure(
            "full_trade2_snarf",
            &[Case {
                workload: Workload::Trade2,
                policy: "snarf",
                refs: 100_000,
                scale: 1,
            }],
        ),
        measure(
            "full_cpw2_wbht",
            &[Case {
                workload: Workload::Cpw2,
                policy: "wbht",
                refs: 100_000,
                scale: 1,
            }],
        ),
    ];
    let mut grid = Vec::new();
    for workload in [Workload::Trade2, Workload::Cpw2] {
        for policy in ["baseline", "wbht", "snarf", "combined"] {
            grid.push(Case {
                workload,
                policy,
                refs: 2_000,
                scale: 16,
            });
        }
    }
    out.push(measure("smoke_grid", &grid));
    out
}

/// The pinned single-run sharding case: the paper-scale Figure 5 snarf
/// point, short enough that serial + sharded fit a CI budget.
const SHARD_CASE: Case = Case {
    workload: Workload::Trade2,
    policy: "snarf",
    refs: 30_000,
    scale: 1,
};

/// Runs one case with the frontend sharded onto `shards` producer
/// threads — the exact path `cmpsim --shards N` takes.
fn run_case_sharded(c: Case, shards: usize) -> (u64, u64) {
    let cfg = config_for(c.scale, c.policy);
    let params = c.workload.params(cfg.num_threads(), cfg.cache_scale());
    let mut sys = if shards > 1 {
        let generator =
            cmpsim_trace::SyntheticWorkload::new(params, cfg.seed).expect("pinned case is valid");
        let source = cmpsim_trace::ShardedWorkload::spawn_with_lookahead(
            generator,
            shards,
            cmpsim_engine::shard::Lookahead::from_ring_hop(cfg.ring.hop_cycles),
        );
        System::with_source(cfg, Box::new(source)).expect("pinned case is valid")
    } else {
        System::new(cfg, params).expect("pinned case is valid")
    };
    let stats = sys.run(c.refs);
    (stats.cycles, sys.events_processed())
}

fn host_cores() -> u64 {
    std::thread::available_parallelism()
        .map(|p| p.get() as u64)
        .unwrap_or(1)
}

fn measure_sharded(id: &'static str, shards: usize) -> Measurement {
    let t0 = Instant::now();
    let (sim_cycles, events) = run_case_sharded(SHARD_CASE, shards);
    Measurement {
        id,
        sim_cycles,
        events,
        wall_sec: t0.elapsed().as_secs_f64(),
        peak_rss_kb: peak_rss_kb(),
    }
}

fn shard_suite() -> Vec<Measurement> {
    vec![
        measure_sharded("full_trade2_snarf_serial", 1),
        measure_sharded("full_trade2_snarf_shards4", 4),
    ]
}

/// The sharding gate: both entries must clear the standard 20%
/// no-regression floor against the committed file, and on hosts with at
/// least 8 cores the shards-4 entry must additionally run at >= 1.5x
/// the serial entry's cycles/sec measured in the same invocation. On
/// smaller hosts the speedup clause is reported but not enforced — a
/// 1-core machine cannot express frontend parallelism, and pretending
/// it can would make the gate meaningless.
fn shard_check(results: &[Measurement], path: &str) -> bool {
    let mut ok = check(results, path);
    let serial = results
        .iter()
        .find(|m| m.id == "full_trade2_snarf_serial")
        .expect("suite entry");
    let sharded = results
        .iter()
        .find(|m| m.id == "full_trade2_snarf_shards4")
        .expect("suite entry");
    let cores = host_cores();
    let speedup = sharded.cycles_per_sec() as f64 / serial.cycles_per_sec().max(1) as f64;
    if cores >= 8 {
        let pass = speedup >= 1.5;
        let verdict = if pass { "ok" } else { "TOO SLOW" };
        eprintln!(
            "bench: shards=4 single-run speedup {speedup:.2}x on {cores}-core host \
             (floor 1.50) {verdict}"
        );
        ok &= pass;
    } else {
        eprintln!(
            "bench: shards=4 single-run speedup {speedup:.2}x — {cores}-core host cannot \
             express frontend parallelism; the 1.5x floor applies on hosts with >= 8 cores \
             (the 20% no-regression floor was still enforced)"
        );
    }
    ok
}

/// Pulls `"key": <integer>` values out of our own flat JSON format.
/// Not a general JSON parser — `BENCH_PR5.json` is machine-written by
/// `--emit`, one entry object per line.
fn scan_u64(line: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\":");
    let at = line.find(&needle)? + needle.len();
    let rest = line[at..].trim_start();
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn scan_id(line: &str) -> Option<&str> {
    let at = line.find("\"id\":")? + 5;
    let rest = line[at..].trim_start().strip_prefix('"')?;
    rest.split('"').next()
}

/// Reads `(id, key)` values from a committed benchmark file.
fn read_field(path: &str, key: &str) -> Vec<(String, u64)> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    text.lines()
        .filter_map(|l| Some((scan_id(l)?.to_string(), scan_u64(l, key)?)))
        .collect()
}

fn emit(results: &[Measurement], base: Option<&str>, host_cores: Option<u64>) {
    let pre: Vec<(String, u64)> = base
        .map(|p| read_field(p, "pre_cycles_per_sec"))
        .unwrap_or_default();
    println!("{{");
    println!("  \"schema\": \"cmpsim-bench/1\",");
    println!("  \"generated_by\": \"scripts/bench.sh (bench_throughput --emit)\",");
    println!("  \"note\": \"pre_cycles_per_sec measured on the pre-PR build, same machine, same pinned cases; post_* from this build\",");
    if let Some(cores) = host_cores {
        // Recorded so readers of the file know whether the speedup
        // clause of the shard gate was assessable when it was written.
        println!("  \"host_cores\": {cores},");
    }
    println!("  \"entries\": [");
    for (i, m) in results.iter().enumerate() {
        let pre_cps = pre.iter().find(|(id, _)| id == m.id).map_or(0, |&(_, v)| v);
        let comma = if i + 1 == results.len() { "" } else { "," };
        println!(
            "    {{\"id\": \"{}\", \"pre_cycles_per_sec\": {}, \"post_cycles_per_sec\": {}, \"post_events_per_sec\": {}, \"post_peak_rss_kb\": {}, \"sim_cycles\": {}, \"events\": {}, \"wall_sec\": {:.3}}}{}",
            m.id,
            pre_cps,
            m.cycles_per_sec(),
            m.events_per_sec(),
            m.peak_rss_kb,
            m.sim_cycles,
            m.events,
            m.wall_sec,
            comma,
        );
    }
    println!("  ]");
    println!("}}");
}

/// Entries whose committed pre→post ratio must demonstrate the packed
/// tag-array win; other entries (quick, smoke, shard) only report it.
const SPEEDUP_FLOOR_IDS: [&str; 2] = ["full_trade2_snarf", "full_cpw2_wbht"];

fn check(results: &[Measurement], path: &str) -> bool {
    let committed = read_field(path, "post_cycles_per_sec");
    let baseline = read_field(path, "pre_cycles_per_sec");
    if committed.is_empty() {
        eprintln!("bench: no post_cycles_per_sec entries found in {path}");
        return false;
    }
    let mut ok = true;
    for m in results {
        let Some(&(_, want)) = committed.iter().find(|(id, _)| id == m.id) else {
            eprintln!("bench: {path} has no entry for {}", m.id);
            ok = false;
            continue;
        };
        let got = m.cycles_per_sec();
        let floor = want * 8 / 10; // >20% regression fails
        let verdict = if got >= floor { "ok" } else { "REGRESSED" };
        eprintln!(
            "bench: {:<24} {:>10} cycles/sec (committed {:>10}, floor {:>10}) {}",
            m.id, got, want, floor, verdict
        );
        if got < floor {
            ok = false;
        }
        // The recorded pre→post speedup, taken from the committed file
        // (both sides measured on the same host, same pinned cases). A
        // recorded pre of 0 means the baseline was never measured there
        // — e.g. parity-only shard entries written on a 1-core host —
        // so the ratio is undefined: skip it with a note rather than
        // divide by zero or fail spuriously.
        match baseline.iter().find(|(id, _)| id == m.id) {
            Some(&(_, 0)) => eprintln!(
                "bench: {:<24} recorded pre_cycles_per_sec is 0 (unmeasured \
                 baseline); speedup floor skipped",
                m.id
            ),
            Some(&(_, pre)) => {
                let speedup = want as f64 / pre as f64;
                if SPEEDUP_FLOOR_IDS.contains(&m.id) {
                    let pass = speedup >= 1.10;
                    let verdict = if pass { "ok" } else { "TOO SLOW" };
                    eprintln!(
                        "bench: {:<24} recorded speedup {speedup:.2}x \
                         (pre {pre}, floor 1.10) {verdict}",
                        m.id
                    );
                    ok &= pass;
                } else {
                    eprintln!(
                        "bench: {:<24} recorded speedup {speedup:.2}x (informational)",
                        m.id
                    );
                }
            }
            None => {}
        }
    }
    ok
}

/// Runs one case with the full default-cadence observability stack on:
/// host profiler at the default stride, telemetry streamed to a sink
/// writer, and interval sampling at the default period — the exact
/// configuration `--profile-host --stream-telemetry` enables.
fn run_case_observed(c: Case) -> (u64, u64) {
    let cfg = config_for(c.scale, c.policy);
    let params = c.workload.params(cfg.num_threads(), cfg.cache_scale());
    let mut sys = System::new(cfg, params).expect("pinned case is valid");
    sys.set_host_profiler(HostProfiler::enabled());
    sys.set_stream(TelemetryStream::to_writer(std::io::sink()), 0);
    sys.enable_interval_sampling(DEFAULT_INTERVAL);
    let stats = sys.run(c.refs);
    (stats.cycles, sys.events_processed())
}

/// Nanoseconds this thread group has spent on-CPU, from
/// `/proc/self/schedstat`. Unlike wall clocks this excludes scheduler
/// preemption entirely, which is what makes a small overhead threshold
/// measurable on busy shared machines. `None` when unavailable
/// (non-Linux), in which case the gate falls back to wall time.
fn cpu_now_ns() -> Option<u64> {
    let text = std::fs::read_to_string("/proc/self/schedstat").ok()?;
    text.split_whitespace().next()?.parse().ok()
}

/// Runs one case with the decision-audit layer enabled — the exact
/// configuration `cmpsim --audit` enables.
fn run_case_audited(c: Case) -> (u64, u64) {
    let cfg = config_for(c.scale, c.policy);
    let params = c.workload.params(cfg.num_threads(), cfg.cache_scale());
    let mut sys = System::new(cfg, params).expect("pinned case is valid");
    sys.enable_decision_audit();
    let stats = sys.run(c.refs);
    (stats.cycles, sys.events_processed())
}

/// An on/off overhead gate: interleaves feature-off and feature-on runs
/// of one pinned case and gates on the median of the per-pair on/off
/// cycles-per-CPU-second ratios. On-CPU time (see [`cpu_now_ns`]) is
/// immune to preemption, and adjacent runs share whatever cache
/// pressure the machine is under, so per-pair ratios stay stable where
/// absolute best-of wall comparisons flap. Passes while the feature
/// costs at most 3%.
fn paired_overhead_gate(what: &str, run_on: &dyn Fn(Case) -> (u64, u64)) -> bool {
    const PAIRS: usize = 25;
    let case = Case {
        workload: Workload::Trade2,
        policy: "combined",
        refs: 5_000,
        scale: 8,
    };
    // Warm both paths (caches, branch predictors, TSC calibration) so
    // neither side of the comparison pays first-run costs.
    run_case(case);
    run_on(case);
    let timed = |run: &dyn Fn() -> (u64, u64)| {
        let cpu0 = cpu_now_ns();
        let t = Instant::now();
        let (cycles, _) = run();
        let wall_ns = t.elapsed().as_nanos() as u64;
        let ns = match (cpu0, cpu_now_ns()) {
            (Some(a), Some(b)) if b > a => b - a,
            _ => wall_ns,
        };
        cycles as f64 / ns as f64
    };
    let off_case = || run_case(case);
    let on_case = || run_on(case);
    let mut ratios = Vec::with_capacity(PAIRS);
    let mut best_off = 0.0f64;
    let mut best_on = 0.0f64;
    for pair in 0..PAIRS {
        // Alternate the order within each pair so a monotonic load ramp
        // cannot bias every pair the same way.
        let (off, on) = if pair % 2 == 0 {
            let off = timed(&off_case);
            let on = timed(&on_case);
            (off, on)
        } else {
            let on = timed(&on_case);
            let off = timed(&off_case);
            (off, on)
        };
        best_off = best_off.max(off);
        best_on = best_on.max(on);
        ratios.push(on / off);
    }
    ratios.sort_by(|a, b| a.total_cmp(b));
    let median = ratios[PAIRS / 2];
    // Two robust views of the same question; noise bursts can depress
    // either one, but a real >3% overhead depresses both.
    let best_ratio = best_on / best_off;
    let pass = median >= 0.97 || best_ratio >= 0.97;
    let verdict = if pass { "ok" } else { "TOO SLOW" };
    eprintln!(
        "bench: {what} overhead: on/off cycles-per-cpu-second ratio {median:.3} \
         (median of {PAIRS} interleaved pairs, spread {:.3}..{:.3}), {best_ratio:.3} \
         (best-vs-best), floor 0.970 on either {verdict}",
        ratios.first().copied().unwrap_or(0.0),
        ratios.last().copied().unwrap_or(0.0),
    );
    pass
}

fn overhead_check() -> bool {
    paired_overhead_gate("profiler", &run_case_observed)
}

fn audit_overhead_check() -> bool {
    paired_overhead_gate("decision audit", &run_case_audited)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("--emit") => {
            let results = suite();
            emit(&results, args.get(1).map(String::as_str), None);
        }
        Some("--shard-bench") => match args.get(1).map(String::as_str) {
            Some("--check") => {
                let path = args.get(2).map(String::as_str).unwrap_or("BENCH_PR9.json");
                let results = shard_suite();
                if !shard_check(&results, path) {
                    if std::env::var_os("CMPSIM_BENCH_NO_GATE").is_some() {
                        eprintln!("bench: shard gate bypassed (CMPSIM_BENCH_NO_GATE)");
                    } else {
                        eprintln!(
                            "bench: sharded-run gate failed; investigate, or re-run with \
                             CMPSIM_BENCH_NO_GATE=1 / refresh via scripts/bench.sh --shard-update"
                        );
                        std::process::exit(1);
                    }
                }
            }
            _ => {
                let results = shard_suite();
                emit(
                    &results,
                    args.get(2).map(String::as_str),
                    Some(host_cores()),
                );
            }
        },
        Some("--overhead-check") => {
            if !overhead_check() {
                if std::env::var_os("CMPSIM_BENCH_NO_GATE").is_some() {
                    eprintln!("bench: overhead gate bypassed (CMPSIM_BENCH_NO_GATE)");
                } else {
                    eprintln!(
                        "bench: observability overhead exceeds 3%; investigate, or \
                         re-run with CMPSIM_BENCH_NO_GATE=1"
                    );
                    std::process::exit(1);
                }
            }
        }
        Some("--audit-overhead-check") => {
            if !audit_overhead_check() {
                if std::env::var_os("CMPSIM_BENCH_NO_GATE").is_some() {
                    eprintln!("bench: audit overhead gate bypassed (CMPSIM_BENCH_NO_GATE)");
                } else {
                    eprintln!(
                        "bench: decision-audit overhead exceeds 3%; investigate, or \
                         re-run with CMPSIM_BENCH_NO_GATE=1"
                    );
                    std::process::exit(1);
                }
            }
        }
        Some("--check") => {
            let path = args.get(1).map(String::as_str).unwrap_or("BENCH_PR10.json");
            let results = suite();
            if !check(&results, path) {
                if std::env::var_os("CMPSIM_BENCH_NO_GATE").is_some() {
                    eprintln!("bench: regression gate bypassed (CMPSIM_BENCH_NO_GATE)");
                } else {
                    eprintln!("bench: throughput regressed >20%; investigate, or re-run with CMPSIM_BENCH_NO_GATE=1 / refresh via scripts/bench.sh --update");
                    std::process::exit(1);
                }
            }
        }
        _ => {
            let results = suite();
            emit(&results, None, None);
        }
    }
}
