//! `policy_audit` — decision-quality report and CI consistency gate for
//! the adaptive-decision audit layer.
//!
//! ```text
//! policy_audit [--pressure N]    audited combined-policy run per
//!                                workload: abort precision, useful-snarf
//!                                rate, retry-switch timeline, per-L2
//!                                breakdown, and per-set heatmaps
//! policy_audit --check           CI gate: the audit must not perturb the
//!                                simulation (audit-on metrics minus the
//!                                audit_* section byte-identical to
//!                                audit-off) and must resolve an outcome
//!                                for nearly every recorded decision
//! ```
//!
//! Scale follows `CMPSIM_PROFILE` (quick / full / smoke) like the
//! experiment binaries; `--jobs N` bounds worker threads.

use cmp_adaptive_wb::{DecisionAuditSummary, PolicyConfig, RunReport, SnarfConfig, WbhtConfig};
use cmpsim_bench::{parallel_runs, Profile};
use cmpsim_trace::Workload;

fn combined_spec(
    p: &Profile,
    wl: Workload,
    pressure: u32,
    audit: bool,
) -> cmp_adaptive_wb::RunSpec {
    let mut cfg = p.config();
    cfg.max_outstanding = pressure;
    let half = (p.table_entries(32 * 1024) / 2).max(256);
    cfg.policy = PolicyConfig::combined(
        WbhtConfig {
            entries: half,
            assoc: 16,
            scope: cmp_adaptive_wb::UpdateScope::Local,
            granularity: 1,
        },
        SnarfConfig {
            entries: half,
            ..Default::default()
        },
    );
    let mut spec = p.spec(cfg, wl);
    spec.audit = audit;
    spec
}

fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Buckets a per-set histogram into at most `width` columns and renders
/// one intensity character per bucket (peak-normalized).
fn heatmap(counts: &[u32], width: usize) -> String {
    const RAMP: &[u8] = b" .:-=+*#%@";
    if counts.is_empty() {
        return String::new();
    }
    let buckets = width.min(counts.len());
    let mut sums = vec![0u64; buckets];
    for (i, &c) in counts.iter().enumerate() {
        sums[i * buckets / counts.len()] += c as u64;
    }
    let peak = sums.iter().copied().max().unwrap_or(0);
    sums.iter()
        .map(|&s| {
            match (s * (RAMP.len() as u64 - 1) + peak / 2).checked_div(peak) {
                Some(idx) => RAMP[idx as usize] as char,
                None => ' ', // all-zero histogram
            }
        })
        .collect()
}

fn report(p: &Profile, pressure: u32) {
    let specs: Vec<_> = Workload::all()
        .iter()
        .map(|&wl| combined_spec(p, wl, pressure, true))
        .collect();
    let reports = parallel_runs(specs);
    let mut t = cmpsim_bench::Table::new(vec![
        "Workload".into(),
        "Policy".into(),
        "Decisions".into(),
        "Engaged".into(),
        "Aborts".into(),
        "Precision".into(),
        "Snarfs".into(),
        "Useful".into(),
        "Net cycles".into(),
        "Coverage".into(),
        "Switch on/total".into(),
    ]);
    for r in &reports {
        let a = audit_of(r);
        let tot = &a.totals;
        t.row(vec![
            r.workload.clone(),
            // Config-axis label (what was asked for), not inferred from
            // which stat sections happen to be populated.
            r.policy.to_string(),
            tot.wbht_decisions.to_string(),
            pct(rate(tot.decisions_engaged, tot.wbht_decisions)),
            tot.aborts.to_string(),
            pct(a.abort_precision()),
            tot.snarfs.to_string(),
            pct(a.useful_snarf_rate()),
            format!("{:+}", a.net_cycles()),
            pct(a.resolved_coverage()),
            format!("{}/{}", a.engaged_windows, a.windows),
        ]);
    }
    println!(
        "== Decision audit: combined policy at {pressure} outstanding loads/thread ==\n{}",
        t.render()
    );

    let mut per = cmpsim_bench::Table::new(vec![
        "Workload".into(),
        "L2".into(),
        "Decisions".into(),
        "Precision".into(),
        "Snarfs".into(),
        "Useful".into(),
    ]);
    for r in &reports {
        let a = audit_of(r);
        for (i, s) in a.per_l2.iter().enumerate() {
            per.row(vec![
                if i == 0 {
                    r.workload.clone()
                } else {
                    String::new()
                },
                i.to_string(),
                s.wbht_decisions.to_string(),
                pct(if s.aborts == 0 {
                    1.0
                } else {
                    rate(s.aborts_correct, s.aborts)
                }),
                s.snarfs.to_string(),
                pct(rate(s.snarfs_useful, s.snarfs)),
            ]);
        }
    }
    println!("Per-L2 breakdown\n{}", per.render());

    println!("Per-set decision heatmaps (slice-major, peak-normalized)");
    for r in &reports {
        let a = audit_of(r);
        println!(
            "  {:<12} aborts |{}|",
            r.workload,
            heatmap(&a.heat_abort, 64)
        );
        println!("  {:<12} snarfs |{}|", "", heatmap(&a.heat_snarf, 64));
    }
}

fn rate(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

fn audit_of(r: &RunReport) -> &DecisionAuditSummary {
    r.audit.as_ref().expect("spec requested the audit")
}

/// CI gate: see the module docs. Exits the process with 1 on failure.
fn check(p: &Profile, pressure: u32) {
    let wl = Workload::Trade2;
    let reports = parallel_runs(vec![
        combined_spec(p, wl, pressure, false),
        combined_spec(p, wl, pressure, true),
    ]);
    let (off, on) = (&reports[0], &reports[1]);

    let off_rows = metrics_rows(off);
    let on_rows: Vec<_> = metrics_rows(on)
        .into_iter()
        .filter(|(name, _)| !name.starts_with("audit_"))
        .collect();
    let mut ok = true;
    if off_rows != on_rows {
        ok = false;
        eprintln!("policy_audit: FAILED — audit-on run perturbed the base metrics:");
        for (a, b) in off_rows.iter().zip(on_rows.iter()) {
            if a != b {
                eprintln!("  off {a:?} != on {b:?}");
            }
        }
        if off_rows.len() != on_rows.len() {
            eprintln!("  row count off {} vs on {}", off_rows.len(), on_rows.len());
        }
    } else {
        eprintln!(
            "policy_audit: base metrics identical with audit on ({} rows)",
            off_rows.len()
        );
    }

    let a = audit_of(on);
    let checks: [(&str, bool); 3] = [
        ("WBHT decisions were recorded", a.totals.wbht_decisions > 0),
        ("snarf placements were recorded", a.totals.snarfs > 0),
        (
            "resolved-outcome coverage >= 95%",
            a.resolved_coverage() >= 0.95,
        ),
    ];
    for (what, pass) in checks {
        eprintln!(
            "policy_audit: {what}: {}",
            if pass { "ok" } else { "FAILED" }
        );
        ok &= pass;
    }
    eprintln!(
        "policy_audit: decisions {}, aborts {} (precision {}), snarfs {} (useful {}), coverage {}",
        a.totals.wbht_decisions,
        a.totals.aborts,
        pct(a.abort_precision()),
        a.totals.snarfs,
        pct(a.useful_snarf_rate()),
        pct(a.resolved_coverage()),
    );
    if !ok {
        std::process::exit(1);
    }
}

/// Flattened metrics rows for a report.
fn metrics_rows(r: &RunReport) -> Vec<(String, cmpsim_engine::metrics::MetricScalar)> {
    r.metrics().flat_rows()
}

fn main() {
    cmpsim_bench::jobs_from_args();
    cmpsim_bench::shards_from_args();
    let p = Profile::from_env();
    let mut pressure = 6u32;
    let mut do_check = false;
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--check" => do_check = true,
            "--pressure" => {
                pressure = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| (1..=64).contains(&n))
                    .unwrap_or_else(|| {
                        eprintln!("policy_audit: --pressure expects 1..=64");
                        std::process::exit(2);
                    });
            }
            "--jobs" => {
                it.next(); // consumed by jobs_from_args
            }
            "--shards" => {
                it.next(); // consumed by shards_from_args
            }
            other if other.starts_with("--jobs=") || other.starts_with("--shards=") => {}
            other => {
                eprintln!(
                    "policy_audit: unknown flag {other}\n\
                     usage: policy_audit [--check] [--pressure N] [--jobs N]"
                );
                std::process::exit(2);
            }
        }
    }
    if do_check {
        check(&p, pressure);
    } else {
        report(&p, pressure);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heatmap_is_peak_normalized_and_finite() {
        let mut counts = vec![0u32; 256];
        counts[0] = 10;
        counts[255] = 100;
        let map = heatmap(&counts, 64);
        assert_eq!(map.len(), 64);
        assert!(map.ends_with('@'), "{map}");
        assert!(map.contains(' '), "{map}");
        // Degenerate inputs stay quiet rather than dividing by zero.
        assert_eq!(heatmap(&[], 64), "");
        assert_eq!(heatmap(&[0, 0], 64), "  ");
    }

    #[test]
    fn audited_and_plain_runs_agree_on_base_metrics() {
        let p = Profile {
            scale_factor: 16,
            refs_per_thread: 1_000,
            seeds: 1,
        };
        let off = cmp_adaptive_wb::run(combined_spec(&p, Workload::Trade2, 6, false)).unwrap();
        let on = cmp_adaptive_wb::run(combined_spec(&p, Workload::Trade2, 6, true)).unwrap();
        let on_rows: Vec<_> = metrics_rows(&on)
            .into_iter()
            .filter(|(n, _)| !n.starts_with("audit_"))
            .collect();
        assert_eq!(metrics_rows(&off), on_rows);
        assert!(audit_of(&on).resolved_coverage() >= 0.95);
    }
}
