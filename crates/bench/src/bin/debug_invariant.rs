//! Internal debugging driver: runs random-ish configs until the
//! coherence invariant checker trips, then reports the failing setup.
use cmp_adaptive_wb::{PolicyConfig, SnarfConfig, System, SystemConfig};
use cmpsim_trace::{SegmentMix, WorkloadParams};

fn params(seed: u64) -> WorkloadParams {
    WorkloadParams {
        name: format!("dbg{seed}"),
        line_bytes: 128,
        threads: 16,
        issue_interval: 1,
        mix: SegmentMix {
            private: 0.1,
            bounce: 0.1,
            rotor: 0.5,
            shared: 0.2,
            migratory: 0.05,
            streaming: 0.05,
        },
        private_lines: 128,
        private_theta: 2.0,
        private_store_frac: 0.3,
        bounce_lines: 512,
        bounce_group_threads: 4,
        bounce_cross_frac: 0.2,
        bounce_theta: 1.5,
        bounce_store_frac: 0.2,
        rotor_lines: 900,
        rotor_store_frac: 0.3,
        shared_lines: 200,
        shared_theta: 1.5,
        shared_store_frac: 0.2,
        migratory_lines: 64,
        migratory_rmw_frac: 0.5,
    }
}

fn main() {
    for seed in 0..40u64 {
        let mut cfg = SystemConfig::scaled(16);
        cfg.policy = PolicyConfig::snarf(SnarfConfig {
            entries: 512,
            ..Default::default()
        });
        cfg.max_outstanding = 6;
        cfg.seed = seed;
        let mut sys = System::new(cfg, params(seed)).unwrap();
        sys.run(1500);
        if let Err(v) = sys.check_invariants() {
            println!("VIOLATION at seed {seed}: {v}");
            println!("  line {:#x}, holders {:?}", v.line(), v.holders());
            return;
        }
    }
    println!("no violation in 40 seeds");
}
