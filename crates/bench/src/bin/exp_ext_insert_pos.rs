//! Regenerates the "ext_insert_pos" supplementary experiment.
fn main() {
    cmpsim_bench::jobs_from_args();
    cmpsim_bench::shards_from_args();
    let profile = cmpsim_bench::Profile::from_env();
    let id = "ext_insert_pos".replace('_', "-");
    let e = cmpsim_bench::experiments::by_id(&id).expect("registered experiment");
    println!("== {} ==", e.title);
    println!("{}", (e.run)(&profile));
}
