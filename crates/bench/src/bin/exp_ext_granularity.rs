//! Regenerates the §7 future-work extension: multi-line WBHT entries.
fn main() {
    cmpsim_bench::jobs_from_args();
    cmpsim_bench::shards_from_args();
    let profile = cmpsim_bench::Profile::from_env();
    let e = cmpsim_bench::experiments::by_id("ext-granularity").expect("registered experiment");
    println!("== {} ==", e.title);
    println!("{}", (e.run)(&profile));
}
