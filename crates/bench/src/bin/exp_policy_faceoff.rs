//! Regenerates the policy face-off tables (see the experiment module
//! docs), or self-checks the harness with `--check`.
//!
//! ```text
//! exp_policy_faceoff [--check] [--jobs N]
//! ```
fn main() {
    cmpsim_bench::jobs_from_args();
    cmpsim_bench::shards_from_args();
    let check = std::env::args().any(|a| a == "--check");
    let profile = cmpsim_bench::Profile::from_env();
    if check {
        let fails = cmpsim_bench::experiments::policy_faceoff::check(&profile);
        if fails.is_empty() {
            println!("policy-faceoff check: PASS");
        } else {
            for f in &fails {
                eprintln!("policy-faceoff check: FAIL: {f}");
            }
            std::process::exit(1);
        }
        return;
    }
    let e = cmpsim_bench::experiments::by_id("policy-faceoff").expect("registered experiment");
    println!("== {} ==", e.title);
    println!("{}", (e.run)(&profile));
}
