//! `telemetry_report` — summarizes a `cmpsim --trace-events` JSONL file:
//! event counts per type, the traced time range, and per-interval rates.
//!
//! ```sh
//! cmpsim -p combined --trace-events out.jsonl --interval-stats 100000
//! telemetry_report out.jsonl
//! ```
//!
//! The trace format is one JSON object per line with at least `"t"`
//! (cycle) and `"type"` (event kind); this tool extracts both with
//! plain string scanning so it needs no JSON dependency. Event kinds it
//! does not recognize (from a newer simulator) are skipped and counted
//! rather than folded into the per-type table, so the report never
//! misattributes statistics it does not understand.

use std::collections::BTreeMap;
use std::fs::File;
use std::io::{BufRead, BufReader};
use std::process::ExitCode;

/// Every event kind this report understands — the `SimEvent::kind`
/// vocabulary as of this tool's build. Traces from newer simulators may
/// contain more; those are skipped and counted as unknown.
const KNOWN_KINDS: &[&str] = &[
    "l2_miss",
    "l2_fill",
    "castout_issued",
    "castout_aborted",
    "castout_squashed",
    "castout_snarfed",
    "castout_accepted",
    "wbht_allocate",
    "wbht_predict",
    "wbht_mispredict",
    "retry_switch_flip",
    "snarf_arbitration",
    "snarf_buffer_declined",
    "l3_retry",
    "interval",
];

/// Extracts the string value of `"key":"..."` from one JSON line.
fn str_field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":\"");
    let start = line.find(&pat)? + pat.len();
    let end = line[start..].find('"')?;
    Some(&line[start..start + end])
}

/// Extracts the integer value of `"key":N` from one JSON line.
fn num_field(line: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let digits: String = line[start..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

fn main() -> ExitCode {
    let Some(path) = std::env::args().nth(1) else {
        eprintln!("usage: telemetry_report TRACE.jsonl");
        return ExitCode::FAILURE;
    };
    let file = match File::open(&path) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("telemetry_report: {path}: {e}");
            return ExitCode::FAILURE;
        }
    };

    let mut counts: BTreeMap<String, u64> = BTreeMap::new();
    let mut first_t: Option<u64> = None;
    let mut last_t: u64 = 0;
    let mut lines: u64 = 0;
    let mut malformed: u64 = 0;
    let mut unknown: BTreeMap<String, u64> = BTreeMap::new();
    let mut intervals: Vec<(u64, u64)> = Vec::new(); // (start, end)

    for line in BufReader::new(file).lines() {
        let line = match line {
            Ok(l) => l,
            Err(e) => {
                eprintln!("telemetry_report: {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        if line.trim().is_empty() {
            continue;
        }
        lines += 1;
        let (Some(kind), Some(t)) = (str_field(&line, "type"), num_field(&line, "t")) else {
            malformed += 1;
            continue;
        };
        if !KNOWN_KINDS.contains(&kind) {
            *unknown.entry(kind.to_string()).or_insert(0) += 1;
            continue;
        }
        *counts.entry(kind.to_string()).or_insert(0) += 1;
        first_t.get_or_insert(t);
        last_t = last_t.max(t);
        if kind == "interval" {
            if let (Some(s), Some(e)) = (num_field(&line, "start"), num_field(&line, "end")) {
                intervals.push((s, e));
            }
        }
    }

    let total: u64 = counts.values().sum();
    let skipped: u64 = unknown.values().sum();
    println!("trace         : {path}");
    println!(
        "events        : {total} ({lines} lines, {malformed} malformed, {skipped} unknown-kind)"
    );
    if let Some(first) = first_t {
        println!("time range    : [{first}, {last_t}]");
    }
    println!("by type:");
    let mut by_count: Vec<(&String, &u64)> = counts.iter().collect();
    by_count.sort_by(|a, b| b.1.cmp(a.1).then(a.0.cmp(b.0)));
    for (kind, n) in by_count {
        let share = if total == 0 {
            0.0
        } else {
            *n as f64 * 100.0 / total as f64
        };
        println!("  {kind:<24} {n:>10}  {share:5.1}%");
    }
    if !unknown.is_empty() {
        println!("skipped unknown kinds:");
        for (kind, n) in &unknown {
            println!("  {kind:<24} {n:>10}");
        }
    }
    if !intervals.is_empty() {
        let covered: u64 = intervals.iter().map(|(s, e)| e.saturating_sub(*s)).sum();
        let (s0, _) = intervals[0];
        let (_, e_last) = intervals[intervals.len() - 1];
        println!(
            "intervals     : {} covering {covered} cycles ([{s0}, {e_last}))",
            intervals.len()
        );
    }
    ExitCode::SUCCESS
}
