//! `span_report` — critical-path attribution from transaction spans.
//!
//! Runs one simulation with span tracing enabled and reports, from the
//! completed spans:
//!
//! * **Latency tiers** per fill source — the paper's contention-free
//!   hierarchy of ~77 cycles for an L2-to-L2 intervention, ~167 for an
//!   L3 hit, and ~431 for memory — as observed means alongside the
//!   queue-wait/service split that explains any inflation over them.
//! * **Critical-path attribution** — total cycles spent in every span
//!   phase across the run, split queue-wait vs. service, answering
//!   "where do miss cycles actually go?".
//! * **Top-N slowest transactions** with their full phase timelines,
//!   the starting point for any tail-latency investigation.
//!
//! ```sh
//! span_report [--workload tp|cpw2|notesbench|trade2] [--policy NAME]
//!             [--refs N] [--scale N] [--sample N] [--top N]
//! ```

use std::collections::BTreeMap;
use std::process::ExitCode;

use cmp_adaptive_wb::{run, PolicyConfig, RetrySwitchConfig, RunSpec, SystemConfig};
use cmpsim_engine::spans::{SpanRecord, SpanTracer};
use cmpsim_engine::telemetry::FillSource;
use cmpsim_trace::Workload;

#[derive(Debug)]
struct Args {
    workload: Workload,
    policy: String,
    refs: u64,
    scale: u64,
    sample: u64,
    top: usize,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        workload: Workload::Trade2,
        policy: "baseline".into(),
        refs: 20_000,
        scale: 8,
        sample: 1,
        top: 5,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("missing value for {name}"));
        match flag.as_str() {
            "--workload" | "-w" => {
                args.workload = match value("--workload")?.to_lowercase().as_str() {
                    "tp" => Workload::Tp,
                    "cpw2" => Workload::Cpw2,
                    "notesbench" | "nb" => Workload::NotesBench,
                    "trade2" => Workload::Trade2,
                    other => return Err(format!("unknown workload {other}")),
                }
            }
            "--policy" | "-p" => args.policy = value("--policy")?.to_lowercase(),
            "--refs" | "-n" => args.refs = parse_num(&value("--refs")?)?,
            "--scale" => args.scale = parse_num(&value("--scale")?)?.max(1),
            "--sample" => args.sample = parse_num(&value("--sample")?)?.max(1),
            "--top" => args.top = parse_num(&value("--top")?)? as usize,
            "--help" | "-h" => {
                println!(
                    "usage: span_report [--workload NAME] [--policy NAME] [--refs N] \
                     [--scale N] [--sample N] [--top N]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other} (try --help)")),
        }
    }
    Ok(args)
}

fn parse_num(s: &str) -> Result<u64, String> {
    s.replace('_', "")
        .parse()
        .map_err(|e| format!("bad number {s}: {e}"))
}

fn source_label(src: FillSource) -> &'static str {
    match src {
        FillSource::L2Peer => "L2-to-L2 intervention",
        FillSource::L3 => "L3 hit",
        FillSource::Memory => "memory",
    }
}

/// Mean of `f` over `spans`, as f64 (0.0 when empty).
fn mean_of(spans: &[&SpanRecord], f: impl Fn(&SpanRecord) -> u64) -> f64 {
    if spans.is_empty() {
        return 0.0;
    }
    spans.iter().map(|s| f(s)).sum::<u64>() as f64 / spans.len() as f64
}

fn main() -> ExitCode {
    match real_main() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("span_report: {e}");
            ExitCode::FAILURE
        }
    }
}

fn real_main() -> Result<(), String> {
    let args = parse_args()?;
    let mut cfg = if args.scale <= 1 {
        SystemConfig::paper()
    } else {
        SystemConfig::scaled(args.scale)
    };
    cfg.policy = match args.policy.as_str() {
        "baseline" => PolicyConfig::baseline(),
        "wbht" => PolicyConfig::wbht(Default::default()),
        "snarf" => PolicyConfig::snarf(Default::default()),
        "combined" => PolicyConfig::combined(Default::default(), Default::default()),
        other => return Err(format!("unknown policy {other}")),
    };
    let mut spec = RunSpec::for_workload(cfg, args.workload, args.refs);
    spec.retry_switch = Some(RetrySwitchConfig::scaled(args.scale));
    spec.span_tracer = SpanTracer::sampled(args.sample);
    let report = run(spec).map_err(|e| e.to_string())?;
    let spans = &report.spans;
    let summary = report.span_summary.as_ref().expect("tracer was enabled");

    println!(
        "workload {} policy {} | {} cycles, {} spans recorded ({} started, {} sampled out)",
        report.workload,
        report.policy,
        report.cycles(),
        summary.recorded,
        summary.started,
        summary.sampled_out,
    );

    // --- latency tiers per fill source ----------------------------------
    println!("\nfill-source latency tiers (paper: intervention ~77, L3 ~167, memory ~431):");
    println!(
        "  {:<24} {:>7} {:>9} {:>9} {:>9}",
        "source", "fills", "mean", "q-wait", "service"
    );
    for src in [FillSource::L2Peer, FillSource::L3, FillSource::Memory] {
        let of_src: Vec<&SpanRecord> = spans
            .iter()
            .filter(|s| s.outcome.and_then(|o| o.fill_source()) == Some(src))
            .collect();
        println!(
            "  {:<24} {:>7} {:>9.1} {:>9.1} {:>9.1}",
            source_label(src),
            of_src.len(),
            mean_of(&of_src, SpanRecord::total),
            mean_of(&of_src, SpanRecord::queue_wait),
            mean_of(&of_src, SpanRecord::service),
        );
    }

    // --- critical-path attribution by phase ------------------------------
    let mut by_phase: BTreeMap<&'static str, (u64, u64, bool)> = BTreeMap::new();
    let mut grand_total: u64 = 0;
    for s in spans {
        for (phase, _start, len) in s.segments() {
            let e = by_phase
                .entry(phase.as_str())
                .or_insert((0, 0, phase.is_queue_wait()));
            e.0 += len;
            e.1 += 1;
            grand_total += len;
        }
    }
    let mut phases: Vec<_> = by_phase.into_iter().collect();
    phases.sort_by(|a, b| b.1 .0.cmp(&a.1 .0).then(a.0.cmp(b.0)));
    println!("\ncritical-path attribution (all spans, by phase):");
    println!(
        "  {:<16} {:>12} {:>7} {:>10} {:>8}",
        "phase", "cycles", "share", "segments", "class"
    );
    for (name, (cycles, segs, is_wait)) in &phases {
        println!(
            "  {:<16} {:>12} {:>6.1}% {:>10} {:>8}",
            name,
            cycles,
            *cycles as f64 * 100.0 / grand_total.max(1) as f64,
            segs,
            if *is_wait { "queue" } else { "service" },
        );
    }
    let queued: u64 = phases
        .iter()
        .filter(|(_, (_, _, w))| *w)
        .map(|(_, (c, _, _))| c)
        .sum();
    println!(
        "  total {grand_total} cycles across segments; {:.1}% queueing, {:.1}% service",
        queued as f64 * 100.0 / grand_total.max(1) as f64,
        (grand_total - queued) as f64 * 100.0 / grand_total.max(1) as f64,
    );

    // --- top-N slowest transactions --------------------------------------
    let mut slowest: Vec<&SpanRecord> = spans.iter().collect();
    slowest.sort_by(|a, b| b.total().cmp(&a.total()).then(a.id.cmp(&b.id)));
    println!(
        "\ntop {} slowest transactions:",
        args.top.min(slowest.len())
    );
    for s in slowest.iter().take(args.top) {
        let outcome = s.outcome.map_or("unfinished", |o| o.as_str());
        println!(
            "  span {} {} L2#{} line {:#x}: {} cycles ({} queued) -> {}",
            s.id,
            s.kind.as_str(),
            s.l2,
            s.line,
            s.total(),
            s.queue_wait(),
            outcome,
        );
        let timeline: Vec<String> = s
            .segments()
            .map(|(phase, start, len)| format!("{}@{start}+{len}", phase.as_str()))
            .collect();
        println!("      {}", timeline.join(" "));
    }
    Ok(())
}
