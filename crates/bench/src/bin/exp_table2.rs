//! Regenerates the paper's table2 (see the experiment module docs).
fn main() {
    cmpsim_bench::jobs_from_args();
    cmpsim_bench::shards_from_args();
    let profile = cmpsim_bench::Profile::from_env();
    let e = cmpsim_bench::experiments::by_id("table2").expect("registered experiment");
    println!("== {} ==", e.title);
    println!("{}", (e.run)(&profile));
}
