//! Runs every table/figure experiment and prints a combined report
//! (the source of `EXPERIMENTS.md`).
use std::time::Instant;

fn main() {
    cmpsim_bench::jobs_from_args();
    cmpsim_bench::shards_from_args();
    let profile = cmpsim_bench::Profile::from_env();
    println!(
        "# Experiment report (scale factor {}, {} refs/thread)\n",
        profile.scale_factor, profile.refs_per_thread
    );
    for e in cmpsim_bench::experiments::all() {
        let t0 = Instant::now();
        let out = (e.run)(&profile);
        println!("== {} ==", e.title);
        println!("{}", out);
        println!("({}: {:.1}s)\n", e.id, t0.elapsed().as_secs_f64());
    }
}
