//! `trace-stats` — offline analysis of synthetic or recorded traces:
//! footprint, sharing, store mix, reuse-distance curve, and predicted
//! LRU hit rates at the modelled cache capacities.
//!
//! ```sh
//! trace-stats [workload] [records]      # synthetic (default trade2, 200k)
//! trace-stats --file trace.bin          # recorded CMPTRC01 trace
//! ```

use cmpsim_trace::analysis::{profile, ReuseDistances};
use cmpsim_trace::{file, CacheScale, SyntheticWorkload, Workload};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let records = if args.first().map(|s| s.as_str()) == Some("--file") {
        let path = args.get(1).expect("--file needs a path");
        let data = std::fs::read(path).expect("readable trace file");
        file::read_trace(&data[..]).expect("valid CMPTRC01 trace")
    } else {
        let wl = match args.first().map(|s| s.to_lowercase()) {
            Some(ref s) if s == "tp" => Workload::Tp,
            Some(ref s) if s == "cpw2" => Workload::Cpw2,
            Some(ref s) if s == "notesbench" => Workload::NotesBench,
            _ => Workload::Trade2,
        };
        let n: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(200_000);
        let params = wl.params(16, CacheScale::scaled(8));
        let mut g = SyntheticWorkload::new(params, 2026).expect("valid preset");
        g.generate(n)
    };

    let p = profile(&records, 128, 4);
    println!("records          : {}", p.records);
    println!("stores           : {:.1}%", p.store_permille as f64 / 10.0);
    println!(
        "footprint        : {} lines ({} KB)",
        p.footprint_lines,
        p.footprint_lines * 128 / 1024
    );
    println!(
        "shared lines     : {} ({:.1}%)",
        p.shared_lines,
        100.0 * p.shared_lines as f64 / p.footprint_lines.max(1) as f64
    );
    println!(
        "cross-L2 lines   : {} ({:.1}%)",
        p.cross_l2_lines,
        100.0 * p.cross_l2_lines as f64 / p.footprint_lines.max(1) as f64
    );
    println!("hottest line     : {} touches", p.max_line_touches);

    let rd = ReuseDistances::from_records(&records, 128);
    println!(
        "cold misses      : {} ({:.1}%)",
        rd.cold_misses(),
        100.0 * rd.cold_misses() as f64 / rd.total().max(1) as f64
    );
    println!("\npredicted fully-associative LRU hit rates:");
    for (label, lines) in [
        ("L1 (32 KB)", 256u64),
        ("L2 share (512 KB)", 4096),
        ("one L2 (2 MB)", 16384),
        ("all L2s (8 MB)", 65536),
        ("L3 (16 MB)", 131072),
    ] {
        println!("  {label:<18} {:>5.1}%", rd.hit_rate_at(lines) * 100.0);
    }
}
