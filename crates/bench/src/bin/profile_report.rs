//! `profile_report` — host-profile a pinned policy × workload grid and
//! summarize where the simulator's wall-clock time goes.
//!
//! Runs the standard 2-workload × 4-policy grid at the
//! `CMPSIM_PROFILE` scale with a per-cell host profiler, then prints one
//! row per cell: run wall time, throughput, attribution coverage,
//! per-stage self-time shares, top queue high-water marks, and per-cell
//! peak observed RSS — the same columns whether the grid ran serially
//! or under `--jobs N` (each cell carries its own profiler through the
//! grid, so parallelism loses no per-cell context).
//!
//! ```text
//! profile_report [--jobs N] [--stride N] [--stream-telemetry=PATH]
//!                [--wait-client SECS] [--check]
//! ```
//!
//! `--stream-telemetry=PATH` serves the whole grid's interval + host
//! frames on a Unix socket (attach with `telemetry_tail PATH`);
//! `--wait-client SECS` delays the grid start until a client attaches
//! (or the timeout passes), so a tail can catch a short run from its
//! first frame. `--check` exits non-zero unless aggregate attribution
//! coverage is at least 95%.

use cmp_adaptive_wb::{PolicyConfig, RunReport, SnarfConfig, UpdateScope, WbhtConfig};
use cmpsim_bench::{run_grid, Profile, Table};
use cmpsim_engine::profiler::{HostProfiler, HostStage, TIMED_STAGES};
use cmpsim_engine::stream::TelemetryStream;
use cmpsim_trace::Workload;

struct Args {
    jobs: usize,
    stride: u32,
    stream_path: Option<String>,
    wait_client_secs: u64,
    check: bool,
}

fn parse_args() -> Args {
    cmpsim_bench::jobs_from_args();
    cmpsim_bench::shards_from_args();
    let mut args = Args {
        jobs: cmpsim_bench::effective_jobs(),
        // Stride 1 times every iteration with shared window boundaries,
        // so attribution tiles the wall clock; accuracy matters more
        // than overhead here.
        stride: 1,
        stream_path: None,
        wait_client_secs: 0,
        check: false,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--jobs" => {
                it.next(); // consumed by jobs_from_args
            }
            "--shards" => {
                it.next(); // consumed by shards_from_args
            }
            "--stride" => {
                args.stride = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| usage("--stride expects a positive integer"));
            }
            "--wait-client" => {
                args.wait_client_secs = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--wait-client expects seconds"));
            }
            "--check" => args.check = true,
            other => {
                if let Some(p) = other.strip_prefix("--stream-telemetry=") {
                    args.stream_path = Some(p.to_string());
                } else if other.strip_prefix("--jobs=").is_some()
                    || other.strip_prefix("--shards=").is_some()
                {
                    // consumed by jobs_from_args / shards_from_args
                } else {
                    usage(&format!("unknown flag {other}"))
                }
            }
        }
    }
    args
}

fn usage(msg: &str) -> ! {
    eprintln!(
        "profile_report: {msg}\n\
         usage: profile_report [--jobs N] [--stride N] \
         [--stream-telemetry=PATH] [--wait-client SECS] [--check]"
    );
    std::process::exit(2);
}

/// The pinned grid: the two most policy-sensitive workloads crossed
/// with all four write-back policies.
fn grid(p: &Profile) -> Vec<(Workload, PolicyConfig)> {
    let entries = p.table_entries(32 * 1024);
    let half = (entries / 2).max(256);
    let wbht = WbhtConfig {
        entries,
        assoc: 16,
        scope: UpdateScope::Local,
        granularity: 1,
    };
    let snarf = SnarfConfig {
        entries,
        ..Default::default()
    };
    let mut cells = Vec::new();
    for wl in [Workload::Trade2, Workload::Cpw2] {
        for policy in [
            PolicyConfig::baseline(),
            PolicyConfig::wbht(wbht),
            PolicyConfig::snarf(snarf),
            PolicyConfig::combined(
                WbhtConfig {
                    entries: half,
                    ..wbht
                },
                SnarfConfig {
                    entries: half,
                    ..snarf
                },
            ),
        ] {
            cells.push((wl, policy));
        }
    }
    cells
}

fn pct(x: f64) -> String {
    format!("{:.1}", x * 100.0)
}

fn main() {
    let args = parse_args();
    let profile = Profile::from_env();

    let stream = match &args.stream_path {
        Some(p) => match TelemetryStream::listen_unix(std::path::Path::new(p)) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("profile_report: --stream-telemetry {p}: {e}");
                std::process::exit(1);
            }
        },
        None => TelemetryStream::disabled(),
    };
    if stream.is_enabled() && args.wait_client_secs > 0 {
        let deadline =
            std::time::Instant::now() + std::time::Duration::from_secs(args.wait_client_secs);
        while stream.client_count() == 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(std::time::Duration::from_millis(25));
        }
        if stream.client_count() == 0 {
            eprintln!(
                "profile_report: no client attached within {}s; starting anyway",
                args.wait_client_secs
            );
        }
    }

    let cells = grid(&profile);
    let mut profilers = Vec::new();
    let mut specs = Vec::new();
    for (cell, (wl, policy)) in cells.iter().enumerate() {
        let mut cfg = profile.config();
        cfg.policy = *policy;
        let mut spec = profile.spec(cfg, *wl);
        let host = HostProfiler::with_stride(args.stride);
        spec.host_profiler = host.clone();
        spec.stream = stream.clone();
        spec.stream_cell = cell as u64;
        profilers.push(host);
        specs.push(spec);
    }
    let reports = run_grid(specs, args.jobs);

    let mut header = vec![
        "cell".to_string(),
        "workload".to_string(),
        "policy".to_string(),
        "wall_ms".to_string(),
        "Mcyc/s".to_string(),
        "Mev/s".to_string(),
        "cover%".to_string(),
    ];
    for st in HostStage::all() {
        header.push(format!("{}%", st.as_str()));
    }
    header.extend(["eq_hwm", "mshr_hwm", "wbq_hwm", "l3rq_hwm", "rss_kb"].map(str::to_string));
    let mut table = Table::new(header);

    let mut agg_wall = 0u64;
    let mut agg_attr = 0u64;
    for (cell, report) in reports.iter().enumerate() {
        let host = report
            .host
            .as_ref()
            .expect("profiler was attached to every cell");
        agg_wall += host.run_wall_ns;
        agg_attr += host.attributed_ns();
        let wall_s = host.run_wall_ns as f64 / 1e9;
        let events = host.samples.last().map_or(0, |s| s.gauges.events);
        let rss = host.samples.iter().map(|s| s.rss_kb).max().unwrap_or(0);
        let mut row = vec![
            cell.to_string(),
            report.workload.clone(),
            report.policy.to_string(),
            format!("{:.1}", wall_s * 1e3),
            format!("{:.2}", report.stats.cycles as f64 / wall_s.max(1e-9) / 1e6),
            format!("{:.2}", events as f64 / wall_s.max(1e-9) / 1e6),
            pct(host.coverage()),
        ];
        for st in HostStage::all() {
            row.push(pct(host.stage_share(st)));
        }
        row.push(report.stats.event_queue_high_water.to_string());
        row.push(report.stats.mshr_high_water.to_string());
        row.push(report.stats.wbq_high_water.to_string());
        row.push(report.l3.read_queue_high_water.to_string());
        row.push(rss.to_string());
        table.row(row);
    }
    print!("{}", table.render());
    println!(
        "\n{} cells, {} jobs, stride {}, clock {}; grid wall {:.2}s",
        reports.len(),
        args.jobs,
        args.stride,
        profilers[0].report().backend,
        agg_wall as f64 / 1e9
    );
    print!("{}", top_queues(&reports));

    let coverage = if agg_wall == 0 || agg_attr == 0 {
        0.0
    } else {
        agg_attr.min(agg_wall) as f64 / agg_attr.max(agg_wall) as f64
    };
    println!(
        "aggregate attribution coverage: {:.1}% ({} timed stages, scaled by stride)",
        coverage * 100.0,
        TIMED_STAGES
    );
    if args.check && coverage < 0.95 {
        eprintln!(
            "profile_report: FAILED — coverage {:.1}% below the 95% floor \
             (try a smaller --stride)",
            coverage * 100.0
        );
        std::process::exit(1);
    }
}

/// The grid's top queue high-water marks, worst cell first.
fn top_queues(reports: &[RunReport]) -> String {
    let mut tops: Vec<(String, u64)> = Vec::new();
    for (i, r) in reports.iter().enumerate() {
        let tag = |q: &str| format!("cell {i} {}/{} {q}", r.workload, r.policy);
        tops.push((tag("event_queue"), r.stats.event_queue_high_water));
        tops.push((tag("mshr"), r.stats.mshr_high_water));
        tops.push((tag("wbq"), r.stats.wbq_high_water));
        tops.push((tag("l3_read_queue"), r.l3.read_queue_high_water));
    }
    tops.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    let mut out = String::from("top queue high-water marks:\n");
    for (name, depth) in tops.iter().take(5) {
        out.push_str(&format!("  {depth:>6}  {name}\n"));
    }
    out
}
