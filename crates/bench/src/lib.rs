//! Experiment harness regenerating every table and figure of the paper.
//!
//! Each experiment module corresponds to one table or figure of §5 of
//! *"Adaptive Mechanisms and Policies for Managing Cache Hierarchies in
//! Chip Multiprocessors"* and prints output in the same shape as the
//! paper reports it. `exp-all` (see `src/bin/`) runs everything and is
//! the source of `EXPERIMENTS.md`.
//!
//! Experiments run at a [`Profile`]-selected scale: `quick` (default)
//! uses a capacity-scaled hierarchy and short streams; `full` uses the
//! paper's full 8 MB L2 / 16 MB L3 geometry with longer streams. Select
//! with the `CMPSIM_PROFILE` environment variable.

pub mod experiments;
mod profile;
mod table;

pub use profile::{
    effective_jobs, effective_shards, jobs_from_args, parallel_runs, run_grid, set_jobs,
    set_shards, shards_from_args, Profile,
};
pub use table::Table;
