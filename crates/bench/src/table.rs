//! Plain-text table formatting for experiment output.

use std::fmt::Write as _;

/// A simple aligned text table.
///
/// # Example
///
/// ```
/// use cmpsim_bench::Table;
///
/// let mut t = Table::new(vec!["Workload".into(), "Value".into()]);
/// t.row(vec!["TP".into(), "42.1%".into()]);
/// let s = t.render();
/// assert!(s.contains("TP"));
/// assert!(s.contains("Value"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a header row.
    pub fn new(header: Vec<String>) -> Self {
        Table {
            header,
            rows: Vec::new(),
        }
    }

    /// Appends a data row (padded/truncated to the header width).
    pub fn row(&mut self, mut cells: Vec<String>) {
        cells.resize(self.header.len(), String::new());
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when no data rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for r in &self.rows {
            for (c, cell) in r.iter().enumerate().take(cols) {
                widths[c] = widths[c].max(cell.len());
            }
        }
        let mut out = String::new();
        let write_row = |cells: &[String], out: &mut String| {
            for (c, cell) in cells.iter().enumerate().take(cols) {
                if c > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{:<width$}", cell, width = widths[c]);
            }
            // Trim trailing spaces for clean diffs.
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        write_row(&self.header, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for r in &self.rows {
            write_row(r, &mut out);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(vec!["A".into(), "Long header".into()]);
        t.row(vec!["row-one-is-long".into(), "1".into()]);
        t.row(vec!["x".into(), "22".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // Column 2 starts at the same offset in all data lines.
        let off = lines[2].find('1').unwrap();
        assert_eq!(lines[3].rfind("22").unwrap(), off);
    }

    #[test]
    fn pads_short_rows() {
        let mut t = Table::new(vec!["A".into(), "B".into(), "C".into()]);
        t.row(vec!["only-one".into()]);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
        let s = t.render();
        assert!(s.contains("only-one"));
    }
}
