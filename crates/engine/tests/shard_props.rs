//! Property tests for the sharded-execution primitives: the SPSC
//! handoff ring never drops or reorders, and the conservative-lookahead
//! window math never lets an event cross a window boundary backwards.

use cmpsim_engine::shard::{DelayedQueue, Lookahead, ShardPlan, WindowPlan};
use cmpsim_engine::spsc;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The defining conservative-lookahead property: an effect produced
    /// at `t` that takes at least one lookahead of latency lands in a
    /// strictly later window — so a shard executing window `k` can
    /// never receive a window-`k` message from a peer.
    #[test]
    fn delayed_effects_never_land_in_the_senders_window(
        base in 0u64..1_000_000,
        width in 1u64..10_000,
        offset in 0u64..1_000_000,
        extra in 0u64..1_000_000,
    ) {
        let la = Lookahead::new(width);
        let plan = WindowPlan::new(base, la);
        let send = base + offset;
        let deliver = send + la.cycles() + extra;
        prop_assert!(
            plan.index_of(deliver) > plan.index_of(send),
            "send t={send} (window {}) delivered t={deliver} (window {})",
            plan.index_of(send),
            plan.index_of(deliver)
        );
        // Window algebra is self-consistent: every cycle is inside the
        // bounds of the window it indexes to, and the next boundary is
        // strictly ahead.
        let k = plan.index_of(send);
        let (lo, hi) = plan.bounds(k);
        prop_assert!(lo <= send && send < hi);
        prop_assert_eq!(plan.next_boundary(send), hi);
    }

    /// The delayed-message queue delivers in (time, send order), drops
    /// nothing, and never releases a message before its delivery time —
    /// for any interleaving of sends and window drains.
    #[test]
    fn delayed_queue_is_exhaustive_ordered_and_punctual(
        sends in proptest::collection::vec((0u64..500, any::<u32>()), 1..64),
        drain_step in 1u64..200,
    ) {
        let mut q = DelayedQueue::new();
        for (i, &(at, tag)) in sends.iter().enumerate() {
            q.push(at, (i, tag));
        }
        let mut delivered: Vec<(u64, usize, u32)> = Vec::new();
        let mut now = 0u64;
        while !q.is_empty() {
            while let Some((t, (i, tag))) = q.pop_due(now) {
                prop_assert!(t <= now, "released t={t} before now={now}");
                delivered.push((t, i, tag));
            }
            now += drain_step;
        }
        prop_assert_eq!(delivered.len(), sends.len(), "messages dropped");
        // Expected order: stable sort by time (send order breaks ties).
        let mut expect: Vec<(u64, usize, u32)> = sends
            .iter()
            .enumerate()
            .map(|(i, &(at, tag))| (at, i, tag))
            .collect();
        expect.sort_by_key(|&(at, i, _)| (at, i));
        prop_assert_eq!(delivered, expect);
    }

    /// Model-based check of the ring against a VecDeque: any
    /// single-thread interleaving of pushes and pops agrees with the
    /// reference model on every value, rejection, and length.
    #[test]
    fn spsc_agrees_with_deque_model(
        capacity in 1usize..64,
        ops in proptest::collection::vec((any::<bool>(), any::<u32>()), 1..256),
    ) {
        let (mut tx, mut rx) = spsc::ring::<u32>(capacity);
        let cap = tx.capacity();
        let mut model = std::collections::VecDeque::new();
        for (is_push, v) in ops {
            if is_push {
                let pushed = tx.push(v);
                if model.len() < cap {
                    prop_assert_eq!(pushed, Ok(()));
                    model.push_back(v);
                } else {
                    prop_assert_eq!(pushed, Err(v), "full ring must reject");
                }
            } else {
                prop_assert_eq!(rx.pop(), model.pop_front());
            }
            prop_assert_eq!(tx.len(), model.len());
            prop_assert_eq!(rx.len(), model.len());
        }
        // Drain: everything still buffered comes out in model order.
        while let Some(expect) = model.pop_front() {
            prop_assert_eq!(rx.pop(), Some(expect));
        }
        prop_assert_eq!(rx.pop(), None);
    }

    /// Cross-thread: for any capacity and count, a producer thread's
    /// sequence arrives complete and in order — the ring neither drops
    /// nor reorders same-sender events under real concurrency.
    #[test]
    fn spsc_preserves_same_sender_order_across_threads(
        capacity in 1usize..32,
        n in 1u64..2_000,
    ) {
        let (mut tx, mut rx) = spsc::ring::<u64>(capacity);
        let producer = std::thread::spawn(move || {
            for i in 0..n {
                let mut v = i;
                while let Err(back) = tx.push(v) {
                    v = back;
                    std::thread::yield_now();
                }
            }
        });
        let mut expect = 0u64;
        while expect < n {
            match rx.pop() {
                Some(v) => {
                    prop_assert_eq!(v, expect, "reordered or dropped");
                    expect += 1;
                }
                None => std::thread::yield_now(),
            }
        }
        producer.join().unwrap();
        prop_assert_eq!(rx.pop(), None, "phantom value");
    }

    /// Shard plans tile the items exactly once, contiguously, for any
    /// (items, shards) request.
    #[test]
    fn shard_plan_is_a_partition(items in 1usize..512, shards in 0usize..64) {
        let plan = ShardPlan::new(items, shards);
        prop_assert!(plan.shards() >= 1 && plan.shards() <= items);
        let owners: Vec<usize> = (0..items).map(|i| plan.shard_of(i)).collect();
        // Monotone (contiguous blocks), covering all shards 0..shards.
        prop_assert!(owners.windows(2).all(|w| w[0] <= w[1]));
        prop_assert_eq!(owners[0], 0);
        prop_assert_eq!(owners[items - 1], plan.shards() - 1);
        let mut total = 0;
        for s in 0..plan.shards() {
            let count = plan.items_of(s).count();
            prop_assert!(count > 0, "shard {s} empty");
            total += count;
        }
        prop_assert_eq!(total, items);
    }
}
