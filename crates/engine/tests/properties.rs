//! Property-based tests for the simulation engine invariants.

use cmpsim_engine::{Channel, EventQueue, FifoServer, SlotPool, SplitMix64};
use proptest::prelude::*;

proptest! {
    /// Events always pop in non-decreasing time order, regardless of push
    /// order, and same-time events preserve push order.
    #[test]
    fn event_queue_ordering(times in proptest::collection::vec(0u64..1000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(t, i);
        }
        let mut prev_time = 0u64;
        let mut seen_at_time: Vec<usize> = Vec::new();
        let mut last_time = None;
        while let Some((t, idx)) = q.pop() {
            prop_assert!(t >= prev_time);
            if last_time == Some(t) {
                // FIFO within equal timestamps: indices increase.
                prop_assert!(*seen_at_time.last().unwrap() < idx);
            } else {
                seen_at_time.clear();
            }
            seen_at_time.push(idx);
            last_time = Some(t);
            prev_time = t;
        }
    }

    /// A FIFO server never completes a request before `now + service`, and
    /// completions are non-decreasing when arrivals are non-decreasing.
    #[test]
    fn fifo_server_monotone(arrivals in proptest::collection::vec(0u64..10_000, 1..100),
                            service in 1u64..50) {
        let mut sorted = arrivals.clone();
        sorted.sort_unstable();
        let mut s = FifoServer::new(service);
        let mut prev_done = 0;
        for &a in &sorted {
            let done = s.reserve(a);
            prop_assert!(done >= a + service);
            prop_assert!(done >= prev_done);
            prev_done = done;
        }
        prop_assert_eq!(s.served(), sorted.len() as u64);
        prop_assert_eq!(s.busy_cycles(), service * sorted.len() as u64);
    }

    /// A k-lane channel is never slower than a 1-lane server and never
    /// faster than the contention-free latency.
    #[test]
    fn channel_bounded_by_server(arrivals in proptest::collection::vec(0u64..5_000, 1..80),
                                 lanes in 1usize..8, occ in 1u64..20) {
        let mut sorted = arrivals.clone();
        sorted.sort_unstable();
        let mut chan = Channel::new(lanes, occ);
        let mut serial = FifoServer::new(occ);
        for &a in &sorted {
            let c = chan.reserve(a);
            let s = serial.reserve(a);
            prop_assert!(c >= a + occ, "faster than contention-free");
            prop_assert!(c <= s, "k-lane channel slower than serial server");
        }
    }

    /// A slot pool never holds more than `capacity` slots simultaneously.
    #[test]
    fn slot_pool_capacity_respected(ops in proptest::collection::vec((0u64..1000, 1u64..100), 1..100),
                                    cap in 1usize..8) {
        let mut sorted = ops.clone();
        sorted.sort_by_key(|&(t, _)| t);
        let mut p = SlotPool::new(cap);
        for &(t, hold) in &sorted {
            let _ = p.try_acquire(t, t + hold);
            prop_assert!(p.in_use(t) <= cap);
        }
        prop_assert_eq!(p.acquired() + p.rejected(), sorted.len() as u64);
    }

    /// SplitMix64 streams are reproducible and `gen_range` stays in bounds.
    #[test]
    fn rng_deterministic(seed in any::<u64>(), bound in 1u64..1_000_000) {
        let mut a = SplitMix64::new(seed);
        let mut b = SplitMix64::new(seed);
        for _ in 0..100 {
            let x = a.gen_range(bound);
            prop_assert_eq!(x, b.gen_range(bound));
            prop_assert!(x < bound);
        }
    }
}
