//! A bounded lock-free single-producer/single-consumer ring buffer.
//!
//! This is the cross-shard handoff primitive of the sharded execution
//! mode: one side of every shard boundary owns exactly one end of a
//! ring, so the only synchronization on the hot path is one acquire
//! load and one release store per transfer — no locks, no CAS loops.
//!
//! The buffer never drops and never reorders: values pop in exactly the
//! order they were pushed (the differential shard-oracle tests rely on
//! this to keep sharded runs byte-identical to serial ones).

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

struct Inner<T> {
    /// Slot storage; slot `i & mask` is written by the producer and read
    /// by the consumer, with the head/tail indices arbitrating access.
    slots: Box<[UnsafeCell<MaybeUninit<T>>]>,
    mask: usize,
    /// Next slot to pop (consumer-owned; producer reads with acquire).
    head: AtomicUsize,
    /// Next slot to push (producer-owned; consumer reads with acquire).
    tail: AtomicUsize,
    /// Set when either end is dropped, so the other end can stop.
    closed: AtomicBool,
}

// Safety: slots are only touched by the unique producer (writes at
// `tail`) and the unique consumer (reads before `tail`), and the
// indices establish a happens-before edge (release on push, acquire on
// pop) for the payload itself.
unsafe impl<T: Send> Send for Inner<T> {}
unsafe impl<T: Send> Sync for Inner<T> {}

/// The producing end of a [`spsc`](self) ring. Not cloneable: exactly
/// one producer exists per ring.
#[derive(Debug)]
pub struct Producer<T> {
    inner: Arc<Inner<T>>,
    /// Producer-local cache of `head`, refreshed only when the ring
    /// looks full — keeps the common-case push to a single shared store.
    head_cache: usize,
}

/// The consuming end of a [`spsc`](self) ring. Not cloneable: exactly
/// one consumer exists per ring.
#[derive(Debug)]
pub struct Consumer<T> {
    inner: Arc<Inner<T>>,
    /// Consumer-local cache of `tail`, refreshed only when the ring
    /// looks empty.
    tail_cache: usize,
}

impl<T> std::fmt::Debug for Inner<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("spsc::Inner")
            .field("capacity", &self.mask.wrapping_add(1))
            .field("head", &self.head.load(Ordering::Relaxed))
            .field("tail", &self.tail.load(Ordering::Relaxed))
            .finish()
    }
}

/// Creates a ring holding up to `capacity` values (rounded up to a
/// power of two, minimum 2).
pub fn ring<T>(capacity: usize) -> (Producer<T>, Consumer<T>) {
    let cap = capacity.max(2).next_power_of_two();
    let inner = Arc::new(Inner {
        slots: (0..cap)
            .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
            .collect(),
        mask: cap - 1,
        head: AtomicUsize::new(0),
        tail: AtomicUsize::new(0),
        closed: AtomicBool::new(false),
    });
    (
        Producer {
            inner: Arc::clone(&inner),
            head_cache: 0,
        },
        Consumer {
            inner,
            tail_cache: 0,
        },
    )
}

impl<T> Producer<T> {
    /// Appends `value`, or returns it when the ring is full.
    #[inline]
    pub fn push(&mut self, value: T) -> Result<(), T> {
        let tail = self.inner.tail.load(Ordering::Relaxed);
        if tail.wrapping_sub(self.head_cache) > self.inner.mask {
            self.head_cache = self.inner.head.load(Ordering::Acquire);
            if tail.wrapping_sub(self.head_cache) > self.inner.mask {
                return Err(value);
            }
        }
        // Safety: the slot at `tail` is past every unconsumed value
        // (checked above) and only this producer writes slots.
        unsafe {
            (*self.inner.slots[tail & self.inner.mask].get()).write(value);
        }
        self.inner
            .tail
            .store(tail.wrapping_add(1), Ordering::Release);
        Ok(())
    }

    /// Number of values currently buffered (an instantaneous snapshot).
    pub fn len(&self) -> usize {
        let tail = self.inner.tail.load(Ordering::Relaxed);
        let head = self.inner.head.load(Ordering::Acquire);
        tail.wrapping_sub(head)
    }

    /// `true` when no values are buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Slot count of the ring.
    pub fn capacity(&self) -> usize {
        self.inner.mask + 1
    }

    /// `true` once the consumer has been dropped — further pushes would
    /// never be observed.
    pub fn is_closed(&self) -> bool {
        self.inner.closed.load(Ordering::Relaxed)
    }
}

impl<T> Consumer<T> {
    /// Removes and returns the oldest value, or `None` when empty.
    #[inline]
    pub fn pop(&mut self) -> Option<T> {
        let head = self.inner.head.load(Ordering::Relaxed);
        if head == self.tail_cache {
            self.tail_cache = self.inner.tail.load(Ordering::Acquire);
            if head == self.tail_cache {
                return None;
            }
        }
        // Safety: `head < tail`, so the slot holds an initialized value
        // the producer released; only this consumer reads slots.
        let value = unsafe { (*self.inner.slots[head & self.inner.mask].get()).assume_init_read() };
        self.inner
            .head
            .store(head.wrapping_add(1), Ordering::Release);
        Some(value)
    }

    /// Number of values currently buffered (an instantaneous snapshot).
    pub fn len(&self) -> usize {
        let tail = self.inner.tail.load(Ordering::Acquire);
        let head = self.inner.head.load(Ordering::Relaxed);
        tail.wrapping_sub(head)
    }

    /// `true` when no values are buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Slot count of the ring.
    pub fn capacity(&self) -> usize {
        self.inner.mask + 1
    }

    /// `true` once the producer has been dropped — an empty ring will
    /// stay empty forever.
    pub fn is_closed(&self) -> bool {
        self.inner.closed.load(Ordering::Relaxed)
    }
}

impl<T> Drop for Producer<T> {
    fn drop(&mut self) {
        self.inner.closed.store(true, Ordering::Relaxed);
    }
}

impl<T> Drop for Consumer<T> {
    fn drop(&mut self) {
        self.inner.closed.store(true, Ordering::Relaxed);
    }
}

impl<T> Drop for Inner<T> {
    fn drop(&mut self) {
        // Drop any values still in flight. Both ends are gone, so the
        // indices are quiescent.
        let head = *self.head.get_mut();
        let tail = *self.tail.get_mut();
        for i in head..tail {
            // Safety: slots in [head, tail) hold initialized values no
            // one will read again.
            unsafe {
                (*self.slots[i & self.mask].get()).assume_init_drop();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_pop_fifo() {
        let (mut tx, mut rx) = ring::<u32>(8);
        for i in 0..5 {
            tx.push(i).unwrap();
        }
        for i in 0..5 {
            assert_eq!(rx.pop(), Some(i));
        }
        assert_eq!(rx.pop(), None);
    }

    #[test]
    fn full_ring_rejects_and_returns_value() {
        let (mut tx, mut rx) = ring::<u32>(4);
        for i in 0..4 {
            tx.push(i).unwrap();
        }
        assert_eq!(tx.push(99), Err(99));
        assert_eq!(rx.pop(), Some(0));
        tx.push(99).unwrap();
        assert_eq!(tx.len(), 4);
    }

    #[test]
    fn capacity_rounds_to_power_of_two() {
        let (tx, _rx) = ring::<u8>(5);
        assert_eq!(tx.capacity(), 8);
        let (tx, _rx) = ring::<u8>(0);
        assert_eq!(tx.capacity(), 2);
    }

    #[test]
    fn close_is_visible_from_both_ends() {
        let (tx, rx) = ring::<u8>(4);
        assert!(!tx.is_closed());
        drop(rx);
        assert!(tx.is_closed());
        let (tx, rx) = ring::<u8>(4);
        assert!(!rx.is_closed());
        drop(tx);
        assert!(rx.is_closed());
    }

    #[test]
    fn drops_in_flight_values() {
        use std::sync::atomic::AtomicU32;
        static DROPS: AtomicU32 = AtomicU32::new(0);
        #[derive(Debug)]
        struct D;
        impl Drop for D {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::Relaxed);
            }
        }
        let (mut tx, rx) = ring::<D>(4);
        tx.push(D).unwrap();
        tx.push(D).unwrap();
        drop(tx);
        drop(rx);
        assert_eq!(DROPS.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn cross_thread_transfer_preserves_order() {
        let (mut tx, mut rx) = ring::<u64>(64);
        let n = 100_000u64;
        let producer = std::thread::spawn(move || {
            for i in 0..n {
                let mut v = i;
                loop {
                    match tx.push(v) {
                        Ok(()) => break,
                        Err(back) => {
                            v = back;
                            std::thread::yield_now();
                        }
                    }
                }
            }
        });
        let mut expect = 0u64;
        while expect < n {
            match rx.pop() {
                Some(v) => {
                    assert_eq!(v, expect);
                    expect += 1;
                }
                None => std::thread::yield_now(),
            }
        }
        producer.join().unwrap();
        assert_eq!(rx.pop(), None);
    }
}
